#include "tune/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace gesp::tune {
namespace {

/// Aggregated structure costs, one pass over the block lists. GEMM flops
/// per supernode separate as 2·w·(Σ rows)(Σ cols) over the L×U block
/// pairs, so this is O(#blocks), not O(#pairs).
struct StructCosts {
  double total_s = 0.0;      ///< serial seconds: flops/rate(w) + pairs·ovh
  double flop_s = 0.0;       ///< compute part of total_s
  double pair_s = 0.0;       ///< overhead part of total_s
  double crit_s = 0.0;       ///< critical-path seconds through the etree
  double levels = 0.0;       ///< etree height in supernodes
  double mean_width = 0.0;   ///< n / nsup
};

StructCosts structure_costs(const symbolic::SymbolicLU& S,
                            const Calibration& cal) {
  StructCosts out;
  const auto usn = static_cast<std::size_t>(S.nsup);
  std::vector<double> child_crit(usn, 0.0), child_depth(usn, 0.0);
  for (index_t K = 0; K < S.nsup; ++K) {
    const double w = static_cast<double>(S.block_cols(K));
    double lrows = 0.0, ucols = 0.0;
    for (const auto& blk : S.L[static_cast<std::size_t>(K)])
      lrows += static_cast<double>(blk.rows.size());
    for (const auto& blk : S.U[static_cast<std::size_t>(K)])
      ucols += static_cast<double>(blk.cols.size());
    const double nl =
        static_cast<double>(S.L[static_cast<std::size_t>(K)].size());
    const double nu =
        static_cast<double>(S.U[static_cast<std::size_t>(K)].size());
    const double panel_flops = (2.0 / 3.0) * w * w * w      // getrf
                               + (lrows + ucols) * w * w;   // trsms
    const double gemm_flops = 2.0 * w * lrows * ucols;      // updates
    // The calibration measures square b^3 GEMMs, but an update pair is a
    // (block rows) x (block cols) x w product — usually skinny. Price it
    // at the rate of the equivalent cubic size cbrt(w*r*c) (mean block
    // dims), otherwise the curve wildly overstates wide blocks on
    // small-supernode matrices where r and c stay tiny.
    const double rbar = nl > 0.0 ? lrows / nl : 1.0;
    const double cbar = nu > 0.0 ? ucols / nu : 1.0;
    const double eq =
        std::cbrt(w * std::max(1.0, rbar) * std::max(1.0, cbar));
    const double flop_sec = panel_flops / cal.rate(std::max(1.0, w)) +
                            gemm_flops / cal.rate(std::max(1.0, eq));
    const double pairs = nl * nu;
    const double pair_sec = pairs * cal.pair_overhead_s;
    const double cost = flop_sec + pair_sec;
    out.flop_s += flop_sec;
    out.pair_s += pair_sec;
    const double crit = cost + child_crit[static_cast<std::size_t>(K)];
    const double depth = 1.0 + child_depth[static_cast<std::size_t>(K)];
    out.crit_s = std::max(out.crit_s, crit);
    out.levels = std::max(out.levels, depth);
    const index_t parent = S.sn_parent[static_cast<std::size_t>(K)];
    if (parent >= 0) {
      auto up = static_cast<std::size_t>(parent);
      child_crit[up] = std::max(child_crit[up], crit);
      child_depth[up] = std::max(child_depth[up], depth);
    }
  }
  out.total_s = out.flop_s + out.pair_s;
  out.mean_width = S.nsup > 0 ? static_cast<double>(S.n) /
                                    static_cast<double>(S.nsup)
                              : 0.0;
  return out;
}

numeric::Schedule resolve_schedule(numeric::Schedule s, int threads) {
  if (s != numeric::Schedule::kAuto) return s;
  return threads > 1 ? numeric::Schedule::kTaskDag
                     : numeric::Schedule::kForkJoin;
}

/// Divisor pairs of P in deterministic order: (1,P), ..., (P,1).
std::vector<dist::ProcessGrid> grid_candidates(int nprocs) {
  std::vector<dist::ProcessGrid> out;
  for (int pr = 1; pr <= nprocs; ++pr)
    if (nprocs % pr == 0) out.push_back({pr, nprocs / pr});
  return out;
}

}  // namespace

Tuner::Tuner(Calibration cal, TunerOptions opt)
    : cal_(std::move(cal)), opt_(std::move(opt)) {}

double Tuner::correction() const {
  std::lock_guard<std::mutex> lock(mu_);
  return correction_;
}

PredictedCost Tuner::predict(const symbolic::SymbolicLU& S, int num_threads,
                             numeric::Schedule schedule) const {
  const StructCosts c = structure_costs(S, cal_);
  PredictedCost out;
  const int p = std::max(1, num_threads);
  if (p == 1) {
    out.flop_seconds = c.flop_s;
    out.overhead_seconds = c.pair_s;
    out.seconds = c.total_s;
    return out;
  }
  const double lower = std::max(c.total_s / p, c.crit_s);
  const double sched_over =
      resolve_schedule(schedule, p) == numeric::Schedule::kForkJoin
          // One p-thread condvar rendezvous per etree level.
          ? c.levels * cal_.barrier_overhead_s
          // One enqueue+dispatch per supernode task.
          : static_cast<double>(S.nsup) * cal_.task_overhead_s;
  out.flop_seconds = c.flop_s / p;
  out.overhead_seconds = c.pair_s / p + sched_over;
  out.seconds = lower + sched_over;
  return out;
}

TuneDecision Tuner::decide(const TuneInputs& in) {
  GESP_CHECK(in.sym != nullptr && in.opt != nullptr, Errc::invalid_argument,
             "tuner inputs need the symbolic analysis and the options");
  GESP_TRACE_SPAN("tune", "decide");
  return in.dist_nprocs > 0 ? decide_dist(in) : decide_shared(in);
}

TuneDecision Tuner::decide_shared(const TuneInputs& in) {
  const SolverOptions& req = *in.opt;
  const double corr = correction();
  const index_t b_req = req.symbolic.max_block;
  const int p_req = std::max(1, in.max_threads);

  // The request's own predicted cost is the bar every candidate must clear.
  TuneDecision d;
  d.max_block = b_req;
  d.schedule = req.schedule;
  d.num_threads = p_req;
  d.precision = req.precision;
  d.pr = req.dist.pr;
  d.pc = req.dist.pc;
  d.pipelined = req.dist.pipelined;
  const PredictedCost req_cost =
      predict(*in.sym, p_req, resolve_schedule(req.schedule, p_req));
  d.predicted_default_seconds = req_cost.seconds * corr;
  d.predicted_seconds = d.predicted_default_seconds;

  std::vector<index_t> blocks;
  if (opt_.tune_block) blocks = opt_.block_candidates;
  blocks.push_back(b_req);
  std::sort(blocks.begin(), blocks.end());
  blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());

  std::vector<int> threads{p_req};
  if (opt_.tune_schedule && p_req > 1) threads.insert(threads.begin(), 1);

  index_t best_b = b_req;
  int best_p = p_req;
  numeric::Schedule best_s = resolve_schedule(req.schedule, p_req);
  double best_t = req_cost.seconds;

  for (const index_t b : blocks) {
    if (b < 1) continue;
    symbolic::SymbolicLU alt;
    const symbolic::SymbolicLU* S = in.sym;
    if (b != b_req) {
      if (!in.analyze) continue;
      symbolic::SymbolicOptions so = req.symbolic;
      so.max_block = b;
      alt = in.analyze(so);
      S = &alt;
    }
    for (const int p : threads) {
      std::vector<numeric::Schedule> scheds;
      if (p <= 1)
        scheds = {numeric::Schedule::kForkJoin};  // serial: name irrelevant
      else if (opt_.tune_schedule)
        scheds = {numeric::Schedule::kTaskDag, numeric::Schedule::kForkJoin};
      else
        scheds = {resolve_schedule(req.schedule, p)};
      for (const numeric::Schedule s : scheds) {
        const double t = predict(*S, p, s).seconds;
        // Strict improvement, deterministic tie-breaks: smaller block,
        // then more threads, then task-DAG.
        const bool better =
            t < best_t ||
            (t == best_t &&
             (b < best_b || (b == best_b && (p > best_p ||
              (p == best_p && s == numeric::Schedule::kTaskDag &&
               best_s != numeric::Schedule::kTaskDag)))));
        if (better) {
          best_b = b;
          best_p = p;
          best_s = s;
          best_t = t;
        }
      }
    }
  }

  const bool config_differs =
      best_b != b_req || best_p != p_req ||
      best_s != resolve_schedule(req.schedule, p_req);
  if (config_differs && best_t * opt_.min_gain < req_cost.seconds) {
    d.changed = true;
    d.max_block = best_b;
    d.num_threads = best_p;
    // Schedule: express "serial" as num_threads 1 + kAuto, anything else
    // explicitly, so the decision round-trips through SolverOptions as the
    // exact configuration the determinism tests pass by hand.
    d.schedule = best_p <= 1 ? numeric::Schedule::kAuto : best_s;
    d.predicted_seconds = best_t * corr;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "block %lld->%lld threads %d->%d %s (%.3gs -> %.3gs)",
                  static_cast<long long>(b_req),
                  static_cast<long long>(best_b), p_req, best_p,
                  best_p <= 1 ? "serial"
                  : best_s == numeric::Schedule::kTaskDag ? "taskdag"
                                                          : "forkjoin",
                  d.predicted_default_seconds, d.predicted_seconds);
    d.note = buf;
  } else {
    d.note = "request already within the model's noise band";
  }

  // Optional precision proposal: wide supernodes amortize the float
  // kernels' 2x rate; narrow ones are pair-overhead-bound and gain nothing
  // (PR 7's EXPERIMENTS finding). Opt-in because accuracy expectations
  // change with it.
  if (opt_.allow_precision && req.precision == Precision::double_) {
    const StructCosts c = structure_costs(*in.sym, cal_);
    if (c.mean_width >= 8.0 && c.flop_s > 2.0 * c.pair_s) {
      d.changed = true;
      d.precision = Precision::mixed;
      d.note += d.note.empty() ? "" : "; ";
      d.note += "wide supernodes: mixed precision";
    }
  }
  return d;
}

TuneDecision Tuner::decide_dist(const TuneInputs& in) {
  const SolverOptions& req = *in.opt;
  const double corr = correction();
  const index_t b_req = req.symbolic.max_block;
  const int nprocs = in.dist_nprocs;

  dist::ProcessGrid req_grid;
  if (req.dist.pr > 0 && req.dist.pc > 0 &&
      req.dist.pr * req.dist.pc == nprocs)
    req_grid = {req.dist.pr, req.dist.pc};
  else
    req_grid = dist::ProcessGrid::near_square(nprocs);

  TuneDecision d;
  d.max_block = b_req;
  d.schedule = req.schedule;
  d.num_threads = std::max(1, in.max_threads);
  d.precision = req.precision;
  d.pr = req_grid.pr;
  d.pc = req_grid.pc;
  d.pipelined = req.dist.pipelined;

  const dist::MachineModel machine = cal_.machine();
  dist::PerfOptions perf;
  perf.edag_pruning = req.dist.edag_pruning;
  perf.pipelined = req.dist.pipelined;
  const double req_t =
      dist::simulate_factorization(*in.sym, req_grid, machine, perf).time;
  d.predicted_default_seconds = req_t * corr;
  d.predicted_seconds = d.predicted_default_seconds;

  std::vector<index_t> blocks;
  if (opt_.tune_block) blocks = opt_.block_candidates;
  blocks.push_back(b_req);
  std::sort(blocks.begin(), blocks.end());
  blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());

  const std::vector<dist::ProcessGrid> grids =
      opt_.tune_grid ? grid_candidates(nprocs)
                     : std::vector<dist::ProcessGrid>{req_grid};
  const std::vector<bool> pipes =
      opt_.tune_grid ? std::vector<bool>{true, false}
                     : std::vector<bool>{req.dist.pipelined};

  index_t best_b = b_req;
  dist::ProcessGrid best_g = req_grid;
  bool best_pipe = req.dist.pipelined;
  double best_t = req_t;
  for (const index_t b : blocks) {
    if (b < 1) continue;
    symbolic::SymbolicLU alt;
    const symbolic::SymbolicLU* S = in.sym;
    if (b != b_req) {
      if (!in.analyze) continue;
      symbolic::SymbolicOptions so = req.symbolic;
      so.max_block = b;
      alt = in.analyze(so);
      S = &alt;
    }
    for (const auto& g : grids) {
      for (const bool pipe : pipes) {
        dist::PerfOptions po = perf;
        po.pipelined = pipe;
        const double t =
            dist::simulate_factorization(*S, g, machine, po).time;
        const bool better =
            t < best_t ||
            (t == best_t &&
             (b < best_b ||
              (b == best_b && std::abs(g.pr - g.pc) <
                                  std::abs(best_g.pr - best_g.pc))));
        if (better) {
          best_b = b;
          best_g = g;
          best_pipe = pipe;
          best_t = t;
        }
      }
    }
  }

  const bool config_differs = best_b != b_req ||
                              best_g.pr != req_grid.pr ||
                              best_g.pc != req_grid.pc ||
                              best_pipe != req.dist.pipelined;
  if (config_differs && best_t * opt_.min_gain < req_t) {
    d.changed = true;
    d.max_block = best_b;
    d.pr = best_g.pr;
    d.pc = best_g.pc;
    d.pipelined = best_pipe;
    d.predicted_seconds = best_t * corr;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "block %lld->%lld grid %dx%d->%dx%d %s (%.3gs -> %.3gs)",
                  static_cast<long long>(b_req),
                  static_cast<long long>(best_b), req_grid.pr, req_grid.pc,
                  best_g.pr, best_g.pc,
                  best_pipe ? "pipelined" : "strict",
                  d.predicted_default_seconds, d.predicted_seconds);
    d.note = buf;
  } else {
    d.note = "request already within the model's noise band";
  }
  return d;
}

void Tuner::observe(const TuneDecision& decision, double actual_seconds) {
  if (decision.predicted_seconds <= 0.0 || actual_seconds <= 0.0) return;
  const double ratio = actual_seconds / decision.predicted_seconds;
  std::lock_guard<std::mutex> lock(mu_);
  // EWMA toward the observed scale error, clamped so one outlier
  // (first-touch page faults, a preempted probe) cannot wreck the model.
  correction_ = std::clamp(0.5 * correction_ + 0.5 * correction_ * ratio,
                           0.1, 10.0);
  metrics::global().gauge("tune.model_correction").set(correction_);
  metrics::global().counter("tune.observations").inc();
}

std::shared_ptr<TunerBase> make_tuner(Calibration cal, TunerOptions opt) {
  return std::make_shared<Tuner>(std::move(cal), std::move(opt));
}

std::shared_ptr<TunerBase> default_tuner() {
  static std::shared_ptr<TunerBase> tuner =
      make_tuner(calibrate_cached(), TunerOptions{});
  return tuner;
}

void attach_tuner(SolverOptions& opt, TunePolicy policy,
                  std::shared_ptr<TunerBase> tuner) {
  opt.tune.policy = policy;
  if (policy == TunePolicy::off) {
    opt.tune.tuner = std::move(tuner);
    return;
  }
  opt.tune.tuner = tuner ? std::move(tuner) : default_tuner();
}

}  // namespace gesp::tune
