// Analyze-time configuration search: the concrete TunerBase the solvers
// consult after symbolic analysis.
//
// The search space is the knobs the paper (and nine PRs of experiments)
// showed matter per matrix:
//   * max supernode block size — re-runs the cheap symbolic analysis per
//     candidate so each block size is priced against the structure it
//     actually produces (fill from relaxation vs kernel rate vs pair
//     overhead);
//   * thread count and schedule — task-DAG vs fork-join vs plain serial,
//     priced as max(work/p, critical path) + scheduling overhead, which is
//     what makes the tuner drop tiny circuit matrices back to one thread;
//   * grid shape and look-ahead (distributed) — every candidate is replayed
//     through dist::simulate_factorization with the calibrated machine;
//   * precision — optional (off by default): mixed-precision demotion is a
//     numerics change, not just a performance one, so it must be asked for.
//
// decide() is deterministic in its inputs: no clocks, no RNG, no global
// state. The distributed driver relies on this — every rank calls decide()
// collectively and they must agree bit for bit.
#pragma once

#include <memory>
#include <mutex>

#include "core/solver.hpp"
#include "tune/calibrate.hpp"

namespace gesp::tune {

struct TunerOptions {
  /// Candidate block sizes (the requested one is always considered too).
  std::vector<index_t> block_candidates{8, 12, 16, 24, 32, 48};
  bool tune_block = true;
  bool tune_schedule = true;  ///< thread count + task-DAG vs fork-join
  bool tune_grid = true;      ///< dist only: grid shape + look-ahead
  /// Allow proposing Precision::mixed for double requests on wide-supernode
  /// matrices. Off by default: precision changes answers, not just time.
  bool allow_precision = false;
  /// A candidate must beat the requested configuration's predicted cost by
  /// this factor before the tuner overrides anything — hysteresis against
  /// model noise flapping equivalent configurations.
  double min_gain = 1.05;
};

/// Model-predicted cost decomposition for one candidate (also the hook the
/// tests use to check the model orders configurations sanely).
struct PredictedCost {
  double seconds = 0.0;
  double flop_seconds = 0.0;      ///< compute term
  double overhead_seconds = 0.0;  ///< pair + scheduling overhead term
};

class Tuner : public TunerBase {
 public:
  explicit Tuner(Calibration cal, TunerOptions opt = {});

  TuneDecision decide(const TuneInputs& in) override;
  void observe(const TuneDecision& decision, double actual_seconds) override;

  const Calibration& calibration() const { return cal_; }
  const TunerOptions& options() const { return opt_; }
  /// Probe-mode multiplicative correction (actual/predicted EWMA), 1.0
  /// until the first observe().
  double correction() const;

  /// Shared-memory cost model for one (structure, threads, schedule)
  /// configuration; public for tests and the bench.
  PredictedCost predict(const symbolic::SymbolicLU& S, int num_threads,
                        numeric::Schedule schedule) const;

 private:
  TuneDecision decide_shared(const TuneInputs& in);
  TuneDecision decide_dist(const TuneInputs& in);

  Calibration cal_;
  TunerOptions opt_;
  mutable std::mutex mu_;  ///< guards correction_ (observe vs decide)
  double correction_ = 1.0;
};

/// Build a tuner as the abstract handle SolverOptions carries. A
/// default-constructed Calibration prices with the model's stock constants;
/// pass calibrate_cached() output for measured ones.
std::shared_ptr<TunerBase> make_tuner(Calibration cal = {},
                                      TunerOptions opt = {});

/// Process-wide tuner over a cached calibration (GESP_TUNE_CACHE honored);
/// calibrates on first use, then shared by every caller.
std::shared_ptr<TunerBase> default_tuner();

/// Convenience: opt.tune = {policy, tuner-or-default_tuner()}.
void attach_tuner(SolverOptions& opt, TunePolicy policy,
                  std::shared_ptr<TunerBase> tuner = nullptr);

}  // namespace gesp::tune
