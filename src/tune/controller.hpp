// Adaptive serving controller: a clamped, hysteresis-damped feedback loop
// that walks the serving layer's batching/shedding knobs toward a latency
// target from windowed arrival-rate and latency measurements.
//
// Pure logic, deliberately: step() is a deterministic function of the
// sampled window and the controller's own state — no clocks, no metrics
// registry, no threads — so its stability properties (deadband, settle
// count, multiplicative steps, hard clamps) are unit-testable without a
// serving stack. src/serve owns the sampling thread and the knob atomics.
//
// Control law, two regimes around the p99 target:
//   * hot  (p99 > target·high_band for `settle` consecutive windows):
//     batch harder (throughput amortizes per-request cost), stop lingering
//     (queue wait is latency the controller can remove instantly), and
//     shed earlier;
//   * cold (p99 < target·low_band and the queue is empty, again for
//     `settle` windows): relax each knob halfway back toward its
//     configured value, so a transient burst does not pin the service in
//     emergency trim forever.
// Inside the band nothing moves — that deadband plus the settle counter is
// what keeps the loop from flapping between regimes on noisy windows.
#pragma once

#include "common/types.hpp"

namespace gesp::tune {

struct ControllerOptions {
  double target_p99_us = 50e3;  ///< latency target (microseconds)
  double high_band = 1.10;      ///< hot above target·high_band
  double low_band = 0.50;       ///< cold below target·low_band
  int settle_windows = 2;       ///< consecutive out-of-band windows to act
  index_t min_batch = 1;
  index_t max_batch = 64;
  double min_linger_s = 0.0;
  double max_linger_s = 5e-3;
  double min_shed = 0.25;  ///< floor: always keep some shed headroom
  double max_shed = 1.0;
};

/// One measurement window, as the serving layer samples it.
struct ControllerInput {
  double window_s = 0.0;       ///< window length (seconds)
  double arrival_rate = 0.0;   ///< admitted requests/second in the window
  double p50_us = 0.0;         ///< windowed latency quantiles (microseconds)
  double p99_us = 0.0;
  count_t completed = 0;       ///< requests fulfilled in the window
  double queue_depth = 0.0;    ///< queue length at window end
};

/// The knobs under control — mirrors the ServiceOptions fields they shadow.
struct ServeKnobs {
  index_t max_batch = 8;
  double batch_linger_s = 0.0;
  double shed_fraction = 0.75;

  bool operator==(const ServeKnobs& o) const {
    return max_batch == o.max_batch && batch_linger_s == o.batch_linger_s &&
           shed_fraction == o.shed_fraction;
  }
};

class ServeController {
 public:
  ServeController(ServeKnobs configured, ControllerOptions opt);

  /// Feed one window; returns the knobs to apply from now on (unchanged
  /// unless a regime held for settle_windows).
  ServeKnobs step(const ControllerInput& in);

  const ServeKnobs& knobs() const { return knobs_; }
  const ServeKnobs& configured() const { return configured_; }

  struct Stats {
    count_t windows = 0;
    count_t trims = 0;     ///< hot-regime adjustments applied
    count_t relaxes = 0;   ///< cold-regime adjustments applied
  };
  const Stats& stats() const { return stats_; }

 private:
  ServeKnobs clamp(ServeKnobs k) const;

  ServeKnobs configured_;  ///< the operator's requested values
  ServeKnobs knobs_;       ///< current effective values
  ControllerOptions opt_;
  int hot_streak_ = 0;
  int cold_streak_ = 0;
  Stats stats_;
};

}  // namespace gesp::tune
