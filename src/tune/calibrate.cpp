#include "tune/calibrate.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "dense/kernels.hpp"
#include "dist/minimpi.hpp"

namespace gesp::tune {
namespace {

constexpr const char* kCacheHeader = "gesp-tune-cache v1";

/// Minimum measured seconds per timing point: repeat the kernel until the
/// clock resolution stops dominating, then divide by the repeat count.
constexpr double kMinSample = 2e-4;

std::vector<double> random_block(index_t b, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> a(static_cast<std::size_t>(b) * b);
  for (double& v : a) v = rng.uniform(0.5, 1.5);
  return a;
}

/// Time `body` (which performs `flops` useful flops per call): repeat until
/// kMinSample, best of opt.reps batches. Returns seconds per call.
template <class F>
double time_kernel(int reps, const F& body) {
  // Warm-up and auto-scaled repeat count.
  Timer t;
  body();
  double once = t.seconds();
  const int inner =
      once >= kMinSample
          ? 1
          : static_cast<int>(kMinSample / std::max(once, 1e-9)) + 1;
  double best = 1e300;
  for (int r = 0; r < std::max(1, reps); ++r) {
    t.reset();
    for (int i = 0; i < inner; ++i) body();
    best = std::min(best, t.seconds() / inner);
  }
  return best;
}

KernelSample measure_block(index_t b, int reps) {
  KernelSample s;
  s.b = b;
  const auto ub = static_cast<std::size_t>(b);
  const std::vector<double> a0 = random_block(b, 0x9e3779b9u + ub);
  const std::vector<double> b0 = random_block(b, 0x85ebca6bu + ub);
  std::vector<double> c(ub * ub, 0.0);

  // GEMM: C -= A·B on b-by-b blocks — the trailing-update workhorse.
  const double gemm_flops = 2.0 * b * b * b;
  const double t_gemm = time_kernel(reps, [&] {
    dense::gemm_minus(b, b, b, a0.data(), b, b0.data(), b, c.data(), b);
  });
  s.gemm_gflops = gemm_flops / t_gemm / 1e9;

  // TRSM: L·X = B with unit-lower L, b right-hand-side columns.
  std::vector<double> l = a0;
  for (index_t i = 0; i < b; ++i) l[ub * i + static_cast<std::size_t>(i)] = 1.0;
  std::vector<double> rhs = b0;
  const double trsm_flops = static_cast<double>(b) * b * b;
  const double t_trsm = time_kernel(reps, [&] {
    rhs = b0;
    dense::trsm_left_lower_unit(l.data(), b, b, rhs.data(), b, b);
  });
  s.trsm_gflops = trsm_flops / t_trsm / 1e9;

  // GETRF: unpivoted LU of the diagonal block (diagonally dominated so no
  // tiny pivots fire).
  std::vector<double> g = a0;
  for (index_t i = 0; i < b; ++i)
    g[ub * i + static_cast<std::size_t>(i)] += static_cast<double>(b);
  const double getrf_flops = 2.0 / 3.0 * b * b * b;
  std::vector<double> work = g;
  dense::PivotPolicy policy;  // static, no replacement: clean timing
  policy.tiny_threshold = 1e-300;
  const double t_getrf = time_kernel(reps, [&] {
    work = g;
    dense::PivotStats ps;
    dense::getrf(work.data(), b, b, policy, ps);
  });
  s.getrf_gflops = getrf_flops / t_getrf / 1e9;
  return s;
}

/// Per-update-pair overhead: the supernodal update loop pays a fixed cost
/// per (source supernode, destination block) pair before any flops happen.
/// A 2x2x2 GEMM is almost all fixed cost; use its per-call time.
double measure_pair_overhead(int reps) {
  const std::vector<double> a = random_block(2, 11);
  const std::vector<double> bb = random_block(2, 13);
  std::vector<double> c(4, 0.0);
  return time_kernel(reps, [&] {
    dense::gemm_minus(2, 2, 2, a.data(), 2, bb.data(), 2, c.data(), 2);
  });
}

/// One p-thread condition-variable rendezvous — the cost the fork-join
/// schedule pays once per etree level. Thread spawn/join amortizes over
/// the iteration count.
double measure_barrier(int p, int iters, int reps) {
  double best = 1e300;
  for (int r = 0; r < std::max(1, reps); ++r) {
    std::mutex mu;
    std::condition_variable cv;
    int waiting = 0;
    long generation = 0;
    auto rendezvous = [&] {
      std::unique_lock<std::mutex> lk(mu);
      const long gen = generation;
      if (++waiting == p) {
        waiting = 0;
        ++generation;
        cv.notify_all();
      } else {
        cv.wait(lk, [&] { return generation != gen; });
      }
    };
    Timer t;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i)
      threads.emplace_back([&] {
        for (int it = 0; it < iters; ++it) rendezvous();
      });
    for (auto& th : threads) th.join();
    best = std::min(best, t.seconds() / iters);
  }
  return best;
}

/// Per-task enqueue+dispatch cost of a mutex+condvar work queue — what
/// the task-DAG schedule pays once per supernode task.
double measure_task_dispatch(int p, int ntasks, int reps) {
  double best = 1e300;
  for (int r = 0; r < std::max(1, reps); ++r) {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<int> q;
    bool done = false;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i)
      workers.emplace_back([&] {
        for (;;) {
          std::unique_lock<std::mutex> lk(mu);
          cv.wait(lk, [&] { return !q.empty() || done; });
          if (q.empty()) return;
          q.pop_front();
        }
      });
    Timer t;
    for (int i = 0; i < ntasks; ++i) {
      {
        std::lock_guard<std::mutex> lk(mu);
        q.push_back(i);
      }
      cv.notify_one();
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      done = true;
    }
    cv.notify_all();
    for (auto& th : workers) th.join();
    best = std::min(best, t.seconds() / ntasks);
  }
  return best;
}

/// Fit rate(b) = R·b/(b+h) to the measured GEMM points by linear least
/// squares on 1/rate = 1/R + (h/R)·(1/b). Falls back to the largest
/// measured rate with the default h when the fit degenerates (e.g. a flat
/// curve, or fewer than two points).
void fit_rate_curve(const std::vector<KernelSample>& ks, double* flop_rate,
                    double* block_half) {
  double peak = 0.0;
  for (const auto& k : ks) peak = std::max(peak, k.gemm_gflops * 1e9);
  if (peak <= 0.0) return;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int npt = 0;
  for (const auto& k : ks) {
    if (k.gemm_gflops <= 0.0 || k.b <= 0) continue;
    const double x = 1.0 / static_cast<double>(k.b);
    const double y = 1.0 / (k.gemm_gflops * 1e9);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++npt;
  }
  if (npt < 2) {
    *flop_rate = peak;
    return;
  }
  const double det = npt * sxx - sx * sx;
  if (det <= 0.0) {
    *flop_rate = peak;
    return;
  }
  const double slope = (npt * sxy - sx * sy) / det;
  const double intercept = (sy - slope * sx) / npt;
  if (intercept <= 0.0 || slope < 0.0) {
    // Rate not saturating over the probed range: peak with a flat-ish curve.
    *flop_rate = peak;
    *block_half = slope > 0.0 ? slope * peak : 0.5;
    return;
  }
  *flop_rate = 1.0 / intercept;
  *block_half = slope / intercept;
}

void measure_comm(int pingpong_msgs, double* latency_s,
                  double* bandwidth_Bps) {
  using minimpi::World;
  const int msgs = std::max(8, pingpong_msgs);
  // Small-message ping-pong: round trip / 2 ≈ alpha.
  double small_s = 0.0;
  {
    World world(2);
    world.run([&](minimpi::Comm& comm) {
      const std::vector<double> payload(1, 42.0);
      comm.barrier();
      Timer t;
      if (comm.rank() == 0) {
        for (int i = 0; i < msgs; ++i) {
          comm.send_vec(1, 1, payload);
          (void)comm.recv(1, 2);
        }
        small_s = t.seconds() / (2.0 * msgs);
      } else {
        for (int i = 0; i < msgs; ++i) {
          (void)comm.recv(0, 1);
          comm.send_vec(0, 2, payload);
        }
      }
    });
  }
  // Large-message ping-pong: round trip / 2 ≈ alpha + bytes/beta.
  constexpr std::size_t kLargeBytes = std::size_t{1} << 20;
  double large_s = 0.0;
  {
    World world(2);
    world.run([&](minimpi::Comm& comm) {
      const std::vector<double> payload(kLargeBytes / sizeof(double), 1.0);
      const int big_msgs = 8;
      comm.barrier();
      Timer t;
      if (comm.rank() == 0) {
        for (int i = 0; i < big_msgs; ++i) {
          comm.send_vec(1, 1, payload);
          (void)comm.recv(1, 2);
        }
        large_s = t.seconds() / (2.0 * big_msgs);
      } else {
        for (int i = 0; i < big_msgs; ++i) {
          (void)comm.recv(0, 1);
          comm.send_vec(0, 2, payload);
        }
      }
    });
  }
  if (small_s > 0.0) *latency_s = small_s;
  const double transfer = large_s - small_s;
  if (transfer > 0.0)
    *bandwidth_Bps = static_cast<double>(kLargeBytes) / transfer;
  // Allreduce sanity probe: published as a metric, not fitted (the model
  // derives collectives from alpha/beta itself).
  {
    World world(4);
    double allreduce_s = 0.0;
    world.run([&](minimpi::Comm& comm) {
      comm.barrier();
      Timer t;
      for (int i = 0; i < 16; ++i)
        (void)comm.reduce_sum(0, 3, static_cast<double>(comm.rank()));
      if (comm.rank() == 0) allreduce_s = t.seconds() / 16.0;
    });
    metrics::global().gauge("tune.calibrate.allreduce_seconds")
        .set(allreduce_s);
  }
}

}  // namespace

Calibration calibrate(const CalibrateOptions& opt) {
  GESP_TRACE_SPAN("tune", "calibrate");
  Timer wall;
  Calibration cal;
  for (const index_t b : opt.blocks) {
    if (b < 2) continue;
    GESP_TRACE_SPAN("tune", "calibrate_block");
    cal.kernels.push_back(measure_block(b, opt.reps));
  }
  GESP_CHECK(!cal.kernels.empty(), Errc::invalid_argument,
             "calibrate: no usable block sizes (need b >= 2)");
  fit_rate_curve(cal.kernels, &cal.flop_rate, &cal.block_half);
  cal.pair_overhead_s = measure_pair_overhead(opt.reps);
  // Scheduler overheads measured against the same primitives the numeric
  // phase uses: a 4-thread condvar rendezvous per fork-join level, a
  // queue enqueue+dispatch per task-DAG task. Both are microseconds-scale
  // — thousands of times the pair overhead — and they are what decides
  // serial vs parallel (and fork-join vs task-DAG) on small matrices.
  cal.barrier_overhead_s = measure_barrier(4, 512, 2);
  cal.task_overhead_s = measure_task_dispatch(3, 4096, 2);
  if (opt.comm_probes)
    measure_comm(opt.pingpong_msgs, &cal.latency_s, &cal.bandwidth_Bps);
  cal.measured = true;
  cal.source = "measured";

  auto& reg = metrics::global();
  reg.gauge("tune.calibrate.seconds").set(wall.seconds());
  reg.gauge("tune.calibrate.flop_rate").set(cal.flop_rate);
  reg.gauge("tune.calibrate.block_half").set(cal.block_half);
  reg.gauge("tune.calibrate.latency_seconds").set(cal.latency_s);
  reg.gauge("tune.calibrate.bandwidth_bytes").set(cal.bandwidth_Bps);
  reg.gauge("tune.calibrate.pair_overhead_seconds").set(cal.pair_overhead_s);
  reg.gauge("tune.calibrate.task_overhead_seconds").set(cal.task_overhead_s);
  reg.gauge("tune.calibrate.barrier_overhead_seconds")
      .set(cal.barrier_overhead_s);
  reg.counter("tune.calibrations").inc();
  return cal;
}

std::string Calibration::to_text() const {
  std::ostringstream out;
  char buf[160];
  out << kCacheHeader << '\n';
  std::snprintf(buf, sizeof buf, "flop_rate %.17g\n", flop_rate);
  out << buf;
  std::snprintf(buf, sizeof buf, "block_half %.17g\n", block_half);
  out << buf;
  std::snprintf(buf, sizeof buf, "latency %.17g\n", latency_s);
  out << buf;
  std::snprintf(buf, sizeof buf, "bandwidth %.17g\n", bandwidth_Bps);
  out << buf;
  std::snprintf(buf, sizeof buf, "pair_overhead %.17g\n", pair_overhead_s);
  out << buf;
  std::snprintf(buf, sizeof buf, "task_overhead %.17g\n", task_overhead_s);
  out << buf;
  std::snprintf(buf, sizeof buf, "barrier_overhead %.17g\n",
                barrier_overhead_s);
  out << buf;
  for (const auto& k : kernels) {
    std::snprintf(buf, sizeof buf, "kernel %lld %.17g %.17g %.17g\n",
                  static_cast<long long>(k.b), k.gemm_gflops, k.trsm_gflops,
                  k.getrf_gflops);
    out << buf;
  }
  return out.str();
}

bool Calibration::from_text(const std::string& text, Calibration* out) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kCacheHeader) return false;
  Calibration cal;
  bool any = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    char key[32];
    double v = 0.0;
    long long b = 0;
    double g = 0, t = 0, f = 0;
    if (std::sscanf(line.c_str(), "kernel %lld %lg %lg %lg", &b, &g, &t,
                    &f) == 4) {
      KernelSample k;
      k.b = static_cast<index_t>(b);
      k.gemm_gflops = g;
      k.trsm_gflops = t;
      k.getrf_gflops = f;
      cal.kernels.push_back(k);
      continue;
    }
    if (std::sscanf(line.c_str(), "%31s %lg", key, &v) != 2) return false;
    if (!(v > 0.0)) return false;
    if (std::strcmp(key, "flop_rate") == 0)
      cal.flop_rate = v;
    else if (std::strcmp(key, "block_half") == 0)
      cal.block_half = v;
    else if (std::strcmp(key, "latency") == 0)
      cal.latency_s = v;
    else if (std::strcmp(key, "bandwidth") == 0)
      cal.bandwidth_Bps = v;
    else if (std::strcmp(key, "pair_overhead") == 0)
      cal.pair_overhead_s = v;
    else if (std::strcmp(key, "task_overhead") == 0)
      cal.task_overhead_s = v;
    else if (std::strcmp(key, "barrier_overhead") == 0)
      cal.barrier_overhead_s = v;
    else
      return false;  // unknown key: refuse to guess
    any = true;
  }
  if (!any) return false;
  cal.measured = true;
  cal.source = "cache";
  *out = cal;
  return true;
}

bool save_calibration(const Calibration& cal, const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << cal.to_text();
  return static_cast<bool>(f);
}

bool load_calibration(const std::string& path, Calibration* out) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream body;
  body << f.rdbuf();
  return Calibration::from_text(body.str(), out);
}

Calibration calibrate_cached(const CalibrateOptions& opt,
                             const std::string& cache_path) {
  std::string path = cache_path;
  if (path.empty()) {
    const char* env = std::getenv("GESP_TUNE_CACHE");
    if (env != nullptr) path = env;
  }
  if (path.empty()) return calibrate(opt);
  Calibration cal;
  if (load_calibration(path, &cal)) {
    metrics::global().counter("tune.calibrate.cache_hits").inc();
    return cal;
  }
  cal = calibrate(opt);
  if (!save_calibration(cal, path))
    metrics::global().counter("tune.calibrate.cache_write_failures").inc();
  return cal;
}

}  // namespace gesp::tune
