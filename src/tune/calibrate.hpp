// Calibration: one-shot microbenchmarks that fit the performance model's
// machine constants from THIS host instead of the hardcoded Cray T3E-900
// defaults the model shipped with.
//
// Three probe families, all against code the solver actually runs:
//   * dense kernels — GEMM/TRSM/GETRF on b-by-b blocks across block sizes,
//     fitting the saturating rate curve rate(b) = R·b/(b+h) of
//     dist::MachineModel by linearized least squares;
//   * update-pair overhead — the per-(supernode, destination-block) cost
//     (block lookup, position mapping, scatter) PR 7's profiling showed
//     dominates small-supernode matrices, measured as the per-call cost of
//     a tiny GEMM;
//   * scheduler overheads — a p-thread condition-variable rendezvous (the
//     fork-join schedule's per-level barrier) and the per-task cost of a
//     mutex+condvar work queue (the task-DAG's enqueue+dispatch), both
//     microseconds-scale and decisive for small matrices where serial
//     beats every parallel schedule;
//   * MiniMPI transport — ping-pong for per-message latency (alpha) and a
//     large-message round trip for bandwidth (beta), plus an allreduce
//     sanity probe.
//
// A calibration is cacheable to disk (GESP_TUNE_CACHE) as a small
// versioned key-value text file, so a serving fleet pays the probe cost
// once per machine, not once per process.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "dist/perfmodel.hpp"

namespace gesp::tune {

/// Measured kernel rates at one block size (GF/s = 1e9 flops/s).
struct KernelSample {
  index_t b = 0;
  double gemm_gflops = 0.0;
  double trsm_gflops = 0.0;
  double getrf_gflops = 0.0;
};

/// Fitted machine constants — the tuner's view of the host. Defaults are
/// the perf model's T3E-era constants, so an unmeasured Calibration prices
/// configurations exactly as the uncalibrated model always did.
struct Calibration {
  double flop_rate = 120e6;  ///< R of rate(b) = R·b/(b+h), flops/s
  double block_half = 12.0;  ///< h: block size at half the peak rate
  double latency_s = 15e-6;  ///< per-message transport latency (alpha)
  double bandwidth_Bps = 200e6;  ///< transport bandwidth in bytes/s (beta)
  /// Per-update-pair overhead of the supernodal update loop (seconds per
  /// (source supernode, destination block) pair): lookup + scatter cost.
  double pair_overhead_s = 2.5e-7;
  /// Per-task overhead of the task-DAG scheduler (enqueue + dispatch
  /// through a mutex+condvar work queue).
  double task_overhead_s = 1.0e-6;
  /// One p-thread condition-variable rendezvous — what the fork-join
  /// schedule pays per etree level. Microseconds-scale on real hosts;
  /// modeling it as ~free is what made fork-join look universally cheap.
  double barrier_overhead_s = 1.2e-5;
  std::vector<KernelSample> kernels;  ///< raw points behind the fit
  bool measured = false;              ///< false: defaults, never probed
  std::string source = "default";     ///< "measured" | "cache" | "default"

  double rate(double b) const {
    return flop_rate * b / (b + block_half);
  }
  /// The distributed perf model's machine, from the fitted constants.
  dist::MachineModel machine(double word_bytes = 8.0) const {
    dist::MachineModel m;
    m.flop_rate = flop_rate;
    m.block_half = block_half;
    m.latency = latency_s;
    m.bandwidth = bandwidth_Bps;
    m.word_bytes = word_bytes;
    return m;
  }

  /// Cache-file body (versioned key-value text) and its inverse. from_text
  /// rejects unknown versions and malformed lines; on success the result
  /// has source == "cache".
  std::string to_text() const;
  static bool from_text(const std::string& text, Calibration* out);
};

struct CalibrateOptions {
  std::vector<index_t> blocks{8, 12, 16, 24, 32, 48};
  int reps = 5;             ///< min-of-reps timing per kernel point
  bool comm_probes = true;  ///< MiniMPI ping-pong / allreduce probes
  int pingpong_msgs = 64;   ///< messages per ping-pong batch
};

/// Run the microbenchmarks and fit the constants (seconds of work).
Calibration calibrate(const CalibrateOptions& opt = {});

/// calibrate() behind a disk cache: `cache_path` (or, when empty, the
/// GESP_TUNE_CACHE environment variable) names the cache file. A readable,
/// parsable cache short-circuits the probes; otherwise the probes run and
/// the result is written back. No path configured → plain calibrate().
Calibration calibrate_cached(const CalibrateOptions& opt = {},
                             const std::string& cache_path = "");

bool save_calibration(const Calibration& cal, const std::string& path);
bool load_calibration(const std::string& path, Calibration* out);

}  // namespace gesp::tune
