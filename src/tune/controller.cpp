#include "tune/controller.hpp"

#include <algorithm>

namespace gesp::tune {

ServeController::ServeController(ServeKnobs configured, ControllerOptions opt)
    : configured_(configured), opt_(opt) {
  knobs_ = clamp(configured);
}

ServeKnobs ServeController::clamp(ServeKnobs k) const {
  k.max_batch = std::clamp(k.max_batch, opt_.min_batch, opt_.max_batch);
  k.batch_linger_s =
      std::clamp(k.batch_linger_s, opt_.min_linger_s, opt_.max_linger_s);
  k.shed_fraction = std::clamp(k.shed_fraction, opt_.min_shed, opt_.max_shed);
  return k;
}

ServeKnobs ServeController::step(const ControllerInput& in) {
  ++stats_.windows;
  // An idle window (nothing completed, nothing waiting) carries no latency
  // signal: hold state rather than mistake silence for health.
  if (in.completed == 0 && in.queue_depth <= 0.0 && in.arrival_rate <= 0.0)
    return knobs_;

  const double hot_line = opt_.target_p99_us * opt_.high_band;
  const double cold_line = opt_.target_p99_us * opt_.low_band;
  // A window with queued work but no completions is saturation even though
  // there is no quantile to read: treat it as hot.
  const bool hot =
      (in.completed > 0 && in.p99_us > hot_line) ||
      (in.completed == 0 && in.queue_depth > 0.0);
  const bool cold =
      in.completed > 0 && in.p99_us < cold_line && in.queue_depth <= 0.0;

  hot_streak_ = hot ? hot_streak_ + 1 : 0;
  cold_streak_ = cold ? cold_streak_ + 1 : 0;
  if (hot && hot_streak_ >= opt_.settle_windows) {
    ServeKnobs next = knobs_;
    // Multiplicative trims: fast enough to catch a step-change arrival
    // rate within a few windows, damped by the settle counter.
    next.max_batch = knobs_.max_batch * 2;
    next.batch_linger_s = knobs_.batch_linger_s * 0.5;
    if (next.batch_linger_s < 1e-6) next.batch_linger_s = 0.0;
    next.shed_fraction = knobs_.shed_fraction * 0.8;
    next = clamp(next);
    hot_streak_ = 0;  // re-observe the trimmed system before trimming again
    if (!(next == knobs_)) {
      knobs_ = next;
      ++stats_.trims;
    }
    return knobs_;
  }
  if (cold && cold_streak_ >= opt_.settle_windows) {
    // Relax halfway back toward the configured values (exactly reaching
    // them once close), so recovery is geometric but terminates.
    ServeKnobs next = knobs_;
    const index_t db = configured_.max_batch > knobs_.max_batch
                           ? configured_.max_batch - knobs_.max_batch
                           : knobs_.max_batch - configured_.max_batch;
    next.max_batch = db <= 1 ? configured_.max_batch
                             : (knobs_.max_batch + configured_.max_batch) / 2;
    next.batch_linger_s =
        std::abs(configured_.batch_linger_s - knobs_.batch_linger_s) < 1e-5
            ? configured_.batch_linger_s
            : 0.5 * (knobs_.batch_linger_s + configured_.batch_linger_s);
    next.shed_fraction =
        std::abs(configured_.shed_fraction - knobs_.shed_fraction) < 1e-3
            ? configured_.shed_fraction
            : 0.5 * (knobs_.shed_fraction + configured_.shed_fraction);
    next = clamp(next);
    cold_streak_ = 0;
    if (!(next == knobs_)) {
      knobs_ = next;
      ++stats_.relaxes;
    }
    return knobs_;
  }
  return knobs_;
}

}  // namespace gesp::tune
