#include "numeric/gepp.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sparse/ops.hpp"

namespace gesp::numeric {

template <class T>
GeppLU<T>::GeppLU(const sparse::CscMatrix<T>& A, const GeppOptions& opt) {
  using std::abs;
  GESP_CHECK(A.nrows == A.ncols, Errc::invalid_argument,
             "GEPP needs a square matrix");
  GESP_CHECK(opt.diag_threshold > 0.0 && opt.diag_threshold <= 1.0,
             Errc::invalid_argument, "diag_threshold must be in (0, 1]");
  n_ = A.ncols;
  lcols_.resize(static_cast<std::size_t>(n_));
  ucols_.resize(static_cast<std::size_t>(n_));
  udiag_.resize(static_cast<std::size_t>(n_));
  perm_r_.assign(static_cast<std::size_t>(n_), -1);

  const double amax = sparse::norm_max(A);
  double umax = amax;

  // Dense work vector over original row indices, plus DFS scratch.
  std::vector<T> work(static_cast<std::size_t>(n_), T{});
  std::vector<index_t> visited(static_cast<std::size_t>(n_), -1);
  std::vector<index_t> topo;      // pivot positions in reverse topo order
  std::vector<index_t> lpattern;  // original row ids of the L part
  std::vector<index_t> stack, pos;

  for (index_t j = 0; j < n_; ++j) {
    topo.clear();
    lpattern.clear();

    // --- symbolic: reach of struct(A(:,j)) through the current L graph.
    auto dfs = [&](index_t k0) {
      stack.assign(1, k0);
      pos.assign(1, 0);
      while (!stack.empty()) {
        const std::size_t lvl = stack.size() - 1;
        const index_t k = stack[lvl];
        bool descended = false;
        // Indexed access: push_back below may reallocate pos.
        index_t q = pos[lvl];
        while (q < static_cast<index_t>(lcols_[k].size())) {
          const index_t r = lcols_[k][q].first;  // original row id
          ++q;
          if (visited[r] == j) continue;
          visited[r] = j;
          const index_t kk = perm_r_[r];
          if (kk == -1) {
            lpattern.push_back(r);
          } else {
            pos[lvl] = q;
            stack.push_back(kk);
            pos.push_back(0);
            descended = true;
            break;
          }
        }
        if (!descended) {
          topo.push_back(k);
          stack.pop_back();
          pos.pop_back();
        }
      }
    };
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p) {
      const index_t r = A.rowind[p];
      if (visited[r] == j) continue;
      visited[r] = j;
      const index_t k = perm_r_[r];
      if (k == -1)
        lpattern.push_back(r);
      else
        dfs(k);
    }

    // --- numeric: sparse lower triangular solve in topological order.
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p)
      work[A.rowind[p]] = A.values[p];
    // topo was appended in DFS postorder; process in reverse (dependencies
    // first).
    for (std::size_t t = topo.size(); t-- > 0;) {
      const index_t k = topo[t];
      // Row holding pivot k: the row r with perm_r_[r] == k. We saved it
      // as the last element convention: find via pivot row cache.
      const index_t prow = pivot_row_[k];
      const T ukj = work[prow];
      if (ukj == T{}) continue;
      for (const auto& [r, v] : lcols_[k]) work[r] -= v * ukj;
    }

    // --- pivot selection among rows not yet pivotal.
    index_t prow = -1;
    double pmag = 0.0;
    T diag_val{};
    bool have_diag = false;
    for (index_t r : lpattern) {
      const double m = abs(work[r]);
      if (m > pmag) {
        pmag = m;
        prow = r;
      }
      if (r == j) {
        diag_val = work[r];
        have_diag = true;
      }
    }
    GESP_CHECK(prow != -1 && pmag > 0.0, Errc::numerically_singular,
               "GEPP: column " + std::to_string(j) + " is numerically zero");
    // Threshold pivoting: prefer the diagonal when it is large enough.
    if (have_diag && abs(diag_val) >= opt.diag_threshold * pmag &&
        abs(diag_val) > 0.0)
      prow = j;
    perm_r_[prow] = j;
    pivot_row_.push_back(prow);
    const T pivot = work[prow];
    udiag_[j] = pivot;
    umax = std::max(umax, abs(pivot));

    // --- store column j of U (pivotal rows) and L (the rest, scaled).
    for (std::size_t t = topo.size(); t-- > 0;) {
      const index_t k = topo[t];
      const T v = work[pivot_row_[k]];
      if (v != T{}) {
        ucols_[j].emplace_back(k, v);
        umax = std::max(umax, abs(v));
      }
      work[pivot_row_[k]] = T{};
    }
    const T inv = T{1} / pivot;
    for (index_t r : lpattern) {
      if (r == prow) {
        work[r] = T{};
        continue;
      }
      const T v = work[r];
      if (v != T{}) lcols_[j].emplace_back(r, v * inv);
      work[r] = T{};
    }
    work[prow] = T{};
  }
  growth_ = amax > 0.0 ? umax / amax : 0.0;
}

template <class T>
void GeppLU<T>::solve(std::span<const T> b, std::span<T> x) const {
  GESP_CHECK(b.size() == static_cast<std::size_t>(n_) && x.size() == b.size(),
             Errc::invalid_argument, "solve dimension mismatch");
  // y (in pivot order) from L·y = P·b.
  std::vector<T> y(static_cast<std::size_t>(n_));
  for (index_t r = 0; r < n_; ++r) y[perm_r_[r]] = b[r];
  for (index_t k = 0; k < n_; ++k) {
    const T yk = y[k];
    if (yk == T{}) continue;
    for (const auto& [r, v] : lcols_[k]) y[perm_r_[r]] -= v * yk;
  }
  // Back substitution U·x = y; U columns hold pivot positions.
  for (index_t k = n_ - 1; k >= 0; --k) {
    const T xk = y[k] / udiag_[k];
    x[k] = xk;
    if (xk == T{}) continue;
    for (const auto& [kk, v] : ucols_[k]) y[kk] -= v * xk;
  }
}

template <class T>
count_t GeppLU<T>::nnz_l() const {
  count_t s = n_;  // unit diagonal
  for (const auto& c : lcols_) s += static_cast<count_t>(c.size());
  return s;
}

template <class T>
count_t GeppLU<T>::nnz_u() const {
  count_t s = n_;  // diagonal
  for (const auto& c : ucols_) s += static_cast<count_t>(c.size());
  return s;
}

template class GeppLU<double>;
template class GeppLU<Complex>;

}  // namespace gesp::numeric
