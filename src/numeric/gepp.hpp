// GEPP baseline: left-looking sparse LU with partial pivoting
// (Gilbert–Peierls, the algorithm inside SuperLU, non-supernodal form).
//
// This is the comparison point of the paper's Figure 4: for each matrix the
// GESP error is plotted against the GEPP error. Everything here is dynamic
// — the structure of each column is discovered by a depth-first search at
// numeric time and the pivot row is chosen by magnitude — which is exactly
// the behaviour static pivoting exists to avoid on distributed machines.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "sparse/csc.hpp"

namespace gesp::numeric {

struct GeppOptions {
  /// Threshold pivoting: accept the diagonal entry when it is at least
  /// `diag_threshold` times the column maximum (1.0 = classic partial
  /// pivoting, smaller values bias toward the diagonal).
  double diag_threshold = 1.0;
};

template <class T>
class GeppLU {
 public:
  /// Factorize P·A = L·U with partial pivoting.
  /// Throws Errc::numerically_singular when a column is exactly zero.
  explicit GeppLU(const sparse::CscMatrix<T>& A, const GeppOptions& opt = {});

  index_t n() const { return n_; }

  /// Solve A·x = b (applies the row permutation internally).
  void solve(std::span<const T> b, std::span<T> x) const;

  /// Row permutation chosen by pivoting: perm_r[original_row] = pivot
  /// position (new-from-old).
  const std::vector<index_t>& row_perm() const { return perm_r_; }

  count_t nnz_l() const;
  count_t nnz_u() const;

  /// Pivot growth max|u_ij| / max|a_ij|.
  double pivot_growth() const { return growth_; }

 private:
  index_t n_ = 0;
  // L columns: (original row id, value), unit diagonal implicit; the pivot
  // row of column j is the row with perm_r_[row] == j.
  std::vector<std::vector<std::pair<index_t, T>>> lcols_;
  // U columns: (pivot position k < j, value) plus the diagonal entry last.
  std::vector<std::vector<std::pair<index_t, T>>> ucols_;
  std::vector<T> udiag_;
  std::vector<index_t> perm_r_;     ///< new-from-old row permutation
  std::vector<index_t> pivot_row_;  ///< pivot_row_[k] = original row of pivot k
  double growth_ = 0.0;
};

extern template class GeppLU<double>;
extern template class GeppLU<Complex>;

}  // namespace gesp::numeric
