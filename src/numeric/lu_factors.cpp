#include "numeric/lu_factors.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "sparse/coo.hpp"

namespace gesp::numeric {
namespace {

/// Binary search a block list for block index `I`; returns position or -1.
template <class Block>
index_t find_block(const std::vector<Block>& blocks, index_t I) {
  index_t lo = 0, hi = static_cast<index_t>(blocks.size());
  while (lo < hi) {
    const index_t mid = lo + (hi - lo) / 2;
    const index_t key = [&] {
      if constexpr (requires { blocks[mid].I; })
        return blocks[mid].I;
      else
        return blocks[mid].J;
    }();
    if (key < I)
      lo = mid + 1;
    else
      hi = mid;
  }
  if (lo < static_cast<index_t>(blocks.size())) {
    if constexpr (requires { blocks[lo].I; }) {
      if (blocks[lo].I == I) return lo;
    } else {
      if (blocks[lo].J == I) return lo;
    }
  }
  return -1;
}

/// Position of each element of `sub` inside the sorted superset `full`.
void subset_positions(std::span<const index_t> sub,
                      std::span<const index_t> full,
                      std::vector<index_t>& pos) {
  pos.resize(sub.size());
  std::size_t q = 0;
  for (std::size_t p = 0; p < sub.size(); ++p) {
    while (q < full.size() && full[q] < sub[p]) ++q;
    GESP_ASSERT(q < full.size() && full[q] == sub[p],
                "symbolic structure is not closed under updates");
    pos[p] = static_cast<index_t>(q);
  }
}

}  // namespace

template <class T>
LUFactors<T>::LUFactors(std::shared_ptr<const symbolic::SymbolicLU> sym,
                        const sparse::CscMatrix<T>& A,
                        const NumericOptions& opt)
    : sym_(std::move(sym)) {
  GESP_CHECK(sym_ != nullptr, Errc::invalid_argument, "null symbolic handle");
  GESP_CHECK(A.ncols == sym_->n && A.nrows == sym_->n, Errc::invalid_argument,
             "matrix does not match the symbolic structure");
  scatter_initial(A);
  eliminate(opt);
}

template <class T>
void LUFactors<T>::scatter_initial(const sparse::CscMatrix<T>& A) {
  using std::abs;
  const symbolic::SymbolicLU& S = *sym_;
  const index_t N = S.nsup;
  lnz_.resize(static_cast<std::size_t>(N));
  unz_.resize(static_cast<std::size_t>(N));
  l_off_.resize(static_cast<std::size_t>(N));
  u_off_.resize(static_cast<std::size_t>(N));
  for (index_t K = 0; K < N; ++K) {
    const std::size_t b = static_cast<std::size_t>(S.block_cols(K));
    std::size_t sz = b * b;
    l_off_[K].reserve(S.L[K].size());
    for (const auto& blk : S.L[K]) {
      l_off_[K].push_back(sz);
      sz += blk.rows.size() * b;
    }
    lnz_[K].assign(sz, T{});
    sz = 0;
    u_off_[K].reserve(S.U[K].size());
    for (const auto& blk : S.U[K]) {
      u_off_[K].push_back(sz);
      sz += b * blk.cols.size();
    }
    unz_[K].assign(sz, T{});
  }
  // Scatter A.
  amax_ = 0.0;
  for (index_t j = 0; j < S.n; ++j) {
    const index_t J = S.col_to_sn[j];
    const index_t cj = j - S.sn_start[J];
    const index_t bj = S.block_cols(J);
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p) {
      const index_t i = A.rowind[p];
      const T v = A.values[p];
      amax_ = std::max<double>(amax_, abs(v));
      const index_t I = S.col_to_sn[i];
      if (I == J) {
        lnz_[J][(i - S.sn_start[J]) + cj * bj] = v;
      } else if (I > J) {
        const index_t bi = find_block(S.L[J], I);
        GESP_ASSERT(bi >= 0, "A entry outside symbolic L structure");
        const auto& rows = S.L[J][bi].rows;
        const auto rit = std::lower_bound(rows.begin(), rows.end(), i);
        GESP_ASSERT(rit != rows.end() && *rit == i,
                    "A row missing from symbolic L block");
        const index_t r = static_cast<index_t>(rit - rows.begin());
        lnz_[J][l_off_[J][bi] + r + cj * static_cast<index_t>(rows.size())] =
            v;
      } else {
        const index_t bI = S.block_cols(I);
        const index_t bj2 = find_block(S.U[I], J);
        GESP_ASSERT(bj2 >= 0, "A entry outside symbolic U structure");
        const auto& cols = S.U[I][bj2].cols;
        const auto cit = std::lower_bound(cols.begin(), cols.end(), j);
        GESP_ASSERT(cit != cols.end() && *cit == j,
                    "A column missing from symbolic U block");
        const index_t c = static_cast<index_t>(cit - cols.begin());
        unz_[I][u_off_[I][bj2] + (i - S.sn_start[I]) + c * bI] = v;
      }
    }
  }
}

template <class T>
void LUFactors<T>::eliminate(const NumericOptions& opt) {
  using std::abs;
  const symbolic::SymbolicLU& S = *sym_;
  const index_t N = S.nsup;
  dense::PivotPolicy policy;
  policy.tiny_threshold = opt.tiny_threshold;
  policy.aggressive = opt.aggressive_replacement;

  ThreadPool pool(opt.num_threads);
  const int W = pool.num_threads();
  // Per-worker scratch so the update pairs can run concurrently.
  std::vector<std::vector<T>> scratch_w(static_cast<std::size_t>(W));
  std::vector<std::vector<index_t>> rpos_w(static_cast<std::size_t>(W));
  std::vector<std::vector<index_t>> cpos_w(static_cast<std::size_t>(W));
  std::vector<dense::PivotReplacement<T>> block_repl;

  for (index_t K = 0; K < N; ++K) {
    const index_t b = S.block_cols(K);
    T* diag = lnz_[K].data();
    // (1) factor the diagonal block (static pivots, tiny replacement).
    block_repl.clear();
    dense::getrf(diag, b, b, policy, stats_, {},
                 opt.record_replacements ? &block_repl : nullptr);
    for (const auto& r : block_repl)
      replacements_.emplace_back(S.sn_start[K] + r.col, r.delta);
    // (2) panel: L(I,K) <- A(I,K) · U(K,K)^{-1}, block rows in parallel.
    pool.parallel_for(
        static_cast<index_t>(S.L[K].size()),
        [&](index_t lo, index_t hi, int) {
          for (index_t bi = lo; bi < hi; ++bi) {
            const index_t m = static_cast<index_t>(S.L[K][bi].rows.size());
            dense::trsm_right_upper(diag, b, b,
                                    lnz_[K].data() + l_off_[K][bi], m, m);
          }
        });
    // (2') row: U(K,J) <- L(K,K)^{-1} · A(K,J), block columns in parallel.
    pool.parallel_for(
        static_cast<index_t>(S.U[K].size()),
        [&](index_t lo, index_t hi, int) {
          for (index_t uj = lo; uj < hi; ++uj) {
            const index_t c = static_cast<index_t>(S.U[K][uj].cols.size());
            dense::trsm_left_lower_unit(
                diag, b, b, unz_[K].data() + u_off_[K][uj], c, b);
          }
        });
    // (3) rank-b update of the trailing matrix: each (I,J) pair writes a
    // distinct destination block, so pairs fork across threads freely.
    const index_t npairs = static_cast<index_t>(S.L[K].size()) *
                           static_cast<index_t>(S.U[K].size());
    pool.parallel_for(npairs, [&](index_t lo, index_t hi, int w) {
      std::vector<T>& scratch = scratch_w[w];
      std::vector<index_t>& rpos = rpos_w[w];
      std::vector<index_t>& cpos = cpos_w[w];
      for (index_t pair = lo; pair < hi; ++pair) {
        const std::size_t bi = pair / S.U[K].size();
        const std::size_t uj = pair % S.U[K].size();
        const index_t I = S.L[K][bi].I;
        const auto& src_rows = S.L[K][bi].rows;
        const index_t m = static_cast<index_t>(src_rows.size());
        const T* lik = lnz_[K].data() + l_off_[K][bi];
        const index_t J = S.U[K][uj].J;
        const auto& src_cols = S.U[K][uj].cols;
        const index_t c = static_cast<index_t>(src_cols.size());
        const T* ukj = unz_[K].data() + u_off_[K][uj];
        // tmp = -(L(I,K) · U(K,J)), m-by-c.
        scratch.assign(static_cast<std::size_t>(m) * c, T{});
        dense::gemm_minus(m, c, b, lik, m, ukj, b, scratch.data(), m);
        // Scatter-add into the destination block.
        if (I == J) {
          // Diagonal block of supernode I (full storage).
          T* dst = lnz_[I].data();
          const index_t bI = S.block_cols(I);
          const index_t base = S.sn_start[I];
          for (index_t cc = 0; cc < c; ++cc) {
            const index_t dc = src_cols[cc] - base;
            for (index_t rr = 0; rr < m; ++rr)
              dst[(src_rows[rr] - base) + dc * bI] +=
                  scratch[rr + cc * static_cast<index_t>(m)];
          }
        } else if (I > J) {
          // L block (I, J): rows are a subset, columns are full width.
          const index_t dbi = find_block(S.L[J], I);
          GESP_ASSERT(dbi >= 0, "missing destination L block");
          const auto& dst_rows = S.L[J][dbi].rows;
          subset_positions(src_rows, dst_rows, rpos);
          T* dst = lnz_[J].data() + l_off_[J][dbi];
          const index_t ldd = static_cast<index_t>(dst_rows.size());
          const index_t base = S.sn_start[J];
          for (index_t cc = 0; cc < c; ++cc) {
            const index_t dc = src_cols[cc] - base;
            T* dcol = dst + dc * ldd;
            for (index_t rr = 0; rr < m; ++rr)
              dcol[rpos[rr]] += scratch[rr + cc * static_cast<index_t>(m)];
          }
        } else {
          // U block (I, J): columns are a subset, rows are full height.
          const index_t dbj = find_block(S.U[I], J);
          GESP_ASSERT(dbj >= 0, "missing destination U block");
          const auto& dst_cols = S.U[I][dbj].cols;
          subset_positions(src_cols, dst_cols, cpos);
          T* dst = unz_[I].data() + u_off_[I][dbj];
          const index_t bI = S.block_cols(I);
          const index_t base = S.sn_start[I];
          for (index_t cc = 0; cc < c; ++cc) {
            T* dcol = dst + cpos[cc] * bI;
            for (index_t rr = 0; rr < m; ++rr)
              dcol[src_rows[rr] - base] +=
                  scratch[rr + cc * static_cast<index_t>(m)];
          }
        }
      }
    });
  }

  // Pivot growth from the final U (diagonal blocks' upper triangles plus
  // the off-diagonal U blocks).
  double umax = 0.0;
  for (index_t K = 0; K < N; ++K) {
    const index_t b = S.block_cols(K);
    for (index_t c = 0; c < b; ++c)
      for (index_t r = 0; r <= c; ++r)
        umax = std::max<double>(umax, abs(lnz_[K][r + c * b]));
    for (const T& v : unz_[K]) umax = std::max<double>(umax, abs(v));
  }
  growth_ = amax_ > 0.0 ? umax / amax_ : 0.0;
}

template <class T>
void LUFactors<T>::solve_lower(std::span<T> x) const {
  const symbolic::SymbolicLU& S = *sym_;
  GESP_CHECK(x.size() == static_cast<std::size_t>(S.n),
             Errc::invalid_argument, "solve vector size mismatch");
  for (index_t K = 0; K < S.nsup; ++K) {
    const index_t b = S.block_cols(K);
    T* xk = x.data() + S.sn_start[K];
    dense::trsv_lower_unit(lnz_[K].data(), b, b, xk);
    for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
      const auto& rows = S.L[K][bi].rows;
      const index_t m = static_cast<index_t>(rows.size());
      const T* blk = lnz_[K].data() + l_off_[K][bi];
      for (index_t c = 0; c < b; ++c) {
        const T xc = xk[c];
        if (xc == T{}) continue;
        const T* col = blk + c * m;
        for (index_t r = 0; r < m; ++r) x[rows[r]] -= col[r] * xc;
      }
    }
  }
}

template <class T>
void LUFactors<T>::solve_upper(std::span<T> x) const {
  const symbolic::SymbolicLU& S = *sym_;
  GESP_CHECK(x.size() == static_cast<std::size_t>(S.n),
             Errc::invalid_argument, "solve vector size mismatch");
  for (index_t K = S.nsup - 1; K >= 0; --K) {
    const index_t b = S.block_cols(K);
    T* xk = x.data() + S.sn_start[K];
    for (std::size_t uj = 0; uj < S.U[K].size(); ++uj) {
      const auto& cols = S.U[K][uj].cols;
      const T* blk = unz_[K].data() + u_off_[K][uj];
      for (std::size_t cc = 0; cc < cols.size(); ++cc) {
        const T xc = x[cols[cc]];
        if (xc == T{}) continue;
        const T* col = blk + cc * static_cast<std::size_t>(b);
        for (index_t r = 0; r < b; ++r) xk[r] -= col[r] * xc;
      }
    }
    dense::trsv_upper(lnz_[K].data(), b, b, xk);
  }
}

template <class T>
void LUFactors<T>::solve(std::span<T> x) const {
  solve_lower(x);
  solve_upper(x);
}

template <class T>
void LUFactors<T>::solve_multi(std::span<T> X, index_t nrhs) const {
  const symbolic::SymbolicLU& S = *sym_;
  GESP_CHECK(nrhs >= 1 &&
                 X.size() == static_cast<std::size_t>(S.n) * nrhs,
             Errc::invalid_argument, "solve_multi dimension mismatch");
  const index_t n = S.n;
  std::vector<T> seg;  // gathered block-row segment, b-by-nrhs
  // Forward substitution, all right-hand sides at once.
  for (index_t K = 0; K < S.nsup; ++K) {
    const index_t b = S.block_cols(K);
    const index_t base = S.sn_start[K];
    dense::trsm_left_lower_unit(lnz_[K].data(), b, b, X.data() + base, nrhs,
                                n);
    for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
      const auto& rows = S.L[K][bi].rows;
      const index_t m = static_cast<index_t>(rows.size());
      const T* blk = lnz_[K].data() + l_off_[K][bi];
      // seg = -(L(I,K) · X(K,:)), then scatter-add into the target rows.
      seg.assign(static_cast<std::size_t>(m) * nrhs, T{});
      dense::gemm_minus(m, nrhs, b, blk, m, X.data() + base, n, seg.data(),
                        m);
      for (index_t c = 0; c < nrhs; ++c)
        for (index_t r = 0; r < m; ++r)
          X[rows[r] + c * static_cast<std::size_t>(n)] += seg[r + c * m];
    }
  }
  // Backward substitution.
  std::vector<T> gath;
  for (index_t K = S.nsup - 1; K >= 0; --K) {
    const index_t b = S.block_cols(K);
    const index_t base = S.sn_start[K];
    for (std::size_t uj = 0; uj < S.U[K].size(); ++uj) {
      const auto& cols = S.U[K][uj].cols;
      const index_t m = static_cast<index_t>(cols.size());
      const T* blk = unz_[K].data() + u_off_[K][uj];
      // Gather X(cols,:) into a dense m-by-nrhs block, multiply, subtract.
      gath.resize(static_cast<std::size_t>(m) * nrhs);
      for (index_t c = 0; c < nrhs; ++c)
        for (index_t r = 0; r < m; ++r)
          gath[r + c * static_cast<std::size_t>(m)] =
              X[cols[r] + c * static_cast<std::size_t>(n)];
      dense::gemm_minus(b, nrhs, m, blk, b, gath.data(), m, X.data() + base,
                        n);
    }
    for (index_t c = 0; c < nrhs; ++c)
      dense::trsv_upper(lnz_[K].data(), b, b,
                        X.data() + base + c * static_cast<std::size_t>(n));
  }
}

template <class T>
void LUFactors<T>::solve_transposed(std::span<T> x) const {
  const symbolic::SymbolicLU& S = *sym_;
  GESP_CHECK(x.size() == static_cast<std::size_t>(S.n),
             Errc::invalid_argument, "solve vector size mismatch");
  // Aᵀ = Uᵀ·Lᵀ. Forward pass with Uᵀ (lower triangular): after x(J) is
  // solved, push its contributions through the transposed U blocks.
  for (index_t J = 0; J < S.nsup; ++J) {
    const index_t b = S.block_cols(J);
    T* xj = x.data() + S.sn_start[J];
    dense::trsv_upper_trans(lnz_[J].data(), b, b, xj);
    for (std::size_t uj = 0; uj < S.U[J].size(); ++uj) {
      const auto& cols = S.U[J][uj].cols;
      const T* blk = unz_[J].data() + u_off_[J][uj];
      for (std::size_t cc = 0; cc < cols.size(); ++cc) {
        T sum{};
        const T* col = blk + cc * static_cast<std::size_t>(b);
        for (index_t r = 0; r < b; ++r) sum += col[r] * xj[r];
        x[cols[cc]] -= sum;
      }
    }
  }
  // Backward pass with Lᵀ (unit upper triangular): gather contributions
  // from the rows below before solving the diagonal block.
  for (index_t K = S.nsup - 1; K >= 0; --K) {
    const index_t b = S.block_cols(K);
    T* xk = x.data() + S.sn_start[K];
    for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
      const auto& rows = S.L[K][bi].rows;
      const index_t m = static_cast<index_t>(rows.size());
      const T* blk = lnz_[K].data() + l_off_[K][bi];
      for (index_t c = 0; c < b; ++c) {
        T sum{};
        const T* col = blk + c * m;
        for (index_t r = 0; r < m; ++r) sum += col[r] * x[rows[r]];
        xk[c] -= sum;
      }
    }
    dense::trsv_lower_unit_trans(lnz_[K].data(), b, b, xk);
  }
}

template <class T>
sparse::CscMatrix<T> LUFactors<T>::l_matrix() const {
  const symbolic::SymbolicLU& S = *sym_;
  sparse::CooMatrix<T> L(S.n, S.n);
  for (index_t K = 0; K < S.nsup; ++K) {
    const index_t b = S.block_cols(K);
    const index_t base = S.sn_start[K];
    for (index_t c = 0; c < b; ++c) {
      L.add(base + c, base + c, T{1});
      for (index_t r = c + 1; r < b; ++r) {
        const T v = lnz_[K][r + c * b];
        if (v != T{}) L.add(base + r, base + c, v);
      }
    }
    for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
      const auto& rows = S.L[K][bi].rows;
      const index_t m = static_cast<index_t>(rows.size());
      const T* blk = lnz_[K].data() + l_off_[K][bi];
      for (index_t c = 0; c < b; ++c)
        for (index_t r = 0; r < m; ++r) {
          const T v = blk[r + c * m];
          if (v != T{}) L.add(rows[r], base + c, v);
        }
    }
  }
  return L.to_csc();
}

template <class T>
sparse::CscMatrix<T> LUFactors<T>::u_matrix() const {
  const symbolic::SymbolicLU& S = *sym_;
  sparse::CooMatrix<T> U(S.n, S.n);
  for (index_t K = 0; K < S.nsup; ++K) {
    const index_t b = S.block_cols(K);
    const index_t base = S.sn_start[K];
    for (index_t c = 0; c < b; ++c)
      for (index_t r = 0; r <= c; ++r) {
        const T v = lnz_[K][r + c * b];
        if (v != T{} || r == c) U.add(base + r, base + c, v);
      }
    for (std::size_t uj = 0; uj < S.U[K].size(); ++uj) {
      const auto& cols = S.U[K][uj].cols;
      const T* blk = unz_[K].data() + u_off_[K][uj];
      for (std::size_t cc = 0; cc < cols.size(); ++cc)
        for (index_t r = 0; r < b; ++r) {
          const T v = blk[r + cc * static_cast<std::size_t>(b)];
          if (v != T{}) U.add(base + r, cols[cc], v);
        }
    }
  }
  return U.to_csc();
}

template class LUFactors<double>;
template class LUFactors<Complex>;

}  // namespace gesp::numeric
