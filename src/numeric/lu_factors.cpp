#include "numeric/lu_factors.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>

#include "common/denormal.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "sparse/coo.hpp"

namespace gesp::numeric {
namespace {

/// Binary search a block list for block index `I`; returns position or -1.
template <class Block>
index_t find_block(const std::vector<Block>& blocks, index_t I) {
  index_t lo = 0, hi = static_cast<index_t>(blocks.size());
  while (lo < hi) {
    const index_t mid = lo + (hi - lo) / 2;
    const index_t key = [&] {
      if constexpr (requires { blocks[mid].I; })
        return blocks[mid].I;
      else
        return blocks[mid].J;
    }();
    if (key < I)
      lo = mid + 1;
    else
      hi = mid;
  }
  if (lo < static_cast<index_t>(blocks.size())) {
    if constexpr (requires { blocks[lo].I; }) {
      if (blocks[lo].I == I) return lo;
    } else {
      if (blocks[lo].J == I) return lo;
    }
  }
  return -1;
}

/// Position of each element of `sub` inside the sorted superset `full`.
/// A sparse sub in a long full list searches instead of scanning: the
/// linear merge touches every full[] entry up to the last match, which for
/// the typical 2-3-row update into a several-hundred-row destination block
/// is the single most expensive loop of the whole update phase.
void subset_positions(std::span<const index_t> sub,
                      std::span<const index_t> full,
                      std::vector<index_t>& pos) {
  pos.resize(sub.size());
  std::size_t q = 0;
  const bool search = sub.size() * 8 < full.size();
  for (std::size_t p = 0; p < sub.size(); ++p) {
    if (search)
      q = static_cast<std::size_t>(
          std::lower_bound(full.begin() + q, full.end(), sub[p]) -
          full.begin());
    else
      while (q < full.size() && full[q] < sub[p]) ++q;
    GESP_ASSERT(q < full.size() && full[q] == sub[p],
                "symbolic structure is not closed under updates");
    pos[p] = static_cast<index_t>(q);
  }
}

}  // namespace

template <class T>
LUFactors<T>::LUFactors(std::shared_ptr<const symbolic::SymbolicLU> sym,
                        const sparse::CscMatrix<T>& A,
                        const NumericOptions& opt)
    : sym_(std::move(sym)) {
  GESP_CHECK(sym_ != nullptr, Errc::invalid_argument, "null symbolic handle");
  GESP_CHECK(A.ncols == sym_->n && A.nrows == sym_->n, Errc::invalid_argument,
             "matrix does not match the symbolic structure");
  scatter_initial(A);
  eliminate(opt);
}

template <class T>
void LUFactors<T>::scatter_initial(const sparse::CscMatrix<T>& A) {
  using std::abs;
  const symbolic::SymbolicLU& S = *sym_;
  const index_t N = S.nsup;
  lnz_.resize(static_cast<std::size_t>(N));
  unz_.resize(static_cast<std::size_t>(N));
  l_off_.resize(static_cast<std::size_t>(N));
  u_off_.resize(static_cast<std::size_t>(N));
  for (index_t K = 0; K < N; ++K) {
    const std::size_t b = static_cast<std::size_t>(S.block_cols(K));
    std::size_t sz = b * b;
    l_off_[K].reserve(S.L[K].size());
    for (const auto& blk : S.L[K]) {
      l_off_[K].push_back(sz);
      sz += blk.rows.size() * b;
    }
    lnz_[K].assign(sz, T{});
    sz = 0;
    u_off_[K].reserve(S.U[K].size());
    for (const auto& blk : S.U[K]) {
      u_off_[K].push_back(sz);
      sz += b * blk.cols.size();
    }
    unz_[K].assign(sz, T{});
  }
  scatter_values(A, nullptr);
}

template <class T>
void LUFactors<T>::scatter_values(const sparse::CscMatrix<T>& A,
                                  const std::vector<char>* dirty) {
  using std::abs;
  const symbolic::SymbolicLU& S = *sym_;
  // Scatter A. Every entry (i, j) lives in the storage of its OWNER
  // supernode min(sn(i), sn(j)): the diagonal and L blocks of column
  // supernode J when sn(i) >= J, the U row of supernode I when sn(i) < J.
  // In the partial pass only dirty owners' buffers were zeroed, so only
  // their entries are (re)written; amax_ still covers the whole matrix —
  // it must match a full factorization's value bit for bit.
  amax_ = 0.0;
  for (index_t j = 0; j < S.n; ++j) {
    const index_t J = S.col_to_sn[j];
    const index_t cj = j - S.sn_start[J];
    const index_t bj = S.block_cols(J);
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p) {
      const index_t i = A.rowind[p];
      const T v = A.values[p];
      amax_ = std::max<double>(amax_, abs(v));
      const index_t I = S.col_to_sn[i];
      if (dirty && !(*dirty)[std::min(I, J)]) continue;
      if (I == J) {
        lnz_[J][(i - S.sn_start[J]) + cj * bj] = v;
      } else if (I > J) {
        const index_t bi = find_block(S.L[J], I);
        GESP_ASSERT(bi >= 0, "A entry outside symbolic L structure");
        const auto& rows = S.L[J][bi].rows;
        const auto rit = std::lower_bound(rows.begin(), rows.end(), i);
        GESP_ASSERT(rit != rows.end() && *rit == i,
                    "A row missing from symbolic L block");
        const index_t r = static_cast<index_t>(rit - rows.begin());
        lnz_[J][l_off_[J][bi] + r + cj * static_cast<index_t>(rows.size())] =
            v;
      } else {
        const index_t bI = S.block_cols(I);
        const index_t bj2 = find_block(S.U[I], J);
        GESP_ASSERT(bj2 >= 0, "A entry outside symbolic U structure");
        const auto& cols = S.U[I][bj2].cols;
        const auto cit = std::lower_bound(cols.begin(), cols.end(), j);
        GESP_ASSERT(cit != cols.end() && *cit == j,
                    "A column missing from symbolic U block");
        const index_t c = static_cast<index_t>(cit - cols.begin());
        unz_[I][u_off_[I][bj2] + (i - S.sn_start[I]) + c * bI] = v;
      }
    }
  }
}

template <class T>
void LUFactors<T>::update_pair(index_t K, std::size_t bi, std::size_t uj,
                               std::vector<T>& scratch,
                               std::vector<index_t>& rpos,
                               std::vector<index_t>& cpos) {
  const symbolic::SymbolicLU& S = *sym_;
  const index_t b = S.block_cols(K);
  const index_t I = S.L[K][bi].I;
  const auto& src_rows = S.L[K][bi].rows;
  const index_t m = static_cast<index_t>(src_rows.size());
  const T* lik = lnz_[K].data() + l_off_[K][bi];
  const index_t J = S.U[K][uj].J;
  const auto& src_cols = S.U[K][uj].cols;
  const index_t c = static_cast<index_t>(src_cols.size());
  const T* ukj = unz_[K].data() + u_off_[K][uj];
  if (m == 1 && c == 1) {
    // Scalar fast path (dominant when supernodes degenerate to single
    // columns): the 1x1 product still goes through the dense library so the
    // codegen (and thus rounding) is the exact kernel every other engine
    // uses — only the scratch round-trip and subset scatter are skipped.
    const T acc = dense::dot_minus(b, lik, ukj);
    const index_t row = src_rows[0], col = src_cols[0];
    if (I == J) {
      const index_t base = S.sn_start[I];
      lnz_[I][(row - base) + (col - base) * S.block_cols(I)] += acc;
    } else if (I > J) {
      const index_t dbi = find_block(S.L[J], I);
      GESP_ASSERT(dbi >= 0, "missing destination L block");
      const auto& dst_rows = S.L[J][dbi].rows;
      const auto rit =
          std::lower_bound(dst_rows.begin(), dst_rows.end(), row);
      GESP_ASSERT(rit != dst_rows.end() && *rit == row,
                  "symbolic structure is not closed under updates");
      lnz_[J][l_off_[J][dbi] + (rit - dst_rows.begin()) +
              (col - S.sn_start[J]) *
                  static_cast<index_t>(dst_rows.size())] += acc;
    } else {
      const index_t dbj = find_block(S.U[I], J);
      GESP_ASSERT(dbj >= 0, "missing destination U block");
      const auto& dst_cols = S.U[I][dbj].cols;
      const auto cit =
          std::lower_bound(dst_cols.begin(), dst_cols.end(), col);
      GESP_ASSERT(cit != dst_cols.end() && *cit == col,
                  "symbolic structure is not closed under updates");
      unz_[I][u_off_[I][dbj] + (row - S.sn_start[I]) +
              (cit - dst_cols.begin()) * S.block_cols(I)] += acc;
    }
    return;
  }
  // tmp = -(L(I,K) · U(K,J)), m-by-c; the β=0 kernel writes every entry,
  // so no zero-fill pass over the scratch is needed.
  scratch.resize(static_cast<std::size_t>(m) * c);
  dense::gemm_minus_overwrite(m, c, b, lik, m, ukj, b, scratch.data(), m);
  // Scatter-add into the destination block.
  if (I == J) {
    // Diagonal block of supernode I (full storage).
    T* dst = lnz_[I].data();
    const index_t bI = S.block_cols(I);
    const index_t base = S.sn_start[I];
    if (m == bI) {
      // Rows cover the whole block (a subset of equal size IS the set):
      // contiguous column adds, which vectorize.
      for (index_t cc = 0; cc < c; ++cc) {
        T* dcol = dst + (src_cols[cc] - base) * bI;
        const T* scol = scratch.data() + cc * static_cast<std::size_t>(m);
        for (index_t rr = 0; rr < m; ++rr) dcol[rr] += scol[rr];
      }
      return;
    }
    for (index_t cc = 0; cc < c; ++cc) {
      const index_t dc = src_cols[cc] - base;
      for (index_t rr = 0; rr < m; ++rr)
        dst[(src_rows[rr] - base) + dc * bI] +=
            scratch[rr + cc * static_cast<index_t>(m)];
    }
  } else if (I > J) {
    // L block (I, J): rows are a subset, columns are full width.
    const index_t dbi = find_block(S.L[J], I);
    GESP_ASSERT(dbi >= 0, "missing destination L block");
    const auto& dst_rows = S.L[J][dbi].rows;
    T* dst = lnz_[J].data() + l_off_[J][dbi];
    const index_t ldd = static_cast<index_t>(dst_rows.size());
    const index_t base = S.sn_start[J];
    if (m == ldd) {
      // Row sets identical: straight vectorizable adds, no position map.
      for (index_t cc = 0; cc < c; ++cc) {
        T* dcol = dst + (src_cols[cc] - base) * ldd;
        const T* scol = scratch.data() + cc * static_cast<std::size_t>(m);
        for (index_t rr = 0; rr < m; ++rr) dcol[rr] += scol[rr];
      }
      return;
    }
    subset_positions(src_rows, dst_rows, rpos);
    for (index_t cc = 0; cc < c; ++cc) {
      const index_t dc = src_cols[cc] - base;
      T* dcol = dst + dc * ldd;
      for (index_t rr = 0; rr < m; ++rr)
        dcol[rpos[rr]] += scratch[rr + cc * static_cast<index_t>(m)];
    }
  } else {
    // U block (I, J): columns are a subset, rows are full height.
    const index_t dbj = find_block(S.U[I], J);
    GESP_ASSERT(dbj >= 0, "missing destination U block");
    const auto& dst_cols = S.U[I][dbj].cols;
    T* dst = unz_[I].data() + u_off_[I][dbj];
    const index_t bI = S.block_cols(I);
    const index_t base = S.sn_start[I];
    if (c == static_cast<index_t>(dst_cols.size()) && m == bI) {
      // Columns identical and rows full height: one contiguous add over
      // the whole m-by-c block.
      const std::size_t len = static_cast<std::size_t>(m) * c;
      for (std::size_t x = 0; x < len; ++x) dst[x] += scratch[x];
      return;
    }
    subset_positions(src_cols, dst_cols, cpos);
    for (index_t cc = 0; cc < c; ++cc) {
      T* dcol = dst + cpos[cc] * bI;
      for (index_t rr = 0; rr < m; ++rr)
        dcol[src_rows[rr] - base] +=
            scratch[rr + cc * static_cast<index_t>(m)];
    }
  }
}

template <class T>
void LUFactors<T>::eliminate(const NumericOptions& opt) {
  GESP_CHECK(!(opt.record_replacements &&
               opt.panel_pivot != dense::PanelPivot::static_),
             Errc::invalid_argument,
             "SMW replacement recording assumes the unpivoted factorization; "
             "it cannot combine with an in-block pivoting strategy");
  growth_abort_ = opt.growth_abort;
  const index_t N = sym_->nsup;
  rowperm_.assign(static_cast<std::size_t>(N), {});
  umax_k_.assign(static_cast<std::size_t>(N), 0.0);
  stats_k_.assign(static_cast<std::size_t>(N), {});
  repl_k_.assign(static_cast<std::size_t>(N), {});
  // Float only: flush subnormals for the whole elimination (see
  // denormal.hpp). Placed before the pool so workers inherit the mode.
  DenormalFlushGuard ftz(std::is_same_v<T, float>);
  ThreadPool pool(opt.num_threads);
  const bool dag =
      opt.schedule == Schedule::kTaskDag ||
      (opt.schedule == Schedule::kAuto && pool.num_threads() > 1);
  if (dag)
    eliminate_taskdag(opt, pool);
  else
    eliminate_forkjoin(opt, pool);
  finish_elimination();
}

template <class T>
void LUFactors<T>::merge_pivot_stats() {
  const symbolic::SymbolicLU& S = *sym_;
  stats_ = {};
  replacements_.clear();
  for (index_t K = 0; K < S.nsup; ++K) {
    stats_.replaced += stats_k_[K].replaced;
    stats_.swaps += stats_k_[K].swaps;
    for (const auto& r : repl_k_[K])
      replacements_.emplace_back(S.sn_start[K] + r.col, r.delta);
  }
}

template <class T>
void LUFactors<T>::finish_elimination() {
  const index_t N = sym_->nsup;
  pivoted_ = false;
  for (index_t K = 0; K < N && !pivoted_; ++K)
    pivoted_ = !rowperm_[K].empty();
  merge_pivot_stats();
  finish_growth(false);
  if (stats_.replaced > 0)
    metrics::global().counter("numeric.pivots_replaced").inc(stats_.replaced);
  if (stats_.swaps > 0)
    metrics::global().counter("numeric.pivot_swaps").inc(stats_.swaps);
  metrics::global().gauge("numeric.pivot_growth").set(growth_);
  if (trace::enabled()) {
    // One point event per perturbed pivot — the paper's step (3) made
    // visible on the timeline (column id; delta magnitude as the value).
    using std::abs;
    for (const auto& [col, delta] : replacements_)
      trace::instant_value("factor", "pivot_replaced",
                           static_cast<double>(abs(delta)), col);
    if (replacements_.empty() && stats_.replaced > 0)
      trace::instant("factor", "pivots_replaced_unrecorded",
                     stats_.replaced);
  }
}

template <class T>
void LUFactors<T>::eliminate_forkjoin(const NumericOptions& opt,
                                      ThreadPool& pool) {
  const symbolic::SymbolicLU& S = *sym_;
  const index_t N = S.nsup;
  dense::PivotPolicy policy;
  policy.tiny_threshold = opt.tiny_threshold;
  policy.aggressive = opt.aggressive_replacement;
  policy.strategy = opt.panel_pivot;
  policy.threshold_tau = opt.pivot_threshold_tau;

  const int W = pool.num_threads();
  // Per-worker scratch so the update pairs can run concurrently.
  std::vector<std::vector<T>> scratch_w(static_cast<std::size_t>(W));
  std::vector<std::vector<index_t>> rpos_w(static_cast<std::size_t>(W));
  std::vector<std::vector<index_t>> cpos_w(static_cast<std::size_t>(W));

  for (index_t K = 0; K < N; ++K) {
    const index_t b = S.block_cols(K);
    T* diag = lnz_[K].data();
    // (1) factor the diagonal block (strategy dispatch; static pivots with
    // tiny replacement by default). Bookkeeping goes to the per-K sinks;
    // finish_elimination merges them in ascending K.
    factor_diag(K, policy, stats_k_[K],
                opt.record_replacements ? &repl_k_[K] : nullptr);
    // (2) panel: L(I,K) <- A(I,K) · U(K,K)^{-1}, block rows in parallel.
    {
      GESP_TRACE_SPAN_ID("factor", "panel", K);
      pool.parallel_for(
          static_cast<index_t>(S.L[K].size()),
          [&](index_t lo, index_t hi, int) {
            for (index_t bi = lo; bi < hi; ++bi) {
              const index_t m = static_cast<index_t>(S.L[K][bi].rows.size());
              dense::trsm_right_upper(diag, b, b,
                                      lnz_[K].data() + l_off_[K][bi], m, m);
            }
          },
          /*grain=*/2);
      // (2') row: U(K,J) <- L(K,K)^{-1} · A(K,J), block columns in parallel.
      pool.parallel_for(
          static_cast<index_t>(S.U[K].size()),
          [&](index_t lo, index_t hi, int) {
            for (index_t uj = lo; uj < hi; ++uj) {
              const index_t c = static_cast<index_t>(S.U[K][uj].cols.size());
              if (!rowperm_[K].empty())
                permute_rows(rowperm_[K], unz_[K].data() + u_off_[K][uj], b,
                             c);
              dense::trsm_left_lower_unit(
                  diag, b, b, unz_[K].data() + u_off_[K][uj], c, b);
            }
          },
          /*grain=*/2);
    }
    // In-flight growth monitor: block row K of U is final after the panel
    // phase, so the running growth is known before any further work.
    if (monitor_supernode(K)) finish_growth(/*aborted=*/true);
    // (3) rank-b update of the trailing matrix: each (I,J) pair writes a
    // distinct destination block, so pairs fork across threads freely.
    const index_t npairs = static_cast<index_t>(S.L[K].size()) *
                           static_cast<index_t>(S.U[K].size());
    GESP_TRACE_SPAN_ID("factor", "update", K);
    pool.parallel_for(
        npairs,
        [&](index_t lo, index_t hi, int w) {
          for (index_t pair = lo; pair < hi; ++pair)
            update_pair(K, static_cast<std::size_t>(pair) / S.U[K].size(),
                        static_cast<std::size_t>(pair) % S.U[K].size(),
                        scratch_w[w], rpos_w[w], cpos_w[w]);
        },
        /*grain=*/2);
  }
}

// Task-DAG schedule (the paper's point: static pivoting fixes the whole
// elimination structure up front, so the numeric phase can be scheduled in
// advance). Tasks per supernode K: F(K) = diagonal factor, a few
// panel-solve chunks, a "panels done" milestone M(K), and one update task
// Upd(K,O) per destination *owner* supernode O — the supernode whose
// storage the update writes, O = min(I,J) (I>J lands in L's column J,
// I<J in U's row I, I==J in the diagonal). Grouping the (I,J) pairs by
// owner keeps the task count proportional to the block structure rather
// than to the (potentially enormous) number of block pairs, while
// independent etree subtrees still pipeline with no per-supernode barrier.
//
// Bitwise reproducibility: updates into the blocks of one owner are
// chained through last_owner[] in ascending source-K order — the serial
// accumulation order — and within one K each destination block receives at
// most one update (pairs have distinct (I,J)). F(K) depends on the chain
// of owner K, so the diagonal factors see exactly the serial operand
// values.
template <class T>
void LUFactors<T>::eliminate_taskdag(const NumericOptions& opt,
                                     ThreadPool& pool) {
  const symbolic::SymbolicLU& S = *sym_;
  const index_t N = S.nsup;
  dense::PivotPolicy policy;
  policy.tiny_threshold = opt.tiny_threshold;
  policy.aggressive = opt.aggressive_replacement;
  policy.strategy = opt.panel_pivot;
  policy.threshold_tau = opt.pivot_threshold_tau;

  // Pivot stats/replacements go to the per-supernode sinks (merged in K
  // order by finish_elimination) so concurrent F(K) tasks never touch
  // shared state and the recorded order matches serial.
  const bool record = opt.record_replacements;
  // Growth-abort flag: once any milestone's monitor trips, remaining tasks
  // degrade to no-ops so the graph drains quickly; the violation itself is
  // reported deterministically from umax_k_ by finish_growth (the blocks
  // already written are exactly the serial values, so which supernodes
  // violate is schedule-independent even if the drain order is not).
  std::atomic<bool> abort{false};

  TaskGraph graph;
  // Last task that wrote into each owner supernode's storage.
  std::vector<TaskGraph::TaskId> last_owner(static_cast<std::size_t>(N), -1);
  const index_t P = static_cast<index_t>(pool.num_threads());

  for (index_t K = 0; K < N; ++K) {
    const index_t b = S.block_cols(K);
    const index_t nl = static_cast<index_t>(S.L[K].size());
    const index_t nu = static_cast<index_t>(S.U[K].size());
    // F(K): factor the diagonal block after the last update into owner K.
    const auto fk = graph.add_task([this, K, &policy, record, &abort] {
      if (abort.load(std::memory_order_relaxed)) return;
      factor_diag(K, policy, stats_k_[K], record ? &repl_k_[K] : nullptr);
    });
    if (last_owner[K] >= 0) graph.add_dependency(last_owner[K], fk);
    // Panel solves in up to P chunks per side (plenty for the pool while
    // keeping the task count linear in the block structure), then a
    // milestone M(K) the update tasks hang off. The milestone doubles as
    // the in-flight growth monitor — block row K of U is final here — so
    // it is created even when there is nothing to update.
    const auto mk = graph.add_task([this, K, &abort] {
      if (abort.load(std::memory_order_relaxed)) return;
      if (monitor_supernode(K)) abort.store(true, std::memory_order_relaxed);
    });
    if (nl + nu > 0) {
      const index_t lchunks = std::min(P, nl), uchunks = std::min(P, nu);
      for (index_t ch = 0; ch < lchunks; ++ch) {
        const index_t lo = nl * ch / lchunks, hi = nl * (ch + 1) / lchunks;
        const auto t = graph.add_task([this, K, b, lo, hi, &S, &abort] {
          if (abort.load(std::memory_order_relaxed)) return;
          GESP_TRACE_SPAN_ID("factor", "panelL", K);
          for (index_t bi = lo; bi < hi; ++bi) {
            const index_t m = static_cast<index_t>(S.L[K][bi].rows.size());
            dense::trsm_right_upper(lnz_[K].data(), b, b,
                                    lnz_[K].data() + l_off_[K][bi], m, m);
          }
        });
        graph.add_dependency(fk, t);
        graph.add_dependency(t, mk);
      }
      for (index_t ch = 0; ch < uchunks; ++ch) {
        const index_t lo = nu * ch / uchunks, hi = nu * (ch + 1) / uchunks;
        const auto t = graph.add_task([this, K, b, lo, hi, &S, &abort] {
          if (abort.load(std::memory_order_relaxed)) return;
          GESP_TRACE_SPAN_ID("factor", "panelU", K);
          for (index_t uj = lo; uj < hi; ++uj) {
            const index_t c = static_cast<index_t>(S.U[K][uj].cols.size());
            if (!rowperm_[K].empty())
              permute_rows(rowperm_[K], unz_[K].data() + u_off_[K][uj], b,
                           c);
            dense::trsm_left_lower_unit(
                lnz_[K].data(), b, b, unz_[K].data() + u_off_[K][uj], c, b);
          }
        });
        graph.add_dependency(fk, t);
        graph.add_dependency(t, mk);
      }
    } else {
      graph.add_dependency(fk, mk);
    }
    // Upd(K,O): all pairs with owner O = min(I,J), walked in ascending
    // owner order. With L[K] sorted by I and U[K] sorted by J, the pairs
    // owned by O are (row block I==O) × (all J >= O) plus (col block
    // J==O) × (all I > O).
    index_t li = 0, ui = 0;
    while (li < nl || ui < nu) {
      const index_t rowI = li < nl ? S.L[K][li].I : N;
      const index_t colJ = ui < nu ? S.U[K][ui].J : N;
      const index_t O = std::min(rowI, colJ);
      const bool has_row = rowI == O;
      const bool has_col = colJ == O;
      const auto upd = graph.add_task(
          [this, K, li, ui, nl, nu, has_row, has_col, O, &abort] {
            if (abort.load(std::memory_order_relaxed)) return;
            GESP_TRACE_SPAN_ID("factor", "update", O);
            thread_local std::vector<T> scratch;
            thread_local std::vector<index_t> rpos, cpos;
            if (has_row)
              for (index_t uj = ui; uj < nu; ++uj)
                update_pair(K, li, uj, scratch, rpos, cpos);
            if (has_col)
              for (index_t bi = li + (has_row ? 1 : 0); bi < nl; ++bi)
                update_pair(K, bi, ui, scratch, rpos, cpos);
          });
      graph.add_dependency(mk, upd);
      if (last_owner[O] >= 0) graph.add_dependency(last_owner[O], upd);
      last_owner[O] = upd;
      if (has_row) ++li;
      if (has_col) ++ui;
    }
  }

  graph.run(pool);
}

template <class T>
void LUFactors<T>::refactorize_partial(const sparse::CscMatrix<T>& A,
                                       const std::vector<char>& dirty,
                                       const NumericOptions& opt) {
  GESP_CHECK(A.ncols == sym_->n && A.nrows == sym_->n, Errc::invalid_argument,
             "matrix does not match the symbolic structure");
  GESP_CHECK(dirty.size() == static_cast<std::size_t>(sym_->nsup),
             Errc::invalid_argument,
             "dirty set size does not match the supernode count");
  GESP_CHECK(!(opt.record_replacements &&
               opt.panel_pivot != dense::PanelPivot::static_),
             Errc::invalid_argument,
             "SMW replacement recording assumes the unpivoted factorization; "
             "it cannot combine with an in-block pivoting strategy");
  {
    // A dirty set that is not closed would scatter-add updates into blocks
    // that were never reset — silent corruption. Verify instead of trusting.
    std::vector<char> closed(dirty.begin(), dirty.end());
    symbolic::close_update_reachable(*sym_, closed);
    GESP_CHECK(std::equal(closed.begin(), closed.end(), dirty.begin()),
               Errc::invalid_argument,
               "dirty set is not closed under update reachability");
  }
  growth_abort_ = opt.growth_abort;
  const index_t N = sym_->nsup;
  for (index_t K = 0; K < N; ++K) {
    if (!dirty[K]) continue;
    std::fill(lnz_[K].begin(), lnz_[K].end(), T{});
    std::fill(unz_[K].begin(), unz_[K].end(), T{});
    rowperm_[K].clear();
    umax_k_[K] = 0.0;
    stats_k_[K] = {};
    repl_k_[K].clear();
  }
  scatter_values(A, &dirty);
  DenormalFlushGuard ftz(std::is_same_v<T, float>);
  ThreadPool pool(opt.num_threads);
  eliminate_partial(opt, pool, dirty);
  finish_elimination();
}

// The partial sweep runs one deterministic schedule regardless of
// NumericOptions::schedule: parallel_for phases whose accumulation order is
// the serial one (every full-factorization engine is bitwise identical to
// serial, so "identical to full under any schedule" holds by transitivity).
// Dirty supernodes run the complete factor/panel/monitor/update step; clean
// supernodes keep their blocks untouched and only replay the update pairs
// whose owner is dirty — a re-scattered destination needs the contribution
// of EVERY source, clean or not, in ascending-K order.
template <class T>
void LUFactors<T>::eliminate_partial(const NumericOptions& opt,
                                     ThreadPool& pool,
                                     const std::vector<char>& dirty) {
  const symbolic::SymbolicLU& S = *sym_;
  const index_t N = S.nsup;
  dense::PivotPolicy policy;
  policy.tiny_threshold = opt.tiny_threshold;
  policy.aggressive = opt.aggressive_replacement;
  policy.strategy = opt.panel_pivot;
  policy.threshold_tau = opt.pivot_threshold_tau;

  const int W = pool.num_threads();
  std::vector<std::vector<T>> scratch_w(static_cast<std::size_t>(W));
  std::vector<std::vector<index_t>> rpos_w(static_cast<std::size_t>(W));
  std::vector<std::vector<index_t>> cpos_w(static_cast<std::size_t>(W));
  std::vector<index_t> pairs;  // flattened bi*nu+uj pairs into dirty owners

  for (index_t K = 0; K < N; ++K) {
    const index_t nl = static_cast<index_t>(S.L[K].size());
    const index_t nu = static_cast<index_t>(S.U[K].size());
    if (dirty[K]) {
      const index_t b = S.block_cols(K);
      T* diag = lnz_[K].data();
      factor_diag(K, policy, stats_k_[K],
                  opt.record_replacements ? &repl_k_[K] : nullptr);
      {
        GESP_TRACE_SPAN_ID("factor", "panel", K);
        pool.parallel_for(
            nl,
            [&](index_t lo, index_t hi, int) {
              for (index_t bi = lo; bi < hi; ++bi) {
                const index_t m =
                    static_cast<index_t>(S.L[K][bi].rows.size());
                dense::trsm_right_upper(diag, b, b,
                                        lnz_[K].data() + l_off_[K][bi], m, m);
              }
            },
            /*grain=*/2);
        pool.parallel_for(
            nu,
            [&](index_t lo, index_t hi, int) {
              for (index_t uj = lo; uj < hi; ++uj) {
                const index_t c =
                    static_cast<index_t>(S.U[K][uj].cols.size());
                if (!rowperm_[K].empty())
                  permute_rows(rowperm_[K], unz_[K].data() + u_off_[K][uj],
                               b, c);
                dense::trsm_left_lower_unit(
                    diag, b, b, unz_[K].data() + u_off_[K][uj], c, b);
              }
            },
            /*grain=*/2);
      }
      if (monitor_supernode(K)) finish_growth(/*aborted=*/true);
      // Every owner of a dirty K's pairs is dirty (the closure), so all
      // pairs run, exactly as in the full elimination.
      const index_t npairs = nl * nu;
      GESP_TRACE_SPAN_ID("factor", "update", K);
      pool.parallel_for(
          npairs,
          [&](index_t lo, index_t hi, int w) {
            for (index_t pair = lo; pair < hi; ++pair)
              update_pair(K, static_cast<std::size_t>(pair) / S.U[K].size(),
                          static_cast<std::size_t>(pair) % S.U[K].size(),
                          scratch_w[w], rpos_w[w], cpos_w[w]);
          },
          /*grain=*/2);
    } else {
      // Clean K: factors final, blocks untouched; replay only the pairs
      // that feed a re-eliminated owner.
      pairs.clear();
      for (index_t bi = 0; bi < nl; ++bi) {
        const index_t I = S.L[K][bi].I;
        for (index_t uj = 0; uj < nu; ++uj)
          if (dirty[std::min(I, S.U[K][uj].J)])
            pairs.push_back(bi * nu + uj);
      }
      if (pairs.empty()) continue;
      GESP_TRACE_SPAN_ID("factor", "update", K);
      pool.parallel_for(
          static_cast<index_t>(pairs.size()),
          [&](index_t lo, index_t hi, int w) {
            for (index_t p = lo; p < hi; ++p)
              update_pair(K, static_cast<std::size_t>(pairs[p]) / nu,
                          static_cast<std::size_t>(pairs[p]) % nu,
                          scratch_w[w], rpos_w[w], cpos_w[w]);
          },
          /*grain=*/2);
    }
  }
}

template <class T>
void LUFactors<T>::factor_diag(index_t K, const dense::PivotPolicy& policy,
                               dense::PivotStats& stats,
                               std::vector<dense::PivotReplacement<T>>* repl) {
  const index_t b = sym_->block_cols(K);
  GESP_TRACE_SPAN_ID("factor", "F", K);
  if (policy.strategy == dense::PanelPivot::static_) {
    dense::getrf(lnz_[K].data(), b, b, policy, stats, {}, repl);
    return;
  }
  auto& perm = rowperm_[K];
  perm.resize(static_cast<std::size_t>(b));
  dense::getrf(lnz_[K].data(), b, b, policy, stats,
               std::span<index_t>(perm), repl);
  // Keep the identity case cheap for the panel phase and the solves.
  bool identity = true;
  for (index_t r = 0; r < b && identity; ++r) identity = perm[r] == r;
  if (identity) perm.clear();
}

template <class T>
void LUFactors<T>::permute_rows(const std::vector<index_t>& perm, T* blk,
                                index_t b, index_t ncols) const {
  std::vector<T> tmp(static_cast<std::size_t>(b));
  for (index_t c = 0; c < ncols; ++c) {
    T* col = blk + static_cast<std::size_t>(c) * b;
    for (index_t r = 0; r < b; ++r) tmp[r] = col[perm[r]];
    std::copy(tmp.begin(), tmp.end(), col);
  }
}

template <class T>
bool LUFactors<T>::monitor_supernode(index_t K) {
  using std::abs;
  const symbolic::SymbolicLU& S = *sym_;
  const index_t b = S.block_cols(K);
  // Supernode K's contribution to max |U|: the diagonal block's upper
  // triangle plus every U(K,J) segment — all final once the panel phase of
  // K is done (later supernodes never write into block row K).
  double umax = 0.0;
  for (index_t c = 0; c < b; ++c)
    for (index_t r = 0; r <= c; ++r)
      umax = std::max<double>(umax, abs(lnz_[K][r + c * b]));
  for (const T& v : unz_[K]) umax = std::max<double>(umax, abs(v));
  umax_k_[K] = umax;
  return growth_abort_ > 0.0 && amax_ > 0.0 &&
         umax > growth_abort_ * amax_;
}

template <class T>
void LUFactors<T>::finish_growth(bool aborted) {
  double umax = 0.0;
  index_t trigger = -1;
  const index_t N = sym_->nsup;
  for (index_t K = 0; K < N; ++K) {
    umax = std::max(umax, umax_k_[K]);
    if (trigger < 0 && growth_abort_ > 0.0 && amax_ > 0.0 &&
        umax_k_[K] > growth_abort_ * amax_)
      trigger = K;
  }
  growth_ = amax_ > 0.0 ? umax / amax_ : 0.0;
  metrics::global().gauge("numeric.growth").set(growth_);
  if (trace::enabled()) {
    // Timeline of the in-flight monitor: one point per supernode where the
    // running growth doubled (coarse enough to keep traces small).
    double last = 0.0, run = 0.0;
    for (index_t K = 0; K < N; ++K) {
      run = std::max(run, umax_k_[K]);
      const double g = amax_ > 0.0 ? run / amax_ : 0.0;
      if (g > 1.0 && g > 2.0 * last) {
        trace::instant_value("factor", "growth", g, K);
        last = g;
      }
    }
  }
  if (trigger >= 0) {
    metrics::global().counter("numeric.growth_aborts").inc();
    trace::instant("factor", "growth_abort", trigger);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "element growth %.3e at supernode %d exceeds the abort "
                  "threshold %.3e%s",
                  amax_ > 0.0 ? umax_k_[trigger] / amax_ : 0.0,
                  static_cast<int>(trigger), growth_abort_,
                  aborted ? " (factorization stopped early)" : "");
    throw Error(Errc::unstable, buf);
  }
}

template <class T>
void LUFactors<T>::solve_lower(std::span<T> x) const {
  const symbolic::SymbolicLU& S = *sym_;
  GESP_CHECK(x.size() == static_cast<std::size_t>(S.n),
             Errc::invalid_argument, "solve vector size mismatch");
  std::vector<T> tmp;
  for (index_t K = 0; K < S.nsup; ++K) {
    const index_t b = S.block_cols(K);
    T* xk = x.data() + S.sn_start[K];
    // Replay supernode K's in-block row interchanges: the permuted
    // factorization solved L_KK·y = P_K·b̂_K.
    if (pivoted_ && !rowperm_[K].empty()) {
      const auto& p = rowperm_[K];
      tmp.resize(static_cast<std::size_t>(b));
      for (index_t r = 0; r < b; ++r) tmp[r] = xk[p[r]];
      std::copy(tmp.begin(), tmp.end(), xk);
    }
    dense::trsv_lower_unit(lnz_[K].data(), b, b, xk);
    for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
      const auto& rows = S.L[K][bi].rows;
      const index_t m = static_cast<index_t>(rows.size());
      const T* blk = lnz_[K].data() + l_off_[K][bi];
      for (index_t c = 0; c < b; ++c) {
        const T xc = xk[c];
        if (xc == T{}) continue;
        const T* col = blk + c * m;
        for (index_t r = 0; r < m; ++r) x[rows[r]] -= col[r] * xc;
      }
    }
  }
}

template <class T>
void LUFactors<T>::solve_upper(std::span<T> x) const {
  const symbolic::SymbolicLU& S = *sym_;
  GESP_CHECK(x.size() == static_cast<std::size_t>(S.n),
             Errc::invalid_argument, "solve vector size mismatch");
  for (index_t K = S.nsup - 1; K >= 0; --K) {
    const index_t b = S.block_cols(K);
    T* xk = x.data() + S.sn_start[K];
    for (std::size_t uj = 0; uj < S.U[K].size(); ++uj) {
      const auto& cols = S.U[K][uj].cols;
      const T* blk = unz_[K].data() + u_off_[K][uj];
      for (std::size_t cc = 0; cc < cols.size(); ++cc) {
        const T xc = x[cols[cc]];
        if (xc == T{}) continue;
        const T* col = blk + cc * static_cast<std::size_t>(b);
        for (index_t r = 0; r < b; ++r) xk[r] -= col[r] * xc;
      }
    }
    dense::trsv_upper(lnz_[K].data(), b, b, xk);
  }
}

template <class T>
void LUFactors<T>::solve(std::span<T> x) const {
  DenormalFlushGuard ftz(std::is_same_v<T, float>);
  solve_lower(x);
  solve_upper(x);
}

template <class T>
void LUFactors<T>::solve_multi(std::span<T> X, index_t nrhs) const {
  const symbolic::SymbolicLU& S = *sym_;
  GESP_CHECK(nrhs >= 1 &&
                 X.size() == static_cast<std::size_t>(S.n) * nrhs,
             Errc::invalid_argument, "solve_multi dimension mismatch");
  DenormalFlushGuard ftz(std::is_same_v<T, float>);
  const index_t n = S.n;
  std::vector<T> seg;  // gathered block-row segment, b-by-nrhs
  std::vector<T> tmp;
  // Forward substitution, all right-hand sides at once.
  for (index_t K = 0; K < S.nsup; ++K) {
    const index_t b = S.block_cols(K);
    const index_t base = S.sn_start[K];
    if (pivoted_ && !rowperm_[K].empty()) {
      const auto& p = rowperm_[K];
      tmp.resize(static_cast<std::size_t>(b));
      for (index_t c = 0; c < nrhs; ++c) {
        T* xk = X.data() + base + c * static_cast<std::size_t>(n);
        for (index_t r = 0; r < b; ++r) tmp[r] = xk[p[r]];
        std::copy(tmp.begin(), tmp.end(), xk);
      }
    }
    dense::trsm_left_lower_unit(lnz_[K].data(), b, b, X.data() + base, nrhs,
                                n);
    for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
      const auto& rows = S.L[K][bi].rows;
      const index_t m = static_cast<index_t>(rows.size());
      const T* blk = lnz_[K].data() + l_off_[K][bi];
      // seg = -(L(I,K) · X(K,:)), then scatter-add into the target rows.
      seg.assign(static_cast<std::size_t>(m) * nrhs, T{});
      dense::gemm_minus(m, nrhs, b, blk, m, X.data() + base, n, seg.data(),
                        m);
      for (index_t c = 0; c < nrhs; ++c)
        for (index_t r = 0; r < m; ++r)
          X[rows[r] + c * static_cast<std::size_t>(n)] += seg[r + c * m];
    }
  }
  // Backward substitution.
  std::vector<T> gath;
  for (index_t K = S.nsup - 1; K >= 0; --K) {
    const index_t b = S.block_cols(K);
    const index_t base = S.sn_start[K];
    for (std::size_t uj = 0; uj < S.U[K].size(); ++uj) {
      const auto& cols = S.U[K][uj].cols;
      const index_t m = static_cast<index_t>(cols.size());
      const T* blk = unz_[K].data() + u_off_[K][uj];
      // Gather X(cols,:) into a dense m-by-nrhs block, multiply, subtract.
      gath.resize(static_cast<std::size_t>(m) * nrhs);
      for (index_t c = 0; c < nrhs; ++c)
        for (index_t r = 0; r < m; ++r)
          gath[r + c * static_cast<std::size_t>(m)] =
              X[cols[r] + c * static_cast<std::size_t>(n)];
      dense::gemm_minus(b, nrhs, m, blk, b, gath.data(), m, X.data() + base,
                        n);
    }
    for (index_t c = 0; c < nrhs; ++c)
      dense::trsv_upper(lnz_[K].data(), b, b,
                        X.data() + base + c * static_cast<std::size_t>(n));
  }
}

template <class T>
void LUFactors<T>::solve_transposed(std::span<T> x) const {
  const symbolic::SymbolicLU& S = *sym_;
  GESP_CHECK(x.size() == static_cast<std::size_t>(S.n),
             Errc::invalid_argument, "solve vector size mismatch");
  DenormalFlushGuard ftz(std::is_same_v<T, float>);
  // Aᵀ = Uᵀ·Lᵀ. Forward pass with Uᵀ (lower triangular): after x(J) is
  // solved, push its contributions through the transposed U blocks.
  for (index_t J = 0; J < S.nsup; ++J) {
    const index_t b = S.block_cols(J);
    T* xj = x.data() + S.sn_start[J];
    dense::trsv_upper_trans(lnz_[J].data(), b, b, xj);
    for (std::size_t uj = 0; uj < S.U[J].size(); ++uj) {
      const auto& cols = S.U[J][uj].cols;
      const T* blk = unz_[J].data() + u_off_[J][uj];
      for (std::size_t cc = 0; cc < cols.size(); ++cc) {
        T sum{};
        const T* col = blk + cc * static_cast<std::size_t>(b);
        for (index_t r = 0; r < b; ++r) sum += col[r] * xj[r];
        x[cols[cc]] -= sum;
      }
    }
  }
  // Backward pass with Lᵀ (unit upper triangular): gather contributions
  // from the rows below before solving the diagonal block.
  std::vector<T> tmp;
  for (index_t K = S.nsup - 1; K >= 0; --K) {
    const index_t b = S.block_cols(K);
    T* xk = x.data() + S.sn_start[K];
    for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
      const auto& rows = S.L[K][bi].rows;
      const index_t m = static_cast<index_t>(rows.size());
      const T* blk = lnz_[K].data() + l_off_[K][bi];
      for (index_t c = 0; c < b; ++c) {
        T sum{};
        const T* col = blk + c * m;
        for (index_t r = 0; r < m; ++r) sum += col[r] * x[rows[r]];
        xk[c] -= sum;
      }
    }
    dense::trsv_lower_unit_trans(lnz_[K].data(), b, b, xk);
    // Undo supernode K's in-block row interchanges: the factorization's
    // diagonal block is P_K-relative, so z_K = P_Kᵀ·(L_KKᵀ)⁻¹·w_K.
    if (pivoted_ && !rowperm_[K].empty()) {
      const auto& p = rowperm_[K];
      tmp.resize(static_cast<std::size_t>(b));
      for (index_t r = 0; r < b; ++r) tmp[p[r]] = xk[r];
      std::copy(tmp.begin(), tmp.end(), xk);
    }
  }
}

template <class T>
sparse::CscMatrix<T> LUFactors<T>::l_matrix() const {
  const symbolic::SymbolicLU& S = *sym_;
  sparse::CooMatrix<T> L(S.n, S.n);
  for (index_t K = 0; K < S.nsup; ++K) {
    const index_t b = S.block_cols(K);
    const index_t base = S.sn_start[K];
    for (index_t c = 0; c < b; ++c) {
      L.add(base + c, base + c, T{1});
      for (index_t r = c + 1; r < b; ++r) {
        const T v = lnz_[K][r + c * b];
        if (v != T{}) L.add(base + r, base + c, v);
      }
    }
    for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
      const auto& rows = S.L[K][bi].rows;
      const index_t m = static_cast<index_t>(rows.size());
      const T* blk = lnz_[K].data() + l_off_[K][bi];
      for (index_t c = 0; c < b; ++c)
        for (index_t r = 0; r < m; ++r) {
          const T v = blk[r + c * m];
          if (v != T{}) L.add(rows[r], base + c, v);
        }
    }
  }
  return L.to_csc();
}

template <class T>
sparse::CscMatrix<T> LUFactors<T>::u_matrix() const {
  const symbolic::SymbolicLU& S = *sym_;
  sparse::CooMatrix<T> U(S.n, S.n);
  for (index_t K = 0; K < S.nsup; ++K) {
    const index_t b = S.block_cols(K);
    const index_t base = S.sn_start[K];
    for (index_t c = 0; c < b; ++c)
      for (index_t r = 0; r <= c; ++r) {
        const T v = lnz_[K][r + c * b];
        if (v != T{} || r == c) U.add(base + r, base + c, v);
      }
    for (std::size_t uj = 0; uj < S.U[K].size(); ++uj) {
      const auto& cols = S.U[K][uj].cols;
      const T* blk = unz_[K].data() + u_off_[K][uj];
      for (std::size_t cc = 0; cc < cols.size(); ++cc)
        for (index_t r = 0; r < b; ++r) {
          const T v = blk[r + cc * static_cast<std::size_t>(b)];
          if (v != T{}) U.add(base + r, cols[cc], v);
        }
    }
  }
  return U.to_csc();
}

template class LUFactors<double>;
template class LUFactors<float>;
template class LUFactors<Complex>;

}  // namespace gesp::numeric
