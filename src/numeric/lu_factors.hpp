// Numeric LU factors in the supernodal 2-D block layout of the paper's
// Figure 7, plus the serial right-looking factorization (Figure 8 on a
// single process) and the block triangular solves.
//
// Storage per block column K of L: one contiguous buffer holding the full
// b×b diagonal block (upper triangle carries U's diagonal block) followed by
// every off-diagonal block, column-major, exactly the index[]/nzval[] pair
// the paper describes — so a block column can be shipped in one message.
// Storage per block row K of U: one buffer of dense b-high column segments.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "dense/kernels.hpp"
#include "sparse/csc.hpp"
#include "symbolic/symbolic.hpp"

namespace gesp {
class ThreadPool;
}

namespace gesp::numeric {

/// How the shared-memory factorization is scheduled across threads. Both
/// schedules produce bitwise identical factors (and identical to serial):
/// every destination block receives its updates in ascending source-K
/// order, the same order the serial loop uses.
enum class Schedule {
  /// kTaskDag when num_threads > 1, plain serial execution otherwise.
  kAuto,
  /// Per-phase fork-join barriers at every supernode (the SuperLU_MT-style
  /// baseline the paper compares against).
  kForkJoin,
  /// Dependency-counter task DAG over the supernodal elimination tree:
  /// diagonal factor / panel solve / block update tasks release their
  /// successors individually, so independent subtrees pipeline instead of
  /// synchronizing at every K.
  kTaskDag,
};

/// Options for the numeric factorization.
struct NumericOptions {
  /// Absolute tiny-pivot replacement threshold (sqrt(eps)·||A|| in the GESP
  /// driver); <= 0 means fail on zero pivots instead (plain GENP).
  double tiny_threshold = 0.0;
  /// Replace tiny pivots by the block-column maximum instead of the
  /// threshold (paper §4 "aggressive pivot size control"); meaningful
  /// together with record_replacements + SMW recovery.
  bool aggressive_replacement = false;
  /// Record each replacement (global column, delta) so the solve can be
  /// corrected by the Sherman–Morrison–Woodbury formula.
  bool record_replacements = false;
  /// Shared-memory parallel factorization (the SuperLU_MT-style execution
  /// the paper compares against): panel TRSMs and rank-b update pairs are
  /// forked across this many threads with a join per phase, so the result
  /// is bitwise identical to the serial factorization. 1 = serial.
  int num_threads = 1;
  /// Thread schedule; see Schedule. Ignored when num_threads == 1.
  Schedule schedule = Schedule::kAuto;
  /// Pivot-selection strategy inside each diagonal block. Non-static
  /// strategies confine row interchanges to the diagonal block, so the
  /// symbolic structure is untouched; the local permutations are applied
  /// to the U row during the panel phase and replayed in the triangular
  /// solves. static_ is bitwise identical to the pre-portfolio kernels.
  /// Exclusive with record_replacements (the SMW correction assumes the
  /// unpivoted factorization).
  dense::PanelPivot panel_pivot = dense::PanelPivot::static_;
  /// Threshold-pivoting tau (see dense::PivotPolicy::threshold_tau).
  double pivot_threshold_tau = 0.1;
  /// In-flight element-growth abort: when > 0, the factorization throws
  /// Errc::unstable as soon as any supernode's max |U| exceeds
  /// growth_abort·max|A| — failing fast instead of completing a garbage
  /// factorization and waiting for refinement to notice. <= 0 disables.
  double growth_abort = 0.0;
};

template <class T>
class LUFactors {
 public:
  /// Factorize the (already permuted and scaled) matrix over the static
  /// structure `sym`. Throws Errc::numerically_singular on a zero pivot
  /// when replacement is disabled.
  LUFactors(std::shared_ptr<const symbolic::SymbolicLU> sym,
            const sparse::CscMatrix<T>& A, const NumericOptions& opt);

  const symbolic::SymbolicLU& sym() const { return *sym_; }

  /// Solve L·U·x = b in place (b and x in the permuted ordering).
  void solve(std::span<T> x) const;
  /// Multi-RHS variant: X is n-by-nrhs column-major (leading dimension n);
  /// all right-hand sides move through each block together, so the dense
  /// kernels run at matrix-matrix rather than matrix-vector intensity.
  void solve_multi(std::span<T> X, index_t nrhs) const;
  /// Forward substitution L·y = b in place (unit lower triangular L).
  void solve_lower(std::span<T> x) const;
  /// Backward substitution U·x = y in place.
  void solve_upper(std::span<T> x) const;
  /// Solve (L·U)ᵀ·x = b in place — the Aᵀ solves needed by the
  /// Hager–Higham condition/forward-error estimator.
  void solve_transposed(std::span<T> x) const;

  /// Recorded tiny-pivot perturbations (global column, delta added to the
  /// pivot); empty unless NumericOptions::record_replacements was set.
  const std::vector<std::pair<index_t, T>>& replacements() const {
    return replacements_;
  }

  /// Number of tiny pivots replaced (paper step (3)).
  count_t pivots_replaced() const { return stats_.replaced; }

  /// Within-block row interchanges performed (non-static panel_pivot).
  count_t pivot_swaps() const { return stats_.swaps; }

  /// Pivot growth max|u_ij| / max|a_ij| — the stability diagnostic.
  /// Computed incrementally per supernode by the in-flight monitor (the
  /// final value is identical to a whole-factor scan: max is associative).
  double pivot_growth() const { return growth_; }

  /// Local row permutation of supernode K's diagonal block (empty =
  /// identity). perm[r] = original local row now in position r; used by
  /// the distributed engine's solve mirror and the tests.
  const std::vector<index_t>& row_perm(index_t K) const {
    return rowperm_[K];
  }
  /// True when any diagonal block was actually permuted.
  bool pivoted() const { return pivoted_; }

  /// Export explicit factors for testing: L with unit diagonal, U upper
  /// triangular (stored zeros dropped).
  sparse::CscMatrix<T> l_matrix() const;
  sparse::CscMatrix<T> u_matrix() const;

  /// Raw block storage (used by the distributed engine and benches).
  const std::vector<T>& l_store(index_t K) const { return lnz_[K]; }
  const std::vector<T>& u_store(index_t K) const { return unz_[K]; }

  /// Partial refactorization for new values over the SAME pattern.
  /// `dirty[K]` marks the supernodes whose inputs changed; the set must be
  /// closed under the update dependencies (symbolic::close_update_reachable)
  /// — a clean supernode's blocks then depend only on clean supernodes, so
  /// they are reused in place, bitwise unchanged. Dirty supernodes are
  /// re-scattered from `A` and re-eliminated, receiving the updates of
  /// every source (clean sources replay their pairs from the retained
  /// panels), in the serial ascending-K accumulation order — the result is
  /// bitwise identical to constructing a fresh LUFactors from `A` under
  /// any schedule. `opt` must describe the same pivoting configuration
  /// (and in particular the same tiny_threshold) as the original
  /// factorization, or the clean blocks would encode stale decisions.
  void refactorize_partial(const sparse::CscMatrix<T>& A,
                           const std::vector<char>& dirty,
                           const NumericOptions& opt);

 private:
  void scatter_initial(const sparse::CscMatrix<T>& A);
  /// Scatter A's values into the block storage; with `dirty`, only entries
  /// owned by a dirty supernode are written (the rest keep their factored
  /// values). Recomputes amax_ over ALL of A either way.
  void scatter_values(const sparse::CscMatrix<T>& A,
                      const std::vector<char>* dirty);
  void eliminate(const NumericOptions& opt);
  /// Ascending-K sweep for refactorize_partial: dirty supernodes run the
  /// full factor/panel/update step, clean supernodes only replay their
  /// update pairs into dirty owners.
  void eliminate_partial(const NumericOptions& opt, ThreadPool& pool,
                         const std::vector<char>& dirty);
  /// pivoted_ scan + per-K stats merge + growth finish + metrics (the
  /// common tail of eliminate and refactorize_partial).
  void finish_elimination();
  /// Rebuild stats_/replacements_ from the per-supernode sinks in
  /// ascending K — the serial recording order.
  void merge_pivot_stats();
  void eliminate_forkjoin(const NumericOptions& opt, ThreadPool& pool);
  void eliminate_taskdag(const NumericOptions& opt, ThreadPool& pool);
  /// One trailing-matrix update: the (bi, uj) block pair of supernode K,
  /// scratch = -(L(I,K)·U(K,J)) scatter-added into the destination block.
  void update_pair(index_t K, std::size_t bi, std::size_t uj,
                   std::vector<T>& scratch, std::vector<index_t>& rpos,
                   std::vector<index_t>& cpos);
  /// Diagonal-block factorization of supernode K (strategy dispatch plus
  /// the local-permutation bookkeeping); stats/replacements go to the
  /// given per-K sinks so the task-DAG schedule can run F(K) concurrently.
  void factor_diag(index_t K, const dense::PivotPolicy& policy,
                   dense::PivotStats& stats,
                   std::vector<dense::PivotReplacement<T>>* repl);
  /// Apply supernode K's local row permutation to one b-by-ncols block.
  void permute_rows(const std::vector<index_t>& perm, T* blk, index_t b,
                    index_t ncols) const;
  /// In-flight growth monitor: max |U| over supernode K's finished row
  /// (diagonal upper triangle + U blocks), recorded in umax_k_[K].
  /// Returns true when the running growth exceeds the abort threshold.
  bool monitor_supernode(index_t K);
  /// Merge umax_k_ into growth_, publish metrics/trace, throw
  /// Errc::unstable when the abort threshold fired.
  void finish_growth(bool aborted);

  std::shared_ptr<const symbolic::SymbolicLU> sym_;
  std::vector<std::vector<T>> lnz_;  ///< per block column of L (+diag)
  std::vector<std::vector<T>> unz_;  ///< per block row of U
  std::vector<std::vector<std::size_t>> l_off_;  ///< block offsets in lnz_
  std::vector<std::vector<std::size_t>> u_off_;  ///< block offsets in unz_
  std::vector<std::vector<index_t>> rowperm_;  ///< per-supernode local perm
  std::vector<double> umax_k_;                 ///< per-supernode max |U|
  /// Per-supernode pivot bookkeeping, kept after the factorization so a
  /// partial refactorize can reset only the dirty supernodes' entries and
  /// re-merge; stats_/replacements_ are the ascending-K merge of these.
  std::vector<dense::PivotStats> stats_k_;
  std::vector<std::vector<dense::PivotReplacement<T>>> repl_k_;
  dense::PivotStats stats_;
  std::vector<std::pair<index_t, T>> replacements_;
  double growth_ = 0.0;
  double amax_ = 0.0;
  double growth_abort_ = 0.0;
  bool pivoted_ = false;
};

extern template class LUFactors<double>;
extern template class LUFactors<float>;
extern template class LUFactors<Complex>;

}  // namespace gesp::numeric
