#include "serve/workload.hpp"

#include <fstream>
#include <iterator>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "io/harwell_boeing.hpp"
#include "io/matrix_market.hpp"
#include "sparse/testbed.hpp"

namespace gesp::serve {

sparse::CscMatrix<double> perturb_values(const sparse::CscMatrix<double>& base,
                                         int valueset, double amplitude) {
  GESP_CHECK(valueset >= 0, Errc::invalid_argument,
             "perturb_values: valueset must be >= 0");
  sparse::CscMatrix<double> A = base;
  if (valueset == 0) return A;
  // Multiplicative perturbation: zeros stay zero, the pattern and rough
  // magnitude structure (what the static row permutation keyed on) survive.
  Rng rng(0x5e77a1ce5ull ^ static_cast<std::uint64_t>(valueset));
  for (double& v : A.values) v *= 1.0 + rng.uniform(-amplitude, amplitude);
  return A;
}

sparse::CscMatrix<double> load_base_matrix(const std::string& spec) {
  constexpr const char* kPrefix = "testbed:";
  if (spec.rfind(kPrefix, 0) == 0)
    return sparse::testbed_entry(spec.substr(std::string(kPrefix).size()))
        .make();
  if (spec.size() >= 4 && spec.compare(spec.size() - 4, 4, ".mtx") == 0)
    return io::read_matrix_market(spec);
  return io::read_harwell_boeing(spec);
}

Workload read_workload(const std::string& path) {
  std::ifstream in(path);
  GESP_CHECK(in.good(), Errc::io, "cannot open workload file: " + path);
  Workload w;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;  // blank / comment-only line
    const std::string where = path + ":" + std::to_string(lineno);
    GESP_CHECK(directive == "request", Errc::io,
               "workload: unknown directive '" + directive + "' at " + where);
    WorkloadItem item;
    GESP_CHECK(static_cast<bool>(ls >> item.matrix >> item.valueset) &&
                   item.valueset >= 0,
               Errc::io,
               "workload: expected 'request <matrix> <valueset>' at " + where);
    w.items.push_back(std::move(item));
  }
  return w;
}

void write_workload(const std::string& path, const Workload& w) {
  std::ofstream out(path);
  GESP_CHECK(out.good(), Errc::io, "cannot write workload file: " + path);
  out << "# gesp_serve workload: request <matrix> <valueset>\n";
  for (const auto& item : w.items)
    out << "request " << item.matrix << " " << item.valueset << "\n";
  GESP_CHECK(out.good(), Errc::io, "write failed: " + path);
}

Workload generate_workload(int patterns, int valuesets, int requests,
                           std::uint64_t seed) {
  GESP_CHECK(patterns > 0 && valuesets > 0 && requests > 0,
             Errc::invalid_argument,
             "generate_workload: counts must be positive");
  // Small-to-medium testbed matrices that factor quickly — serving traffic
  // is many cheap requests, not a few Table-2 monsters.
  // Ordered smallest-first so --patterns=K selects the K fastest systems.
  static const char* kPool[] = {
      "west0497-s", "jpwh991-s", "orsirr-s",  "sherman-s",
      "add20-s",    "add32-s",   "gemat11-s", "memplus-s",
  };
  constexpr int kPoolSize = static_cast<int>(std::size(kPool));
  GESP_CHECK(patterns <= kPoolSize, Errc::invalid_argument,
             "generate_workload: at most " + std::to_string(kPoolSize) +
                 " distinct patterns available");
  Rng rng(seed);
  Workload w;
  w.items.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    WorkloadItem item;
    item.matrix =
        std::string("testbed:") + kPool[rng.next_index(patterns)];
    item.valueset = static_cast<int>(rng.next_index(valuesets));
    w.items.push_back(std::move(item));
  }
  return w;
}

}  // namespace gesp::serve
