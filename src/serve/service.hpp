// SolverService — a concurrent solve server over the GESP backends.
//
// The paper's whole point is that static pivoting turns every expensive
// decision into a reusable, schedulable asset; at serving scale the
// bottleneck therefore moves from the factorization to the layer that
// routes requests onto cached factorizations. This service provides that
// layer:
//
//   * a pattern-keyed factorization cache (cache.hpp): a request with a
//     known pattern but new values takes the refactorize fast path; a
//     known (pattern, values) pair goes straight to triangular solves;
//   * a request queue with RHS batching: concurrent single-RHS requests
//     against the same cached factorization coalesce into one solve_multi
//     call, up to a configurable batch width and linger deadline;
//   * admission control and graceful degradation: bounded queue depth with
//     typed rejection (Errc::overloaded), per-request deadlines, and a
//     shed mode that skips iterative refinement under load;
//   * recovery wiring: a cached factorization that fails recoverably is
//     evicted and rebuilt cold with the recovery ladder armed, rather
//     than poisoning the cache — and the evict-and-retry spend is capped:
//     a pattern whose armed-ladder rebuilds keep failing is marked
//     *hostile* (the mark outlives the evicted entry) and subsequent
//     requests go straight to the strongest rung instead of re-climbing
//     the ladder on every arrival.
//
// Client calls are synchronous: solve() blocks until the response (or
// throws gesp::Error). Everything is observable under "serve.*" metrics
// and "serve" trace spans.
//
// Determinism note: answers are refinement-converged solutions, but the
// *transform basis* of a pattern (scalings/permutations) comes from
// whichever matrix created its cache entry — as with any hand-held
// Solver + refactorize sequence. Bit-level reproducibility across runs
// therefore requires warm()-ing patterns with a canonical value set and a
// cache large enough not to evict them; with BatchMode::per_column the
// served solutions are then bitwise identical to a serial Solver replay.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.hpp"
#include "dist/fault.hpp"
#include "refine/refine.hpp"
#include "serve/cache.hpp"
#include "tune/controller.hpp"

namespace gesp::serve {

template <class T>
class ShardedTier;

/// How a batch of coalesced single-RHS requests is executed.
enum class BatchMode {
  /// One blocked solve_multi over the whole batch — the fast path
  /// (matrix-matrix triangular kernels), last-bit different from
  /// column-by-column solves.
  blocked,
  /// One solve() per request — bitwise identical to a serial Solver
  /// making the same calls; the parity-testing mode.
  per_column,
};

/// Backend::dist sharding knobs. Meaningful only with
/// ServiceOptions::backend == Backend::dist; single-node backends REJECT a
/// non-default ShardOptions with Errc::invalid_argument rather than
/// silently ignoring it (the old failure mode this redesign removes).
struct ShardOptions {
  /// Process grid for the rank fleet; 0x0 derives the near-square grid
  /// from solver.dist.nprocs (default 4 -> 2x2). Rank 0 is both the
  /// gateway and a shard server so collective episodes can span the whole
  /// grid.
  int pr = 0, pc = 0;
  /// Copies of a hot pattern across the top rendezvous ranks; 0 means the
  /// dist default (2: primary + one backup). 1 disables replication.
  int replication = 0;
  /// Per-shard cache budgets; 0 inherits cache_max_entries /
  /// cache_max_bytes. The fleet capacity is therefore ~R x the single-node
  /// capacity under the same per-rank budget.
  std::size_t shard_max_entries = 0;
  std::size_t shard_max_bytes = 0;
  /// Primary-owner hits of one pattern before it is promoted (replicated
  /// to the next rendezvous rank); <= 0 disables promotion.
  int promote_hits = 3;
  /// Matrices whose pre-factorization byte estimate exceeds the per-shard
  /// byte budget fall through to a cooperative DistSolver factorization
  /// over the whole grid instead of crowding one shard.
  bool dist_fallthrough = true;
  /// Gateway watchdog: seconds an in-flight request may wait on its owner
  /// rank before the client gets Errc::comm; <= 0 disables (not
  /// recommended — this is the no-hung-service backstop).
  double request_timeout_s = 30.0;
  /// Transport receive watchdog inside the rank world (seconds; 0 = none).
  /// Bounds how long a collective episode can block on a lost peer.
  double recv_timeout_s = 60.0;
  /// Chaos hook forwarded to the rank world (see dist/fault.hpp).
  minimpi::FaultInjector fault;
};

/// True when any dist-only knob differs from its default — the
/// single-node-backend validation predicate.
bool shard_options_set(const ShardOptions& s) noexcept;

struct ServiceOptions {
  /// Execution engine behind the service — THE backend selector (the
  /// solver.backend field below is overwritten with it at construction).
  /// serial/threaded run the in-process worker pool; dist runs the sharded
  /// multi-rank tier (shard.hpp) over a MiniMPI world.
  Backend backend = Backend::threaded;
  /// Base solver configuration. backend is ignored (see above); under
  /// Backend::dist each shard factors with serial or threaded numerics
  /// according to num_threads, and collective episodes use the dist grid.
  SolverOptions solver;
  /// Sharding knobs (Backend::dist only; validated otherwise).
  ShardOptions shard;
  int num_workers = 2;          ///< executor threads
  std::size_t max_queue = 64;   ///< admission bound on queued requests
  std::size_t cache_max_entries = 16;
  std::size_t cache_max_bytes = std::size_t{256} << 20;
  index_t max_batch = 8;        ///< RHS coalescing width (1 = no batching)
  /// How long a worker holding a non-full batch waits for more same-
  /// (pattern, values) arrivals before executing. 0 disables lingering.
  double batch_linger_s = 200e-6;
  BatchMode batch_mode = BatchMode::blocked;
  /// Shed mode: when the queue is more than this full at execution time,
  /// solves skip iterative refinement (berr is still measured once).
  bool shed_refinement = true;
  double shed_fraction = 0.75;
  /// Recovery wiring: evict a recoverably-failed cached factorization and
  /// retry once cold with the recovery ladder armed.
  bool evict_on_failure = true;
  /// Hostile-pattern cap on evict-and-retry: after this many *failed*
  /// armed-ladder recoveries for one pattern, the pattern is marked
  /// hostile. Hostile requests skip the per-request ladder climb — the
  /// factorization is rebuilt with recovery armed at the strongest rung
  /// (GEPP) directly, and no further evict-and-retry is spent on the
  /// pattern. A successful recovery resets a not-yet-hostile pattern's
  /// failure count. <= 0 disables marking.
  int hostile_threshold = 2;
  /// Pattern hits route through Solver::refactorize_delta instead of a
  /// full refactorize: a transient workload whose values drift a few
  /// columns per step turns same-values cache hits into near-values hits
  /// (SMW correction or partial re-elimination, per solver.delta policy).
  bool values_delta = true;
  /// Adaptive serving (tune::ServeController): every adapt_window_s a
  /// sampling loop reads the windowed arrival rate and latency quantiles
  /// and walks the *effective* max_batch / batch_linger_s / shed_fraction
  /// toward adapt_controller.target_p99_us (clamped, hysteresis-damped —
  /// see tune/controller.hpp). Off by default: the static knobs above then
  /// apply verbatim. Under Backend::dist the controller runs beside the
  /// gateway and its shed knob scales the admission bound instead — the
  /// tier routes rather than batches, so earlier typed rejection is its
  /// graceful-degradation lever.
  bool adapt = false;
  double adapt_window_s = 0.25;
  tune::ControllerOptions adapt_controller;
};

struct RequestOptions {
  /// Max seconds from admission to execution start; an expired request is
  /// rejected with Errc::overloaded instead of solved late. 0 = none.
  double deadline_s = 0.0;
};

template <class T>
struct Response {
  std::vector<T> x;
  /// Engine that produced x. Single-node: the service's configured
  /// backend. Sharded tier: Backend::dist — including the cooperative
  /// fall-through episodes (owner_rank distinguishes them).
  Backend backend = Backend::serial;
  /// Rank that served the request under Backend::dist: the shard rank for
  /// routed requests (primary or backup), -1 for a cooperative DistSolver
  /// episode spanning the grid. Always -1 on single-node backends.
  int owner_rank = -1;
  /// A backup rendezvous rank served this from its replica (dist only).
  bool replica_hit = false;
  double latency_s = 0.0;    ///< admission -> completion, service-side
  bool pattern_hit = false;  ///< reused a cached analysis (refactorized)
  bool value_hit = false;    ///< reused the factors outright
  bool value_delta = false;  ///< near-values hit: the value change was
                             ///< absorbed without a full refactorization
  bool shed = false;         ///< refinement skipped under load
  bool recovered = false;    ///< failure eviction + ladder retry happened
  bool hostile = false;      ///< pattern marked hostile; strongest rung armed
  index_t batch_width = 1;   ///< requests coalesced into this execution
  double berr = 0.0;         ///< batch-level for BatchMode::blocked
  int refine_iterations = 0;
  /// Precision of the factors that produced x (single under
  /// Precision::single/mixed until a promotion replaces them with double).
  Precision precision = Precision::double_;
  /// Recovery trail of the factorization that served this request — every
  /// ladder rung attempted, in order. Empty attempts: the ladder never
  /// armed or never triggered.
  RecoveryTrail recovery;
};

template <class T>
class SolverService {
 public:
  explicit SolverService(const ServiceOptions& opt = {});
  ~SolverService();  ///< stop() + join

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Solve A·x = b. Blocks the calling thread until the service executed
  /// the request (possibly batched with others); throws gesp::Error on
  /// rejection (Errc::overloaded: queue full, deadline expired, service
  /// stopped) or solver failure. A and b must stay valid for the duration
  /// of the call — they are not copied on admission.
  Response<T> solve(const sparse::CscMatrix<T>& A, std::span<const T> b,
                    const RequestOptions& ropt = {});

  /// Synchronously analyse + factor A into the cache without solving —
  /// startup pre-loading, and the way to pin a pattern's transform basis
  /// to a canonical value set (see the determinism note above).
  void warm(const sparse::CscMatrix<T>& A);

  /// Drain the queue, then stop the workers. Requests admitted before
  /// stop() complete; later solve() calls are rejected with
  /// Errc::overloaded. Idempotent; the destructor calls it.
  void stop();

  const ServiceOptions& options() const { return opt_; }
  /// The batching/shedding knobs in force right now: the configured values
  /// until the adaptive controller (opt.adapt) moves them.
  tune::ServeKnobs effective_knobs() const;
  /// Adaptive-controller accounting (all zeros while adapt is off).
  tune::ServeController::Stats adapt_stats() const;
  /// Cached patterns / bytes. Under Backend::dist these are fleet-wide
  /// sums over every shard (a dead rank's shard counts as empty).
  std::size_t cache_entries() const;
  std::size_t cache_bytes() const;
  /// Bytes held by single-precision cache entries (mixed/single modes;
  /// single-node backends only — 0 under dist).
  std::size_t cache_single_bytes() const;
  std::size_t queue_depth() const;
  /// Whether `key`'s pattern has been marked hostile (inspection/tests;
  /// single-node backends only — hostile reputation lives shard-side
  /// under dist and is not aggregated, so this returns false there).
  bool is_hostile(const sparse::PatternKey& key) const;
  /// The sharded tier behind Backend::dist (null otherwise) — the
  /// introspection surface for routing/failover tests and tools.
  const ShardedTier<T>* tier() const { return tier_.get(); }
  ShardedTier<T>* tier() { return tier_.get(); }

 private:
  using Clock = std::chrono::steady_clock;

  /// What a worker hands back to the waiting client. Errors travel by
  /// value (code + message, rethrown as gesp::Error on the client thread)
  /// rather than as a std::exception_ptr: an exception_ptr shared across
  /// threads synchronizes through refcounts inside libstdc++'s
  /// uninstrumented runtime, which ThreadSanitizer cannot see and reports
  /// as a race on every rejected request.
  struct Outcome {
    Response<T> resp;
    bool ok = true;
    Errc code = Errc::overloaded;
    std::string message;
  };

  struct Pending {
    const sparse::CscMatrix<T>* A = nullptr;
    sparse::PatternKey key;
    std::uint64_t vhash = 0;
    std::span<const T> b;
    Clock::time_point enqueued;
    Clock::time_point deadline;  ///< time_point::max() when none
    std::promise<Outcome> promise;
  };
  using PendingPtr = std::unique_ptr<Pending>;
  using Batch = std::vector<PendingPtr>;

  void worker_loop();
  /// Sampling thread behind opt.adapt: one ServeController::step per
  /// window, effective knobs published through the atomics below.
  void adapt_loop();
  /// Move queued requests matching (key, vhash) into `batch` (locked).
  void collect_matches_locked(Batch& batch);
  /// Execute `batch`, resolving every promise exactly once. Never throws:
  /// anything escaping execute_batch_impl resolves the batch's unfulfilled
  /// requests with Errc::internal instead of killing the worker thread.
  void execute_batch(Batch& batch);
  void execute_batch_impl(Batch& batch);
  /// Resolve every not-yet-fulfilled request in `batch` as an error.
  void fail_unfulfilled(Batch& batch, Errc code, const char* msg);
  /// Stamp latency onto a copy of `tmpl`, attach x, resolve the promise,
  /// and null the owning batch slot (the "this request is done" marker).
  void fulfill(PendingPtr& p, const Response<T>& tmpl, std::vector<T>&& x);
  /// Cold-build / refactorize / reuse the entry for the batch's matrix;
  /// returns the response template describing the path taken. Entry mutex
  /// must be held. `hostile` starts a cold build's recovery ladder at the
  /// strongest rung instead of climbing from the bottom.
  Response<T> prepare_entry(CacheEntry<T>& e, const sparse::CscMatrix<T>& A,
                            std::uint64_t vhash, bool arm_recovery,
                            bool hostile);

  /// Per-pattern recovery reputation. Lives beside (not inside) the cache
  /// on purpose: the failure path evicts the poisoned entry, and the whole
  /// point of the hostile mark is to outlive that eviction.
  struct HostileState {
    int failed_recoveries = 0;  ///< consecutive armed-ladder failures
    bool hostile = false;
  };
  struct PatternKeyHash {
    std::size_t operator()(const sparse::PatternKey& k) const noexcept {
      return static_cast<std::size_t>(
          k.hash ^ (static_cast<std::uint64_t>(k.n) << 32));
    }
  };
  /// Hostile check taken at batch start; counts a serve.recovery
  /// hostile-hit when true.
  bool hostile_pattern(const sparse::PatternKey& key);
  /// An armed-ladder rebuild failed for `key`: bump its failure count and
  /// mark it hostile at the threshold.
  void note_failed_recovery(const sparse::PatternKey& key);
  /// An armed-ladder rebuild succeeded: a not-yet-hostile pattern gets its
  /// consecutive-failure count back (hostile marks are not forgiven).
  void note_recovered(const sparse::PatternKey& key);

  ServiceOptions opt_;
  FactorizationCache<T> cache_;
  /// Backend::dist: the whole service is this tier; the worker pool,
  /// queue and cache above stay idle.
  std::unique_ptr<ShardedTier<T>> tier_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::list<PendingPtr> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  mutable std::mutex hostile_mu_;  ///< leaf lock; never held across others
  std::unordered_map<sparse::PatternKey, HostileState, PatternKeyHash>
      hostile_;

  /// Effective knobs, read lock-free on the hot paths (worker batching,
  /// shed check). Initialized from the configured options; only the
  /// adapt thread ever stores after construction.
  std::atomic<index_t> eff_max_batch_{1};
  std::atomic<double> eff_linger_s_{0.0};
  std::atomic<double> eff_shed_fraction_{1.0};
  /// Windowed inputs for the controller — private instances so draining a
  /// window never disturbs the lifetime serve.* metrics in the global
  /// registry.
  metrics::Histogram window_latency_us_;
  metrics::Counter window_admitted_;
  std::unique_ptr<tune::ServeController> controller_;  ///< adapt_mu_
  mutable std::mutex adapt_mu_;
  std::condition_variable adapt_cv_;
  bool adapt_stop_ = false;  ///< adapt_mu_
  std::thread adapt_thread_;
};

extern template class SolverService<double>;
extern template class SolverService<Complex>;

}  // namespace gesp::serve
