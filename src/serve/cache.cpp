#include "serve/cache.hpp"

#include <algorithm>
#include <cstring>

#include "common/metrics.hpp"

namespace gesp::serve {
namespace {

template <class T>
bool same_pattern(const CacheEntry<T>& e, const sparse::CscMatrix<T>& A) {
  if (e.colptr.size() != A.colptr.size() ||
      e.rowind.size() != A.rowind.size())
    return false;
  return std::memcmp(e.colptr.data(), A.colptr.data(),
                     e.colptr.size() * sizeof(index_t)) == 0 &&
         (e.rowind.empty() ||
          std::memcmp(e.rowind.data(), A.rowind.data(),
                      e.rowind.size() * sizeof(index_t)) == 0);
}

}  // namespace

template <class T>
FactorizationCache<T>::FactorizationCache(std::size_t max_entries,
                                          std::size_t max_bytes)
    : max_entries_(std::max<std::size_t>(1, max_entries)),
      max_bytes_(max_bytes) {}

template <class T>
typename FactorizationCache<T>::EntryPtr FactorizationCache<T>::acquire(
    const sparse::CscMatrix<T>& A, bool* pattern_matched) {
  const sparse::PatternKey key = sparse::pattern_key(A);
  std::lock_guard lk(mu_);
  ++tick_;
  auto it = map_.find(key);
  if (it != map_.end()) {
    if (same_pattern(*it->second, A)) {
      it->second->last_use = tick_;
      if (pattern_matched) *pattern_matched = true;
      return it->second;
    }
    // 64-bit collision between distinct patterns: the map can only hold
    // one of them, so the incumbent makes way. Counted, because if this
    // ever fires in practice we want to know.
    metrics::global().counter("serve.cache.hash_collisions").inc();
    bytes_ -= it->second->bytes;
    map_.erase(it);
  }
  if (pattern_matched) *pattern_matched = false;
  auto e = std::make_shared<CacheEntry<T>>();
  e->key = key;
  e->colptr = A.colptr;
  e->rowind = A.rowind;
  e->last_use = tick_;
  map_.emplace(key, e);
  evict_over_budget_locked(e.get());
  publish_locked();
  return e;
}

template <class T>
void FactorizationCache<T>::update_bytes(const EntryPtr& e,
                                         std::size_t bytes,
                                         Precision precision) {
  std::lock_guard lk(mu_);
  auto it = map_.find(e->key);
  if (it == map_.end() || it->second != e) return;  // evicted meanwhile
  bytes_ += bytes - e->bytes;
  e->bytes = bytes;
  e->precision = precision;
  e->last_use = ++tick_;
  evict_over_budget_locked(e.get());
  publish_locked();
}

template <class T>
void FactorizationCache<T>::erase(const EntryPtr& e) {
  std::lock_guard lk(mu_);
  auto it = map_.find(e->key);
  if (it == map_.end() || it->second != e) return;
  bytes_ -= e->bytes;
  map_.erase(it);
  publish_locked();
}

template <class T>
void FactorizationCache<T>::evict_over_budget_locked(
    const CacheEntry<T>* keep) {
  while (map_.size() > max_entries_ ||
         (max_bytes_ > 0 && bytes_ > max_bytes_ && map_.size() > 1)) {
    auto victim = map_.end();
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      if (it->second.get() == keep) continue;
      if (victim == map_.end() ||
          it->second->last_use < victim->second->last_use)
        victim = it;
    }
    if (victim == map_.end()) return;  // only `keep` left
    bytes_ -= victim->second->bytes;
    map_.erase(victim);
    metrics::global().counter("serve.cache.evictions").inc();
  }
}

template <class T>
void FactorizationCache<T>::publish_locked() {
  // Recomputed rather than tracked incrementally: every mutation path
  // (update, erase, eviction, collision) ends here, and the map is small
  // by construction (max_entries budget).
  single_bytes_ = 0;
  for (const auto& [key, e] : map_)
    if (e->precision == Precision::single) single_bytes_ += e->bytes;
  metrics::global().gauge("serve.cache.entries").set(
      static_cast<double>(map_.size()));
  metrics::global().gauge("serve.cache.bytes").set(
      static_cast<double>(bytes_));
  metrics::global().gauge("serve.cache.single_bytes").set(
      static_cast<double>(single_bytes_));
}

template <class T>
std::size_t FactorizationCache<T>::entries() const {
  std::lock_guard lk(mu_);
  return map_.size();
}

template <class T>
std::size_t FactorizationCache<T>::bytes() const {
  std::lock_guard lk(mu_);
  return bytes_;
}

template <class T>
std::size_t FactorizationCache<T>::single_bytes() const {
  std::lock_guard lk(mu_);
  return single_bytes_;
}

template <class T>
void FactorizationCache<T>::clear() {
  std::lock_guard lk(mu_);
  map_.clear();
  bytes_ = 0;
  publish_locked();
}

template class FactorizationCache<double>;
template class FactorizationCache<Complex>;

}  // namespace gesp::serve
