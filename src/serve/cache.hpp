// Pattern-keyed factorization cache — the serve layer's asset store.
//
// GESP's static pivoting makes a factorization a *reusable asset*: every
// expensive decision (scalings, permutations, symbolic structure) is fixed
// before numerics begin, so a request whose matrix shares a cached sparsity
// pattern takes the refactorize fast path, and a request whose (pattern,
// values) pair is already factored skips straight to the triangular solves.
// This cache holds those assets keyed by sparse::PatternKey, with LRU +
// byte-budget eviction.
//
// Concurrency model: the cache map is guarded by one mutex (lookups are
// cheap — a hash probe plus an O(nnz) index comparison on hits); each entry
// carries its own execution mutex serializing use of the contained Solver,
// so requests against *different* patterns factor and solve concurrently.
// Entries are handed out as shared_ptr: eviction only unlinks an entry from
// the map, and a batch still executing on it finishes on its own reference.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/solver.hpp"
#include "sparse/csc.hpp"

namespace gesp::serve {

/// One cached analysis + factorization.
template <class T>
struct CacheEntry {
  sparse::PatternKey key;
  /// Exact pattern arrays, compared on every hit: a 64-bit hash collision
  /// must degrade to a miss, never reuse a wrong symbolic structure.
  std::vector<index_t> colptr, rowind;
  std::mutex mu;                      ///< execution lock for `solver`
  std::unique_ptr<Solver<T>> solver;  ///< null until the first factorization
  std::uint64_t value_hash = 0;       ///< values currently factored
  /// Exact value bytes currently factored, compared on every value-hash
  /// hit: like the pattern arrays above, a 64-bit hash collision must
  /// degrade to a refactorize, never serve stale factors. Guarded by `mu`.
  std::vector<T> values;
  std::size_t bytes = 0;              ///< footprint estimate (cache mutex)
  /// Precision of the stored factors (cache mutex, recorded with `bytes`).
  /// Single-precision entries hold their factor values at half the bytes,
  /// so a mixed-mode service packs ~2× the factorizations into one budget.
  Precision precision = Precision::double_;
  std::uint64_t last_use = 0;         ///< LRU tick (cache mutex)
};

/// Thread-safe LRU cache bounded by entry count and total byte estimate.
/// Publishes serve.cache.{entries,bytes} gauges and
/// serve.cache.{evictions,hash_collisions} counters.
template <class T>
class FactorizationCache {
 public:
  using EntryPtr = std::shared_ptr<CacheEntry<T>>;

  FactorizationCache(std::size_t max_entries, std::size_t max_bytes);

  /// Find the entry for A's pattern, or insert a fresh (unfactored) one.
  /// `pattern_matched` reports whether an existing entry was found — hash
  /// AND exact index-array equality; a hash collision with different
  /// arrays evicts the colliding incumbent and counts as a miss. Bumps the
  /// LRU tick either way.
  EntryPtr acquire(const sparse::CscMatrix<T>& A, bool* pattern_matched);

  /// Record the re-measured byte footprint of `e` (call after every
  /// factorization/refactorization) and the precision its factors are
  /// stored at, then evict least-recently-used entries — never `e` itself —
  /// until both budgets hold.
  void update_bytes(const EntryPtr& e, std::size_t bytes,
                    Precision precision = Precision::double_);

  /// Unlink `e` (failure path: a poisoned factorization must not be
  /// served again). No-op if `e` was already evicted or replaced.
  void erase(const EntryPtr& e);

  std::size_t entries() const;
  std::size_t bytes() const;
  /// Bytes held by entries whose factors are stored in single precision.
  std::size_t single_bytes() const;
  std::size_t max_entries() const { return max_entries_; }
  std::size_t max_bytes() const { return max_bytes_; }
  void clear();

 private:
  struct KeyHash {
    std::size_t operator()(const sparse::PatternKey& k) const noexcept {
      // The stored hash already mixes n/nnz/arrays; fold n back in so a
      // pathological all-equal-hash input still spreads by size.
      return static_cast<std::size_t>(k.hash ^
                                      (static_cast<std::uint64_t>(k.n) << 32));
    }
  };

  void evict_over_budget_locked(const CacheEntry<T>* keep);
  void publish_locked();

  mutable std::mutex mu_;
  std::unordered_map<sparse::PatternKey, EntryPtr, KeyHash> map_;
  std::size_t max_entries_;
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  std::size_t single_bytes_ = 0;  ///< recomputed in publish_locked
  std::uint64_t tick_ = 0;
};

extern template class FactorizationCache<double>;
extern template class FactorizationCache<Complex>;

}  // namespace gesp::serve
