// ShardedTier — the Backend::dist serving tier behind SolverService.
//
// The paper's point is that static pivoting makes the factorization a
// schedulable, *distributable* asset; this tier distributes the serve
// layer's asset store itself. A MiniMPI world of R = pr*pc ranks runs
// inside the service process: rank 0 is the gateway (and a shard server),
// ranks 1..R-1 are shard servers, and every rank owns one shard of the
// pattern-keyed factorization cache — the existing LRU + byte-budget
// FactorizationCache, one instance per rank, so the fleet caches ~R x the
// patterns of a single node under the same per-rank budget.
//
// Routing is rendezvous (HRW) hashing over sparse::PatternKey: every rank
// scores every (key, rank) pair with the same pure mix function, and the
// descending score order IS the key's owner preference list — no routing
// table, no rebalancing state, and a dead rank's keys deterministically
// re-route to the next rank in their order. Hot patterns are replicated to
// the top-2 rendezvous ranks: the primary counts its hits and flags the
// gateway at promote_hits, the gateway ships the matrix to the backup, and
// a later failover (or explicit route to the backup) serves from the
// replica (Response::replica_hit).
//
// Matrices whose pre-factorization estimate (core estimate_factor_bytes)
// exceeds one shard's byte budget fall through to a cooperative DistSolver
// factorization spanning the whole grid: the gateway drains all in-flight
// shard traffic (quiescence — serve envelopes and collective tags never
// interleave), broadcasts the episode, and every rank participates in
// lockstep. Each rank keeps a one-entry collective cache so repeated
// over-budget patterns refactorize instead of rebuilding.
//
// Failure contract (chaos-hardened with the PR-1 FaultInjector): the world
// runs with WorldOptions::survive_failures — a killed rank is marked dead
// instead of poisoning the fleet. The gateway notices the death on its
// next poll: the dead rank's shard is evicted, its in-flight requests are
// re-sent to the next alive rendezvous owner (serve.shard.reroutes), and
// future requests with a dead primary route to their backup
// (serve.shard.failovers). Collective episodes need the full grid, so any
// death disables fall-through (over-budget patterns then go to a shard,
// best-effort). Every client call ends with a definite answer or a typed
// Errc — the gateway never blocks in recv (poll + probe), every in-flight
// request carries a watchdog deadline, and re-route attempts are capped —
// never a hung service.
//
// Fleet metrics: each rank records its serve.* counters and the
// serve.shard.solve_us histogram into a rank-local Registry; stop()
// aggregates them onto the gateway (Comm::reduce_sum_vec for the counters,
// Histogram::merge for the latency buckets) and publishes the totals into
// metrics::global(). Gateway-side routing counters
// (serve.shard.{reroutes,replica_hits,failovers,...}) go to the global
// registry directly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/service.hpp"

namespace gesp::serve {

/// Rendezvous (highest-random-weight) owner preference for `key`: all
/// ranks sorted by descending mix(key.hash, rank) score, ties to the lower
/// rank. A pure function of (key, nranks) — every rank, and every test,
/// computes the same order, before and after any failure; liveness is
/// applied by the caller (first alive rank in the order serves).
std::vector<int> rendezvous_order(const sparse::PatternKey& key, int nranks);

template <class T>
class ShardedTier {
 public:
  /// Spins up the rank world and the gateway; opt.backend must be
  /// Backend::dist (SolverService constructs one exactly then).
  explicit ShardedTier(const ServiceOptions& opt);
  ~ShardedTier();  ///< stop() + join

  ShardedTier(const ShardedTier&) = delete;
  ShardedTier& operator=(const ShardedTier&) = delete;

  /// Route + solve; blocks until the owning shard (or a collective
  /// episode) answered. Same contract as SolverService::solve.
  Response<T> solve(const sparse::CscMatrix<T>& A, std::span<const T> b,
                    const RequestOptions& ropt = {});

  /// Factor A into its owning shard (and the collective cache for
  /// over-budget patterns) without solving.
  void warm(const sparse::CscMatrix<T>& A);

  /// Drain in-flight work, aggregate fleet metrics onto the gateway, shut
  /// the world down. Idempotent; the destructor calls it.
  void stop();

  int nranks() const;
  /// Rank currently serving `key`: first alive rank in its rendezvous
  /// order (-1 when every rank is dead).
  int owner_of(const sparse::PatternKey& key) const;
  /// Bitmask of dead ranks (bit r = rank r died).
  std::uint64_t dead_mask() const;

  /// Fleet-wide sums over the per-rank shards.
  std::size_t cache_entries() const;
  std::size_t cache_bytes() const;
  /// One shard's entry count (tests: capacity spread, post-kill eviction).
  std::size_t shard_entries(int rank) const;
  std::size_t queue_depth() const;
  /// Gateway admission bound in force right now: max_queue until the
  /// adaptive controller (ServiceOptions::adapt) tightens it under load.
  std::size_t effective_admit() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

extern template class ShardedTier<double>;
extern template class ShardedTier<Complex>;

}  // namespace gesp::serve
