// Serving workloads — the request streams gesp_serve and bench_serve replay.
//
// A workload is an ordered list of (matrix, value set) requests. "Value set
// k" means the base matrix's values deterministically perturbed with seed k
// (k = 0 is the base matrix unchanged), which models the repeated-solve
// scenario the paper amortizes the static analysis over: same pattern,
// drifting values (time steps, Newton iterations, parameter sweeps).
//
// File format (text, one directive per line, '#' comments):
//
//   request <matrix> <valueset>
//
// where <matrix> is either "testbed:NAME" (a synthetic testbed matrix) or a
// path to a Matrix Market / Harwell-Boeing file (by extension: .mtx → MM,
// anything else → HB).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "sparse/csc.hpp"

namespace gesp::serve {

struct WorkloadItem {
  std::string matrix;  ///< "testbed:NAME" or a file path
  int valueset = 0;    ///< 0 = base values, k > 0 = perturbation seed
};

struct Workload {
  std::vector<WorkloadItem> items;
};

/// Deterministically perturb the values of `base`, keeping the pattern:
/// each value is scaled by 1 + amplitude·u with u uniform in [-1, 1] drawn
/// from Rng(valueset). valueset 0 returns `base` unchanged, pinning the
/// canonical transform basis for warm().
sparse::CscMatrix<double> perturb_values(const sparse::CscMatrix<double>& base,
                                         int valueset,
                                         double amplitude = 0.125);

/// Resolve a WorkloadItem matrix spec to its base matrix (values
/// unperturbed). Throws Errc::invalid_argument for an unknown testbed name,
/// Errc::io for an unreadable file.
sparse::CscMatrix<double> load_base_matrix(const std::string& spec);

/// Parse / serialize the text format above. read_workload throws Errc::io
/// on an unreadable file or malformed directive.
Workload read_workload(const std::string& path);
void write_workload(const std::string& path, const Workload& w);

/// Synthesize a workload: `requests` items drawn over `patterns` distinct
/// testbed matrices and `valuesets` value sets each, shuffled by `seed`.
/// Value-set indices repeat, so replays exercise all three cache paths
/// (miss, pattern hit, value hit).
Workload generate_workload(int patterns, int valuesets, int requests,
                           std::uint64_t seed);

}  // namespace gesp::serve
