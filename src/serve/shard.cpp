#include "serve/shard.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "dist/dist_solver.hpp"
#include "dist/grid.hpp"
#include "dist/minimpi.hpp"
#include "serve/cache.hpp"

namespace gesp::serve {
namespace {

namespace tags = minimpi::serve_tags;

/// splitmix64 finalizer — the HRW score mixer. Statistical quality matters
/// here: a weak mix correlates scores across ranks and skews the shard
/// load balance.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Bitwise value equality — the same byte view value_hash takes.
template <class T>
bool same_values(const std::vector<T>& cached, const std::vector<T>& now) {
  return cached.size() == now.size() &&
         (cached.empty() ||
          std::memcmp(cached.data(), now.data(),
                      cached.size() * sizeof(T)) == 0);
}

/// Shard-side footprint of a cached entry — the shared core accounting, at
/// the precision the factors are actually stored at.
template <class T>
std::size_t entry_bytes(const Solver<T>& s, const sparse::CscMatrix<T>& A) {
  const SolveStats& st = s.stats();
  const std::size_t factor_scalar =
      s.active_precision() == Precision::single ? sizeof(float) : sizeof(T);
  return factor_asset_bytes(st.stored_l, st.stored_u, st.nnz_l, st.nnz_u,
                            A.ncols, A.nnz(), factor_scalar, sizeof(T));
}

[[noreturn]] void reject(const char* why) {
  metrics::global().counter("serve.rejected").inc();
  trace::instant("serve", "reject");
  throw_error(Errc::overloaded, why);
}

/// A rank's own kill fault must terminate it even when it fires inside a
/// caught collective episode — matched on the injector's message.
bool is_kill_error(const Error& e) noexcept {
  return e.code() == Errc::comm &&
         std::string_view(e.what()).find("killed at send") !=
             std::string_view::npos;
}

enum : std::uint64_t { kKindSolve = 0, kKindWarm = 1, kKindReplicate = 2 };

/// Request envelope header (kRequest / kReplicate / kCollective); the
/// payload that follows is colptr[n+1] ++ rowind[nnz] (index_t) ++
/// values[nnz] (T) ++ b[nb] (T), all memcpy-flat — the transport already
/// checksums every payload.
struct ReqHeader {
  std::uint64_t id = 0;
  std::uint64_t kind = kKindSolve;
  /// Position of the target rank in the key's rendezvous order (0 =
  /// primary); a backup serving a known pattern reports a replica hit.
  std::uint64_t owner_index = 0;
  std::int64_t n = 0;
  std::int64_t nnz = 0;
  std::uint64_t vhash = 0;
  std::int64_t nb = 0;
};

enum : std::uint64_t {
  kFlagPatternHit = 1u << 0,
  kFlagValueHit = 1u << 1,
  kFlagValueDelta = 1u << 2,
  kFlagReplicaHit = 1u << 3,
  /// Owner asks the gateway to replicate this pattern to its backup.
  kFlagPromote = 1u << 4,
};

/// Response envelope header (kResponse / kReplicaAck); followed by x
/// (T[nx]) on success or the error message bytes (char[nx]) on failure.
struct RespHeader {
  std::uint64_t id = 0;
  std::uint64_t ok = 0;
  std::int64_t code = 0;  ///< Errc when !ok
  std::uint64_t flags = 0;
  double berr = 0.0;
  std::int64_t refine_iterations = 0;
  std::int64_t precision = 0;  ///< static_cast<int>(Precision)
  std::int64_t nx = 0;
};

/// Raw wire form of a rank-local histogram (kMetrics), merged on the
/// gateway via Histogram::merge_raw.
struct HistBlob {
  count_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  count_t buckets[metrics::Histogram::kBuckets] = {};
};

/// Per-rank counters aggregated at stop via Comm::reduce_sum_vec, in this
/// fixed order. Shard-local names match the single-node serve.* names
/// where the meaning is identical, so dashboards read one namespace.
constexpr const char* kShardCounters[] = {
    "serve.shard.requests",       "serve.cache.miss",
    "serve.cache.pattern_hit",    "serve.cache.value_hit",
    "serve.cache.value_delta",    "serve.shard.replica_hits",
    "serve.shard.solve_failures", "serve.shard.collective",
    "serve.shard.collective_aborts",
};
constexpr std::size_t kNumShardCounters =
    sizeof(kShardCounters) / sizeof(kShardCounters[0]);

template <class T>
std::vector<std::byte> pack_request(const ReqHeader& h,
                                    const sparse::CscMatrix<T>& A,
                                    std::span<const T> b) {
  std::vector<std::byte> w(sizeof(ReqHeader) +
                           (A.colptr.size() + A.rowind.size()) *
                               sizeof(index_t) +
                           (A.values.size() + b.size()) * sizeof(T));
  std::byte* p = w.data();
  auto put = [&](const void* src, std::size_t bytes) {
    if (bytes > 0) std::memcpy(p, src, bytes);
    p += bytes;
  };
  put(&h, sizeof h);
  put(A.colptr.data(), A.colptr.size() * sizeof(index_t));
  put(A.rowind.data(), A.rowind.size() * sizeof(index_t));
  put(A.values.data(), A.values.size() * sizeof(T));
  put(b.data(), b.size() * sizeof(T));
  return w;
}

template <class T>
void unpack_request(const minimpi::Message& m, ReqHeader& h,
                    sparse::CscMatrix<T>& A, std::vector<T>& b) {
  GESP_CHECK(m.data.size() >= sizeof(ReqHeader), Errc::comm,
             "shard: truncated request envelope");
  std::memcpy(&h, m.data.data(), sizeof h);
  const auto n = static_cast<std::size_t>(h.n);
  const auto nnz = static_cast<std::size_t>(h.nnz);
  const auto nb = static_cast<std::size_t>(h.nb);
  const std::size_t want = sizeof h + (n + 1 + nnz) * sizeof(index_t) +
                           (nnz + nb) * sizeof(T);
  GESP_CHECK(h.n >= 0 && h.nnz >= 0 && h.nb >= 0 && m.data.size() == want,
             Errc::comm, "shard: mangled request envelope");
  const std::byte* p = m.data.data() + sizeof h;
  auto get = [&](void* dst, std::size_t bytes) {
    if (bytes > 0) std::memcpy(dst, p, bytes);
    p += bytes;
  };
  A.nrows = A.ncols = static_cast<index_t>(h.n);
  A.colptr.resize(n + 1);
  A.rowind.resize(nnz);
  A.values.resize(nnz);
  b.resize(nb);
  get(A.colptr.data(), (n + 1) * sizeof(index_t));
  get(A.rowind.data(), nnz * sizeof(index_t));
  get(A.values.data(), nnz * sizeof(T));
  get(b.data(), nb * sizeof(T));
}

/// Result of serving one request against a local shard.
template <class T>
struct LocalResult {
  bool ok = true;
  Errc code = Errc::internal;
  std::string message;
  std::uint64_t flags = 0;
  double berr = 0.0;
  int refine_iterations = 0;
  Precision precision = Precision::double_;
  std::vector<T> x;
};

template <class T>
std::vector<std::byte> pack_response(std::uint64_t id,
                                     const LocalResult<T>& r) {
  RespHeader h;
  h.id = id;
  h.ok = r.ok ? 1 : 0;
  h.code = static_cast<std::int64_t>(r.code);
  h.flags = r.flags;
  h.berr = r.berr;
  h.refine_iterations = r.refine_iterations;
  h.precision = static_cast<std::int64_t>(r.precision);
  h.nx = r.ok ? static_cast<std::int64_t>(r.x.size())
              : static_cast<std::int64_t>(r.message.size());
  std::vector<std::byte> w(sizeof h + (r.ok ? r.x.size() * sizeof(T)
                                            : r.message.size()));
  std::memcpy(w.data(), &h, sizeof h);
  if (r.ok && !r.x.empty())
    std::memcpy(w.data() + sizeof h, r.x.data(), r.x.size() * sizeof(T));
  else if (!r.ok && !r.message.empty())
    std::memcpy(w.data() + sizeof h, r.message.data(), r.message.size());
  return w;
}

template <class T>
LocalResult<T> unpack_response(const minimpi::Message& m, RespHeader& h) {
  GESP_CHECK(m.data.size() >= sizeof(RespHeader), Errc::comm,
             "shard: truncated response envelope");
  std::memcpy(&h, m.data.data(), sizeof h);
  LocalResult<T> r;
  r.ok = h.ok != 0;
  r.code = static_cast<Errc>(h.code);
  r.flags = h.flags;
  r.berr = h.berr;
  r.refine_iterations = static_cast<int>(h.refine_iterations);
  r.precision = static_cast<Precision>(h.precision);
  const auto nx = static_cast<std::size_t>(h.nx);
  const std::size_t want =
      sizeof h + nx * (r.ok ? sizeof(T) : sizeof(char));
  GESP_CHECK(h.nx >= 0 && m.data.size() == want, Errc::comm,
             "shard: mangled response envelope");
  if (r.ok) {
    r.x.resize(nx);
    if (nx > 0)
      std::memcpy(r.x.data(), m.data.data() + sizeof h, nx * sizeof(T));
  } else {
    r.message.assign(
        reinterpret_cast<const char*>(m.data.data()) + sizeof h, nx);
  }
  return r;
}

HistBlob hist_blob(const metrics::Histogram* h) {
  HistBlob b;
  if (!h || h->count() == 0) return b;
  b.count = h->count();
  b.sum = h->sum();
  b.min = h->min();
  b.max = h->max();
  for (int k = 0; k < metrics::Histogram::kBuckets; ++k)
    b.buckets[k] = h->bucket(k);
  return b;
}

}  // namespace

std::vector<int> rendezvous_order(const sparse::PatternKey& key, int nranks) {
  GESP_CHECK(nranks > 0, Errc::invalid_argument,
             "rendezvous_order: need at least one rank");
  std::vector<std::uint64_t> score(static_cast<std::size_t>(nranks));
  std::vector<int> order(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    order[static_cast<std::size_t>(r)] = r;
    score[static_cast<std::size_t>(r)] =
        mix64(key.hash ^ mix64(static_cast<std::uint64_t>(r) + 1));
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const std::uint64_t sa = score[static_cast<std::size_t>(a)];
    const std::uint64_t sb = score[static_cast<std::size_t>(b)];
    return sa != sb ? sa > sb : a < b;
  });
  return order;
}

template <class T>
struct ShardedTier<T>::Impl {
  using Clock = std::chrono::steady_clock;

  struct Outcome {
    Response<T> resp;
    bool ok = true;
    Errc code = Errc::comm;
    std::string message;
  };

  struct Pending {
    const sparse::CscMatrix<T>* A = nullptr;
    sparse::PatternKey key;
    std::uint64_t vhash = 0;
    std::span<const T> b;
    bool warm = false;
    bool collective = false;
    Clock::time_point enqueued;
    Clock::time_point deadline;  ///< client deadline_s; max() when none
    std::promise<Outcome> promise;
  };
  using PendingPtr = std::unique_ptr<Pending>;

  struct InFlight {
    PendingPtr p;
    int target = -1;
    int attempts = 1;  ///< sends so far (re-routes increment)
    Clock::time_point timeout;
    std::vector<std::byte> wire;
  };

  struct Replication {
    int target = -1;
    Clock::time_point timeout;
  };

  struct KeyHash {
    std::size_t operator()(const sparse::PatternKey& k) const noexcept {
      return static_cast<std::size_t>(
          k.hash ^ (static_cast<std::uint64_t>(k.n) << 32));
    }
  };

  /// One rank's shard. The cache is internally synchronized (the facade
  /// reads entry counts concurrently); everything else is touched only by
  /// the owning rank's thread — or by the gateway after that rank died,
  /// which cannot race a thread that no longer runs.
  struct ShardState {
    std::unique_ptr<FactorizationCache<T>> cache;
    std::unordered_map<sparse::PatternKey, int, KeyHash> hits;
    std::unordered_map<sparse::PatternKey, bool, KeyHash> promoted;
    metrics::Registry reg;  ///< rank-local serve.* metrics
    // One-entry collective cache, advanced in deterministic lockstep on
    // every rank (all ranks see the identical episode stream).
    sparse::PatternKey coll_key{};
    std::uint64_t coll_vhash = 0;
    std::vector<T> coll_values;
    std::unique_ptr<dist::DistSolver<T>> coll;
  };

  explicit Impl(const ServiceOptions& opt);
  ~Impl() { stop(); }

  // Facade surface (client threads).
  Response<T> submit(const sparse::CscMatrix<T>& A, std::span<const T> b,
                     const RequestOptions& ropt, bool warm);
  void stop();
  bool collective_route(const sparse::CscMatrix<T>& A,
                        const sparse::PatternKey& key);

  // Rank bodies.
  void gateway_body(minimpi::Comm& comm);
  void gateway_loop(minimpi::Comm& comm);
  void server_body(minimpi::Comm& comm);

  // Gateway helpers (rank-0 thread only).
  void dispatch_shard(minimpi::Comm& comm, PendingPtr p);
  void on_response(minimpi::Comm& comm, const minimpi::Message& m);
  void settle(minimpi::Comm& comm, PendingPtr p, LocalResult<T>&& r,
              int served_by);
  void maybe_replicate(minimpi::Comm& comm, const sparse::PatternKey& key,
                       const sparse::CscMatrix<T>& A, int serving_rank);
  void handle_deaths(minimpi::Comm& comm, std::uint64_t mask);
  void run_collective(minimpi::Comm& comm, PendingPtr p);
  void shutdown_fleet(minimpi::Comm& comm);
  void fail_everything(Errc code, const char* msg);

  // Shared rank-side helpers.
  LocalResult<T> serve_request(ShardState& st, const ReqHeader& h,
                               const sparse::CscMatrix<T>& A,
                               std::span<const T> b);
  void collective_episode(minimpi::Comm& comm, ShardState& st,
                          const ReqHeader& h, const sparse::CscMatrix<T>& A,
                          std::span<const T> b, LocalResult<T>* out);
  void send_metrics(minimpi::Comm& comm, ShardState& st);

  void fulfill(PendingPtr& p, Response<T>&& r);
  static void fail(PendingPtr& p, Errc code, std::string msg);

  // Adaptive admission (opt_.adapt): the tier routes rather than batches,
  // so the controller's lever is the gateway's admission bound — its shed
  // knob scales max_queue, rejecting earlier (typed Errc::overloaded)
  // while the fleet is hot and relaxing back to the configured bound when
  // it cools. Controller state is gateway-thread-only; clients read only
  // the eff_admit_ atomic.
  std::atomic<std::size_t> eff_admit_{1};
  metrics::Counter window_admitted_;
  metrics::Histogram window_latency_us_;
  std::unique_ptr<tune::ServeController> controller_;
  metrics::RateWindow arrivals_{window_admitted_};
  Clock::time_point next_adapt_{};
  Clock::duration adapt_window_{};
  void adapt_step(Clock::time_point now);

  ServiceOptions opt_;
  dist::ProcessGrid grid_;
  int nranks_ = 0;
  int replication_ = 2;
  int promote_hits_ = 3;
  std::size_t shard_max_entries_ = 0;
  std::size_t shard_max_bytes_ = 0;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::unique_ptr<minimpi::World> world_;
  std::thread runner_;

  // Client-facing frontend (fmu_).
  mutable std::mutex fmu_;
  std::deque<PendingPtr> frontend_;
  bool stop_requested_ = false;
  bool gateway_down_ = false;
  bool joined_ = false;

  // Route memo: pattern -> goes to the collective path (route_mu_).
  std::mutex route_mu_;
  std::unordered_map<sparse::PatternKey, bool, KeyHash> route_coll_;

  // Gateway-thread state (rank 0 only; no locking needed).
  std::unordered_map<std::uint64_t, InFlight> inflight_;
  std::unordered_map<std::uint64_t, Replication> repl_;
  std::deque<PendingPtr> collq_;
  std::unordered_map<sparse::PatternKey, bool, KeyHash> replicated_;
  std::uint64_t next_id_ = 1;
  std::uint64_t seen_dead_ = 0;
  bool collective_ok_ = true;
};

template <class T>
ShardedTier<T>::Impl::Impl(const ServiceOptions& opt) : opt_(opt) {
  grid_ = (opt_.shard.pr > 0 && opt_.shard.pc > 0)
              ? dist::ProcessGrid{opt_.shard.pr, opt_.shard.pc}
              : dist::grid_from(opt_.solver.dist);
  nranks_ = grid_.nprocs();
  replication_ = opt_.shard.replication == 0 ? 2 : opt_.shard.replication;
  replication_ = std::clamp(replication_, 1, nranks_);
  promote_hits_ = opt_.shard.promote_hits;
  shard_max_entries_ = opt_.shard.shard_max_entries
                           ? opt_.shard.shard_max_entries
                           : opt_.cache_max_entries;
  shard_max_bytes_ = opt_.shard.shard_max_bytes ? opt_.shard.shard_max_bytes
                                                : opt_.cache_max_bytes;
  opt_.max_queue = std::max<std::size_t>(1, opt_.max_queue);
  eff_admit_.store(opt_.max_queue, std::memory_order_relaxed);
  if (opt_.adapt) {
    // The batch/linger knobs are along for the ride (the tier has none);
    // only shed_fraction matters, relaxing back to full admission (1.0).
    controller_ = std::make_unique<tune::ServeController>(
        tune::ServeKnobs{opt_.max_batch, opt_.batch_linger_s, 1.0},
        opt_.adapt_controller);
    adapt_window_ = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(std::max(1e-3, opt_.adapt_window_s)));
    next_adapt_ = Clock::now() + adapt_window_;
  }
  shards_.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    auto st = std::make_unique<ShardState>();
    st->cache = std::make_unique<FactorizationCache<T>>(shard_max_entries_,
                                                        shard_max_bytes_);
    shards_.push_back(std::move(st));
  }
  minimpi::WorldOptions w;
  w.survive_failures = true;
  w.recv_timeout_s = opt_.shard.recv_timeout_s;
  w.fault = opt_.shard.fault;
  world_ = std::make_unique<minimpi::World>(nranks_, w);
  runner_ = std::thread([this] {
    world_->run_report([this](minimpi::Comm& c) {
      if (c.rank() == 0)
        gateway_body(c);
      else
        server_body(c);
    });
  });
}

template <class T>
void ShardedTier<T>::Impl::fulfill(PendingPtr& p, Response<T>&& r) {
  r.latency_s =
      std::chrono::duration<double>(Clock::now() - p->enqueued).count();
  metrics::global().histogram("serve.latency_us").record(r.latency_s * 1e6);
  window_latency_us_.record(r.latency_s * 1e6);
  p->promise.set_value(Outcome{std::move(r), true, Errc::comm, {}});
  p.reset();
}

template <class T>
void ShardedTier<T>::Impl::fail(PendingPtr& p, Errc code, std::string msg) {
  p->promise.set_value(Outcome{{}, false, code, std::move(msg)});
  p.reset();
}

template <class T>
bool ShardedTier<T>::Impl::collective_route(const sparse::CscMatrix<T>& A,
                                            const sparse::PatternKey& key) {
  if (!opt_.shard.dist_fallthrough || nranks_ < 2) return false;
  {
    std::lock_guard lk(route_mu_);
    auto it = route_coll_.find(key);
    if (it != route_coll_.end()) return it->second;
  }
  // Priced on the client thread (concurrent across clients, off the
  // gateway's poll loop): analysis only, no numerics. An analysis failure
  // routes to the shard path, which surfaces the real error to the client.
  bool coll = false;
  try {
    coll = estimate_factor_bytes(A, opt_.solver) > shard_max_bytes_;
  } catch (const Error&) {
    coll = false;
  }
  std::lock_guard lk(route_mu_);
  route_coll_.emplace(key, coll);
  return coll;
}

template <class T>
Response<T> ShardedTier<T>::Impl::submit(const sparse::CscMatrix<T>& A,
                                         std::span<const T> b,
                                         const RequestOptions& ropt,
                                         bool warm) {
  auto p = std::make_unique<Pending>();
  p->A = &A;
  p->key = sparse::pattern_key(A);
  p->vhash = sparse::value_hash(A);
  p->b = b;
  p->warm = warm;
  p->collective = collective_route(A, p->key);
  p->enqueued = Clock::now();
  p->deadline =
      ropt.deadline_s > 0
          ? p->enqueued + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(ropt.deadline_s))
          : Clock::time_point::max();
  std::future<Outcome> fut = p->promise.get_future();
  {
    std::lock_guard lk(fmu_);
    metrics::global().counter("serve.requests").inc();
    if (stop_requested_) reject("service stopped");
    if (gateway_down_) reject("serving gateway died");
    if (frontend_.size() >= eff_admit_.load(std::memory_order_relaxed))
      reject("request queue full; retry later or raise max_queue");
    frontend_.push_back(std::move(p));
    metrics::global().counter("serve.admitted").inc();
    window_admitted_.inc();
    const auto depth = static_cast<double>(frontend_.size());
    metrics::global().gauge("serve.queue.depth").set(depth);
  }
  Outcome out = fut.get();
  if (!out.ok) throw Error(out.code, std::move(out.message));
  return std::move(out.resp);
}

template <class T>
void ShardedTier<T>::Impl::stop() {
  {
    std::lock_guard lk(fmu_);
    stop_requested_ = true;
  }
  if (runner_.joinable()) runner_.join();
  std::lock_guard lk(fmu_);
  if (joined_) return;
  joined_ = true;
  // Anything still queued lost the race against a dead gateway; it must
  // not hang its client.
  for (auto& p : frontend_)
    p->promise.set_value(Outcome{{}, false, Errc::overloaded,
                                 "service stopped before execution"});
  frontend_.clear();
}

// ---------------------------------------------------------------------------
// Shard-side request handling (server ranks AND the gateway's own shard).

template <class T>
LocalResult<T> ShardedTier<T>::Impl::serve_request(
    ShardState& st, const ReqHeader& h, const sparse::CscMatrix<T>& A,
    std::span<const T> b) {
  LocalResult<T> r;
  st.reg.counter("serve.shard.requests").inc();
  const auto t0 = Clock::now();
  bool matched = false;
  auto e = st.cache->acquire(A, &matched);
  std::lock_guard elk(e->mu);
  try {
    const bool had_solver = static_cast<bool>(e->solver);
    if (!e->solver) {
      GESP_TRACE_SPAN("serve", "shard_factor_cold");
      st.reg.counter("serve.cache.miss").inc();
      SolverOptions so = opt_.solver;
      // Per-shard numerics: serial or threaded per num_threads; the
      // sharding IS the dist parallelism on this path.
      so.backend =
          so.num_threads > 1 ? Backend::threaded : Backend::serial;
      e->solver = std::make_unique<Solver<T>>(A, so);
      e->value_hash = h.vhash;
      e->values = A.values;
    } else if (e->value_hash == h.vhash && same_values(e->values, A.values)) {
      st.reg.counter("serve.cache.value_hit").inc();
      r.flags |= kFlagPatternHit | kFlagValueHit;
    } else {
      GESP_TRACE_SPAN("serve", "shard_refactorize");
      st.reg.counter("serve.cache.pattern_hit").inc();
      if (opt_.values_delta) {
        const count_t full_before = e->solver->stats().delta.full;
        e->solver->refactorize_delta(A);
        if (e->solver->stats().delta.full == full_before) {
          r.flags |= kFlagValueDelta;
          st.reg.counter("serve.cache.value_delta").inc();
        }
      } else {
        e->solver->refactorize(A);
      }
      e->value_hash = h.vhash;
      e->values = A.values;
      r.flags |= kFlagPatternHit;
    }
    if (h.owner_index > 0 && had_solver) {
      // A backup answered from its replica — the failover payoff.
      r.flags |= kFlagReplicaHit;
      st.reg.counter("serve.shard.replica_hits").inc();
    }
    st.cache->update_bytes(e, entry_bytes(*e->solver, A),
                           e->solver->active_precision());
    if (h.kind == kKindSolve) {
      GESP_TRACE_SPAN("serve", "shard_solve");
      r.x.resize(static_cast<std::size_t>(A.ncols));
      e->solver->solve(b, r.x);
    }
    r.precision = e->solver->active_precision();
    r.berr = e->solver->stats().berr;
    r.refine_iterations = e->solver->stats().refine_iterations;
    // Promotion: the primary owner counts this pattern's solves and flags
    // the gateway exactly once at the threshold.
    if (h.kind == kKindSolve && h.owner_index == 0 && promote_hits_ > 0 &&
        replication_ >= 2) {
      int& hits = st.hits[e->key];
      ++hits;
      if (hits >= promote_hits_ && !st.promoted[e->key]) {
        st.promoted[e->key] = true;
        r.flags |= kFlagPromote;
      }
    }
  } catch (const Error& err) {
    // A failed factorization (or solve) must not be served again — evict,
    // answer with the typed error. (The entry mutex may be held across
    // erase: the established nesting is entry -> cache.)
    st.reg.counter("serve.shard.solve_failures").inc();
    st.cache->erase(e);
    r = LocalResult<T>{};
    r.ok = false;
    r.code = err.code();
    r.message = err.what();
  }
  st.reg.histogram("serve.shard.solve_us")
      .record(std::chrono::duration<double>(Clock::now() - t0).count() * 1e6);
  return r;
}

template <class T>
void ShardedTier<T>::Impl::collective_episode(minimpi::Comm& comm,
                                              ShardState& st,
                                              const ReqHeader& h,
                                              const sparse::CscMatrix<T>& A,
                                              std::span<const T> b,
                                              LocalResult<T>* out) {
  // Deterministic lockstep: every rank sees the identical episode stream
  // (same wire bytes, checksummed), so every rank takes the same branch
  // below and the collective calls stay aligned.
  const sparse::PatternKey key = sparse::pattern_key(A);
  st.reg.counter("serve.shard.collective").inc();
  if (st.coll && st.coll_key == key) {
    if (out) out->flags |= kFlagPatternHit;
    if (st.coll_vhash == h.vhash && same_values(st.coll_values, A.values)) {
      if (out) out->flags |= kFlagValueHit;
    } else {
      st.coll->refactorize(comm, A);
      st.coll_vhash = h.vhash;
      st.coll_values = A.values;
    }
  } else {
    SolverOptions so = opt_.solver;
    so.backend = Backend::dist;
    so.dist.pr = grid_.pr;
    so.dist.pc = grid_.pc;
    so.dist.nprocs = nranks_;
    st.coll.reset();
    st.coll = std::make_unique<dist::DistSolver<T>>(comm, A, so);
    st.coll_key = key;
    st.coll_vhash = h.vhash;
    st.coll_values = A.values;
  }
  if (h.kind == kKindSolve) {
    std::vector<T> x(static_cast<std::size_t>(A.ncols));
    st.coll->solve(comm, b, x);
    if (out) out->x = std::move(x);
  }
  if (out) {
    out->precision = Precision::double_;
    out->berr = st.coll->stats().berr;
    out->refine_iterations = st.coll->stats().refine_iterations;
  }
}

template <class T>
void ShardedTier<T>::Impl::send_metrics(minimpi::Comm& comm, ShardState& st) {
  std::vector<double> v(kNumShardCounters, 0.0);
  for (std::size_t i = 0; i < kNumShardCounters; ++i)
    if (const metrics::Counter* c = st.reg.find_counter(kShardCounters[i]))
      v[i] = static_cast<double>(c->value());
  comm.reduce_sum_vec(0, tags::kReduce, v);  // non-root: one send
  const HistBlob blob =
      hist_blob(st.reg.find_histogram("serve.shard.solve_us"));
  comm.send(0, tags::kMetrics, &blob, sizeof blob);
}

template <class T>
void ShardedTier<T>::Impl::server_body(minimpi::Comm& comm) {
  ShardState& st = *shards_[static_cast<std::size_t>(comm.rank())];
  for (;;) {
    // Blocks on the gateway only. A dead gateway (or the transport
    // watchdog) throws Errc::comm out of the body — run_report records it
    // and the rank goes down rather than hanging.
    minimpi::Message m = comm.recv(0, minimpi::kAnyTag);
    if (m.tag == tags::kStop) {
      send_metrics(comm, st);
      return;
    }
    if (m.tag == tags::kRequest || m.tag == tags::kReplicate) {
      ReqHeader h;
      sparse::CscMatrix<T> A;
      std::vector<T> b;
      unpack_request(m, h, A, b);
      LocalResult<T> r = serve_request(st, h, A, b);
      const auto wire = pack_response(h.id, r);
      // A kill fault targeting this rank fires here and propagates: the
      // rank dies mid-service, which is exactly the chaos case the
      // gateway's re-route path covers.
      comm.send(0, m.tag == tags::kRequest ? tags::kResponse
                                           : tags::kReplicaAck,
                wire.data(), wire.size());
      continue;
    }
    if (m.tag == tags::kCollective) {
      ReqHeader h;
      sparse::CscMatrix<T> A;
      std::vector<T> b;
      unpack_request(m, h, A, b);
      try {
        collective_episode(comm, st, h, A, b, nullptr);
      } catch (const Error& e) {
        if (is_kill_error(e)) throw;
        // A lost peer (or numeric failure) aborted the episode mid-flight;
        // this rank keeps serving its shard. The gateway disables further
        // collectives after any failure, so the now-divergent collective
        // caches are never consulted again.
        st.coll.reset();
        st.coll_values.clear();
        st.reg.counter("serve.shard.collective_aborts").inc();
      }
      continue;
    }
    // Unknown tag in the serve block: tolerated (forward compatibility).
  }
}

// ---------------------------------------------------------------------------
// Gateway (rank 0).

template <class T>
void ShardedTier<T>::Impl::fail_everything(Errc code, const char* msg) {
  {
    std::lock_guard lk(fmu_);
    gateway_down_ = true;
  }
  for (auto& [id, f] : inflight_)
    if (f.p) fail(f.p, code, msg);
  inflight_.clear();
  repl_.clear();
  for (auto& p : collq_) fail(p, code, msg);
  collq_.clear();
  std::deque<PendingPtr> leftover;
  {
    std::lock_guard lk(fmu_);
    leftover.swap(frontend_);
  }
  for (auto& p : leftover) fail(p, code, msg);
}

template <class T>
void ShardedTier<T>::Impl::gateway_body(minimpi::Comm& comm) {
  try {
    gateway_loop(comm);
  } catch (const Error& e) {
    fail_everything(e.code(), e.what());
    throw;
  } catch (...) {
    fail_everything(Errc::internal, "serving gateway died");
    throw;
  }
}

template <class T>
void ShardedTier<T>::Impl::dispatch_shard(minimpi::Comm& comm, PendingPtr p) {
  const auto order = rendezvous_order(p->key, nranks_);
  int owner = 0;
  std::uint64_t oidx = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (!world_->is_dead(order[i])) {
      owner = order[i];
      oidx = i;
      break;
    }
  }
  if (oidx > 0) {
    // The key's primary is dead: deterministic failover to the next
    // rendezvous rank — which holds a replica if the pattern was hot.
    metrics::global().counter("serve.shard.failovers").inc();
    trace::instant("serve", "shard_failover");
  }
  ReqHeader h;
  h.id = next_id_++;
  h.kind = p->warm ? kKindWarm : kKindSolve;
  h.owner_index = oidx;
  h.n = p->A->ncols;
  h.nnz = static_cast<std::int64_t>(p->A->nnz());
  h.vhash = p->vhash;
  h.nb = p->warm ? 0 : static_cast<std::int64_t>(p->b.size());
  if (owner == comm.rank()) {
    LocalResult<T> r = serve_request(
        *shards_[0], h, *p->A,
        p->warm ? std::span<const T>{} : p->b);
    settle(comm, std::move(p), std::move(r), /*served_by=*/0);
    return;
  }
  InFlight f;
  f.wire = pack_request(h, *p->A,
                        p->warm ? std::span<const T>{} : p->b);
  f.target = owner;
  f.timeout = opt_.shard.request_timeout_s > 0
                  ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       std::chrono::duration<double>(
                                           opt_.shard.request_timeout_s))
                  : Clock::time_point::max();
  f.p = std::move(p);
  comm.send(owner, tags::kRequest, f.wire.data(), f.wire.size());
  inflight_.emplace(h.id, std::move(f));
}

template <class T>
void ShardedTier<T>::Impl::settle(minimpi::Comm& comm, PendingPtr p,
                                  LocalResult<T>&& r, int served_by) {
  if (!r.ok) {
    fail(p, r.code, std::move(r.message));
    return;
  }
  if (r.flags & kFlagPromote)
    maybe_replicate(comm, p->key, *p->A, served_by);
  Response<T> resp;
  resp.backend = Backend::dist;
  resp.owner_rank = served_by;
  resp.pattern_hit = (r.flags & kFlagPatternHit) != 0;
  resp.value_hit = (r.flags & kFlagValueHit) != 0;
  resp.value_delta = (r.flags & kFlagValueDelta) != 0;
  resp.replica_hit = (r.flags & kFlagReplicaHit) != 0;
  resp.berr = r.berr;
  resp.refine_iterations = r.refine_iterations;
  resp.precision = r.precision;
  resp.x = std::move(r.x);
  if (resp.replica_hit)
    metrics::global().counter("serve.shard.replica_hits").inc();
  fulfill(p, std::move(resp));
}

template <class T>
void ShardedTier<T>::Impl::maybe_replicate(minimpi::Comm& comm,
                                           const sparse::PatternKey& key,
                                           const sparse::CscMatrix<T>& A,
                                           int serving_rank) {
  if (replication_ < 2 || replicated_.count(key)) return;
  const auto order = rendezvous_order(key, nranks_);
  int backup = -1;
  std::uint64_t bidx = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] != serving_rank && !world_->is_dead(order[i])) {
      backup = order[i];
      bidx = i;
      break;
    }
  }
  if (backup < 0) return;  // nobody left to replicate to
  replicated_.emplace(key, true);
  metrics::global().counter("serve.shard.promotions").inc();
  trace::instant("serve", "shard_promote");
  ReqHeader h;
  h.id = next_id_++;
  h.kind = kKindReplicate;
  h.owner_index = bidx;
  h.n = A.ncols;
  h.nnz = static_cast<std::int64_t>(A.nnz());
  h.vhash = sparse::value_hash(A);
  h.nb = 0;
  if (backup == comm.rank()) {
    serve_request(*shards_[0], h, A, {});
    metrics::global().counter("serve.shard.replications").inc();
    return;
  }
  const auto wire = pack_request(h, A, std::span<const T>{});
  comm.send(backup, tags::kReplicate, wire.data(), wire.size());
  Replication rep;
  rep.target = backup;
  rep.timeout = opt_.shard.request_timeout_s > 0
                    ? Clock::now() +
                          std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(
                                  opt_.shard.request_timeout_s))
                    : Clock::time_point::max();
  repl_.emplace(h.id, rep);
}

template <class T>
void ShardedTier<T>::Impl::on_response(minimpi::Comm& comm,
                                       const minimpi::Message& m) {
  RespHeader rh;
  LocalResult<T> r = unpack_response<T>(m, rh);
  if (m.tag == tags::kReplicaAck) {
    if (repl_.erase(rh.id) > 0)
      metrics::global().counter("serve.shard.replications").inc();
    return;
  }
  auto it = inflight_.find(rh.id);
  if (it == inflight_.end()) return;  // timed out / re-routed: late answer
  InFlight f = std::move(it->second);
  inflight_.erase(it);
  settle(comm, std::move(f.p), std::move(r), m.src);
}

template <class T>
void ShardedTier<T>::Impl::handle_deaths(minimpi::Comm& comm,
                                         std::uint64_t mask) {
  const std::uint64_t fresh = mask & ~seen_dead_;
  seen_dead_ = mask;
  collective_ok_ = false;  // DistSolver needs the full grid
  for (int r = 0; r < nranks_; ++r) {
    if (!((fresh >> static_cast<unsigned>(r)) & 1u)) continue;
    metrics::global().counter("serve.shard.rank_deaths").inc();
    trace::instant("serve", "shard_rank_death", r);
    // Its shard died with it: evict so capacity accounting stays honest
    // and a resurrected pattern re-factors at its new owner.
    shards_[static_cast<std::size_t>(r)]->cache->clear();
    shards_[static_cast<std::size_t>(r)]->hits.clear();
    shards_[static_cast<std::size_t>(r)]->promoted.clear();
  }
  // Re-route in-flight requests addressed to a dead rank: deterministic
  // next-alive rendezvous owner, bounded attempts, Errc::comm at worst.
  std::vector<std::uint64_t> doomed;
  for (auto& [id, f] : inflight_) {
    if (!world_->is_dead(f.target)) continue;
    if (f.attempts >= 3) {
      fail(f.p, Errc::comm,
           "request lost to repeated rank failures (re-route cap)");
      doomed.push_back(id);
      continue;
    }
    const auto order = rendezvous_order(f.p->key, nranks_);
    int owner = 0;
    std::uint64_t oidx = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (!world_->is_dead(order[i])) {
        owner = order[i];
        oidx = i;
        break;
      }
    }
    metrics::global().counter("serve.shard.reroutes").inc();
    trace::instant("serve", "shard_reroute", owner);
    ++f.attempts;
    if (owner == comm.rank()) {
      ReqHeader h;
      std::memcpy(&h, f.wire.data(), sizeof h);
      h.owner_index = oidx;
      LocalResult<T> r = serve_request(
          *shards_[0], h, *f.p->A,
          f.p->warm ? std::span<const T>{} : f.p->b);
      settle(comm, std::move(f.p), std::move(r), 0);
      doomed.push_back(id);
      continue;
    }
    // Rewrite the stored envelope's owner_index in place and re-send.
    ReqHeader h;
    std::memcpy(&h, f.wire.data(), sizeof h);
    h.owner_index = oidx;
    std::memcpy(f.wire.data(), &h, sizeof h);
    f.target = owner;
    comm.send(owner, tags::kRequest, f.wire.data(), f.wire.size());
  }
  for (std::uint64_t id : doomed) inflight_.erase(id);
  // In-flight replications to a dead backup just evaporate; the pattern
  // can be promoted again by its owner's future hits.
  for (auto it = repl_.begin(); it != repl_.end();) {
    if (world_->is_dead(it->second.target))
      it = repl_.erase(it);
    else
      ++it;
  }
}

template <class T>
void ShardedTier<T>::Impl::run_collective(minimpi::Comm& comm, PendingPtr p) {
  GESP_TRACE_SPAN("serve", "shard_collective");
  ReqHeader h;
  h.id = next_id_++;
  h.kind = p->warm ? kKindWarm : kKindSolve;
  h.n = p->A->ncols;
  h.nnz = static_cast<std::int64_t>(p->A->nnz());
  h.vhash = p->vhash;
  h.nb = p->warm ? 0 : static_cast<std::int64_t>(p->b.size());
  const std::span<const T> b =
      p->warm ? std::span<const T>{} : p->b;
  try {
    const auto wire = pack_request(h, *p->A, b);
    for (int r = 1; r < nranks_; ++r)
      comm.send(r, tags::kCollective, wire.data(), wire.size());
    LocalResult<T> r;
    collective_episode(comm, *shards_[0], h, *p->A, b, &r);
    Response<T> resp;
    resp.backend = Backend::dist;
    resp.owner_rank = -1;  // the whole grid served it
    resp.pattern_hit = (r.flags & kFlagPatternHit) != 0;
    resp.value_hit = (r.flags & kFlagValueHit) != 0;
    resp.berr = r.berr;
    resp.refine_iterations = r.refine_iterations;
    resp.precision = r.precision;
    resp.x = std::move(r.x);
    fulfill(p, std::move(resp));
  } catch (const Error& e) {
    // One failed episode permanently disables the collective path: the
    // per-rank collective caches may have diverged, and re-aligning them
    // under failures is not worth the risk of serving a misaligned
    // factorization. Over-budget patterns go to shards best-effort now.
    collective_ok_ = false;
    shards_[0]->coll.reset();
    shards_[0]->coll_values.clear();
    shards_[0]->reg.counter("serve.shard.collective_aborts").inc();
    fail(p, e.code(), e.what());
    if (is_kill_error(e)) throw;  // the gateway's own kill fault
  }
}

template <class T>
void ShardedTier<T>::Impl::shutdown_fleet(minimpi::Comm& comm) {
  std::vector<int> alive;
  const std::byte stop_byte{0};
  for (int r = 1; r < nranks_; ++r) {
    if (world_->is_dead(r)) continue;
    alive.push_back(r);
    comm.send(r, tags::kStop, &stop_byte, 1);
  }
  // Fleet metric aggregation: counters by vector sum-reduce, histograms
  // by raw-bucket merge. A rank that dies during shutdown forfeits its
  // numbers — aggregation must never block the stop path.
  try {
    std::vector<double> total(kNumShardCounters, 0.0);
    for (std::size_t i = 0; i < kNumShardCounters; ++i)
      if (const metrics::Counter* c =
              shards_[0]->reg.find_counter(kShardCounters[i]))
        total[i] = static_cast<double>(c->value());
    if (world_->dead_mask() == 0) {
      total = comm.reduce_sum_vec(0, tags::kReduce, total,
                                  static_cast<int>(alive.size()));
    } else {
      // Degraded world: a wildcard receive would throw (it cannot prove
      // its sender is alive), so gather per-source instead.
      for (int r : alive) {
        try {
          const auto part = comm.recv(r, tags::kReduce).template as<double>();
          GESP_CHECK(part.size() == total.size(), Errc::comm,
                     "shard: short counter reduce contribution");
          for (std::size_t i = 0; i < total.size(); ++i) total[i] += part[i];
        } catch (const Error&) {
          // died mid-stop; its counters die with it
        }
      }
    }
    for (std::size_t i = 0; i < kNumShardCounters; ++i)
      if (total[i] > 0)
        metrics::global().counter(kShardCounters[i])
            .inc(static_cast<count_t>(total[i]));
    metrics::Histogram& fleet =
        metrics::global().histogram("serve.shard.solve_us");
    const HistBlob own =
        hist_blob(shards_[0]->reg.find_histogram("serve.shard.solve_us"));
    fleet.merge_raw(own.count, own.sum, own.min, own.max, own.buckets);
    for (int r : alive) {
      try {
        const minimpi::Message m = comm.recv(r, tags::kMetrics);
        GESP_CHECK(m.data.size() == sizeof(HistBlob), Errc::comm,
                   "shard: mangled histogram blob");
        HistBlob blob;
        std::memcpy(&blob, m.data.data(), sizeof blob);
        fleet.merge_raw(blob.count, blob.sum, blob.min, blob.max,
                        blob.buckets);
      } catch (const Error&) {
        // died mid-stop; its histogram dies with it
      }
    }
  } catch (const Error&) {
    // Aggregation is best-effort; shutdown continues regardless.
  }
}

template <class T>
void ShardedTier<T>::Impl::adapt_step(Clock::time_point now) {
  next_adapt_ = now + adapt_window_;
  tune::ControllerInput in;
  in.window_s = std::chrono::duration<double>(adapt_window_).count();
  in.arrival_rate = arrivals_.tick(
      std::chrono::duration<double>(now.time_since_epoch()).count());
  const auto snap = window_latency_us_.snapshot_and_reset();
  in.completed = snap.count;
  in.p50_us = snap.quantile(0.5);
  in.p99_us = snap.quantile(0.99);
  {
    std::lock_guard lk(fmu_);
    in.queue_depth =
        static_cast<double>(frontend_.size() + inflight_.size());
  }
  const tune::ServeKnobs k = controller_->step(in);
  const auto admit = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             k.shed_fraction * static_cast<double>(opt_.max_queue) + 0.5));
  const auto prev = eff_admit_.load(std::memory_order_relaxed);
  eff_admit_.store(admit, std::memory_order_relaxed);
  auto& reg = metrics::global();
  reg.gauge("serve.tune.admit_bound").set(static_cast<double>(admit));
  reg.gauge("serve.tune.window_p99_us").set(in.p99_us);
  reg.gauge("serve.tune.window_arrival_rate").set(in.arrival_rate);
  const auto& cs = controller_->stats();
  reg.gauge("serve.tune.windows").set(static_cast<double>(cs.windows));
  reg.gauge("serve.tune.trims").set(static_cast<double>(cs.trims));
  reg.gauge("serve.tune.relaxes").set(static_cast<double>(cs.relaxes));
  if (admit != prev) {
    reg.counter("serve.tune.adjustments").inc();
    trace::instant("serve", "tune_adjust", static_cast<int>(admit));
  }
}

template <class T>
void ShardedTier<T>::Impl::gateway_loop(minimpi::Comm& comm) {
  for (;;) {
    bool progress = false;

    // 1. Failure detection: dead ranks -> evict shard, re-route in-flight.
    const std::uint64_t mask = world_->dead_mask();
    if (mask != seen_dead_) {
      handle_deaths(comm, mask);
      progress = true;
    }

    // 2. Incoming traffic. probe-then-recv never blocks: a queued match
    // is returned even in a degraded world (drain semantics).
    while (comm.probe()) {
      const minimpi::Message m = comm.recv();
      progress = true;
      if (m.tag == tags::kResponse || m.tag == tags::kReplicaAck)
        on_response(comm, m);
      // anything else in the serve block: ignore
    }

    // 3. Admit client requests.
    for (;;) {
      PendingPtr p;
      {
        std::lock_guard lk(fmu_);
        if (frontend_.empty()) break;
        p = std::move(frontend_.front());
        frontend_.pop_front();
        metrics::global().gauge("serve.queue.depth")
            .set(static_cast<double>(frontend_.size()));
      }
      progress = true;
      if (p->deadline < Clock::now()) {
        metrics::global().counter("serve.deadline_expired").inc();
        metrics::global().counter("serve.rejected").inc();
        fail(p, Errc::overloaded,
             "deadline expired while queued; the service is overloaded "
             "or the deadline was too tight");
        continue;
      }
      if (p->collective && collective_ok_ && world_->dead_mask() == 0)
        collq_.push_back(std::move(p));
      else
        dispatch_shard(comm, std::move(p));
    }

    // 4. Collective episodes run one at a time, only at quiescence: no
    // serve envelope may be in flight while DistSolver traffic spans the
    // grid (the tag spaces are disjoint, but a server blocked inside an
    // episode must not be handed shard work it cannot answer).
    if (!collq_.empty() && inflight_.empty() && repl_.empty()) {
      PendingPtr p = std::move(collq_.front());
      collq_.pop_front();
      if (collective_ok_ && world_->dead_mask() == 0)
        run_collective(comm, std::move(p));
      else
        dispatch_shard(comm, std::move(p));  // degraded: best-effort shard
      progress = true;
    }

    // 5. Watchdogs: an in-flight request past its timeout gets a definite
    // Errc::comm — the no-hung-service backstop even when a rank wedges
    // without dying.
    const auto now = Clock::now();
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      if (now > it->second.timeout) {
        metrics::global().counter("serve.shard.timeouts").inc();
        fail(it->second.p, Errc::comm,
             "request timed out in flight to rank " +
                 std::to_string(it->second.target));
        it = inflight_.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
    for (auto it = repl_.begin(); it != repl_.end();) {
      if (now > it->second.timeout)
        it = repl_.erase(it);
      else
        ++it;
    }

    // 5b. Adaptive admission: one controller step per window (opt_.adapt).
    if (controller_ && now >= next_adapt_) adapt_step(now);

    // 6. Shutdown, after everything admitted has been answered.
    bool stopping;
    bool empty_frontend;
    {
      std::lock_guard lk(fmu_);
      stopping = stop_requested_;
      empty_frontend = frontend_.empty();
    }
    if (stopping && empty_frontend && inflight_.empty() && repl_.empty() &&
        collq_.empty()) {
      shutdown_fleet(comm);
      return;
    }

    if (!progress)
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

// ---------------------------------------------------------------------------
// Facade.

template <class T>
ShardedTier<T>::ShardedTier(const ServiceOptions& opt)
    : impl_(std::make_unique<Impl>(opt)) {}

template <class T>
ShardedTier<T>::~ShardedTier() = default;

template <class T>
Response<T> ShardedTier<T>::solve(const sparse::CscMatrix<T>& A,
                                  std::span<const T> b,
                                  const RequestOptions& ropt) {
  GESP_CHECK(A.nrows == A.ncols, Errc::invalid_argument,
             "SolverService::solve: matrix must be square");
  GESP_CHECK(b.size() == static_cast<std::size_t>(A.ncols),
             Errc::invalid_argument,
             "SolverService::solve: b size must equal the matrix dimension");
  return impl_->submit(A, b, ropt, /*warm=*/false);
}

template <class T>
void ShardedTier<T>::warm(const sparse::CscMatrix<T>& A) {
  GESP_CHECK(A.nrows == A.ncols, Errc::invalid_argument,
             "SolverService::warm: matrix must be square");
  impl_->submit(A, {}, RequestOptions{}, /*warm=*/true);
}

template <class T>
void ShardedTier<T>::stop() {
  impl_->stop();
}

template <class T>
int ShardedTier<T>::nranks() const {
  return impl_->nranks_;
}

template <class T>
int ShardedTier<T>::owner_of(const sparse::PatternKey& key) const {
  const auto order = rendezvous_order(key, impl_->nranks_);
  for (int r : order)
    if (!impl_->world_->is_dead(r)) return r;
  return -1;
}

template <class T>
std::uint64_t ShardedTier<T>::dead_mask() const {
  return impl_->world_->dead_mask();
}

template <class T>
std::size_t ShardedTier<T>::cache_entries() const {
  std::size_t total = 0;
  for (const auto& st : impl_->shards_) total += st->cache->entries();
  return total;
}

template <class T>
std::size_t ShardedTier<T>::cache_bytes() const {
  std::size_t total = 0;
  for (const auto& st : impl_->shards_) total += st->cache->bytes();
  return total;
}

template <class T>
std::size_t ShardedTier<T>::shard_entries(int rank) const {
  GESP_CHECK(rank >= 0 && rank < impl_->nranks_, Errc::invalid_argument,
             "shard_entries: rank out of range");
  return impl_->shards_[static_cast<std::size_t>(rank)]->cache->entries();
}

template <class T>
std::size_t ShardedTier<T>::queue_depth() const {
  std::lock_guard lk(impl_->fmu_);
  return impl_->frontend_.size();
}

template <class T>
std::size_t ShardedTier<T>::effective_admit() const {
  return impl_->eff_admit_.load(std::memory_order_relaxed);
}

template class ShardedTier<double>;
template class ShardedTier<Complex>;

}  // namespace gesp::serve
