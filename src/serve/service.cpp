#include "serve/service.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "serve/shard.hpp"

namespace gesp::serve {
namespace {

/// Failures the PR-1 recovery ladder can do something about; everything
/// else (bad input, library bug) is rethrown to the client as-is.
bool recoverable(Errc c) noexcept {
  return c == Errc::numerically_singular || c == Errc::unstable;
}

/// Footprint estimate for one cache entry: the factors (stored supernodal
/// values + structure), the retained transformed copy of A, the entry's
/// exact-value check copy, and the O(n) transform vectors. Deliberately an
/// estimate — the byte budget is a pressure valve, not an allocator. The
/// factor values are charged at the precision they are actually stored at:
/// a single-precision factorization costs half the dominant term, so a
/// mixed-mode service fits ~2× the factorizations into one byte budget.
template <class T>
std::size_t estimate_bytes(const Solver<T>& s, const sparse::CscMatrix<T>& A) {
  const SolveStats& st = s.stats();
  const std::size_t factor_scalar =
      s.active_precision() == Precision::single ? sizeof(float) : sizeof(T);
  return factor_asset_bytes(st.stored_l, st.stored_u, st.nnz_l, st.nnz_u,
                            A.ncols, A.nnz(), factor_scalar, sizeof(T));
}

/// Bitwise equality of value arrays — the same byte-level view value_hash
/// takes (so +0.0 != -0.0 and NaN == NaN, matching the hash).
template <class T>
bool same_values(const std::vector<T>& cached, const std::vector<T>& now) {
  return cached.size() == now.size() &&
         (cached.empty() ||
          std::memcmp(cached.data(), now.data(),
                      cached.size() * sizeof(T)) == 0);
}

[[noreturn]] void reject(const char* why) {
  metrics::global().counter("serve.rejected").inc();
  trace::instant("serve", "reject");
  throw_error(Errc::overloaded, why);
}

}  // namespace

bool shard_options_set(const ShardOptions& s) noexcept {
  return s.pr != 0 || s.pc != 0 || s.replication != 0 ||
         s.shard_max_entries != 0 || s.shard_max_bytes != 0 ||
         s.fault.armed();
}

template <class T>
SolverService<T>::SolverService(const ServiceOptions& opt)
    : opt_(opt), cache_(opt.cache_max_entries, opt.cache_max_bytes) {
  // ServiceOptions::backend is THE selector; the per-solver field is
  // derived from it so a caller-set solver.backend can never smuggle an
  // engine past the service (the old implicit-split failure mode).
  opt_.solver.backend = opt_.backend;
  opt_.num_workers = std::max(1, opt_.num_workers);
  opt_.max_queue = std::max<std::size_t>(1, opt_.max_queue);
  opt_.max_batch = std::max<index_t>(1, opt_.max_batch);
  eff_max_batch_.store(opt_.max_batch, std::memory_order_relaxed);
  eff_linger_s_.store(opt_.batch_linger_s, std::memory_order_relaxed);
  eff_shed_fraction_.store(opt_.shed_fraction, std::memory_order_relaxed);
  if (opt_.backend == Backend::dist) {
    tier_ = std::make_unique<ShardedTier<T>>(opt_);
    return;  // the tier IS the service (it runs its own gateway adaptation)
  }
  GESP_CHECK(!shard_options_set(opt_.shard), Errc::invalid_argument,
             "SolverService: ShardOptions (grid/replication/shard budgets/"
             "fault injection) require ServiceOptions::backend == "
             "Backend::dist; a single-node backend would silently ignore "
             "them");
  workers_.reserve(static_cast<std::size_t>(opt_.num_workers));
  for (int i = 0; i < opt_.num_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  if (opt_.adapt) {
    controller_ = std::make_unique<tune::ServeController>(
        tune::ServeKnobs{opt_.max_batch, opt_.batch_linger_s,
                         opt_.shed_fraction},
        opt_.adapt_controller);
    adapt_thread_ = std::thread([this] { adapt_loop(); });
  }
}

template <class T>
SolverService<T>::~SolverService() {
  stop();
}

template <class T>
Response<T> SolverService<T>::solve(const sparse::CscMatrix<T>& A,
                                    std::span<const T> b,
                                    const RequestOptions& ropt) {
  if (tier_) return tier_->solve(A, b, ropt);
  GESP_CHECK(A.nrows == A.ncols, Errc::invalid_argument,
             "SolverService::solve: matrix must be square");
  GESP_CHECK(b.size() == static_cast<std::size_t>(A.ncols),
             Errc::invalid_argument,
             "SolverService::solve: b size must equal the matrix dimension");
  auto p = std::make_unique<Pending>();
  p->A = &A;
  // Routing cost, paid once per request on the client thread: one FNV pass
  // over the pattern and one over the values.
  p->key = sparse::pattern_key(A);
  p->vhash = sparse::value_hash(A);
  p->b = b;
  p->enqueued = Clock::now();
  p->deadline = ropt.deadline_s > 0
                    ? p->enqueued + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double>(
                                            ropt.deadline_s))
                    : Clock::time_point::max();
  std::future<Outcome> fut = p->promise.get_future();
  {
    std::lock_guard lk(mu_);
    metrics::global().counter("serve.requests").inc();
    if (stop_) reject("service stopped");
    if (queue_.size() >= opt_.max_queue)
      reject("request queue full; retry later or raise max_queue");
    queue_.push_back(std::move(p));
    metrics::global().counter("serve.admitted").inc();
    window_admitted_.inc();
    const auto depth = static_cast<double>(queue_.size());
    metrics::global().gauge("serve.queue.depth").set(depth);
    trace::counter("serve.queue.depth", depth);
  }
  cv_.notify_all();
  Outcome out = fut.get();
  // Worker-side rejection / solver failure, rethrown on the client thread.
  if (!out.ok) throw Error(out.code, std::move(out.message));
  return std::move(out.resp);
}

template <class T>
void SolverService<T>::warm(const sparse::CscMatrix<T>& A) {
  if (tier_) {
    tier_->warm(A);
    return;
  }
  GESP_CHECK(A.nrows == A.ncols, Errc::invalid_argument,
             "SolverService::warm: matrix must be square");
  bool matched = false;
  auto e = cache_.acquire(A, &matched);
  std::lock_guard elk(e->mu);
  prepare_entry(*e, A, sparse::value_hash(A), /*arm_recovery=*/false,
                /*hostile=*/false);
  cache_.update_bytes(e, estimate_bytes(*e->solver, A),
                      e->solver->active_precision());
}

template <class T>
void SolverService<T>::stop() {
  if (tier_) {
    tier_->stop();
    return;
  }
  {
    std::lock_guard lk(adapt_mu_);
    adapt_stop_ = true;
  }
  adapt_cv_.notify_all();
  if (adapt_thread_.joinable()) adapt_thread_.join();
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
  // The workers drain the queue before exiting; anything still here lost a
  // pop race against shutdown and must not hang its client.
  std::list<PendingPtr> leftover;
  {
    std::lock_guard lk(mu_);
    leftover.swap(queue_);
  }
  for (auto& p : leftover)
    p->promise.set_value(Outcome{{}, false, Errc::overloaded,
                                 "service stopped before execution"});
}

template <class T>
std::size_t SolverService<T>::queue_depth() const {
  if (tier_) return tier_->queue_depth();
  std::lock_guard lk(mu_);
  return queue_.size();
}

template <class T>
std::size_t SolverService<T>::cache_entries() const {
  return tier_ ? tier_->cache_entries() : cache_.entries();
}

template <class T>
std::size_t SolverService<T>::cache_bytes() const {
  return tier_ ? tier_->cache_bytes() : cache_.bytes();
}

template <class T>
std::size_t SolverService<T>::cache_single_bytes() const {
  return tier_ ? 0 : cache_.single_bytes();
}

template <class T>
bool SolverService<T>::is_hostile(const sparse::PatternKey& key) const {
  if (tier_) return false;  // reputation lives shard-side, not aggregated
  std::lock_guard lk(hostile_mu_);
  auto it = hostile_.find(key);
  return it != hostile_.end() && it->second.hostile;
}

template <class T>
bool SolverService<T>::hostile_pattern(const sparse::PatternKey& key) {
  std::lock_guard lk(hostile_mu_);
  auto it = hostile_.find(key);
  if (it == hostile_.end() || !it->second.hostile) return false;
  metrics::global().counter("serve.recovery.hostile_hits").inc();
  return true;
}

template <class T>
void SolverService<T>::note_failed_recovery(const sparse::PatternKey& key) {
  if (opt_.hostile_threshold <= 0) return;
  std::lock_guard lk(hostile_mu_);
  auto& st = hostile_[key];
  ++st.failed_recoveries;
  if (!st.hostile && st.failed_recoveries >= opt_.hostile_threshold) {
    st.hostile = true;
    metrics::global().counter("serve.recovery.hostile_marked").inc();
    trace::instant("serve", "hostile_marked");
  }
}

template <class T>
void SolverService<T>::note_recovered(const sparse::PatternKey& key) {
  std::lock_guard lk(hostile_mu_);
  auto it = hostile_.find(key);
  if (it != hostile_.end() && !it->second.hostile)
    it->second.failed_recoveries = 0;
}

template <class T>
void SolverService<T>::worker_loop() {
  for (;;) {
    Batch batch;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and fully drained
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      collect_matches_locked(batch);
      // Batching knobs come from the effective-knob atomics, not opt_:
      // the adaptive controller may have moved them since construction.
      const index_t max_batch =
          eff_max_batch_.load(std::memory_order_relaxed);
      const double linger_s = eff_linger_s_.load(std::memory_order_relaxed);
      // Linger: hold a non-full batch briefly so concurrent same-
      // factorization arrivals coalesce. Other workers keep draining the
      // queue meanwhile — the lock is released inside wait_until.
      if (max_batch > 1 && linger_s > 0 &&
          static_cast<index_t>(batch.size()) < max_batch && !stop_) {
        const auto linger_until =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(linger_s));
        while (static_cast<index_t>(batch.size()) < max_batch &&
               !stop_) {
          if (cv_.wait_until(lk, linger_until) == std::cv_status::timeout) {
            collect_matches_locked(batch);
            break;
          }
          collect_matches_locked(batch);
        }
      }
      const auto depth = static_cast<double>(queue_.size());
      metrics::global().gauge("serve.queue.depth").set(depth);
      trace::counter("serve.queue.depth", depth);
    }
    execute_batch(batch);
  }
}

template <class T>
tune::ServeKnobs SolverService<T>::effective_knobs() const {
  tune::ServeKnobs k;
  k.max_batch = eff_max_batch_.load(std::memory_order_relaxed);
  k.batch_linger_s = eff_linger_s_.load(std::memory_order_relaxed);
  k.shed_fraction = eff_shed_fraction_.load(std::memory_order_relaxed);
  return k;
}

template <class T>
tune::ServeController::Stats SolverService<T>::adapt_stats() const {
  std::lock_guard lk(adapt_mu_);
  return controller_ ? controller_->stats() : tune::ServeController::Stats{};
}

template <class T>
void SolverService<T>::adapt_loop() {
  metrics::RateWindow arrivals(window_admitted_);
  const auto t0 = Clock::now();
  const auto now_s = [&t0] {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  arrivals.tick(now_s());
  const double window_s = std::max(1e-3, opt_.adapt_window_s);
  const auto window = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(window_s));
  std::unique_lock lk(adapt_mu_);
  for (;;) {
    if (adapt_cv_.wait_for(lk, window, [this] { return adapt_stop_; }))
      return;
    tune::ControllerInput in;
    in.window_s = window_s;
    in.arrival_rate = arrivals.tick(now_s());
    const auto snap = window_latency_us_.snapshot_and_reset();
    in.completed = snap.count;
    in.p50_us = snap.quantile(0.5);
    in.p99_us = snap.quantile(0.99);
    in.queue_depth = static_cast<double>(queue_depth());
    const tune::ServeKnobs k = controller_->step(in);
    const tune::ServeKnobs prev = effective_knobs();
    eff_max_batch_.store(k.max_batch, std::memory_order_relaxed);
    eff_linger_s_.store(k.batch_linger_s, std::memory_order_relaxed);
    eff_shed_fraction_.store(k.shed_fraction, std::memory_order_relaxed);
    auto& reg = metrics::global();
    reg.gauge("serve.tune.max_batch")
        .set(static_cast<double>(k.max_batch));
    reg.gauge("serve.tune.batch_linger_s").set(k.batch_linger_s);
    reg.gauge("serve.tune.shed_fraction").set(k.shed_fraction);
    reg.gauge("serve.tune.window_p99_us").set(in.p99_us);
    reg.gauge("serve.tune.window_arrival_rate").set(in.arrival_rate);
    const auto& cs = controller_->stats();
    reg.gauge("serve.tune.windows").set(static_cast<double>(cs.windows));
    reg.gauge("serve.tune.trims").set(static_cast<double>(cs.trims));
    reg.gauge("serve.tune.relaxes").set(static_cast<double>(cs.relaxes));
    if (!(k == prev)) {
      reg.counter("serve.tune.adjustments").inc();
      trace::instant("serve", "tune_adjust",
                     static_cast<int>(k.max_batch));
    }
  }
}

template <class T>
void SolverService<T>::collect_matches_locked(Batch& batch) {
  // Coalesce on (pattern key, value hash): 128 combined hash bits, so a
  // cross-matrix collision here is beyond negligible — and the cache layer
  // still validates the pattern arrays exactly before any symbolic reuse.
  const Pending& head = *batch.front();
  const index_t max_batch = eff_max_batch_.load(std::memory_order_relaxed);
  for (auto it = queue_.begin();
       it != queue_.end() && static_cast<index_t>(batch.size()) < max_batch;) {
    if ((*it)->key == head.key && (*it)->vhash == head.vhash) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

template <class T>
void SolverService<T>::execute_batch(Batch& batch) {
  // Last line of defense for the worker thread: nothing may escape here —
  // a stray exception would terminate the process and strand every queued
  // client. Expected failures are mapped inside execute_batch_impl; what
  // remains (bad_alloc sizing the batch buffers, a future_error bug, …)
  // resolves the batch's unfulfilled requests as Errc::internal.
  try {
    execute_batch_impl(batch);
  } catch (const std::exception& ex) {
    fail_unfulfilled(batch, Errc::internal, ex.what());
  } catch (...) {
    fail_unfulfilled(batch, Errc::internal,
                     "unknown exception during batch execution");
  }
}

template <class T>
void SolverService<T>::fail_unfulfilled(Batch& batch, Errc code,
                                        const char* msg) {
  for (auto& p : batch) {
    if (!p) continue;  // resolved already — every resolution nulls its slot
    p->promise.set_value(Outcome{{}, false, code, msg});
    p.reset();
  }
}

template <class T>
void SolverService<T>::execute_batch_impl(Batch& batch) {
  GESP_TRACE_SPAN("serve", "batch");
  // Deadline check happens at execution start: a request that waited past
  // its budget is shed instead of solved late.
  const auto now = Clock::now();
  // The slots in `batch` remain the owners; `live` points at the not-yet-
  // resolved ones. Every promise resolution nulls its slot, so the failure
  // paths below (and the catch-all in execute_batch) can never touch a
  // promise twice — set_value on a satisfied promise throws future_error.
  std::vector<PendingPtr*> live;
  live.reserve(batch.size());
  for (auto& p : batch) {
    if (p->deadline < now) {
      metrics::global().counter("serve.deadline_expired").inc();
      metrics::global().counter("serve.rejected").inc();
      trace::instant("serve", "deadline_expired");
      p->promise.set_value(
          Outcome{{}, false, Errc::overloaded,
                  "deadline expired while queued; the service is "
                  "overloaded or the deadline was too tight"});
      p.reset();
    } else {
      live.push_back(&p);
    }
  }
  if (live.empty()) return;

  // Graceful degradation: with the queue mostly full, skip iterative
  // refinement — one static-pivot triangular solve per request is the
  // cheapest answer GESP can give, and berr is still measured once.
  const bool shed =
      opt_.shed_refinement &&
      queue_depth() >= static_cast<std::size_t>(
                           eff_shed_fraction_.load(std::memory_order_relaxed) *
                           static_cast<double>(opt_.max_queue));
  refine::RefineOptions shed_refine = opt_.solver.refine;
  shed_refine.max_iters = 0;
  const refine::RefineOptions* ov = shed ? &shed_refine : nullptr;

  // One hostile snapshot per batch (every live request shares the pattern
  // key — that is what collect_matches_locked coalesces on). A hostile
  // pattern's cold build arms the ladder at the strongest rung up front,
  // so a failure there gets no evict-and-retry: the retry would only
  // repeat the same strongest-rung attempt.
  const sparse::PatternKey bkey = (*live.front())->key;
  const bool hostile = hostile_pattern(bkey);

  for (int attempt = 0;; ++attempt) {
    // Re-derived each attempt: a per_column batch can be partially
    // fulfilled before a recoverable failure, and a fulfilled request's
    // matrix (client-owned, borrowed) may already be out of scope — so
    // never reach through a resolved slot.
    const sparse::CscMatrix<T>& A = *(*live.front())->A;
    const std::uint64_t vhash = (*live.front())->vhash;
    const auto n = static_cast<std::size_t>(A.ncols);
    const auto width = static_cast<index_t>(live.size());

    bool pattern_matched = false;
    auto e = cache_.acquire(A, &pattern_matched);
    std::unique_lock elk(e->mu);
    try {
      Response<T> tmpl =
          prepare_entry(*e, A, vhash, attempt > 0, hostile);
      tmpl.backend = opt_.backend;
      tmpl.shed = shed;
      tmpl.recovered = attempt > 0;
      tmpl.hostile = hostile;
      tmpl.batch_width = width;
      tmpl.precision = e->solver->active_precision();
      cache_.update_bytes(e, estimate_bytes(*e->solver, A),
                          tmpl.precision);

      std::vector<std::vector<T>> xs(live.size());
      if (opt_.batch_mode == BatchMode::blocked && live.size() > 1) {
        GESP_TRACE_SPAN_ID("serve", "solve", width);
        std::vector<T> B(n * live.size()), X(n * live.size());
        for (std::size_t j = 0; j < live.size(); ++j)
          std::copy((*live[j])->b.begin(), (*live[j])->b.end(),
                    B.begin() + static_cast<std::ptrdiff_t>(j * n));
        e->solver->solve_multi(B, X, width, ov);
        tmpl.precision = e->solver->active_precision();
        tmpl.berr = e->solver->stats().berr;
        tmpl.refine_iterations = e->solver->stats().refine_iterations;
        // Read the trail after the solves: the ladder can also escalate
        // on a berr stall inside solve(), not just during factorization.
        tmpl.recovery = e->solver->stats().recovery;
        for (std::size_t j = 0; j < live.size(); ++j)
          xs[j].assign(X.begin() + static_cast<std::ptrdiff_t>(j * n),
                       X.begin() + static_cast<std::ptrdiff_t>((j + 1) * n));
        for (std::size_t j = 0; j < live.size(); ++j)
          fulfill(*live[j], tmpl, std::move(xs[j]));
      } else {
        for (std::size_t j = 0; j < live.size(); ++j) {
          GESP_TRACE_SPAN("serve", "solve");
          xs[j].resize(n);
          e->solver->solve((*live[j])->b, xs[j], ov);
          Response<T> r = tmpl;
          r.precision = e->solver->active_precision();
          r.berr = e->solver->stats().berr;
          r.refine_iterations = e->solver->stats().refine_iterations;
          r.recovery = e->solver->stats().recovery;
          fulfill(*live[j], r, std::move(xs[j]));
        }
      }
      // A mixed-mode promotion (or ladder escalation) during the solves
      // replaced the float factors with double ones: re-account the entry
      // at its real footprint so the byte budget stays honest.
      if (e->solver->active_precision() != tmpl.precision)
        cache_.update_bytes(e, estimate_bytes(*e->solver, A),
                            e->solver->active_precision());
      if (attempt > 0 || hostile) {
        // Reputation update for an armed-ladder execution. "The ladder ran
        // but its best-effort answer missed the policy thresholds" is a
        // failed recovery even though a response was served — those
        // best-effort patterns are exactly the persistently hostile ones.
        const RecoveryTrail& tr = e->solver->stats().recovery;
        if (!tr.attempts.empty() && !tr.recovered)
          note_failed_recovery(bkey);
        else if (attempt > 0)
          note_recovered(bkey);
      }
      metrics::global().counter("serve.batches").inc();
      metrics::global().histogram("serve.batch_width").record(
          static_cast<double>(width));
      if (shed)
        metrics::global().counter("serve.shed_solves").inc(
            static_cast<count_t>(live.size()));
      return;
    } catch (const Error& err) {
      if (recoverable(err.code())) {
        metrics::global().counter("serve.recovery.failures").inc();
        // A failure with the ladder armed (the evict-and-retry rebuild, or
        // a hostile strongest-rung build) counts against the pattern's
        // reputation; enough of them and the pattern goes hostile.
        if (attempt > 0 || hostile) note_failed_recovery(bkey);
      }
      if (attempt == 0 && !hostile && opt_.evict_on_failure &&
          recoverable(err.code())) {
        // Recovery wiring: a poisoned cached factorization (stale entry
        // that has drifted numerically singular/unstable) is evicted, and
        // the batch retries once on a cold rebuild with the recovery
        // ladder armed. The entry mutex is released before erase() not for
        // deadlock safety — the established nesting is entry-then-cache
        // (update_bytes takes the cache mutex while the entry mutex is
        // held, and no path takes an entry mutex while holding the cache
        // mutex) — but simply because erase() has no use for it.
        elk.unlock();
        cache_.erase(e);
        // A per_column batch may have fulfilled some requests before the
        // failure; only the remainder retries.
        live.erase(std::remove_if(live.begin(), live.end(),
                                  [](PendingPtr* sp) { return !*sp; }),
                   live.end());
        if (live.empty()) return;
        metrics::global().counter("serve.retries").inc();
        trace::instant("serve", "evict_and_retry");
        continue;
      }
      if (opt_.evict_on_failure && recoverable(err.code())) {
        // No retry budget left (hostile, or the armed retry itself
        // failed), but the poisoned entry still must not be served again.
        elk.unlock();
        cache_.erase(e);
      }
      for (auto* sp : live) {
        if (!*sp) continue;  // fulfilled before the failure
        (*sp)->promise.set_value(
            Outcome{{}, false, err.code(), err.what()});
        sp->reset();
      }
      return;
    }
  }
}

template <class T>
void SolverService<T>::fulfill(PendingPtr& p, const Response<T>& tmpl,
                               std::vector<T>&& x) {
  Response<T> r = tmpl;
  r.x = std::move(x);
  r.latency_s =
      std::chrono::duration<double>(Clock::now() - p->enqueued).count();
  // Microseconds: the histogram's power-of-two buckets would fold every
  // sub-second latency into one bucket if recorded in seconds.
  metrics::global().histogram("serve.latency_us").record(r.latency_s * 1e6);
  window_latency_us_.record(r.latency_s * 1e6);
  p->promise.set_value(Outcome{std::move(r), true, Errc::overloaded, {}});
  // Null the owning slot: the retry/error/catch-all paths skip resolved
  // requests by this marker.
  p.reset();
}

template <class T>
Response<T> SolverService<T>::prepare_entry(CacheEntry<T>& e,
                                            const sparse::CscMatrix<T>& A,
                                            std::uint64_t vhash,
                                            bool arm_recovery, bool hostile) {
  Response<T> r;
  if (!e.solver) {
    GESP_TRACE_SPAN("serve", "factor_cold");
    metrics::global().counter("serve.cache.miss").inc();
    SolverOptions so = opt_.solver;
    if (arm_recovery || hostile) so.recovery.enabled = true;
    // A hostile pattern has already burned through ladder climbs on
    // earlier requests; start at the strongest rung instead of replaying
    // the climb.
    if (hostile) so.recovery.start_rung = RecoveryRung::gepp;
    e.solver = std::make_unique<Solver<T>>(A, so);
    e.value_hash = vhash;
    e.values = A.values;
  } else if (e.value_hash == vhash && same_values(e.values, A.values)) {
    // Value hit — hash AND exact byte equality, the same two-step check
    // the pattern arrays get on acquire: the factors are current, go
    // straight to the solves.
    metrics::global().counter("serve.cache.value_hit").inc();
    r.pattern_hit = true;
    r.value_hit = true;
  } else {
    // Pattern hit: reuse the cached analysis (equilibration, permutations,
    // symbolic structure) and redo only the numeric factorization. A
    // value-hash collision (equal hashes, different bytes) lands here too
    // — degraded to a refactorize and counted, never served stale.
    if (e.value_hash == vhash)
      metrics::global().counter("serve.cache.value_hash_collisions").inc();
    GESP_TRACE_SPAN("serve", "refactorize");
    metrics::global().counter("serve.cache.pattern_hit").inc();
    if (opt_.values_delta) {
      // Near-values hit: let the solver diff the values and absorb the
      // change with the cheapest route (noop / SMW / partial); it falls
      // back to the full refactorize on its own for large drifts or an
      // escalated configuration.
      const count_t full_before = e.solver->stats().delta.full;
      e.solver->refactorize_delta(A);
      r.value_delta = e.solver->stats().delta.full == full_before;
      if (r.value_delta)
        metrics::global().counter("serve.cache.value_delta").inc();
    } else {
      e.solver->refactorize(A);
    }
    e.value_hash = vhash;
    e.values = A.values;
    r.pattern_hit = true;
  }
  return r;
}

template class SolverService<double>;
template class SolverService<Complex>;

}  // namespace gesp::serve
