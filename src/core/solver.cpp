#include "core/solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "matching/matching.hpp"
#include "ordering/amd.hpp"
#include "ordering/nested_dissection.hpp"
#include "ordering/patterns.hpp"
#include "ordering/rcm.hpp"
#include "refine/error_bounds.hpp"
#include "sparse/ops.hpp"

namespace gesp {
namespace {

/// Factorization failures the ladder may absorb; anything else (bad input,
/// broken invariant) propagates immediately.
bool recoverable(Errc c) {
  return c == Errc::numerically_singular || c == Errc::unstable;
}

std::string format_sci(const char* what, double value, double limit) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s %.3e above limit %.3e", what, value,
                limit);
  return buf;
}

/// Classify a factorization-time failure for the recovery trail. The
/// in-flight growth monitor throws Errc::unstable; everything else the
/// ladder absorbs is a structural/numerical factorization failure.
RecoveryTrigger trigger_for(Errc c) {
  return c == Errc::unstable ? RecoveryTrigger::growth_abort
                             : RecoveryTrigger::factor_failure;
}

/// Downcast the transformed matrix for the single-precision factorization:
/// same pattern, values rounded to float. Conversion happens here — after
/// scaling and permutation — so the float kernels see the equilibrated,
/// diagonally-dominant matrix, not the raw (possibly wildly scaled) input.
sparse::CscMatrix<float> to_single(const sparse::CscMatrix<double>& A) {
  sparse::CscMatrix<float> B;
  B.nrows = A.nrows;
  B.ncols = A.ncols;
  B.colptr = A.colptr;
  B.rowind = A.rowind;
  B.values.resize(A.values.size());
  for (std::size_t i = 0; i < A.values.size(); ++i)
    B.values[i] = static_cast<float>(A.values[i]);
  return B;
}

}  // namespace

const char* precision_name(Precision p) noexcept {
  switch (p) {
    case Precision::double_:
      return "double";
    case Precision::single:
      return "single";
    case Precision::mixed:
      return "mixed";
  }
  return "unknown";
}

const char* tune_policy_name(TunePolicy p) noexcept {
  switch (p) {
    case TunePolicy::off:
      return "off";
    case TunePolicy::model:
      return "model";
    case TunePolicy::probe:
      return "probe";
  }
  return "unknown";
}

void SolveStats::export_metrics(metrics::Registry& reg) const {
  reg.gauge("solver.nnz_l").set(static_cast<double>(nnz_l));
  reg.gauge("solver.nnz_u").set(static_cast<double>(nnz_u));
  reg.gauge("solver.stored_l").set(static_cast<double>(stored_l));
  reg.gauge("solver.stored_u").set(static_cast<double>(stored_u));
  reg.gauge("solver.flops").set(static_cast<double>(flops));
  reg.gauge("solver.nsup").set(static_cast<double>(nsup));
  reg.gauge("solver.pivots_replaced")
      .set(static_cast<double>(pivots_replaced));
  reg.gauge("solver.pivot_growth").set(pivot_growth);
  reg.gauge("solver.refine_iterations")
      .set(static_cast<double>(refine_iterations));
  reg.gauge("solver.berr").set(berr);
  if (ferr >= 0.0) reg.gauge("solver.ferr").set(ferr);
  if (rcond >= 0.0) reg.gauge("solver.rcond").set(rcond);
  reg.gauge("solver.recovery_attempts")
      .set(static_cast<double>(recovery.attempts.size()));
  reg.gauge("solver.recovery_final_rung")
      .set(static_cast<double>(recovery.final_rung));
  reg.gauge("solver.recovered").set(recovery.recovered ? 1.0 : 0.0);
  if (!recovery.attempts.empty())
    reg.gauge("solver.recovery_last_trigger")
        .set(static_cast<double>(recovery.attempts.back().trigger));
  reg.gauge("solver.solve_wall_seconds").set(solve_wall_seconds);
  reg.gauge("solver.solve_wall_total_seconds").set(solve_wall_total_seconds);
  reg.gauge("solver.solve_calls").set(static_cast<double>(solve_calls));
  reg.gauge("solver.precision.factor_bits")
      .set(factor_precision == Precision::single ? 32.0 : 64.0);
  reg.gauge("solver.precision.promotions")
      .set(static_cast<double>(promotions));
  reg.gauge("solver.delta.calls").set(static_cast<double>(delta.calls));
  reg.gauge("solver.delta.noop").set(static_cast<double>(delta.noop));
  reg.gauge("solver.delta.smw").set(static_cast<double>(delta.smw));
  reg.gauge("solver.delta.partial").set(static_cast<double>(delta.partial));
  reg.gauge("solver.delta.full").set(static_cast<double>(delta.full));
  reg.gauge("solver.delta.changed_entries")
      .set(static_cast<double>(delta.changed_entries));
  reg.gauge("solver.delta.dirty_supernodes")
      .set(static_cast<double>(delta.dirty_supernodes));
  reg.gauge("solver.delta.smw_rank")
      .set(static_cast<double>(delta.smw_rank));
  reg.gauge("solver.tune.policy").set(static_cast<double>(tuning.policy));
  reg.gauge("solver.tune.consulted").set(tuning.consulted ? 1.0 : 0.0);
  reg.gauge("solver.tune.applied").set(tuning.applied ? 1.0 : 0.0);
  if (tuning.consulted) {
    reg.gauge("solver.tune.block")
        .set(static_cast<double>(tuning.decision.max_block > 0
                                     ? tuning.decision.max_block
                                     : tuning.default_block));
    reg.gauge("solver.tune.default_block")
        .set(static_cast<double>(tuning.default_block));
    reg.gauge("solver.tune.num_threads")
        .set(static_cast<double>(tuning.decision.num_threads));
    reg.gauge("solver.tune.predicted_seconds")
        .set(tuning.decision.predicted_seconds);
    reg.gauge("solver.tune.predicted_default_seconds")
        .set(tuning.decision.predicted_default_seconds);
    reg.gauge("solver.tune.actual_factor_seconds")
        .set(tuning.actual_factor_seconds);
    reg.gauge("solver.tune.model_error").set(tuning.model_error);
  }
  for (const auto& [phase, seconds] : times.all())
    reg.gauge("solver.time." + phase).set(seconds);
  for (const auto& [phase, seconds] : times.all_totals())
    reg.gauge("solver.time_total." + phase).set(seconds);
}

const char* backend_name(Backend b) noexcept {
  switch (b) {
    case Backend::serial:
      return "serial";
    case Backend::threaded:
      return "threaded";
    case Backend::dist:
      return "dist";
  }
  return "unknown";
}

const char* recovery_rung_name(RecoveryRung r) noexcept {
  switch (r) {
    case RecoveryRung::gesp:
      return "gesp";
    case RecoveryRung::precision_promote:
      return "precision_promote";
    case RecoveryRung::aggressive_smw:
      return "aggressive_smw";
    case RecoveryRung::unscaled:
      return "unscaled";
    case RecoveryRung::threshold:
      return "threshold";
    case RecoveryRung::panel_rrp:
      return "panel_rrp";
    case RecoveryRung::gepp:
      return "gepp";
  }
  return "unknown";
}

const char* recovery_trigger_name(RecoveryTrigger t) noexcept {
  switch (t) {
    case RecoveryTrigger::none:
      return "none";
    case RecoveryTrigger::berr_stall:
      return "berr_stall";
    case RecoveryTrigger::pivot_growth:
      return "pivot_growth";
    case RecoveryTrigger::growth_abort:
      return "growth_abort";
    case RecoveryTrigger::factor_failure:
      return "factor_failure";
  }
  return "unknown";
}

template <class T>
Solver<T>::Solver(const sparse::CscMatrix<T>& A, const SolverOptions& opt)
    : opt_(opt) {
  GESP_CHECK(A.nrows == A.ncols, Errc::invalid_argument,
             "GESP needs a square matrix");
  GESP_CHECK(opt_.backend != Backend::dist, Errc::invalid_argument,
             "Backend::dist is driven by gesp::dist::solve or "
             "dist::DistSolver, not core::Solver");
  if (opt_.backend == Backend::serial) opt_.num_threads = 1;
  if (opt_.precision != Precision::double_) {
    GESP_CHECK((std::is_same_v<T, double>), Errc::invalid_argument,
               "single/mixed precision requires a real double solver");
    GESP_CHECK(opt_.tiny_pivot != TinyPivotOption::aggressive_smw,
               Errc::invalid_argument,
               "aggressive_smw pivoting is incompatible with single/mixed "
               "precision (the SMW correction is double-typed)");
    GESP_CHECK(!opt_.refine.compensated_residual, Errc::invalid_argument,
               "compensated residuals are pointless below double precision");
  }
  n_ = A.ncols;
  pattern_ = sparse::pattern_key(A);
  if (opt_.recovery.enabled) A_keep_ = A;
  transform(A);
  consult_tuner();
  if (!opt_.recovery.enabled) {
    factor();
    finish_tuning();
    return;
  }
  // A non-default start rung (serve's hostile fast path) skips the rungs
  // a repeat offender is known to burn through.
  rung_ = opt_.recovery.start_rung;
  factor_ladder();
  finish_tuning();
}

template <class T>
void Solver<T>::consult_tuner() {
  if (opt_.tune.policy == TunePolicy::off) return;
  GESP_CHECK(opt_.tune.tuner != nullptr, Errc::invalid_argument,
             "TunePolicy::model/probe need a tuner "
             "(construct one with tune::make_tuner)");
  GESP_TRACE_SPAN("solver", "tune");
  Timer t;
  // The decision prices the structure the request would produce, so the
  // symbolic analysis under the requested options runs first; factor()
  // reuses it unless the tuner picks a different block size.
  if (!sym_) {
    GESP_TRACE_SPAN("solver", "symbolic");
    Timer ts;
    sym_ = std::make_shared<const symbolic::SymbolicLU>(
        symbolic::analyze(At_, opt_.symbolic));
    stats_.times.add("symbolic", ts.seconds());
  }
  TuneInputs in;
  in.n = n_;
  in.nnz = At_.nnz();
  in.sym = sym_.get();
  in.opt = &opt_;
  in.max_threads = opt_.num_threads;
  in.analyze = [this](const symbolic::SymbolicOptions& so) {
    return symbolic::analyze(At_, so);
  };
  TuningReport& rep = stats_.tuning;
  rep.policy = opt_.tune.policy;
  rep.consulted = true;
  rep.default_block = opt_.symbolic.max_block;
  rep.decision = opt_.tune.tuner->decide(in);
  metrics::global().counter("solver.tune.decisions").inc();
  const TuneDecision& d = rep.decision;
  if (d.changed) {
    rep.applied = true;
    metrics::global().counter("solver.tune.applied_events").inc();
    trace::instant("solver", "tune_apply",
                   static_cast<int>(d.max_block > 0 ? d.max_block
                                                    : opt_.symbolic.max_block));
    if (d.max_block > 0 && d.max_block != opt_.symbolic.max_block) {
      opt_.symbolic.max_block = d.max_block;
      sym_.reset();  // factor() re-analyzes under the chosen block
    }
    opt_.schedule = d.schedule;
    opt_.num_threads = std::clamp(d.num_threads, 1, std::max(1, in.max_threads));
    if constexpr (std::is_same_v<T, double>) {
      // A precision override must satisfy the same constraints the
      // constructor validates for an explicit request; the tuner only
      // proposes precisions its TunerOptions allow, this re-checks.
      if (d.precision != opt_.precision &&
          opt_.tiny_pivot != TinyPivotOption::aggressive_smw &&
          !opt_.refine.compensated_residual)
        opt_.precision = d.precision;
    }
  }
  stats_.times.add("tune", t.seconds());
}

template <class T>
void Solver<T>::finish_tuning() {
  TuningReport& rep = stats_.tuning;
  if (!rep.consulted) return;
  rep.actual_factor_seconds = stats_.times.total("factor");
  if (rep.decision.predicted_seconds > 0.0 &&
      rep.actual_factor_seconds > 0.0)
    rep.model_error =
        rep.actual_factor_seconds / rep.decision.predicted_seconds;
  if (opt_.tune.policy == TunePolicy::probe)
    opt_.tune.tuner->observe(rep.decision, rep.actual_factor_seconds);
  // Construction has no solve() to export through: publish the tuning
  // gauges now so the decision is observable before the first request.
  stats_.export_metrics(metrics::global());
}

template <class T>
void Solver<T>::factor_ladder() {
  while (true) {
    try {
      apply_rung();
      return;
    } catch (const Error& e) {
      if (!recoverable(e.code())) throw;
      RecoveryAttempt a;
      a.rung = rung_;
      a.trigger = trigger_for(e.code());
      a.detail = e.what();
      stats_.recovery.attempts.push_back(std::move(a));
      if (!advance_rung()) throw;
    }
  }
}

template <class T>
bool Solver<T>::advance_rung() {
  const RecoveryPolicy& p = opt_.recovery;
  while (rung_ != RecoveryRung::gepp) {
    rung_ = static_cast<RecoveryRung>(static_cast<int>(rung_) + 1);
    switch (rung_) {
      case RecoveryRung::precision_promote:
        // Only meaningful while mixed mode still owes a double
        // factorization: either the float one is active, or it failed
        // outright at construction and double is the natural retry.
        if (p.try_precision_promote && opt_.precision == Precision::mixed &&
            !promoted_)
          return true;
        break;
      case RecoveryRung::aggressive_smw:
        // Pointless if the user already factored with aggressive pivots,
        // and invalid once an in-block strategy persisted from an earlier
        // escalation (SMW assumes the unpivoted factorization). The SMW
        // correction is double-typed, so a solver pinned to single skips it.
        if (p.try_aggressive_smw &&
            opt_.tiny_pivot != TinyPivotOption::aggressive_smw &&
            opt_.panel_pivot == dense::PanelPivot::static_ &&
            opt_.precision != Precision::single)
          return true;
        break;
      case RecoveryRung::unscaled:
        if (p.try_unscaled_refactor && opt_.mc64_scaling &&
            opt_.row_perm == RowPermOption::mc64)
          return true;
        break;
      case RecoveryRung::threshold:
        // Pointless if the user already factored with this (or a stronger)
        // in-block strategy.
        if (p.try_threshold &&
            opt_.panel_pivot == dense::PanelPivot::static_)
          return true;
        break;
      case RecoveryRung::panel_rrp:
        if (p.try_panel_rrp &&
            opt_.panel_pivot != dense::PanelPivot::panel_rrp)
          return true;
        break;
      case RecoveryRung::gepp:
        if (p.try_gepp) return true;
        break;
      case RecoveryRung::gesp:
        break;
    }
  }
  return false;
}

template <class T>
void Solver<T>::apply_rung() {
  if (rung_ != RecoveryRung::gesp) {
    trace::instant("solver", "recovery_escalate", static_cast<int>(rung_));
    metrics::global().counter("solver.recovery_escalations").inc();
    // Mixed mode never carries the float factorization past the first rung:
    // the pivoting rescues assume full-precision kernels, and a rescue that
    // still refines like float would re-trip the same berr trigger.
    // (Precision::single keeps its word and stays single on the in-block
    // rungs; gepp is double regardless.)
    if (opt_.precision == Precision::mixed) promoted_ = true;
  }
  switch (rung_) {
    case RecoveryRung::gesp:
      factor();
      break;
    case RecoveryRung::precision_promote:
      promote_to_double();
      break;
    case RecoveryRung::aggressive_smw:
      opt_.tiny_pivot = TinyPivotOption::aggressive_smw;
      factor();
      break;
    case RecoveryRung::unscaled:
      opt_.mc64_scaling = false;
      sym_.reset();  // the transformed matrix changes: full re-analysis
      transform(A_keep_);
      factor();
      break;
    case RecoveryRung::threshold:
      // In-block pivoting cannot carry the SMW correction: drop back to
      // plain tiny-pivot replacement alongside the stronger strategy.
      opt_.tiny_pivot = TinyPivotOption::replace;
      opt_.panel_pivot = dense::PanelPivot::threshold;
      factor();
      break;
    case RecoveryRung::panel_rrp:
      opt_.tiny_pivot = TinyPivotOption::replace;
      opt_.panel_pivot = dense::PanelPivot::panel_rrp;
      factor();
      break;
    case RecoveryRung::gepp: {
      GESP_TRACE_SPAN("solver", "factor_gepp");
      Timer t;
      factors_f_.reset();  // GEPP answers are double whatever came before
      stats_.factor_precision = Precision::double_;
      gepp_ = std::make_unique<numeric::GeppLU<T>>(A_keep_);
      stats_.times.add("factor", t.seconds());
      // The static factors no longer produce the answer: make SolveStats
      // describe the factorization that does (GEPP swaps, never perturbs).
      stats_.pivots_replaced = 0;
      stats_.pivot_growth = gepp_->pivot_growth();
      stats_.nnz_l = gepp_->nnz_l();
      stats_.nnz_u = gepp_->nnz_u();
      stats_.stored_l = gepp_->nnz_l();
      stats_.stored_u = gepp_->nnz_u();
      stats_.nsup = 0;
      break;
    }
  }
}

template <class T>
double Solver<T>::berr_threshold() const {
  if (opt_.recovery.max_berr > 0) return opt_.recovery.max_berr;
  // The acceptable berr follows the *requested* precision: single promises
  // float-quality answers, so sqrt(eps_f); mixed promises double-quality
  // answers (that is what promotion enforces), so sqrt(eps_d).
  const double eps =
      opt_.precision == Precision::single
          ? static_cast<double>(std::numeric_limits<float>::epsilon())
          : std::numeric_limits<double>::epsilon();
  return std::sqrt(eps);
}

template <class T>
TransformResult<T> compute_transform(const sparse::CscMatrix<T>& A,
                                     const SolverOptions& opt,
                                     PhaseTimes* times) {
  GESP_TRACE_SPAN("solver", "transform");
  const index_t n = A.ncols;
  TransformResult<T> out;
  Timer t;
  // --- step (1a): equilibration.
  out.row_scale.assign(static_cast<std::size_t>(n), 1.0);
  out.col_scale.assign(static_cast<std::size_t>(n), 1.0);
  sparse::CscMatrix<T> As = A;
  if (opt.equilibrate) {
    GESP_TRACE_SPAN("solver", "equilibrate");
    const sparse::Scaling s = sparse::equilibrate(A);
    out.row_scale = s.row;
    out.col_scale = s.col;
    As = sparse::apply_scaling(A, out.row_scale, out.col_scale);
  }
  if (times) times->add("equilibrate", t.seconds());

  // --- step (1b): permutation moving large entries onto the diagonal.
  t.reset();
  trace::Span rowperm_span("solver", "rowperm");
  std::vector<index_t> pr;
  switch (opt.row_perm) {
    case RowPermOption::none:
      pr = ordering::natural_order(n);
      break;
    case RowPermOption::mc21: {
      const auto m = matching::max_transversal(As);
      GESP_CHECK(m.size == n, Errc::structurally_singular,
                 "no zero-free diagonal exists");
      pr = matching::matching_to_row_perm(m.row_of_col);
      break;
    }
    case RowPermOption::mc64: {
      const auto m = matching::mc64_product_matching(As);
      if (opt.mc64_scaling) {
        for (index_t i = 0; i < n; ++i) out.row_scale[i] *= m.row_scale[i];
        for (index_t j = 0; j < n; ++j) out.col_scale[j] *= m.col_scale[j];
        As = sparse::apply_scaling(As, m.row_scale, m.col_scale);
      }
      pr = matching::matching_to_row_perm(m.row_of_col);
      break;
    }
    case RowPermOption::bottleneck: {
      const auto m = matching::bottleneck_matching(As);
      pr = matching::matching_to_row_perm(m.row_of_col);
      break;
    }
  }
  sparse::CscMatrix<T> Ap = sparse::permute(As, pr, {});
  if (times) times->add("rowperm", t.seconds());
  rowperm_span.end();

  // --- step (2): fill-reducing column ordering, applied symmetrically so
  // the large diagonal stays on the diagonal.
  t.reset();
  trace::Span colorder_span("solver", "colorder");
  std::vector<index_t> pc;
  switch (opt.col_order) {
    case ColOrderOption::natural:
      pc = ordering::natural_order(n);
      break;
    case ColOrderOption::amd_ata:
      pc = ordering::amd_order(ordering::ata_pattern(Ap));
      break;
    case ColOrderOption::amd_aplusat:
      pc = ordering::amd_order(ordering::aplusat_pattern(Ap));
      break;
    case ColOrderOption::rcm:
      pc = ordering::rcm_order(ordering::aplusat_pattern(Ap));
      break;
    case ColOrderOption::nested_dissection:
      pc = ordering::nested_dissection_order(ordering::aplusat_pattern(Ap));
      break;
  }
  sparse::CscMatrix<T> Ao = sparse::permute(Ap, pc, pc);
  // Etree postorder refinement (fill-neutral, makes supernodes contiguous).
  const std::vector<index_t> pe = symbolic::etree_postorder(Ao);
  if (times) times->add("colorder", t.seconds());
  colorder_span.end();

  // Combined new-from-old transforms.
  out.row_perm.resize(static_cast<std::size_t>(n));
  out.col_perm.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) out.row_perm[i] = pe[pc[pr[i]]];
  for (index_t j = 0; j < n; ++j) out.col_perm[j] = pe[pc[j]];
  // Build the transformed matrix from the ORIGINAL A with the combined
  // scalings and permutations — the exact arithmetic refactorize() uses.
  // The staged pipeline above scales twice when MC64 scaling is stacked on
  // equilibration (a·(r1c1) then ·(r2c2)), which rounds differently from
  // the combined a·((r1r2)·(c1c2)); factoring the staged matrix would make
  // a refactorize with identical values differ from the original
  // factorization in the last bits, i.e. the factors would depend on the
  // call history rather than only on (analysis, values).
  sparse::CscMatrix<T> Asc =
      sparse::apply_scaling(A, out.row_scale, out.col_scale);
  out.At = sparse::permute(Asc, out.row_perm, out.col_perm);
  return out;
}

std::size_t factor_asset_bytes(count_t stored_l, count_t stored_u,
                               count_t nnz_l, count_t nnz_u, index_t n,
                               count_t nnz, std::size_t factor_scalar,
                               std::size_t value_scalar) noexcept {
  const auto un = static_cast<std::size_t>(n);
  std::size_t b = 0;
  b += static_cast<std::size_t>(stored_l + stored_u) * factor_scalar;
  b += static_cast<std::size_t>(nnz_l + nnz_u) * sizeof(index_t);
  b += static_cast<std::size_t>(nnz) *
       (2 * value_scalar + sizeof(index_t));
  b += (un + 1) * sizeof(index_t);
  b += 6 * un * sizeof(double);  // row/col scales + permutations + workspace
  return b;
}

template <class T>
std::size_t estimate_factor_bytes(const sparse::CscMatrix<T>& A,
                                  const SolverOptions& opt) {
  const TransformResult<T> tr = compute_transform(A, opt);
  const symbolic::SymbolicLU sym = symbolic::analyze(tr.At, opt.symbolic);
  const std::size_t factor_scalar =
      opt.precision == Precision::double_ ? sizeof(T) : sizeof(float);
  return factor_asset_bytes(sym.stored_L, sym.stored_U, sym.nnz_L, sym.nnz_U,
                            A.ncols, A.nnz(), factor_scalar, sizeof(T));
}

template <class T>
void Solver<T>::transform(const sparse::CscMatrix<T>& A) {
  TransformResult<T> r = compute_transform(A, opt_, &stats_.times);
  row_scale_ = std::move(r.row_scale);
  col_scale_ = std::move(r.col_scale);
  row_perm_ = std::move(r.row_perm);
  col_perm_ = std::move(r.col_perm);
  At_ = std::move(r.At);
  // Pin ||Â|| here, NOT per factorization: the tiny-pivot threshold derived
  // from it is a static decision of the analysis, exactly like the scalings
  // and permutations. Recomputing it from each refactorize's values would
  // make clean blocks retained by a delta refactorization encode a
  // different threshold than the dirty ones — and partial would no longer
  // be bitwise identical to full for pivots falling between the two.
  at_norm_ = sparse::norm_max(At_);
}

template <class T>
numeric::NumericOptions Solver<T>::numeric_options(bool use_single) const {
  numeric::NumericOptions nopt;
  nopt.num_threads = opt_.num_threads;
  nopt.schedule = opt_.schedule;
  nopt.panel_pivot = opt_.panel_pivot;
  nopt.pivot_threshold_tau = opt_.pivot_threshold_tau;
  // In-flight growth abort: an explicit threshold wins; otherwise inherit
  // the ladder's growth limit so a blowing-up factorization fails fast
  // (and escalates at construction time) instead of completing garbage.
  if (opt_.growth_abort > 0.0)
    nopt.growth_abort = opt_.growth_abort;
  else if (opt_.growth_abort == 0.0 && opt_.recovery.enabled)
    nopt.growth_abort = opt_.recovery.max_pivot_growth;
  if (opt_.tiny_pivot != TinyPivotOption::fail) {
    // Tiny-pivot threshold at the compute precision's sqrt(eps) scale: a
    // double-scale threshold would leave pivots the float kernels cannot
    // distinguish from zero, and refinement cannot undo a division by
    // float-noise.
    const double eps =
        use_single
            ? static_cast<double>(std::numeric_limits<float>::epsilon())
            : std::numeric_limits<double>::epsilon();
    nopt.tiny_threshold = std::sqrt(eps) * at_norm_;
  }
  if (opt_.tiny_pivot == TinyPivotOption::aggressive_smw) {
    nopt.aggressive_replacement = true;
    nopt.record_replacements = true;
  }
  return nopt;
}

template <class T>
void Solver<T>::factor() {
  Timer t;
  if (!sym_) {
    GESP_TRACE_SPAN("solver", "symbolic");
    sym_ = std::make_shared<const symbolic::SymbolicLU>(
        symbolic::analyze(At_, opt_.symbolic));
    stats_.times.add("symbolic", t.seconds());
  }
  // Refresh on every factorization, not just the first analysis: a GEPP
  // recovery rung may have overwritten these with the fallback's counts.
  stats_.nnz_l = sym_->nnz_L;
  stats_.nnz_u = sym_->nnz_U;
  stats_.stored_l = sym_->stored_L;
  stats_.stored_u = sym_->stored_U;
  stats_.flops = sym_->flops;
  stats_.nsup = sym_->nsup;

  const bool use_single = std::is_same_v<T, double> &&
                          opt_.precision != Precision::double_ && !promoted_;
  const numeric::NumericOptions nopt = numeric_options(use_single);
  t.reset();
  {
    GESP_TRACE_SPAN("solver", "factor");
    smw_.reset();  // holds a reference into factors_: drop it first
    delta_smw_.reset();  // any low-rank correction is against old factors
    smw_base_values_.clear();
    stats_.delta.smw_rank = 0;
    factors_f_.reset();
    factors_.reset();
    if constexpr (std::is_same_v<T, double>) {
      if (use_single)
        factors_f_ = std::make_unique<numeric::LUFactors<float>>(
            sym_, to_single(At_), nopt);
    }
    if (!factors_f_)
      factors_ = std::make_shared<numeric::LUFactors<T>>(sym_, At_, nopt);
  }
  stats_.times.add("factor", t.seconds());
  stats_.factor_precision =
      factors_f_ ? Precision::single : Precision::double_;
  stats_.pivots_replaced = factors_f_ ? factors_f_->pivots_replaced()
                                      : factors_->pivots_replaced();
  stats_.pivot_growth =
      factors_f_ ? factors_f_->pivot_growth() : factors_->pivot_growth();
  metrics::global().counter("solver.factorizations").inc();
  if (opt_.tiny_pivot == TinyPivotOption::aggressive_smw &&
      !factors_->replacements().empty())
    smw_ = std::make_unique<refine::SmwSolver<T>>(factors_);
}

template <class T>
void Solver<T>::apply_solver(std::span<T> x) const {
  if constexpr (std::is_same_v<T, double>) {
    if (factors_f_) {
      // Round-trip through float: the triangular solves run entirely in
      // single precision; the caller (refinement) carries the residual and
      // accumulates corrections in double.
      std::vector<float> xf(x.size());
      for (std::size_t i = 0; i < x.size(); ++i)
        xf[i] = static_cast<float>(x[i]);
      factors_f_->solve(xf);
      for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<double>(xf[i]);
      return;
    }
  }
  if (delta_smw_)
    delta_smw_->solve(x);  // factors_ hold the base; correct to the target
  else if (smw_)
    smw_->solve(x);
  else
    factors_->solve(x);
}

template <class T>
void Solver<T>::apply_solver_multi(std::span<T> X, index_t nrhs) const {
  if constexpr (std::is_same_v<T, double>) {
    if (factors_f_) {
      std::vector<float> Xf(X.size());
      for (std::size_t i = 0; i < X.size(); ++i)
        Xf[i] = static_cast<float>(X[i]);
      factors_f_->solve_multi(Xf, nrhs);
      for (std::size_t i = 0; i < X.size(); ++i)
        X[i] = static_cast<double>(Xf[i]);
      return;
    }
  }
  if (delta_smw_) {
    // Unlike the tiny-pivot smw_ (whose correction refinement recovers),
    // the delta correction can be arbitrarily large — refinement against
    // uncorrected factors need not converge, so each column gets the exact
    // corrected solve.
    for (index_t c = 0; c < nrhs; ++c)
      delta_smw_->solve(X.subspan(c * static_cast<std::size_t>(n_),
                                  static_cast<std::size_t>(n_)));
    return;
  }
  factors_->solve_multi(X, nrhs);
}

template <class T>
void Solver<T>::apply_solver_transposed(std::span<T> x) const {
  if constexpr (std::is_same_v<T, double>) {
    if (factors_f_) {
      std::vector<float> xf(x.size());
      for (std::size_t i = 0; i < x.size(); ++i)
        xf[i] = static_cast<float>(x[i]);
      factors_f_->solve_transposed(xf);
      for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<double>(xf[i]);
      return;
    }
  }
  if (delta_smw_)
    delta_smw_->solve_transposed(x);
  else
    factors_->solve_transposed(x);
}

template <class T>
refine::RefineOptions Solver<T>::effective_refine(
    const refine::RefineOptions* ov) const {
  refine::RefineOptions r = ov ? *ov : opt_.refine;
  // Precision::single only promises float-quality answers: lift a
  // still-default double target up to float epsilon. mixed keeps the double
  // target — reaching it (or promoting) is the whole contract.
  if (opt_.precision == Precision::single && factors_f_ &&
      r.target_berr <= std::numeric_limits<double>::epsilon())
    r.target_berr =
        static_cast<double>(std::numeric_limits<float>::epsilon());
  return r;
}

template <class T>
bool Solver<T>::needs_promotion() const {
  return opt_.precision == Precision::mixed && factors_f_ != nullptr &&
         stats_.berr > promotion_target();
}

// The mixed contract is double-target accuracy: double-precision
// refinement over float factors normally converges to O(eps_d), so a berr
// stalled two orders of magnitude above the refinement target means the
// float factorization itself is the bottleneck — refactorize in double.
// Deliberately much tighter than berr_threshold() (the sqrt(eps)
// acceptability gate of the recovery ladder): a solve can be "acceptable"
// there yet still miss the accuracy mixed mode promises.
template <class T>
double Solver<T>::promotion_target() const {
  return 100.0 * std::max(opt_.refine.target_berr,
                          std::numeric_limits<double>::epsilon());
}

template <class T>
void Solver<T>::promote_to_double() {
  trace::instant("solver", "precision_promote");
  // Counter, distinct from the solver.precision.promotions gauge (that one
  // snapshots this solver's stats; this one counts events process-wide).
  metrics::global().counter("solver.precision.promote_events").inc();
  promoted_ = true;
  ++stats_.promotions;
  factor();
}

template <class T>
void Solver<T>::finish_solve(const Timer& wall) {
  stats_.solve_wall_seconds = wall.seconds();
  stats_.solve_wall_total_seconds += stats_.solve_wall_seconds;
  ++stats_.solve_calls;
  stats_.export_metrics(metrics::global());
}

template <class T>
void Solver<T>::solve(std::span<const T> b, std::span<T> x,
                      const refine::RefineOptions* refine_override) {
  GESP_CHECK(b.size() == static_cast<std::size_t>(n_) && x.size() == b.size(),
             Errc::invalid_argument, "solve dimension mismatch");
  // One public call == one timing epoch: get() then reports this call's
  // phase times while total() keeps the cumulative sums.
  stats_.times.new_epoch();
  metrics::global().counter("solver.solves").inc();
  GESP_TRACE_SPAN("solver", "solve_call");
  Timer wall;
  if (!opt_.recovery.enabled) {
    solve_once(b, x, refine_override);
    // Mixed mode without the ladder still keeps its promise: a berr the
    // double-accumulating refinement could not push to the double-path
    // target means the float factors are the bottleneck — refactor in
    // double and resolve. A per-call override (serve's shed mode) skips
    // refinement, so a berr judged under it would mislead the trigger.
    if (!refine_override && needs_promotion()) {
      promote_to_double();
      solve_once(b, x, nullptr);
    }
    finish_solve(wall);
    return;
  }
  RecoveryTrail& trail = stats_.recovery;
  const double threshold = berr_threshold();
  bool have_solution = false;
  while (true) {
    RecoveryAttempt a;
    a.rung = rung_;
    try {
      if (rung_ == RecoveryRung::gepp) {
        solve_gepp(b, x);
        have_solution = true;
        a.berr = stats_.berr;
        a.pivot_growth = gepp_->pivot_growth();
        a.success = a.berr <= threshold;
        if (!a.success) {
          a.trigger = RecoveryTrigger::berr_stall;
          a.detail = format_sci("berr", a.berr, threshold);
        }
      } else {
        // The ladder's berr thresholds assume refinement ran: ignore any
        // per-call override here.
        solve_once(b, x, nullptr);
        have_solution = true;
        a.berr = stats_.berr;
        a.pivot_growth = stats_.pivot_growth;
        const bool berr_ok = a.berr <= threshold;
        const bool growth_ok =
            a.pivot_growth <= opt_.recovery.max_pivot_growth;
        a.success = berr_ok && growth_ok;
        if (!berr_ok) {
          a.trigger = RecoveryTrigger::berr_stall;
          a.detail = format_sci("berr", a.berr, threshold);
        } else if (!growth_ok) {
          a.trigger = RecoveryTrigger::pivot_growth;
          a.detail = format_sci("pivot growth", a.pivot_growth,
                                opt_.recovery.max_pivot_growth);
        }
      }
    } catch (const Error& e) {
      if (!recoverable(e.code())) throw;
      a.trigger = trigger_for(e.code());
      a.detail = e.what();
    }
    const bool success = a.success;
    trail.attempts.push_back(std::move(a));
    if (success) {
      trail.final_rung = rung_;
      trail.recovered = true;
      finish_solve(wall);
      return;
    }
    // Escalate: find the next rung whose factorization succeeds.
    bool advanced = false;
    while (advance_rung()) {
      try {
        apply_rung();
        advanced = true;
        break;
      } catch (const Error& e) {
        if (!recoverable(e.code())) throw;
        RecoveryAttempt failed;
        failed.rung = rung_;
        failed.trigger = trigger_for(e.code());
        failed.detail = e.what();
        trail.attempts.push_back(std::move(failed));
      }
    }
    if (!advanced) {
      // Ladder exhausted: keep the best-effort answer if any rung produced
      // one, and let the trail say how far we got.
      trail.final_rung = rung_;
      trail.recovered = false;
      GESP_CHECK(have_solution, Errc::unstable,
                 "recovery ladder exhausted without a usable solution");
      finish_solve(wall);
      return;
    }
  }
}

template <class T>
void Solver<T>::solve_gepp(std::span<const T> b, std::span<T> x) {
  // Rung (c) bypasses the static pipeline entirely: GEPP factors the
  // original A, so b and x stay in the user's variables.
  Timer t;
  {
    GESP_TRACE_SPAN("solver", "solve_gepp");
    gepp_->solve(b, x);
  }
  stats_.times.add("solve", t.seconds());
  t.reset();
  GESP_TRACE_SPAN("solver", "refine");
  const auto rres = refine::iterative_refinement<T>(
      A_keep_, b, x,
      [this](std::span<T> v) {
        const std::vector<T> rhs(v.begin(), v.end());
        gepp_->solve(rhs, v);
      },
      opt_.refine);
  stats_.times.add("refine", t.seconds());
  stats_.refine_iterations = rres.iterations;
  stats_.berr = rres.final_berr;
  stats_.berr_history = rres.berr_history;
}

template <class T>
void Solver<T>::solve_once(std::span<const T> b, std::span<T> x,
                           const refine::RefineOptions* ov) {
  // Transform the right-hand side into the factored space.
  std::vector<T> bhat(static_cast<std::size_t>(n_));
  for (index_t i = 0; i < n_; ++i) bhat[row_perm_[i]] = b[i] * T{row_scale_[i]};
  std::vector<T> xhat = bhat;

  Timer t;
  {
    GESP_TRACE_SPAN("solver", "solve");
    apply_solver(xhat);
  }
  stats_.times.add("solve", t.seconds());

  // Time one residual evaluation (reported separately in Figure 6).
  t.reset();
  {
    GESP_TRACE_SPAN("solver", "residual");
    std::vector<T> r(static_cast<std::size_t>(n_));
    sparse::residual<T>(At_, xhat, bhat, r);
  }
  stats_.times.add("residual", t.seconds());

  // --- step (4): iterative refinement.
  t.reset();
  trace::Span refine_span("solver", "refine");
  const auto rres = refine::iterative_refinement<T>(
      At_, bhat, xhat, [this](std::span<T> v) { apply_solver(v); },
      effective_refine(ov));
  refine_span.end();
  stats_.times.add("refine", t.seconds());
  stats_.refine_iterations = rres.iterations;
  stats_.berr = rres.final_berr;
  stats_.berr_history = rres.berr_history;

  // Optional expensive diagnostics.
  if (opt_.estimate_ferr || opt_.estimate_rcond) {
    GESP_TRACE_SPAN("solver", "ferr");
    t.reset();
    refine::SolveOps<T> ops;
    ops.solve = [this](std::span<T> v) { apply_solver(v); };
    ops.solve_transposed = [this](std::span<T> v) {
      apply_solver_transposed(v);
    };
    if (opt_.estimate_ferr) {
      std::vector<T> r(static_cast<std::size_t>(n_));
      sparse::residual<T>(At_, xhat, bhat, r);
      stats_.ferr = refine::forward_error_bound<T>(At_, xhat, bhat, r, ops);
    }
    if (opt_.estimate_rcond)
      stats_.rcond = refine::rcond_estimate<T>(At_, ops);
    stats_.times.add("ferr", t.seconds());
  }

  // Back-transform.
  for (index_t j = 0; j < n_; ++j)
    x[j] = xhat[col_perm_[j]] * T{col_scale_[j]};

  // The forward error bound above is relative to the SCALED solution x̂;
  // the user's error lives in the original variables x = Dc·Pᵀ·x̂.
  // Componentwise |δx_j| <= dc_j·|δx̂| <= max(dc)·‖δx̂‖∞, so convert the
  // bound conservatively through the scalings (exact when Dc = I).
  if (stats_.ferr >= 0.0) {
    const double xhat_norm = sparse::vec_norm_inf<T>(xhat);
    const double x_norm = sparse::vec_norm_inf<T>(std::span<const T>(x));
    double dc_max = 0.0;
    for (double d : col_scale_) dc_max = std::max(dc_max, d);
    if (x_norm > 0.0)
      stats_.ferr = stats_.ferr * xhat_norm * dc_max / x_norm;
  }
}

template <class T>
void Solver<T>::solve_multi(std::span<const T> B, std::span<T> X,
                            index_t nrhs,
                            const refine::RefineOptions* refine_override) {
  GESP_CHECK(nrhs >= 1 &&
                 B.size() == static_cast<std::size_t>(n_) * nrhs &&
                 X.size() == B.size(),
             Errc::invalid_argument, "solve_multi dimension mismatch");
  stats_.times.new_epoch();
  if (opt_.recovery.enabled) {
    // Route each column through the ladder; once escalated, later columns
    // reuse the surviving rung so the blocked fast path is only lost when
    // recovery is actually in play. Each column is its own solve() call
    // for stats purposes (wall latency, epochs).
    for (index_t c = 0; c < nrhs; ++c) {
      std::span<const T> bc(B.data() + c * static_cast<std::size_t>(n_),
                            static_cast<std::size_t>(n_));
      std::span<T> xc(X.data() + c * static_cast<std::size_t>(n_),
                      static_cast<std::size_t>(n_));
      solve(bc, xc);
    }
    return;
  }
  metrics::global().counter("solver.solves").inc();
  Timer wall;
  // Transform all right-hand sides into the factored space.
  std::vector<T> Bhat(B.size());
  for (index_t c = 0; c < nrhs; ++c) {
    const T* bc = B.data() + c * static_cast<std::size_t>(n_);
    T* bh = Bhat.data() + c * static_cast<std::size_t>(n_);
    for (index_t i = 0; i < n_; ++i)
      bh[row_perm_[i]] = bc[i] * T{row_scale_[i]};
  }
  std::vector<T> Xhat;
  double worst_berr = 0.0;
  const auto run_block = [&]() {
    Xhat = Bhat;
    Timer t;
    apply_solver_multi(std::span<T>(Xhat), nrhs);
    stats_.times.add("solve", t.seconds());
    // Per-column refinement (and the SMW correction path when active).
    t.reset();
    worst_berr = 0.0;
    const refine::RefineOptions ropt = effective_refine(refine_override);
    for (index_t c = 0; c < nrhs; ++c) {
      std::span<T> xc(Xhat.data() + c * static_cast<std::size_t>(n_),
                      static_cast<std::size_t>(n_));
      std::span<const T> bc(Bhat.data() + c * static_cast<std::size_t>(n_),
                            static_cast<std::size_t>(n_));
      const auto rres = refine::iterative_refinement<T>(
          At_, bc, xc, [this](std::span<T> v) { apply_solver(v); }, ropt);
      stats_.refine_iterations = rres.iterations;
      stats_.berr = rres.final_berr;
      stats_.berr_history = rres.berr_history;
      worst_berr = std::max(worst_berr, rres.final_berr);
    }
    stats_.times.add("refine", t.seconds());
  };
  run_block();
  // Mixed-mode promotion judged against the worst column, so one hard
  // right-hand side is enough to buy every column the double factors.
  if (!refine_override && opt_.precision == Precision::mixed && factors_f_ &&
      worst_berr > promotion_target()) {
    promote_to_double();
    run_block();
  }
  for (index_t c = 0; c < nrhs; ++c) {
    const T* xh = Xhat.data() + c * static_cast<std::size_t>(n_);
    T* xc = X.data() + c * static_cast<std::size_t>(n_);
    for (index_t j = 0; j < n_; ++j)
      xc[j] = xh[col_perm_[j]] * T{col_scale_[j]};
  }
  finish_solve(wall);
}

template <class T>
void Solver<T>::refactorize(const sparse::CscMatrix<T>& A_new) {
  GESP_CHECK(A_new.nrows == n_ && A_new.ncols == n_, Errc::invalid_argument,
             "refactorize dimension mismatch");
  // Same dimensions are not enough: the scalings, permutations and symbolic
  // structure being reused below are only valid for the analysed sparsity
  // pattern. A different pattern must fail loudly, not solve wrongly.
  GESP_CHECK(sparse::pattern_key(A_new) == pattern_, Errc::invalid_argument,
             "refactorize: matrix sparsity pattern differs from the "
             "analysed pattern (same-size is not same-structure)");
  // New epoch: "factor" reports this refactorization, not the sum of every
  // factorization this Solver ever ran.
  stats_.times.new_epoch();
  GESP_TRACE_SPAN("solver", "refactorize");
  // Reuse every static decision: scalings, permutations, symbolic structure.
  sparse::CscMatrix<T> As =
      sparse::apply_scaling(A_new, row_scale_, col_scale_);
  At_ = sparse::permute(As, row_perm_, col_perm_);
  if (!opt_.recovery.enabled) {
    factor();
    return;
  }
  // New values restart the ladder (the escalated *configuration* persists:
  // an unscaled transform stays unscaled) from the policy's start rung.
  A_keep_ = A_new;
  stats_.recovery = {};
  gepp_.reset();
  rung_ = opt_.recovery.start_rung;
  factor_ladder();
}

template <class T>
void Solver<T>::refactorize_delta(const sparse::CscMatrix<T>& A_new) {
  GESP_CHECK(A_new.nrows == n_ && A_new.ncols == n_, Errc::invalid_argument,
             "refactorize_delta dimension mismatch");
  GESP_CHECK(sparse::pattern_key(A_new) == pattern_, Errc::invalid_argument,
             "refactorize_delta: matrix sparsity pattern differs from the "
             "analysed pattern (same-size is not same-structure)");
  stats_.times.new_epoch();
  GESP_TRACE_SPAN("solver", "refactorize_delta");
  ++stats_.delta.calls;
  metrics::global().counter("solver.delta.call_events").inc();
  const auto fall_back_to_full = [&] {
    ++stats_.delta.full;
    metrics::global().counter("solver.delta.full_events").inc();
    stats_.delta.smw_rank = 0;
    refactorize(A_new);
  };
  // An escalated ladder or the GEPP fallback means the static factors no
  // longer produce the answer as-is; only a full refactorize restarts that
  // machinery correctly (and identically to refactorize(A_new), which is
  // what keeps delta-vs-full comparable on hostile matrices).
  if (rung_ != RecoveryRung::gesp || gepp_ || (!factors_ && !factors_f_)) {
    fall_back_to_full();
    return;
  }

  // Same arithmetic as refactorize(): combined scaling, then permutation.
  // Both are value-independent layout transforms, so At_new's colptr and
  // rowind are identical to At_'s and the value arrays align positionally.
  sparse::CscMatrix<T> As =
      sparse::apply_scaling(A_new, row_scale_, col_scale_);
  sparse::CscMatrix<T> At_new = sparse::permute(As, row_perm_, col_perm_);
  // Diff against the values the current factors CONSUMED — with an active
  // low-rank correction that is the stashed base, not At_ (which already
  // holds the previous target). memcmp, not ==: matches the serve layer's
  // value-hash semantics (distinguishes ±0.0, treats identical NaNs equal).
  const std::vector<T>& base = delta_smw_ ? smw_base_values_ : At_.values;
  std::vector<index_t> changed_pos, changed_col;
  for (index_t j = 0; j < n_; ++j)
    for (index_t p = At_.colptr[j]; p < At_.colptr[j + 1]; ++p)
      if (std::memcmp(&base[p], &At_new.values[p], sizeof(T)) != 0) {
        changed_pos.push_back(p);
        changed_col.push_back(j);
      }
  stats_.delta.changed_entries = changed_pos.size();
  stats_.delta.dirty_supernodes = 0;

  if (changed_pos.empty()) {
    ++stats_.delta.noop;
    metrics::global().counter("solver.delta.noop_events").inc();
    if (delta_smw_) {
      // A_new IS the base the factors consumed: retire the correction.
      delta_smw_.reset();
      smw_base_values_.clear();
      stats_.delta.smw_rank = 0;
      At_ = std::move(At_new);
    }
    if (opt_.recovery.enabled) {
      A_keep_ = A_new;
      stats_.recovery = {};
    }
    return;
  }

  // Route 1: a handful of changed entries — exact SMW correction over the
  // unchanged factors, no refactorization. Excluded while the tiny-pivot
  // smw_ correction is active (stacking corrections would compound) and on
  // the float path (the correction solves in T).
  if (opt_.delta.smw_max_rank > 0 &&
      static_cast<index_t>(changed_pos.size()) <= opt_.delta.smw_max_rank &&
      factors_ && !factors_f_ && !smw_) {
    Timer t;
    std::vector<typename refine::SmwSolver<T>::Update> ups;
    ups.reserve(changed_pos.size());
    for (std::size_t k = 0; k < changed_pos.size(); ++k) {
      const index_t p = changed_pos[k];
      ups.push_back(
          {At_.rowind[p], changed_col[k], At_new.values[p] - base[p]});
    }
    try {
      auto corr = std::make_unique<refine::SmwSolver<T>>(factors_, ups);
      if (!delta_smw_) smw_base_values_ = At_.values;
      delta_smw_ = std::move(corr);
      At_ = std::move(At_new);  // refinement and residuals target A_new
      stats_.delta.smw_rank = static_cast<index_t>(ups.size());
      ++stats_.delta.smw;
      stats_.times.add("factor", t.seconds());
      metrics::global().counter("solver.delta.smw_events").inc();
      if (opt_.recovery.enabled) {
        A_keep_ = A_new;
        stats_.recovery = {};
      }
      return;
    } catch (const Error& e) {
      if (!recoverable(e.code())) throw;
      // Singular capacitance: the update is not absorbable as a low-rank
      // correction of this base. State untouched — fall through and
      // refactorize instead.
    }
  }

  // Route 2: partial re-elimination. Mark the owner supernode of every
  // changed entry dirty, close under the update dependencies, and redo only
  // those — bitwise identical to a full refactorize. The double diff is
  // computed before any float rounding, so on the float path it can only
  // over-mark (a superset of the float diff): still correct.
  const symbolic::SymbolicLU& S = *sym_;
  std::vector<char> dirty(static_cast<std::size_t>(S.nsup), 0);
  for (std::size_t k = 0; k < changed_pos.size(); ++k) {
    const index_t i = At_.rowind[changed_pos[k]];
    const index_t j = changed_col[k];
    dirty[std::min(S.col_to_sn[i], S.col_to_sn[j])] = 1;
  }
  symbolic::close_update_reachable(S, dirty);
  index_t ndirty = 0;
  for (char d : dirty) ndirty += d;
  stats_.delta.dirty_supernodes = ndirty;
  if (static_cast<double>(ndirty) >
      opt_.delta.max_dirty_fraction * static_cast<double>(S.nsup)) {
    fall_back_to_full();
    return;
  }

  Timer t;
  GESP_TRACE_SPAN("solver", "factor_partial");
  // Corrections reference the pre-update factors: drop them before the
  // in-place rewrite (smw_ is rebuilt below from the fresh replacements).
  delta_smw_.reset();
  smw_base_values_.clear();
  stats_.delta.smw_rank = 0;
  smw_.reset();
  At_ = std::move(At_new);
  try {
    if (factors_f_) {
      if constexpr (std::is_same_v<T, double>)
        factors_f_->refactorize_partial(to_single(At_), dirty,
                                        numeric_options(true));
    } else {
      factors_->refactorize_partial(At_, dirty, numeric_options(false));
    }
  } catch (const Error& e) {
    if (!opt_.recovery.enabled || !recoverable(e.code())) throw;
    // The partial step is bitwise-equal to a full factorization of the
    // same values, so a full retry at this rung would fail identically:
    // restart the ladder exactly as refactorize() would, with the failed
    // gesp attempt on record, and escalate.
    A_keep_ = A_new;
    stats_.recovery = {};
    gepp_.reset();
    RecoveryAttempt a;
    a.rung = rung_;
    a.trigger = trigger_for(e.code());
    a.detail = e.what();
    stats_.recovery.attempts.push_back(std::move(a));
    if (!advance_rung()) throw;
    factor_ladder();
    ++stats_.delta.full;
    metrics::global().counter("solver.delta.full_events").inc();
    return;
  }
  stats_.times.add("factor", t.seconds());
  // Same stats contract as factor(): the partial refactorization IS the
  // factorization now producing answers.
  stats_.nnz_l = sym_->nnz_L;
  stats_.nnz_u = sym_->nnz_U;
  stats_.stored_l = sym_->stored_L;
  stats_.stored_u = sym_->stored_U;
  stats_.flops = sym_->flops;
  stats_.nsup = sym_->nsup;
  stats_.factor_precision =
      factors_f_ ? Precision::single : Precision::double_;
  stats_.pivots_replaced = factors_f_ ? factors_f_->pivots_replaced()
                                      : factors_->pivots_replaced();
  stats_.pivot_growth =
      factors_f_ ? factors_f_->pivot_growth() : factors_->pivot_growth();
  metrics::global().counter("solver.factorizations").inc();
  if (opt_.tiny_pivot == TinyPivotOption::aggressive_smw && factors_ &&
      !factors_->replacements().empty())
    smw_ = std::make_unique<refine::SmwSolver<T>>(factors_);
  ++stats_.delta.partial;
  metrics::global().counter("solver.delta.partial_events").inc();
  if (opt_.recovery.enabled) {
    A_keep_ = A_new;
    stats_.recovery = {};
  }
}

template <class T>
std::vector<T> solve(const sparse::CscMatrix<T>& A, std::span<const T> b,
                     const SolverOptions& opt, SolveStats* stats_out) {
  Solver<T> solver(A, opt);
  std::vector<T> x(b.size());
  solver.solve(b, x);
  if (stats_out) *stats_out = solver.stats();
  return x;
}

template struct TransformResult<double>;
template struct TransformResult<Complex>;
template TransformResult<double> compute_transform(
    const sparse::CscMatrix<double>&, const SolverOptions&, PhaseTimes*);
template TransformResult<Complex> compute_transform(
    const sparse::CscMatrix<Complex>&, const SolverOptions&, PhaseTimes*);
template std::size_t estimate_factor_bytes(const sparse::CscMatrix<double>&,
                                           const SolverOptions&);
template std::size_t estimate_factor_bytes(const sparse::CscMatrix<Complex>&,
                                           const SolverOptions&);
template class Solver<double>;
template class Solver<Complex>;
template std::vector<double> solve(const sparse::CscMatrix<double>&,
                                   std::span<const double>,
                                   const SolverOptions&, SolveStats*);
template std::vector<Complex> solve(const sparse::CscMatrix<Complex>&,
                                    std::span<const Complex>,
                                    const SolverOptions&, SolveStats*);

}  // namespace gesp
