#include "core/solver.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "matching/matching.hpp"
#include "ordering/amd.hpp"
#include "ordering/nested_dissection.hpp"
#include "ordering/patterns.hpp"
#include "ordering/rcm.hpp"
#include "refine/error_bounds.hpp"
#include "sparse/ops.hpp"

namespace gesp {

template <class T>
Solver<T>::Solver(const sparse::CscMatrix<T>& A, const SolverOptions& opt)
    : opt_(opt) {
  GESP_CHECK(A.nrows == A.ncols, Errc::invalid_argument,
             "GESP needs a square matrix");
  n_ = A.ncols;
  transform(A);
  factor();
}

template <class T>
void Solver<T>::transform(const sparse::CscMatrix<T>& A) {
  Timer t;
  // --- step (1a): equilibration.
  row_scale_.assign(static_cast<std::size_t>(n_), 1.0);
  col_scale_.assign(static_cast<std::size_t>(n_), 1.0);
  sparse::CscMatrix<T> As = A;
  if (opt_.equilibrate) {
    const sparse::Scaling s = sparse::equilibrate(A);
    row_scale_ = s.row;
    col_scale_ = s.col;
    As = sparse::apply_scaling(A, row_scale_, col_scale_);
  }
  stats_.times.add("equilibrate", t.seconds());

  // --- step (1b): permutation moving large entries onto the diagonal.
  t.reset();
  std::vector<index_t> pr;
  switch (opt_.row_perm) {
    case RowPermOption::none:
      pr = ordering::natural_order(n_);
      break;
    case RowPermOption::mc21: {
      const auto m = matching::max_transversal(As);
      GESP_CHECK(m.size == n_, Errc::structurally_singular,
                 "no zero-free diagonal exists");
      pr = matching::matching_to_row_perm(m.row_of_col);
      break;
    }
    case RowPermOption::mc64: {
      const auto m = matching::mc64_product_matching(As);
      if (opt_.mc64_scaling) {
        for (index_t i = 0; i < n_; ++i) row_scale_[i] *= m.row_scale[i];
        for (index_t j = 0; j < n_; ++j) col_scale_[j] *= m.col_scale[j];
        As = sparse::apply_scaling(As, m.row_scale, m.col_scale);
      }
      pr = matching::matching_to_row_perm(m.row_of_col);
      break;
    }
    case RowPermOption::bottleneck: {
      const auto m = matching::bottleneck_matching(As);
      pr = matching::matching_to_row_perm(m.row_of_col);
      break;
    }
  }
  sparse::CscMatrix<T> Ap = sparse::permute(As, pr, {});
  stats_.times.add("rowperm", t.seconds());

  // --- step (2): fill-reducing column ordering, applied symmetrically so
  // the large diagonal stays on the diagonal.
  t.reset();
  std::vector<index_t> pc;
  switch (opt_.col_order) {
    case ColOrderOption::natural:
      pc = ordering::natural_order(n_);
      break;
    case ColOrderOption::amd_ata:
      pc = ordering::amd_order(ordering::ata_pattern(Ap));
      break;
    case ColOrderOption::amd_aplusat:
      pc = ordering::amd_order(ordering::aplusat_pattern(Ap));
      break;
    case ColOrderOption::rcm:
      pc = ordering::rcm_order(ordering::aplusat_pattern(Ap));
      break;
    case ColOrderOption::nested_dissection:
      pc = ordering::nested_dissection_order(ordering::aplusat_pattern(Ap));
      break;
  }
  sparse::CscMatrix<T> Ao = sparse::permute(Ap, pc, pc);
  // Etree postorder refinement (fill-neutral, makes supernodes contiguous).
  const std::vector<index_t> pe = symbolic::etree_postorder(Ao);
  At_ = sparse::permute(Ao, pe, pe);
  stats_.times.add("colorder", t.seconds());

  // Combined new-from-old transforms.
  row_perm_.resize(static_cast<std::size_t>(n_));
  col_perm_.resize(static_cast<std::size_t>(n_));
  for (index_t i = 0; i < n_; ++i) row_perm_[i] = pe[pc[pr[i]]];
  for (index_t j = 0; j < n_; ++j) col_perm_[j] = pe[pc[j]];
}

template <class T>
void Solver<T>::factor() {
  Timer t;
  if (!sym_) {
    sym_ = std::make_shared<const symbolic::SymbolicLU>(
        symbolic::analyze(At_, opt_.symbolic));
    stats_.times.add("symbolic", t.seconds());
    stats_.nnz_l = sym_->nnz_L;
    stats_.nnz_u = sym_->nnz_U;
    stats_.stored_l = sym_->stored_L;
    stats_.stored_u = sym_->stored_U;
    stats_.flops = sym_->flops;
    stats_.nsup = sym_->nsup;
  }

  numeric::NumericOptions nopt;
  nopt.num_threads = opt_.num_threads;
  if (opt_.tiny_pivot != TinyPivotOption::fail) {
    nopt.tiny_threshold = std::sqrt(std::numeric_limits<double>::epsilon()) *
                          sparse::norm_max(At_);
  }
  if (opt_.tiny_pivot == TinyPivotOption::aggressive_smw) {
    nopt.aggressive_replacement = true;
    nopt.record_replacements = true;
  }
  t.reset();
  smw_.reset();  // holds a reference into factors_: drop it first
  factors_ = std::make_unique<numeric::LUFactors<T>>(sym_, At_, nopt);
  stats_.times.add("factor", t.seconds());
  stats_.pivots_replaced = factors_->pivots_replaced();
  stats_.pivot_growth = factors_->pivot_growth();
  if (opt_.tiny_pivot == TinyPivotOption::aggressive_smw &&
      !factors_->replacements().empty())
    smw_ = std::make_unique<refine::SmwSolver<T>>(*factors_);
}

template <class T>
void Solver<T>::apply_solver(std::span<T> x) const {
  if (smw_)
    smw_->solve(x);
  else
    factors_->solve(x);
}

template <class T>
void Solver<T>::solve(std::span<const T> b, std::span<T> x) {
  GESP_CHECK(b.size() == static_cast<std::size_t>(n_) && x.size() == b.size(),
             Errc::invalid_argument, "solve dimension mismatch");
  // Transform the right-hand side into the factored space.
  std::vector<T> bhat(static_cast<std::size_t>(n_));
  for (index_t i = 0; i < n_; ++i) bhat[row_perm_[i]] = b[i] * T{row_scale_[i]};
  std::vector<T> xhat = bhat;

  Timer t;
  apply_solver(xhat);
  stats_.times.add("solve", t.seconds());

  // Time one residual evaluation (reported separately in Figure 6).
  t.reset();
  {
    std::vector<T> r(static_cast<std::size_t>(n_));
    sparse::residual<T>(At_, xhat, bhat, r);
  }
  stats_.times.add("residual", t.seconds());

  // --- step (4): iterative refinement.
  t.reset();
  const auto rres = refine::iterative_refinement<T>(
      At_, bhat, xhat, [this](std::span<T> v) { apply_solver(v); },
      opt_.refine);
  stats_.times.add("refine", t.seconds());
  stats_.refine_iterations = rres.iterations;
  stats_.berr = rres.final_berr;
  stats_.berr_history = rres.berr_history;

  // Optional expensive diagnostics.
  if (opt_.estimate_ferr || opt_.estimate_rcond) {
    t.reset();
    refine::SolveOps<T> ops;
    ops.solve = [this](std::span<T> v) { apply_solver(v); };
    ops.solve_transposed = [this](std::span<T> v) {
      factors_->solve_transposed(v);
    };
    if (opt_.estimate_ferr) {
      std::vector<T> r(static_cast<std::size_t>(n_));
      sparse::residual<T>(At_, xhat, bhat, r);
      stats_.ferr = refine::forward_error_bound<T>(At_, xhat, bhat, r, ops);
    }
    if (opt_.estimate_rcond)
      stats_.rcond = refine::rcond_estimate<T>(At_, ops);
    stats_.times.add("ferr", t.seconds());
  }

  // Back-transform.
  for (index_t j = 0; j < n_; ++j)
    x[j] = xhat[col_perm_[j]] * T{col_scale_[j]};

  // The forward error bound above is relative to the SCALED solution x̂;
  // the user's error lives in the original variables x = Dc·Pᵀ·x̂.
  // Componentwise |δx_j| <= dc_j·|δx̂| <= max(dc)·‖δx̂‖∞, so convert the
  // bound conservatively through the scalings (exact when Dc = I).
  if (stats_.ferr >= 0.0) {
    const double xhat_norm = sparse::vec_norm_inf<T>(xhat);
    const double x_norm = sparse::vec_norm_inf<T>(std::span<const T>(x));
    double dc_max = 0.0;
    for (double d : col_scale_) dc_max = std::max(dc_max, d);
    if (x_norm > 0.0)
      stats_.ferr = stats_.ferr * xhat_norm * dc_max / x_norm;
  }
}

template <class T>
void Solver<T>::solve_multi(std::span<const T> B, std::span<T> X,
                            index_t nrhs) {
  GESP_CHECK(nrhs >= 1 &&
                 B.size() == static_cast<std::size_t>(n_) * nrhs &&
                 X.size() == B.size(),
             Errc::invalid_argument, "solve_multi dimension mismatch");
  // Transform all right-hand sides into the factored space.
  std::vector<T> Bhat(B.size());
  for (index_t c = 0; c < nrhs; ++c) {
    const T* bc = B.data() + c * static_cast<std::size_t>(n_);
    T* bh = Bhat.data() + c * static_cast<std::size_t>(n_);
    for (index_t i = 0; i < n_; ++i)
      bh[row_perm_[i]] = bc[i] * T{row_scale_[i]};
  }
  std::vector<T> Xhat = Bhat;
  Timer t;
  factors_->solve_multi(Xhat, nrhs);
  stats_.times.add("solve", t.seconds());
  // Per-column refinement (and the SMW correction path when active).
  t.reset();
  for (index_t c = 0; c < nrhs; ++c) {
    std::span<T> xc(Xhat.data() + c * static_cast<std::size_t>(n_),
                    static_cast<std::size_t>(n_));
    std::span<const T> bc(Bhat.data() + c * static_cast<std::size_t>(n_),
                          static_cast<std::size_t>(n_));
    const auto rres = refine::iterative_refinement<T>(
        At_, bc, xc, [this](std::span<T> v) { apply_solver(v); },
        opt_.refine);
    stats_.refine_iterations = rres.iterations;
    stats_.berr = rres.final_berr;
    stats_.berr_history = rres.berr_history;
  }
  stats_.times.add("refine", t.seconds());
  for (index_t c = 0; c < nrhs; ++c) {
    const T* xh = Xhat.data() + c * static_cast<std::size_t>(n_);
    T* xc = X.data() + c * static_cast<std::size_t>(n_);
    for (index_t j = 0; j < n_; ++j)
      xc[j] = xh[col_perm_[j]] * T{col_scale_[j]};
  }
}

template <class T>
void Solver<T>::refactorize(const sparse::CscMatrix<T>& A_new) {
  GESP_CHECK(A_new.nrows == n_ && A_new.ncols == n_, Errc::invalid_argument,
             "refactorize dimension mismatch");
  // Reuse every static decision: scalings, permutations, symbolic structure.
  sparse::CscMatrix<T> As =
      sparse::apply_scaling(A_new, row_scale_, col_scale_);
  At_ = sparse::permute(As, row_perm_, col_perm_);
  factor();
}

template <class T>
std::vector<T> solve(const sparse::CscMatrix<T>& A, std::span<const T> b,
                     const SolverOptions& opt, SolveStats* stats_out) {
  Solver<T> solver(A, opt);
  std::vector<T> x(b.size());
  solver.solve(b, x);
  if (stats_out) *stats_out = solver.stats();
  return x;
}

template class Solver<double>;
template class Solver<Complex>;
template std::vector<double> solve(const sparse::CscMatrix<double>&,
                                   std::span<const double>,
                                   const SolverOptions&, SolveStats*);
template std::vector<Complex> solve(const sparse::CscMatrix<Complex>&,
                                    std::span<const Complex>,
                                    const SolverOptions&, SolveStats*);

}  // namespace gesp
