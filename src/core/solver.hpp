// The GESP driver — the algorithm of the paper's Figure 1.
//
//   (1) Row/column equilibration (DGEEQU) and a row permutation moving
//       large entries onto the diagonal (weighted bipartite matching, with
//       the dual-variable scalings), making diagonal pivoting safe.
//   (2) A fill-reducing column ordering (AMD on AᵀA by default) applied
//       symmetrically so the large diagonal survives, refined by an etree
//       postorder.
//   (3) Static-pivot supernodal LU factorization, replacing pivots smaller
//       than sqrt(eps)·||A|| (or failing, or aggressively promoting them
//       for SMW recovery — every knob the paper describes is exposed,
//       because "we provide a flexible interface so the user is able to
//       turn on or off any of these options").
//   (4) Iterative refinement until berr <= eps or stagnation.
//
// Optional diagnostics: forward error bound and condition estimate (the
// expensive extra triangular solves the paper only runs on demand).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "numeric/gepp.hpp"
#include "numeric/lu_factors.hpp"
#include "refine/refine.hpp"
#include "refine/smw.hpp"
#include "sparse/csc.hpp"
#include "sparse/equilibrate.hpp"
#include "symbolic/symbolic.hpp"

namespace gesp {

enum class RowPermOption {
  none,        ///< identity (plain no-pivoting once other options are off)
  mc21,        ///< structural maximum transversal only
  mc64,        ///< Duff–Koster product matching (the paper's choice)
  bottleneck,  ///< maximize the smallest diagonal magnitude
};

enum class ColOrderOption {
  natural,
  amd_ata,      ///< AMD on the AᵀA pattern (the paper's MMD(AᵀA) successor)
  amd_aplusat,  ///< AMD on A+Aᵀ (cheaper, for nearly symmetric structures)
  rcm,          ///< reverse Cuthill–McKee
  nested_dissection,  ///< George's nested dissection on A+Aᵀ
};

enum class TinyPivotOption {
  fail,     ///< throw on zero pivots (GENP behaviour)
  replace,  ///< set to sqrt(eps)·||A|| — the paper's step (3)
  aggressive_smw,  ///< promote to the column max and recover via SMW (§4)
};

/// Compute precision of the numeric factorization and triangular solves.
/// The analysis pipeline (equilibration, MC64, ordering, symbolic) always
/// runs in double; values convert to float only after scaling and
/// permutation, so the single-precision factorization sees the same
/// well-conditioned diagonal the double one does. Non-double precisions are
/// only meaningful for Solver<double> (Solver<Complex> rejects them).
enum class Precision {
  double_,  ///< factor and solve in double (the default)
  single,   ///< factor and solve in float; refinement targets float eps
  mixed,    ///< factor/solve in float, refine with double residual and
            ///< correction accumulation toward the double target; a berr
            ///< stalled above it promotes to a double refactorization
};

const char* precision_name(Precision p) noexcept;

/// One rung of the graceful-degradation ladder, cheapest first. The middle
/// rungs stay inside the static symbolic structure (only the numeric phase
/// is redone); gepp abandons it entirely.
enum class RecoveryRung {
  gesp,            ///< the configured GESP pipeline as-is
  precision_promote,  ///< re-factor in double after a defeated float
                      ///< factorization (Precision::mixed only) — the
                      ///< cheapest rung: same pivoting, full precision
  aggressive_smw,  ///< re-factor with SMW-corrected aggressive pivots
  unscaled,        ///< re-transform + re-factor without the mc64 scalings
                   ///< (the paper's FIDAPM11 / JPWH_991 observation)
  threshold,       ///< re-factor with in-block threshold pivoting
                   ///< (dense::PanelPivot::threshold)
  panel_rrp,       ///< re-factor with panel rank-revealing pivoting
                   ///< (dense::PanelPivot::panel_rrp)
  gepp,            ///< fall back to the GEPP reference factorization
};

const char* recovery_rung_name(RecoveryRung r) noexcept;

/// Why a ladder escalation happened (recorded per attempt).
enum class RecoveryTrigger {
  none,            ///< attempt succeeded (or not yet judged)
  berr_stall,      ///< refinement stalled above the berr threshold
  pivot_growth,    ///< completed factorization, growth above the limit
  growth_abort,    ///< in-flight growth monitor aborted the factorization
  factor_failure,  ///< factorization threw (zero pivot, singular, ...)
};

const char* recovery_trigger_name(RecoveryTrigger t) noexcept;

/// When and how solve() is allowed to escalate down the ladder. Escalation
/// triggers on: berr above max_berr after refinement, pivot growth above
/// max_pivot_growth, an in-flight growth abort, or a numerically_singular /
/// unstable factorization.
struct RecoveryPolicy {
  bool enabled = false;
  /// Acceptable backward error after refinement; <= 0 means sqrt(eps).
  double max_berr = 0.0;
  /// Pivot growth beyond this marks the static factorization unreliable.
  /// Doubles as the default in-flight growth-abort threshold (see
  /// SolverOptions::growth_abort).
  double max_pivot_growth = 1e10;
  /// Float→double promotion rung; only offered under Precision::mixed
  /// while the single-precision factorization is (or would be) active.
  bool try_precision_promote = true;
  bool try_aggressive_smw = true;   ///< rung (a)
  bool try_unscaled_refactor = true;  ///< rung (b)
  bool try_threshold = true;   ///< in-block threshold-pivot refactor rung
  bool try_panel_rrp = true;   ///< panel rank-revealing refactor rung
  bool try_gepp = true;             ///< last-resort rung
  /// First rung to try; rungs below it are skipped entirely. The serve
  /// layer points repeat offenders ("hostile" patterns) straight at a
  /// strong rung instead of re-climbing the ladder on every request.
  RecoveryRung start_rung = RecoveryRung::gesp;
};

/// One attempted rung and what came of it.
struct RecoveryAttempt {
  RecoveryRung rung = RecoveryRung::gesp;
  bool success = false;
  double berr = -1.0;          ///< berr achieved (-1: factorization failed)
  double pivot_growth = -1.0;  ///< growth observed (-1: not measured)
  /// What pushed the ladder off this rung; none on success.
  RecoveryTrigger trigger = RecoveryTrigger::none;
  std::string detail;          ///< failure reason; empty on success
};

/// The full trail of how the answer was obtained.
struct RecoveryTrail {
  std::vector<RecoveryAttempt> attempts;
  RecoveryRung final_rung = RecoveryRung::gesp;
  bool recovered = true;  ///< final answer met the policy thresholds
};

/// Which engine executes the numeric factorization + solves. The analysis
/// pipeline (equilibrate → row perm → column order → symbolic) is identical
/// and bitwise-deterministic for all three.
enum class Backend {
  serial,    ///< single-threaded in-process factorization
  threaded,  ///< shared-memory task-DAG factorization (num_threads)
  dist,      ///< 2-D block-cyclic message-passing factorization over
             ///< MiniMPI — handled by gesp::dist::solve / dist::DistSolver;
             ///< core::Solver rejects it (it cannot run inside World::run)
};

const char* backend_name(Backend b) noexcept;

/// Knobs specific to Backend::dist (plain data here so core carries no
/// dependency on the dist layer).
struct DistBackendOptions {
  int nprocs = 4;  ///< simulated ranks when pr/pc are not both set
  int pr = 0, pc = 0;  ///< explicit grid shape; 0 = near-square from nprocs
  bool pipelined = true;      ///< look-ahead schedule (Fig 8); false = strict
  bool edag_pruning = true;   ///< prune panel broadcasts via the EDAG rule
  double recv_timeout_s = 0.0;  ///< transport watchdog; 0 = no timeout
};

/// Opt-in autotuning policy (implemented in src/tune; core carries only the
/// plain-data types and the abstract hook so the dependency points
/// tune → core, never the reverse).
///
///   off    never consult a tuner — the pre-tuning code path, bitwise
///          identical to a solver built without tuning at all.
///   model  consult the tuner once, after symbolic analysis, using its
///          calibrated performance model to pick the configuration.
///   probe  model, plus the tuner refines its machine constants from the
///          measured factorization time (the first factorization is the
///          probe; later same-process decisions use the corrected model).
enum class TunePolicy { off, model, probe };

const char* tune_policy_name(TunePolicy p) noexcept;

struct SolverOptions;  // fwd — TuneInputs points back at the request

/// Everything the solver hands the tuner after symbolic analysis.
struct TuneInputs {
  index_t n = 0;
  count_t nnz = 0;
  /// Symbolic analysis under the *requested* options — supernode widths,
  /// stored nnz(L+U), flop count, etree structure.
  const symbolic::SymbolicLU* sym = nullptr;
  const SolverOptions* opt = nullptr;  ///< the requested configuration
  int max_threads = 1;  ///< thread budget the tuner may spend (the request's
                        ///< num_threads; the tuner only ever scales DOWN)
  int dist_nprocs = 0;  ///< >0: tuning a distributed factorization over this
                        ///< many ranks (grid reshapes must preserve it)
  /// Re-run symbolic analysis under candidate options — cheap and
  /// deterministic, so the tuner can price alternative block sizes against
  /// the structure they would actually produce.
  std::function<symbolic::SymbolicLU(const symbolic::SymbolicOptions&)>
      analyze;
};

/// The tuner's verdict. Fields mirror the knobs a tuner may override;
/// `changed == false` means "the request is already what I would pick" and
/// the solver applies nothing.
struct TuneDecision {
  bool changed = false;
  index_t max_block = 0;  ///< chosen symbolic.max_block (0 = keep request)
  numeric::Schedule schedule = numeric::Schedule::kAuto;
  int num_threads = 1;
  Precision precision = Precision::double_;
  int pr = 0, pc = 0;     ///< dist only: grid shape, pr·pc == dist_nprocs
  bool pipelined = true;  ///< dist only: look-ahead on (depth 1) or off
  double predicted_seconds = -1.0;          ///< model cost of the choice
  double predicted_default_seconds = -1.0;  ///< model cost of the request
  std::string note;  ///< human-readable rationale ("small flops: serial")
};

/// Abstract tuner hook. The concrete implementation (tune::Tuner) lives in
/// src/tune with the calibration machinery; core only ever calls through
/// this interface. decide() must be deterministic in its inputs — the
/// distributed driver calls it collectively on every rank and the ranks
/// must agree.
class TunerBase {
 public:
  virtual ~TunerBase() = default;
  virtual TuneDecision decide(const TuneInputs& in) = 0;
  /// TunePolicy::probe feedback: the measured factorization seconds for a
  /// decision this tuner produced. Default: ignore.
  virtual void observe(const TuneDecision& decision, double actual_seconds) {
    (void)decision;
    (void)actual_seconds;
  }
};

struct TuneOptions {
  TunePolicy policy = TunePolicy::off;
  /// Consulted when policy != off. Construct one with tune::make_tuner()
  /// (src/tune); a non-off policy with a null tuner is rejected at solver
  /// construction — core cannot build the concrete tuner itself.
  std::shared_ptr<TunerBase> tuner;
};

/// SolveStats::tuning — what the tuner chose and how well its model did.
struct TuningReport {
  TunePolicy policy = TunePolicy::off;
  bool consulted = false;  ///< a tuner ran after symbolic analysis
  bool applied = false;    ///< ...and changed at least one knob
  TuneDecision decision;   ///< the verdict (meaningful when consulted)
  index_t default_block = 0;  ///< the requested max_block, for the report
  double actual_factor_seconds = -1.0;  ///< measured cost of the choice
  /// actual / predicted factor seconds (1.0 = perfect model; -1 until both
  /// sides are known). The misprediction signal probe mode feeds back.
  double model_error = -1.0;
};

/// Routing policy for Solver::refactorize_delta(): how a same-pattern
/// value update is absorbed, cheapest route first.
struct DeltaPolicy {
  /// Value diffs of at most this many changed entries route to the
  /// Sherman–Morrison–Woodbury low-rank correction — no refactorization at
  /// all, just rank-r extra triangular solves. 0 disables the SMW route.
  index_t smw_max_rank = 16;
  /// Partial re-elimination only pays while the closed dirty set stays a
  /// fraction of the supernodes; above this share, a full refactorization
  /// is cheaper than the bookkeeping.
  double max_dirty_fraction = 0.6;
};

struct SolverOptions {
  /// Execution engine. serial/threaded run in-process via Solver;
  /// Backend::dist is driven by gesp::dist::solve (one-shot) or
  /// dist::DistSolver inside minimpi::World::run.
  Backend backend = Backend::threaded;
  DistBackendOptions dist;
  bool equilibrate = true;
  RowPermOption row_perm = RowPermOption::mc64;
  /// Apply the Dr/Dc scalings produced by the mc64 duals. The paper notes
  /// matrices (FIDAPM11, JPWH_991, ORSIRR_1) that do *better* without them.
  bool mc64_scaling = true;
  ColOrderOption col_order = ColOrderOption::amd_ata;
  TinyPivotOption tiny_pivot = TinyPivotOption::replace;
  /// Diagonal-block pivot strategy for the static factorization. The
  /// default (static_) is the paper's pipeline, bitwise identical to the
  /// pre-portfolio solver; the recovery ladder escalates through the
  /// stronger strategies on its own. Exclusive with
  /// TinyPivotOption::aggressive_smw (SMW assumes unpivoted factors).
  dense::PanelPivot panel_pivot = dense::PanelPivot::static_;
  /// Tau for PanelPivot::threshold (see dense::PivotPolicy).
  double pivot_threshold_tau = 0.1;
  /// In-flight element-growth abort threshold for the factorization:
  /// > 0 uses that value; 0 (default) inherits recovery.max_pivot_growth
  /// whenever the recovery ladder is enabled (fail fast instead of
  /// finishing a garbage factorization); < 0 disables the abort even with
  /// recovery on.
  double growth_abort = 0.0;
  /// Compute precision of the numeric phase (factorization + triangular
  /// solves). single/mixed require Solver<double>; mixed promotes to a
  /// double refactorization when double-target refinement stalls. Exclusive
  /// with TinyPivotOption::aggressive_smw (the SMW correction is
  /// double-typed) and compensated residuals (already double-double).
  Precision precision = Precision::double_;
  symbolic::SymbolicOptions symbolic;
  refine::RefineOptions refine;
  bool estimate_ferr = false;   ///< forward error bound (expensive)
  bool estimate_rcond = false;  ///< condition estimate (expensive)
  /// Shared-memory threads for the numeric factorization (bitwise
  /// identical results at any count). 1 = serial.
  int num_threads = 1;
  /// Thread schedule for the factorization: kAuto picks the task-DAG
  /// scheduler whenever num_threads > 1; kForkJoin forces the per-phase
  /// barrier baseline.
  numeric::Schedule schedule = numeric::Schedule::kAuto;
  /// Graceful-degradation ladder (keeps a copy of A while enabled).
  RecoveryPolicy recovery;
  /// Delta-refactorization routing (see refactorize_delta()).
  DeltaPolicy delta;
  /// Opt-in autotuning (see TunePolicy); off by default, and off is
  /// guaranteed bitwise identical to a build without tuning.
  TuneOptions tune;
};

/// Accounting of refactorize_delta() routing. Counters are cumulative over
/// the solver's lifetime; the per-call fields describe the last call.
struct DeltaStats {
  count_t calls = 0;    ///< refactorize_delta() invocations
  count_t noop = 0;     ///< values bitwise identical to the factored base
  count_t smw = 0;      ///< absorbed by the SMW low-rank correction
  count_t partial = 0;  ///< partial supernode re-elimination
  count_t full = 0;     ///< fell back to a full refactorization
  count_t changed_entries = 0;   ///< last call: size of the value diff
  index_t dirty_supernodes = 0;  ///< last call: closed dirty set size (0
                                 ///< when the diff never reached routing)
  index_t smw_rank = 0;  ///< rank of the ACTIVE SMW correction (0 = none)
};

struct SolveStats {
  PhaseTimes times;  ///< "equilibrate", "rowperm", "colorder", "symbolic",
                     ///< "factor", "solve", "residual", "refine", "ferr"
  count_t nnz_l = 0;      ///< exact nnz(L) incl. unit diagonal
  count_t nnz_u = 0;      ///< exact nnz(U) incl. diagonal
  count_t stored_l = 0;   ///< supernodal stored entries of L
  count_t stored_u = 0;   ///< supernodal stored entries of U
  count_t flops = 0;      ///< factorization flop count
  index_t nsup = 0;       ///< number of supernodes
  count_t pivots_replaced = 0;
  double pivot_growth = 0.0;
  int refine_iterations = 0;
  double berr = 0.0;                 ///< final componentwise backward error
  std::vector<double> berr_history;  ///< per refinement step
  double ferr = -1.0;   ///< forward error bound (-1 = not requested)
  double rcond = -1.0;  ///< reciprocal condition estimate (-1 = not requested)
  /// Monotonic wall-clock duration of the last solve()/solve_multi() call,
  /// end to end — the per-request latency a serving layer histograms.
  /// Relationship to `times`: each public call opens a new PhaseTimes
  /// epoch, so the same call's instrumented phases are times.get("solve"),
  /// times.get("refine"), ...; solve_wall_seconds covers the whole call
  /// (RHS permutation/scaling, stats export, everything between phases),
  /// hence solve_wall_seconds >= the sum of that epoch's phase times,
  /// while times.total(p) keeps the cumulative per-phase sums. With the
  /// recovery ladder enabled, solve_multi routes each column through
  /// solve(), and these fields describe the last column's call.
  double solve_wall_seconds = 0.0;
  double solve_wall_total_seconds = 0.0;  ///< summed over all solve calls
  count_t solve_calls = 0;                ///< solve()/solve_multi() calls
  /// Precision of the factors behind the current answer (single until a
  /// promotion or an escalation past the float path).
  Precision factor_precision = Precision::double_;
  /// Float→double promotion refactorizations performed (mixed mode).
  count_t promotions = 0;
  /// How the answer was obtained: every ladder rung attempted, in order.
  /// Empty attempts == recovery disabled or never triggered.
  RecoveryTrail recovery;
  /// refactorize_delta() routing accounting.
  DeltaStats delta;
  /// Autotuning decision + predicted-vs-actual cost (inert under
  /// TunePolicy::off).
  TuningReport tuning;

  /// Publish every field into `reg` as typed metrics under "solver.*"
  /// (gauges for snapshots, "solver.time.<phase>" for the last call's
  /// phase seconds, "solver.time_total.<phase>" for the cumulative sums).
  /// The solver calls this on the global registry after each solve; tools
  /// can call it on a private registry to serialize a SolveStats as JSON.
  void export_metrics(metrics::Registry& reg) const;
};

/// Result of GESP steps (1)-(2): the combined transforms and the fully
/// transformed matrix Â = P·(Dr·A·Dc)·Pᵀ ready for static-pivot
/// factorization. Shared by core::Solver and dist::DistSolver (the
/// pre-factorization pipeline is cheap, deterministic, and replicated on
/// every rank in the distributed driver).
template <class T>
struct TransformResult {
  std::vector<double> row_scale, col_scale;
  std::vector<index_t> row_perm, col_perm;  ///< new-from-old, combined
  sparse::CscMatrix<T> At;
};

/// Run equilibration, the row permutation and the column ordering exactly
/// as Solver's analysis does; `times` (optional) receives the
/// "equilibrate"/"rowperm"/"colorder" phase entries.
template <class T>
TransformResult<T> compute_transform(const sparse::CscMatrix<T>& A,
                                     const SolverOptions& opt,
                                     PhaseTimes* times = nullptr);

/// Byte footprint of one resident factorization asset: supernodal factor
/// storage (at `factor_scalar` bytes per stored entry), factor index
/// structure, a retained copy of A (values twice — original + transformed —
/// at `value_scalar` each, plus row indices and column pointers), and the
/// n-proportional scales/permutations/workspace. This is the accounting the
/// serve-layer cache charges per entry and the sharded tier budgets shards
/// by — one formula, used by both, so the budgets agree.
std::size_t factor_asset_bytes(count_t stored_l, count_t stored_u,
                               count_t nnz_l, count_t nnz_u, index_t n,
                               count_t nnz, std::size_t factor_scalar,
                               std::size_t value_scalar) noexcept;

/// Pre-factorization estimate of factor_asset_bytes for A under `opt`:
/// runs the analysis pipeline only (transform + symbolic — cheap,
/// deterministic, no numeric phase) and prices the resulting structure.
/// Exact for the serial/threaded engines, whose numeric factorization
/// fills exactly the symbolic structure. The sharded serving tier routes
/// on this: a matrix whose estimate exceeds a shard's byte budget goes to
/// the cooperative multi-rank path instead of a single owner.
template <class T>
std::size_t estimate_factor_bytes(const sparse::CscMatrix<T>& A,
                                  const SolverOptions& opt);

/// GESP solver: construction runs steps (1)-(3) (analysis + factorization);
/// solve() runs step (4) per right-hand side.
template <class T>
class Solver {
 public:
  Solver(const sparse::CscMatrix<T>& A, const SolverOptions& opt = {});

  index_t n() const { return n_; }
  const SolverOptions& options() const { return opt_; }
  const SolveStats& stats() const { return stats_; }

  /// Structural fingerprint of the analysed matrix. refactorize() accepts
  /// only matrices with this key; the serve-layer cache uses it to route
  /// requests to an existing analysis.
  const sparse::PatternKey& pattern() const { return pattern_; }

  /// Solve A·x = b with iterative refinement; updates the refinement and
  /// error fields of stats(). With recovery enabled, escalates down the
  /// ladder until the policy thresholds are met (stats().recovery records
  /// every rung attempted); an escalated configuration persists for later
  /// solves and refactorizations.
  ///
  /// `refine_override`, when non-null, replaces opt_.refine for THIS call
  /// only (the serve layer's shed mode passes max_iters = 0 to skip
  /// refinement under load). The recovery ladder ignores the override:
  /// its berr thresholds are meaningless without refinement.
  void solve(std::span<const T> b, std::span<T> x,
             const refine::RefineOptions* refine_override = nullptr);

  /// Multiple right-hand sides: B and X are n-by-nrhs column-major. The
  /// triangular solves run blocked over all columns (matrix-matrix
  /// kernels); refinement then polishes each column. stats() reflects the
  /// last column's refinement. `refine_override` as in solve().
  void solve_multi(std::span<const T> B, std::span<T> X, index_t nrhs,
                   const refine::RefineOptions* refine_override = nullptr);

  /// Re-factorize for a matrix with the SAME nonzero pattern but new values
  /// (the repeated-solve scenario the paper amortizes the ordering over).
  /// All permutations, scalings and the symbolic structure are reused —
  /// which is exactly why the pattern is validated here: a same-size matrix
  /// with a different pattern would silently reuse a wrong symbolic
  /// structure. Throws Errc::invalid_argument on a pattern() mismatch.
  void refactorize(const sparse::CscMatrix<T>& A_new);

  /// Like refactorize(), but diff the new values against the ones the
  /// current factors consumed and absorb only the change — the transient
  /// workload (circuit time stepping, Newton sweeps) where most columns are
  /// unchanged between steps. Three routes, cheapest first, governed by
  /// SolverOptions::delta:
  ///
  ///   noop     values bitwise identical: keep everything.
  ///   smw      at most delta.smw_max_rank changed entries: wrap the
  ///            existing factors in an exact Sherman–Morrison–Woodbury
  ///            correction (no refactorization).
  ///   partial  mark the supernodes owning changed entries dirty, close the
  ///            set under the update dependencies, re-eliminate only those
  ///            — bitwise identical to a full refactorize(A_new).
  ///   full     large diffs, or an escalated/GEPP configuration where the
  ///            static factors no longer produce the answer: plain
  ///            refactorize(A_new).
  ///
  /// stats().delta records the route taken; the partial route refreshes
  /// the factorization fields of stats() exactly as refactorize() does.
  void refactorize_delta(const sparse::CscMatrix<T>& A_new);

  /// The factored, fully transformed matrix Â = P·(Dr·A·Dc)·Pᵀ (testing).
  const sparse::CscMatrix<T>& transformed_matrix() const { return At_; }
  const numeric::LUFactors<T>& factors() const { return *factors_; }

  /// Precision of the factors currently producing answers. single while the
  /// float factorization is active (Precision::single, or mixed before any
  /// promotion); double_ otherwise — including after a promotion or a GEPP
  /// fallback. The serve layer uses this for cache byte accounting.
  Precision active_precision() const {
    return factors_f_ ? Precision::single : Precision::double_;
  }
  /// The single-precision factors when the float path is active, else null.
  const numeric::LUFactors<float>* factors_single() const {
    return factors_f_.get();
  }

 private:
  void transform(const sparse::CscMatrix<T>& A);
  /// TunePolicy::model/probe: run symbolic analysis under the requested
  /// options, hand the tuner the stats, apply its decision (re-analyzing if
  /// it picked another block size). No-op under TunePolicy::off.
  void consult_tuner();
  /// Record predicted-vs-actual factor cost and feed probe-mode feedback.
  void finish_tuning();
  void factor();
  /// Numeric options for the current configuration. The tiny-pivot
  /// threshold uses the ||Â|| pinned at transform() time, so delta and full
  /// refactorizations of the same analysis agree bitwise (the threshold is
  /// a static decision, like the scalings and permutations it rides with).
  numeric::NumericOptions numeric_options(bool use_single) const;
  void apply_solver(std::span<T> x) const;  ///< LU or SMW-corrected solve
  void apply_solver_multi(std::span<T> X, index_t nrhs) const;
  void apply_solver_transposed(std::span<T> x) const;
  /// Refinement options for this solve: per-precision default target_berr
  /// unless the caller pinned one explicitly.
  refine::RefineOptions effective_refine(
      const refine::RefineOptions* ov) const;
  /// Mixed mode, float factors active, berr still above the double-path
  /// target after refinement — time for the double refactorization.
  bool needs_promotion() const;
  /// Accuracy the mixed path must deliver to keep its float factors —
  /// ~100x the double refinement target (tighter than berr_threshold()).
  double promotion_target() const;
  void promote_to_double();  ///< precision_promote rung body
  // Recovery ladder plumbing.
  void factor_ladder();  ///< factor via apply_rung, escalating on throw
  bool advance_rung();   ///< move to the next policy-enabled rung
  void apply_rung();     ///< reconfigure + refactor for the current rung
  void solve_once(std::span<const T> b, std::span<T> x,
                  const refine::RefineOptions* ov);       ///< static path
  void solve_gepp(std::span<const T> b, std::span<T> x);  ///< rung (c) path
  void finish_solve(const Timer& wall);  ///< wall latency + metrics export
  double berr_threshold() const;

  SolverOptions opt_;
  SolveStats stats_;
  index_t n_ = 0;
  sparse::PatternKey pattern_;  ///< fingerprint of the analysed matrix
  // Combined transforms: x solves A·x = b via
  //   b̂[row_perm_[i]] = row_scale_[i]·b[i];  Â·x̂ = b̂;
  //   x[j] = col_scale_[j]·x̂[col_perm_[j]].
  std::vector<double> row_scale_, col_scale_;
  std::vector<index_t> row_perm_, col_perm_;  ///< new-from-old, combined
  sparse::CscMatrix<T> At_;                   ///< transformed matrix
  double at_norm_ = 0.0;  ///< ||Â||_max pinned at transform() time
  std::shared_ptr<const symbolic::SymbolicLU> sym_;
  /// shared_ptr so SMW corrections (tiny-pivot recovery, delta updates) tie
  /// the factors' lifetime to their own instead of dangling on a rebuild.
  std::shared_ptr<numeric::LUFactors<T>> factors_;
  /// Single-precision factors (Precision::single/mixed); exactly one of
  /// factors_ / factors_f_ is live outside the gepp rung.
  std::unique_ptr<numeric::LUFactors<float>> factors_f_;
  bool promoted_ = false;  ///< mixed mode fell back to double for good
  std::unique_ptr<refine::SmwSolver<T>> smw_;
  /// Active low-rank delta correction (refactorize_delta's smw route):
  /// factors_ describe the BASE values in smw_base_values_, At_ holds the
  /// TARGET values, and delta_smw_ solves the target exactly.
  std::unique_ptr<refine::SmwSolver<T>> delta_smw_;
  std::vector<T> smw_base_values_;  ///< Â values factors_ consumed
  // Recovery state (inert unless opt_.recovery.enabled).
  sparse::CscMatrix<T> A_keep_;  ///< original A for re-transform / GEPP
  std::unique_ptr<numeric::GeppLU<T>> gepp_;  ///< active at the gepp rung
  RecoveryRung rung_ = RecoveryRung::gesp;
};

/// One-shot convenience wrapper.
template <class T>
std::vector<T> solve(const sparse::CscMatrix<T>& A, std::span<const T> b,
                     const SolverOptions& opt = {},
                     SolveStats* stats_out = nullptr);

extern template struct TransformResult<double>;
extern template struct TransformResult<Complex>;
extern template TransformResult<double> compute_transform(
    const sparse::CscMatrix<double>&, const SolverOptions&, PhaseTimes*);
extern template TransformResult<Complex> compute_transform(
    const sparse::CscMatrix<Complex>&, const SolverOptions&, PhaseTimes*);
extern template std::size_t estimate_factor_bytes(
    const sparse::CscMatrix<double>&, const SolverOptions&);
extern template std::size_t estimate_factor_bytes(
    const sparse::CscMatrix<Complex>&, const SolverOptions&);
extern template class Solver<double>;
extern template class Solver<Complex>;
extern template std::vector<double> solve(const sparse::CscMatrix<double>&,
                                          std::span<const double>,
                                          const SolverOptions&, SolveStats*);
extern template std::vector<Complex> solve(const sparse::CscMatrix<Complex>&,
                                           std::span<const Complex>,
                                           const SolverOptions&, SolveStats*);

}  // namespace gesp
