// The GESP driver — the algorithm of the paper's Figure 1.
//
//   (1) Row/column equilibration (DGEEQU) and a row permutation moving
//       large entries onto the diagonal (weighted bipartite matching, with
//       the dual-variable scalings), making diagonal pivoting safe.
//   (2) A fill-reducing column ordering (AMD on AᵀA by default) applied
//       symmetrically so the large diagonal survives, refined by an etree
//       postorder.
//   (3) Static-pivot supernodal LU factorization, replacing pivots smaller
//       than sqrt(eps)·||A|| (or failing, or aggressively promoting them
//       for SMW recovery — every knob the paper describes is exposed,
//       because "we provide a flexible interface so the user is able to
//       turn on or off any of these options").
//   (4) Iterative refinement until berr <= eps or stagnation.
//
// Optional diagnostics: forward error bound and condition estimate (the
// expensive extra triangular solves the paper only runs on demand).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/timer.hpp"
#include "common/types.hpp"
#include "numeric/lu_factors.hpp"
#include "refine/refine.hpp"
#include "refine/smw.hpp"
#include "sparse/csc.hpp"
#include "sparse/equilibrate.hpp"
#include "symbolic/symbolic.hpp"

namespace gesp {

enum class RowPermOption {
  none,        ///< identity (plain no-pivoting once other options are off)
  mc21,        ///< structural maximum transversal only
  mc64,        ///< Duff–Koster product matching (the paper's choice)
  bottleneck,  ///< maximize the smallest diagonal magnitude
};

enum class ColOrderOption {
  natural,
  amd_ata,      ///< AMD on the AᵀA pattern (the paper's MMD(AᵀA) successor)
  amd_aplusat,  ///< AMD on A+Aᵀ (cheaper, for nearly symmetric structures)
  rcm,          ///< reverse Cuthill–McKee
  nested_dissection,  ///< George's nested dissection on A+Aᵀ
};

enum class TinyPivotOption {
  fail,     ///< throw on zero pivots (GENP behaviour)
  replace,  ///< set to sqrt(eps)·||A|| — the paper's step (3)
  aggressive_smw,  ///< promote to the column max and recover via SMW (§4)
};

struct SolverOptions {
  bool equilibrate = true;
  RowPermOption row_perm = RowPermOption::mc64;
  /// Apply the Dr/Dc scalings produced by the mc64 duals. The paper notes
  /// matrices (FIDAPM11, JPWH_991, ORSIRR_1) that do *better* without them.
  bool mc64_scaling = true;
  ColOrderOption col_order = ColOrderOption::amd_ata;
  TinyPivotOption tiny_pivot = TinyPivotOption::replace;
  symbolic::SymbolicOptions symbolic;
  refine::RefineOptions refine;
  bool estimate_ferr = false;   ///< forward error bound (expensive)
  bool estimate_rcond = false;  ///< condition estimate (expensive)
  /// Shared-memory threads for the numeric factorization (SuperLU_MT-style
  /// fork-join; bitwise identical results). 1 = serial.
  int num_threads = 1;
};

struct SolveStats {
  PhaseTimes times;  ///< "equilibrate", "rowperm", "colorder", "symbolic",
                     ///< "factor", "solve", "residual", "refine", "ferr"
  count_t nnz_l = 0;      ///< exact nnz(L) incl. unit diagonal
  count_t nnz_u = 0;      ///< exact nnz(U) incl. diagonal
  count_t stored_l = 0;   ///< supernodal stored entries of L
  count_t stored_u = 0;   ///< supernodal stored entries of U
  count_t flops = 0;      ///< factorization flop count
  index_t nsup = 0;       ///< number of supernodes
  count_t pivots_replaced = 0;
  double pivot_growth = 0.0;
  int refine_iterations = 0;
  double berr = 0.0;                 ///< final componentwise backward error
  std::vector<double> berr_history;  ///< per refinement step
  double ferr = -1.0;   ///< forward error bound (-1 = not requested)
  double rcond = -1.0;  ///< reciprocal condition estimate (-1 = not requested)
};

/// GESP solver: construction runs steps (1)-(3) (analysis + factorization);
/// solve() runs step (4) per right-hand side.
template <class T>
class Solver {
 public:
  Solver(const sparse::CscMatrix<T>& A, const SolverOptions& opt = {});

  index_t n() const { return n_; }
  const SolverOptions& options() const { return opt_; }
  const SolveStats& stats() const { return stats_; }

  /// Solve A·x = b with iterative refinement; updates the refinement and
  /// error fields of stats().
  void solve(std::span<const T> b, std::span<T> x);

  /// Multiple right-hand sides: B and X are n-by-nrhs column-major. The
  /// triangular solves run blocked over all columns (matrix-matrix
  /// kernels); refinement then polishes each column. stats() reflects the
  /// last column's refinement.
  void solve_multi(std::span<const T> B, std::span<T> X, index_t nrhs);

  /// Re-factorize for a matrix with the SAME nonzero pattern but new values
  /// (the repeated-solve scenario the paper amortizes the ordering over).
  /// All permutations, scalings and the symbolic structure are reused.
  void refactorize(const sparse::CscMatrix<T>& A_new);

  /// The factored, fully transformed matrix Â = P·(Dr·A·Dc)·Pᵀ (testing).
  const sparse::CscMatrix<T>& transformed_matrix() const { return At_; }
  const numeric::LUFactors<T>& factors() const { return *factors_; }

 private:
  void transform(const sparse::CscMatrix<T>& A);
  void factor();
  void apply_solver(std::span<T> x) const;  ///< LU or SMW-corrected solve

  SolverOptions opt_;
  SolveStats stats_;
  index_t n_ = 0;
  // Combined transforms: x solves A·x = b via
  //   b̂[row_perm_[i]] = row_scale_[i]·b[i];  Â·x̂ = b̂;
  //   x[j] = col_scale_[j]·x̂[col_perm_[j]].
  std::vector<double> row_scale_, col_scale_;
  std::vector<index_t> row_perm_, col_perm_;  ///< new-from-old, combined
  sparse::CscMatrix<T> At_;                   ///< transformed matrix
  std::shared_ptr<const symbolic::SymbolicLU> sym_;
  std::unique_ptr<numeric::LUFactors<T>> factors_;
  std::unique_ptr<refine::SmwSolver<T>> smw_;
};

/// One-shot convenience wrapper.
template <class T>
std::vector<T> solve(const sparse::CscMatrix<T>& A, std::span<const T> b,
                     const SolverOptions& opt = {},
                     SolveStats* stats_out = nullptr);

extern template class Solver<double>;
extern template class Solver<Complex>;
extern template std::vector<double> solve(const sparse::CscMatrix<double>&,
                                          std::span<const double>,
                                          const SolverOptions&, SolveStats*);
extern template std::vector<Complex> solve(const sparse::CscMatrix<Complex>&,
                                           std::span<const Complex>,
                                           const SolverOptions&, SolveStats*);

}  // namespace gesp
