// Symbolic factorization for Gaussian elimination with STATIC pivoting.
//
// Because GESP fixes the pivot order before numerics begin, the entire
// nonzero structure of L and U — and therefore every data structure and
// every message of the distributed factorization — can be computed here,
// once. This file implements:
//
//  1. Gilbert–Peierls reachability symbolic LU for the fixed (diagonal)
//     pivot order: exact per-column L patterns and exact nnz(L), nnz(U).
//  2. Supernode detection (consecutive columns with identical L structure),
//     relaxed amalgamation of small column-etree subtrees, and splitting of
//     oversized supernodes at `max_block` columns (the paper found 20-30
//     best on the T3E and used 24).
//  3. The nonuniform block partition of Figure 7: for every supernode pair,
//     the row list of each L block and the column list of each U block,
//     obtained by replaying the block right-looking elimination of Figure 8
//     on patterns. The numeric phase performs exactly these updates, so the
//     structure is closed by construction.
//
// The input matrix must already carry the final row/column permutations
// (large-diagonal + fill-reducing + etree postorder) and have a zero-free
// diagonal.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sparse/csc.hpp"

namespace gesp::symbolic {

struct SymbolicOptions {
  index_t relax = 8;       ///< amalgamate etree subtrees up to this size
  index_t max_block = 24;  ///< split supernodes wider than this (paper: 24)
};

/// One off-diagonal block of L in the 2-D partition.
struct LBlock {
  index_t I;                  ///< block-row index (supernode), I > K
  std::vector<index_t> rows;  ///< sorted global row indices present
};

/// One off-diagonal block of U in the 2-D partition.
struct UBlock {
  index_t J;                  ///< block-column index, J > K
  std::vector<index_t> cols;  ///< sorted global column indices present
};

/// Full result of the symbolic phase.
struct SymbolicLU {
  index_t n = 0;
  index_t nsup = 0;               ///< number of supernodes N
  std::vector<index_t> sn_start;  ///< size N+1; supernode K = cols [sn_start[K], sn_start[K+1])
  std::vector<index_t> col_to_sn; ///< size n

  /// Exact factor sizes from the per-column symbolic (diagonal included in
  /// both L and U as in the paper's nnz(L+U) convention: L unit-diagonal
  /// entries are not double counted).
  count_t nnz_L = 0;  ///< nonzeros of L including unit diagonal
  count_t nnz_U = 0;  ///< nonzeros of U including diagonal

  /// Stored sizes of the supernodal block structure (>= exact, because of
  /// relaxation and dense-block storage).
  count_t stored_L = 0;
  count_t stored_U = 0;

  /// Block structure, indexed by supernode.
  std::vector<std::vector<LBlock>> L;  ///< [K] -> blocks I > K, sorted by I
  std::vector<std::vector<UBlock>> U;  ///< [K] -> blocks J > K, sorted by J

  /// Supernodal elimination tree: parent supernode of K (-1 for roots);
  /// parent(K) = block of the first below-diagonal row of block column K.
  std::vector<index_t> sn_parent;

  /// Floating-point operation count of the numeric factorization
  /// (getrf + trsm + gemm over the block structure; real flops — a complex
  /// factorization costs 4x the multiplies).
  count_t flops = 0;

  index_t block_cols(index_t K) const { return sn_start[K + 1] - sn_start[K]; }
};

/// Run the symbolic phase on the fully permuted matrix.
/// Throws Errc::structurally_singular if a diagonal entry is structurally
/// missing (callers should have pre-pivoted via the matching phase).
template <class T>
SymbolicLU analyze(const sparse::CscMatrix<T>& A,
                   const SymbolicOptions& opt = {});

/// Convenience: compute the etree postorder refinement for a matrix that
/// already carries its fill-reducing permutation. Returns the new-from-old
/// permutation `post` to be applied symmetrically (it does not change fill
/// but makes supernodes contiguous and subtrees compact).
template <class T>
std::vector<index_t> etree_postorder(const sparse::CscMatrix<T>& A);

/// Close a per-supernode dirty set under the numeric update dependencies,
/// in place. A supernode O must be re-eliminated when any source K < O
/// with an update pair (I, J), O = min(I, J), is itself dirty: the pair
/// writes into O's storage, so O's blocks depend on K's panels. Every
/// owner of K's pairs is > K, so one ascending-K sweep computes the full
/// transitive closure. The owner set of K is exact (not the etree-ancestor
/// superset): {I in L[K] : I <= max J} ∪ {J in U[K] : J <= max I}.
void close_update_reachable(const SymbolicLU& S, std::vector<char>& dirty);

extern template SymbolicLU analyze(const sparse::CscMatrix<double>&,
                                   const SymbolicOptions&);
extern template SymbolicLU analyze(const sparse::CscMatrix<Complex>&,
                                   const SymbolicOptions&);
extern template std::vector<index_t> etree_postorder(
    const sparse::CscMatrix<double>&);
extern template std::vector<index_t> etree_postorder(
    const sparse::CscMatrix<Complex>&);

}  // namespace gesp::symbolic
