// Dense-tail analysis — the paper's §4 improvement path: "We also consider
// switching to a dense factorization, such as the one implemented in
// ScaLAPACK, when the submatrix at the lower right corner becomes
// sufficiently dense."
//
// Elimination fills the trailing submatrix progressively; past some pivot
// the remaining Schur complement is nearly full and a dense kernel beats
// the sparse machinery. This analysis walks the static block structure
// (one more thing that is knowable in advance under static pivoting!) and
// reports, for a density threshold, where the switch point falls and how
// much of the factorization's work lies beyond it.
#pragma once

#include "common/types.hpp"
#include "symbolic/symbolic.hpp"

namespace gesp::symbolic {

struct DenseTailReport {
  index_t switch_supernode = -1;  ///< first K with trailing density >= thr
  index_t tail_columns = 0;       ///< n - sn_start[switch_supernode]
  double tail_density = 0.0;      ///< stored entries / (tail size)^2
  count_t tail_flops = 0;         ///< block flops with all operands >= K
  double tail_flop_fraction = 0.0;
  /// Extra stored entries a fully dense tail would add (the cost of the
  /// switch: tail^2 minus what the sparse structure already stores there).
  count_t extra_dense_entries = 0;
};

/// Find the earliest supernode whose trailing submatrix meets `density`
/// (entries stored by the supernodal structure over tail^2). Returns
/// switch_supernode == -1 if no tail ever reaches the threshold.
DenseTailReport analyze_dense_tail(const SymbolicLU& S, double density = 0.6);

}  // namespace gesp::symbolic
