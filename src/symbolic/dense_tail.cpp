#include "symbolic/dense_tail.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gesp::symbolic {

DenseTailReport analyze_dense_tail(const SymbolicLU& S, double density) {
  GESP_CHECK(density > 0.0 && density <= 1.0, Errc::invalid_argument,
             "density threshold must be in (0, 1]");
  DenseTailReport rep;
  const index_t N = S.nsup;
  if (N == 0) return rep;

  // stored_in_tail[K]: stored entries of blocks (I, J) with I, J >= K.
  // Computed from a suffix sweep: a block (I, J) belongs to every tail
  // K <= min(I, J), so accumulate per min(I,J) and suffix-sum.
  std::vector<count_t> at_min(static_cast<std::size_t>(N), 0);
  std::vector<count_t> flops_at_min(static_cast<std::size_t>(N), 0);
  for (index_t K = 0; K < N; ++K) {
    const count_t b = S.block_cols(K);
    at_min[K] += b * b;  // diagonal block
    for (const auto& lb : S.L[K])
      at_min[K] += static_cast<count_t>(lb.rows.size()) * b;  // min = K
    for (const auto& ub : S.U[K])
      at_min[K] += b * static_cast<count_t>(ub.cols.size());
    // Flop attribution: all of iteration K's work involves operands with
    // indices >= K, so it belongs to tails up to K.
    count_t f = 2 * b * b * b / 3;
    for (const auto& lb : S.L[K]) {
      f += static_cast<count_t>(lb.rows.size()) * b * b;
      for (const auto& ub : S.U[K])
        f += 2 * static_cast<count_t>(lb.rows.size()) * b *
             static_cast<count_t>(ub.cols.size());
    }
    for (const auto& ub : S.U[K])
      f += b * b * static_cast<count_t>(ub.cols.size());
    flops_at_min[K] = f;
  }
  std::vector<count_t> tail_entries(static_cast<std::size_t>(N) + 1, 0);
  std::vector<count_t> tail_flops(static_cast<std::size_t>(N) + 1, 0);
  for (index_t K = N - 1; K >= 0; --K) {
    tail_entries[K] = tail_entries[K + 1] + at_min[K];
    tail_flops[K] = tail_flops[K + 1] + flops_at_min[K];
  }

  const count_t total_flops = tail_flops[0];
  for (index_t K = 0; K < N; ++K) {
    const double tail = static_cast<double>(S.n - S.sn_start[K]);
    const double d = static_cast<double>(tail_entries[K]) / (tail * tail);
    if (d >= density) {
      rep.switch_supernode = K;
      rep.tail_columns = S.n - S.sn_start[K];
      rep.tail_density = d;
      rep.tail_flops = tail_flops[K];
      rep.tail_flop_fraction =
          total_flops > 0
              ? static_cast<double>(tail_flops[K]) /
                    static_cast<double>(total_flops)
              : 0.0;
      rep.extra_dense_entries =
          static_cast<count_t>(tail * tail) - tail_entries[K];
      break;
    }
  }
  return rep;
}

}  // namespace gesp::symbolic
