#include "symbolic/symbolic.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "ordering/etree.hpp"

namespace gesp::symbolic {
namespace {

/// Per-column Gilbert–Peierls symbolic elimination with the diagonal pivot
/// order. Fills `Lcols[j]` with the row indices >= j of L(:,j) (diagonal
/// forced in), accumulates the exact factor counts, and records which
/// consecutive columns have nesting structures (T2 supernode joins).
///
/// Speed comes from Eisenstat–Liu symmetric pruning: once a symmetric
/// nonzero pair L(j,k) / U(k,j) exists, rows of L(:,k) beyond j are
/// reachable through column j, so the depth-first searches of later columns
/// traverse only the pruned prefix of column k. Pruning permutes the stored
/// row lists, which is why the T2 test runs inline against a saved sorted
/// copy of the previous column.
template <class T>
void gp_symbolic(const sparse::CscMatrix<T>& A,
                 std::vector<std::vector<index_t>>& Lcols, count_t& nnz_L,
                 count_t& nnz_U, std::vector<char>& t2_join) {
  const index_t n = A.ncols;
  Lcols.assign(static_cast<std::size_t>(n), {});
  t2_join.assign(static_cast<std::size_t>(n), 0);
  nnz_L = 0;
  nnz_U = n;  // U diagonal (the pivots)
  std::vector<index_t> visited(static_cast<std::size_t>(n), -1);
  std::vector<index_t> dfs_len(static_cast<std::size_t>(n), 0);
  std::vector<char> pruned(static_cast<std::size_t>(n), 0);
  std::vector<index_t> stack, pos;  // DFS state
  std::vector<index_t> lrows, ureach, prev_rows;

  for (index_t j = 0; j < n; ++j) {
    lrows.clear();
    ureach.clear();
    visited[j] = j;
    lrows.push_back(j);  // diagonal always stored (static pivot slot)

    auto touch_row = [&](index_t i) {
      // A row below the diagonal extends L(:,j); one above starts a DFS
      // through the columns already factored (the U part of column j).
      if (visited[i] == j) return;
      if (i > j) {
        visited[i] = j;
        lrows.push_back(i);
        return;
      }
      // DFS from column i over the (pruned) graph of L.
      visited[i] = j;
      stack.assign(1, i);
      pos.assign(1, 0);
      ureach.push_back(i);
      while (!stack.empty()) {
        const std::size_t lvl = stack.size() - 1;
        const index_t k = stack[lvl];
        bool descended = false;
        // Indexed access: push_back below may reallocate pos.
        index_t q = pos[lvl];
        while (q < dfs_len[k]) {
          const index_t r = Lcols[k][q];
          ++q;
          if (visited[r] == j) continue;
          visited[r] = j;
          if (r > j) {
            lrows.push_back(r);
          } else if (r < j) {
            ureach.push_back(r);
            pos[lvl] = q;
            stack.push_back(r);
            pos.push_back(0);
            descended = true;
            break;
          }
        }
        if (!descended) {
          stack.pop_back();
          pos.pop_back();
        }
      }
    };

    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p)
      touch_row(A.rowind[p]);

    std::sort(lrows.begin(), lrows.end());
    nnz_L += static_cast<count_t>(lrows.size());
    nnz_U += static_cast<count_t>(ureach.size());
    // Inline T2 test: struct(L(:,j)) == struct(L(:,j-1)) \ {j-1} ?
    if (j > 0 && prev_rows.size() == lrows.size() + 1)
      t2_join[j] = std::equal(lrows.begin(), lrows.end(),
                              prev_rows.begin() + 1);
    prev_rows = lrows;
    Lcols[j] = lrows;
    dfs_len[j] = static_cast<index_t>(lrows.size());

    // Symmetric pruning: k has U(k,j) != 0 (k in ureach); if L(j,k) is also
    // nonzero, rows of L(:,k) beyond j are reachable via column j.
    for (index_t k : ureach) {
      if (pruned[k]) continue;
      auto& col = Lcols[k];
      if (!std::binary_search(col.begin(), col.end(), j)) continue;
      const auto mid = std::partition(
          col.begin(), col.end(), [j](index_t r) { return r <= j; });
      dfs_len[k] = static_cast<index_t>(mid - col.begin());
      pruned[k] = 1;
    }
  }
}

/// Partition columns into supernodes: relaxed leaf subtrees of the column
/// etree are amalgamated wholesale; elsewhere a column joins its neighbor
/// when the L structures nest exactly (T2 supernodes, flags precomputed by
/// gp_symbolic); every supernode is split at max_block columns.
std::vector<index_t> partition_supernodes(const std::vector<char>& t2_join,
                                          std::span<const index_t> parent,
                                          const SymbolicOptions& opt) {
  const index_t n = static_cast<index_t>(t2_join.size());
  std::vector<index_t> sn_start;
  if (n == 0) {
    sn_start.push_back(0);
    return sn_start;
  }
  // Relaxed ranges: maximal subtrees of size <= relax. After an etree
  // postorder each subtree is the contiguous range [v-size[v]+1, v].
  const std::vector<index_t> size = ordering::subtree_sizes(parent);
  std::vector<index_t> range_id(static_cast<std::size_t>(n), -1);
  if (opt.relax > 1) {
    for (index_t v = 0; v < n; ++v) {
      if (size[v] > opt.relax) continue;
      const index_t p = parent[v];
      if (p != -1 && size[p] <= opt.relax) continue;  // not maximal
      for (index_t u = v - size[v] + 1; u <= v; ++u) range_id[u] = v;
    }
  }

  sn_start.push_back(0);
  index_t width = 1;
  for (index_t j = 1; j < n; ++j) {
    bool join;
    if (range_id[j] != -1 && range_id[j] == range_id[j - 1]) {
      join = true;  // inside a relaxed subtree
    } else if (range_id[j] != -1 || range_id[j - 1] != -1) {
      join = false;  // crossing a relaxed-range boundary
    } else {
      join = t2_join[j] != 0;
    }
    if (join && width < opt.max_block) {
      ++width;
    } else {
      sn_start.push_back(j);
      width = 1;
    }
  }
  sn_start.push_back(n);
  return sn_start;
}

}  // namespace

template <class T>
SymbolicLU analyze(const sparse::CscMatrix<T>& A, const SymbolicOptions& opt) {
  GESP_CHECK(A.nrows == A.ncols, Errc::invalid_argument,
             "symbolic analysis needs a square matrix");
  GESP_CHECK(opt.max_block >= 1 && opt.relax >= 0, Errc::invalid_argument,
             "bad symbolic options");
  SymbolicLU S;
  S.n = A.ncols;
  if (S.n == 0) {
    S.sn_start.push_back(0);
    return S;
  }

  // --- 1. exact per-column symbolic.
  std::vector<std::vector<index_t>> Lcols;
  std::vector<char> t2_join;
  gp_symbolic(A, Lcols, S.nnz_L, S.nnz_U, t2_join);

  // --- 2. supernode partition.
  const std::vector<index_t> parent = ordering::column_etree(A);
  S.sn_start = partition_supernodes(t2_join, parent, opt);
  S.nsup = static_cast<index_t>(S.sn_start.size()) - 1;
  S.col_to_sn.resize(static_cast<std::size_t>(S.n));
  for (index_t K = 0; K < S.nsup; ++K)
    for (index_t j = S.sn_start[K]; j < S.sn_start[K + 1]; ++j)
      S.col_to_sn[j] = K;
  Lcols.clear();
  Lcols.shrink_to_fit();

  // --- 3. block replay of the right-looking elimination (Figure 8) on
  // patterns. Lblk[K]: I -> rows of L(I,K); Ublk[K]: J -> cols of U(K,J).
  std::vector<std::map<index_t, std::vector<index_t>>> Lblk(
      static_cast<std::size_t>(S.nsup));
  std::vector<std::map<index_t, std::vector<index_t>>> Ublk(
      static_cast<std::size_t>(S.nsup));

  // Seed from A's pattern.
  for (index_t j = 0; j < S.n; ++j) {
    const index_t J = S.col_to_sn[j];
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p) {
      const index_t i = A.rowind[p];
      const index_t I = S.col_to_sn[i];
      if (I > J)
        Lblk[J][I].push_back(i);
      else if (I < J)
        Ublk[I][J].push_back(j);
      // diagonal blocks are stored full; no pattern needed
    }
  }
  auto normalize = [](std::vector<index_t>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  for (index_t K = 0; K < S.nsup; ++K) {
    for (auto& [I, rows] : Lblk[K]) normalize(rows);
    for (auto& [J, cols] : Ublk[K]) normalize(cols);
  }

  // Replay. By iteration K, Lblk[K]/Ublk[K] have received every update
  // (they only come from iterations < K), so they are final when read.
  std::vector<index_t> merged;
  auto union_into = [&](std::vector<index_t>& dst,
                        const std::vector<index_t>& src) {
    merged.clear();
    std::set_union(dst.begin(), dst.end(), src.begin(), src.end(),
                   std::back_inserter(merged));
    if (merged.size() != dst.size()) dst = merged;
  };
  for (index_t K = 0; K < S.nsup; ++K) {
    const count_t b = S.block_cols(K);
    S.flops += 2 * b * b * b / 3;
    for (const auto& [I, rows] : Lblk[K])
      S.flops += static_cast<count_t>(rows.size()) * b * b;
    for (const auto& [J, cols] : Ublk[K])
      S.flops += b * b * static_cast<count_t>(cols.size());
    for (const auto& [I, rows] : Lblk[K]) {
      for (const auto& [J, cols] : Ublk[K]) {
        S.flops += 2 * static_cast<count_t>(rows.size()) * b *
                   static_cast<count_t>(cols.size());
        if (I > J) {
          union_into(Lblk[J][I], rows);
        } else if (I < J) {
          union_into(Ublk[I][J], cols);
        }
        // I == J: the update lands in the (full) diagonal block.
      }
    }
  }

  // --- 4. freeze into the SymbolicLU block lists + stored sizes + etree.
  S.L.resize(static_cast<std::size_t>(S.nsup));
  S.U.resize(static_cast<std::size_t>(S.nsup));
  S.sn_parent.assign(static_cast<std::size_t>(S.nsup), -1);
  for (index_t K = 0; K < S.nsup; ++K) {
    const count_t b = S.block_cols(K);
    S.stored_L += b * b;  // full diagonal block (holds U's upper triangle too)
    for (auto& [I, rows] : Lblk[K]) {
      S.stored_L += static_cast<count_t>(rows.size()) * b;
      S.L[K].push_back(LBlock{I, std::move(rows)});
    }
    for (auto& [J, cols] : Ublk[K]) {
      S.stored_U += b * static_cast<count_t>(cols.size());
      S.U[K].push_back(UBlock{J, std::move(cols)});
    }
    if (!S.L[K].empty()) S.sn_parent[K] = S.L[K].front().I;
    Lblk[K].clear();
    Ublk[K].clear();
  }
  return S;
}

template <class T>
std::vector<index_t> etree_postorder(const sparse::CscMatrix<T>& A) {
  return ordering::postorder(ordering::column_etree(A));
}

void close_update_reachable(const SymbolicLU& S, std::vector<char>& dirty) {
  GESP_CHECK(dirty.size() == static_cast<std::size_t>(S.nsup),
             Errc::invalid_argument,
             "dirty set size does not match the supernode count");
  for (index_t K = 0; K < S.nsup; ++K) {
    if (!dirty[K]) continue;
    if (S.L[K].empty() || S.U[K].empty()) continue;  // no update pairs
    const index_t maxI = S.L[K].back().I;
    const index_t maxJ = S.U[K].back().J;
    // A pair (I, J) with owner I exists iff some J >= I does (I <= maxJ);
    // symmetrically for owners from the U side.
    for (const auto& blk : S.L[K])
      if (blk.I <= maxJ) dirty[blk.I] = 1;
    for (const auto& blk : S.U[K])
      if (blk.J <= maxI) dirty[blk.J] = 1;
  }
}

template SymbolicLU analyze(const sparse::CscMatrix<double>&,
                            const SymbolicOptions&);
template SymbolicLU analyze(const sparse::CscMatrix<Complex>&,
                            const SymbolicOptions&);
template std::vector<index_t> etree_postorder(const sparse::CscMatrix<double>&);
template std::vector<index_t> etree_postorder(
    const sparse::CscMatrix<Complex>&);

}  // namespace gesp::symbolic
