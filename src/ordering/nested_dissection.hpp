// Nested dissection ordering (George [17]) — the paper's step (2)
// alternative to minimum degree: "We can also use nested dissection on
// AᵀA or A+Aᵀ."
//
// Recursive BFS-based bisection: each component is split by a vertex
// separator derived from the middle level of a breadth-first level
// structure rooted at a pseudo-peripheral vertex; the two halves are
// ordered recursively and the separator is numbered last. Small subgraphs
// fall back to minimum degree (the standard hybrid).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "ordering/patterns.hpp"

namespace gesp::ordering {

struct NdOptions {
  index_t leaf_size = 64;  ///< switch to AMD below this many vertices
  int max_depth = 32;      ///< recursion guard
};

/// Returns the new-from-old permutation.
std::vector<index_t> nested_dissection_order(const SymPattern& P,
                                             const NdOptions& opt = {});

}  // namespace gesp::ordering
