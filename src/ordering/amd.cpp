#include "ordering/amd.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gesp::ordering {
namespace {

enum class Status : unsigned char {
  kVar,       ///< live variable
  kElem,      ///< live element (eliminated pivot)
  kMerged,    ///< variable merged into a supervariable representative
  kAbsorbed,  ///< element absorbed into a newer element
  kDense,     ///< dense variable, set aside and ordered last
};

/// Doubly linked degree buckets with O(1) insert/remove.
class DegreeLists {
 public:
  explicit DegreeLists(index_t n)
      : head_(static_cast<std::size_t>(n) + 1, -1),
        next_(static_cast<std::size_t>(n), -1),
        prev_(static_cast<std::size_t>(n), -1),
        deg_(static_cast<std::size_t>(n), -1) {}

  void insert(index_t v, index_t d) {
    GESP_ASSERT(deg_[v] == -1, "degree list double insert");
    deg_[v] = d;
    next_[v] = head_[d];
    prev_[v] = -1;
    if (head_[d] != -1) prev_[head_[d]] = v;
    head_[d] = v;
    min_deg_ = std::min(min_deg_, d);
  }

  void remove(index_t v) {
    const index_t d = deg_[v];
    GESP_ASSERT(d != -1, "removing variable not in degree lists");
    if (prev_[v] != -1)
      next_[prev_[v]] = next_[v];
    else
      head_[d] = next_[v];
    if (next_[v] != -1) prev_[next_[v]] = prev_[v];
    deg_[v] = -1;
  }

  bool contains(index_t v) const { return deg_[v] != -1; }

  /// Pop a variable of minimum degree; -1 when empty.
  index_t pop_min() {
    const index_t n = static_cast<index_t>(head_.size()) - 1;
    while (min_deg_ <= n && head_[min_deg_] == -1) ++min_deg_;
    if (min_deg_ > n) return -1;
    const index_t v = head_[min_deg_];
    remove(v);
    return v;
  }

 private:
  std::vector<index_t> head_, next_, prev_, deg_;
  index_t min_deg_ = 0;
};

}  // namespace

std::vector<index_t> amd_order(const SymPattern& P, const AmdOptions& opt) {
  const index_t n = P.n;
  std::vector<index_t> perm(static_cast<std::size_t>(n), -1);
  if (n == 0) return perm;

  std::vector<Status> status(static_cast<std::size_t>(n), Status::kVar);
  std::vector<std::vector<index_t>> var_adj(static_cast<std::size_t>(n));
  std::vector<std::vector<index_t>> elem_adj(static_cast<std::size_t>(n));
  std::vector<std::vector<index_t>> elem_vars(static_cast<std::size_t>(n));
  std::vector<std::vector<index_t>> merged_children(
      static_cast<std::size_t>(n));
  std::vector<index_t> weight(static_cast<std::size_t>(n), 1);
  std::vector<index_t> elem_size(static_cast<std::size_t>(n), 0);
  std::vector<index_t> degree(static_cast<std::size_t>(n), 0);
  std::vector<index_t> stamp(static_cast<std::size_t>(n), -1);   // Lp set
  std::vector<index_t> estamp(static_cast<std::size_t>(n), -1);  // w[] pass
  std::vector<index_t> w(static_cast<std::size_t>(n), 0);
  std::vector<index_t> dense_vars, elim_order;
  DegreeLists lists(n);

  const index_t dense_cutoff =
      opt.dense_factor > 0
          ? std::max<index_t>(
                16, static_cast<index_t>(opt.dense_factor * std::sqrt(n)))
          : n;  // never triggers when disabled

  for (index_t v = 0; v < n; ++v) {
    var_adj[v].assign(P.ind.begin() + P.ptr[v], P.ind.begin() + P.ptr[v + 1]);
    degree[v] = static_cast<index_t>(var_adj[v].size());
    if (degree[v] >= dense_cutoff) {
      status[v] = Status::kDense;
      dense_vars.push_back(v);
    } else {
      lists.insert(v, degree[v]);
    }
  }

  std::vector<index_t> lp;  // the pivot's element list Lp
  index_t epoch = 0;

  while (true) {
    const index_t p = lists.pop_min();
    if (p == -1) break;
    GESP_ASSERT(status[p] == Status::kVar, "pivot is not a live variable");
    ++epoch;

    // --- Build Lp = (Ap ∪ ∪_{e∈Ep} Le) \ {p}, weighted size in deg_lp.
    lp.clear();
    stamp[p] = epoch;
    index_t deg_lp = 0;
    auto collect = [&](index_t v) {
      if (stamp[v] == epoch) return;
      if (status[v] != Status::kVar) return;  // stale: merged/dense/element
      stamp[v] = epoch;
      lp.push_back(v);
      deg_lp += weight[v];
    };
    for (index_t v : var_adj[p]) collect(v);
    for (index_t e : elem_adj[p]) {
      if (status[e] != Status::kElem) continue;  // already absorbed
      for (index_t v : elem_vars[e]) collect(v);
      status[e] = Status::kAbsorbed;
      elem_vars[e].clear();
      elem_vars[e].shrink_to_fit();
    }

    // --- p becomes the new element.
    status[p] = Status::kElem;
    elem_vars[p] = lp;
    elem_size[p] = deg_lp;
    var_adj[p].clear();
    var_adj[p].shrink_to_fit();
    elem_adj[p].clear();
    elim_order.push_back(p);

    // --- Prune adjacency of every j in Lp: variables covered by the new
    // element and dead elements drop out; element p is appended.
    for (index_t j : lp) {
      auto& aj = var_adj[j];
      aj.erase(std::remove_if(aj.begin(), aj.end(),
                              [&](index_t v) {
                                return stamp[v] == epoch || v == p ||
                                       status[v] == Status::kMerged ||
                                       status[v] == Status::kElem ||
                                       status[v] == Status::kAbsorbed;
                              }),
               aj.end());
      auto& ej = elem_adj[j];
      ej.erase(std::remove_if(ej.begin(), ej.end(),
                              [&](index_t e) {
                                return status[e] != Status::kElem || e == p;
                              }),
               ej.end());
      ej.push_back(p);
    }

    // --- Pass 1: w[e] = |Le \ Lp| (weighted) for elements adjacent to Lp.
    for (index_t j : lp) {
      for (index_t e : elem_adj[j]) {
        if (e == p) continue;
        if (estamp[e] != epoch) {
          estamp[e] = epoch;
          w[e] = elem_size[e];
        }
        w[e] -= weight[j];
      }
    }

    // --- Aggressive absorption: elements entirely inside Lp die now.
    if (opt.aggressive_absorption) {
      for (index_t j : lp) {
        auto& ej = elem_adj[j];
        ej.erase(std::remove_if(ej.begin(), ej.end(),
                                [&](index_t e) {
                                  if (e == p) return false;
                                  if (estamp[e] == epoch && w[e] <= 0) {
                                    status[e] = Status::kAbsorbed;
                                    elem_vars[e].clear();
                                    return true;
                                  }
                                  return status[e] != Status::kElem;
                                }),
                 ej.end());
      }
    }

    // --- Pass 2: approximate external degrees and supervariable hashes.
    // Group Lp by hash to find indistinguishable variables cheaply.
    std::vector<std::pair<std::uint64_t, index_t>> hashes;
    hashes.reserve(lp.size());
    for (index_t j : lp) {
      index_t d = deg_lp - weight[j];
      std::uint64_t h = 0;
      for (index_t v : var_adj[j]) {
        d += weight[v];
        h += static_cast<std::uint64_t>(v) * 0x9E3779B97F4A7C15ull;
      }
      for (index_t e : elem_adj[j]) {
        if (e != p && estamp[e] == epoch) d += w[e];
        h += static_cast<std::uint64_t>(e) * 0xC2B2AE3D27D4EB4Full;
      }
      degree[j] = std::min(
          {static_cast<index_t>(n - 1), degree[j] + deg_lp - weight[j], d});
      degree[j] = std::max<index_t>(degree[j], 0);
      hashes.emplace_back(h, j);
    }
    std::sort(hashes.begin(), hashes.end());

    // --- Merge indistinguishable variables (identical pruned adjacency).
    auto same_adjacency = [&](index_t a, index_t b) {
      if (var_adj[a].size() != var_adj[b].size() ||
          elem_adj[a].size() != elem_adj[b].size())
        return false;
      auto sorted = [](std::vector<index_t>& v) { std::sort(v.begin(), v.end()); };
      sorted(var_adj[a]);
      sorted(var_adj[b]);
      sorted(elem_adj[a]);
      sorted(elem_adj[b]);
      return var_adj[a] == var_adj[b] && elem_adj[a] == elem_adj[b];
    };
    for (std::size_t s = 0; s < hashes.size();) {
      std::size_t t = s + 1;
      while (t < hashes.size() && hashes[t].first == hashes[s].first) ++t;
      for (std::size_t a = s; a < t; ++a) {
        const index_t ja = hashes[a].second;
        if (status[ja] != Status::kVar) continue;
        for (std::size_t b = a + 1; b < t; ++b) {
          const index_t jb = hashes[b].second;
          if (status[jb] != Status::kVar) continue;
          if (!same_adjacency(ja, jb)) continue;
          // jb joins supervariable ja.
          status[jb] = Status::kMerged;
          weight[ja] += weight[jb];
          weight[jb] = 0;
          merged_children[ja].push_back(jb);
          if (lists.contains(jb)) lists.remove(jb);
          var_adj[jb].clear();
          var_adj[jb].shrink_to_fit();
          elem_adj[jb].clear();
        }
      }
      s = t;
    }

    // --- Refresh degree lists.
    for (index_t j : lp) {
      if (status[j] != Status::kVar) continue;
      if (lists.contains(j)) lists.remove(j);
      lists.insert(j, std::min<index_t>(degree[j], n - 1));
    }
  }

  // --- Emit the permutation: eliminated supervariables in order, expanding
  // merged members (DFS), dense variables last.
  index_t counter = 0;
  std::vector<index_t> dfs;
  auto emit = [&](index_t root) {
    dfs.assign(1, root);
    while (!dfs.empty()) {
      const index_t v = dfs.back();
      dfs.pop_back();
      perm[v] = counter++;
      for (index_t c : merged_children[v]) dfs.push_back(c);
    }
  };
  for (index_t p : elim_order) emit(p);
  for (index_t v : dense_vars) emit(v);
  GESP_CHECK(counter == n, Errc::internal, "AMD lost variables");
  return perm;
}

std::vector<index_t> natural_order(index_t n) {
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) perm[i] = i;
  return perm;
}

}  // namespace gesp::ordering
