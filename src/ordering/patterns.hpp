// Symmetric pattern builders for fill-reducing ordering — GESP step (2).
//
// The paper orders columns by minimum degree on the structure of AᵀA (the
// right pattern for LU with column ordering, since it bounds the fill for
// any row pivoting); A+Aᵀ is the cheaper alternative used when the matrix
// is nearly structurally symmetric.
#pragma once

#include "common/types.hpp"
#include "sparse/csc.hpp"

namespace gesp::ordering {

/// Pattern-only symmetric graph: CSC structure without values, zero-free
/// diagonal excluded (orderings never care about the diagonal).
struct SymPattern {
  index_t n = 0;
  std::vector<index_t> ptr;  ///< size n+1
  std::vector<index_t> ind;  ///< neighbor lists, sorted, no self-loops

  count_t nnz() const { return static_cast<count_t>(ind.size()); }
};

/// Pattern of AᵀA (diagonal dropped).
template <class T>
SymPattern ata_pattern(const sparse::CscMatrix<T>& A);

/// Pattern of A + Aᵀ (diagonal dropped).
template <class T>
SymPattern aplusat_pattern(const sparse::CscMatrix<T>& A);

extern template SymPattern ata_pattern(const sparse::CscMatrix<double>&);
extern template SymPattern ata_pattern(const sparse::CscMatrix<Complex>&);
extern template SymPattern aplusat_pattern(const sparse::CscMatrix<double>&);
extern template SymPattern aplusat_pattern(const sparse::CscMatrix<Complex>&);

}  // namespace gesp::ordering
