#include "ordering/nested_dissection.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "ordering/amd.hpp"

namespace gesp::ordering {
namespace {

/// Subgraph working set: `verts` lists the global vertex ids; adjacency is
/// read from the full pattern and filtered through `in_set` stamps.
struct Workspace {
  const SymPattern* P = nullptr;
  std::vector<index_t> stamp;   ///< stamp[v] == tag: v is in current set
  std::vector<index_t> level;   ///< BFS levels
  std::vector<index_t> queue;
  index_t tag = 0;
};

/// BFS from `root` within the stamped set; fills ws.level for reached
/// vertices (others keep -1) and returns the reached vertices in BFS order.
std::vector<index_t> bfs(Workspace& ws, index_t root,
                         const std::vector<index_t>& verts) {
  const SymPattern& P = *ws.P;
  for (index_t v : verts) ws.level[v] = -1;
  std::vector<index_t> order;
  order.reserve(verts.size());
  order.push_back(root);
  ws.level[root] = 0;
  for (std::size_t h = 0; h < order.size(); ++h) {
    const index_t v = order[h];
    for (index_t p = P.ptr[v]; p < P.ptr[v + 1]; ++p) {
      const index_t u = P.ind[p];
      if (ws.stamp[u] != ws.tag || ws.level[u] != -1) continue;
      ws.level[u] = ws.level[v] + 1;
      order.push_back(u);
    }
  }
  return order;
}

void dissect(Workspace& ws, std::vector<index_t> verts, int depth,
             const NdOptions& opt, std::vector<index_t>& out_order) {
  const SymPattern& P = *ws.P;
  // Stamp the current set.
  const index_t tag = ++ws.tag;
  ws.tag = tag;
  for (index_t v : verts) ws.stamp[v] = tag;

  if (static_cast<index_t>(verts.size()) <= opt.leaf_size ||
      depth >= opt.max_depth) {
    // Fall back to minimum degree on the subgraph.
    std::vector<index_t> local_id(verts.size());
    SymPattern sub;
    sub.n = static_cast<index_t>(verts.size());
    sub.ptr.assign(verts.size() + 1, 0);
    // Map global -> local (reuse level as scratch).
    for (std::size_t i = 0; i < verts.size(); ++i)
      ws.level[verts[i]] = static_cast<index_t>(i);
    for (std::size_t i = 0; i < verts.size(); ++i) {
      const index_t v = verts[i];
      for (index_t p = P.ptr[v]; p < P.ptr[v + 1]; ++p)
        if (ws.stamp[P.ind[p]] == tag) sub.ptr[i + 1]++;
    }
    for (std::size_t i = 0; i < verts.size(); ++i) sub.ptr[i + 1] += sub.ptr[i];
    sub.ind.resize(static_cast<std::size_t>(sub.ptr.back()));
    std::vector<index_t> fill(sub.ptr.begin(), sub.ptr.end() - 1);
    for (std::size_t i = 0; i < verts.size(); ++i) {
      const index_t v = verts[i];
      for (index_t p = P.ptr[v]; p < P.ptr[v + 1]; ++p) {
        const index_t u = P.ind[p];
        if (ws.stamp[u] == tag) sub.ind[fill[i]++] = ws.level[u];
      }
    }
    const auto perm = amd_order(sub);
    // perm[local] = position within the leaf; emit in position order.
    local_id.assign(verts.size(), 0);
    for (std::size_t i = 0; i < verts.size(); ++i)
      local_id[perm[i]] = static_cast<index_t>(i);
    for (std::size_t k = 0; k < verts.size(); ++k)
      out_order.push_back(verts[local_id[k]]);
    return;
  }

  // Pseudo-peripheral root, then a BFS level structure.
  index_t root = verts.front();
  std::vector<index_t> order = bfs(ws, root, verts);
  for (int it = 0; it < 4; ++it) {
    const index_t far = order.back();
    if (far == root) break;
    root = far;
    order = bfs(ws, root, verts);
  }
  if (order.size() < verts.size()) {
    // Disconnected: recurse on the reached component, then the rest.
    std::vector<index_t> rest;
    for (index_t v : verts)
      if (ws.level[v] == -1) rest.push_back(v);
    dissect(ws, order, depth, opt, out_order);
    dissect(ws, std::move(rest), depth, opt, out_order);
    return;
  }

  // Separator = vertices of the middle BFS level; halves = below / above.
  // Save levels locally: recursive calls reuse ws.level as scratch.
  const index_t depth_levels = ws.level[order.back()];
  if (depth_levels < 2) {
    // No useful split (clique-like): order directly via AMD fallback.
    NdOptions leaf = opt;
    leaf.leaf_size = static_cast<index_t>(verts.size());
    dissect(ws, std::move(verts), opt.max_depth, leaf, out_order);
    return;
  }
  const index_t mid = depth_levels / 2;
  std::vector<index_t> below, above, separator;
  for (index_t v : order) {
    const index_t l = ws.level[v];
    if (l < mid)
      below.push_back(v);
    else if (l > mid)
      above.push_back(v);
    else
      separator.push_back(v);
  }
  dissect(ws, std::move(below), depth + 1, opt, out_order);
  dissect(ws, std::move(above), depth + 1, opt, out_order);
  out_order.insert(out_order.end(), separator.begin(), separator.end());
}

}  // namespace

std::vector<index_t> nested_dissection_order(const SymPattern& P,
                                             const NdOptions& opt) {
  GESP_CHECK(opt.leaf_size >= 1 && opt.max_depth >= 1, Errc::invalid_argument,
             "bad nested dissection options");
  const index_t n = P.n;
  std::vector<index_t> perm(static_cast<std::size_t>(n), -1);
  if (n == 0) return perm;
  Workspace ws;
  ws.P = &P;
  ws.stamp.assign(static_cast<std::size_t>(n), -1);
  ws.level.assign(static_cast<std::size_t>(n), -1);
  std::vector<index_t> all(static_cast<std::size_t>(n));
  std::iota(all.begin(), all.end(), 0);
  std::vector<index_t> order;
  order.reserve(all.size());
  dissect(ws, std::move(all), 0, opt, order);
  GESP_CHECK(static_cast<index_t>(order.size()) == n, Errc::internal,
             "nested dissection lost vertices");
  for (index_t k = 0; k < n; ++k) perm[order[k]] = k;
  return perm;
}

}  // namespace gesp::ordering
