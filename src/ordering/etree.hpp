// Elimination trees and postordering (Liu).
//
// The column elimination tree of A — the etree of AᵀA, computed without
// forming AᵀA — drives supernode relaxation and the distributed scheduling;
// the symmetric etree is used when working on A+Aᵀ patterns.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "ordering/patterns.hpp"
#include "sparse/csc.hpp"

namespace gesp::ordering {

/// Column elimination tree of A (etree of AᵀA). parent[j] == -1 for roots.
template <class T>
std::vector<index_t> column_etree(const sparse::CscMatrix<T>& A);

/// Elimination tree of a symmetric pattern. parent[j] == -1 for roots.
std::vector<index_t> sym_etree(const SymPattern& P);

/// Postorder of a forest given by parent pointers: returns the new-from-old
/// permutation `post` such that post[v] is v's position in a postorder
/// traversal (children before parents, and every subtree contiguous).
std::vector<index_t> postorder(std::span<const index_t> parent);

/// Number of descendants (including self) per node of the forest.
std::vector<index_t> subtree_sizes(std::span<const index_t> parent);

/// Height of each node above its deepest leaf (leaves have height 0).
std::vector<index_t> tree_heights(std::span<const index_t> parent);

extern template std::vector<index_t> column_etree(
    const sparse::CscMatrix<double>&);
extern template std::vector<index_t> column_etree(
    const sparse::CscMatrix<Complex>&);

}  // namespace gesp::ordering
