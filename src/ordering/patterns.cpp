#include "ordering/patterns.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gesp::ordering {

template <class T>
SymPattern ata_pattern(const sparse::CscMatrix<T>& A) {
  const index_t n = A.ncols;
  // Row-wise access to A: for each row r, the set of columns it touches.
  sparse::CsrMatrix<T> R = sparse::to_csr(A);
  SymPattern P;
  P.n = n;
  P.ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> stamp(static_cast<std::size_t>(n), -1);
  // Column j of AᵀA touches every column j2 sharing a row with column j.
  // Two passes: count, then fill.
  for (int pass = 0; pass < 2; ++pass) {
    std::fill(stamp.begin(), stamp.end(), -1);
    for (index_t j = 0; j < n; ++j) {
      index_t cnt = 0;
      for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p) {
        const index_t r = A.rowind[p];
        for (index_t q = R.rowptr[r]; q < R.rowptr[r + 1]; ++q) {
          const index_t j2 = R.colind[q];
          if (j2 == j || stamp[j2] == j) continue;
          stamp[j2] = j;
          if (pass == 1) P.ind[P.ptr[j] + cnt] = j2;
          ++cnt;
        }
      }
      if (pass == 0) P.ptr[j + 1] = cnt;
    }
    if (pass == 0) {
      for (index_t j = 0; j < n; ++j) P.ptr[j + 1] += P.ptr[j];
      P.ind.resize(static_cast<std::size_t>(P.ptr[n]));
    }
  }
  for (index_t j = 0; j < n; ++j)
    std::sort(P.ind.begin() + P.ptr[j], P.ind.begin() + P.ptr[j + 1]);
  return P;
}

template <class T>
SymPattern aplusat_pattern(const sparse::CscMatrix<T>& A) {
  GESP_CHECK(A.nrows == A.ncols, Errc::invalid_argument,
             "aplusat_pattern needs a square matrix");
  const index_t n = A.ncols;
  const sparse::CscMatrix<T> At = sparse::transpose(A);
  SymPattern P;
  P.n = n;
  P.ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  // Merge column j of A with column j of Aᵀ, dropping the diagonal.
  auto merged_count = [&](index_t j) {
    index_t cnt = 0;
    index_t p = A.colptr[j], pe = A.colptr[j + 1];
    index_t q = At.colptr[j], qe = At.colptr[j + 1];
    while (p < pe || q < qe) {
      index_t i;
      if (q >= qe || (p < pe && A.rowind[p] < At.rowind[q]))
        i = A.rowind[p++];
      else if (p >= pe || At.rowind[q] < A.rowind[p])
        i = At.rowind[q++];
      else {
        i = A.rowind[p];
        ++p;
        ++q;
      }
      if (i != j) ++cnt;
    }
    return cnt;
  };
  for (index_t j = 0; j < n; ++j) P.ptr[j + 1] = P.ptr[j] + merged_count(j);
  P.ind.resize(static_cast<std::size_t>(P.ptr[n]));
  for (index_t j = 0; j < n; ++j) {
    index_t out = P.ptr[j];
    index_t p = A.colptr[j], pe = A.colptr[j + 1];
    index_t q = At.colptr[j], qe = At.colptr[j + 1];
    while (p < pe || q < qe) {
      index_t i;
      if (q >= qe || (p < pe && A.rowind[p] < At.rowind[q]))
        i = A.rowind[p++];
      else if (p >= pe || At.rowind[q] < A.rowind[p])
        i = At.rowind[q++];
      else {
        i = A.rowind[p];
        ++p;
        ++q;
      }
      if (i != j) P.ind[out++] = i;
    }
  }
  return P;
}

template SymPattern ata_pattern(const sparse::CscMatrix<double>&);
template SymPattern ata_pattern(const sparse::CscMatrix<Complex>&);
template SymPattern aplusat_pattern(const sparse::CscMatrix<double>&);
template SymPattern aplusat_pattern(const sparse::CscMatrix<Complex>&);

}  // namespace gesp::ordering
