#include "ordering/etree.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gesp::ordering {
namespace {

/// Union-find with path halving, as used by the etree algorithms.
class DisjointSets {
 public:
  explicit DisjointSets(index_t n) : parent_(static_cast<std::size_t>(n)) {
    for (index_t i = 0; i < n; ++i) parent_[i] = i;
  }
  index_t find(index_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  /// Link set of x under set of y; returns the new representative.
  index_t link(index_t x, index_t y) {
    parent_[x] = y;
    return y;
  }

 private:
  std::vector<index_t> parent_;
};

}  // namespace

template <class T>
std::vector<index_t> column_etree(const sparse::CscMatrix<T>& A) {
  const index_t n = A.ncols;
  // firstcol[r]: the representative column for row r (the first column whose
  // pattern contains r); rows are funneled through it so the etree of AᵀA
  // emerges without forming AᵀA (Gilbert–Ng–Peyton).
  std::vector<index_t> firstcol(static_cast<std::size_t>(A.nrows), -1);
  std::vector<index_t> parent(static_cast<std::size_t>(n), -1);
  std::vector<index_t> root(static_cast<std::size_t>(n));
  DisjointSets sets(n);
  for (index_t col = 0; col < n; ++col) {
    index_t cset = sets.find(col);
    root[cset] = col;
    for (index_t p = A.colptr[col]; p < A.colptr[col + 1]; ++p) {
      const index_t r = A.rowind[p];
      index_t rep = firstcol[r];
      if (rep == -1) {
        firstcol[r] = col;
        continue;
      }
      const index_t rset = sets.find(rep);
      const index_t rroot = root[rset];
      if (rroot != col) {
        parent[rroot] = col;
        cset = sets.link(rset, cset);
        root[cset] = col;
      }
    }
  }
  return parent;
}

std::vector<index_t> sym_etree(const SymPattern& P) {
  const index_t n = P.n;
  std::vector<index_t> parent(static_cast<std::size_t>(n), -1);
  std::vector<index_t> ancestor(static_cast<std::size_t>(n), -1);
  for (index_t j = 0; j < n; ++j) {
    for (index_t p = P.ptr[j]; p < P.ptr[j + 1]; ++p) {
      index_t i = P.ind[p];
      if (i >= j) continue;
      // Walk up from i to the current root, compressing to j.
      while (ancestor[i] != -1 && ancestor[i] != j) {
        const index_t next = ancestor[i];
        ancestor[i] = j;
        i = next;
      }
      if (ancestor[i] == -1) {
        ancestor[i] = j;
        parent[i] = j;
      }
    }
  }
  return parent;
}

std::vector<index_t> postorder(std::span<const index_t> parent) {
  const index_t n = static_cast<index_t>(parent.size());
  // Build first-child / next-sibling, with children visited in index order.
  std::vector<index_t> first_child(static_cast<std::size_t>(n), -1);
  std::vector<index_t> next_sibling(static_cast<std::size_t>(n), -1);
  for (index_t v = n - 1; v >= 0; --v) {
    const index_t p = parent[v];
    if (p == -1) continue;
    GESP_CHECK(p >= 0 && p < n, Errc::invalid_argument, "bad parent pointer");
    next_sibling[v] = first_child[p];
    first_child[p] = v;
  }
  std::vector<index_t> post(static_cast<std::size_t>(n), -1);
  std::vector<index_t> stack;
  index_t counter = 0;
  for (index_t r = 0; r < n; ++r) {
    if (parent[r] != -1) continue;  // roots only
    stack.push_back(r);
    while (!stack.empty()) {
      const index_t v = stack.back();
      const index_t c = first_child[v];
      if (c != -1) {
        stack.push_back(c);
        first_child[v] = next_sibling[c];  // consume child
      } else {
        post[v] = counter++;
        stack.pop_back();
      }
    }
  }
  GESP_CHECK(counter == n, Errc::invalid_argument,
             "parent array is not a forest (cycle?)");
  return post;
}

std::vector<index_t> subtree_sizes(std::span<const index_t> parent) {
  const index_t n = static_cast<index_t>(parent.size());
  std::vector<index_t> size(static_cast<std::size_t>(n), 1);
  // Children precede parents in a postorder; but parent arrays from etrees
  // already satisfy child < parent, so one ascending pass suffices.
  for (index_t v = 0; v < n; ++v) {
    const index_t p = parent[v];
    if (p != -1) {
      GESP_CHECK(p > v, Errc::invalid_argument,
                 "subtree_sizes needs child < parent ordering");
      size[p] += size[v];
    }
  }
  return size;
}

std::vector<index_t> tree_heights(std::span<const index_t> parent) {
  const index_t n = static_cast<index_t>(parent.size());
  std::vector<index_t> height(static_cast<std::size_t>(n), 0);
  for (index_t v = 0; v < n; ++v) {
    const index_t p = parent[v];
    if (p != -1) height[p] = std::max(height[p], height[v] + 1);
  }
  return height;
}

template std::vector<index_t> column_etree(const sparse::CscMatrix<double>&);
template std::vector<index_t> column_etree(const sparse::CscMatrix<Complex>&);

}  // namespace gesp::ordering
