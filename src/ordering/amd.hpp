// Approximate minimum degree ordering on a symmetric pattern.
//
// Implements the quotient-graph AMD algorithm (Amestoy–Davis–Duff): element
// absorption, supervariable merging by adjacency hashing, the two-pass
// |Le \ Lp| approximate external degree, aggressive absorption, and
// set-aside handling of dense rows. The paper uses Liu's multiple minimum
// degree [23] on AᵀA and announces a move to approximate minimum degree [6]
// — this is that replacement.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "ordering/patterns.hpp"

namespace gesp::ordering {

struct AmdOptions {
  /// Variables with initial degree >= max(16, dense_factor*sqrt(n)) are set
  /// aside and ordered last (standard AMD dense-row handling). <= 0 disables.
  double dense_factor = 10.0;
  bool aggressive_absorption = true;
};

/// Returns the new-from-old permutation: column j of the input should become
/// column perm[j] of the reordered matrix.
std::vector<index_t> amd_order(const SymPattern& P, const AmdOptions& opt = {});

/// Natural (identity) ordering, for baselines.
std::vector<index_t> natural_order(index_t n);

}  // namespace gesp::ordering
