#include "ordering/rcm.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gesp::ordering {
namespace {

/// BFS from `start` over unvisited nodes; returns the vertices level by
/// level (appended to `out`) and the last level's first vertex (an
/// eccentric vertex).
index_t bfs_levels(const SymPattern& P, index_t start,
                   const std::vector<char>& visited,
                   std::vector<index_t>& out, index_t* depth_out) {
  std::vector<char> seen = visited;
  out.clear();
  out.push_back(start);
  seen[start] = 1;
  std::size_t level_begin = 0;
  index_t depth = 0;
  index_t last_level_first = start;
  while (level_begin < out.size()) {
    const std::size_t level_end = out.size();
    last_level_first = out[level_begin];
    for (std::size_t k = level_begin; k < level_end; ++k) {
      const index_t v = out[k];
      for (index_t p = P.ptr[v]; p < P.ptr[v + 1]; ++p) {
        const index_t u = P.ind[p];
        if (!seen[u]) {
          seen[u] = 1;
          out.push_back(u);
        }
      }
    }
    if (out.size() > level_end) ++depth;
    level_begin = level_end;
  }
  if (depth_out) *depth_out = depth;
  return last_level_first;
}

}  // namespace

std::vector<index_t> rcm_order(const SymPattern& P) {
  const index_t n = P.n;
  std::vector<index_t> order;  // old indices in Cuthill–McKee order
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<index_t> scratch;

  auto degree = [&](index_t v) { return P.ptr[v + 1] - P.ptr[v]; };

  for (index_t s = 0; s < n; ++s) {
    if (visited[s]) continue;
    // Pseudo-peripheral start: alternate BFS until the eccentricity stops
    // growing (George–Liu heuristic).
    index_t start = s, depth = -1;
    for (int it = 0; it < 8; ++it) {
      index_t d = 0;
      const index_t far = bfs_levels(P, start, visited, scratch, &d);
      if (d <= depth) break;
      depth = d;
      start = far;
    }
    // Cuthill–McKee BFS with neighbors sorted by ascending degree.
    const std::size_t comp_begin = order.size();
    order.push_back(start);
    visited[start] = 1;
    for (std::size_t k = comp_begin; k < order.size(); ++k) {
      const index_t v = order[k];
      scratch.clear();
      for (index_t p = P.ptr[v]; p < P.ptr[v + 1]; ++p) {
        const index_t u = P.ind[p];
        if (!visited[u]) {
          visited[u] = 1;
          scratch.push_back(u);
        }
      }
      std::sort(scratch.begin(), scratch.end(),
                [&](index_t a, index_t b) { return degree(a) < degree(b); });
      order.insert(order.end(), scratch.begin(), scratch.end());
    }
  }
  GESP_CHECK(static_cast<index_t>(order.size()) == n, Errc::internal,
             "RCM lost vertices");
  // Reverse and convert to new-from-old.
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) perm[order[k]] = n - 1 - k;
  return perm;
}

}  // namespace gesp::ordering
