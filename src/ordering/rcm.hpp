// Reverse Cuthill–McKee ordering — the bandwidth-reducing alternative
// ordering offered alongside AMD (useful for the banded chemical-plant
// matrices, and as a baseline in the ordering ablation bench).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "ordering/patterns.hpp"

namespace gesp::ordering {

/// Reverse Cuthill–McKee on a symmetric pattern; each connected component
/// is started from a pseudo-peripheral vertex found by repeated BFS.
/// Returns the new-from-old permutation.
std::vector<index_t> rcm_order(const SymPattern& P);

}  // namespace gesp::ordering
