// Dense kernels for supernodal block operations: unpivoted (static-pivot)
// LU with tiny-pivot replacement, within-block partial pivoting, triangular
// solves and rank-k updates. All matrices are column-major with an explicit
// leading dimension, matching the paper's Fortran-style nzval[] storage.
//
// The tiny-pivot rule is GESP step (3): a pivot smaller in magnitude than
// sqrt(eps)·||A|| is set to that threshold (keeping its phase), a
// half-precision perturbation of the problem that iterative refinement
// corrects afterwards.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace gesp::dense {

/// Per-panel pivot-selection strategy for the diagonal-block factorization.
/// All three confine row interchanges to the diagonal block, so the
/// supernodal structure (and therefore the symbolic analysis) is unchanged
/// — only the numeric phase differs.
enum class PanelPivot {
  /// No interchanges: pure static pivoting with tiny-pivot replacement
  /// (the paper's GESP step (3)). The default, bitwise identical to the
  /// pre-portfolio factorization.
  static_,
  /// Threshold pivoting within the block (Hogg–Scott style): a row swap is
  /// performed only when |a_kk| < tau·max_col, and then to the
  /// largest-magnitude row. Bounds multipliers by 1/tau while keeping the
  /// static pivot order wherever it is already acceptable.
  threshold,
  /// Panel rank-revealing pivoting (Khabou–Demmel–Grigori LU_PRRP flavor):
  /// before each panel is eliminated, pivot rows are selected by a
  /// column-pivoted QR (modified Gram–Schmidt) of the panel transpose, so
  /// element growth is bounded at panel granularity even when every
  /// individual pivot passes a magnitude test.
  panel_rrp,
};

const char* panel_pivot_name(PanelPivot p) noexcept;

/// Policy for pivots encountered during elimination.
struct PivotPolicy {
  /// Replacement threshold: sqrt(eps)*||A||. <= 0 disables replacement
  /// (a zero pivot then throws Errc::numerically_singular).
  double tiny_threshold = 0.0;
  /// When true, pivot with row swaps *within* the diagonal block (the
  /// paper's "mix static and partial pivoting within a diagonal block"
  /// extension). Swaps are reported through the perm output of getrf.
  /// Exclusive with a non-static `strategy`.
  bool pivot_in_block = false;
  /// Aggressive pivot size control (paper §4): replace a tiny pivot by the
  /// largest magnitude in the current block column instead of the
  /// threshold. Pairs with the Sherman–Morrison–Woodbury recovery.
  bool aggressive = false;
  /// Panel strategy; non-static values require a perm output (like
  /// pivot_in_block) and report swaps through PivotStats::swaps.
  PanelPivot strategy = PanelPivot::static_;
  /// Threshold-pivoting relaxation factor tau in (0, 1]: keep the static
  /// pivot when |a_kk| >= tau·colmax (multipliers are then bounded by
  /// 1/tau). Ignored by the other strategies.
  double threshold_tau = 0.1;
};

/// Counters updated by the factorization kernels.
struct PivotStats {
  count_t replaced = 0;  ///< tiny pivots replaced by the threshold
  count_t swaps = 0;     ///< within-block row swaps performed
};

/// One tiny-pivot replacement: local column index within the block and the
/// value added to the pivot (new - old). Collected when the caller intends
/// to undo the perturbation through Sherman–Morrison–Woodbury (the paper's
/// aggressive pivot-size-control extension).
template <class T>
struct PivotReplacement {
  index_t col;
  T delta;
};

/// In-place LU of the b-by-b block `a` (column-major, leading dim lda),
/// unit L below the diagonal, U on and above. With policy.pivot_in_block
/// or a non-static policy.strategy, perm (size b, may be empty otherwise)
/// receives the local row permutation: perm[r] = original local row now in
/// position r. Throws Errc::numerically_singular on a zero pivot when
/// replacement is disabled.
template <class T>
void getrf(T* a, index_t b, index_t lda, const PivotPolicy& policy,
           PivotStats& stats, std::span<index_t> perm = {},
           std::vector<PivotReplacement<T>>* replacements = nullptr);

/// Solve L·X = B in place, L the b-by-b unit lower triangle of `l`.
/// B is b-by-ncols with leading dimension ldb.
template <class T>
void trsm_left_lower_unit(const T* l, index_t b, index_t lda, T* bmat,
                          index_t ncols, index_t ldb);

/// Solve X·U = B in place, U the b-by-b upper triangle of `u`.
/// B is mrows-by-b with leading dimension ldb.
template <class T>
void trsm_right_upper(const T* u, index_t b, index_t lda, T* bmat,
                      index_t mrows, index_t ldb);

/// C -= A·B, with A m-by-k (lda), B k-by-n (ldb), C m-by-n (ldc).
/// Large shapes go through a packed, register-tiled microkernel; tiny ones
/// through the reference loops. Dispatch depends only on (m, n, k), so for
/// a fixed shape the result is identical on every engine — the property the
/// serial/SMP/distributed bitwise-equality tests rely on.
template <class T>
void gemm_minus(index_t m, index_t n, index_t k, const T* a, index_t lda,
                const T* b, index_t ldb, T* c, index_t ldc);

/// C = -(A·B): the β=0 variant of gemm_minus. Bitwise equal to zero-filling
/// C and calling gemm_minus, without the redundant zero-fill pass — used by
/// the factorization's update scratch. With k == 0 it zero-fills C.
template <class T>
void gemm_minus_overwrite(index_t m, index_t n, index_t k, const T* a,
                          index_t lda, const T* b, index_t ldb, T* c,
                          index_t ldc);

/// Returns the single entry of gemm_minus_overwrite(1, 1, k, ...) — the
/// k-term dot product -Σ a[p]·b[p], bitwise equal to the (1,1,k) kernel
/// dispatch (same term order, same zero-skip, compiled in the same unit).
/// The factorization's scalar update fast path calls this once per pair,
/// so it skips the full GEMM entry's dispatch work.
template <class T>
T dot_minus(index_t k, const T* a, const T* b);

/// y -= A·x for a dense m-by-n block (used by the triangular solves).
template <class T>
void gemv_minus(index_t m, index_t n, const T* a, index_t lda, const T* x,
                T* y);

/// In-place forward substitution with the unit lower triangle of `a`.
template <class T>
void trsv_lower_unit(const T* a, index_t b, index_t lda, T* x);

/// In-place backward substitution with the upper triangle of `a`.
template <class T>
void trsv_upper(const T* a, index_t b, index_t lda, T* x);

/// Solve Uᵀ·x = b in place (forward substitution on the transpose of the
/// upper triangle of `a`); used by the Aᵀ solves of condition estimation.
template <class T>
void trsv_upper_trans(const T* a, index_t b, index_t lda, T* x);

/// Solve Lᵀ·x = b in place (backward substitution on the transpose of the
/// unit lower triangle of `a`).
template <class T>
void trsv_lower_unit_trans(const T* a, index_t b, index_t lda, T* x);

/// Naive reference kernels: the unblocked triple loops the tiled versions
/// are checked against (tests) and benchmarked against (bench_kernels).
/// ref::getrf is the plain right-looking elimination without in-block
/// pivoting (policy.pivot_in_block must be false).
namespace ref {

template <class T>
void gemm_minus(index_t m, index_t n, index_t k, const T* a, index_t lda,
                const T* b, index_t ldb, T* c, index_t ldc);

template <class T>
void trsm_left_lower_unit(const T* l, index_t b, index_t lda, T* bmat,
                          index_t ncols, index_t ldb);

template <class T>
void trsm_right_upper(const T* u, index_t b, index_t lda, T* bmat,
                      index_t mrows, index_t ldb);

template <class T>
void getrf(T* a, index_t b, index_t lda, const PivotPolicy& policy,
           PivotStats& stats,
           std::vector<PivotReplacement<T>>* replacements = nullptr);

extern template void gemm_minus(index_t, index_t, index_t, const double*,
                                index_t, const double*, index_t, double*,
                                index_t);
extern template void gemm_minus(index_t, index_t, index_t, const float*,
                                index_t, const float*, index_t, float*,
                                index_t);
extern template void gemm_minus(index_t, index_t, index_t, const Complex*,
                                index_t, const Complex*, index_t, Complex*,
                                index_t);
extern template void trsm_left_lower_unit(const double*, index_t, index_t,
                                          double*, index_t, index_t);
extern template void trsm_left_lower_unit(const float*, index_t, index_t,
                                          float*, index_t, index_t);
extern template void trsm_left_lower_unit(const Complex*, index_t, index_t,
                                          Complex*, index_t, index_t);
extern template void trsm_right_upper(const double*, index_t, index_t,
                                      double*, index_t, index_t);
extern template void trsm_right_upper(const float*, index_t, index_t,
                                      float*, index_t, index_t);
extern template void trsm_right_upper(const Complex*, index_t, index_t,
                                      Complex*, index_t, index_t);
extern template void getrf(double*, index_t, index_t, const PivotPolicy&,
                           PivotStats&,
                           std::vector<PivotReplacement<double>>*);
extern template void getrf(float*, index_t, index_t, const PivotPolicy&,
                           PivotStats&,
                           std::vector<PivotReplacement<float>>*);
extern template void getrf(Complex*, index_t, index_t, const PivotPolicy&,
                           PivotStats&,
                           std::vector<PivotReplacement<Complex>>*);

}  // namespace ref

extern template void getrf(double*, index_t, index_t, const PivotPolicy&,
                           PivotStats&, std::span<index_t>,
                           std::vector<PivotReplacement<double>>*);
extern template void getrf(float*, index_t, index_t, const PivotPolicy&,
                           PivotStats&, std::span<index_t>,
                           std::vector<PivotReplacement<float>>*);
extern template void getrf(Complex*, index_t, index_t, const PivotPolicy&,
                           PivotStats&, std::span<index_t>,
                           std::vector<PivotReplacement<Complex>>*);
extern template void trsm_left_lower_unit(const double*, index_t, index_t,
                                          double*, index_t, index_t);
extern template void trsm_left_lower_unit(const float*, index_t, index_t,
                                          float*, index_t, index_t);
extern template void trsm_left_lower_unit(const Complex*, index_t, index_t,
                                          Complex*, index_t, index_t);
extern template void trsm_right_upper(const double*, index_t, index_t,
                                      double*, index_t, index_t);
extern template void trsm_right_upper(const float*, index_t, index_t,
                                      float*, index_t, index_t);
extern template void trsm_right_upper(const Complex*, index_t, index_t,
                                      Complex*, index_t, index_t);
extern template void gemm_minus(index_t, index_t, index_t, const double*,
                                index_t, const double*, index_t, double*,
                                index_t);
extern template void gemm_minus(index_t, index_t, index_t, const float*,
                                index_t, const float*, index_t, float*,
                                index_t);
extern template void gemm_minus(index_t, index_t, index_t, const Complex*,
                                index_t, const Complex*, index_t, Complex*,
                                index_t);
extern template void gemm_minus_overwrite(index_t, index_t, index_t,
                                          const double*, index_t,
                                          const double*, index_t, double*,
                                          index_t);
extern template void gemm_minus_overwrite(index_t, index_t, index_t,
                                          const float*, index_t,
                                          const float*, index_t, float*,
                                          index_t);
extern template void gemm_minus_overwrite(index_t, index_t, index_t,
                                          const Complex*, index_t,
                                          const Complex*, index_t, Complex*,
                                          index_t);
extern template double dot_minus(index_t, const double*, const double*);
extern template float dot_minus(index_t, const float*, const float*);
extern template Complex dot_minus(index_t, const Complex*, const Complex*);
extern template void gemv_minus(index_t, index_t, const double*, index_t,
                                const double*, double*);
extern template void gemv_minus(index_t, index_t, const float*, index_t,
                                const float*, float*);
extern template void gemv_minus(index_t, index_t, const Complex*, index_t,
                                const Complex*, Complex*);
extern template void trsv_lower_unit(const double*, index_t, index_t,
                                     double*);
extern template void trsv_lower_unit(const float*, index_t, index_t, float*);
extern template void trsv_lower_unit(const Complex*, index_t, index_t,
                                     Complex*);
extern template void trsv_upper(const double*, index_t, index_t, double*);
extern template void trsv_upper(const float*, index_t, index_t, float*);
extern template void trsv_upper(const Complex*, index_t, index_t, Complex*);
extern template void trsv_upper_trans(const double*, index_t, index_t,
                                      double*);
extern template void trsv_upper_trans(const float*, index_t, index_t,
                                      float*);
extern template void trsv_upper_trans(const Complex*, index_t, index_t,
                                      Complex*);
extern template void trsv_lower_unit_trans(const double*, index_t, index_t,
                                           double*);
extern template void trsv_lower_unit_trans(const float*, index_t, index_t,
                                           float*);
extern template void trsv_lower_unit_trans(const Complex*, index_t, index_t,
                                           Complex*);

}  // namespace gesp::dense
