#include "dense/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gesp::dense {
namespace {

/// Replace a tiny or zero pivot by the threshold, preserving its phase
/// (sign for real, direction for complex); a zero pivot becomes +tau.
template <class T>
T replaced_pivot(T pivot, double tau) {
  using std::abs;
  const double mag = abs(pivot);
  if (mag == 0.0) return T{tau};
  return pivot * T{tau / mag};
}

}  // namespace

template <class T>
void getrf(T* a, index_t b, index_t lda, const PivotPolicy& policy,
           PivotStats& stats, std::span<index_t> perm,
           std::vector<PivotReplacement<T>>* replacements) {
  using std::abs;
  if (policy.pivot_in_block) {
    GESP_CHECK(perm.size() == static_cast<std::size_t>(b),
               Errc::invalid_argument,
               "pivot_in_block requires a permutation output of size b");
    for (index_t r = 0; r < b; ++r) perm[r] = r;
  }
  for (index_t k = 0; k < b; ++k) {
    if (policy.pivot_in_block) {
      // Partial pivoting restricted to the diagonal block.
      index_t best = k;
      double bestmag = abs(a[k + k * lda]);
      for (index_t r = k + 1; r < b; ++r) {
        const double m = abs(a[r + k * lda]);
        if (m > bestmag) {
          bestmag = m;
          best = r;
        }
      }
      if (best != k) {
        for (index_t c = 0; c < b; ++c)
          std::swap(a[k + c * lda], a[best + c * lda]);
        std::swap(perm[k], perm[best]);
        ++stats.swaps;
      }
    }
    T pivot = a[k + k * lda];
    if (abs(pivot) <= policy.tiny_threshold) {
      GESP_CHECK(policy.tiny_threshold > 0.0 || abs(pivot) != 0.0,
                 Errc::numerically_singular,
                 "zero pivot at column " + std::to_string(k) +
                     " with replacement disabled");
      if (policy.tiny_threshold > 0.0) {
        const T old = pivot;
        double target = policy.tiny_threshold;
        if (policy.aggressive) {
          // Largest magnitude in the remaining block column.
          for (index_t r = k; r < b; ++r)
            target = std::max<double>(target, abs(a[r + k * lda]));
        }
        pivot = replaced_pivot(pivot, target);
        a[k + k * lda] = pivot;
        ++stats.replaced;
        if (replacements) replacements->push_back({k, pivot - old});
      }
    }
    const T inv = T{1} / pivot;
    for (index_t r = k + 1; r < b; ++r) a[r + k * lda] *= inv;
    for (index_t c = k + 1; c < b; ++c) {
      const T ukc = a[k + c * lda];
      if (ukc == T{}) continue;
      T* col = a + c * lda;
      const T* lk = a + k * lda;
      for (index_t r = k + 1; r < b; ++r) col[r] -= lk[r] * ukc;
    }
  }
}

template <class T>
void trsm_left_lower_unit(const T* l, index_t b, index_t lda, T* bmat,
                          index_t ncols, index_t ldb) {
  for (index_t c = 0; c < ncols; ++c) {
    T* x = bmat + c * ldb;
    for (index_t k = 0; k < b; ++k) {
      const T xk = x[k];
      if (xk == T{}) continue;
      const T* lk = l + k * lda;
      for (index_t r = k + 1; r < b; ++r) x[r] -= lk[r] * xk;
    }
  }
}

template <class T>
void trsm_right_upper(const T* u, index_t b, index_t lda, T* bmat,
                      index_t mrows, index_t ldb) {
  // Solve X U = B column-block-wise: X(:,k) = (B(:,k) - sum_{c<k} X(:,c)
  // U(c,k)) / U(k,k).
  for (index_t k = 0; k < b; ++k) {
    T* xk = bmat + k * ldb;
    for (index_t c = 0; c < k; ++c) {
      const T uck = u[c + k * lda];
      if (uck == T{}) continue;
      const T* xc = bmat + c * ldb;
      for (index_t r = 0; r < mrows; ++r) xk[r] -= xc[r] * uck;
    }
    const T inv = T{1} / u[k + k * lda];
    for (index_t r = 0; r < mrows; ++r) xk[r] *= inv;
  }
}

template <class T>
void gemm_minus(index_t m, index_t n, index_t k, const T* a, index_t lda,
                const T* b, index_t ldb, T* c, index_t ldc) {
  // jki order: stream down columns of C and A, which are contiguous.
  for (index_t j = 0; j < n; ++j) {
    T* cj = c + j * ldc;
    for (index_t p = 0; p < k; ++p) {
      const T bpj = b[p + j * ldb];
      if (bpj == T{}) continue;
      const T* ap = a + p * lda;
      for (index_t i = 0; i < m; ++i) cj[i] -= ap[i] * bpj;
    }
  }
}

template <class T>
void gemv_minus(index_t m, index_t n, const T* a, index_t lda, const T* x,
                T* y) {
  for (index_t j = 0; j < n; ++j) {
    const T xj = x[j];
    if (xj == T{}) continue;
    const T* aj = a + j * lda;
    for (index_t i = 0; i < m; ++i) y[i] -= aj[i] * xj;
  }
}

template <class T>
void trsv_lower_unit(const T* a, index_t b, index_t lda, T* x) {
  for (index_t k = 0; k < b; ++k) {
    const T xk = x[k];
    if (xk == T{}) continue;
    const T* col = a + k * lda;
    for (index_t r = k + 1; r < b; ++r) x[r] -= col[r] * xk;
  }
}

template <class T>
void trsv_upper(const T* a, index_t b, index_t lda, T* x) {
  for (index_t k = b - 1; k >= 0; --k) {
    x[k] /= a[k + k * lda];
    const T xk = x[k];
    if (xk == T{}) continue;
    const T* col = a + k * lda;
    for (index_t r = 0; r < k; ++r) x[r] -= col[r] * xk;
  }
}

template void getrf(double*, index_t, index_t, const PivotPolicy&,
                    PivotStats&, std::span<index_t>,
                    std::vector<PivotReplacement<double>>*);
template void getrf(Complex*, index_t, index_t, const PivotPolicy&,
                    PivotStats&, std::span<index_t>,
                    std::vector<PivotReplacement<Complex>>*);
template void trsm_left_lower_unit(const double*, index_t, index_t, double*,
                                   index_t, index_t);
template void trsm_left_lower_unit(const Complex*, index_t, index_t, Complex*,
                                   index_t, index_t);
template void trsm_right_upper(const double*, index_t, index_t, double*,
                               index_t, index_t);
template void trsm_right_upper(const Complex*, index_t, index_t, Complex*,
                               index_t, index_t);
template void gemm_minus(index_t, index_t, index_t, const double*, index_t,
                         const double*, index_t, double*, index_t);
template void gemm_minus(index_t, index_t, index_t, const Complex*, index_t,
                         const Complex*, index_t, Complex*, index_t);
template void gemv_minus(index_t, index_t, const double*, index_t,
                         const double*, double*);
template void gemv_minus(index_t, index_t, const Complex*, index_t,
                         const Complex*, Complex*);
template void trsv_lower_unit(const double*, index_t, index_t, double*);
template void trsv_lower_unit(const Complex*, index_t, index_t, Complex*);
template <class T>
void trsv_upper_trans(const T* a, index_t b, index_t lda, T* x) {
  // Uᵀ is lower triangular; row k of Uᵀ is column k of U.
  for (index_t k = 0; k < b; ++k) {
    T sum = x[k];
    const T* col = a + k * lda;
    for (index_t r = 0; r < k; ++r) sum -= col[r] * x[r];
    x[k] = sum / col[k];
  }
}

template <class T>
void trsv_lower_unit_trans(const T* a, index_t b, index_t lda, T* x) {
  // Lᵀ is unit upper triangular; row k of Lᵀ is column k of L.
  for (index_t k = b - 1; k >= 0; --k) {
    T sum = x[k];
    const T* col = a + k * lda;
    for (index_t r = k + 1; r < b; ++r) sum -= col[r] * x[r];
    x[k] = sum;
  }
}

template void trsv_upper(const double*, index_t, index_t, double*);
template void trsv_upper(const Complex*, index_t, index_t, Complex*);
template void trsv_upper_trans(const double*, index_t, index_t, double*);
template void trsv_upper_trans(const Complex*, index_t, index_t, Complex*);
template void trsv_lower_unit_trans(const double*, index_t, index_t, double*);
template void trsv_lower_unit_trans(const Complex*, index_t, index_t,
                                    Complex*);

}  // namespace gesp::dense
