#include "dense/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace gesp::dense {
namespace {

/// Replace a tiny or zero pivot by the threshold, preserving its phase
/// (sign for real, direction for complex); a zero pivot becomes +tau.
/// static_cast, not braced init: the threshold is carried in double and
/// narrows when the compute precision is float.
template <class T>
T replaced_pivot(T pivot, double tau) {
  using std::abs;
  const double mag = abs(pivot);
  if (mag == 0.0) return static_cast<T>(tau);
  return pivot * static_cast<T>(tau / mag);
}

// ---------------------------------------------------------------------------
// Naive kernels (the reference implementations; also the small-shape paths).
// ---------------------------------------------------------------------------

// jki order: stream down columns of C and A, which are contiguous.
// noinline: every caller (the gemm dispatch, ref::, dot_minus) must share
// ONE compiled copy — per-call-site inlining could contract the multiply-add
// differently and break the cross-engine bitwise guarantee of INTERNALS §10.
template <class T>
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
void gemm_minus_naive(index_t m, index_t n, index_t k, const T* a,
                      index_t lda, const T* b, index_t ldb, T* c,
                      index_t ldc) {
  for (index_t j = 0; j < n; ++j) {
    T* cj = c + j * ldc;
    for (index_t p = 0; p < k; ++p) {
      const T bpj = b[p + j * ldb];
      if (bpj == T{}) continue;
      const T* ap = a + p * lda;
      for (index_t i = 0; i < m; ++i) cj[i] -= ap[i] * bpj;
    }
  }
}

template <class T>
void trsm_left_lower_unit_naive(const T* l, index_t b, index_t lda, T* bmat,
                                index_t ncols, index_t ldb) {
  for (index_t c = 0; c < ncols; ++c) {
    T* x = bmat + c * ldb;
    for (index_t k = 0; k < b; ++k) {
      const T xk = x[k];
      if (xk == T{}) continue;
      const T* lk = l + k * lda;
      for (index_t r = k + 1; r < b; ++r) x[r] -= lk[r] * xk;
    }
  }
}

// Solve X U = B column-block-wise: X(:,k) = (B(:,k) - sum_{c<k} X(:,c)
// U(c,k)) / U(k,k).
template <class T>
void trsm_right_upper_naive(const T* u, index_t b, index_t lda, T* bmat,
                            index_t mrows, index_t ldb) {
  for (index_t k = 0; k < b; ++k) {
    T* xk = bmat + k * ldb;
    for (index_t c = 0; c < k; ++c) {
      const T uck = u[c + k * lda];
      if (uck == T{}) continue;
      const T* xc = bmat + c * ldb;
      for (index_t r = 0; r < mrows; ++r) xk[r] -= xc[r] * uck;
    }
    const T inv = T{1} / u[k + k * lda];
    for (index_t r = 0; r < mrows; ++r) xk[r] *= inv;
  }
}

// Unblocked right-looking elimination of the m-by-nb panel at `a` (all
// remaining rows, nb pivot columns). `col0` offsets the recorded
// replacement columns so callers see block-local indices.
template <class T>
void getrf_panel(T* a, index_t m, index_t nb, index_t lda,
                 const PivotPolicy& policy, PivotStats& stats, index_t col0,
                 std::vector<PivotReplacement<T>>* replacements) {
  using std::abs;
  for (index_t k = 0; k < nb; ++k) {
    T pivot = a[k + k * lda];
    if (abs(pivot) <= policy.tiny_threshold) {
      GESP_CHECK(policy.tiny_threshold > 0.0 || abs(pivot) != 0.0,
                 Errc::numerically_singular,
                 "zero pivot at column " + std::to_string(col0 + k) +
                     " with replacement disabled");
      if (policy.tiny_threshold > 0.0) {
        const T old = pivot;
        double target = policy.tiny_threshold;
        if (policy.aggressive) {
          // Largest magnitude in the remaining block column.
          for (index_t r = k; r < m; ++r)
            target = std::max<double>(target, abs(a[r + k * lda]));
        }
        pivot = replaced_pivot(pivot, target);
        a[k + k * lda] = pivot;
        ++stats.replaced;
        if (replacements) replacements->push_back({col0 + k, pivot - old});
      }
    }
    const T inv = T{1} / pivot;
    for (index_t r = k + 1; r < m; ++r) a[r + k * lda] *= inv;
    for (index_t c = k + 1; c < nb; ++c) {
      const T ukc = a[k + c * lda];
      if (ukc == T{}) continue;
      T* col = a + c * lda;
      const T* lk = a + k * lda;
      for (index_t r = k + 1; r < m; ++r) col[r] -= lk[r] * ukc;
    }
  }
}

// Unblocked elimination with partial pivoting restricted to the diagonal
// block (the paper's mix of static and partial pivoting). Kept separate
// from the blocked fast path: swaps touch whole rows, so deferring updates
// would need a laswp pass for no gain at these block sizes.
template <class T>
void getrf_pivot_in_block(T* a, index_t b, index_t lda,
                          const PivotPolicy& policy, PivotStats& stats,
                          std::span<index_t> perm,
                          std::vector<PivotReplacement<T>>* replacements) {
  using std::abs;
  GESP_CHECK(perm.size() == static_cast<std::size_t>(b),
             Errc::invalid_argument,
             "pivot_in_block requires a permutation output of size b");
  for (index_t r = 0; r < b; ++r) perm[r] = r;
  for (index_t k = 0; k < b; ++k) {
    index_t best = k;
    double bestmag = abs(a[k + k * lda]);
    for (index_t r = k + 1; r < b; ++r) {
      const double m = abs(a[r + k * lda]);
      if (m > bestmag) {
        bestmag = m;
        best = r;
      }
    }
    if (best != k) {
      for (index_t c = 0; c < b; ++c)
        std::swap(a[k + c * lda], a[best + c * lda]);
      std::swap(perm[k], perm[best]);
      ++stats.swaps;
    }
    T pivot = a[k + k * lda];
    if (abs(pivot) <= policy.tiny_threshold) {
      GESP_CHECK(policy.tiny_threshold > 0.0 || abs(pivot) != 0.0,
                 Errc::numerically_singular,
                 "zero pivot at column " + std::to_string(k) +
                     " with replacement disabled");
      if (policy.tiny_threshold > 0.0) {
        const T old = pivot;
        double target = policy.tiny_threshold;
        if (policy.aggressive) {
          for (index_t r = k; r < b; ++r)
            target = std::max<double>(target, abs(a[r + k * lda]));
        }
        pivot = replaced_pivot(pivot, target);
        a[k + k * lda] = pivot;
        ++stats.replaced;
        if (replacements) replacements->push_back({k, pivot - old});
      }
    }
    const T inv = T{1} / pivot;
    for (index_t r = k + 1; r < b; ++r) a[r + k * lda] *= inv;
    for (index_t c = k + 1; c < b; ++c) {
      const T ukc = a[k + c * lda];
      if (ukc == T{}) continue;
      T* col = a + c * lda;
      const T* lk = a + k * lda;
      for (index_t r = k + 1; r < b; ++r) col[r] -= lk[r] * ukc;
    }
  }
}

/// Shared tail of one elimination column for the in-block strategies:
/// tiny-pivot replacement, scaling of the multipliers and the rank-1
/// update of the trailing columns. Identical arithmetic to getrf_panel.
template <class T>
void eliminate_column(T* a, index_t b, index_t lda, index_t k,
                      const PivotPolicy& policy, PivotStats& stats,
                      std::vector<PivotReplacement<T>>* replacements) {
  using std::abs;
  T pivot = a[k + k * lda];
  if (abs(pivot) <= policy.tiny_threshold) {
    GESP_CHECK(policy.tiny_threshold > 0.0 || abs(pivot) != 0.0,
               Errc::numerically_singular,
               "zero pivot at column " + std::to_string(k) +
                   " with replacement disabled");
    if (policy.tiny_threshold > 0.0) {
      const T old = pivot;
      double target = policy.tiny_threshold;
      if (policy.aggressive) {
        for (index_t r = k; r < b; ++r)
          target = std::max<double>(target, abs(a[r + k * lda]));
      }
      pivot = replaced_pivot(pivot, target);
      a[k + k * lda] = pivot;
      ++stats.replaced;
      if (replacements) replacements->push_back({k, pivot - old});
    }
  }
  const T inv = T{1} / pivot;
  for (index_t r = k + 1; r < b; ++r) a[r + k * lda] *= inv;
  for (index_t c = k + 1; c < b; ++c) {
    const T ukc = a[k + c * lda];
    if (ukc == T{}) continue;
    T* col = a + c * lda;
    const T* lk = a + k * lda;
    for (index_t r = k + 1; r < b; ++r) col[r] -= lk[r] * ukc;
  }
}

/// Threshold pivoting confined to the diagonal block: the static pivot is
/// kept whenever |a_kk| >= tau·colmax; otherwise the largest-magnitude row
/// of the remaining block column is swapped in (ties to the lowest row
/// index, so the choice — and the factors — are deterministic).
template <class T>
void getrf_threshold_in_block(T* a, index_t b, index_t lda,
                              const PivotPolicy& policy, PivotStats& stats,
                              std::span<index_t> perm,
                              std::vector<PivotReplacement<T>>* replacements) {
  using std::abs;
  GESP_CHECK(perm.size() == static_cast<std::size_t>(b),
             Errc::invalid_argument,
             "threshold pivoting requires a permutation output of size b");
  const double tau = policy.threshold_tau;
  GESP_CHECK(tau > 0.0 && tau <= 1.0, Errc::invalid_argument,
             "threshold_tau must be in (0, 1]");
  for (index_t r = 0; r < b; ++r) perm[r] = r;
  for (index_t k = 0; k < b; ++k) {
    index_t best = k;
    double bestmag = abs(a[k + k * lda]);
    for (index_t r = k + 1; r < b; ++r) {
      const double m = abs(a[r + k * lda]);
      if (m > bestmag) {
        bestmag = m;
        best = r;
      }
    }
    if (best != k && abs(a[k + k * lda]) < tau * bestmag) {
      for (index_t c = 0; c < b; ++c)
        std::swap(a[k + c * lda], a[best + c * lda]);
      std::swap(perm[k], perm[best]);
      ++stats.swaps;
    }
    eliminate_column(a, b, lda, k, policy, stats, replacements);
  }
}

/// Panel-RRP: before each panel of kGetrfPanel columns is eliminated, pick
/// its pivot rows with a column-pivoted modified Gram–Schmidt QR of the
/// panel transpose (the practical core of the Khabou–Demmel–Grigori
/// LU_PRRP panel factorization). The selected rows are swapped to the top
/// of the panel, then the panel is eliminated with partial pivoting
/// *confined to the selected rows* — LU_PRRP likewise factors the chosen
/// block with GEPP internally. Multipliers between panel rows are thus
/// bounded by 1, and multipliers of the rows below the panel by the
/// rank-revealing quality of the selection, so element growth is bounded
/// at panel granularity even when every individual pivot passes a
/// magnitude test (the Wilkinson tie case partial pivoting falls for).
template <class T>
void getrf_panel_rrp(T* a, index_t b, index_t lda, const PivotPolicy& policy,
                     PivotStats& stats, std::span<index_t> perm,
                     std::vector<PivotReplacement<T>>* replacements,
                     index_t panel_width) {
  using std::abs;
  GESP_CHECK(perm.size() == static_cast<std::size_t>(b),
             Errc::invalid_argument,
             "panel_rrp requires a permutation output of size b");
  for (index_t r = 0; r < b; ++r) perm[r] = r;
  std::vector<T> q;           // current MGS direction (nb entries)
  std::vector<T> cand;        // candidate row vectors, nb-by-m column-major
  std::vector<double> norms;  // residual squared norms per candidate
  std::vector<index_t> sel;
  for (index_t k0 = 0; k0 < b; k0 += panel_width) {
    const index_t nb = std::min(panel_width, b - k0);
    const index_t m = b - k0;  // candidate rows
    if (nb > 1 && m > 1) {
      // cand(:, r) = row k0+r of the panel a(k0:b, k0:k0+nb).
      cand.assign(static_cast<std::size_t>(nb) * m, T{});
      norms.assign(static_cast<std::size_t>(m), 0.0);
      for (index_t r = 0; r < m; ++r) {
        double s = 0.0;
        for (index_t c = 0; c < nb; ++c) {
          const T v = a[(k0 + r) + (k0 + c) * static_cast<std::size_t>(lda)];
          cand[c + r * static_cast<std::size_t>(nb)] = v;
          s += static_cast<double>(abs(v)) * static_cast<double>(abs(v));
        }
        norms[r] = s;
      }
      // Greedy MGS with column pivoting: sel[s] = candidate (block-local
      // row at panel entry) chosen as the s-th pivot row.
      sel.resize(static_cast<std::size_t>(nb));
      std::vector<bool> used(static_cast<std::size_t>(m), false);
      for (index_t s = 0; s < nb; ++s) {
        index_t pick = -1;
        double pickn = -1.0;
        for (index_t r = 0; r < m; ++r)
          if (!used[r] && norms[r] > pickn) {
            pickn = norms[r];
            pick = r;
          }
        sel[s] = pick;
        used[pick] = true;
        if (pickn <= 0.0) continue;  // rank-deficient panel: keep order
        // Normalize the picked direction, orthogonalize the rest.
        T* qv = cand.data() + pick * static_cast<std::size_t>(nb);
        const double qn = std::sqrt(pickn);
        q.assign(qv, qv + nb);
        for (index_t c = 0; c < nb; ++c)
          q[c] = q[c] * static_cast<T>(1.0 / qn);
        for (index_t r = 0; r < m; ++r) {
          if (used[r]) continue;
          T* v = cand.data() + r * static_cast<std::size_t>(nb);
          T proj{};
          for (index_t c = 0; c < nb; ++c) {
            if constexpr (is_complex_v<T>)
              proj += std::conj(q[c]) * v[c];
            else
              proj += q[c] * v[c];
          }
          double s2 = 0.0;
          for (index_t c = 0; c < nb; ++c) {
            v[c] -= proj * q[c];
            s2 += static_cast<double>(abs(v[c])) * static_cast<double>(abs(v[c]));
          }
          norms[r] = s2;
        }
      }
      // Apply the selection as successive full-width row swaps, tracking
      // where each original candidate currently lives.
      std::vector<index_t> where(static_cast<std::size_t>(m));
      std::vector<index_t> who(static_cast<std::size_t>(m));
      for (index_t r = 0; r < m; ++r) where[r] = who[r] = r;
      for (index_t s = 0; s < nb; ++s) {
        const index_t src = where[sel[s]];  // current position of pick
        if (src != s) {
          const index_t r1 = k0 + s, r2 = k0 + src;
          for (index_t c = 0; c < b; ++c)
            std::swap(a[r1 + c * static_cast<std::size_t>(lda)],
                      a[r2 + c * static_cast<std::size_t>(lda)]);
          std::swap(perm[r1], perm[r2]);
          ++stats.swaps;
          const index_t disp = who[s];  // candidate displaced from slot s
          where[disp] = src;
          who[src] = disp;
          where[sel[s]] = s;
          who[s] = sel[s];
        }
      }
    }
    // Eliminate the panel with partial pivoting confined to the selected
    // pivot rows (rows k0..k0+nb-1; ties keep the lower index, so the
    // factors are deterministic).
    for (index_t k = k0; k < k0 + nb; ++k) {
      index_t best = k;
      double bestmag = abs(a[k + k * static_cast<std::size_t>(lda)]);
      for (index_t r = k + 1; r < k0 + nb; ++r) {
        const double mg = abs(a[r + k * static_cast<std::size_t>(lda)]);
        if (mg > bestmag) {
          bestmag = mg;
          best = r;
        }
      }
      if (best != k) {
        for (index_t c = 0; c < b; ++c)
          std::swap(a[k + c * static_cast<std::size_t>(lda)],
                    a[best + c * static_cast<std::size_t>(lda)]);
        std::swap(perm[k], perm[best]);
        ++stats.swaps;
      }
      eliminate_column(a, b, lda, k, policy, stats, replacements);
    }
  }
}

// ---------------------------------------------------------------------------
// Register-tiled GEMM.
//
// Classic three-level blocking: B is packed once per k-panel into NR-column
// strips and reused across the whole block row of A; A is packed into
// MR-row strips. The microkernel keeps an MR×NR accumulator in vector
// registers across the whole k-loop. Panels pack in the compute precision
// (floats stay floats: half the traffic, twice the lanes per register, the
// single-precision speedup). Complex panels are packed as split real/imag
// planes of doubles, so the complex microkernel runs four real FMA streams
// and never calls the __muldc3 inf/nan fixup. Fringe tiles are
// zero-padded during packing (padding contributes exact zeros) and the
// writeback only touches the valid part of C.
//
// On GCC/Clang the microkernel is written with vector extensions (the
// autovectorizer does not keep the accumulator tile in registers on its
// own); elsewhere a plain scalar tile is used — identical arithmetic
// order, so results agree up to FP contraction within one build.
// ---------------------------------------------------------------------------

constexpr index_t kMrD = 8, kNrD = 6;   // double microtile
constexpr index_t kMrZ = 8, kNrZ = 4;   // complex microtile (split planes)
constexpr index_t kMrF = 16, kNrF = 6;  // float microtile (twice the lanes)
constexpr index_t kKc = 256;  // k-panel depth (packed B strip height)
// A panel rows per pass (multiple of MR); per type so each precision packs
// the same ~245 KiB strip (see MicroTile<T>::mc).
constexpr index_t kMcD = 120, kMcZ = 120, kMcF = 240;

#if defined(__GNUC__) || defined(__clang__)
#define GESP_KERNEL_VECEXT 1
// One 8-wide double vector; on narrower ISAs the compiler splits the ops.
using vd8 = double __attribute__((vector_size(64)));
using vd8_unal = double __attribute__((vector_size(64), aligned(8)));
// One 16-wide float vector: the same 64 bytes hold twice the lanes, which
// is where the single-precision GEMM speedup comes from.
using vf16 = float __attribute__((vector_size(64)));
using vf16_unal = float __attribute__((vector_size(64), aligned(4)));
#endif

// Microkernel, double: out (MR*NR, column-major MR) = sum_p ap(:,p)·bp(p,:).
template <index_t MR, index_t NR>
inline void micro_tile(index_t kc, const double* __restrict__ ap,
                       const double* __restrict__ bp,
                       double* __restrict__ out) {
#ifdef GESP_KERNEL_VECEXT
  static_assert(MR == 8);
  vd8 acc[NR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const vd8 a = *reinterpret_cast<const vd8_unal*>(ap + p * MR);
    const double* b = bp + p * NR;
    for (index_t j = 0; j < NR; ++j) acc[j] += a * b[j];
  }
  for (index_t j = 0; j < NR; ++j)
    for (index_t i = 0; i < MR; ++i) out[i + j * MR] = acc[j][i];
#else
  double acc[MR * NR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const double* a = ap + p * MR;
    const double* b = bp + p * NR;
    for (index_t j = 0; j < NR; ++j)
      for (index_t i = 0; i < MR; ++i) acc[i + j * MR] += a[i] * b[j];
  }
  for (index_t x = 0; x < MR * NR; ++x) out[x] = acc[x];
#endif
}

// Microkernel, float: same shape as the double kernel with twice the lanes
// per vector. Selected by overload resolution on the packed-scalar type.
template <index_t MR, index_t NR>
inline void micro_tile(index_t kc, const float* __restrict__ ap,
                       const float* __restrict__ bp,
                       float* __restrict__ out) {
#ifdef GESP_KERNEL_VECEXT
  static_assert(MR == 16);
  vf16 acc[NR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const vf16 a = *reinterpret_cast<const vf16_unal*>(ap + p * MR);
    const float* b = bp + p * NR;
    for (index_t j = 0; j < NR; ++j) acc[j] += a * b[j];
  }
  for (index_t j = 0; j < NR; ++j)
    for (index_t i = 0; i < MR; ++i) out[i + j * MR] = acc[j][i];
#else
  float acc[MR * NR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const float* a = ap + p * MR;
    const float* b = bp + p * NR;
    for (index_t j = 0; j < NR; ++j)
      for (index_t i = 0; i < MR; ++i) acc[i + j * MR] += a[i] * b[j];
  }
  for (index_t x = 0; x < MR * NR; ++x) out[x] = acc[x];
#endif
}

// Microkernel, complex via split planes: ap holds [re×MR | im×MR] per k
// step, bp holds [re×NR | im×NR]; outputs are separate re/im tiles.
template <index_t MR, index_t NR>
inline void micro_tile_z(index_t kc, const double* __restrict__ ap,
                         const double* __restrict__ bp,
                         double* __restrict__ out_re,
                         double* __restrict__ out_im) {
#ifdef GESP_KERNEL_VECEXT
  static_assert(MR == 8);
  vd8 acc_re[NR] = {}, acc_im[NR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const vd8 are = *reinterpret_cast<const vd8_unal*>(ap + p * 2 * MR);
    const vd8 aim = *reinterpret_cast<const vd8_unal*>(ap + p * 2 * MR + MR);
    const double* b = bp + p * 2 * NR;
    for (index_t j = 0; j < NR; ++j) {
      const double br = b[j], bi = b[NR + j];
      acc_re[j] += are * br - aim * bi;
      acc_im[j] += are * bi + aim * br;
    }
  }
  for (index_t j = 0; j < NR; ++j)
    for (index_t i = 0; i < MR; ++i) {
      out_re[i + j * MR] = acc_re[j][i];
      out_im[i + j * MR] = acc_im[j][i];
    }
#else
  double acc_re[MR * NR] = {}, acc_im[MR * NR] = {};
  for (index_t p = 0; p < kc; ++p) {
    const double* a = ap + p * 2 * MR;
    const double* b = bp + p * 2 * NR;
    for (index_t j = 0; j < NR; ++j) {
      const double br = b[j], bi = b[NR + j];
      for (index_t i = 0; i < MR; ++i) {
        acc_re[i + j * MR] += a[i] * br - a[MR + i] * bi;
        acc_im[i + j * MR] += a[i] * bi + a[MR + i] * br;
      }
    }
  }
  for (index_t x = 0; x < MR * NR; ++x) {
    out_re[x] = acc_re[x];
    out_im[x] = acc_im[x];
  }
#endif
}

// Pack the mc-by-kc block of `a` into MR-row panels, k-major within each
// panel (dst[p*MR + i]); rows past mc are zero-padded.
template <index_t MR>
void pack_a(const double* a, index_t lda, index_t mc, index_t kc,
            double* dst) {
  for (index_t ir = 0; ir < mc; ir += MR) {
    const index_t mr = std::min(MR, mc - ir);
    for (index_t p = 0; p < kc; ++p) {
      const double* col = a + ir + p * static_cast<std::size_t>(lda);
      index_t i = 0;
      for (; i < mr; ++i) dst[i] = col[i];
      for (; i < MR; ++i) dst[i] = 0.0;
      dst += MR;
    }
  }
}

template <index_t MR>
void pack_a(const float* a, index_t lda, index_t mc, index_t kc,
            float* dst) {
  for (index_t ir = 0; ir < mc; ir += MR) {
    const index_t mr = std::min(MR, mc - ir);
    for (index_t p = 0; p < kc; ++p) {
      const float* col = a + ir + p * static_cast<std::size_t>(lda);
      index_t i = 0;
      for (; i < mr; ++i) dst[i] = col[i];
      for (; i < MR; ++i) dst[i] = 0.0f;
      dst += MR;
    }
  }
}

template <index_t MR>
void pack_a(const Complex* a, index_t lda, index_t mc, index_t kc,
            double* dst) {
  for (index_t ir = 0; ir < mc; ir += MR) {
    const index_t mr = std::min(MR, mc - ir);
    for (index_t p = 0; p < kc; ++p) {
      const Complex* col = a + ir + p * static_cast<std::size_t>(lda);
      index_t i = 0;
      for (; i < mr; ++i) {
        dst[i] = col[i].real();
        dst[MR + i] = col[i].imag();
      }
      for (; i < MR; ++i) dst[i] = dst[MR + i] = 0.0;
      dst += 2 * MR;
    }
  }
}

// Pack the kc-by-n block of `b` into NR-column panels, k-major within each
// panel (dst[p*NR + j]); columns past n are zero-padded.
template <index_t NR>
void pack_b(const double* b, index_t ldb, index_t kc, index_t n,
            double* dst) {
  for (index_t jr = 0; jr < n; jr += NR) {
    const index_t nr = std::min(NR, n - jr);
    for (index_t p = 0; p < kc; ++p) {
      const double* row = b + p + jr * static_cast<std::size_t>(ldb);
      index_t j = 0;
      for (; j < nr; ++j) dst[j] = row[j * static_cast<std::size_t>(ldb)];
      for (; j < NR; ++j) dst[j] = 0.0;
      dst += NR;
    }
  }
}

template <index_t NR>
void pack_b(const float* b, index_t ldb, index_t kc, index_t n,
            float* dst) {
  for (index_t jr = 0; jr < n; jr += NR) {
    const index_t nr = std::min(NR, n - jr);
    for (index_t p = 0; p < kc; ++p) {
      const float* row = b + p + jr * static_cast<std::size_t>(ldb);
      index_t j = 0;
      for (; j < nr; ++j) dst[j] = row[j * static_cast<std::size_t>(ldb)];
      for (; j < NR; ++j) dst[j] = 0.0f;
      dst += NR;
    }
  }
}

template <index_t NR>
void pack_b(const Complex* b, index_t ldb, index_t kc, index_t n,
            double* dst) {
  for (index_t jr = 0; jr < n; jr += NR) {
    const index_t nr = std::min(NR, n - jr);
    for (index_t p = 0; p < kc; ++p) {
      const Complex* row = b + p + jr * static_cast<std::size_t>(ldb);
      index_t j = 0;
      for (; j < nr; ++j) {
        const Complex v = row[j * static_cast<std::size_t>(ldb)];
        dst[j] = v.real();
        dst[NR + j] = v.imag();
      }
      for (; j < NR; ++j) dst[j] = dst[NR + j] = 0.0;
      dst += 2 * NR;
    }
  }
}

template <class T>
struct MicroTile;
template <>
struct MicroTile<double> {
  using pack_type = double;  ///< scalar type of the packed panels
  static constexpr index_t mr = kMrD, nr = kNrD, mc = kMcD;
  static constexpr index_t pack_stride = 1;  // pack scalars per element
};
template <>
struct MicroTile<float> {
  using pack_type = float;
  static constexpr index_t mr = kMrF, nr = kNrF, mc = kMcF;
  static constexpr index_t pack_stride = 1;
};
template <>
struct MicroTile<Complex> {
  using pack_type = double;  ///< split re/im planes of doubles
  static constexpr index_t mr = kMrZ, nr = kNrZ, mc = kMcZ;
  static constexpr index_t pack_stride = 2;
};

// `overwrite`: write C = 0 - acc (β=0) on the first k-panel instead of
// C -= acc. The 0-minus form keeps the result bitwise equal to zero-filling
// C and running the subtract path.
template <class T>
void gemm_tiled(index_t m, index_t n, index_t k, const T* a, index_t lda,
                const T* b, index_t ldb, T* c, index_t ldc, bool overwrite) {
  using P = typename MicroTile<T>::pack_type;
  constexpr index_t MR = MicroTile<T>::mr;
  constexpr index_t NR = MicroTile<T>::nr;
  constexpr index_t PS = MicroTile<T>::pack_stride;
  constexpr index_t MC = MicroTile<T>::mc;
  thread_local std::vector<P> apack, bpack;
  P out_re[MR * NR], out_im[MR * NR];
  for (index_t pc = 0; pc < k; pc += kKc) {
    const index_t kc = std::min(kKc, k - pc);
    const bool store = overwrite && pc == 0;
    bpack.resize(static_cast<std::size_t>((n + NR - 1) / NR) * NR * PS * kc);
    pack_b<NR>(b + pc, ldb, kc, n, bpack.data());
    for (index_t ic = 0; ic < m; ic += MC) {
      const index_t mc = std::min(MC, m - ic);
      apack.resize(static_cast<std::size_t>((mc + MR - 1) / MR) * MR * PS *
                   kc);
      pack_a<MR>(a + ic + pc * static_cast<std::size_t>(lda), lda, mc, kc,
                 apack.data());
      for (index_t jr = 0; jr < n; jr += NR) {
        const index_t nr = std::min(NR, n - jr);
        const P* bp =
            bpack.data() + static_cast<std::size_t>(jr / NR) * NR * PS * kc;
        for (index_t ir = 0; ir < mc; ir += MR) {
          const index_t mr = std::min(MR, mc - ir);
          const P* ap =
              apack.data() + static_cast<std::size_t>(ir / MR) * MR * PS * kc;
          T* ct = c + (ic + ir) + jr * static_cast<std::size_t>(ldc);
          if constexpr (is_complex_v<T>) {
            micro_tile_z<MR, NR>(kc, ap, bp, out_re, out_im);
            for (index_t j = 0; j < nr; ++j)
              for (index_t i = 0; i < mr; ++i) {
                const T v{out_re[i + j * MR], out_im[i + j * MR]};
                if (store)
                  ct[i + j * static_cast<std::size_t>(ldc)] = T{} - v;
                else
                  ct[i + j * static_cast<std::size_t>(ldc)] -= v;
              }
          } else {
            micro_tile<MR, NR>(kc, ap, bp, out_re);
            for (index_t j = 0; j < nr; ++j)
              for (index_t i = 0; i < mr; ++i) {
                if (store)
                  ct[i + j * static_cast<std::size_t>(ldc)] =
                      T{} - out_re[i + j * MR];
                else
                  ct[i + j * static_cast<std::size_t>(ldc)] -=
                      out_re[i + j * MR];
              }
          }
        }
      }
    }
  }
}

// Shapes where packing costs more than it saves run the naive loops. The
// choice depends only on (m, n, k) so it is deterministic per shape.
template <class T>
bool gemm_is_small(index_t m, index_t n, index_t k) {
  // The m cutoff is kMrD for every precision, not MicroTile<T>::mr: the
  // float microtile is 16 rows, but packing zero-pads partial tiles, so an
  // 8..15-row float update still runs 8 useful lanes through the tiled
  // path — matching the double kernel it competes with, and well ahead of
  // the naive loop the higher cutoff used to send it to.
  return k < 4 || m < kMrD || n < 3;
}

constexpr index_t kTrsmBlock = 16;   // trsm panel width feeding the gemm
constexpr index_t kGetrfPanel = 16;  // getrf panel width
constexpr index_t kGetrfBlockMin = 33;  // below this, getrf runs unblocked

}  // namespace

template <class T>
void gemm_minus(index_t m, index_t n, index_t k, const T* a, index_t lda,
                const T* b, index_t ldb, T* c, index_t ldc) {
  if (gemm_is_small<T>(m, n, k)) {
    gemm_minus_naive(m, n, k, a, lda, b, ldb, c, ldc);
    return;
  }
  gemm_tiled(m, n, k, a, lda, b, ldb, c, ldc, /*overwrite=*/false);
}

template <class T>
void gemm_minus_overwrite(index_t m, index_t n, index_t k, const T* a,
                          index_t lda, const T* b, index_t ldb, T* c,
                          index_t ldc) {
  if (k == 0 || gemm_is_small<T>(m, n, k)) {
    for (index_t j = 0; j < n; ++j)
      std::fill_n(c + j * static_cast<std::size_t>(ldc), m, T{});
    gemm_minus_naive(m, n, k, a, lda, b, ldb, c, ldc);
    return;
  }
  gemm_tiled(m, n, k, a, lda, b, ldb, c, ldc, /*overwrite=*/true);
}

// The (1,1,k) small-shape dispatch lands in gemm_minus_naive, so calling
// the same (noinline) instantiation directly is bitwise identical by
// construction — this entry just skips the dispatch and zero-fill wrapper.
template <class T>
T dot_minus(index_t k, const T* a, const T* b) {
  T c{};
  gemm_minus_naive(index_t{1}, index_t{1}, k, a, index_t{1}, b, k, &c,
                   index_t{1});
  return c;
}

const char* panel_pivot_name(PanelPivot p) noexcept {
  switch (p) {
    case PanelPivot::static_:
      return "static";
    case PanelPivot::threshold:
      return "threshold";
    case PanelPivot::panel_rrp:
      return "panel_rrp";
  }
  return "unknown";
}

template <class T>
void getrf(T* a, index_t b, index_t lda, const PivotPolicy& policy,
           PivotStats& stats, std::span<index_t> perm,
           std::vector<PivotReplacement<T>>* replacements) {
  if (policy.pivot_in_block) {
    GESP_CHECK(policy.strategy == PanelPivot::static_, Errc::invalid_argument,
               "pivot_in_block and a non-static panel strategy are exclusive");
    getrf_pivot_in_block(a, b, lda, policy, stats, perm, replacements);
    return;
  }
  if (policy.strategy == PanelPivot::threshold) {
    getrf_threshold_in_block(a, b, lda, policy, stats, perm, replacements);
    return;
  }
  if (policy.strategy == PanelPivot::panel_rrp) {
    getrf_panel_rrp(a, b, lda, policy, stats, perm, replacements,
                    kGetrfPanel);
    return;
  }
  if (b < kGetrfBlockMin) {
    getrf_panel(a, b, b, lda, policy, stats, 0, replacements);
    return;
  }
  // Blocked right-looking: factor a tall panel unblocked, solve its U row
  // block, then rank-nb update the trailing matrix through the tiled gemm.
  for (index_t k0 = 0; k0 < b; k0 += kGetrfPanel) {
    const index_t nb = std::min(kGetrfPanel, b - k0);
    getrf_panel(a + k0 + k0 * static_cast<std::size_t>(lda), b - k0, nb, lda,
                policy, stats, k0, replacements);
    const index_t k1 = k0 + nb;
    if (k1 < b) {
      T* a12 = a + k0 + k1 * static_cast<std::size_t>(lda);
      trsm_left_lower_unit(a + k0 + k0 * static_cast<std::size_t>(lda), nb,
                           lda, a12, b - k1, lda);
      gemm_minus(b - k1, b - k1, nb,
                 a + k1 + k0 * static_cast<std::size_t>(lda), lda, a12, lda,
                 a + k1 + k1 * static_cast<std::size_t>(lda), lda);
    }
  }
}

template <class T>
void trsm_left_lower_unit(const T* l, index_t b, index_t lda, T* bmat,
                          index_t ncols, index_t ldb) {
  if (b <= kTrsmBlock || ncols < 3) {
    trsm_left_lower_unit_naive(l, b, lda, bmat, ncols, ldb);
    return;
  }
  // Blocked forward substitution: solve a diagonal panel, then push its
  // contribution into the rows below with one gemm.
  for (index_t k0 = 0; k0 < b; k0 += kTrsmBlock) {
    const index_t nb = std::min(kTrsmBlock, b - k0);
    trsm_left_lower_unit_naive(l + k0 + k0 * static_cast<std::size_t>(lda),
                               nb, lda, bmat + k0, ncols, ldb);
    const index_t k1 = k0 + nb;
    if (k1 < b)
      gemm_minus(b - k1, ncols, nb,
                 l + k1 + k0 * static_cast<std::size_t>(lda), lda, bmat + k0,
                 ldb, bmat + k1, ldb);
  }
}

template <class T>
void trsm_right_upper(const T* u, index_t b, index_t lda, T* bmat,
                      index_t mrows, index_t ldb) {
  if (b <= kTrsmBlock || mrows < MicroTile<T>::mr) {
    trsm_right_upper_naive(u, b, lda, bmat, mrows, ldb);
    return;
  }
  // Blocked: X(:, k0:k1) -= X(:, 0:k0)·U(0:k0, k0:k1) by gemm, then the
  // small triangular solve against the diagonal panel of U.
  for (index_t k0 = 0; k0 < b; k0 += kTrsmBlock) {
    const index_t nb = std::min(kTrsmBlock, b - k0);
    T* xk = bmat + k0 * static_cast<std::size_t>(ldb);
    if (k0 > 0)
      gemm_minus(mrows, nb, k0, bmat, ldb,
                 u + k0 * static_cast<std::size_t>(lda), lda, xk, ldb);
    trsm_right_upper_naive(u + k0 + k0 * static_cast<std::size_t>(lda), nb,
                           lda, xk, mrows, ldb);
  }
}

template <class T>
void gemv_minus(index_t m, index_t n, const T* a, index_t lda, const T* x,
                T* y) {
  for (index_t j = 0; j < n; ++j) {
    const T xj = x[j];
    if (xj == T{}) continue;
    const T* aj = a + j * lda;
    for (index_t i = 0; i < m; ++i) y[i] -= aj[i] * xj;
  }
}

template <class T>
void trsv_lower_unit(const T* a, index_t b, index_t lda, T* x) {
  for (index_t k = 0; k < b; ++k) {
    const T xk = x[k];
    if (xk == T{}) continue;
    const T* col = a + k * lda;
    for (index_t r = k + 1; r < b; ++r) x[r] -= col[r] * xk;
  }
}

template <class T>
void trsv_upper(const T* a, index_t b, index_t lda, T* x) {
  for (index_t k = b - 1; k >= 0; --k) {
    x[k] /= a[k + k * lda];
    const T xk = x[k];
    if (xk == T{}) continue;
    const T* col = a + k * lda;
    for (index_t r = 0; r < k; ++r) x[r] -= col[r] * xk;
  }
}

template <class T>
void trsv_upper_trans(const T* a, index_t b, index_t lda, T* x) {
  // Uᵀ is lower triangular; row k of Uᵀ is column k of U.
  for (index_t k = 0; k < b; ++k) {
    T sum = x[k];
    const T* col = a + k * lda;
    for (index_t r = 0; r < k; ++r) sum -= col[r] * x[r];
    x[k] = sum / col[k];
  }
}

template <class T>
void trsv_lower_unit_trans(const T* a, index_t b, index_t lda, T* x) {
  // Lᵀ is unit upper triangular; row k of Lᵀ is column k of L.
  for (index_t k = b - 1; k >= 0; --k) {
    T sum = x[k];
    const T* col = a + k * lda;
    for (index_t r = k + 1; r < b; ++r) sum -= col[r] * x[r];
    x[k] = sum;
  }
}

namespace ref {

template <class T>
void gemm_minus(index_t m, index_t n, index_t k, const T* a, index_t lda,
                const T* b, index_t ldb, T* c, index_t ldc) {
  gemm_minus_naive(m, n, k, a, lda, b, ldb, c, ldc);
}

template <class T>
void trsm_left_lower_unit(const T* l, index_t b, index_t lda, T* bmat,
                          index_t ncols, index_t ldb) {
  trsm_left_lower_unit_naive(l, b, lda, bmat, ncols, ldb);
}

template <class T>
void trsm_right_upper(const T* u, index_t b, index_t lda, T* bmat,
                      index_t mrows, index_t ldb) {
  trsm_right_upper_naive(u, b, lda, bmat, mrows, ldb);
}

template <class T>
void getrf(T* a, index_t b, index_t lda, const PivotPolicy& policy,
           PivotStats& stats, std::vector<PivotReplacement<T>>* replacements) {
  GESP_CHECK(!policy.pivot_in_block &&
                 policy.strategy == PanelPivot::static_,
             Errc::invalid_argument,
             "ref::getrf supports only the static strategy");
  getrf_panel(a, b, b, lda, policy, stats, 0, replacements);
}

template void gemm_minus(index_t, index_t, index_t, const double*, index_t,
                         const double*, index_t, double*, index_t);
template void gemm_minus(index_t, index_t, index_t, const float*, index_t,
                         const float*, index_t, float*, index_t);
template void gemm_minus(index_t, index_t, index_t, const Complex*, index_t,
                         const Complex*, index_t, Complex*, index_t);
template void trsm_left_lower_unit(const double*, index_t, index_t, double*,
                                   index_t, index_t);
template void trsm_left_lower_unit(const float*, index_t, index_t, float*,
                                   index_t, index_t);
template void trsm_left_lower_unit(const Complex*, index_t, index_t, Complex*,
                                   index_t, index_t);
template void trsm_right_upper(const double*, index_t, index_t, double*,
                               index_t, index_t);
template void trsm_right_upper(const float*, index_t, index_t, float*,
                               index_t, index_t);
template void trsm_right_upper(const Complex*, index_t, index_t, Complex*,
                               index_t, index_t);
template void getrf(double*, index_t, index_t, const PivotPolicy&,
                    PivotStats&, std::vector<PivotReplacement<double>>*);
template void getrf(float*, index_t, index_t, const PivotPolicy&,
                    PivotStats&, std::vector<PivotReplacement<float>>*);
template void getrf(Complex*, index_t, index_t, const PivotPolicy&,
                    PivotStats&, std::vector<PivotReplacement<Complex>>*);

}  // namespace ref

template void getrf(double*, index_t, index_t, const PivotPolicy&,
                    PivotStats&, std::span<index_t>,
                    std::vector<PivotReplacement<double>>*);
template void getrf(float*, index_t, index_t, const PivotPolicy&,
                    PivotStats&, std::span<index_t>,
                    std::vector<PivotReplacement<float>>*);
template void getrf(Complex*, index_t, index_t, const PivotPolicy&,
                    PivotStats&, std::span<index_t>,
                    std::vector<PivotReplacement<Complex>>*);
template void trsm_left_lower_unit(const double*, index_t, index_t, double*,
                                   index_t, index_t);
template void trsm_left_lower_unit(const float*, index_t, index_t, float*,
                                   index_t, index_t);
template void trsm_left_lower_unit(const Complex*, index_t, index_t, Complex*,
                                   index_t, index_t);
template void trsm_right_upper(const double*, index_t, index_t, double*,
                               index_t, index_t);
template void trsm_right_upper(const float*, index_t, index_t, float*,
                               index_t, index_t);
template void trsm_right_upper(const Complex*, index_t, index_t, Complex*,
                               index_t, index_t);
template void gemm_minus(index_t, index_t, index_t, const double*, index_t,
                         const double*, index_t, double*, index_t);
template void gemm_minus(index_t, index_t, index_t, const float*, index_t,
                         const float*, index_t, float*, index_t);
template void gemm_minus(index_t, index_t, index_t, const Complex*, index_t,
                         const Complex*, index_t, Complex*, index_t);
template void gemm_minus_overwrite(index_t, index_t, index_t, const double*,
                                   index_t, const double*, index_t, double*,
                                   index_t);
template void gemm_minus_overwrite(index_t, index_t, index_t, const float*,
                                   index_t, const float*, index_t, float*,
                                   index_t);
template void gemm_minus_overwrite(index_t, index_t, index_t, const Complex*,
                                   index_t, const Complex*, index_t, Complex*,
                                   index_t);
template double dot_minus(index_t, const double*, const double*);
template float dot_minus(index_t, const float*, const float*);
template Complex dot_minus(index_t, const Complex*, const Complex*);
template void gemv_minus(index_t, index_t, const double*, index_t,
                         const double*, double*);
template void gemv_minus(index_t, index_t, const float*, index_t,
                         const float*, float*);
template void gemv_minus(index_t, index_t, const Complex*, index_t,
                         const Complex*, Complex*);
template void trsv_lower_unit(const double*, index_t, index_t, double*);
template void trsv_lower_unit(const float*, index_t, index_t, float*);
template void trsv_lower_unit(const Complex*, index_t, index_t, Complex*);
template void trsv_upper(const double*, index_t, index_t, double*);
template void trsv_upper(const float*, index_t, index_t, float*);
template void trsv_upper(const Complex*, index_t, index_t, Complex*);
template void trsv_upper_trans(const double*, index_t, index_t, double*);
template void trsv_upper_trans(const float*, index_t, index_t, float*);
template void trsv_upper_trans(const Complex*, index_t, index_t, Complex*);
template void trsv_lower_unit_trans(const double*, index_t, index_t, double*);
template void trsv_lower_unit_trans(const float*, index_t, index_t, float*);
template void trsv_lower_unit_trans(const Complex*, index_t, index_t,
                                    Complex*);

}  // namespace gesp::dense
