// MatrixMarket coordinate-format reader/writer.
//
// Supports the fields the collections the paper draws from actually use:
// real / complex / integer / pattern values and general / symmetric /
// skew-symmetric / hermitian storage. Symmetric variants are expanded to
// full storage on read (the library always works on general matrices).
#pragma once

#include <iosfwd>
#include <string>

#include "common/types.hpp"
#include "sparse/csc.hpp"

namespace gesp::io {

/// Read a real MatrixMarket file. Complex files are rejected — use
/// read_matrix_market_complex.
sparse::CscMatrix<double> read_matrix_market(const std::string& path);
sparse::CscMatrix<double> read_matrix_market(std::istream& in);

/// Read a complex (or real, promoted) MatrixMarket file.
sparse::CscMatrix<Complex> read_matrix_market_complex(const std::string& path);
sparse::CscMatrix<Complex> read_matrix_market_complex(std::istream& in);

/// Write in general coordinate format with full precision (%.17g).
void write_matrix_market(const std::string& path,
                         const sparse::CscMatrix<double>& A);
void write_matrix_market(std::ostream& out,
                         const sparse::CscMatrix<double>& A);
void write_matrix_market(const std::string& path,
                         const sparse::CscMatrix<Complex>& A);
void write_matrix_market(std::ostream& out,
                         const sparse::CscMatrix<Complex>& A);

}  // namespace gesp::io
