#include "io/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "sparse/coo.hpp"

namespace gesp::io {
namespace {

struct MmHeader {
  enum class Field { real, complex_, integer, pattern } field;
  enum class Symmetry { general, symmetric, skew, hermitian } symmetry;
};

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

MmHeader parse_header(std::istream& in) {
  std::string line;
  GESP_CHECK(std::getline(in, line), Errc::io, "empty MatrixMarket stream");
  std::istringstream hs(line);
  std::string banner, object, format, field, symmetry;
  hs >> banner >> object >> format >> field >> symmetry;
  GESP_CHECK(banner == "%%MatrixMarket", Errc::io,
             "missing %%MatrixMarket banner");
  GESP_CHECK(lower(object) == "matrix", Errc::io,
             "only 'matrix' objects are supported");
  GESP_CHECK(lower(format) == "coordinate", Errc::io,
             "only coordinate format is supported (no dense arrays)");
  MmHeader h;
  const std::string f = lower(field);
  if (f == "real")
    h.field = MmHeader::Field::real;
  else if (f == "complex")
    h.field = MmHeader::Field::complex_;
  else if (f == "integer")
    h.field = MmHeader::Field::integer;
  else if (f == "pattern")
    h.field = MmHeader::Field::pattern;
  else
    throw Error(Errc::io, "unknown MatrixMarket field: " + field);
  const std::string s = lower(symmetry);
  if (s == "general")
    h.symmetry = MmHeader::Symmetry::general;
  else if (s == "symmetric")
    h.symmetry = MmHeader::Symmetry::symmetric;
  else if (s == "skew-symmetric")
    h.symmetry = MmHeader::Symmetry::skew;
  else if (s == "hermitian")
    h.symmetry = MmHeader::Symmetry::hermitian;
  else
    throw Error(Errc::io, "unknown MatrixMarket symmetry: " + symmetry);
  return h;
}

void read_size_line(std::istream& in, index_t& nrows, index_t& ncols,
                    count_t& nnz) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    long long r = 0, c = 0, z = 0;
    GESP_CHECK(static_cast<bool>(ls >> r >> c >> z), Errc::io,
               "malformed size line: " + line);
    GESP_CHECK(r > 0 && c > 0 && z >= 0, Errc::io,
               "nonsensical size line: " + line);
    GESP_CHECK(z <= static_cast<long long>(r) * c, Errc::io,
               "size line claims more entries than the matrix holds: " + line);
    nrows = static_cast<index_t>(r);
    ncols = static_cast<index_t>(c);
    nnz = z;
    return;
  }
  throw Error(Errc::io, "missing size line");
}

template <class T>
sparse::CscMatrix<T> read_body(std::istream& in, const MmHeader& h) {
  index_t nrows = 0, ncols = 0;
  count_t nnz = 0;
  read_size_line(in, nrows, ncols, nnz);
  sparse::CooMatrix<T> coo(nrows, ncols);
  coo.reserve(static_cast<std::size_t>(
      h.symmetry == MmHeader::Symmetry::general ? nnz : 2 * nnz));
  std::string line;
  count_t seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    long long i = 0, j = 0;
    GESP_CHECK(static_cast<bool>(ls >> i >> j), Errc::io,
               "malformed entry line: " + line);
    T v;
    if (h.field == MmHeader::Field::pattern) {
      v = T{1};
    } else if (h.field == MmHeader::Field::complex_) {
      double re = 0, im = 0;
      GESP_CHECK(static_cast<bool>(ls >> re >> im), Errc::io,
                 "malformed complex entry: " + line);
      GESP_CHECK(std::isfinite(re) && std::isfinite(im), Errc::io,
                 "non-finite entry value: " + line);
      if constexpr (is_complex_v<T>)
        v = T(re, im);
      else
        throw Error(Errc::io,
                    "complex file read through the real-valued reader");
    } else {
      double re = 0;
      GESP_CHECK(static_cast<bool>(ls >> re), Errc::io,
                 "malformed entry value: " + line);
      GESP_CHECK(std::isfinite(re), Errc::io,
                 "non-finite entry value: " + line);
      v = T{re};
    }
    const index_t ii = static_cast<index_t>(i - 1);
    const index_t jj = static_cast<index_t>(j - 1);
    GESP_CHECK(ii >= 0 && ii < nrows && jj >= 0 && jj < ncols, Errc::io,
               "entry index out of range: " + line);
    coo.add(ii, jj, v);
    if (ii != jj) {
      switch (h.symmetry) {
        case MmHeader::Symmetry::general:
          break;
        case MmHeader::Symmetry::symmetric:
          coo.add(jj, ii, v);
          break;
        case MmHeader::Symmetry::skew:
          coo.add(jj, ii, -v);
          break;
        case MmHeader::Symmetry::hermitian:
          if constexpr (is_complex_v<T>)
            coo.add(jj, ii, std::conj(v));
          else
            coo.add(jj, ii, v);
          break;
      }
    }
    ++seen;
  }
  GESP_CHECK(seen == nnz, Errc::io, "truncated MatrixMarket body");
  return coo.to_csc();
}

template <class T>
void write_body(std::ostream& out, const sparse::CscMatrix<T>& A) {
  out << "%%MatrixMarket matrix coordinate "
      << (is_complex_v<T> ? "complex" : "real") << " general\n";
  out << A.nrows << ' ' << A.ncols << ' ' << A.nnz() << '\n';
  char buf[128];
  for (index_t j = 0; j < A.ncols; ++j) {
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p) {
      if constexpr (is_complex_v<T>) {
        std::snprintf(buf, sizeof buf, "%d %d %.17g %.17g\n",
                      A.rowind[p] + 1, j + 1, A.values[p].real(),
                      A.values[p].imag());
      } else {
        std::snprintf(buf, sizeof buf, "%d %d %.17g\n", A.rowind[p] + 1,
                      j + 1, static_cast<double>(A.values[p]));
      }
      out << buf;
    }
  }
}

std::ifstream open_file(const std::string& path) {
  std::ifstream f(path);
  GESP_CHECK(f.good(), Errc::io, "cannot open " + path);
  return f;
}

}  // namespace

sparse::CscMatrix<double> read_matrix_market(const std::string& path) {
  auto f = open_file(path);
  return read_matrix_market(f);
}

sparse::CscMatrix<double> read_matrix_market(std::istream& in) {
  const MmHeader h = parse_header(in);
  GESP_CHECK(h.field != MmHeader::Field::complex_, Errc::io,
             "complex file: use read_matrix_market_complex");
  return read_body<double>(in, h);
}

sparse::CscMatrix<Complex> read_matrix_market_complex(
    const std::string& path) {
  auto f = open_file(path);
  return read_matrix_market_complex(f);
}

sparse::CscMatrix<Complex> read_matrix_market_complex(std::istream& in) {
  const MmHeader h = parse_header(in);
  return read_body<Complex>(in, h);
}

void write_matrix_market(const std::string& path,
                         const sparse::CscMatrix<double>& A) {
  std::ofstream f(path);
  GESP_CHECK(f.good(), Errc::io, "cannot open " + path + " for writing");
  write_matrix_market(f, A);
}

void write_matrix_market(std::ostream& out,
                         const sparse::CscMatrix<double>& A) {
  write_body(out, A);
}

void write_matrix_market(const std::string& path,
                         const sparse::CscMatrix<Complex>& A) {
  std::ofstream f(path);
  GESP_CHECK(f.good(), Errc::io, "cannot open " + path + " for writing");
  write_matrix_market(f, A);
}

void write_matrix_market(std::ostream& out,
                         const sparse::CscMatrix<Complex>& A) {
  write_body(out, A);
}

}  // namespace gesp::io
