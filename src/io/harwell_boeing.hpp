// Harwell-Boeing (HB) format reader/writer — the format of the collection
// the paper's testbed comes from [14]. Handles RUA/RSA/PUA-style headers
// (real / pattern, unsymmetric / symmetric assembled matrices) and the
// fixed-width Fortran edit descriptors used for the pointer/index/value
// blocks ((16I5), (3E26.16), 1P scale factors, D exponents, ...).
#pragma once

#include <iosfwd>
#include <string>

#include "common/types.hpp"
#include "sparse/csc.hpp"

namespace gesp::io {

/// Read an assembled real or pattern HB matrix; symmetric/skew storage is
/// expanded to general. Elemental (**E) and complex (C**) types are
/// rejected with Errc::io.
sparse::CscMatrix<double> read_harwell_boeing(const std::string& path);
sparse::CscMatrix<double> read_harwell_boeing(std::istream& in);

/// Write as an assembled real unsymmetric (RUA) matrix with formats
/// (10I8) / (3E25.16).
void write_harwell_boeing(const std::string& path,
                          const sparse::CscMatrix<double>& A,
                          const std::string& title = "GESP matrix",
                          const std::string& key = "GESP0001");
void write_harwell_boeing(std::ostream& out,
                          const sparse::CscMatrix<double>& A,
                          const std::string& title = "GESP matrix",
                          const std::string& key = "GESP0001");

namespace detail {
/// Parsed Fortran edit descriptor, e.g. "(16I5)" or "(1P,3E25.16E3)".
struct FortranFormat {
  int repeat = 1;   ///< fields per line
  char type = 'I';  ///< I, E, D, F or G
  int width = 0;    ///< field width in characters
};
/// Parse the descriptor; throws Errc::io on unsupported syntax.
FortranFormat parse_fortran_format(const std::string& spec);
}  // namespace detail

}  // namespace gesp::io
