#include "io/harwell_boeing.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/error.hpp"
#include "sparse/coo.hpp"

namespace gesp::io {
namespace detail {

FortranFormat parse_fortran_format(const std::string& spec) {
  // Grammar (subset): '(' [scale 'P' [',']] [repeat] TYPE width ['.' dec]
  //                   ['E' expwidth] ')'
  std::string s;
  for (char c : spec)
    if (!std::isspace(static_cast<unsigned char>(c)))
      s += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  GESP_CHECK(!s.empty() && s.front() == '(' && s.back() == ')', Errc::io,
             "bad Fortran format: " + spec);
  s = s.substr(1, s.size() - 2);
  std::size_t pos = 0;
  auto read_int = [&]() {
    std::size_t start = pos;
    while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos])))
      ++pos;
    GESP_CHECK(pos > start, Errc::io, "bad Fortran format: " + spec);
    return std::atoi(s.substr(start, pos - start).c_str());
  };
  FortranFormat f;
  // Optional scale factor "nP" or "nP,".
  if (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
    const std::size_t save = pos;
    const int first = read_int();
    if (pos < s.size() && s[pos] == 'P') {
      ++pos;  // scale factor only affects *writing*; ignore on read
      if (pos < s.size() && s[pos] == ',') ++pos;
    } else {
      pos = save;  // it was the repeat count
    }
    (void)first;
  }
  if (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos])))
    f.repeat = read_int();
  GESP_CHECK(pos < s.size(), Errc::io, "bad Fortran format: " + spec);
  f.type = s[pos++];
  GESP_CHECK(f.type == 'I' || f.type == 'E' || f.type == 'D' ||
                 f.type == 'F' || f.type == 'G',
             Errc::io, "unsupported Fortran edit type in: " + spec);
  f.width = read_int();
  // Trailing ".d" and exponent width are irrelevant for fixed-width reads.
  return f;
}

}  // namespace detail

namespace {

using detail::FortranFormat;
using detail::parse_fortran_format;

std::string get_line(std::istream& in, const char* what) {
  std::string line;
  GESP_CHECK(static_cast<bool>(std::getline(in, line)), Errc::io,
             std::string("truncated HB file: missing ") + what);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

/// Fixed-column substring, tolerant of short lines.
std::string field(const std::string& line, std::size_t pos, std::size_t len) {
  if (pos >= line.size()) return {};
  return line.substr(pos, len);
}

long long to_ll(const std::string& s, const char* what) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  GESP_CHECK(end != s.c_str(), Errc::io,
             std::string("bad integer in HB ") + what + ": '" + s + "'");
  return v;
}

/// Read `n` fixed-width integer fields laid out per `fmt`.
std::vector<long long> read_int_block(std::istream& in, count_t n,
                                      const FortranFormat& fmt,
                                      const char* what) {
  GESP_CHECK(fmt.type == 'I', Errc::io,
             std::string("expected integer format for ") + what);
  std::vector<long long> out;
  out.reserve(static_cast<std::size_t>(n));
  while (static_cast<count_t>(out.size()) < n) {
    const std::string line = get_line(in, what);
    for (int k = 0; k < fmt.repeat && static_cast<count_t>(out.size()) < n;
         ++k) {
      const std::string f =
          field(line, static_cast<std::size_t>(k) * fmt.width,
                static_cast<std::size_t>(fmt.width));
      if (f.find_first_not_of(' ') == std::string::npos)
        throw Error(Errc::io, std::string("short line in HB ") + what);
      out.push_back(to_ll(f, what));
    }
  }
  return out;
}

/// Read `n` fixed-width real fields; 'D' exponents are normalized to 'E'.
std::vector<double> read_real_block(std::istream& in, count_t n,
                                    const FortranFormat& fmt,
                                    const char* what) {
  GESP_CHECK(fmt.type != 'I', Errc::io,
             std::string("expected real format for ") + what);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  while (static_cast<count_t>(out.size()) < n) {
    const std::string line = get_line(in, what);
    for (int k = 0; k < fmt.repeat && static_cast<count_t>(out.size()) < n;
         ++k) {
      std::string f = field(line, static_cast<std::size_t>(k) * fmt.width,
                            static_cast<std::size_t>(fmt.width));
      if (f.find_first_not_of(' ') == std::string::npos)
        throw Error(Errc::io, std::string("short line in HB ") + what);
      std::replace(f.begin(), f.end(), 'D', 'E');
      std::replace(f.begin(), f.end(), 'd', 'e');
      char* end = nullptr;
      const double v = std::strtod(f.c_str(), &end);
      GESP_CHECK(end != f.c_str(), Errc::io,
                 std::string("bad real in HB ") + what + ": '" + f + "'");
      GESP_CHECK(std::isfinite(v), Errc::io,
                 std::string("non-finite value in HB ") + what + ": '" + f +
                     "'");
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace

sparse::CscMatrix<double> read_harwell_boeing(const std::string& path) {
  std::ifstream f(path);
  GESP_CHECK(f.good(), Errc::io, "cannot open " + path);
  return read_harwell_boeing(f);
}

sparse::CscMatrix<double> read_harwell_boeing(std::istream& in) {
  // Header line 1: title + key — informational only.
  (void)get_line(in, "title line");
  // Line 2: card counts.
  const std::string l2 = get_line(in, "card-count line");
  const long long rhscrd = to_ll(field(l2, 56, 14), "RHSCRD");
  // Line 3: type + dimensions.
  const std::string l3 = get_line(in, "type line");
  std::string mxtype = field(l3, 0, 3);
  std::transform(mxtype.begin(), mxtype.end(), mxtype.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  GESP_CHECK(mxtype.size() == 3, Errc::io, "bad MXTYPE");
  const char vtype = mxtype[0], stype = mxtype[1], atype = mxtype[2];
  GESP_CHECK(vtype == 'R' || vtype == 'P', Errc::io,
             "only real or pattern HB matrices are supported");
  GESP_CHECK(atype == 'A', Errc::io,
             "only assembled HB matrices are supported");
  const index_t nrow = static_cast<index_t>(to_ll(field(l3, 14, 14), "NROW"));
  const index_t ncol = static_cast<index_t>(to_ll(field(l3, 28, 14), "NCOL"));
  const count_t nnz = to_ll(field(l3, 42, 14), "NNZERO");
  GESP_CHECK(nrow > 0 && ncol > 0 && nnz >= 0, Errc::io,
             "bad HB dimensions");
  // Line 4: formats.
  const std::string l4 = get_line(in, "format line");
  const FortranFormat ptrfmt = parse_fortran_format(field(l4, 0, 16));
  const FortranFormat indfmt = parse_fortran_format(field(l4, 16, 16));
  FortranFormat valfmt{};
  if (vtype == 'R') valfmt = parse_fortran_format(field(l4, 32, 20));
  // Optional line 5 (right-hand-side descriptor) — skip.
  if (rhscrd > 0) (void)get_line(in, "rhs format line");

  const auto colptr = read_int_block(in, ncol + 1, ptrfmt, "column pointers");
  const auto rowind = read_int_block(in, nnz, indfmt, "row indices");
  std::vector<double> values;
  if (vtype == 'R')
    values = read_real_block(in, nnz, valfmt, "values");
  else
    values.assign(static_cast<std::size_t>(nnz), 1.0);

  sparse::CooMatrix<double> coo(nrow, ncol);
  coo.reserve(static_cast<std::size_t>(stype == 'U' ? nnz : 2 * nnz));
  for (index_t j = 0; j < ncol; ++j) {
    GESP_CHECK(colptr[j] >= 1 && colptr[j] <= colptr[j + 1] &&
                   colptr[j + 1] <= nnz + 1,
               Errc::io, "bad HB column pointer");
    for (long long p = colptr[j] - 1; p < colptr[j + 1] - 1; ++p) {
      const index_t i = static_cast<index_t>(rowind[p] - 1);
      GESP_CHECK(i >= 0 && i < nrow, Errc::io, "HB row index out of range");
      const double v = values[static_cast<std::size_t>(p)];
      coo.add(i, j, v);
      if (i != j) {
        if (stype == 'S')
          coo.add(j, i, v);
        else if (stype == 'Z')
          coo.add(j, i, -v);
        else
          GESP_CHECK(stype == 'U' || stype == 'R', Errc::io,
                     "unsupported HB symmetry type");
      }
    }
  }
  return coo.to_csc();
}

void write_harwell_boeing(const std::string& path,
                          const sparse::CscMatrix<double>& A,
                          const std::string& title, const std::string& key) {
  std::ofstream f(path);
  GESP_CHECK(f.good(), Errc::io, "cannot open " + path + " for writing");
  write_harwell_boeing(f, A, title, key);
}

void write_harwell_boeing(std::ostream& out,
                          const sparse::CscMatrix<double>& A,
                          const std::string& title, const std::string& key) {
  const count_t nnz = A.nnz();
  const auto lines = [](count_t items, int per_line) {
    return (items + per_line - 1) / per_line;
  };
  const count_t ptrcrd = lines(A.ncols + 1, 10);
  const count_t indcrd = lines(nnz, 10);
  const count_t valcrd = lines(nnz, 3);
  const count_t totcrd = ptrcrd + indcrd + valcrd;
  char buf[128];
  std::string t = title;
  t.resize(72, ' ');
  std::string k = key;
  k.resize(8, ' ');
  out << t << k << '\n';
  std::snprintf(buf, sizeof buf, "%14lld%14lld%14lld%14lld%14d\n",
                static_cast<long long>(totcrd), static_cast<long long>(ptrcrd),
                static_cast<long long>(indcrd), static_cast<long long>(valcrd),
                0);
  out << buf;
  std::snprintf(buf, sizeof buf, "RUA%11s%14d%14d%14lld%14d\n", "", A.nrows,
                A.ncols, static_cast<long long>(nnz), 0);
  out << buf;
  std::snprintf(buf, sizeof buf, "%-16s%-16s%-20s%-20s\n", "(10I8)", "(10I8)",
                "(3E25.16)", "");
  out << buf;
  auto write_ints = [&](auto begin, count_t n, count_t offset) {
    for (count_t i = 0; i < n; ++i) {
      std::snprintf(buf, sizeof buf, "%8lld",
                    static_cast<long long>(begin[i]) + offset);
      out << buf;
      if ((i + 1) % 10 == 0 || i + 1 == n) out << '\n';
    }
  };
  write_ints(A.colptr.begin(), A.ncols + 1, 1);
  write_ints(A.rowind.begin(), nnz, 1);
  for (count_t i = 0; i < nnz; ++i) {
    std::snprintf(buf, sizeof buf, "%25.16E", A.values[i]);
    out << buf;
    if ((i + 1) % 3 == 0 || i + 1 == nnz) out << '\n';
  }
}

}  // namespace gesp::io
