// Fundamental aliases shared by every GESP module.
#pragma once

#include <complex>
#include <cstdint>
#include <type_traits>

namespace gesp {

/// Index type for matrix dimensions and nonzero positions. 32-bit signed is
/// what the original SuperLU codes use; all testbed problems fit comfortably.
using index_t = std::int32_t;

/// Type used for flop counts and message/byte counters.
using count_t = std::int64_t;

using Complex = std::complex<double>;

/// real_t<T>: the real scalar underlying T (double for both double and
/// complex<double>).
template <class T>
struct real_type {
  using type = T;
};
template <class T>
struct real_type<std::complex<T>> {
  using type = T;
};
template <class T>
using real_t = typename real_type<T>::type;

template <class T>
inline constexpr bool is_complex_v = !std::is_same_v<T, real_t<T>>;

}  // namespace gesp
