#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gesp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 random bits into [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

index_t Rng::next_index(index_t n) {
  GESP_CHECK(n > 0, Errc::invalid_argument, "Rng::next_index needs n > 0");
  // Rejection-free modulo is fine here: n << 2^64 so bias is negligible for
  // workload generation, and determinism is what matters.
  return static_cast<index_t>(next_u64() % static_cast<std::uint64_t>(n));
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = next_double();
  double u2 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

}  // namespace gesp
