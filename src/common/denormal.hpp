// Scoped subnormal-flush control for the single-precision compute paths.
//
// Float underflows two orders of magnitude shallower than double
// (~1.2e-38), and the chemical/circuit testbed matrices produce plenty of
// update products below it; hardware handles subnormal operands through
// microcode assists at a ~100-cycle penalty each, which is enough to make
// the float factorization *slower* than the double one it is supposed to
// beat. Inside the guard's scope FTZ/DAZ flush those values to zero — a
// perturbation at 1e-38 scale, far below the sqrt(eps_f) tiny-pivot floor
// the mixed path already accepts, and invisible to the double-precision
// refinement that follows.
//
// MXCSR is per-thread but *inherited* by threads created inside the scope
// (clone copies the register state), so constructing the guard before the
// factorization ThreadPool covers every worker. The calling thread's mode
// is restored on scope exit; pool workers end with the scope.
#pragma once

#if defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#include <xmmintrin.h>
#define GESP_HAS_MXCSR 1
#endif

namespace gesp {

class DenormalFlushGuard {
 public:
  /// `active` = false makes the guard a no-op — the double paths keep
  /// full IEEE subnormal semantics (and their bitwise contracts).
  explicit DenormalFlushGuard(bool active) noexcept : active_(active) {
#ifdef GESP_HAS_MXCSR
    if (active_) {
      saved_ = _mm_getcsr();
      _mm_setcsr(saved_ | 0x8040u);  // FTZ (bit 15) | DAZ (bit 6)
    }
#endif
  }
  ~DenormalFlushGuard() {
#ifdef GESP_HAS_MXCSR
    if (active_) _mm_setcsr(saved_);
#endif
  }

  DenormalFlushGuard(const DenormalFlushGuard&) = delete;
  DenormalFlushGuard& operator=(const DenormalFlushGuard&) = delete;

 private:
  bool active_;
#ifdef GESP_HAS_MXCSR
  unsigned saved_ = 0;
#endif
};

}  // namespace gesp
