// Wall-clock timing helpers used by the driver and the benchmark harness.
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace gesp {

/// Simple monotonic stopwatch; seconds as double.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named phase timings (factor, solve, ...). Used by SolveStats.
class PhaseTimes {
 public:
  /// Add `seconds` to phase `name`.
  void add(const std::string& name, double seconds);

  /// Total recorded for `name` (0 if never recorded).
  double get(const std::string& name) const;

  const std::map<std::string, double>& all() const { return times_; }

 private:
  std::map<std::string, double> times_;
};

}  // namespace gesp
