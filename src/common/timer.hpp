// Wall-clock timing helpers used by the driver and the benchmark harness.
#pragma once

#include <chrono>
#include <map>
#include <string>

#include "common/types.hpp"

namespace gesp {

/// Simple monotonic stopwatch; seconds as double.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates named phase timings (factor, solve, ...). Used by SolveStats.
///
/// Phases are recorded per *epoch* (one epoch == one public driver call:
/// construction, solve(), refactorize(), ...). get() reports the latest
/// epoch in which the phase was recorded — "how long did the last solve's
/// refinement take" — while total() accumulates across the object's whole
/// life. Several add() calls within one epoch sum (a recovery ladder
/// factors several times inside one solve); a new epoch restarts the
/// phase's last-call value at its next add(). Without new_epoch() calls
/// everything lands in one epoch, so get() == total() — the historical
/// behaviour.
class PhaseTimes {
 public:
  /// Add `seconds` to phase `name` (in the current epoch).
  void add(const std::string& name, double seconds);

  /// Start a new epoch: each phase's next add() replaces its last-call
  /// value instead of summing into it. Phases untouched afterwards keep
  /// reporting their most recent recorded epoch.
  void new_epoch();

  /// Seconds recorded for `name` in its latest epoch (0 if never).
  double get(const std::string& name) const;

  /// Seconds recorded for `name` across all epochs (0 if never).
  double total(const std::string& name) const;

  /// Number of add() calls for `name` across all epochs.
  count_t calls(const std::string& name) const;

  /// Latest-epoch value per phase (the per-call report).
  std::map<std::string, double> all() const;

  /// Cumulative value per phase (safe to sum — no double counting).
  std::map<std::string, double> all_totals() const;

 private:
  struct Entry {
    double last = 0.0;   ///< sum within the latest recorded epoch
    double total = 0.0;  ///< sum across every epoch
    count_t calls = 0;
    long epoch = 0;  ///< epoch `last` belongs to
  };
  std::map<std::string, Entry> times_;
  long epoch_ = 0;
};

}  // namespace gesp
