// Deterministic random number generation for workload generators and tests.
//
// A thin wrapper over a fixed algorithm (splitmix64 seeding + xoshiro256**)
// so that generated testbed matrices are bit-identical across platforms and
// standard-library versions (std::mt19937 distributions are not portable).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace gesp {

/// Portable deterministic RNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n), n > 0.
  index_t next_index(index_t n);

  /// Standard normal variate (Box–Muller, deterministic).
  double normal();

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace gesp
