// Minimal persistent fork-join thread pool for the shared-memory
// factorization path (the SuperLU_MT-style execution the paper compares
// against). parallel_for splits an index range into per-worker chunks and
// joins before returning — the barrier semantics the block algorithm's
// iteration structure needs for bitwise-reproducible results.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace gesp {

class ThreadPool {
 public:
  /// Spawns workers; `threads` <= 1 means run everything inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run body(begin, end, worker_id) over [0, n) split into contiguous
  /// chunks, one per worker (including the calling thread); returns after
  /// all chunks complete. When n <= grain the body runs inline on the
  /// calling thread — tiny supernodes skip the wakeup/join round-trip.
  void parallel_for(index_t n,
                    const std::function<void(index_t, index_t, int)>& body,
                    index_t grain = 1);

 private:
  void worker_loop(int id);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_cv_, done_cv_;
  const std::function<void(index_t, index_t, int)>* body_ = nullptr;
  index_t total_ = 0;
  long generation_ = 0;
  int remaining_ = 0;
  bool shutdown_ = false;
};

/// Dependency-counter task DAG executed on a ThreadPool.
///
/// Build once with add_task/add_dependency (the graph must be acyclic —
/// the factorization only ever adds edges from earlier to later task ids),
/// then run() drains it: every worker pops ready tasks from a shared LIFO
/// stack, and completing a task decrements its successors' counters,
/// pushing any that reach zero. A graph is one-shot; build a fresh one per
/// factorization. If a task throws, no further tasks are started and the
/// first exception is rethrown from run() after all in-flight tasks
/// finish.
class TaskGraph {
 public:
  using TaskId = index_t;

  /// Registers a task; returns its id. Tasks with no dependencies are
  /// ready immediately when run() starts.
  TaskId add_task(std::function<void()> fn);

  /// Declares that `after` cannot start until `before` has completed.
  void add_dependency(TaskId before, TaskId after);

  index_t size() const { return static_cast<index_t>(tasks_.size()); }

  /// Executes the whole graph on `pool` (inline when the pool has one
  /// thread); returns when every task has completed.
  void run(ThreadPool& pool);

 private:
  struct Task {
    std::function<void()> fn;
    std::vector<TaskId> successors;
    index_t deps = 0;
  };
  std::vector<Task> tasks_;
};

}  // namespace gesp
