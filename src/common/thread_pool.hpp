// Minimal persistent fork-join thread pool for the shared-memory
// factorization path (the SuperLU_MT-style execution the paper compares
// against). parallel_for splits an index range into per-worker chunks and
// joins before returning — the barrier semantics the block algorithm's
// iteration structure needs for bitwise-reproducible results.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace gesp {

class ThreadPool {
 public:
  /// Spawns workers; `threads` <= 1 means run everything inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run body(begin, end, worker_id) over [0, n) split into contiguous
  /// chunks, one per worker (including the calling thread); returns after
  /// all chunks complete.
  void parallel_for(index_t n,
                    const std::function<void(index_t, index_t, int)>& body);

 private:
  void worker_loop(int id);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_cv_, done_cv_;
  const std::function<void(index_t, index_t, int)>* body_ = nullptr;
  index_t total_ = 0;
  long generation_ = 0;
  int remaining_ = 0;
  bool shutdown_ = false;
};

}  // namespace gesp
