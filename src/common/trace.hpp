// Structured event tracing — the measurement substrate behind the paper's
// Figure 8/9 performance story (per-phase and per-task timing via
// Apprentice on the T3E; chrome://tracing JSON here).
//
// Design constraints, in priority order:
//   * Zero overhead when off: every public entry point is a single relaxed
//     atomic load plus a predictable branch. Tracing never touches the
//     numeric data, so factors are bitwise identical with tracing on, off,
//     or toggled mid-run (test_observability pins this down).
//   * Thread safety without contention: each thread appends to its own
//     buffer (guarded by a per-buffer mutex that only the exporter ever
//     contends on), so concurrent task-DAG workers and MiniMPI ranks never
//     serialize against each other.
//   * Track identity: events carry a (rank, worker) pair mapped to Chrome's
//     (pid, tid). ThreadPool workers tag themselves with a worker id and
//     simulated MiniMPI ranks with a rank id, giving one track per worker
//     and per rank in the viewer — the layout of the paper's timelines.
//
// Span names must be string literals (or otherwise outlive the trace): the
// tracer stores the pointer, never a copy, keeping the hot path allocation
// free. The integer `id` (supernode, destination rank, ...) and double
// `value` (berr, bytes, ...) ride along as Chrome `args`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gesp::trace {

/// One recorded event. `ph` follows the Chrome trace format: 'B'egin /
/// 'E'nd span markers, 'i'nstant, 'C'ounter.
struct Event {
  const char* cat = nullptr;   ///< category (static string)
  const char* name = nullptr;  ///< event name (static string)
  char ph = 'i';
  std::int64_t ts_ns = 0;  ///< nanoseconds since collection started
  int rank = 0;            ///< simulated MPI rank (pid track)
  int worker = 0;          ///< ThreadPool worker (tid track)
  std::int64_t id = -1;    ///< optional integer arg (-1 = absent)
  double value = 0.0;      ///< counter / instant payload
  bool has_value = false;
};

/// True while events are being collected (single relaxed atomic load).
bool enabled() noexcept;

/// Clear any previous capture and start collecting.
void start();

/// Stop collecting; recorded events stay available for export.
void stop();

/// Drop all recorded events (does not change enabled()).
void clear();

/// Number of events recorded so far (exporter-side; takes the buffer locks).
std::size_t event_count();

/// Snapshot of every recorded event, merged across threads in timestamp
/// order — the validation hook for tests.
std::vector<Event> snapshot();

/// Serialize the capture as Chrome trace JSON ({"traceEvents":[...]}).
/// `extra_json` — optional extra top-level members (e.g. a "metrics"
/// object), spliced verbatim; must be either empty or a comma-led fragment
/// produced by the caller, e.g. R"("metrics":{...})".
std::string to_chrome_json(const std::string& extra_json = {});

/// Write to_chrome_json() to `path`; throws Errc::io on failure.
void write_chrome_json(const std::string& path,
                       const std::string& extra_json = {});

/// Tag the calling thread's track. ThreadPool workers set `worker`,
/// simulated MiniMPI rank threads set `rank`; a value of -1 leaves the
/// respective id unchanged. Cheap enough to call unconditionally.
void set_thread_track(int rank, int worker) noexcept;

/// The calling thread's current (rank, worker) track.
int thread_rank() noexcept;
int thread_worker() noexcept;

/// RAII scoped span: emits 'B' on construction and 'E' on destruction when
/// tracing is enabled (both on the calling thread's track, so spans nest
/// per track by construction). Inert when tracing is off.
class Span {
 public:
  Span(const char* cat, const char* name, std::int64_t id = -1) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Close the span now (for phases that do not map onto a C++ scope);
  /// the destructor then does nothing.
  void end();

 private:
  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  std::int64_t id_ = -1;
  bool active_ = false;
};

/// Point event (pivot replaced, recovery escalation, refinement step...).
void instant(const char* cat, const char* name, std::int64_t id = -1);
/// Point event carrying a numeric payload (berr value, bytes...).
void instant_value(const char* cat, const char* name, double value,
                   std::int64_t id = -1);
/// Counter track sample (queue depth, in-flight messages...).
void counter(const char* name, double value);

}  // namespace gesp::trace

/// Scoped span with a unique local name; expands to nothing observable when
/// tracing is off (one relaxed load in the Span constructor).
#define GESP_TRACE_CONCAT2(a, b) a##b
#define GESP_TRACE_CONCAT(a, b) GESP_TRACE_CONCAT2(a, b)
#define GESP_TRACE_SPAN(cat, name) \
  ::gesp::trace::Span GESP_TRACE_CONCAT(gesp_trace_span_, __LINE__)(cat, name)
#define GESP_TRACE_SPAN_ID(cat, name, id)                                  \
  ::gesp::trace::Span GESP_TRACE_CONCAT(gesp_trace_span_, __LINE__)(cat,   \
                                                                    name, \
                                                                    id)
