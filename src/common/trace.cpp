#include "common/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "common/error.hpp"

namespace gesp::trace {
namespace {

using clock = std::chrono::steady_clock;

std::atomic<bool> g_enabled{false};

/// Capture epoch: buffers stamped with an older epoch are logically empty.
/// Bumping the epoch in start()/clear() "clears" every thread's buffer
/// without touching them (threads lazily reset on their next append).
std::atomic<std::uint64_t> g_epoch{1};

clock::time_point& origin() {
  static clock::time_point t0 = clock::now();
  return t0;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                              origin())
      .count();
}

/// Per-thread event buffer. Owned jointly by the thread (thread_local
/// shared_ptr) and the global registry, so buffers survive thread exit and
/// the exporter can read them after the pool/ranks have joined.
struct ThreadBuf {
  std::mutex mu;  ///< uncontended except at export time
  std::vector<Event> events;
  std::uint64_t epoch = 0;
  int rank = 0;
  int worker = 0;
};

struct BufRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
};

BufRegistry& registry() {
  static BufRegistry* r = new BufRegistry;  // leaked: outlives all threads
  return *r;
}

ThreadBuf& local_buf() {
  thread_local std::shared_ptr<ThreadBuf> buf = [] {
    auto b = std::make_shared<ThreadBuf>();
    BufRegistry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.bufs.push_back(b);
    return b;
  }();
  return *buf;
}

void append(Event e) {
  ThreadBuf& b = local_buf();
  e.rank = b.rank;
  e.worker = b.worker;
  std::lock_guard<std::mutex> lock(b.mu);
  const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  if (b.epoch != epoch) {
    b.events.clear();
    b.epoch = epoch;
  }
  b.events.push_back(e);
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void start() {
  clear();
  origin() = clock::now();
  g_enabled.store(true, std::memory_order_release);
}

void stop() { g_enabled.store(false, std::memory_order_release); }

void clear() { g_epoch.fetch_add(1, std::memory_order_acq_rel); }

std::vector<Event> snapshot() {
  std::vector<Event> out;
  const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  BufRegistry& r = registry();
  std::lock_guard<std::mutex> rlock(r.mu);
  for (const auto& b : r.bufs) {
    std::lock_guard<std::mutex> lock(b->mu);
    if (b->epoch != epoch) continue;
    out.insert(out.end(), b->events.begin(), b->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

std::size_t event_count() { return snapshot().size(); }

void set_thread_track(int rank, int worker) noexcept {
  ThreadBuf& b = local_buf();
  if (rank >= 0) b.rank = rank;
  if (worker >= 0) b.worker = worker;
}

int thread_rank() noexcept { return local_buf().rank; }
int thread_worker() noexcept { return local_buf().worker; }

Span::Span(const char* cat, const char* name, std::int64_t id) noexcept {
  if (!enabled()) return;
  cat_ = cat;
  name_ = name;
  id_ = id;
  active_ = true;
  Event e;
  e.cat = cat;
  e.name = name;
  e.ph = 'B';
  e.ts_ns = now_ns();
  e.id = id;
  append(e);
}

Span::~Span() { end(); }

void Span::end() {
  // The end marker is emitted even if tracing stopped mid-span, so every
  // 'B' in a capture has a matching 'E' (the balance the validator checks).
  if (!active_) return;
  active_ = false;
  Event e;
  e.cat = cat_;
  e.name = name_;
  e.ph = 'E';
  e.ts_ns = now_ns();
  e.id = id_;
  append(e);
}

void instant(const char* cat, const char* name, std::int64_t id) {
  if (!enabled()) return;
  Event e;
  e.cat = cat;
  e.name = name;
  e.ph = 'i';
  e.ts_ns = now_ns();
  e.id = id;
  append(e);
}

void instant_value(const char* cat, const char* name, double value,
                   std::int64_t id) {
  if (!enabled()) return;
  Event e;
  e.cat = cat;
  e.name = name;
  e.ph = 'i';
  e.ts_ns = now_ns();
  e.id = id;
  e.value = value;
  e.has_value = true;
  append(e);
}

void counter(const char* name, double value) {
  if (!enabled()) return;
  Event e;
  e.cat = "counter";
  e.name = name;
  e.ph = 'C';
  e.ts_ns = now_ns();
  e.value = value;
  e.has_value = true;
  append(e);
}

std::string to_chrome_json(const std::string& extra_json) {
  const std::vector<Event> events = snapshot();
  std::string out;
  out.reserve(events.size() * 96 + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  // Track-name metadata so the viewer labels pids/tids like the paper's
  // timelines: one process per simulated rank, one thread per pool worker.
  std::map<int, std::vector<int>> tracks;  // rank -> workers seen
  for (const Event& e : events) tracks[e.rank].push_back(e.worker);
  bool first = true;
  char buf[64];
  for (auto& [rank, workers] : tracks) {
    std::sort(workers.begin(), workers.end());
    workers.erase(std::unique(workers.begin(), workers.end()),
                  workers.end());
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof buf, "%d", rank);
    out += "{\"ph\":\"M\",\"pid\":";
    out += buf;
    out += ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"rank ";
    out += buf;
    out += "\"}}";
    for (const int w : workers) {
      out += ",{\"ph\":\"M\",\"pid\":";
      out += buf;
      out += ",\"tid\":";
      char wbuf[32];
      std::snprintf(wbuf, sizeof wbuf, "%d", w);
      out += wbuf;
      out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker ";
      out += wbuf;
      out += "\"}}";
    }
  }
  for (const Event& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"";
    out += e.ph;
    out += "\",\"name\":\"";
    append_json_escaped(out, e.name ? e.name : "?");
    out += "\",\"cat\":\"";
    append_json_escaped(out, e.cat ? e.cat : "gesp");
    out += "\"";
    // Chrome wants microseconds; keep nanosecond resolution as a fraction.
    std::snprintf(buf, sizeof buf, ",\"ts\":%lld.%03lld",
                  static_cast<long long>(e.ts_ns / 1000),
                  static_cast<long long>(e.ts_ns % 1000));
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"pid\":%d,\"tid\":%d", e.rank,
                  e.worker);
    out += buf;
    if (e.ph == 'i') out += ",\"s\":\"t\"";
    if (e.id >= 0 || e.has_value) {
      out += ",\"args\":{";
      bool acomma = false;
      if (e.id >= 0) {
        std::snprintf(buf, sizeof buf, "\"id\":%lld",
                      static_cast<long long>(e.id));
        out += buf;
        acomma = true;
      }
      if (e.has_value) {
        if (acomma) out += ',';
        std::snprintf(buf, sizeof buf, "\"value\":%.17g", e.value);
        out += buf;
      }
      out += '}';
    } else if (e.ph == 'C') {
      // Counters need an args payload even when zero.
      out += ",\"args\":{\"value\":0}";
    }
    out += '}';
  }
  out += ']';
  if (!extra_json.empty()) {
    out += ',';
    out += extra_json;
  }
  out += '}';
  return out;
}

void write_chrome_json(const std::string& path,
                       const std::string& extra_json) {
  const std::string json = to_chrome_json(extra_json);
  std::FILE* f = std::fopen(path.c_str(), "w");
  GESP_CHECK(f != nullptr, Errc::io, "cannot open trace file " + path);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int rc = std::fclose(f);
  GESP_CHECK(written == json.size() && rc == 0, Errc::io,
             "short write to trace file " + path);
}

}  // namespace gesp::trace
