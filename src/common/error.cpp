#include "common/error.hpp"

namespace gesp {

const char* errc_name(Errc c) noexcept {
  switch (c) {
    case Errc::invalid_argument:
      return "invalid_argument";
    case Errc::io:
      return "io_error";
    case Errc::structurally_singular:
      return "structurally_singular";
    case Errc::numerically_singular:
      return "numerically_singular";
    case Errc::unstable:
      return "unstable";
    case Errc::comm:
      return "comm_error";
    case Errc::overloaded:
      return "overloaded";
    case Errc::internal:
      return "internal_error";
  }
  return "unknown";
}

void throw_error(Errc code, const std::string& what) {
  throw Error(code, what);
}

}  // namespace gesp
