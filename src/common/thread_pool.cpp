#include "common/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace gesp {

ThreadPool::ThreadPool(int threads) {
  const int extra = std::max(0, threads - 1);
  // Workers inherit the spawner's trace rank so their spans land on
  // "rank R / worker W" tracks even when a pool runs inside a simulated
  // MiniMPI rank thread.
  const int rank = trace::thread_rank();
  workers_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i)
    workers_.emplace_back([this, i, rank] {
      trace::set_thread_track(rank, i + 1);
      worker_loop(i + 1);
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    ++generation_;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(
    index_t n, const std::function<void(index_t, index_t, int)>& body,
    index_t grain) {
  const int P = num_threads();
  if (P == 1 || n <= 1 || n <= grain) {
    if (n > 0) body(0, n, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    total_ = n;
    remaining_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  // The calling thread takes chunk 0.
  const index_t chunk = (n + P - 1) / P;
  body(0, std::min(chunk, n), 0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  body_ = nullptr;
}

void ThreadPool::worker_loop(int id) {
  long seen = 0;
  while (true) {
    const std::function<void(index_t, index_t, int)>* body = nullptr;
    index_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen; });
      seen = generation_;
      if (shutdown_) return;
      body = body_;
      n = total_;
    }
    if (body) {
      const int P = num_threads();
      const index_t chunk = (n + P - 1) / P;
      const index_t begin = std::min<index_t>(n, chunk * id);
      const index_t end = std::min<index_t>(n, begin + chunk);
      if (begin < end) (*body)(begin, end, id);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

TaskGraph::TaskId TaskGraph::add_task(std::function<void()> fn) {
  tasks_.push_back(Task{std::move(fn), {}, 0});
  return static_cast<TaskId>(tasks_.size()) - 1;
}

void TaskGraph::add_dependency(TaskId before, TaskId after) {
  tasks_[static_cast<std::size_t>(before)].successors.push_back(after);
  ++tasks_[static_cast<std::size_t>(after)].deps;
}

void TaskGraph::run(ThreadPool& pool) {
  const index_t n = size();
  if (n == 0) return;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<index_t> pending(static_cast<std::size_t>(n));
  std::vector<TaskId> ready;
  ready.reserve(static_cast<std::size_t>(n));
  for (index_t t = 0; t < n; ++t) {
    pending[static_cast<std::size_t>(t)] =
        tasks_[static_cast<std::size_t>(t)].deps;
    if (pending[static_cast<std::size_t>(t)] == 0) ready.push_back(t);
  }
  index_t completed = 0;
  bool stop = false;
  std::exception_ptr err;
  metrics::Counter& tasks_run = metrics::global().counter("taskgraph.tasks");
  trace::counter("taskgraph.ready", static_cast<double>(ready.size()));

  const std::function<void(index_t, index_t, int)> drain =
      [&](index_t, index_t, int) {
        std::unique_lock<std::mutex> lock(mu);
        for (;;) {
          cv.wait(lock, [&] { return stop || !ready.empty(); });
          if (stop) return;
          const TaskId t = ready.back();
          ready.pop_back();
          trace::counter("taskgraph.ready",
                         static_cast<double>(ready.size()));
          lock.unlock();
          std::exception_ptr e;
          try {
            tasks_[static_cast<std::size_t>(t)].fn();
          } catch (...) {
            e = std::current_exception();
          }
          tasks_run.inc();
          lock.lock();
          if (e) {
            if (!err) err = e;
            stop = true;
            cv.notify_all();
            return;
          }
          bool pushed = false;
          for (TaskId s : tasks_[static_cast<std::size_t>(t)].successors)
            if (--pending[static_cast<std::size_t>(s)] == 0) {
              ready.push_back(s);
              pushed = true;
            }
          if (pushed)
            trace::counter("taskgraph.ready",
                           static_cast<double>(ready.size()));
          if (++completed == n) {
            stop = true;
            cv.notify_all();
            return;
          }
          if (!ready.empty()) cv.notify_all();
        }
      };
  // grain=0: with P workers this always fans out; with P==1 it drains
  // inline on the calling thread.
  pool.parallel_for(static_cast<index_t>(pool.num_threads()), drain,
                    /*grain=*/0);
  if (err) std::rethrow_exception(err);
}

}  // namespace gesp
