#include "common/thread_pool.hpp"

#include <algorithm>

namespace gesp {

ThreadPool::ThreadPool(int threads) {
  const int extra = std::max(0, threads - 1);
  workers_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i)
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    ++generation_;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(
    index_t n, const std::function<void(index_t, index_t, int)>& body) {
  const int P = num_threads();
  if (P == 1 || n <= 1) {
    if (n > 0) body(0, n, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    total_ = n;
    remaining_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  // The calling thread takes chunk 0.
  const index_t chunk = (n + P - 1) / P;
  body(0, std::min(chunk, n), 0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  body_ = nullptr;
}

void ThreadPool::worker_loop(int id) {
  long seen = 0;
  while (true) {
    const std::function<void(index_t, index_t, int)>* body = nullptr;
    index_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen; });
      seen = generation_;
      if (shutdown_) return;
      body = body_;
      n = total_;
    }
    if (body) {
      const int P = num_threads();
      const index_t chunk = (n + P - 1) / P;
      const index_t begin = std::min<index_t>(n, chunk * id);
      const index_t end = std::min<index_t>(n, begin + chunk);
      if (begin < end) (*body)(begin, end, id);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace gesp
