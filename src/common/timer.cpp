#include "common/timer.hpp"

namespace gesp {

void PhaseTimes::add(const std::string& name, double seconds) {
  times_[name] += seconds;
}

double PhaseTimes::get(const std::string& name) const {
  auto it = times_.find(name);
  return it == times_.end() ? 0.0 : it->second;
}

}  // namespace gesp
