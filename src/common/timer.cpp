#include "common/timer.hpp"

namespace gesp {

void PhaseTimes::add(const std::string& name, double seconds) {
  Entry& e = times_[name];
  if (e.epoch != epoch_) {
    e.last = 0.0;
    e.epoch = epoch_;
  }
  e.last += seconds;
  e.total += seconds;
  ++e.calls;
}

void PhaseTimes::new_epoch() { ++epoch_; }

double PhaseTimes::get(const std::string& name) const {
  auto it = times_.find(name);
  return it == times_.end() ? 0.0 : it->second.last;
}

double PhaseTimes::total(const std::string& name) const {
  auto it = times_.find(name);
  return it == times_.end() ? 0.0 : it->second.total;
}

count_t PhaseTimes::calls(const std::string& name) const {
  auto it = times_.find(name);
  return it == times_.end() ? 0 : it->second.calls;
}

std::map<std::string, double> PhaseTimes::all() const {
  std::map<std::string, double> out;
  for (const auto& [name, e] : times_) out.emplace(name, e.last);
  return out;
}

std::map<std::string, double> PhaseTimes::all_totals() const {
  std::map<std::string, double> out;
  for (const auto& [name, e] : times_) out.emplace(name, e.total);
  return out;
}

}  // namespace gesp
