// Typed metrics registry — counters, gauges and histograms with stable
// references, replacing the ad-hoc stat fields that used to be scattered
// through the transport and the solver.
//
// Concurrency model: metric objects are plain atomics, safe to update from
// any thread (task-DAG workers, MiniMPI rank threads) with no locking; the
// registry map itself is mutex-protected and hands out references that
// stay valid for the registry's lifetime, so hot paths look a metric up
// once and then update it lock free.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace gesp::metrics {

/// Monotonic integer counter (messages sent, pivots replaced, ...).
class Counter {
 public:
  void inc(count_t delta = 1) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  count_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<count_t> v_{0};
};

/// Windowed-rate reader over a Counter: each tick() returns the event rate
/// (events/second) since the previous tick, without resetting the counter —
/// the lifetime total stays intact for exporters while a controller samples
/// per-window arrival rates. One RateWindow per reader; the counter itself
/// may be updated concurrently from any thread.
class RateWindow {
 public:
  explicit RateWindow(const Counter& c) : c_(&c) {}

  /// Rate over (last tick, now]. `now_s` is any monotonic clock reading in
  /// seconds. The first call establishes the window start and returns 0.
  double tick(double now_s) noexcept {
    const count_t cur = c_->value();
    if (last_t_ < 0.0) {
      last_ = cur;
      last_t_ = now_s;
      return 0.0;
    }
    const double dt = now_s - last_t_;
    const double events = static_cast<double>(cur - last_);
    last_ = cur;
    last_t_ = now_s;
    return dt > 0.0 ? events / dt : 0.0;
  }

  /// Events since the previous tick without advancing the window.
  count_t pending() const noexcept { return c_->value() - last_; }

 private:
  const Counter* c_;
  count_t last_{0};
  double last_t_{-1.0};
};

/// Last-written double (berr, pivot growth, queue depth, ...).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Lock-free histogram over power-of-two buckets: bucket k counts samples
/// in (2^(k-1), 2^k] (bucket 0 counts v <= 1). Tracks count/sum/min/max
/// exactly; the buckets give the shape (message sizes, task durations).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(double v) noexcept;

  count_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double min() const noexcept { return min_.load(std::memory_order_relaxed); }
  double max() const noexcept { return max_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const count_t c = count();
    return c > 0 ? sum() / static_cast<double>(c) : 0.0;
  }
  count_t bucket(int k) const noexcept {
    return buckets_[static_cast<std::size_t>(k)].load(
        std::memory_order_relaxed);
  }

  /// Approximate q-quantile (q in [0,1]) from the power-of-two buckets:
  /// linear interpolation inside the bucket where the cumulative count
  /// crosses q·count, clamped to the exact [min, max]. Resolution is a
  /// factor of two, so record latencies in microseconds (not seconds) to
  /// keep sub-second tails distinguishable. Returns 0 when empty.
  double quantile(double q) const noexcept;

  /// Fold another histogram's samples into this one: bucket counts add,
  /// count/sum add, min/max widen. Quantiles computed afterwards come from
  /// the merged bucket counts, not either operand alone — the serving tier
  /// aggregates per-rank serve.latency histograms this way. `other` should
  /// be quiescent while merged (concurrent record() on it may be missed).
  void merge(const Histogram& other) noexcept;

  /// merge() from raw components — the wire form used when a histogram
  /// arrives from another rank as a flat blob. `buckets` must hold kBuckets
  /// entries.
  void merge_raw(count_t count, double sum, double mn, double mx,
                 const count_t* buckets) noexcept;

  void reset() noexcept;

  /// Value-type copy of a histogram at one instant — what a windowed reader
  /// works with after the live histogram has been handed back to writers.
  struct Snapshot {
    count_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    count_t buckets[kBuckets] = {};

    double mean() const noexcept {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    /// Same estimator as Histogram::quantile, over the frozen buckets.
    double quantile(double q) const noexcept;
  };

  /// Atomically drain the histogram into a Snapshot and reset it to empty,
  /// so successive calls partition the sample stream into disjoint windows
  /// (the serve controller's per-window p99). Samples recorded concurrently
  /// with the swap land in exactly one of the two windows; none are lost,
  /// though a racing record() may split its count/sum across the boundary —
  /// harmless for rate/quantile use. Snapshot quantiles derive the total
  /// from the drained buckets, so a torn count cannot skew them.
  Snapshot snapshot_and_reset() noexcept;

 private:
  std::atomic<count_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::atomic<count_t> buckets_[kBuckets] = {};
};

/// Named metric collection. counter()/gauge()/histogram() create on first
/// use and return a stable reference; requesting an existing name as a
/// different type throws Errc::invalid_argument.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Read-only lookups: nullptr when absent (no creation on the read path).
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Zero every metric (entries stay registered; references stay valid).
  void reset();

  /// Registered names, sorted, with a type tag ("counter"/"gauge"/
  /// "histogram") — the iteration hook for tests and exporters.
  std::vector<std::pair<std::string, std::string>> names() const;

  /// JSON object {"name":{"type":...,...},...} — suitable for embedding in
  /// the Chrome trace export or a standalone metrics file.
  std::string to_json() const;

 private:
  enum class Kind { counter, gauge, histogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };
  Entry& get(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// Process-wide registry: the transport, the scheduler and the solver all
/// publish here (names are dot-prefixed per subsystem: "minimpi.*",
/// "taskgraph.*", "solver.*").
Registry& global();

}  // namespace gesp::metrics
