#include "common/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.hpp"

namespace gesp::metrics {
namespace {

void atomic_add(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

int bucket_of(double v) noexcept {
  if (!(v > 1.0)) return 0;
  const int k = static_cast<int>(std::ceil(std::log2(v)));
  return k < 0 ? 0
               : (k >= Histogram::kBuckets ? Histogram::kBuckets - 1 : k);
}

// Shared quantile estimator over power-of-two bucket counts (the live
// histogram and its frozen Snapshot use identical interpolation).
double bucket_quantile(double q, const count_t* buckets, double total,
                       double mn, double mx) noexcept {
  if (total <= 0.0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the requested sample (1-based, ceil as in nearest-rank).
  const double rank = q * total;
  double cum = 0.0;
  for (int k = 0; k < Histogram::kBuckets; ++k) {
    const double c = static_cast<double>(buckets[k]);
    if (c == 0.0) continue;
    if (cum + c >= rank) {
      // Bucket k covers (2^(k-1), 2^k]; bucket 0 covers (-inf, 1].
      const double lo = k == 0 ? 0.0 : std::ldexp(1.0, k - 1);
      const double hi = std::ldexp(1.0, k);
      const double frac = (rank - cum) / c;
      double v = lo + frac * (hi - lo);
      v = std::max(v, mn);
      v = std::min(v, mx);
      return v;
    }
    cum += c;
  }
  return mx;
}

}  // namespace

void Histogram::record(double v) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
  buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
      1, std::memory_order_relaxed);
}

void Histogram::merge(const Histogram& other) noexcept {
  count_t buckets[kBuckets];
  for (int k = 0; k < kBuckets; ++k) buckets[k] = other.bucket(k);
  merge_raw(other.count(), other.sum(), other.min(), other.max(), buckets);
}

void Histogram::merge_raw(count_t count, double sum, double mn, double mx,
                          const count_t* buckets) noexcept {
  if (count == 0) return;  // empty operand: min/max are sentinel infinities
  count_.fetch_add(count, std::memory_order_relaxed);
  atomic_add(sum_, sum);
  atomic_min(min_, mn);
  atomic_max(max_, mx);
  for (int k = 0; k < kBuckets; ++k) {
    if (buckets[k] != 0)
      buckets_[static_cast<std::size_t>(k)].fetch_add(
          buckets[k], std::memory_order_relaxed);
  }
}

double Histogram::quantile(double q) const noexcept {
  const count_t total = count();
  if (total == 0) return 0.0;
  count_t buckets[kBuckets];
  for (int k = 0; k < kBuckets; ++k) buckets[k] = bucket(k);
  return bucket_quantile(q, buckets, static_cast<double>(total), min(),
                         max());
}

double Histogram::Snapshot::quantile(double q) const noexcept {
  // Total from the drained buckets, not the (possibly torn) count field.
  double total = 0.0;
  for (const count_t b : buckets) total += static_cast<double>(b);
  return bucket_quantile(q, buckets, total, min, max);
}

Histogram::Snapshot Histogram::snapshot_and_reset() noexcept {
  Snapshot s;
  s.count = count_.exchange(0, std::memory_order_relaxed);
  s.sum = sum_.exchange(0.0, std::memory_order_relaxed);
  s.min = min_.exchange(std::numeric_limits<double>::infinity(),
                        std::memory_order_relaxed);
  s.max = max_.exchange(-std::numeric_limits<double>::infinity(),
                        std::memory_order_relaxed);
  for (int k = 0; k < kBuckets; ++k)
    s.buckets[k] =
        buckets_[static_cast<std::size_t>(k)].exchange(
            0, std::memory_order_relaxed);
  if (s.count == 0) {
    s.min = 0.0;
    s.max = 0.0;
  }
  return s;
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Registry::Entry& Registry::get(const std::string& name, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = kind;
    switch (kind) {
      case Kind::counter:
        e.c = std::make_unique<Counter>();
        break;
      case Kind::gauge:
        e.g = std::make_unique<Gauge>();
        break;
      case Kind::histogram:
        e.h = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(name, std::move(e)).first;
  }
  GESP_CHECK(it->second.kind == kind, Errc::invalid_argument,
             "metric '" + name + "' already registered with another type");
  return it->second;
}

Counter& Registry::counter(const std::string& name) {
  return *get(name, Kind::counter).c;
}

Gauge& Registry::gauge(const std::string& name) {
  return *get(name, Kind::gauge).g;
}

Histogram& Registry::histogram(const std::string& name) {
  return *get(name, Kind::histogram).h;
}

const Counter* Registry::find_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::counter
             ? it->second.c.get()
             : nullptr;
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::gauge
             ? it->second.g.get()
             : nullptr;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::histogram
             ? it->second.h.get()
             : nullptr;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::counter:
        e.c->reset();
        break;
      case Kind::gauge:
        e.g->reset();
        break;
      case Kind::histogram:
        e.h->reset();
        break;
    }
  }
}

std::vector<std::pair<std::string, std::string>> Registry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    const char* kind = e.kind == Kind::counter
                           ? "counter"
                           : (e.kind == Kind::gauge ? "gauge" : "histogram");
    out.emplace_back(name, kind);
  }
  return out;
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  char buf[96];
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    for (const char c : name) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\":";
    switch (e.kind) {
      case Kind::counter:
        std::snprintf(buf, sizeof buf,
                      "{\"type\":\"counter\",\"value\":%lld}",
                      static_cast<long long>(e.c->value()));
        out += buf;
        break;
      case Kind::gauge:
        std::snprintf(buf, sizeof buf,
                      "{\"type\":\"gauge\",\"value\":%.17g}",
                      e.g->value());
        out += buf;
        break;
      case Kind::histogram: {
        const Histogram& h = *e.h;
        const count_t n = h.count();
        std::snprintf(buf, sizeof buf,
                      "{\"type\":\"histogram\",\"count\":%lld",
                      static_cast<long long>(n));
        out += buf;
        std::snprintf(buf, sizeof buf,
                      ",\"sum\":%.17g,\"min\":%.17g,\"max\":%.17g",
                      n > 0 ? h.sum() : 0.0, n > 0 ? h.min() : 0.0,
                      n > 0 ? h.max() : 0.0);
        out += buf;
        out += ",\"buckets\":{";
        bool bfirst = true;
        for (int k = 0; k < Histogram::kBuckets; ++k) {
          const count_t c = h.bucket(k);
          if (c == 0) continue;
          if (!bfirst) out += ',';
          bfirst = false;
          std::snprintf(buf, sizeof buf, "\"le_2e%d\":%lld", k,
                        static_cast<long long>(c));
          out += buf;
        }
        out += "}}";
        break;
      }
    }
  }
  out += '}';
  return out;
}

Registry& global() {
  static Registry* r = new Registry;  // leaked: usable during shutdown
  return *r;
}

}  // namespace gesp::metrics
