// Error handling for the GESP library.
//
// All recoverable failures are reported with gesp::Error (an exception
// carrying a category), so callers can distinguish e.g. a structurally
// singular matrix from a malformed input file. GESP_CHECK is for
// precondition violations on the public API; GESP_ASSERT compiles away in
// release builds and guards internal invariants.
#pragma once

#include <stdexcept>
#include <string>

namespace gesp {

/// Failure categories surfaced by the library.
enum class Errc {
  invalid_argument,    ///< caller violated a documented precondition
  io,                  ///< file missing or malformed
  structurally_singular,  ///< no zero-free diagonal exists (max transversal < n)
  numerically_singular,   ///< exact zero pivot with replacement disabled
  unstable,            ///< pivot growth too large; solution unreliable
  comm,                ///< transport fault: timeout, lost rank, bad payload
  overloaded,          ///< serving layer shed the request: queue full,
                       ///< deadline expired, or service shutting down
  internal,            ///< broken internal invariant (library bug)
};

/// Human-readable name of an error category.
const char* errc_name(Errc c) noexcept;

/// Exception type thrown by all gesp components.
class Error : public std::runtime_error {
 public:
  Error(Errc code, const std::string& what)
      : std::runtime_error(std::string(errc_name(code)) + ": " + what),
        code_(code) {}

  Errc code() const noexcept { return code_; }

 private:
  Errc code_;
};

[[noreturn]] void throw_error(Errc code, const std::string& what);

}  // namespace gesp

#define GESP_CHECK(cond, code, msg)                  \
  do {                                               \
    if (!(cond)) ::gesp::throw_error((code), (msg)); \
  } while (0)

#ifndef NDEBUG
#define GESP_ASSERT(cond, msg)                                            \
  do {                                                                    \
    if (!(cond))                                                          \
      ::gesp::throw_error(::gesp::Errc::internal,                         \
                          std::string(msg) + " at " __FILE__ ":" +        \
                              std::to_string(__LINE__));                  \
  } while (0)
#else
#define GESP_ASSERT(cond, msg) \
  do {                         \
  } while (0)
#endif
