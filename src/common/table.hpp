// Plain-text table printer for the benchmark harness. Produces the
// fixed-width rows the paper's tables use, e.g.
//
//   Matrix      Order   Nonzeros   NumSym  StrSym
//   BBMAT-like  38744   1771722    0.54    0.64
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gesp {

/// Column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with two-space column gaps, right-aligning numeric-looking cells.
  void print(std::ostream& os) const;

  /// Render to a string (used by tests).
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

  // Cell formatting helpers.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_sci(double v, int precision = 2);
  static std::string fmt_int(long long v);
  static std::string fmt_pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gesp
