#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace gesp {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  return std::isdigit(static_cast<unsigned char>(s[0])) || s[0] == '-' ||
         s[0] == '+' || s[0] == '.';
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  GESP_CHECK(!header_.empty(), Errc::invalid_argument, "empty table header");
}

void Table::add_row(std::vector<std::string> row) {
  GESP_CHECK(row.size() == header_.size(), Errc::invalid_argument,
             "table row arity mismatch");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      const std::size_t pad = width[c] - r[c].size();
      if (looks_numeric(r[c]))
        os << std::string(pad, ' ') << r[c];
      else
        os << r[c] << std::string(pad, ' ');
      os << (c + 1 == r.size() ? "" : "  ");
    }
    os << '\n';
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c], '-') << (c + 1 == header_.size() ? "" : "  ");
  }
  os << '\n';
  for (const auto& r : rows_) emit(r);
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string Table::fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string Table::fmt_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace gesp
