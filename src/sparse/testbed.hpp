// The evaluation testbed: 53 synthetic matrices standing in for the paper's
// 53 Harwell-Boeing / Davis-collection matrices (Table 1), including the 8
// "large" matrices used for the distributed experiments (Tables 2-5).
//
// Names carry an "-s" suffix (synthetic) and echo the paper's matrix they
// model; the discipline labels follow Table 1. Per the paper:
//   * 22 matrices start with zeros on the diagonal   (zero_diagonal flag)
//   * 5 more create zeros during elimination         (creates_zero flag)
//   * one matrix (av41092-s) defeats every option combination (expect_fail)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sparse/csc.hpp"

namespace gesp::sparse {

struct TestbedEntry {
  std::string name;
  std::string discipline;
  bool zero_diagonal = false;  ///< zeros on the diagonal from the start
  bool creates_zero = false;   ///< elimination cancels a pivot to zero
  bool large = false;          ///< member of the Table-2 "large eight"
  bool expect_fail = false;    ///< pivot growth defeats GESP (AV41092 class)
  std::function<CscMatrix<double>()> make;
};

/// All 53 testbed matrices, in a fixed deterministic order.
const std::vector<TestbedEntry>& testbed();

/// The 8 large matrices of Table 2 (subset of testbed()).
std::vector<TestbedEntry> large_testbed();

/// Lookup by name; throws Errc::invalid_argument if absent.
const TestbedEntry& testbed_entry(const std::string& name);

/// One hostile matrix of the adversarial testbed, plus the symbolic frame
/// its attack assumes. The attacks target the *numeric* phase: several only
/// bite when the column order and supernode partition are pinned (an AMD
/// reorder would scatter a carefully placed gadget), so each entry carries
/// the overrides a driver must apply before solving.
struct AdversarialEntry {
  std::string name;
  std::string attack;       ///< the mechanism the matrix attacks
  /// Ladder rung expected to produce the returned solution under the
  /// default recovery policy: "gesp", "threshold", "panel_rrp" or "gepp".
  /// Rescues at "threshold"/"panel_rrp" count toward the portfolio's
  /// rescue rate; "gepp" entries keep the denominator honest.
  std::string expect_rung;
  bool expect_fail = false;   ///< no rung is expected to converge
  bool natural_order = false; ///< solve with ColOrderOption::natural
  index_t max_block = 0;      ///< symbolic max_block override (0 = default)
  std::function<CscMatrix<double>()> make;
};

/// The adversarial testbed: growth attackers, in-flight near-singular
/// gadgets, badly-scaled and structurally-deficient cases. Fixed
/// deterministic order.
const std::vector<AdversarialEntry>& adversarial_testbed();

/// Lookup by name; throws Errc::invalid_argument if absent.
const AdversarialEntry& adversarial_entry(const std::string& name);

}  // namespace gesp::sparse
