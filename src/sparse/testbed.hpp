// The evaluation testbed: 53 synthetic matrices standing in for the paper's
// 53 Harwell-Boeing / Davis-collection matrices (Table 1), including the 8
// "large" matrices used for the distributed experiments (Tables 2-5).
//
// Names carry an "-s" suffix (synthetic) and echo the paper's matrix they
// model; the discipline labels follow Table 1. Per the paper:
//   * 22 matrices start with zeros on the diagonal   (zero_diagonal flag)
//   * 5 more create zeros during elimination         (creates_zero flag)
//   * one matrix (av41092-s) defeats every option combination (expect_fail)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sparse/csc.hpp"

namespace gesp::sparse {

struct TestbedEntry {
  std::string name;
  std::string discipline;
  bool zero_diagonal = false;  ///< zeros on the diagonal from the start
  bool creates_zero = false;   ///< elimination cancels a pivot to zero
  bool large = false;          ///< member of the Table-2 "large eight"
  bool expect_fail = false;    ///< pivot growth defeats GESP (AV41092 class)
  std::function<CscMatrix<double>()> make;
};

/// All 53 testbed matrices, in a fixed deterministic order.
const std::vector<TestbedEntry>& testbed();

/// The 8 large matrices of Table 2 (subset of testbed()).
std::vector<TestbedEntry> large_testbed();

/// Lookup by name; throws Errc::invalid_argument if absent.
const TestbedEntry& testbed_entry(const std::string& name);

}  // namespace gesp::sparse
