// Synthetic workload generators.
//
// The paper evaluates on 53 matrices from the Harwell-Boeing and Davis
// collections plus two private ones. Those files are not redistributable
// here, so the testbed (testbed.hpp) is generated from these routines,
// which produce matrices with the same *behaviour-determining*
// characteristics: dimension, nonzero density, structural/numerical
// symmetry, zero diagonals, tiny-dynamic-pivot patterns, and pivot-growth
// adversaries. All generators are bit-deterministic given their seed.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "sparse/csc.hpp"

namespace gesp::sparse {

/// 5-point Laplacian on an nx×ny grid (symmetric positive definite;
/// structural stand-in for structural-engineering meshes).
CscMatrix<double> laplacian2d(index_t nx, index_t ny);

/// 7-point Laplacian on an nx×ny×nz grid.
CscMatrix<double> laplacian3d(index_t nx, index_t ny, index_t nz);

/// Upwind-discretized convection–diffusion on an nx×ny grid:
///   -Δu + (vx, vy)·∇u. Unsymmetric values on a symmetric structure —
/// the classic CFD matrix (AF23560 / fluid-flow class).
CscMatrix<double> convdiff2d(index_t nx, index_t ny, double vx, double vy);

/// 3-D convection–diffusion (EX11 / 3-D flow class).
CscMatrix<double> convdiff3d(index_t nx, index_t ny, index_t nz, double vx,
                             double vy, double vz);

/// Anisotropic diffusion -eps·u_xx - u_yy on an nx×ny grid (petroleum
/// reservoir class, WU-like).
CscMatrix<double> anisotropic2d(index_t nx, index_t ny, double eps);

/// Parameters for the general random unsymmetric generator.
struct RandomSpec {
  index_t n = 1000;               ///< order
  index_t nnz_per_row = 8;        ///< average off-diagonal count per row
  double structural_symmetry = 0.5;  ///< probability the mirror entry exists
  double numeric_symmetry = 0.0;  ///< probability mirror entry has same value
  double diag_scale = 1.0;        ///< magnitude scale of diagonal entries
  double offdiag_scale = 1.0;     ///< magnitude scale of off-diagonals
  double bandwidth = 0.1;         ///< locality: offsets ~ ±bandwidth·n
  std::uint64_t seed = 1;
};

/// Random square unsymmetric matrix with controllable symmetry and entry
/// scales. Always structurally nonsingular (full diagonal) — compose with
/// with_zero_diagonal() to knock diagonal entries out.
CscMatrix<double> random_unsymmetric(const RandomSpec& spec);

/// Circuit-simulation-like matrix (TWOTONE / MEMPLUS class): most rows have
/// 2–4 entries, a few "hub" rows/columns are dense-ish, supernodes are tiny.
CscMatrix<double> circuit_like(index_t n, index_t hubs, index_t hub_degree,
                               std::uint64_t seed);

/// Device-simulation-like matrix (ECL32 class): block-structured with
/// moderately dense coupled blocks, high fill.
CscMatrix<double> device_like(index_t nblocks, index_t block_size,
                              index_t couplings, std::uint64_t seed);

/// Chemical-engineering-like matrix (RDIST/HYDR1 class): staircase of small
/// unit blocks with long-range recycle-stream couplings and poor scaling
/// (entry magnitudes spanning many orders of magnitude).
CscMatrix<double> chemical_like(index_t nstages, index_t stage_size,
                                double scale_spread, std::uint64_t seed);

/// Remove the diagonal entry from ~fraction·n rows, pairing the affected
/// rows in 2-cycles and inserting strong entries at (i,j) and (j,i) so a
/// perfect matching still exists (the matrix stays structurally
/// nonsingular, but *requires* row pivoting/permutation). Works on double
/// and Complex inputs with identical RNG consumption: the victim set (the
/// pattern edit) depends only on (pattern, seed), never on the value type.
template <class T>
CscMatrix<T> with_zero_diagonal(const CscMatrix<T>& A, double fraction,
                                std::uint64_t seed);

/// Tridiagonal-with-cancellation matrix: all diagonal entries are nonzero
/// and well scaled, but elimination without pivoting produces an *exact
/// zero* pivot at step `cancel_at` (zeros created on the diagonal during
/// elimination — the paper's "5 more create zeros" class). GESP's
/// tiny-pivot replacement plus refinement must rescue it.
CscMatrix<double> cancellation_matrix(index_t n, index_t cancel_at,
                                      std::uint64_t seed);

/// Wilkinson-style growth adversary: unit diagonal, -1 strictly below, +1
/// last column; element growth 2^(n-1) for any diagonal pivot order. Used
/// as the AV41092 stand-in (GESP failure case) and to show GENP/GEPP growth.
CscMatrix<double> growth_adversary(index_t n);

/// Sparse version of the growth adversary embedded in a random background,
/// with tunable growth depth (growth ≈ 2^depth).
CscMatrix<double> sparse_growth_adversary(index_t n, index_t depth,
                                          std::uint64_t seed);

/// Near-singular working-minor cascade in a trailing dense block. Every
/// assembled entry is O(1), all diagonals are 1 and every off-diagonal is
/// strictly smaller, so the identity is the optimal matching (MC64 keeps
/// it) and equilibration is the identity — yet `depth` pivots partially
/// cancel down to exactly `gamma` *during* elimination. Each decay is
/// produced by an O(1) multiplier from the unit-pivot column before it
/// (perturbations do not compound), the static multiplier under each
/// decayed pivot is ~0.98/gamma, and an accumulator column of U compounds
/// one such factor per decay: growth ~ 0.02·(0.98/gamma)^depth (gamma
/// 0.04, depth 10 gives ~1e12). The whole chain shares one diagonal block
/// with an O(1) competitor row below each decayed pivot, so in-block
/// threshold pivoting defeats the attack (gamma must be below tau·0.98 ≈
/// 0.098 for the swap to trigger). Requirements: natural column order (a
/// reordering scatters the chain), default relax (8), and
/// 2*depth+2 <= max_block so the chain lands in a single T2 chunk — depth
/// at most 11 with the default max_block of 24.
CscMatrix<double> near_singular_cascade(index_t n, index_t depth,
                                        double gamma, std::uint64_t seed);

/// Wilkinson-style growth chain confined to one supernode: a trailing
/// (depth+1)-wide dense block with unit diagonal, -0.94 strictly below and
/// +0.97 in the block's last column, so any *diagonal* pivot order grows
/// like 1.94^depth. Threshold pivoting is blind to it — the pivot always
/// stays within tau of its column maximum — so only the panel-RRP rung,
/// which reorders block rows by QRCP row norms, tames the chain. Solve
/// with the natural column order and symbolic max_block > depth so the
/// whole chain lands in one diagonal block.
CscMatrix<double> wilkinson_block_adversary(index_t n, index_t depth,
                                            std::uint64_t seed);

/// Badly-scaled wrapper: multiply row i by 10^r_i and column j by 10^c_j
/// with r, c log-uniform in ±spread/2. Equilibration plus the mc64 dual
/// scalings should neutralize it completely — composing this over an
/// adversary must not change which ladder rung rescues the core attack.
CscMatrix<double> badly_scaled(const CscMatrix<double>& A, double spread,
                               std::uint64_t seed);

/// Structurally-deficient matrix: `deficient` column pairs are numerically
/// dependent to ~1e-13 relative difference, so elimination cancels their
/// second pivot far below the tiny-pivot replacement threshold. Exercises
/// the replacement path (pivots_replaced > 0) and drives the condition
/// number to ~1/1e-13 without defeating backward stability.
CscMatrix<double> structural_deficiency(index_t n, index_t deficient,
                                        std::uint64_t seed);

/// Seeded numerical fault injection: multiply `count` randomly chosen
/// nonzeros by ±magnitude (random sign, ±50% jitter). The pattern is
/// untouched — a faulted matrix reuses the clean symbolic structure and
/// pattern-keyed cache entries — so this models value corruption at
/// refactorization time for chaos-testing the recovery ladder.
CscMatrix<double> inject_value_faults(const CscMatrix<double>& A,
                                      index_t count, double magnitude,
                                      std::uint64_t seed);

/// Complexify: multiply each entry by a deterministic random unit-modulus
/// phase (the quantum-chemistry application solves complex unsymmetric
/// systems). The magnitude structure — all that matching/ordering sees —
/// is unchanged.
CscMatrix<Complex> randomize_phases(const CscMatrix<double>& A,
                                    std::uint64_t seed);

/// Perturb the nonzero *values* (not the pattern) — models the paper's
/// repeated-factorization scenario, where the pattern is fixed across a
/// simulation but values change each step. One RNG draw per stored entry
/// for every value type, so double and Complex runs with the same seed
/// perturb by the same relative factors.
template <class T>
CscMatrix<T> perturb_values(const CscMatrix<T>& A, double rel,
                            std::uint64_t seed);

/// Perturb the values of ~col_fraction·n randomly chosen columns, leaving
/// every other column bitwise untouched — the transient-simulation update
/// shape (a few device stamps change per time step) that delta
/// refactorization exploits. Pattern-preserving and seeded-deterministic;
/// a positive fraction touches at least one column.
template <class T>
CscMatrix<T> perturb_columns(const CscMatrix<T>& A, double col_fraction,
                             double rel, std::uint64_t seed);

/// Perturb the values of one contiguous window of ~col_fraction·n columns
/// (seeded random placement), leaving every other column bitwise untouched.
/// Models *localized* transient activity — one subcircuit switching while
/// the rest of the design is quiescent — which keeps the dirty-supernode
/// closure small; scattered perturb_columns() is the pessimistic contrast
/// whose closure reaches much more of the factorization.
template <class T>
CscMatrix<T> perturb_column_window(const CscMatrix<T>& A, double col_fraction,
                                   double rel, std::uint64_t seed);

}  // namespace gesp::sparse
