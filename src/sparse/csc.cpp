#include "sparse/csc.hpp"

namespace gesp::sparse {

std::uint64_t fnv1a_bytes(const void* data, std::size_t size,
                          std::uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<index_t> inverse_permutation(std::span<const index_t> p) {
  std::vector<index_t> inv(p.size(), -1);
  for (std::size_t i = 0; i < p.size(); ++i) {
    GESP_CHECK(p[i] >= 0 && static_cast<std::size_t>(p[i]) < p.size(),
               Errc::invalid_argument, "permutation entry out of range");
    GESP_CHECK(inv[p[i]] == -1, Errc::invalid_argument,
               "duplicate permutation entry");
    inv[p[i]] = static_cast<index_t>(i);
  }
  return inv;
}

bool is_permutation(std::span<const index_t> p) {
  std::vector<bool> seen(p.size(), false);
  for (index_t v : p) {
    if (v < 0 || static_cast<std::size_t>(v) >= p.size() || seen[v])
      return false;
    seen[v] = true;
  }
  return true;
}

}  // namespace gesp::sparse
