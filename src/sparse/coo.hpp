// Coordinate-format sparse matrix — the assembly format. Generators and file
// readers build a CooMatrix, then convert to CSC for everything else.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "sparse/csc.hpp"

namespace gesp::sparse {

/// Unordered triplet (COO) matrix. Duplicate entries are allowed and are
/// summed on conversion to CSC, matching MatrixMarket assembly semantics.
template <class T>
class CooMatrix {
 public:
  CooMatrix() = default;
  CooMatrix(index_t nrows, index_t ncols) : nrows_(nrows), ncols_(ncols) {
    GESP_CHECK(nrows >= 0 && ncols >= 0, Errc::invalid_argument,
               "negative matrix dimension");
  }

  index_t nrows() const { return nrows_; }
  index_t ncols() const { return ncols_; }
  count_t nnz() const { return static_cast<count_t>(row_.size()); }

  /// Append one entry; duplicates accumulate on conversion.
  void add(index_t i, index_t j, T v) {
    GESP_ASSERT(i >= 0 && i < nrows_ && j >= 0 && j < ncols_,
                "COO entry out of range");
    row_.push_back(i);
    col_.push_back(j);
    val_.push_back(v);
  }

  void reserve(std::size_t n) {
    row_.reserve(n);
    col_.reserve(n);
    val_.reserve(n);
  }

  const std::vector<index_t>& rows() const { return row_; }
  const std::vector<index_t>& cols() const { return col_; }
  const std::vector<T>& values() const { return val_; }

  /// Convert to compressed sparse column, summing duplicates; row indices
  /// within each column come out strictly increasing.
  CscMatrix<T> to_csc() const {
    CscMatrix<T> A;
    A.nrows = nrows_;
    A.ncols = ncols_;
    A.colptr.assign(static_cast<std::size_t>(ncols_) + 1, 0);
    const std::size_t nz = row_.size();
    // Counting sort by column.
    for (std::size_t k = 0; k < nz; ++k) A.colptr[col_[k] + 1]++;
    for (index_t j = 0; j < ncols_; ++j) A.colptr[j + 1] += A.colptr[j];
    std::vector<index_t> next(A.colptr.begin(), A.colptr.end() - 1);
    A.rowind.resize(nz);
    A.values.resize(nz);
    for (std::size_t k = 0; k < nz; ++k) {
      const index_t p = next[col_[k]]++;
      A.rowind[p] = row_[k];
      A.values[p] = val_[k];
    }
    A.sort_columns();
    A.sum_duplicates();
    return A;
  }

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  std::vector<index_t> row_;
  std::vector<index_t> col_;
  std::vector<T> val_;
};

}  // namespace gesp::sparse
