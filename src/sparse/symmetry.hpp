// Structural and numerical symmetry metrics, as defined under the paper's
// Table 2: StrSym is the fraction of nonzeros matched by a nonzero in the
// symmetric position; NumSym is the fraction matched by an *equal value* in
// the symmetric position. Diagonal entries match themselves.
#pragma once

#include "common/types.hpp"
#include "sparse/csc.hpp"

namespace gesp::sparse {

struct SymmetryMetrics {
  double structural = 0.0;  ///< StrSym in [0, 1]
  double numerical = 0.0;   ///< NumSym in [0, 1]
};

template <class T>
SymmetryMetrics symmetry_metrics(const CscMatrix<T>& A);

extern template SymmetryMetrics symmetry_metrics(const CscMatrix<double>&);
extern template SymmetryMetrics symmetry_metrics(const CscMatrix<Complex>&);

}  // namespace gesp::sparse
