// Sparse kernel routines on CSC matrices: mat-vec products, residuals and
// norms. These are the building blocks of iterative refinement (step (4) of
// the GESP algorithm) and of the error metrics in the paper's Figures 4-5.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "sparse/csc.hpp"

namespace gesp::sparse {

/// y = A * x.
template <class T>
void spmv(const CscMatrix<T>& A, std::span<const T> x, std::span<T> y) {
  GESP_CHECK(x.size() == static_cast<std::size_t>(A.ncols) &&
                 y.size() == static_cast<std::size_t>(A.nrows),
             Errc::invalid_argument, "spmv dimension mismatch");
  std::fill(y.begin(), y.end(), T{});
  for (index_t j = 0; j < A.ncols; ++j) {
    const T xj = x[j];
    if (xj == T{}) continue;
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p)
      y[A.rowind[p]] += A.values[p] * xj;
  }
}

/// y = Aᵀ * x.
template <class T>
void spmv_transposed(const CscMatrix<T>& A, std::span<const T> x,
                     std::span<T> y) {
  GESP_CHECK(x.size() == static_cast<std::size_t>(A.nrows) &&
                 y.size() == static_cast<std::size_t>(A.ncols),
             Errc::invalid_argument, "spmv_transposed dimension mismatch");
  for (index_t j = 0; j < A.ncols; ++j) {
    T sum{};
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p)
      sum += A.values[p] * x[A.rowind[p]];
    y[j] = sum;
  }
}

/// r = b - A*x.
template <class T>
void residual(const CscMatrix<T>& A, std::span<const T> x,
              std::span<const T> b, std::span<T> r) {
  GESP_CHECK(r.size() == b.size() &&
                 b.size() == static_cast<std::size_t>(A.nrows),
             Errc::invalid_argument, "residual dimension mismatch");
  std::copy(b.begin(), b.end(), r.begin());
  for (index_t j = 0; j < A.ncols; ++j) {
    const T xj = x[j];
    if (xj == T{}) continue;
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p)
      r[A.rowind[p]] -= A.values[p] * xj;
  }
}

/// r = b - A*x with compensated (Kahan/TwoSum-style) accumulation — the
/// paper's "extra precision residual" option. Each r_i is accumulated with
/// an error term so the residual is accurate to roughly twice the working
/// precision, which can squeeze one more digit out of iterative refinement.
template <class T>
void residual_compensated(const CscMatrix<T>& A, std::span<const T> x,
                          std::span<const T> b, std::span<T> r) {
  GESP_CHECK(r.size() == b.size() &&
                 b.size() == static_cast<std::size_t>(A.nrows),
             Errc::invalid_argument, "residual dimension mismatch");
  std::vector<T> comp(r.size(), T{});
  std::copy(b.begin(), b.end(), r.begin());
  auto add = [&](index_t i, T term) {
    // TwoSum of r[i] and term; the rounding error accumulates in comp[i].
    const T s = r[i] + term;
    const T bp = s - r[i];
    const T err = (r[i] - (s - bp)) + (term - bp);
    r[i] = s;
    comp[i] += err;
  };
  for (index_t j = 0; j < A.ncols; ++j) {
    const T xj = x[j];
    if (xj == T{}) continue;
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p)
      add(A.rowind[p], -(A.values[p] * xj));
  }
  for (std::size_t i = 0; i < r.size(); ++i) r[i] += comp[i];
}

/// Largest entry magnitude, max |a_ij|.
template <class T>
real_t<T> norm_max(const CscMatrix<T>& A) {
  using std::abs;
  real_t<T> m = 0;
  for (const T& v : A.values) m = std::max<real_t<T>>(m, abs(v));
  return m;
}

/// One norm: max column sum of magnitudes.
template <class T>
real_t<T> norm_one(const CscMatrix<T>& A) {
  using std::abs;
  real_t<T> m = 0;
  for (index_t j = 0; j < A.ncols; ++j) {
    real_t<T> s = 0;
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p)
      s += abs(A.values[p]);
    m = std::max(m, s);
  }
  return m;
}

/// Infinity norm: max row sum of magnitudes.
template <class T>
real_t<T> norm_inf(const CscMatrix<T>& A) {
  using std::abs;
  std::vector<real_t<T>> rowsum(static_cast<std::size_t>(A.nrows), 0);
  for (index_t j = 0; j < A.ncols; ++j)
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p)
      rowsum[A.rowind[p]] += abs(A.values[p]);
  real_t<T> m = 0;
  for (real_t<T> s : rowsum) m = std::max(m, s);
  return m;
}

/// Vector infinity norm.
template <class T>
real_t<T> vec_norm_inf(std::span<const T> x) {
  using std::abs;
  real_t<T> m = 0;
  for (const T& v : x) m = std::max<real_t<T>>(m, abs(v));
  return m;
}

/// ‖x - y‖∞ / ‖x‖∞ — the forward error metric of the paper's Figure 4.
template <class T>
real_t<T> relative_error_inf(std::span<const T> x_true,
                             std::span<const T> x_hat) {
  using std::abs;
  GESP_CHECK(x_true.size() == x_hat.size(), Errc::invalid_argument,
             "relative_error_inf size mismatch");
  real_t<T> diff = 0, base = 0;
  for (std::size_t i = 0; i < x_true.size(); ++i) {
    diff = std::max<real_t<T>>(diff, abs(x_true[i] - x_hat[i]));
    base = std::max<real_t<T>>(base, abs(x_true[i]));
  }
  if (base == 0) return diff == 0 ? 0 : std::numeric_limits<real_t<T>>::infinity();
  return diff / base;
}

/// Componentwise backward error (Oettli–Prager / Demmel [7]):
///   berr = max_i |r_i| / (|A|·|x| + |b|)_i,
/// with the convention 0/0 = 0. berr ≤ eps means the computed solution is
/// exact for a matrix with every nonzero perturbed by one ulp.
template <class T>
real_t<T> componentwise_backward_error(const CscMatrix<T>& A,
                                       std::span<const T> x,
                                       std::span<const T> b,
                                       std::span<const T> r) {
  using std::abs;
  using R = real_t<T>;
  std::vector<R> denom(static_cast<std::size_t>(A.nrows), 0);
  for (index_t j = 0; j < A.ncols; ++j) {
    const R axj = abs(x[j]);
    if (axj == 0) continue;
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p)
      denom[A.rowind[p]] += abs(A.values[p]) * axj;
  }
  R berr = 0;
  for (index_t i = 0; i < A.nrows; ++i) {
    const R d = denom[i] + abs(b[i]);
    const R num = abs(r[i]);
    if (d == 0) {
      if (num != 0) return std::numeric_limits<R>::infinity();
      continue;
    }
    const R q = num / d;
    // NaN (from a NaN in A, x, b, or inf/inf) must poison the result:
    // std::max would silently drop it and report a spuriously small berr.
    if (std::isnan(q)) return std::numeric_limits<R>::quiet_NaN();
    berr = std::max(berr, q);
  }
  return berr;
}

}  // namespace gesp::sparse
