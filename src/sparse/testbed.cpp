#include "sparse/testbed.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"

namespace gesp::sparse {
namespace {

/// Sprinkle `count` extra random couplings of magnitude <= scale into A,
/// each within ±max_offset of the diagonal. Used to thicken grid matrices
/// into BBMAT-class density; locality (mesh refinement couples *nearby*
/// unknowns) keeps the factor fill in the realistic regime.
CscMatrix<double> add_random_couplings(const CscMatrix<double>& A,
                                       index_t count, double scale,
                                       index_t max_offset,
                                       std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix<double> B(A.nrows, A.ncols);
  for (index_t j = 0; j < A.ncols; ++j)
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p)
      B.add(A.rowind[p], j, A.values[p]);
  for (index_t k = 0; k < count; ++k) {
    const index_t i = rng.next_index(A.nrows);
    const index_t off = rng.next_index(2 * max_offset + 1) - max_offset;
    const index_t j = i + off;
    if (j >= 0 && j < A.ncols && i != j)
      B.add(i, j, scale * rng.uniform(-1.0, 1.0));
  }
  return B.to_csc();
}

std::vector<TestbedEntry> build_testbed() {
  std::vector<TestbedEntry> t;
  auto add = [&](std::string name, std::string disc,
                 std::function<CscMatrix<double>()> make, bool zd = false,
                 bool cz = false, bool large = false, bool fail = false) {
    t.push_back({std::move(name), std::move(disc), zd, cz, large, fail,
                 std::move(make)});
  };

  // ---- fluid dynamics --------------------------------------------------
  add("cfd2d-a-s", "fluid flow",
      [] { return convdiff2d(25, 25, 1.0, 0.5); });
  add("cfd2d-b-s", "fluid flow",
      [] { return convdiff2d(40, 40, 3.0, 1.0); });
  add("cfd2d-c-s", "fluid flow",
      [] { return convdiff2d(70, 70, 0.8, 0.4); });
  add("cfd3d-a-s", "fluid flow",
      [] { return convdiff3d(12, 12, 12, 1.0, 0.5, 0.2); });
  add("fidap-a-s", "fluid flow (FEM)",
      [] { return perturb_values(anisotropic2d(40, 40, 0.02), 0.3, 101); });
  add("af23560-s", "fluid flow (transonic airfoil)",
      [] { return convdiff2d(150, 150, 0.6, 0.3); }, false, false, true);
  add("bbmat-s", "fluid flow (2-D airfoil, refined)",
      [] {
        return add_random_couplings(convdiff2d(130, 130, 2.5, 1.5), 60000,
                                    0.4, /*max_offset=*/260, 102);
      },
      false, false, true);
  add("ex11-s", "fluid flow (3-D cylinder)",
      [] { return convdiff3d(22, 22, 22, 1.0, 1.0, 1.0); }, false, false,
      true);

  // ---- finite elements / structures ------------------------------------
  add("fidapm11-s", "fluid flow (FEM, 3-D)",
      [] { return perturb_values(anisotropic2d(145, 145, 0.05), 0.2, 103); },
      false, false, true);
  add("struct-a-s", "structural engineering",
      [] { return perturb_values(laplacian2d(50, 50), 0.2, 104); });
  add("struct-b-s", "structural engineering",
      [] { return perturb_values(laplacian3d(9, 9, 9), 0.2, 105); });
  add("plate-a-s", "structural engineering",
      [] { return perturb_values(anisotropic2d(60, 30, 0.2), 0.1, 106); });

  // ---- petroleum / earth sciences --------------------------------------
  add("orsirr-s", "petroleum engineering",
      [] { return perturb_values(anisotropic2d(30, 34, 0.1), 0.25, 107); });
  add("sherman-s", "petroleum engineering",
      [] {
        return with_zero_diagonal(
            perturb_values(anisotropic2d(45, 45, 0.3), 0.2, 108), 0.10, 208);
      },
      true);
  add("saylr-s", "petroleum engineering",
      [] { return perturb_values(anisotropic2d(35, 29, 0.02), 0.15, 109); });
  add("wu-s", "earth sciences (reservoir)",
      [] { return anisotropic2d(160, 160, 1e-3); }, false, false, true);

  // ---- circuit simulation ----------------------------------------------
  add("add20-s", "circuit simulation",
      [] { return with_zero_diagonal(circuit_like(2395, 8, 40, 110), 0.20, 210); },
      true);
  add("add32-s", "circuit simulation",
      [] { return with_zero_diagonal(circuit_like(4960, 10, 30, 111), 0.15, 211); },
      true);
  add("memplus-s", "circuit simulation (memory)",
      [] { return with_zero_diagonal(circuit_like(8000, 40, 100, 112), 0.25, 212); },
      true);
  add("onetone-s", "circuit simulation (harmonic balance)",
      [] { return with_zero_diagonal(circuit_like(12000, 30, 80, 113), 0.20, 213); },
      true);
  add("twotone-s", "circuit simulation (harmonic balance)",
      [] { return with_zero_diagonal(circuit_like(18000, 25, 40, 114), 0.10, 214); },
      true, false, true);
  add("jpwh991-s", "circuit physics",
      [] { return device_like(30, 33, 500, 115); });
  add("gre1107-s", "discrete simulation",
      [] {
        RandomSpec s;
        s.n = 1107;
        s.nnz_per_row = 5;
        s.structural_symmetry = 0.2;
        s.seed = 116;
        return with_zero_diagonal(random_unsymmetric(s), 0.30, 216);
      },
      true);

  // ---- device simulation ------------------------------------------------
  add("ecl32-s", "device simulation",
      [] { return device_like(460, 24, 2500, 117); }, false, false, true);
  add("wang4-s", "device simulation (3-D MOSFET)",
      [] { return convdiff3d(20, 20, 20, 0.5, 0.25, 0.1); }, false, false,
      true);
  add("wang12-s", "device simulation",
      [] { return convdiff3d(14, 14, 14, 0.4, 0.2, 0.1); });

  // ---- chemical engineering ----------------------------------------------
  add("west0497-s", "chemical engineering",
      [] { return with_zero_diagonal(chemical_like(16, 31, 6.0, 118), 0.30, 218); },
      true);
  add("west1505-s", "chemical engineering",
      [] { return with_zero_diagonal(chemical_like(50, 30, 8.0, 119), 0.30, 219); },
      true);
  add("lhr01-s", "light hydrocarbon recovery",
      [] { return with_zero_diagonal(chemical_like(35, 42, 10.0, 120), 0.20, 220); },
      true);
  add("lhr04-s", "light hydrocarbon recovery",
      [] { return with_zero_diagonal(chemical_like(100, 41, 10.0, 121), 0.20, 221); },
      true);
  add("hydr1-s", "chemical engineering (hydrogenation)",
      [] { return with_zero_diagonal(chemical_like(130, 40, 8.0, 122), 0.25, 222); },
      true);
  add("rdist1-s", "reactive distillation",
      [] { return chemical_like(100, 40, 5.0, 123); });
  add("radfr1-s", "chemical engineering",
      [] { return chemical_like(35, 29, 12.0, 124); });

  // ---- economics ----------------------------------------------------------
  add("mahindas-s", "economics",
      [] {
        RandomSpec s;
        s.n = 1258;
        s.nnz_per_row = 5;
        s.structural_symmetry = 0.05;
        s.seed = 125;
        return with_zero_diagonal(random_unsymmetric(s), 0.40, 225);
      },
      true);
  add("orani678-s", "economics",
      [] {
        RandomSpec s;
        s.n = 2529;
        s.nnz_per_row = 14;
        s.structural_symmetry = 0.10;
        s.bandwidth = 0.03;
        s.seed = 126;
        return with_zero_diagonal(random_unsymmetric(s), 0.30, 226);
      },
      true);
  add("mbeacxc-s", "economics",
      [] {
        RandomSpec s;
        s.n = 496;
        s.nnz_per_row = 100;
        s.structural_symmetry = 0.15;
        s.bandwidth = 0.5;
        s.seed = 127;
        return with_zero_diagonal(random_unsymmetric(s), 0.50, 227);
      },
      true);

  // ---- power networks -----------------------------------------------------
  add("gemat11-s", "power flow",
      [] {
        RandomSpec s;
        s.n = 4929;
        s.nnz_per_row = 7;
        s.structural_symmetry = 0.3;
        s.bandwidth = 0.01;  // power grids are locally connected
        s.seed = 128;
        return with_zero_diagonal(random_unsymmetric(s), 0.20, 228);
      },
      true);
  add("bcspwr-s", "power networks",
      [] {
        RandomSpec s;
        s.n = 1723;
        s.nnz_per_row = 3;
        s.structural_symmetry = 1.0;
        s.numeric_symmetry = 0.5;
        s.bandwidth = 0.01;
        s.seed = 129;
        return with_zero_diagonal(random_unsymmetric(s), 0.20, 229);
      },
      true);

  // ---- plasma physics -------------------------------------------------------
  add("utm3060-s", "plasma physics (tokamak)",
      [] { return with_zero_diagonal(device_like(153, 20, 2000, 130), 0.10, 230); },
      true);
  add("tokamak-s", "plasma physics",
      [] { return perturb_values(convdiff2d(55, 55, 5.0, 0.1), 0.1, 131); });

  // ---- quantum chemistry ------------------------------------------------------
  add("qchem-a-s", "quantum chemistry",
      [] {
        RandomSpec s;
        s.n = 1600;
        s.nnz_per_row = 25;
        s.structural_symmetry = 0.9;
        s.numeric_symmetry = 0.5;
        s.bandwidth = 0.06;
        s.seed = 132;
        return random_unsymmetric(s);
      });
  add("qchem-b-s", "quantum chemistry",
      [] { return with_zero_diagonal(device_like(100, 30, 1500, 133), 0.15, 233); },
      true);

  // ---- astrophysics / demography ----------------------------------------------
  add("mcfe-s", "astrophysics (radiative transfer)",
      [] {
        RandomSpec s;
        s.n = 765;
        s.nnz_per_row = 30;
        s.structural_symmetry = 0.7;
        s.bandwidth = 0.4;
        s.seed = 134;
        return with_zero_diagonal(random_unsymmetric(s), 0.20, 234);
      },
      true);
  add("psmigr-s", "demography (migration)",
      [] {
        RandomSpec s;
        s.n = 2140;
        s.nnz_per_row = 40;
        s.structural_symmetry = 0.4;
        s.bandwidth = 0.25;
        s.seed = 135;
        return with_zero_diagonal(random_unsymmetric(s), 0.30, 235);
      },
      true);
  add("mcca-s", "astrophysics",
      [] {
        RandomSpec s;
        s.n = 256;
        s.nnz_per_row = 16;
        s.structural_symmetry = 0.6;
        s.bandwidth = 0.5;
        s.seed = 136;
        return random_unsymmetric(s);
      });

  // ---- aerodynamics -------------------------------------------------------------
  add("raefsky-s", "aerodynamics (buckling)",
      [] { return with_zero_diagonal(device_like(200, 16, 2000, 137), 0.10, 237); },
      true);

  // ---- zeros created during elimination (5 matrices) -----------------------------
  add("cancel-a-s", "synthetic (pivot cancellation)",
      [] { return cancellation_matrix(800, 400, 140); }, false, true);
  add("cancel-b-s", "synthetic (pivot cancellation)",
      [] { return cancellation_matrix(1500, 200, 141); }, false, true);
  add("cancel-c-s", "synthetic (pivot cancellation)",
      [] { return cancellation_matrix(2500, 1250, 142); }, false, true);
  add("cancel-d-s", "synthetic (pivot cancellation)",
      [] { return cancellation_matrix(600, 77, 143); }, false, true);
  add("cancel-e-s", "synthetic (pivot cancellation)",
      [] { return cancellation_matrix(3000, 2000, 144); }, false, true);

  // ---- pivot growth adversaries ----------------------------------------------------
  add("goodwin-s", "fluid mechanics (growth-prone)",
      [] { return sparse_growth_adversary(2000, 25, 145); });
  add("av41092-s", "finite elements (GESP failure case)",
      [] { return sparse_growth_adversary(4000, 55, 146); }, false, false,
      false, /*fail=*/true);

  return t;
}

std::vector<AdversarialEntry> build_adversarial() {
  std::vector<AdversarialEntry> t;
  auto add = [&](std::string name, std::string attack, std::string rung,
                 std::function<CscMatrix<double>()> make, bool natural = false,
                 index_t max_block = 0, bool fail = false) {
    t.push_back({std::move(name), std::move(attack), std::move(rung), fail,
                 natural, max_block, std::move(make)});
  };
  // In-flight near-singular working minors: pivots decayed to gamma=0.04
  // *during* elimination with O(1) in-block competitors — the threshold
  // rung's home turf. Static growth ~ (0.98/0.04)^(depth-1).
  add("nsing-cascade-a", "compounding decayed pivots", "threshold",
      [] { return near_singular_cascade(400, 11, 0.04, 150); },
      /*natural=*/true);
  add("nsing-cascade-b", "compounding decayed pivots (larger n)", "threshold",
      [] { return near_singular_cascade(900, 10, 0.04, 151); },
      /*natural=*/true);
  add("nsing-scaled", "decayed pivots under 10^±2 row/col scaling",
      "threshold",
      [] {
        return badly_scaled(near_singular_cascade(400, 11, 0.04, 150), 4.0,
                            155);
      },
      /*natural=*/true);

  // Wilkinson chains confined to one supernode: unit pivots always within
  // tau of the column max (threshold-blind); only the QRCP row reorder of
  // the panel-RRP rung breaks the accumulation.
  add("wilkinson-block-a", "in-block growth chain, threshold-blind",
      "panel_rrp",
      [] { return wilkinson_block_adversary(500, 55, 152); },
      /*natural=*/true, /*max_block=*/64);
  add("wilkinson-block-b", "in-block growth chain, threshold-blind (wider)",
      "panel_rrp",
      [] { return wilkinson_block_adversary(900, 58, 153); },
      /*natural=*/true, /*max_block=*/64);

  // Sparse ±1 growth adversaries (the goodwin/av41092 class): exact-tie
  // chains spanning supernodes.
  add("growth-deep-a", "Wilkinson-type 2^45 growth", "panel_rrp",
      [] { return sparse_growth_adversary(300, 45, 9); },
      /*natural=*/true);
  add("growth-deep-b", "Wilkinson-type 2^46 growth", "panel_rrp",
      [] { return sparse_growth_adversary(700, 46, 154); },
      /*natural=*/true);

  // Controls: attacks the default pipeline is expected to absorb at the
  // first rung — scaling is neutralized by equilibration + mc64 duals,
  // near-dependent column pairs by tiny-pivot replacement.
  add("scaled-benign", "10^±4 row/col scaling on a benign matrix", "gesp",
      [] { return badly_scaled(convdiff2d(40, 40, 1.0, 0.5), 8.0, 156); });
  add("deficient-a", "numerically dependent column pairs", "gesp",
      [] { return structural_deficiency(600, 12, 157); });

  // Honest denominator: deep exact-tie growth that defeats the whole
  // in-block portfolio and falls through to GEPP (which converges).
  add("growth-av-s", "2^55 growth, defeats the in-block portfolio", "gepp",
      [] { return sparse_growth_adversary(4000, 55, 146); },
      /*natural=*/true);

  return t;
}

}  // namespace

const std::vector<TestbedEntry>& testbed() {
  static const std::vector<TestbedEntry> t = build_testbed();
  return t;
}

std::vector<TestbedEntry> large_testbed() {
  std::vector<TestbedEntry> out;
  for (const auto& e : testbed())
    if (e.large) out.push_back(e);
  return out;
}

const TestbedEntry& testbed_entry(const std::string& name) {
  for (const auto& e : testbed())
    if (e.name == name) return e;
  throw Error(Errc::invalid_argument, "no testbed matrix named " + name);
}

const std::vector<AdversarialEntry>& adversarial_testbed() {
  static const std::vector<AdversarialEntry> t = build_adversarial();
  return t;
}

const AdversarialEntry& adversarial_entry(const std::string& name) {
  for (const auto& e : adversarial_testbed())
    if (e.name == name) return e;
  throw Error(Errc::invalid_argument,
              "no adversarial testbed matrix named " + name);
}

}  // namespace gesp::sparse
