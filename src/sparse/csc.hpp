// Compressed sparse column matrix — the library's working format.
//
// Invariants after construction through CooMatrix::to_csc or any library
// routine: colptr has ncols+1 entries with colptr[0] == 0, row indices within
// each column are strictly increasing (no duplicates), and
// colptr[ncols] == rowind.size() == values.size().
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace gesp::sparse {

template <class T>
struct CscMatrix {
  index_t nrows = 0;
  index_t ncols = 0;
  std::vector<index_t> colptr;  ///< size ncols + 1
  std::vector<index_t> rowind;  ///< size nnz, sorted within each column
  std::vector<T> values;        ///< size nnz

  count_t nnz() const { return static_cast<count_t>(rowind.size()); }

  /// Row indices of column j.
  std::span<const index_t> col_rows(index_t j) const {
    return {rowind.data() + colptr[j],
            static_cast<std::size_t>(colptr[j + 1] - colptr[j])};
  }
  /// Values of column j (parallel to col_rows).
  std::span<const T> col_values(index_t j) const {
    return {values.data() + colptr[j],
            static_cast<std::size_t>(colptr[j + 1] - colptr[j])};
  }
  std::span<T> col_values(index_t j) {
    return {values.data() + colptr[j],
            static_cast<std::size_t>(colptr[j + 1] - colptr[j])};
  }

  /// Value at (i, j); zero when not stored. O(log nnz(column)).
  T at(index_t i, index_t j) const {
    auto rows = col_rows(j);
    auto it = std::lower_bound(rows.begin(), rows.end(), i);
    if (it == rows.end() || *it != i) return T{};
    return values[colptr[j] + static_cast<index_t>(it - rows.begin())];
  }

  /// Sort row indices (and values) within each column.
  void sort_columns() {
    std::vector<std::pair<index_t, T>> buf;
    for (index_t j = 0; j < ncols; ++j) {
      const index_t lo = colptr[j], hi = colptr[j + 1];
      if (std::is_sorted(rowind.begin() + lo, rowind.begin() + hi)) continue;
      buf.clear();
      for (index_t p = lo; p < hi; ++p) buf.emplace_back(rowind[p], values[p]);
      std::sort(buf.begin(), buf.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (index_t p = lo; p < hi; ++p) {
        rowind[p] = buf[p - lo].first;
        values[p] = buf[p - lo].second;
      }
    }
  }

  /// Merge equal row indices within each column by summation. Requires
  /// sorted columns.
  void sum_duplicates() {
    index_t out = 0;
    index_t col_start = 0;
    for (index_t j = 0; j < ncols; ++j) {
      const index_t lo = col_start, hi = colptr[j + 1];
      col_start = hi;  // save before overwriting colptr[j+1]
      colptr[j] = out;
      for (index_t p = lo; p < hi;) {
        index_t q = p + 1;
        T sum = values[p];
        while (q < hi && rowind[q] == rowind[p]) sum += values[q++];
        rowind[out] = rowind[p];
        values[out] = sum;
        ++out;
        p = q;
      }
    }
    colptr[ncols] = out;
    rowind.resize(out);
    values.resize(out);
  }

  /// Drop stored entries with |value| == 0 exactly.
  void drop_zeros() {
    index_t out = 0;
    index_t col_start = 0;
    for (index_t j = 0; j < ncols; ++j) {
      const index_t lo = col_start, hi = colptr[j + 1];
      col_start = hi;
      colptr[j] = out;
      for (index_t p = lo; p < hi; ++p) {
        if (values[p] == T{}) continue;
        rowind[out] = rowind[p];
        values[out] = values[p];
        ++out;
      }
    }
    colptr[ncols] = out;
    rowind.resize(out);
    values.resize(out);
  }

  /// Structural validity check (used by tests and debug assertions).
  bool valid() const {
    if (nrows < 0 || ncols < 0) return false;
    if (colptr.size() != static_cast<std::size_t>(ncols) + 1) return false;
    if (colptr[0] != 0) return false;
    if (colptr[ncols] != static_cast<index_t>(rowind.size())) return false;
    if (rowind.size() != values.size()) return false;
    for (index_t j = 0; j < ncols; ++j) {
      if (colptr[j] > colptr[j + 1]) return false;
      for (index_t p = colptr[j]; p < colptr[j + 1]; ++p) {
        if (rowind[p] < 0 || rowind[p] >= nrows) return false;
        if (p > colptr[j] && rowind[p] <= rowind[p - 1]) return false;
      }
    }
    return true;
  }
};

/// Compressed sparse row view of the same data layout conventions (used for
/// row-wise traversals, e.g. U storage and symmetry metrics).
template <class T>
struct CsrMatrix {
  index_t nrows = 0;
  index_t ncols = 0;
  std::vector<index_t> rowptr;  ///< size nrows + 1
  std::vector<index_t> colind;  ///< sorted within each row
  std::vector<T> values;

  count_t nnz() const { return static_cast<count_t>(colind.size()); }

  std::span<const index_t> row_cols(index_t i) const {
    return {colind.data() + rowptr[i],
            static_cast<std::size_t>(rowptr[i + 1] - rowptr[i])};
  }
  std::span<const T> row_values(index_t i) const {
    return {values.data() + rowptr[i],
            static_cast<std::size_t>(rowptr[i + 1] - rowptr[i])};
  }
};

/// CSC -> CSR conversion (bucket transpose; output rows sorted by column).
template <class T>
CsrMatrix<T> to_csr(const CscMatrix<T>& A) {
  CsrMatrix<T> R;
  R.nrows = A.nrows;
  R.ncols = A.ncols;
  R.rowptr.assign(static_cast<std::size_t>(A.nrows) + 1, 0);
  for (index_t r : A.rowind) R.rowptr[r + 1]++;
  for (index_t i = 0; i < A.nrows; ++i) R.rowptr[i + 1] += R.rowptr[i];
  std::vector<index_t> next(R.rowptr.begin(), R.rowptr.end() - 1);
  R.colind.resize(A.rowind.size());
  R.values.resize(A.values.size());
  for (index_t j = 0; j < A.ncols; ++j) {
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p) {
      const index_t i = A.rowind[p];
      const index_t q = next[i]++;
      R.colind[q] = j;
      R.values[q] = A.values[p];
    }
  }
  return R;
}

/// B = Aᵀ as CSC.
template <class T>
CscMatrix<T> transpose(const CscMatrix<T>& A) {
  CsrMatrix<T> R = to_csr(A);
  CscMatrix<T> B;
  B.nrows = A.ncols;
  B.ncols = A.nrows;
  B.colptr = std::move(R.rowptr);
  B.rowind = std::move(R.colind);
  B.values = std::move(R.values);
  return B;
}

/// FNV-1a over a byte range, chained through `seed` so several ranges can
/// be folded into one hash (pattern arrays, value arrays).
std::uint64_t fnv1a_bytes(const void* data, std::size_t size,
                          std::uint64_t seed = 14695981039346656037ull);

/// Structural fingerprint of a sparse matrix: dimensions, nnz and an FNV-1a
/// hash of the colptr/rowind arrays. Two matrices with equal keys almost
/// certainly share a sparsity pattern (the hash is 64-bit; collision-exact
/// callers such as the serve-layer factorization cache additionally compare
/// the index arrays byte for byte). Values do not enter the key — that is
/// the point: a key identifies everything the *analysis* (scalings aside)
/// and symbolic structure are reusable for.
struct PatternKey {
  index_t n = 0;
  count_t nnz = 0;
  std::uint64_t hash = 0;
  friend bool operator==(const PatternKey&, const PatternKey&) = default;
};

template <class T>
PatternKey pattern_key(const CscMatrix<T>& A) {
  PatternKey k;
  k.n = A.ncols;
  k.nnz = A.nnz();
  k.hash = fnv1a_bytes(&A.nrows, sizeof A.nrows);
  k.hash = fnv1a_bytes(A.colptr.data(), A.colptr.size() * sizeof(index_t),
                       k.hash);
  k.hash = fnv1a_bytes(A.rowind.data(), A.rowind.size() * sizeof(index_t),
                       k.hash);
  return k;
}

/// FNV-1a over the stored value bytes (bitwise: +0.0 and -0.0 differ).
/// Combined with a PatternKey this identifies a (pattern, values) pair —
/// the level at which triangular solves are reusable with no refactorize.
template <class T>
std::uint64_t value_hash(const CscMatrix<T>& A) {
  return fnv1a_bytes(A.values.data(), A.values.size() * sizeof(T));
}

/// Inverse of a permutation given as a new-from-old map (p[old] = new).
std::vector<index_t> inverse_permutation(std::span<const index_t> p);

/// True iff p is a permutation of 0..n-1.
bool is_permutation(std::span<const index_t> p);

/// B(p_row[i], p_col[j]) = A(i, j). Either permutation may be empty,
/// meaning identity. Permutations are new-from-old maps.
template <class T>
CscMatrix<T> permute(const CscMatrix<T>& A, std::span<const index_t> p_row,
                     std::span<const index_t> p_col) {
  GESP_CHECK(p_row.empty() ||
                 p_row.size() == static_cast<std::size_t>(A.nrows),
             Errc::invalid_argument, "row permutation size mismatch");
  GESP_CHECK(p_col.empty() ||
                 p_col.size() == static_cast<std::size_t>(A.ncols),
             Errc::invalid_argument, "column permutation size mismatch");
  CscMatrix<T> B;
  B.nrows = A.nrows;
  B.ncols = A.ncols;
  B.colptr.assign(static_cast<std::size_t>(A.ncols) + 1, 0);
  B.rowind.resize(A.rowind.size());
  B.values.resize(A.values.size());
  // Count entries per destination column.
  for (index_t j = 0; j < A.ncols; ++j) {
    const index_t jd = p_col.empty() ? j : p_col[j];
    B.colptr[jd + 1] += A.colptr[j + 1] - A.colptr[j];
  }
  for (index_t j = 0; j < A.ncols; ++j) B.colptr[j + 1] += B.colptr[j];
  std::vector<index_t> next(B.colptr.begin(), B.colptr.end() - 1);
  for (index_t j = 0; j < A.ncols; ++j) {
    const index_t jd = p_col.empty() ? j : p_col[j];
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p) {
      const index_t id = p_row.empty() ? A.rowind[p] : p_row[A.rowind[p]];
      const index_t q = next[jd]++;
      B.rowind[q] = id;
      B.values[q] = A.values[p];
    }
  }
  B.sort_columns();
  return B;
}

/// Elementwise-magnitude copy: |A| as a real matrix. Used by matching and
/// ordering, which only care about magnitudes.
template <class T>
CscMatrix<real_t<T>> abs_matrix(const CscMatrix<T>& A) {
  using std::abs;
  CscMatrix<real_t<T>> B;
  B.nrows = A.nrows;
  B.ncols = A.ncols;
  B.colptr = A.colptr;
  B.rowind = A.rowind;
  B.values.resize(A.values.size());
  for (std::size_t k = 0; k < A.values.size(); ++k)
    B.values[k] = abs(A.values[k]);
  return B;
}

}  // namespace gesp::sparse
