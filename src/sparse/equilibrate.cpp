#include "sparse/equilibrate.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gesp::sparse {

template <class T>
Scaling equilibrate(const CscMatrix<T>& A) {
  using std::abs;
  Scaling s;
  s.row.assign(static_cast<std::size_t>(A.nrows), 0.0);
  s.col.assign(static_cast<std::size_t>(A.ncols), 0.0);
  // Row maxima of |A|.
  for (index_t j = 0; j < A.ncols; ++j)
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p)
      s.row[A.rowind[p]] =
          std::max<double>(s.row[A.rowind[p]], abs(A.values[p]));
  for (double& v : s.row) v = (v == 0.0) ? 1.0 : 1.0 / v;
  // Column maxima of |Dr·A|.
  for (index_t j = 0; j < A.ncols; ++j) {
    double cmax = 0.0;
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p)
      cmax = std::max<double>(cmax, s.row[A.rowind[p]] * abs(A.values[p]));
    s.col[j] = (cmax == 0.0) ? 1.0 : 1.0 / cmax;
  }
  return s;
}

template <class T>
CscMatrix<T> apply_scaling(const CscMatrix<T>& A, std::span<const double> row,
                           std::span<const double> col) {
  GESP_CHECK(row.empty() || row.size() == static_cast<std::size_t>(A.nrows),
             Errc::invalid_argument, "row scale size mismatch");
  GESP_CHECK(col.empty() || col.size() == static_cast<std::size_t>(A.ncols),
             Errc::invalid_argument, "col scale size mismatch");
  CscMatrix<T> B = A;
  for (index_t j = 0; j < B.ncols; ++j) {
    const double cj = col.empty() ? 1.0 : col[j];
    for (index_t p = B.colptr[j]; p < B.colptr[j + 1]; ++p) {
      const double ri = row.empty() ? 1.0 : row[B.rowind[p]];
      B.values[p] *= ri * cj;
    }
  }
  return B;
}

template Scaling equilibrate(const CscMatrix<double>&);
template Scaling equilibrate(const CscMatrix<Complex>&);
template CscMatrix<double> apply_scaling(const CscMatrix<double>&,
                                         std::span<const double>,
                                         std::span<const double>);
template CscMatrix<Complex> apply_scaling(const CscMatrix<Complex>&,
                                          std::span<const double>,
                                          std::span<const double>);

}  // namespace gesp::sparse
