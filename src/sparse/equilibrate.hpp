// Row/column equilibration — step (1)'s "simple equilibration", the
// algorithm of LAPACK's DGEEQU: Dr_i = 1/max_j |a_ij|, then
// Dc_j = 1/max_i |Dr_i a_ij|, so every row and column of Dr·A·Dc has its
// largest entry equal to 1 in magnitude.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "sparse/csc.hpp"

namespace gesp::sparse {

/// Result of equilibration (or of the MC64 dual-variable scaling).
struct Scaling {
  std::vector<double> row;  ///< Dr diagonal (empty = identity)
  std::vector<double> col;  ///< Dc diagonal (empty = identity)

  bool row_scaled() const { return !row.empty(); }
  bool col_scaled() const { return !col.empty(); }
};

/// DGEEQU-style equilibration of A (magnitudes only).
/// amax receives max|a_ij| before scaling. Rows/columns that are exactly
/// zero get scale factor 1 (they will be caught later as structural
/// singularity by the matching phase).
template <class T>
Scaling equilibrate(const CscMatrix<T>& A);

/// B = diag(row) * A * diag(col); empty spans mean identity.
template <class T>
CscMatrix<T> apply_scaling(const CscMatrix<T>& A, std::span<const double> row,
                           std::span<const double> col);

extern template Scaling equilibrate(const CscMatrix<double>&);
extern template Scaling equilibrate(const CscMatrix<Complex>&);
extern template CscMatrix<double> apply_scaling(const CscMatrix<double>&,
                                                std::span<const double>,
                                                std::span<const double>);
extern template CscMatrix<Complex> apply_scaling(const CscMatrix<Complex>&,
                                                 std::span<const double>,
                                                 std::span<const double>);

}  // namespace gesp::sparse
