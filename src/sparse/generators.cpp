#include "sparse/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"

namespace gesp::sparse {
namespace {

/// Shared stencil assembly for 2-D grids. coef(x_lo, x_hi, y_lo, y_hi, diag).
struct Stencil2D {
  double west, east, south, north, diag;
};

CscMatrix<double> assemble2d(index_t nx, index_t ny, const Stencil2D& s) {
  GESP_CHECK(nx > 0 && ny > 0, Errc::invalid_argument, "bad grid size");
  const index_t n = nx * ny;
  CooMatrix<double> A(n, n);
  A.reserve(static_cast<std::size_t>(n) * 5);
  auto id = [nx](index_t i, index_t j) { return i + j * nx; };
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t r = id(i, j);
      A.add(r, r, s.diag);
      if (i > 0) A.add(r, id(i - 1, j), s.west);
      if (i + 1 < nx) A.add(r, id(i + 1, j), s.east);
      if (j > 0) A.add(r, id(i, j - 1), s.south);
      if (j + 1 < ny) A.add(r, id(i, j + 1), s.north);
    }
  }
  return A.to_csc();
}

}  // namespace

CscMatrix<double> laplacian2d(index_t nx, index_t ny) {
  return assemble2d(nx, ny, {-1, -1, -1, -1, 4});
}

CscMatrix<double> laplacian3d(index_t nx, index_t ny, index_t nz) {
  GESP_CHECK(nx > 0 && ny > 0 && nz > 0, Errc::invalid_argument,
             "bad grid size");
  const index_t n = nx * ny * nz;
  CooMatrix<double> A(n, n);
  A.reserve(static_cast<std::size_t>(n) * 7);
  auto id = [nx, ny](index_t i, index_t j, index_t k) {
    return i + nx * (j + ny * k);
  };
  for (index_t k = 0; k < nz; ++k)
    for (index_t j = 0; j < ny; ++j)
      for (index_t i = 0; i < nx; ++i) {
        const index_t r = id(i, j, k);
        A.add(r, r, 6);
        if (i > 0) A.add(r, id(i - 1, j, k), -1);
        if (i + 1 < nx) A.add(r, id(i + 1, j, k), -1);
        if (j > 0) A.add(r, id(i, j - 1, k), -1);
        if (j + 1 < ny) A.add(r, id(i, j + 1, k), -1);
        if (k > 0) A.add(r, id(i, j, k - 1), -1);
        if (k + 1 < nz) A.add(r, id(i, j, k + 1), -1);
      }
  return A.to_csc();
}

CscMatrix<double> convdiff2d(index_t nx, index_t ny, double vx, double vy) {
  // First-order upwinding: the convective flux is taken from the upstream
  // neighbour, which skews the off-diagonal pair and keeps the matrix an
  // M-matrix (row-wise weakly diagonally dominant).
  Stencil2D s;
  s.west = -1.0 - std::max(vx, 0.0);
  s.east = -1.0 + std::min(vx, 0.0);
  s.south = -1.0 - std::max(vy, 0.0);
  s.north = -1.0 + std::min(vy, 0.0);
  s.diag = 4.0 + std::abs(vx) + std::abs(vy);
  return assemble2d(nx, ny, s);
}

CscMatrix<double> convdiff3d(index_t nx, index_t ny, index_t nz, double vx,
                             double vy, double vz) {
  GESP_CHECK(nx > 0 && ny > 0 && nz > 0, Errc::invalid_argument,
             "bad grid size");
  const index_t n = nx * ny * nz;
  CooMatrix<double> A(n, n);
  A.reserve(static_cast<std::size_t>(n) * 7);
  auto id = [nx, ny](index_t i, index_t j, index_t k) {
    return i + nx * (j + ny * k);
  };
  const double w = -1.0 - std::max(vx, 0.0), e = -1.0 + std::min(vx, 0.0);
  const double so = -1.0 - std::max(vy, 0.0), no = -1.0 + std::min(vy, 0.0);
  const double dn = -1.0 - std::max(vz, 0.0), up = -1.0 + std::min(vz, 0.0);
  const double d = 6.0 + std::abs(vx) + std::abs(vy) + std::abs(vz);
  for (index_t k = 0; k < nz; ++k)
    for (index_t j = 0; j < ny; ++j)
      for (index_t i = 0; i < nx; ++i) {
        const index_t r = id(i, j, k);
        A.add(r, r, d);
        if (i > 0) A.add(r, id(i - 1, j, k), w);
        if (i + 1 < nx) A.add(r, id(i + 1, j, k), e);
        if (j > 0) A.add(r, id(i, j - 1, k), so);
        if (j + 1 < ny) A.add(r, id(i, j + 1, k), no);
        if (k > 0) A.add(r, id(i, j, k - 1), dn);
        if (k + 1 < nz) A.add(r, id(i, j, k + 1), up);
      }
  return A.to_csc();
}

CscMatrix<double> anisotropic2d(index_t nx, index_t ny, double eps) {
  return assemble2d(nx, ny, {-eps, -eps, -1, -1, 2 * eps + 2});
}

CscMatrix<double> random_unsymmetric(const RandomSpec& spec) {
  GESP_CHECK(spec.n > 0 && spec.nnz_per_row >= 0, Errc::invalid_argument,
             "bad RandomSpec");
  Rng rng(spec.seed);
  const index_t n = spec.n;
  CooMatrix<double> A(n, n);
  A.reserve(static_cast<std::size_t>(n) *
            (2 + static_cast<std::size_t>(spec.nnz_per_row)));
  const double spread = std::max(1.0, spec.bandwidth * n);
  for (index_t i = 0; i < n; ++i) {
    A.add(i, i, spec.diag_scale * (1.0 + rng.next_double()));
    for (index_t k = 0; k < spec.nnz_per_row; ++k) {
      index_t j = i + static_cast<index_t>(std::lround(rng.normal() * spread));
      if (j < 0) j += n;
      if (j >= n) j -= n;
      if (j < 0 || j >= n || j == i) continue;
      const double v = spec.offdiag_scale * rng.uniform(-1.0, 1.0);
      A.add(i, j, v);
      if (rng.next_double() < spec.structural_symmetry) {
        const bool same_value = rng.next_double() < spec.numeric_symmetry;
        A.add(j, i, same_value ? v : spec.offdiag_scale * rng.uniform(-1.0, 1.0));
      }
    }
  }
  return A.to_csc();
}

CscMatrix<double> circuit_like(index_t n, index_t hubs, index_t hub_degree,
                               std::uint64_t seed) {
  GESP_CHECK(n > 2 && hubs >= 0 && hub_degree >= 0, Errc::invalid_argument,
             "bad circuit_like parameters");
  Rng rng(seed);
  CooMatrix<double> A(n, n);
  // Sparse conductance-like rows. Real netlists are overwhelmingly LOCAL —
  // devices connect to nearby nets — with a handful of global nets (the
  // hubs below). Locality keeps the factor fill realistic; global random
  // couplings would turn the graph into an expander and the factor dense.
  const index_t win = std::max<index_t>(8, n / 500);
  for (index_t i = 0; i < n; ++i) {
    double rowsum = 0.0;
    auto stamp = [&](index_t j) {
      if (j == i || j < 0 || j >= n) return;
      const double g = rng.uniform(0.1, 2.0);
      A.add(i, j, -g);
      rowsum += g;
    };
    stamp((i + 1) % n);
    stamp(i + 1 + rng.next_index(win) - win / 2);
    if (rng.next_double() < 0.5) stamp(i - 1 - rng.next_index(win) + win / 2);
    if (rng.next_double() < 0.01) stamp(rng.next_index(n));  // rare global
    A.add(i, i, rowsum + rng.uniform(0.05, 0.5));
  }
  // Hub nodes (supply rails / substrate): dense-ish rows and columns.
  for (index_t h = 0; h < hubs; ++h) {
    const index_t hub = rng.next_index(n);
    for (index_t k = 0; k < hub_degree; ++k) {
      const index_t j = rng.next_index(n);
      if (j == hub) continue;
      const double g = rng.uniform(0.01, 1.0);
      A.add(hub, j, -g);
      A.add(j, hub, -rng.uniform(0.01, 1.0));
      A.add(hub, hub, g);
      A.add(j, j, g);
    }
  }
  return A.to_csc();
}

CscMatrix<double> device_like(index_t nblocks, index_t block_size,
                              index_t couplings, std::uint64_t seed) {
  GESP_CHECK(nblocks > 0 && block_size > 0, Errc::invalid_argument,
             "bad device_like parameters");
  Rng rng(seed);
  const index_t n = nblocks * block_size;
  CooMatrix<double> A(n, n);
  // Dense-ish diagonal blocks: each entry present with probability 0.55 —
  // this is what creates the ECL32-style large supernodes and heavy fill.
  for (index_t b = 0; b < nblocks; ++b) {
    const index_t off = b * block_size;
    for (index_t i = 0; i < block_size; ++i) {
      A.add(off + i, off + i, 4.0 + rng.next_double());
      for (index_t j = 0; j < block_size; ++j) {
        if (i == j) continue;
        if (rng.next_double() < 0.55)
          A.add(off + i, off + j, rng.uniform(-1.0, 1.0));
      }
    }
    // Bidirectional carrier coupling to the next block.
    if (b + 1 < nblocks) {
      for (index_t i = 0; i < block_size; ++i) {
        A.add(off + i, off + block_size + i, rng.uniform(-0.5, 0.5));
        A.add(off + block_size + i, off + i, rng.uniform(-0.5, 0.5));
      }
    }
  }
  for (index_t c = 0; c < couplings; ++c) {
    const index_t i = rng.next_index(n), j = rng.next_index(n);
    if (i != j) A.add(i, j, rng.uniform(-0.3, 0.3));
  }
  return A.to_csc();
}

CscMatrix<double> chemical_like(index_t nstages, index_t stage_size,
                                double scale_spread, std::uint64_t seed) {
  GESP_CHECK(nstages > 1 && stage_size > 0, Errc::invalid_argument,
             "bad chemical_like parameters");
  Rng rng(seed);
  const index_t n = nstages * stage_size;
  CooMatrix<double> A(n, n);
  for (index_t s = 0; s < nstages; ++s) {
    const index_t off = s * stage_size;
    // Row scale varies by many orders of magnitude across stages —
    // equilibration (DGEEQU) has real work to do on this class.
    for (index_t i = 0; i < stage_size; ++i) {
      const double rs = std::pow(10.0, rng.uniform(-scale_spread / 2.0,
                                                   scale_spread / 2.0));
      A.add(off + i, off + i, rs * (2.0 + rng.next_double()));
      for (index_t j = 0; j < stage_size; ++j)
        if (i != j && rng.next_double() < 0.4)
          A.add(off + i, off + j, rs * rng.uniform(-1.0, 1.0));
      // Stage-to-stage streams (downstream strong, upstream weak).
      if (s + 1 < nstages)
        A.add(off + i, off + stage_size + i, rs * rng.uniform(-1.0, -0.2));
      if (s > 0 && rng.next_double() < 0.5)
        A.add(off + i, off - stage_size + i, rs * rng.uniform(-0.2, -0.01));
    }
  }
  // Recycle streams: late stage feeding an early one, long-range fill.
  const index_t recycles = std::max<index_t>(1, nstages / 3);
  for (index_t r = 0; r < recycles; ++r) {
    const index_t from = nstages / 2 + rng.next_index(nstages - nstages / 2);
    const index_t to = rng.next_index(std::max<index_t>(1, nstages / 2));
    for (index_t i = 0; i < stage_size; ++i)
      A.add(to * stage_size + i, from * stage_size + i,
            rng.uniform(-0.1, -0.01));
  }
  return A.to_csc();
}

template <class T>
CscMatrix<T> with_zero_diagonal(const CscMatrix<T>& A, double fraction,
                                std::uint64_t seed) {
  GESP_CHECK(A.nrows == A.ncols, Errc::invalid_argument,
             "with_zero_diagonal needs a square matrix");
  GESP_CHECK(fraction >= 0.0 && fraction <= 1.0, Errc::invalid_argument,
             "fraction must be in [0,1]");
  Rng rng(seed);
  const index_t n = A.nrows;
  index_t count = static_cast<index_t>(fraction * n);
  count -= count % 2;  // pair the rows in 2-cycles
  // Choose distinct victim rows, then pair NEIGHBOURING victims: the swap
  // couplings stay local (like the voltage-source stamps of real modified
  // nodal analysis), so they stress the pivoting without adding the
  // long-range edges that would blow up the factor fill.
  std::vector<index_t> order(n);
  for (index_t i = 0; i < n; ++i) order[i] = i;
  for (index_t i = n - 1; i > 0; --i)
    std::swap(order[i], order[rng.next_index(i + 1)]);
  order.resize(count);
  std::sort(order.begin(), order.end());
  std::vector<char> victim(static_cast<std::size_t>(n), 0);
  for (index_t v : order) victim[v] = 1;

  const double strong = 2.0 * std::max(1.0, norm_max(A));
  CooMatrix<T> B(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p) {
      if (A.rowind[p] == j && victim[j]) continue;  // drop victim diagonal
      B.add(A.rowind[p], j, A.values[p]);
    }
  // Swap couplings so a perfect matching survives: rows (i,j) are matched to
  // columns (j,i). Entries are strong so MC64 prefers them.
  for (index_t k = 0; k + 1 < count; k += 2) {
    const index_t i = order[k], j = order[k + 1];
    B.add(i, j, T(strong));
    B.add(j, i, T(-strong));
  }
  return B.to_csc();
}

template CscMatrix<double> with_zero_diagonal(const CscMatrix<double>&,
                                              double, std::uint64_t);
template CscMatrix<Complex> with_zero_diagonal(const CscMatrix<Complex>&,
                                               double, std::uint64_t);

CscMatrix<double> cancellation_matrix(index_t n, index_t cancel_at,
                                      std::uint64_t seed) {
  GESP_CHECK(n > 4 && cancel_at > 1 && cancel_at < n - 1,
             Errc::invalid_argument, "bad cancellation_matrix parameters");
  Rng rng(seed);
  CooMatrix<double> A(n, n);
  // Leading chain: a_ii = 2 with unit sub/super-diagonals; Gaussian
  // elimination along the chain gives u_k = 2 - 1/u_{k-1}. At k = cancel_at
  // the diagonal is set to exactly the incoming Schur value, so the pivot
  // cancels to zero *during* elimination even though every a_ii != 0.
  double u = 2.0;
  A.add(0, 0, 2.0);
  for (index_t k = 1; k <= cancel_at; ++k) {
    A.add(k, k - 1, 1.0);
    A.add(k - 1, k, 1.0);
    const double schur = 1.0 / u;  // what elimination will subtract
    const double diag = (k == cancel_at) ? schur : 2.0;
    A.add(k, k, diag);
    u = diag - schur;  // 0 at k == cancel_at
    if (k == cancel_at) u = 2.0;  // beyond the cancellation the chain resets
  }
  // Rescue coupling past the singular leading minor.
  A.add(cancel_at, cancel_at + 1, 1.0);
  A.add(cancel_at + 1, cancel_at, 1.0);
  // Benign random remainder.
  for (index_t i = cancel_at + 1; i < n; ++i) {
    A.add(i, i, 3.0 + rng.next_double());
    const index_t j = rng.next_index(n);
    if (j != i) A.add(i, j, rng.uniform(-0.5, 0.5));
    const index_t j2 = rng.next_index(n);
    if (j2 != i) A.add(j2, i, rng.uniform(-0.5, 0.5));
  }
  return A.to_csc();
}

CscMatrix<double> growth_adversary(index_t n) {
  GESP_CHECK(n > 1, Errc::invalid_argument, "growth_adversary needs n > 1");
  CooMatrix<double> A(n, n);
  for (index_t i = 0; i < n; ++i) {
    A.add(i, i, 1.0);
    for (index_t j = 0; j < i; ++j) A.add(i, j, -1.0);
    if (i < n - 1) A.add(i, n - 1, 1.0);
  }
  return A.to_csc();
}

CscMatrix<double> sparse_growth_adversary(index_t n, index_t depth,
                                          std::uint64_t seed) {
  GESP_CHECK(n > depth + 2 && depth > 1, Errc::invalid_argument,
             "bad sparse_growth_adversary parameters");
  Rng rng(seed);
  const index_t m = n - depth - 1;  // background size
  CooMatrix<double> A(n, n);
  // Identity-dominant random background, weakly coupled.
  for (index_t i = 0; i < m; ++i) {
    A.add(i, i, 2.0 + rng.next_double());
    const index_t j = rng.next_index(m);
    if (j != i) A.add(i, j, rng.uniform(-0.3, 0.3));
  }
  // Dense Wilkinson block on the trailing indices: element growth 2^depth
  // under the natural diagonal pivot order.
  for (index_t bi = 0; bi <= depth; ++bi) {
    const index_t i = m + bi;
    A.add(i, i, 1.0);
    for (index_t bj = 0; bj < bi; ++bj) A.add(i, m + bj, -1.0);
    if (bi < depth) A.add(i, n - 1, 1.0);
  }
  // Weak background-to-block coupling keeps the matrix irreducible.
  A.add(0, m, 1e-3);
  A.add(m, 0, 1e-3);
  return A.to_csc();
}

CscMatrix<double> near_singular_cascade(index_t n, index_t depth,
                                        double gamma, std::uint64_t seed) {
  GESP_CHECK(depth > 1 && n >= 2 * depth + 10 && gamma > 0.0 && gamma < 0.09,
             Errc::invalid_argument, "bad near_singular_cascade parameters");
  // The attack lives in a TRAILING dense block of width W = 2*depth + 10.
  // Placement is load-bearing twice over. First, the Schur complement a
  // supernode sends to the trailing matrix is invariant under in-block row
  // order, so growth routed *through* a block boundary can never be
  // pivoted away — the whole chain must share one diagonal block. The
  // partitioner turns the block's leading 8 columns into a relaxed leaf
  // supernode and T2-joins the dense remainder into a single chunk of up
  // to max_block columns, so 8 benign filler columns absorb the relaxed
  // range and the 2*depth+2 chain columns land in one chunk (keep
  // 2*depth+2 <= max_block). Second, determinant invariance makes any
  // in-block rescue concentrate the product of the decayed pivots
  // (gamma^depth) into deferred rows that retire near the chunk's end;
  // because the block is trailing there are no rows beneath it, so those
  // deferred near-zero pivots amplify nothing.
  //
  // Chain columns alternate feed/decay: even offsets keep a unit pivot and
  // feed the next column, whose pivot cancels to exactly gamma
  // (1 - s·(1-gamma)/s = gamma). Each decay is produced locally by an O(1)
  // multiplier — not by the previous tiny pivot — so perturbations do not
  // compound and the cascade survives to arbitrary depth. The static
  // multiplier under each decayed pivot is s/gamma (~25) and the
  // accumulator column of U compounds one such factor per decay. An O(1)
  // competitor (the s subdiagonal) sits right below each decayed pivot,
  // inside the same chunk: threshold pivoting swaps it up and the cascade
  // never starts. All diagonals are 1 and every off-diagonal is < 1, so
  // the identity diagonal is the strictly optimal matching (MC64 keeps it)
  // and max-norm equilibration is the identity.
  const double s = 0.98;
  const index_t W = 2 * depth + 10;
  const index_t m = n - W;  // block start; filler m..m+7, chain from m+8
  Rng rng(seed);
  CooMatrix<double> A(n, n);
  for (index_t k = 0; k < W; ++k) A.add(m + k, m + k, 1.0);
  for (index_t k = 8; k + 1 < W - 1; ++k) {
    A.add(m + k + 1, m + k, s);  // in-chunk competitor under every pivot
    if ((k - 8) % 2 == 0) A.add(m + k, m + k + 1, (1.0 - gamma) / s);
  }
  for (index_t k = 8; k < W - 1; ++k) A.add(m + k, n - 1, 0.9);  // accumulator
  // Structural glue below the diagonal: keeps the block dense so the T2
  // join sees exactly nested L columns. 1e-6 is small enough not to
  // disturb the engineered pivots — the strictly-upper pattern is empty
  // beyond the first superdiagonal, so glue fill never reaches a pivot.
  for (index_t k = 0; k + 1 < W; ++k)
    for (index_t i = k + 1; i < W; ++i)
      if (i != k + 1 || k < 8 || k + 2 >= W)
        A.add(m + i, m + k, 1e-6 * rng.uniform(0.5, 1.0));
  // Decoupled identity-dominant background. The block must NOT couple to
  // it: an outside row reaching the block's columns would route the
  // amplification through the (pivot-order-invariant) Schur complement and
  // make the growth unrescuable by construction.
  for (index_t i = 0; i < m; ++i) {
    A.add(i, i, 2.0 + rng.next_double());
    const index_t j = rng.next_index(m);
    if (j != i) A.add(i, j, rng.uniform(-0.3, 0.3));
  }
  return A.to_csc();
}

CscMatrix<double> wilkinson_block_adversary(index_t n, index_t depth,
                                            std::uint64_t seed) {
  GESP_CHECK(n > depth + 2 && depth > 1, Errc::invalid_argument,
             "bad wilkinson_block_adversary parameters");
  Rng rng(seed);
  const index_t m = n - depth - 1;  // background size
  CooMatrix<double> A(n, n);
  for (index_t i = 0; i < m; ++i) {
    A.add(i, i, 2.0 + rng.next_double());
    const index_t j = rng.next_index(m);
    if (j != i) A.add(i, j, rng.uniform(-0.3, 0.3));
  }
  // Dense trailing block: the off-tie magnitudes (0.94, 0.97) keep every
  // column maximum strictly under 1/tau times the unit pivot, so threshold
  // pivoting never swaps, yet the last-column accumulation still grows by
  // ~1.94 per step.
  for (index_t bi = 0; bi <= depth; ++bi) {
    const index_t i = m + bi;
    A.add(i, i, 1.0);
    for (index_t bj = 0; bj < bi; ++bj) A.add(i, m + bj, -0.94);
    if (bi < depth) A.add(i, n - 1, 0.97);
  }
  A.add(0, m, 1e-3);
  A.add(m, 0, 1e-3);
  return A.to_csc();
}

CscMatrix<double> badly_scaled(const CscMatrix<double>& A, double spread,
                               std::uint64_t seed) {
  GESP_CHECK(spread >= 0.0, Errc::invalid_argument,
             "badly_scaled spread must be >= 0");
  Rng rng(seed);
  std::vector<double> dr(static_cast<std::size_t>(A.nrows));
  std::vector<double> dc(static_cast<std::size_t>(A.ncols));
  for (double& s : dr) s = std::pow(10.0, rng.uniform(-spread / 2, spread / 2));
  for (double& s : dc) s = std::pow(10.0, rng.uniform(-spread / 2, spread / 2));
  CscMatrix<double> B = A;
  for (index_t j = 0; j < B.ncols; ++j)
    for (index_t p = B.colptr[j]; p < B.colptr[j + 1]; ++p)
      B.values[static_cast<std::size_t>(p)] *=
          dr[static_cast<std::size_t>(B.rowind[p])] *
          dc[static_cast<std::size_t>(j)];
  return B;
}

CscMatrix<double> structural_deficiency(index_t n, index_t deficient,
                                        std::uint64_t seed) {
  GESP_CHECK(deficient > 0 && n > 4 * deficient + 2, Errc::invalid_argument,
             "bad structural_deficiency parameters");
  Rng rng(seed);
  CooMatrix<double> A(n, n);
  // Pair t occupies columns {4t, 4t+1}: column 4t+1 equals column 4t to a
  // ~1e-13 relative difference over a shared three-row pattern, so the
  // second pivot of the pair cancels far below sqrt(eps)·||A|| and the
  // tiny-pivot replacement must step in.
  for (index_t t = 0; t < deficient; ++t) {
    const index_t j = 4 * t;
    for (index_t i = 0; i < 3; ++i) {
      const double v = 0.5 + rng.next_double();
      A.add(j + i, j, v);
      A.add(j + i, j + 1, v * (1.0 + 1e-13 * rng.uniform(0.5, 1.0)));
    }
    A.add(j + 2, j + 2, 2.0 + rng.next_double());
    A.add(j + 3, j + 3, 2.0 + rng.next_double());
    A.add(j + 3, j + 2, rng.uniform(-0.3, 0.3));
  }
  for (index_t i = 4 * deficient; i < n; ++i) {
    A.add(i, i, 2.0 + rng.next_double());
    const index_t j = rng.next_index(n);
    if (j != i) A.add(i, j, rng.uniform(-0.3, 0.3));
  }
  A.add(0, n - 1, 1e-3);
  A.add(n - 1, 0, 1e-3);
  return A.to_csc();
}

CscMatrix<double> inject_value_faults(const CscMatrix<double>& A,
                                      index_t count, double magnitude,
                                      std::uint64_t seed) {
  GESP_CHECK(count >= 0 && magnitude != 0.0, Errc::invalid_argument,
             "bad inject_value_faults parameters");
  GESP_CHECK(!A.values.empty() || count == 0, Errc::invalid_argument,
             "inject_value_faults needs a nonempty matrix");
  Rng rng(seed);
  CscMatrix<double> B = A;
  const index_t nnz = static_cast<index_t>(B.values.size());
  for (index_t k = 0; k < count; ++k) {
    const std::size_t idx = static_cast<std::size_t>(rng.next_index(nnz));
    const double sign = rng.next_double() < 0.5 ? -1.0 : 1.0;
    B.values[idx] *= sign * magnitude * rng.uniform(0.5, 1.5);
  }
  return B;
}

CscMatrix<Complex> randomize_phases(const CscMatrix<double>& A,
                                    std::uint64_t seed) {
  Rng rng(seed);
  CscMatrix<Complex> B;
  B.nrows = A.nrows;
  B.ncols = A.ncols;
  B.colptr = A.colptr;
  B.rowind = A.rowind;
  B.values.resize(A.values.size());
  for (std::size_t k = 0; k < A.values.size(); ++k) {
    const double theta = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
    B.values[k] = A.values[k] * Complex(std::cos(theta), std::sin(theta));
  }
  return B;
}

template <class T>
CscMatrix<T> perturb_values(const CscMatrix<T>& A, double rel,
                            std::uint64_t seed) {
  Rng rng(seed);
  CscMatrix<T> B = A;
  for (T& v : B.values) v *= 1.0 + rel * rng.uniform(-1.0, 1.0);
  return B;
}

template CscMatrix<double> perturb_values(const CscMatrix<double>&, double,
                                          std::uint64_t);
template CscMatrix<Complex> perturb_values(const CscMatrix<Complex>&, double,
                                           std::uint64_t);

template <class T>
CscMatrix<T> perturb_columns(const CscMatrix<T>& A, double col_fraction,
                             double rel, std::uint64_t seed) {
  GESP_CHECK(col_fraction >= 0.0 && col_fraction <= 1.0,
             Errc::invalid_argument, "col_fraction must be in [0,1]");
  Rng rng(seed);
  const index_t n = A.ncols;
  index_t count = static_cast<index_t>(col_fraction * n);
  if (col_fraction > 0.0 && n > 0) count = std::max<index_t>(count, 1);
  // Fisher–Yates prefix: the chosen column set depends only on (n, seed).
  std::vector<index_t> order(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) order[i] = i;
  for (index_t i = n - 1; i > 0; --i)
    std::swap(order[i], order[rng.next_index(i + 1)]);
  std::vector<char> chosen(static_cast<std::size_t>(n), 0);
  for (index_t k = 0; k < count; ++k) chosen[order[k]] = 1;
  CscMatrix<T> B = A;
  for (index_t j = 0; j < n; ++j) {
    if (!chosen[j]) continue;  // bitwise untouched
    for (index_t p = B.colptr[j]; p < B.colptr[j + 1]; ++p)
      B.values[p] *= 1.0 + rel * rng.uniform(-1.0, 1.0);
  }
  return B;
}

template CscMatrix<double> perturb_columns(const CscMatrix<double>&, double,
                                           double, std::uint64_t);
template CscMatrix<Complex> perturb_columns(const CscMatrix<Complex>&, double,
                                            double, std::uint64_t);

template <class T>
CscMatrix<T> perturb_column_window(const CscMatrix<T>& A, double col_fraction,
                                   double rel, std::uint64_t seed) {
  GESP_CHECK(col_fraction >= 0.0 && col_fraction <= 1.0,
             Errc::invalid_argument, "col_fraction must be in [0,1]");
  Rng rng(seed);
  const index_t n = A.ncols;
  index_t count = static_cast<index_t>(col_fraction * n);
  if (col_fraction > 0.0 && n > 0) count = std::max<index_t>(count, 1);
  CscMatrix<T> B = A;
  if (count == 0) return B;
  const index_t start = rng.next_index(n - count + 1);
  for (index_t j = start; j < start + count; ++j)
    for (index_t p = B.colptr[j]; p < B.colptr[j + 1]; ++p)
      B.values[p] *= 1.0 + rel * rng.uniform(-1.0, 1.0);
  return B;
}

template CscMatrix<double> perturb_column_window(const CscMatrix<double>&,
                                                 double, double,
                                                 std::uint64_t);
template CscMatrix<Complex> perturb_column_window(const CscMatrix<Complex>&,
                                                  double, double,
                                                  std::uint64_t);

}  // namespace gesp::sparse
