#include "sparse/symmetry.hpp"

#include "common/error.hpp"

namespace gesp::sparse {

template <class T>
SymmetryMetrics symmetry_metrics(const CscMatrix<T>& A) {
  GESP_CHECK(A.nrows == A.ncols, Errc::invalid_argument,
             "symmetry metrics need a square matrix");
  const CscMatrix<T> At = transpose(A);
  count_t str = 0, num = 0;
  const count_t total = A.nnz();
  // Merge column j of A against column j of Aᵀ (= row j of A).
  for (index_t j = 0; j < A.ncols; ++j) {
    index_t p = A.colptr[j], pe = A.colptr[j + 1];
    index_t q = At.colptr[j], qe = At.colptr[j + 1];
    while (p < pe && q < qe) {
      if (A.rowind[p] < At.rowind[q]) {
        ++p;
      } else if (A.rowind[p] > At.rowind[q]) {
        ++q;
      } else {
        ++str;
        if (A.values[p] == At.values[q]) ++num;
        ++p;
        ++q;
      }
    }
  }
  SymmetryMetrics m;
  if (total > 0) {
    m.structural = static_cast<double>(str) / static_cast<double>(total);
    m.numerical = static_cast<double>(num) / static_cast<double>(total);
  }
  return m;
}

template SymmetryMetrics symmetry_metrics(const CscMatrix<double>&);
template SymmetryMetrics symmetry_metrics(const CscMatrix<Complex>&);

}  // namespace gesp::sparse
