// Fault injection for the MiniMPI transport — the chaos harness.
//
// A FaultInjector is armed with a list of FaultSpecs, each naming a sending
// rank, the ordinal of that rank's send at which to fire, and what to do to
// the in-flight message: drop it, delay it, deliver it twice, corrupt a
// payload byte (the checksum must catch this downstream), or kill the
// sending rank outright (it throws Errc::comm, and World::run poisons the
// peers). Corruption is driven by gesp::Rng so every chaos run is
// bit-reproducible from its seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace gesp::minimpi {

enum class FaultKind {
  none,       ///< no-op (unarmed spec)
  drop,       ///< message silently vanishes
  delay,      ///< message delivered after delay_s seconds
  duplicate,  ///< message delivered twice
  corrupt,    ///< one payload byte flipped (checksum detects it)
  kill_rank,  ///< sending rank throws Errc::comm instead of sending
};

const char* fault_kind_name(FaultKind k) noexcept;

struct FaultSpec {
  FaultKind kind = FaultKind::none;
  int rank = -1;         ///< sending rank to target (-1 = any rank)
  count_t nth_send = 0;  ///< fire on this 0-based send ordinal of that rank
  double delay_s = 0.0;  ///< sleep before delivery (FaultKind::delay)
};

/// Thread-safe: Comm::send consults the injector from every rank thread.
class FaultInjector {
 public:
  FaultInjector() : rng_(0) {}
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}
  FaultInjector(const FaultInjector& o) : rng_(o.rng_), specs_(o.specs_) {}
  FaultInjector& operator=(const FaultInjector& o) {
    if (this != &o) {
      rng_ = o.rng_;
      specs_ = o.specs_;
      spent_.clear();
      fired_ = 0;
    }
    return *this;
  }

  void schedule(const FaultSpec& spec) { specs_.push_back(spec); }
  bool armed() const { return !specs_.empty(); }

  /// Decide the fate of send number `ordinal` from `rank`, returning the
  /// fired spec (kind == none if nothing fired). For corrupt, flips one
  /// payload byte in place (no-op on empty payloads). Each spec fires at
  /// most once.
  FaultSpec on_send(int rank, count_t ordinal, std::vector<std::byte>& payload);

  /// Number of faults that have actually fired.
  count_t fired() const;

 private:
  mutable std::mutex mu_;
  Rng rng_;
  std::vector<FaultSpec> specs_;
  std::vector<bool> spent_;  // lazily sized to specs_
  count_t fired_ = 0;
};

}  // namespace gesp::minimpi
