#include "dist/solve_levels.hpp"

#include <algorithm>

namespace gesp::dist {
namespace {

LevelSchedule finish(const symbolic::SymbolicLU& S,
                     std::vector<index_t> level) {
  LevelSchedule out;
  out.level = std::move(level);
  for (index_t l : out.level) out.num_levels = std::max(out.num_levels, l + 1);
  std::vector<index_t> width(static_cast<std::size_t>(out.num_levels), 0);
  std::vector<count_t> cost(static_cast<std::size_t>(out.num_levels), 0);
  for (index_t K = 0; K < S.nsup; ++K) {
    width[out.level[K]]++;
    const count_t b = S.block_cols(K);
    cost[out.level[K]] = std::max(cost[out.level[K]], b * b);
  }
  for (index_t w : width) out.max_width = std::max(out.max_width, w);
  out.avg_width = out.num_levels > 0
                      ? static_cast<double>(S.nsup) / out.num_levels
                      : 0.0;
  for (count_t c : cost) out.critical_path_flops += c;
  return out;
}

}  // namespace

LevelSchedule lower_solve_levels(const symbolic::SymbolicLU& S) {
  // Edge K -> I for every L block (I, K): x(I) waits on x(K).
  std::vector<index_t> level(static_cast<std::size_t>(S.nsup), 0);
  for (index_t K = 0; K < S.nsup; ++K)
    for (const auto& blk : S.L[K])
      level[blk.I] = std::max(level[blk.I], level[K] + 1);
  return finish(S, std::move(level));
}

LevelSchedule upper_solve_levels(const symbolic::SymbolicLU& S) {
  // Edge J -> K for every U block (K, J): x(K) waits on x(J); process in
  // reverse so dependencies are final when read.
  std::vector<index_t> level(static_cast<std::size_t>(S.nsup), 0);
  for (index_t K = S.nsup - 1; K >= 0; --K)
    for (const auto& blk : S.U[K])
      level[K] = std::max(level[K], level[blk.J] + 1);
  return finish(S, std::move(level));
}

}  // namespace gesp::dist
