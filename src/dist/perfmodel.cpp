#include "dist/perfmodel.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <queue>
#include <vector>

#include "common/error.hpp"

namespace gesp::dist {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One schedulable unit on one process. A task releases when its
/// `pending_deps` reaches zero and may then start at or after `dep_time`.
struct SimTask {
  int proc = 0;
  double dur = 0.0;
  double flops = 0.0;
  long prog_key = 0;  ///< program order within the proc (strict mode)
  long prio_key = 0;  ///< scheduling priority (pipelined; lower first)
  int pending_deps = 0;
  double dep_time = 0.0;
  std::function<void(double start, double end)> on_complete;
};

/// List-scheduling discrete-event engine over P process timelines.
class Engine {
 public:
  explicit Engine(int nprocs)
      : free_time_(static_cast<std::size_t>(nprocs), 0.0),
        busy_(static_cast<std::size_t>(nprocs), 0.0),
        flops_(static_cast<std::size_t>(nprocs), 0.0),
        released_(static_cast<std::size_t>(nprocs)),
        running_(static_cast<std::size_t>(nprocs), 0) {}

  int add_task(SimTask t) {
    tasks_.push_back(std::move(t));
    return static_cast<int>(tasks_.size()) - 1;
  }

  /// Satisfy one dependency at time t.
  void satisfy(int id, double t) {
    SimTask& tk = tasks_[id];
    tk.dep_time = std::max(tk.dep_time, t);
    GESP_ASSERT(tk.pending_deps > 0, "over-satisfied task dependency");
    if (--tk.pending_deps == 0) {
      released_[tk.proc].push_back(id);
      wake_.push_back(tk.proc);
    }
  }

  /// Push a proc's clock forward (message-injection overhead etc.). Safe to
  /// call from completion effects.
  void charge_overhead(int proc, double seconds) {
    free_time_[proc] += seconds;
  }

  void run(bool pipelined) {
    pipelined_ = pipelined;
    if (!pipelined_) {
      program_.assign(free_time_.size(), {});
      for (int id = 0; id < static_cast<int>(tasks_.size()); ++id)
        program_[tasks_[id].proc].push_back(id);
      for (auto& v : program_)
        std::sort(v.begin(), v.end(), [&](int a, int b) {
          return tasks_[a].prog_key < tasks_[b].prog_key;
        });
      prog_ptr_.assign(free_time_.size(), 0);
    }
    // Seed: release all zero-dep tasks.
    for (int id = 0; id < static_cast<int>(tasks_.size()); ++id)
      if (tasks_[id].pending_deps == 0) released_[tasks_[id].proc].push_back(id);
    for (std::size_t p = 0; p < free_time_.size(); ++p)
      try_start(static_cast<int>(p), 0.0);
    std::size_t done = 0;
    while (!events_.empty()) {
      const auto [t, id] = events_.top();
      events_.pop();
      const SimTask& tk = tasks_[id];
      running_[tk.proc] = 0;
      makespan_ = std::max(makespan_, t);
      if (tk.on_complete) tk.on_complete(t - tk.dur, t);
      ++done;
      try_start(tk.proc, t);
      while (!wake_.empty()) {
        const int wp = wake_.back();
        wake_.pop_back();
        try_start(wp, t);
      }
    }
    GESP_CHECK(done == tasks_.size(), Errc::internal,
               "simulation deadlock: unreleased tasks remain");
  }

  double makespan() const { return makespan_; }
  double total_busy() const {
    double s = 0;
    for (double b : busy_) s += b;
    return s;
  }
  double load_balance() const {
    double sum = 0, mx = 0;
    for (double f : flops_) {
      sum += f;
      mx = std::max(mx, f);
    }
    return mx == 0 ? 1.0 : sum / (static_cast<double>(flops_.size()) * mx);
  }
  double total_flops() const {
    double s = 0;
    for (double f : flops_) s += f;
    return s;
  }
  const std::vector<double>& proc_flops() const { return flops_; }

  void set_effect(int id, std::function<void(double, double)> fn) {
    tasks_[id].on_complete = std::move(fn);
  }

 private:
  void try_start(int proc, double now) {
    if (running_[proc]) return;
    auto& rel = released_[proc];
    if (rel.empty() && pipelined_) return;
    int chosen = -1;
    if (pipelined_) {
      double best_start = kInf;
      std::size_t best_pos = 0;
      for (std::size_t i = 0; i < rel.size(); ++i) {
        const SimTask& tk = tasks_[rel[i]];
        const double s = std::max(free_time_[proc], tk.dep_time);
        if (s < best_start - 1e-18 ||
            (s <= best_start + 1e-18 &&
             (chosen == -1 || tk.prio_key < tasks_[chosen].prio_key))) {
          best_start = s;
          chosen = rel[i];
          best_pos = i;
        }
      }
      if (chosen != -1) {
        rel[best_pos] = rel.back();
        rel.pop_back();
      }
    } else {
      auto& ptr = prog_ptr_[proc];
      if (ptr < program_[proc].size()) {
        const int next = program_[proc][ptr];
        if (tasks_[next].pending_deps == 0) {
          chosen = next;
          ++ptr;
          for (std::size_t i = 0; i < rel.size(); ++i)
            if (rel[i] == chosen) {
              rel[i] = rel.back();
              rel.pop_back();
              break;
            }
        }
      }
    }
    if (chosen == -1) return;
    SimTask& tk = tasks_[chosen];
    const double start = std::max({now, free_time_[proc], tk.dep_time});
    const double end = start + tk.dur;
    busy_[proc] += tk.dur;
    flops_[proc] += tk.flops;
    free_time_[proc] = end;
    running_[proc] = 1;
    tk.dur = end - start;  // keep so on_complete can recover the start
    events_.emplace(end, chosen);
  }

  std::vector<SimTask> tasks_;
  std::vector<double> free_time_, busy_, flops_;
  std::vector<std::vector<int>> released_;
  std::vector<char> running_;
  std::vector<std::vector<int>> program_;
  std::vector<std::size_t> prog_ptr_;
  std::vector<int> wake_;
  bool pipelined_ = true;
  double makespan_ = 0.0;
  using Ev = std::pair<double, int>;
  std::priority_queue<Ev, std::vector<Ev>, std::greater<>> events_;
};

}  // namespace

PerfResult simulate_factorization(const symbolic::SymbolicLU& S,
                                  const ProcessGrid& grid,
                                  const MachineModel& machine,
                                  const PerfOptions& opt) {
  const index_t N = S.nsup;
  const int P = grid.nprocs();
  Engine eng(P);
  count_t messages = 0;
  count_t bytes = 0;

  // ---- gate counters: pending trailing updates per target panel/diag.
  std::vector<int> diag_gate(static_cast<std::size_t>(N), 0);
  std::vector<std::vector<int>> panelL_gate(static_cast<std::size_t>(N));
  std::vector<std::vector<int>> panelU_gate(static_cast<std::size_t>(N));
  for (index_t K = 0; K < N; ++K) {
    panelL_gate[K].assign(static_cast<std::size_t>(grid.pr), 0);
    panelU_gate[K].assign(static_cast<std::size_t>(grid.pc), 0);
  }
  for (index_t K = 0; K < N; ++K)
    for (const auto& lb : S.L[K])
      for (const auto& ub : S.U[K]) {
        if (lb.I == ub.J)
          diag_gate[lb.I]++;
        else if (lb.I > ub.J)
          panelL_gate[ub.J][grid.prow_of(lb.I)]++;
        else
          panelU_gate[lb.I][grid.pcol_of(ub.J)]++;
      }

  // ---- pass 1: create every task so effects can reference ids.
  std::vector<int> diag_task(static_cast<std::size_t>(N), -1);
  std::vector<std::vector<int>> panelL_task(static_cast<std::size_t>(N));
  std::vector<std::vector<int>> panelU_task(static_cast<std::size_t>(N));
  std::vector<std::vector<int>> upd_next(static_cast<std::size_t>(N));
  std::vector<std::vector<int>> upd_rest(static_cast<std::size_t>(N));

  struct Checkpoint {
    double offset;  ///< within the update task
    index_t X;      ///< target supernode
    int kind;       ///< 0 diag, 1 panelL, 2 panelU
    int rc;         ///< proc row / col of the target panel
  };
  // Checkpoint lists per task are captured by the effect closures.

  for (index_t K = 0; K < N; ++K) {
    const double b = static_cast<double>(S.block_cols(K));
    const double rate = machine.rate(b);
    const int kr = grid.prow_of(K), kc = grid.pcol_of(K);

    // Which proc rows/cols hold pieces of this panel, and their work.
    std::vector<double> lwork(static_cast<std::size_t>(grid.pr), 0.0);
    std::vector<double> lvals(static_cast<std::size_t>(grid.pr), 0.0);
    for (const auto& lb : S.L[K]) {
      const int r = grid.prow_of(lb.I);
      lwork[r] += static_cast<double>(lb.rows.size()) * b * b;
      lvals[r] += static_cast<double>(lb.rows.size()) * b;
    }
    std::vector<double> uwork(static_cast<std::size_t>(grid.pc), 0.0);
    std::vector<double> uvals(static_cast<std::size_t>(grid.pc), 0.0);
    for (const auto& ub : S.U[K]) {
      const int c = grid.pcol_of(ub.J);
      uwork[c] += b * b * static_cast<double>(ub.cols.size());
      uvals[c] += b * static_cast<double>(ub.cols.size());
    }

    // Diagonal factorization.
    {
      SimTask t;
      t.proc = grid.rank_of(kr, kc);
      t.flops = 2.0 / 3.0 * b * b * b;
      t.dur = t.flops / rate;
      t.prog_key = static_cast<long>(K) * 8 + 0;
      t.prio_key = t.prog_key;
      t.pending_deps = diag_gate[K] > 0 ? 1 : 0;
      diag_task[K] = eng.add_task(std::move(t));
    }
    // Panels.
    panelL_task[K].assign(static_cast<std::size_t>(grid.pr), -1);
    for (int r = 0; r < grid.pr; ++r) {
      if (lwork[r] == 0.0) continue;
      SimTask t;
      t.proc = grid.rank_of(r, kc);
      t.flops = lwork[r];
      t.dur = t.flops / rate;
      t.prog_key = static_cast<long>(K) * 8 + 1;
      t.prio_key = t.prog_key;
      t.pending_deps = 1 + (panelL_gate[K][r] > 0 ? 1 : 0);
      panelL_task[K][r] = eng.add_task(std::move(t));
    }
    panelU_task[K].assign(static_cast<std::size_t>(grid.pc), -1);
    for (int c = 0; c < grid.pc; ++c) {
      if (uwork[c] == 0.0) continue;
      SimTask t;
      t.proc = grid.rank_of(kr, c);
      t.flops = uwork[c];
      t.dur = t.flops / rate;
      t.prog_key = static_cast<long>(K) * 8 + 2;
      t.prio_key = t.prog_key;
      t.pending_deps = 1 + (panelU_gate[K][c] > 0 ? 1 : 0);
      panelU_task[K][c] = eng.add_task(std::move(t));
    }
    // Updates (grouped per proc; split next-panel-column vs rest).
    upd_next[K].assign(static_cast<std::size_t>(P), -1);
    upd_rest[K].assign(static_cast<std::size_t>(P), -1);
    std::vector<double> dur_next(static_cast<std::size_t>(P), 0.0);
    std::vector<double> dur_rest(static_cast<std::size_t>(P), 0.0);
    std::vector<std::vector<Checkpoint>> cp_next(static_cast<std::size_t>(P));
    std::vector<std::vector<Checkpoint>> cp_rest(static_cast<std::size_t>(P));
    for (const auto& lb : S.L[K]) {
      const double m = static_cast<double>(lb.rows.size());
      const int r = grid.prow_of(lb.I);
      for (const auto& ub : S.U[K]) {
        const double c = static_cast<double>(ub.cols.size());
        const int p = grid.rank_of(r, grid.pcol_of(ub.J));
        const double d = 2.0 * m * b * c / rate;
        Checkpoint cp;
        if (lb.I == ub.J) {
          cp = {0, lb.I, 0, 0};
        } else if (lb.I > ub.J) {
          cp = {0, ub.J, 1, grid.prow_of(lb.I)};
        } else {
          cp = {0, lb.I, 2, grid.pcol_of(ub.J)};
        }
        const bool next = (ub.J == K + 1) || (lb.I == K + 1);
        if (next) {
          dur_next[p] += d;
          cp.offset = dur_next[p];
          cp_next[p].push_back(cp);
        } else {
          dur_rest[p] += d;
          cp.offset = dur_rest[p];
          cp_rest[p].push_back(cp);
        }
      }
    }
    auto make_update_effect = [&eng, &diag_gate, &panelL_gate, &panelU_gate,
                               &diag_task, &panelL_task, &panelU_task](
                                  std::vector<Checkpoint> cps) {
      return [cps = std::move(cps), &eng, &diag_gate, &panelL_gate,
              &panelU_gate, &diag_task, &panelL_task,
              &panelU_task](double start, double /*end*/) {
        for (const Checkpoint& cp : cps) {
          const double t = start + cp.offset;
          if (cp.kind == 0) {
            if (--diag_gate[cp.X] == 0) eng.satisfy(diag_task[cp.X], t);
          } else if (cp.kind == 1) {
            if (--panelL_gate[cp.X][cp.rc] == 0)
              eng.satisfy(panelL_task[cp.X][cp.rc], t);
          } else {
            if (--panelU_gate[cp.X][cp.rc] == 0)
              eng.satisfy(panelU_task[cp.X][cp.rc], t);
          }
        }
      };
    };
    for (int p = 0; p < P; ++p) {
      if (dur_next[p] > 0.0) {
        SimTask t;
        t.proc = p;
        t.dur = dur_next[p];
        t.flops = dur_next[p] * rate;
        t.prog_key = static_cast<long>(K) * 8 + 3;
        t.prio_key = t.prog_key;
        t.pending_deps = 2;  // L panel arrival + U panel arrival
        t.on_complete = make_update_effect(std::move(cp_next[p]));
        upd_next[K][p] = eng.add_task(std::move(t));
      }
      if (dur_rest[p] > 0.0) {
        SimTask t;
        t.proc = p;
        t.dur = dur_rest[p];
        t.flops = dur_rest[p] * rate;
        t.prog_key = static_cast<long>(K) * 8 + 4;
        // Pipelining: trailing updates yield to the next iteration's
        // panel work.
        t.prio_key = static_cast<long>(K + 1) * 8 + 7;
        t.pending_deps = 2;
        t.on_complete = make_update_effect(std::move(cp_rest[p]));
        upd_rest[K][p] = eng.add_task(std::move(t));
      }
    }
  }

  // ---- pass 2: wire completions to broadcasts and downstream releases.
  for (index_t K = 0; K < N; ++K) {
    const double b = static_cast<double>(S.block_cols(K));
    const int kr = grid.prow_of(K), kc = grid.pcol_of(K);
    const int dproc = grid.rank_of(kr, kc);
    const double diag_bytes = b * b * machine.word_bytes;

    std::vector<char> col_needs(static_cast<std::size_t>(grid.pc), 0);
    std::vector<char> row_needs(static_cast<std::size_t>(grid.pr), 0);
    std::vector<double> lbytes(static_cast<std::size_t>(grid.pr), 0.0);
    std::vector<double> ubytes(static_cast<std::size_t>(grid.pc), 0.0);
    for (const auto& ub : S.U[K]) col_needs[grid.pcol_of(ub.J)] = 1;
    for (const auto& lb : S.L[K]) row_needs[grid.prow_of(lb.I)] = 1;
    for (const auto& lb : S.L[K])
      lbytes[grid.prow_of(lb.I)] +=
          static_cast<double>(lb.rows.size()) * b * machine.word_bytes;
    for (const auto& ub : S.U[K])
      ubytes[grid.pcol_of(ub.J)] +=
          b * static_cast<double>(ub.cols.size()) * machine.word_bytes;
    std::vector<char> send_cols = col_needs, send_rows = row_needs;
    if (!opt.edag_pruning) {
      std::fill(send_cols.begin(), send_cols.end(), 1);
      std::fill(send_rows.begin(), send_rows.end(), 1);
    }

    // --- diagonal completion: ship U(K,K) to the panel holders.
    {
      struct Dest {
        int task;
        bool remote;
      };
      std::vector<Dest> dests;
      for (int r = 0; r < grid.pr; ++r)
        if (panelL_task[K][r] != -1)
          dests.push_back({panelL_task[K][r], r != kr});
      for (int c = 0; c < grid.pc; ++c)
        if (panelU_task[K][c] != -1)
          dests.push_back({panelU_task[K][c], c != kc});
      eng.set_effect(
          diag_task[K],
          [dests, dproc, diag_bytes, &eng, &machine, &messages, &bytes](
              double /*start*/, double end) {
            int sent = 0;
            for (const Dest& d : dests) {
              if (!d.remote) {
                eng.satisfy(d.task, end);
                continue;
              }
              ++sent;
              messages += 1;
              bytes += static_cast<count_t>(diag_bytes);
              const double arrival = end + sent * machine.latency +
                                     diag_bytes / machine.bandwidth;
              eng.satisfy(d.task, arrival);
            }
            eng.charge_overhead(dproc, sent * machine.latency);
          });
    }

    // --- L panel completion on (r, kc): ship across the process row.
    for (int r = 0; r < grid.pr; ++r) {
      const int tid = panelL_task[K][r];
      if (tid == -1) continue;
      struct Send {
        int next_task;  // -1 if absent
        int rest_task;
        bool remote;
      };
      std::vector<Send> sends;
      for (int c = 0; c < grid.pc; ++c) {
        if (c != kc && !send_cols[c]) continue;
        const int p = grid.rank_of(r, c);
        const int tn = upd_next[K][p], tr = upd_rest[K][p];
        if (c != kc || tn != -1 || tr != -1)
          sends.push_back({tn, tr, c != kc});
      }
      const int sproc = grid.rank_of(r, kc);
      const double payload = lbytes[r];
      eng.set_effect(
          tid, [sends, sproc, payload, &eng, &machine, &messages, &bytes](
                   double /*start*/, double end) {
            int sent = 0;
            for (const Send& s : sends) {
              double at = end;
              if (s.remote) {
                ++sent;
                messages += 2;  // index[] + nzval[]
                bytes += static_cast<count_t>(payload);
                at = end + sent * 2 * machine.latency +
                     payload / machine.bandwidth;
              }
              if (s.next_task != -1) eng.satisfy(s.next_task, at);
              if (s.rest_task != -1) eng.satisfy(s.rest_task, at);
            }
            eng.charge_overhead(sproc, sent * 2 * machine.latency);
          });
    }

    // --- U panel completion on (kr, c): ship down the process column.
    for (int c = 0; c < grid.pc; ++c) {
      const int tid = panelU_task[K][c];
      if (tid == -1) continue;
      struct Send {
        int next_task;
        int rest_task;
        bool remote;
      };
      std::vector<Send> sends;
      for (int r = 0; r < grid.pr; ++r) {
        if (r != kr && !send_rows[r]) continue;
        const int p = grid.rank_of(r, c);
        const int tn = upd_next[K][p], tr = upd_rest[K][p];
        if (r != kr || tn != -1 || tr != -1)
          sends.push_back({tn, tr, r != kr});
      }
      const int sproc = grid.rank_of(kr, c);
      const double payload = ubytes[c];
      eng.set_effect(
          tid, [sends, sproc, payload, &eng, &machine, &messages, &bytes](
                   double /*start*/, double end) {
            int sent = 0;
            for (const Send& s : sends) {
              double at = end;
              if (s.remote) {
                ++sent;
                messages += 2;
                bytes += static_cast<count_t>(payload);
                at = end + sent * 2 * machine.latency +
                     payload / machine.bandwidth;
              }
              if (s.next_task != -1) eng.satisfy(s.next_task, at);
              if (s.rest_task != -1) eng.satisfy(s.rest_task, at);
            }
            eng.charge_overhead(sproc, sent * 2 * machine.latency);
          });
    }
  }

  eng.run(opt.pipelined);

  PerfResult res;
  res.time = eng.makespan();
  res.total_flops = static_cast<count_t>(eng.total_flops());
  res.mflops = res.time > 0 ? eng.total_flops() / res.time / 1e6 : 0.0;
  res.load_balance = eng.load_balance();
  res.comm_fraction =
      res.time > 0 ? 1.0 - eng.total_busy() / (P * res.time) : 0.0;
  res.total_messages = messages;
  res.total_bytes = bytes;
  return res;
}

namespace {

/// Shared engine setup for one triangular-solve direction.
/// `lower` selects the forward (L) or backward (U) substitution pattern.
struct SolvePhase {
  double time = 0.0;
  double busy = 0.0;
  std::vector<double> flops;
  count_t messages = 0;
  count_t bytes = 0;
};

SolvePhase simulate_solve_phase(const symbolic::SymbolicLU& S,
                                const ProcessGrid& grid,
                                const MachineModel& machine, bool lower) {
  const index_t N = S.nsup;
  const int P = grid.nprocs();
  Engine eng(P);
  count_t messages = 0;
  count_t bytes = 0;
  // Memory-bound vector kernels: model with the small-block rate.
  const double rate = machine.rate(2.0);

  // Block lists per "pivot" supernode K: the off-diagonal blocks whose
  // x(K) feeds, with their owner and update size.
  // lower: blocks (I, K) of L (I > K), contribution into x(I).
  // upper: blocks (K', K) of U (K' < K), contribution into x(K').
  struct Blk {
    index_t target;  ///< block whose solution this update feeds
    int proc;
    double flops;
  };
  std::vector<std::vector<Blk>> feeds(static_cast<std::size_t>(N));
  if (lower) {
    for (index_t K = 0; K < N; ++K) {
      const double b = static_cast<double>(S.block_cols(K));
      for (const auto& lb : S.L[K])
        feeds[K].push_back({lb.I, grid.owner(lb.I, K),
                            2.0 * static_cast<double>(lb.rows.size()) * b});
    }
  } else {
    for (index_t Kp = 0; Kp < N; ++Kp) {
      for (const auto& ub : S.U[Kp]) {
        const double bk = static_cast<double>(S.block_cols(Kp));
        feeds[ub.J].push_back({Kp, grid.owner(Kp, ub.J),
                               2.0 * bk *
                                   static_cast<double>(ub.cols.size())});
      }
    }
  }

  // fmod[p][T]: my remaining updates into x(T); contributing ranks per T.
  std::vector<std::vector<int>> fmod(static_cast<std::size_t>(P));
  for (auto& v : fmod) v.assign(static_cast<std::size_t>(N), 0);
  std::vector<int> contributors(static_cast<std::size_t>(N), 0);
  std::vector<std::vector<char>> contrib_mark(static_cast<std::size_t>(P));
  for (auto& v : contrib_mark) v.assign(static_cast<std::size_t>(N), 0);
  for (index_t K = 0; K < N; ++K)
    for (const Blk& blk : feeds[K]) {
      fmod[blk.proc][blk.target]++;
      if (!contrib_mark[blk.proc][blk.target]) {
        contrib_mark[blk.proc][blk.target] = 1;
        contributors[blk.target]++;
      }
    }

  // Tasks: DSOLVE(T) on owner(T,T); XPROC(p, K) aggregating p's updates
  // fed by x(K).
  std::vector<int> dsolve(static_cast<std::size_t>(N), -1);
  std::vector<std::vector<std::pair<int, int>>> xproc(
      static_cast<std::size_t>(N));  // K -> [(proc, task id)]
  for (index_t T = 0; T < N; ++T) {
    const double b = static_cast<double>(S.block_cols(T));
    SimTask t;
    t.proc = grid.owner(T, T);
    t.flops = b * b;
    t.dur = t.flops / rate;
    t.prog_key = t.prio_key = lower ? T : (N - 1 - T);
    t.pending_deps = contributors[T];
    dsolve[T] = eng.add_task(std::move(t));
  }
  struct Checkpoint {
    double offset;
    index_t target;
  };
  for (index_t K = 0; K < N; ++K) {
    // Group the feeds of K by proc.
    std::map<int, std::pair<double, std::vector<Checkpoint>>> by_proc;
    for (const Blk& blk : feeds[K]) {
      auto& [dur, cps] = by_proc[blk.proc];
      dur += blk.flops / rate;
      cps.push_back({dur, blk.target});
    }
    for (auto& entry : by_proc) {
      const int p = entry.first;
      const double dur = entry.second.first;
      std::vector<Checkpoint> cps = std::move(entry.second.second);
      SimTask t;
      t.proc = p;
      t.dur = dur;
      t.flops = dur * rate;
      t.prog_key = t.prio_key = lower ? K : (N - 1 - K);
      t.pending_deps = 1;  // x(K) arrival
      const int proc = p;
      t.on_complete = [cps = std::move(cps), proc, &fmod, &grid, &S, &eng,
                       &dsolve, &machine, &messages,
                       &bytes](double start, double /*end*/) {
        for (const Checkpoint& cp : cps) {
          const double t = start + cp.offset;
          if (--fmod[proc][cp.target] == 0) {
            const int downer = grid.owner(cp.target, cp.target);
            if (downer == proc) {
              eng.satisfy(dsolve[cp.target], t);
            } else {
              const double payload_bytes =
                  S.block_cols(cp.target) * machine.word_bytes;
              messages += 1;
              bytes += static_cast<count_t>(payload_bytes);
              eng.charge_overhead(proc, machine.latency);
              eng.satisfy(dsolve[cp.target],
                          t + machine.latency +
                              payload_bytes / machine.bandwidth);
            }
          }
        }
      };
      const int tid = eng.add_task(std::move(t));
      xproc[K].emplace_back(p, tid);
    }
  }
  // DSOLVE completion broadcasts x(T) to the procs that consume it.
  for (index_t T = 0; T < N; ++T) {
    const int downer = grid.owner(T, T);
    struct Dest {
      int task;
      bool remote;
    };
    std::vector<Dest> dests;
    for (const auto& [p, tid] : xproc[T]) dests.push_back({tid, p != downer});
    const double payload_bytes = S.block_cols(T) * machine.word_bytes;
    eng.set_effect(dsolve[T], [dests, downer, payload_bytes, &eng, &machine,
                               &messages, &bytes](double /*s*/, double end) {
      int sent = 0;
      for (const Dest& d : dests) {
        if (!d.remote) {
          eng.satisfy(d.task, end);
          continue;
        }
        ++sent;
        messages += 1;
        bytes += static_cast<count_t>(payload_bytes);
        eng.satisfy(d.task, end + sent * machine.latency +
                                payload_bytes / machine.bandwidth);
      }
      eng.charge_overhead(downer, sent * machine.latency);
    });
  }

  eng.run(/*pipelined=*/true);
  SolvePhase out;
  out.time = eng.makespan();
  out.busy = eng.total_busy();
  out.flops = eng.proc_flops();
  out.messages = messages;
  out.bytes = bytes;
  return out;
}

}  // namespace

PerfResult simulate_solve(const symbolic::SymbolicLU& S,
                          const ProcessGrid& grid,
                          const MachineModel& machine) {
  const SolvePhase lo = simulate_solve_phase(S, grid, machine, true);
  const SolvePhase up = simulate_solve_phase(S, grid, machine, false);
  PerfResult res;
  res.time = lo.time + up.time;
  double total = 0, mx = 0;
  for (std::size_t p = 0; p < lo.flops.size(); ++p) {
    const double f = lo.flops[p] + up.flops[p];
    total += f;
    mx = std::max(mx, f);
  }
  res.total_flops = static_cast<count_t>(total);
  res.mflops = res.time > 0 ? total / res.time / 1e6 : 0.0;
  res.load_balance =
      mx == 0 ? 1.0 : total / (static_cast<double>(grid.nprocs()) * mx);
  res.comm_fraction =
      res.time > 0
          ? 1.0 - (lo.busy + up.busy) / (grid.nprocs() * res.time)
          : 0.0;
  res.total_messages = lo.messages + up.messages;
  res.total_bytes = lo.bytes + up.bytes;
  return res;
}

CommCounts count_factorization_comm(const symbolic::SymbolicLU& S,
                                    const ProcessGrid& grid,
                                    bool edag_pruning, double word_bytes) {
  CommCounts cc;
  const index_t N = S.nsup;
  for (index_t K = 0; K < N; ++K) {
    const double b = static_cast<double>(S.block_cols(K));
    const int kr = grid.prow_of(K), kc = grid.pcol_of(K);
    std::vector<char> row_has_l(static_cast<std::size_t>(grid.pr), 0);
    std::vector<char> col_has_u(static_cast<std::size_t>(grid.pc), 0);
    std::vector<double> lvals(static_cast<std::size_t>(grid.pr), 0.0);
    std::vector<double> uvals(static_cast<std::size_t>(grid.pc), 0.0);
    std::vector<double> lidx(static_cast<std::size_t>(grid.pr), 0.0);
    std::vector<double> uidx(static_cast<std::size_t>(grid.pc), 0.0);
    for (const auto& lb : S.L[K]) {
      const int r = grid.prow_of(lb.I);
      row_has_l[r] = 1;
      lvals[r] += static_cast<double>(lb.rows.size()) * b;
      lidx[r] += 2;
    }
    for (const auto& ub : S.U[K]) {
      const int c = grid.pcol_of(ub.J);
      col_has_u[c] = 1;
      uvals[c] += b * static_cast<double>(ub.cols.size());
      uidx[c] += 2;
    }
    // Diagonal block to panel holders.
    for (int r = 0; r < grid.pr; ++r)
      if (r != kr && row_has_l[r]) {
        cc.messages += 1;
        cc.bytes += static_cast<count_t>(b * b * word_bytes);
      }
    for (int c = 0; c < grid.pc; ++c)
      if (c != kc && col_has_u[c]) {
        cc.messages += 1;
        cc.bytes += static_cast<count_t>(b * b * word_bytes);
      }
    // L panel row-wise: from (r, kc) to process columns; two messages
    // (index[] + nzval[]) per destination, as in Figure 7's data structure.
    for (int r = 0; r < grid.pr; ++r) {
      if (!row_has_l[r]) continue;
      for (int c = 0; c < grid.pc; ++c) {
        if (c == kc) continue;
        if (edag_pruning && !col_has_u[c]) continue;
        cc.messages += 2;
        cc.bytes += static_cast<count_t>(lvals[r] * word_bytes +
                                         lidx[r] * sizeof(index_t));
      }
    }
    // U panel column-wise.
    for (int c = 0; c < grid.pc; ++c) {
      if (!col_has_u[c]) continue;
      for (int r = 0; r < grid.pr; ++r) {
        if (r == kr) continue;
        if (edag_pruning && !row_has_l[r]) continue;
        cc.messages += 2;
        cc.bytes += static_cast<count_t>(uvals[c] * word_bytes +
                                         uidx[c] * sizeof(index_t));
      }
    }
  }
  return cc;
}

}  // namespace gesp::dist
