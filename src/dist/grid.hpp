// 2-D process grid and the block-cyclic block→process map of Figure 7:
// block (I,J) lives on the process at grid coordinate (I mod Pr, J mod Pc).
#pragma once

#include <cmath>

#include "common/error.hpp"
#include "common/types.hpp"

namespace gesp::dist {

struct ProcessGrid {
  int pr = 1;  ///< process rows
  int pc = 1;  ///< process columns

  int nprocs() const { return pr * pc; }
  int prow_of(index_t I) const { return static_cast<int>(I % pr); }
  int pcol_of(index_t J) const { return static_cast<int>(J % pc); }
  /// Linear rank of the owner of block (I, J); row-major rank layout.
  int owner(index_t I, index_t J) const {
    return prow_of(I) * pc + pcol_of(J);
  }
  int rank_row(int rank) const { return rank / pc; }
  int rank_col(int rank) const { return rank % pc; }
  int rank_of(int row, int col) const { return row * pc + col; }

  /// The most square grid with pr <= pc for P processes (paper's layouts:
  /// 2x2, 2x4, 4x4, 4x8, 8x8, 8x16, 16x16, 16x32 for P = 4..512).
  static ProcessGrid near_square(int P) {
    GESP_CHECK(P > 0, Errc::invalid_argument, "need at least one process");
    int pr = static_cast<int>(std::sqrt(static_cast<double>(P)));
    while (pr > 1 && P % pr != 0) --pr;
    return ProcessGrid{pr, P / pr};
  }
};

}  // namespace gesp::dist
