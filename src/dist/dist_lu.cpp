#include "dist/dist_lu.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "dense/kernels.hpp"
#include "sparse/coo.hpp"

namespace gesp::dist {
namespace {

// Tag layout. Factorization: K*8 + type; solves and gather live above the
// factorization range so a late message can never be mis-matched.
constexpr int kTagDiag = 0;
constexpr int kTagLIndex = 1;
constexpr int kTagLValue = 2;
constexpr int kTagUIndex = 3;
constexpr int kTagUValue = 4;

int fact_tag(index_t K, int type) { return static_cast<int>(K) * 8 + type; }

struct SolveTags {
  int x_base, sum_base, gather_base, bcast;
};

SolveTags lower_tags(index_t nsup) {
  const int n = static_cast<int>(nsup);
  return {n * 8, n * 9, n * 12, n * 16};
}
SolveTags upper_tags(index_t nsup) {
  const int n = static_cast<int>(nsup);
  return {n * 10, n * 11, n * 14, n * 16 + 1};
}
// Factor-gather tags (above everything else).
int gather_l_tag(index_t nsup) { return static_cast<int>(nsup) * 16 + 2; }
int gather_u_tag(index_t nsup) { return static_cast<int>(nsup) * 16 + 3; }

/// Position of each element of `sub` inside sorted superset `full`.
void subset_positions(std::span<const index_t> sub,
                      std::span<const index_t> full,
                      std::vector<index_t>& pos) {
  pos.resize(sub.size());
  std::size_t q = 0;
  for (std::size_t p = 0; p < sub.size(); ++p) {
    while (q < full.size() && full[q] < sub[p]) ++q;
    GESP_ASSERT(q < full.size() && full[q] == sub[p],
                "block structure not closed under updates");
    pos[p] = static_cast<index_t>(q);
  }
}

}  // namespace

template <class T>
DistributedLU<T>::DistributedLU(minimpi::Comm& comm, const ProcessGrid& grid,
                                std::shared_ptr<const symbolic::SymbolicLU> sym,
                                const sparse::CscMatrix<T>& A,
                                const DistOptions& opt)
    : grid_(grid), sym_(std::move(sym)) {
  GESP_CHECK(grid_.nprocs() == comm.size(), Errc::invalid_argument,
             "process grid does not match communicator size");
  myrow_ = grid_.rank_row(comm.rank());
  mycol_ = grid_.rank_col(comm.rank());
  scatter_initial(A);
  factorize(comm, opt);
  comm.barrier();
}

template <class T>
void DistributedLU<T>::scatter_initial(const sparse::CscMatrix<T>& A) {
  const symbolic::SymbolicLU& S = *sym_;
  const index_t N = S.nsup;
  diag_.resize(static_cast<std::size_t>(N));
  lblocks_.resize(static_cast<std::size_t>(N));
  ublocks_.resize(static_cast<std::size_t>(N));
  for (index_t K = 0; K < N; ++K) {
    const std::size_t b = static_cast<std::size_t>(S.block_cols(K));
    if (grid_.prow_of(K) == myrow_ && grid_.pcol_of(K) == mycol_)
      diag_[K].assign(b * b, T{});
    lblocks_[K].resize(S.L[K].size());
    if (grid_.pcol_of(K) == mycol_) {
      for (std::size_t bi = 0; bi < S.L[K].size(); ++bi)
        if (grid_.prow_of(S.L[K][bi].I) == myrow_)
          lblocks_[K][bi].assign(S.L[K][bi].rows.size() * b, T{});
    }
    ublocks_[K].resize(S.U[K].size());
    if (grid_.prow_of(K) == myrow_) {
      for (std::size_t uj = 0; uj < S.U[K].size(); ++uj)
        if (grid_.pcol_of(S.U[K][uj].J) == mycol_)
          ublocks_[K][uj].assign(b * S.U[K][uj].cols.size(), T{});
    }
  }
  // Scatter owned entries of A (the matrix is replicated on entry, as the
  // paper's pre-parallel-symbolic implementation does).
  for (index_t j = 0; j < S.n; ++j) {
    const index_t J = S.col_to_sn[j];
    const index_t cj = j - S.sn_start[J];
    const index_t bj = S.block_cols(J);
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p) {
      const index_t i = A.rowind[p];
      const index_t I = S.col_to_sn[i];
      if (grid_.owner(I, J) != grid_.rank_of(myrow_, mycol_)) continue;
      const T v = A.values[p];
      if (I == J) {
        diag_[J][(i - S.sn_start[J]) + cj * bj] = v;
      } else if (I > J) {
        // L block: locate block and row position.
        for (std::size_t bi = 0; bi < S.L[J].size(); ++bi) {
          if (S.L[J][bi].I != I) continue;
          const auto& rows = S.L[J][bi].rows;
          const auto it = std::lower_bound(rows.begin(), rows.end(), i);
          lblocks_[J][bi][(it - rows.begin()) +
                          cj * static_cast<index_t>(rows.size())] = v;
          break;
        }
      } else {
        for (std::size_t uj = 0; uj < S.U[I].size(); ++uj) {
          if (S.U[I][uj].J != J) continue;
          const auto& cols = S.U[I][uj].cols;
          const auto it = std::lower_bound(cols.begin(), cols.end(), j);
          ublocks_[I][uj][(i - S.sn_start[I]) +
                          (it - cols.begin()) * S.block_cols(I)] = v;
          break;
        }
      }
    }
  }
}

template <class T>
void DistributedLU<T>::factorize(minimpi::Comm& comm, const DistOptions& opt) {
  const symbolic::SymbolicLU& S = *sym_;
  const index_t N = S.nsup;
  dense::PivotPolicy policy;
  policy.tiny_threshold = opt.tiny_threshold;
  dense::PivotStats stats;

  // Static predicates — every rank evaluates these identically, which is
  // why no handshaking is ever needed.
  auto row_has_l = [&](index_t K, int r) {
    for (const auto& blk : S.L[K])
      if (grid_.prow_of(blk.I) == r) return true;
    return false;
  };
  auto col_has_u = [&](index_t K, int c) {
    for (const auto& blk : S.U[K])
      if (grid_.pcol_of(blk.J) == c) return true;
    return false;
  };

  std::vector<T> scratch, lrecv, urecv, diag_buf;
  std::vector<index_t> rpos, cpos, idx;

  for (index_t K = 0; K < N; ++K) {
    const index_t b = S.block_cols(K);
    const int kr = grid_.prow_of(K), kc = grid_.pcol_of(K);
    const bool own_diag = (myrow_ == kr && mycol_ == kc);
    const bool in_kcol = (mycol_ == kc) && row_has_l(K, myrow_);
    const bool in_krow = (myrow_ == kr) && col_has_u(K, mycol_);

    // ---- step (1): factor the panel.
    if (own_diag) {
      dense::getrf(diag_[K].data(), b, b, policy, stats);
      // Ship the factored diagonal block to the column / row peers that
      // hold L / U blocks of this panel.
      for (int r = 0; r < grid_.pr; ++r)
        if (r != kr && row_has_l(K, r))
          comm.send_vec(grid_.rank_of(r, kc), fact_tag(K, kTagDiag),
                        diag_[K]);
      for (int c = 0; c < grid_.pc; ++c)
        if (c != kc && col_has_u(K, c))
          comm.send_vec(grid_.rank_of(kr, c), fact_tag(K, kTagDiag),
                        diag_[K]);
    }
    const std::vector<T>* diag_ptr = nullptr;
    if (own_diag) {
      diag_ptr = &diag_[K];
    } else if (in_kcol || in_krow) {
      diag_buf = comm.recv(grid_.rank_of(kr, kc), fact_tag(K, kTagDiag))
                     .template as<T>();
      diag_ptr = &diag_buf;
    }
    if (in_kcol) {
      for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
        if (lblocks_[K][bi].empty()) continue;
        const index_t m = static_cast<index_t>(S.L[K][bi].rows.size());
        dense::trsm_right_upper(diag_ptr->data(), b, b,
                                lblocks_[K][bi].data(), m, m);
      }
    }
    // ---- step (2): triangular solves for the U row.
    if (in_krow) {
      for (std::size_t uj = 0; uj < S.U[K].size(); ++uj) {
        if (ublocks_[K][uj].empty()) continue;
        const index_t c = static_cast<index_t>(S.U[K][uj].cols.size());
        dense::trsm_left_lower_unit(diag_ptr->data(), b, b,
                                    ublocks_[K][uj].data(), c, b);
      }
    }

    // ---- communicate the panel: L across the process row, U down the
    // process column, pruned to the processes that own affected blocks.
    auto l_needed_by_col = [&](int c) {
      return opt.edag_pruning ? col_has_u(K, c) : true;
    };
    auto u_needed_by_row = [&](int r) {
      return opt.edag_pruning ? row_has_l(K, r) : true;
    };
    if (in_kcol) {
      // Pack my L blocks of column K (they are conceptually contiguous;
      // index[] and nzval[] travel as the paper's two messages).
      idx.clear();
      std::size_t total = 0;
      for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
        if (lblocks_[K][bi].empty()) continue;
        idx.push_back(S.L[K][bi].I);
        idx.push_back(static_cast<index_t>(S.L[K][bi].rows.size()));
        total += lblocks_[K][bi].size();
      }
      std::vector<T> packed;
      packed.reserve(total);
      for (const auto& blk : lblocks_[K])
        packed.insert(packed.end(), blk.begin(), blk.end());
      for (int c = 0; c < grid_.pc; ++c) {
        if (c == kc || !l_needed_by_col(c)) continue;
        comm.send_vec(grid_.rank_of(myrow_, c), fact_tag(K, kTagLIndex), idx);
        comm.send_vec(grid_.rank_of(myrow_, c), fact_tag(K, kTagLValue),
                      packed);
      }
    }
    if (in_krow) {
      idx.clear();
      std::size_t total = 0;
      for (std::size_t uj = 0; uj < S.U[K].size(); ++uj) {
        if (ublocks_[K][uj].empty()) continue;
        idx.push_back(S.U[K][uj].J);
        idx.push_back(static_cast<index_t>(S.U[K][uj].cols.size()));
        total += ublocks_[K][uj].size();
      }
      std::vector<T> packed;
      packed.reserve(total);
      for (const auto& blk : ublocks_[K])
        packed.insert(packed.end(), blk.begin(), blk.end());
      for (int r = 0; r < grid_.pr; ++r) {
        if (r == kr || !u_needed_by_row(r)) continue;
        comm.send_vec(grid_.rank_of(r, mycol_), fact_tag(K, kTagUIndex), idx);
        comm.send_vec(grid_.rank_of(r, mycol_), fact_tag(K, kTagUValue),
                      packed);
      }
    }

    // ---- receive the panel pieces this rank needs.
    const bool recv_l = (mycol_ != kc) && row_has_l(K, myrow_) &&
                        l_needed_by_col(mycol_);
    const bool recv_u = (myrow_ != kr) && col_has_u(K, mycol_) &&
                        u_needed_by_row(myrow_);
    std::vector<const T*> lptr(S.L[K].size(), nullptr);
    std::vector<const T*> uptr(S.U[K].size(), nullptr);
    if (mycol_ == kc) {
      for (std::size_t bi = 0; bi < S.L[K].size(); ++bi)
        if (!lblocks_[K][bi].empty()) lptr[bi] = lblocks_[K][bi].data();
    } else if (recv_l) {
      (void)comm.recv(grid_.rank_of(myrow_, kc), fact_tag(K, kTagLIndex));
      lrecv = comm.recv(grid_.rank_of(myrow_, kc), fact_tag(K, kTagLValue))
                  .template as<T>();
      std::size_t off = 0;
      for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
        if (grid_.prow_of(S.L[K][bi].I) != myrow_) continue;
        lptr[bi] = lrecv.data() + off;
        off += S.L[K][bi].rows.size() * static_cast<std::size_t>(b);
      }
    }
    if (myrow_ == kr) {
      for (std::size_t uj = 0; uj < S.U[K].size(); ++uj)
        if (!ublocks_[K][uj].empty()) uptr[uj] = ublocks_[K][uj].data();
    } else if (recv_u) {
      (void)comm.recv(grid_.rank_of(kr, mycol_), fact_tag(K, kTagUIndex));
      urecv = comm.recv(grid_.rank_of(kr, mycol_), fact_tag(K, kTagUValue))
                  .template as<T>();
      std::size_t off = 0;
      for (std::size_t uj = 0; uj < S.U[K].size(); ++uj) {
        if (grid_.pcol_of(S.U[K][uj].J) != mycol_) continue;
        uptr[uj] = urecv.data() + off;
        off += S.U[K][uj].cols.size() * static_cast<std::size_t>(b);
      }
    }

    // ---- step (3): rank-b update of the owned trailing blocks.
    for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
      const index_t I = S.L[K][bi].I;
      if (grid_.prow_of(I) != myrow_ || lptr[bi] == nullptr) continue;
      const auto& src_rows = S.L[K][bi].rows;
      const index_t m = static_cast<index_t>(src_rows.size());
      for (std::size_t uj = 0; uj < S.U[K].size(); ++uj) {
        const index_t J = S.U[K][uj].J;
        if (grid_.pcol_of(J) != mycol_ || uptr[uj] == nullptr) continue;
        const auto& src_cols = S.U[K][uj].cols;
        const index_t c = static_cast<index_t>(src_cols.size());
        scratch.assign(static_cast<std::size_t>(m) * c, T{});
        dense::gemm_minus(m, c, b, lptr[bi], m, uptr[uj], b, scratch.data(),
                          m);
        if (I == J) {
          T* dst = diag_[I].data();
          const index_t bI = S.block_cols(I);
          const index_t base = S.sn_start[I];
          for (index_t cc = 0; cc < c; ++cc)
            for (index_t rr = 0; rr < m; ++rr)
              dst[(src_rows[rr] - base) + (src_cols[cc] - base) * bI] +=
                  scratch[rr + cc * m];
        } else if (I > J) {
          // destination L block (I, J).
          std::size_t dbi = 0;
          while (S.L[J][dbi].I != I) ++dbi;
          const auto& dst_rows = S.L[J][dbi].rows;
          subset_positions(src_rows, dst_rows, rpos);
          T* dst = lblocks_[J][dbi].data();
          const index_t ldd = static_cast<index_t>(dst_rows.size());
          const index_t base = S.sn_start[J];
          for (index_t cc = 0; cc < c; ++cc) {
            T* dcol = dst + (src_cols[cc] - base) * ldd;
            for (index_t rr = 0; rr < m; ++rr)
              dcol[rpos[rr]] += scratch[rr + cc * m];
          }
        } else {
          std::size_t dbj = 0;
          while (S.U[I][dbj].J != J) ++dbj;
          const auto& dst_cols = S.U[I][dbj].cols;
          subset_positions(src_cols, dst_cols, cpos);
          T* dst = ublocks_[I][dbj].data();
          const index_t bI = S.block_cols(I);
          const index_t base = S.sn_start[I];
          for (index_t cc = 0; cc < c; ++cc) {
            T* dcol = dst + cpos[cc] * bI;
            for (index_t rr = 0; rr < m; ++rr)
              dcol[src_rows[rr] - base] += scratch[rr + cc * m];
          }
        }
      }
    }
  }
}

template <class T>
std::vector<T> DistributedLU<T>::solve(minimpi::Comm& comm,
                                       const std::vector<T>& b) {
  std::vector<T> y = solve_lower(comm, b);
  comm.barrier();
  std::vector<T> x = solve_upper(comm, y);
  comm.barrier();
  return x;
}

template <class T>
std::vector<T> DistributedLU<T>::solve_lower(minimpi::Comm& comm,
                                             const std::vector<T>& b) {
  const symbolic::SymbolicLU& S = *sym_;
  const index_t N = S.nsup;
  const SolveTags tags = lower_tags(N);
  const int me = comm.rank();

  // Static counters (Fig 9): fmod[I] = my block modifications feeding
  // x(I); pending[K] = messages (plus my own flush) the diag owner of K
  // waits for before x(K) can be solved.
  std::vector<index_t> fmod(static_cast<std::size_t>(N), 0);
  std::vector<index_t> pending(static_cast<std::size_t>(N), 0);
  std::vector<std::set<int>> contributors(static_cast<std::size_t>(N));
  count_t my_blocks = 0;
  for (index_t K = 0; K < N; ++K) {
    for (const auto& blk : S.L[K]) {
      const int owner = grid_.owner(blk.I, K);
      contributors[blk.I].insert(owner);
      if (owner == me) {
        fmod[blk.I]++;
        my_blocks++;
      }
    }
  }
  index_t my_diags = 0;
  for (index_t K = 0; K < N; ++K) {
    if (grid_.owner(K, K) != me) continue;
    my_diags++;
    // One decrement per contributing rank: remote ranks send an lsum
    // message, my own contribution flushes locally.
    pending[K] = static_cast<index_t>(contributors[K].size());
  }

  // Solution slices for diag-owned blocks, initialized with b.
  std::vector<std::vector<T>> xsol(static_cast<std::size_t>(N));
  std::vector<std::vector<T>> lsum(static_cast<std::size_t>(N));
  for (index_t K = 0; K < N; ++K) {
    if (grid_.owner(K, K) == me)
      xsol[K].assign(b.begin() + S.sn_start[K], b.begin() + S.sn_start[K + 1]);
    if (fmod[K] > 0)
      lsum[K].assign(static_cast<std::size_t>(S.block_cols(K)), T{});
  }

  index_t solved = 0;
  count_t processed = 0;

  // Forward declarations of the event handlers (they recurse).
  std::function<void(index_t, const std::vector<T>&)> process_x;
  std::function<void(index_t)> try_solve;

  auto flush = [&](index_t I) {
    const int owner = grid_.owner(I, I);
    if (owner == me) {
      for (std::size_t r = 0; r < lsum[I].size(); ++r)
        xsol[I][r] += lsum[I][r];
      pending[I]--;
      try_solve(I);
    } else {
      comm.send_vec(owner, tags.sum_base + static_cast<int>(I), lsum[I]);
    }
  };

  process_x = [&](index_t K, const std::vector<T>& xk) {
    for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
      if (grid_.owner(S.L[K][bi].I, K) != me) continue;
      const auto& blk = S.L[K][bi];
      const auto& rows = blk.rows;
      const index_t m = static_cast<index_t>(rows.size());
      const index_t bw = S.block_cols(K);
      const T* vals = lblocks_[K][bi].data();
      const index_t base = S.sn_start[blk.I];
      for (index_t c = 0; c < bw; ++c) {
        const T xc = xk[c];
        if (xc == T{}) continue;
        const T* col = vals + c * m;
        for (index_t r = 0; r < m; ++r)
          lsum[blk.I][rows[r] - base] -= col[r] * xc;
      }
      processed++;
      if (--fmod[blk.I] == 0) flush(blk.I);
    }
  };

  try_solve = [&](index_t K) {
    if (pending[K] != 0 || xsol[K].empty()) return;
    pending[K] = -1;  // mark solved
    dense::trsv_lower_unit(diag_[K].data(), S.block_cols(K),
                           S.block_cols(K), xsol[K].data());
    solved++;
    // Ship x(K) to the process rows that own blocks (I, K).
    std::set<int> dests;
    for (const auto& blk : S.L[K]) {
      const int owner = grid_.owner(blk.I, K);
      if (owner != me) dests.insert(owner);
    }
    for (int d : dests)
      comm.send_vec(d, tags.x_base + static_cast<int>(K), xsol[K]);
    process_x(K, xsol[K]);
  };

  for (index_t K = 0; K < N; ++K)
    if (grid_.owner(K, K) == me) try_solve(K);

  // Message-driven main loop (line (*) of Fig 9): act on whichever message
  // type arrives. Gather messages from ranks that finished early are
  // stashed for the gather phase below.
  std::vector<minimpi::Message> stash;
  while (processed < my_blocks || solved < my_diags) {
    minimpi::Message msg = comm.recv();
    if (msg.tag >= tags.gather_base) {
      stash.push_back(std::move(msg));
    } else if (msg.tag >= tags.sum_base) {
      const index_t K = static_cast<index_t>(msg.tag - tags.sum_base);
      const auto vals = msg.template as<T>();
      for (std::size_t r = 0; r < vals.size(); ++r) xsol[K][r] += vals[r];
      pending[K]--;
      try_solve(K);
    } else {
      const index_t K = static_cast<index_t>(msg.tag - tags.x_base);
      process_x(K, msg.template as<T>());
    }
  }

  // Gather the block solutions on rank 0, then replicate everywhere.
  std::vector<T> full(b.size(), T{});
  if (me == 0) {
    index_t expect = 0;
    for (index_t K = 0; K < N; ++K) {
      if (grid_.owner(K, K) == me)
        std::copy(xsol[K].begin(), xsol[K].end(),
                  full.begin() + S.sn_start[K]);
      else
        expect++;
    }
    auto place = [&](const minimpi::Message& msg) {
      const index_t K = static_cast<index_t>(msg.tag - tags.gather_base);
      const auto vals = msg.template as<T>();
      std::copy(vals.begin(), vals.end(), full.begin() + S.sn_start[K]);
    };
    for (const auto& msg : stash) place(msg);
    for (index_t k = static_cast<index_t>(stash.size()); k < expect; ++k)
      place(comm.recv(minimpi::kAnySource, minimpi::kAnyTag));
    for (int r = 1; r < comm.size(); ++r)
      comm.send_vec(r, tags.bcast, full);
  } else {
    GESP_ASSERT(stash.empty(), "unexpected stashed message on non-root");
    for (index_t K = 0; K < N; ++K)
      if (grid_.owner(K, K) == me)
        comm.send_vec(0, tags.gather_base + static_cast<int>(K), xsol[K]);
    full = comm.recv(0, tags.bcast).template as<T>();
  }
  return full;
}

template <class T>
std::vector<T> DistributedLU<T>::solve_upper(minimpi::Comm& comm,
                                             const std::vector<T>& y) {
  const symbolic::SymbolicLU& S = *sym_;
  const index_t N = S.nsup;
  const SolveTags tags = upper_tags(N);
  const int me = comm.rank();

  // The paper's "two vertical linked lists": per block column J, the list
  // of my U blocks (K, J) — U is stored by block rows, so column-wise
  // access needs this auxiliary indexing.
  std::vector<std::vector<std::pair<index_t, index_t>>> by_col(
      static_cast<std::size_t>(N));  // J -> [(K, uj index)]
  std::vector<index_t> bmod(static_cast<std::size_t>(N), 0);  // per K
  std::vector<index_t> pending(static_cast<std::size_t>(N), 0);
  std::vector<std::set<int>> contributors(static_cast<std::size_t>(N));
  // xdest[J]: ranks owning some block (K, J) — the broadcast targets of
  // x(J) down process column pcol(J).
  std::vector<std::set<int>> xdest(static_cast<std::size_t>(N));
  count_t my_blocks = 0;
  for (index_t K = 0; K < N; ++K) {
    for (std::size_t uj = 0; uj < S.U[K].size(); ++uj) {
      const index_t J = S.U[K][uj].J;
      const int owner = grid_.owner(K, J);
      contributors[K].insert(owner);
      xdest[J].insert(owner);
      if (owner == me) {
        by_col[J].emplace_back(K, static_cast<index_t>(uj));
        bmod[K]++;
        my_blocks++;
      }
    }
  }
  index_t my_diags = 0;
  for (index_t K = 0; K < N; ++K) {
    if (grid_.owner(K, K) != me) continue;
    my_diags++;
    pending[K] = static_cast<index_t>(contributors[K].size());
  }

  std::vector<std::vector<T>> xsol(static_cast<std::size_t>(N));
  std::vector<std::vector<T>> usum(static_cast<std::size_t>(N));
  for (index_t K = 0; K < N; ++K) {
    if (grid_.owner(K, K) == me)
      xsol[K].assign(y.begin() + S.sn_start[K], y.begin() + S.sn_start[K + 1]);
    if (bmod[K] > 0)
      usum[K].assign(static_cast<std::size_t>(S.block_cols(K)), T{});
  }

  index_t solved = 0;
  count_t processed = 0;
  std::function<void(index_t, const std::vector<T>&)> process_x;
  std::function<void(index_t)> try_solve;

  auto flush = [&](index_t K) {
    const int owner = grid_.owner(K, K);
    if (owner == me) {
      for (std::size_t r = 0; r < usum[K].size(); ++r)
        xsol[K][r] += usum[K][r];
      pending[K]--;
      try_solve(K);
    } else {
      comm.send_vec(owner, tags.sum_base + static_cast<int>(K), usum[K]);
    }
  };

  // Back substitution runs from the roots of the etree toward the leaves:
  // once x(J) is known, every block (K, J) subtracts U(K,J)·x(J).
  process_x = [&](index_t J, const std::vector<T>& xj) {
    const index_t baseJ = S.sn_start[J];
    for (const auto& [K, uj] : by_col[J]) {
      const auto& cols = S.U[K][uj].cols;
      const index_t bK = S.block_cols(K);
      const T* vals = ublocks_[K][uj].data();
      for (std::size_t cc = 0; cc < cols.size(); ++cc) {
        const T xc = xj[cols[cc] - baseJ];
        if (xc == T{}) continue;
        const T* col = vals + cc * static_cast<std::size_t>(bK);
        for (index_t r = 0; r < bK; ++r) usum[K][r] -= col[r] * xc;
      }
      processed++;
      if (--bmod[K] == 0) flush(K);
    }
  };

  try_solve = [&](index_t K) {
    if (pending[K] != 0 || xsol[K].empty()) return;
    pending[K] = -1;
    dense::trsv_upper(diag_[K].data(), S.block_cols(K), S.block_cols(K),
                      xsol[K].data());
    solved++;
    for (int d : xdest[K])
      if (d != me) comm.send_vec(d, tags.x_base + static_cast<int>(K),
                                 xsol[K]);
    process_x(K, xsol[K]);
  };

  for (index_t K = N - 1; K >= 0; --K)
    if (grid_.owner(K, K) == me) try_solve(K);

  std::vector<minimpi::Message> stash;
  while (processed < my_blocks || solved < my_diags) {
    minimpi::Message msg = comm.recv();
    if (msg.tag >= tags.gather_base) {
      stash.push_back(std::move(msg));
    } else if (msg.tag >= tags.sum_base) {
      const index_t K = static_cast<index_t>(msg.tag - tags.sum_base);
      const auto vals = msg.template as<T>();
      for (std::size_t r = 0; r < vals.size(); ++r) xsol[K][r] += vals[r];
      pending[K]--;
      try_solve(K);
    } else {
      const index_t K = static_cast<index_t>(msg.tag - tags.x_base);
      process_x(K, msg.template as<T>());
    }
  }

  std::vector<T> full(y.size(), T{});
  if (me == 0) {
    index_t expect = 0;
    for (index_t K = 0; K < N; ++K) {
      if (grid_.owner(K, K) == me)
        std::copy(xsol[K].begin(), xsol[K].end(),
                  full.begin() + S.sn_start[K]);
      else
        expect++;
    }
    auto place = [&](const minimpi::Message& msg) {
      const index_t K = static_cast<index_t>(msg.tag - tags.gather_base);
      const auto vals = msg.template as<T>();
      std::copy(vals.begin(), vals.end(), full.begin() + S.sn_start[K]);
    };
    for (const auto& msg : stash) place(msg);
    for (index_t k = static_cast<index_t>(stash.size()); k < expect; ++k)
      place(comm.recv(minimpi::kAnySource, minimpi::kAnyTag));
    for (int r = 1; r < comm.size(); ++r)
      comm.send_vec(r, tags.bcast, full);
  } else {
    GESP_ASSERT(stash.empty(), "unexpected stashed message on non-root");
    for (index_t K = 0; K < N; ++K)
      if (grid_.owner(K, K) == me)
        comm.send_vec(0, tags.gather_base + static_cast<int>(K), xsol[K]);
    full = comm.recv(0, tags.bcast).template as<T>();
  }
  return full;
}

template <class T>
sparse::CscMatrix<T> DistributedLU<T>::gather_l(minimpi::Comm& comm) const {
  const symbolic::SymbolicLU& S = *sym_;
  // Serialize owned L entries as (i, j, value) triplets toward rank 0.
  std::vector<T> vals;
  std::vector<index_t> ij;
  for (index_t K = 0; K < S.nsup; ++K) {
    const index_t b = S.block_cols(K);
    const index_t base = S.sn_start[K];
    if (!diag_[K].empty()) {
      for (index_t c = 0; c < b; ++c)
        for (index_t r = c + 1; r < b; ++r) {
          const T v = diag_[K][r + c * b];
          if (v == T{}) continue;
          ij.push_back(base + r);
          ij.push_back(base + c);
          vals.push_back(v);
        }
    }
    for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
      if (lblocks_[K][bi].empty()) continue;
      const auto& rows = S.L[K][bi].rows;
      const index_t m = static_cast<index_t>(rows.size());
      for (index_t c = 0; c < b; ++c)
        for (index_t r = 0; r < m; ++r) {
          const T v = lblocks_[K][bi][r + c * m];
          if (v == T{}) continue;
          ij.push_back(rows[r]);
          ij.push_back(base + c);
          vals.push_back(v);
        }
    }
  }
  const int tag = gather_l_tag(S.nsup);
  if (comm.rank() != 0) {
    comm.send_vec(0, tag, ij);
    comm.send_vec(0, tag, vals);
    comm.barrier();
    return {};
  }
  sparse::CooMatrix<T> L(S.n, S.n);
  for (index_t d = 0; d < S.n; ++d) L.add(d, d, T{1});
  auto absorb = [&](const std::vector<index_t>& ij2,
                    const std::vector<T>& v2) {
    for (std::size_t k = 0; k < v2.size(); ++k)
      L.add(ij2[2 * k], ij2[2 * k + 1], v2[k]);
  };
  absorb(ij, vals);
  for (int r = 1; r < comm.size(); ++r) {
    const auto ij2 = comm.recv(r, tag).template as<index_t>();
    const auto v2 = comm.recv(r, tag).template as<T>();
    absorb(ij2, v2);
  }
  comm.barrier();
  return L.to_csc();
}

template <class T>
sparse::CscMatrix<T> DistributedLU<T>::gather_u(minimpi::Comm& comm) const {
  const symbolic::SymbolicLU& S = *sym_;
  std::vector<T> vals;
  std::vector<index_t> ij;
  for (index_t K = 0; K < S.nsup; ++K) {
    const index_t b = S.block_cols(K);
    const index_t base = S.sn_start[K];
    if (!diag_[K].empty()) {
      for (index_t c = 0; c < b; ++c)
        for (index_t r = 0; r <= c; ++r) {
          const T v = diag_[K][r + c * b];
          if (v == T{} && r != c) continue;
          ij.push_back(base + r);
          ij.push_back(base + c);
          vals.push_back(v);
        }
    }
    for (std::size_t uj = 0; uj < S.U[K].size(); ++uj) {
      if (ublocks_[K][uj].empty()) continue;
      const auto& cols = S.U[K][uj].cols;
      for (std::size_t cc = 0; cc < cols.size(); ++cc)
        for (index_t r = 0; r < b; ++r) {
          const T v = ublocks_[K][uj][r + cc * static_cast<std::size_t>(b)];
          if (v == T{}) continue;
          ij.push_back(base + r);
          ij.push_back(cols[cc]);
          vals.push_back(v);
        }
    }
  }
  const int tag = gather_u_tag(S.nsup);
  if (comm.rank() != 0) {
    comm.send_vec(0, tag, ij);
    comm.send_vec(0, tag, vals);
    comm.barrier();
    return {};
  }
  sparse::CooMatrix<T> U(S.n, S.n);
  auto absorb = [&](const std::vector<index_t>& ij2,
                    const std::vector<T>& v2) {
    for (std::size_t k = 0; k < v2.size(); ++k)
      U.add(ij2[2 * k], ij2[2 * k + 1], v2[k]);
  };
  absorb(ij, vals);
  for (int r = 1; r < comm.size(); ++r) {
    const auto ij2 = comm.recv(r, tag).template as<index_t>();
    const auto v2 = comm.recv(r, tag).template as<T>();
    absorb(ij2, v2);
  }
  comm.barrier();
  return U.to_csc();
}

template class DistributedLU<double>;
template class DistributedLU<Complex>;

}  // namespace gesp::dist
