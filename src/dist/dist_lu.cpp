#include "dist/dist_lu.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>
#include <set>
#include <utility>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "dense/kernels.hpp"
#include "sparse/coo.hpp"

namespace gesp::dist {
namespace {

// Tag layout. Factorization: K*8 + type; solves and gather live above the
// factorization range so a late message can never be mis-matched.
constexpr int kTagDiag = 0;
constexpr int kTagLIndex = 1;
constexpr int kTagLValue = 2;
constexpr int kTagUIndex = 3;
constexpr int kTagUValue = 4;
constexpr int kNumFactTags = 5;

int fact_tag(index_t K, int type) { return static_cast<int>(K) * 8 + type; }

struct SolveTags {
  int x_base, sum_base;
};

SolveTags lower_tags(index_t nsup) {
  const int n = static_cast<int>(nsup);
  return {n * 8, n * 9};
}
SolveTags upper_tags(index_t nsup) {
  const int n = static_cast<int>(nsup);
  return {n * 10, n * 11};
}
// Vector gather/broadcast tags (shared by the lower/upper replication —
// gather phases are barrier-separated, so reuse is safe).
int gather_vec_tag(index_t nsup) { return static_cast<int>(nsup) * 12; }
int bcast_vec_tag(index_t nsup) { return static_cast<int>(nsup) * 16; }
// Factor-gather tags (above everything else).
int gather_l_tag(index_t nsup) { return static_cast<int>(nsup) * 16 + 2; }
int gather_u_tag(index_t nsup) { return static_cast<int>(nsup) * 16 + 3; }

/// Position of each element of `sub` inside sorted superset `full`.
void subset_positions(std::span<const index_t> sub,
                      std::span<const index_t> full,
                      std::vector<index_t>& pos) {
  pos.resize(sub.size());
  std::size_t q = 0;
  for (std::size_t p = 0; p < sub.size(); ++p) {
    while (q < full.size() && full[q] < sub[p]) ++q;
    GESP_ASSERT(q < full.size() && full[q] == sub[p],
                "block structure not closed under updates");
    pos[p] = static_cast<index_t>(q);
  }
}

// Task types of the factorization schedule, in strict program order per K.
// kUpdNear(K) covers the update pairs whose destination lies in panel K+1
// (the blocks the next panel reads); kUpdRest(K) covers the remainder.
// Splitting them is what enables look-ahead: panel K+1 only depends on
// kUpdNear(K), while kUpdRest(K) may drain later. Every destination block
// still receives its updates in ascending source order (the kUpdRest chain
// plus the near/rest classification — see docs/INTERNALS.md §13), so the
// factors are bitwise identical under any interleaving.
enum TaskType {
  kDfac = 0,    // GETRF of my diagonal block (K,K)
  kLpan = 1,    // TRSM of my L blocks of column K + panel broadcast
  kUpan = 2,    // TRSM of my U blocks of row K + panel broadcast
  kUpdNear = 3, // update pairs with min(I,J) == K+1
  kUpdRest = 4, // update pairs with min(I,J) >  K+1
};

}  // namespace

template <class T>
DistributedLU<T>::DistributedLU(minimpi::Comm& comm, const ProcessGrid& grid,
                                std::shared_ptr<const symbolic::SymbolicLU> sym,
                                const sparse::CscMatrix<T>& A,
                                const DistOptions& opt)
    : grid_(grid), sym_(std::move(sym)), opt_(opt) {
  GESP_CHECK(grid_.nprocs() == comm.size(), Errc::invalid_argument,
             "process grid does not match communicator size");
  myrow_ = grid_.rank_row(comm.rank());
  mycol_ = grid_.rank_col(comm.rank());
  scatter_initial(A);
  factorize(comm, opt_);
  comm.barrier();
}

template <class T>
void DistributedLU<T>::refactorize(minimpi::Comm& comm,
                                   const sparse::CscMatrix<T>& A,
                                   const DistOptions& opt) {
  opt_ = opt;
  scatter_initial(A);  // resets owned blocks to zero, then scatters A
  factorize(comm, opt_);
  comm.barrier();
}

template <class T>
void DistributedLU<T>::scatter_initial(const sparse::CscMatrix<T>& A) {
  const symbolic::SymbolicLU& S = *sym_;
  const index_t N = S.nsup;
  diag_.resize(static_cast<std::size_t>(N));
  lblocks_.resize(static_cast<std::size_t>(N));
  ublocks_.resize(static_cast<std::size_t>(N));
  for (index_t K = 0; K < N; ++K) {
    const std::size_t b = static_cast<std::size_t>(S.block_cols(K));
    if (grid_.prow_of(K) == myrow_ && grid_.pcol_of(K) == mycol_)
      diag_[K].assign(b * b, T{});
    lblocks_[K].resize(S.L[K].size());
    if (grid_.pcol_of(K) == mycol_) {
      for (std::size_t bi = 0; bi < S.L[K].size(); ++bi)
        if (grid_.prow_of(S.L[K][bi].I) == myrow_)
          lblocks_[K][bi].assign(S.L[K][bi].rows.size() * b, T{});
    }
    ublocks_[K].resize(S.U[K].size());
    if (grid_.prow_of(K) == myrow_) {
      for (std::size_t uj = 0; uj < S.U[K].size(); ++uj)
        if (grid_.pcol_of(S.U[K][uj].J) == mycol_)
          ublocks_[K][uj].assign(b * S.U[K][uj].cols.size(), T{});
    }
  }
  // Scatter owned entries of A (the matrix is replicated on entry, as the
  // paper's pre-parallel-symbolic implementation does).
  for (index_t j = 0; j < S.n; ++j) {
    const index_t J = S.col_to_sn[j];
    const index_t cj = j - S.sn_start[J];
    const index_t bj = S.block_cols(J);
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p) {
      const index_t i = A.rowind[p];
      const index_t I = S.col_to_sn[i];
      if (grid_.owner(I, J) != grid_.rank_of(myrow_, mycol_)) continue;
      const T v = A.values[p];
      if (I == J) {
        diag_[J][(i - S.sn_start[J]) + cj * bj] = v;
      } else if (I > J) {
        // L block: locate block and row position.
        for (std::size_t bi = 0; bi < S.L[J].size(); ++bi) {
          if (S.L[J][bi].I != I) continue;
          const auto& rows = S.L[J][bi].rows;
          const auto it = std::lower_bound(rows.begin(), rows.end(), i);
          lblocks_[J][bi][(it - rows.begin()) +
                          cj * static_cast<index_t>(rows.size())] = v;
          break;
        }
      } else {
        for (std::size_t uj = 0; uj < S.U[I].size(); ++uj) {
          if (S.U[I][uj].J != J) continue;
          const auto& cols = S.U[I][uj].cols;
          const auto it = std::lower_bound(cols.begin(), cols.end(), j);
          ublocks_[I][uj][(i - S.sn_start[I]) +
                          (it - cols.begin()) * S.block_cols(I)] = v;
          break;
        }
      }
    }
  }
}

template <class T>
void DistributedLU<T>::factorize(minimpi::Comm& comm, const DistOptions& opt) {
  const symbolic::SymbolicLU& S = *sym_;
  const index_t N = S.nsup;
  const count_t msgs0 = comm.stats().messages_sent;
  const count_t bytes0 = comm.stats().bytes_sent;
  pivot_stats_ = {};
  lookahead_hits_ = 0;
  dense::PivotPolicy policy;
  policy.tiny_threshold = opt.tiny_threshold;

  // Static predicates — every rank evaluates these identically, which is
  // why no handshaking is ever needed.
  auto row_has_l = [&](index_t K, int r) {
    for (const auto& blk : S.L[K])
      if (grid_.prow_of(blk.I) == r) return true;
    return false;
  };
  auto col_has_u = [&](index_t K, int c) {
    for (const auto& blk : S.U[K])
      if (grid_.pcol_of(blk.J) == c) return true;
    return false;
  };
  auto l_needed_by_col = [&](index_t K, int c) {
    return opt.edag_pruning ? col_has_u(K, c) : true;
  };
  auto u_needed_by_row = [&](index_t K, int r) {
    return opt.edag_pruning ? row_has_l(K, r) : true;
  };

  // ---- build this rank's task list (construction order == the strict
  // program order: per K, DFAC < LPAN < UPAN < UPD-near < UPD-rest).
  struct Task {
    int type;
    index_t K;
    int pending = 0;
  };
  std::vector<Task> tasks;
  std::vector<int> task_of(static_cast<std::size_t>(N) * kNumFactTags, -1);
  auto tid = [&](index_t K, int type) -> int {
    return task_of[static_cast<std::size_t>(K) * kNumFactTags + type];
  };
  auto add_task = [&](int type, index_t K) {
    task_of[static_cast<std::size_t>(K) * kNumFactTags + type] =
        static_cast<int>(tasks.size());
    tasks.push_back({type, K, 0});
  };
  for (index_t K = 0; K < N; ++K) {
    const int kr = grid_.prow_of(K), kc = grid_.pcol_of(K);
    if (myrow_ == kr && mycol_ == kc) add_task(kDfac, K);
    if (mycol_ == kc && row_has_l(K, myrow_)) add_task(kLpan, K);
    if (myrow_ == kr && col_has_u(K, mycol_)) add_task(kUpan, K);
    bool near = false, rest = false;
    for (const auto& lb : S.L[K]) {
      if (grid_.prow_of(lb.I) != myrow_) continue;
      for (const auto& ub : S.U[K]) {
        if (grid_.pcol_of(ub.J) != mycol_) continue;
        (std::min(lb.I, ub.J) == K + 1 ? near : rest) = true;
      }
    }
    if (near) add_task(kUpdNear, K);
    if (rest) add_task(kUpdRest, K);
  }

  // ---- dependency counters.
  // Availability slots: a panel TRSM waits for its diagonal (local DFAC or
  // a diag message); an update task waits for the L and U panel data
  // (local LPAN/UPAN or the broadcast messages).
  for (auto& t : tasks) {
    if (t.type == kLpan || t.type == kUpan) t.pending += 1;
    if (t.type == kUpdNear || t.type == kUpdRest) t.pending += 2;
  }
  // The kUpdRest chain: this rank's rest-updates execute in ascending K,
  // and a near-update (or any later rest-update) waits for the last
  // rest-update with a smaller source. Combined with the near/rest split
  // this guarantees every destination block accumulates its updates in
  // ascending source order — the bitwise-determinism invariant.
  std::vector<index_t> rest_Ks;
  for (const auto& t : tasks)
    if (t.type == kUpdRest) rest_Ks.push_back(t.K);
  std::vector<std::vector<int>> chain_succ(tasks.size());
  for (std::size_t p = 0; p + 1 < rest_Ks.size(); ++p) {
    const int pred = tid(rest_Ks[p], kUpdRest);
    const int succ = tid(rest_Ks[p + 1], kUpdRest);
    chain_succ[pred].push_back(succ);
    tasks[succ].pending++;
  }
  for (const auto& t : tasks) {
    if (t.type != kUpdNear) continue;
    // Largest rest source strictly below this near-update's source.
    const auto it = std::lower_bound(rest_Ks.begin(), rest_Ks.end(), t.K);
    if (it == rest_Ks.begin()) continue;
    const int pred = tid(*(it - 1), kUpdRest);
    const int self = tid(t.K, kUpdNear);
    chain_succ[pred].push_back(self);
    tasks[self].pending++;
  }
  // Pair edges: each update pair writing a block of panel M blocks the
  // panel task of M that reads it (pair-granular: the update task
  // decrements once per pair as it applies them).
  for (index_t K = 0; K < N; ++K) {
    if (tid(K, kUpdNear) < 0 && tid(K, kUpdRest) < 0) continue;
    for (const auto& lb : S.L[K]) {
      if (grid_.prow_of(lb.I) != myrow_) continue;
      for (const auto& ub : S.U[K]) {
        if (grid_.pcol_of(ub.J) != mycol_) continue;
        int dest;
        if (lb.I == ub.J)
          dest = tid(lb.I, kDfac);
        else if (lb.I > ub.J)
          dest = tid(ub.J, kLpan);
        else
          dest = tid(lb.I, kUpan);
        GESP_ASSERT(dest >= 0, "update destination panel task missing");
        tasks[dest].pending++;
      }
    }
  }

  // ---- ready queue (pipelined mode): min-heap on the look-ahead priority.
  // Panel tasks of K+1 outrank the rest-updates of K ((K+1)*8+7 > (K+1)*8+2)
  // — that preference IS the look-ahead.
  auto prio = [](const Task& t) -> long {
    const long K = t.K;
    switch (t.type) {
      case kDfac: return K * 8 + 0;
      case kLpan: return K * 8 + 1;
      case kUpan: return K * 8 + 2;
      case kUpdNear: return K * 8 + 3;
      default: return (K + 1) * 8 + 7;  // kUpdRest yields to panel K+1
    }
  };
  using HeapItem = std::pair<long, int>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>>
      ready;
  auto dec = [&](int id) {
    if (id < 0) return;
    if (--tasks[id].pending == 0)
      ready.push({prio(tasks[id]), id});
  };

  // ---- message bookkeeping. First arrival wins (a duplicated chaos
  // delivery must not double-decrement a counter); index messages carry
  // structure every rank already knows statically, so they are drained
  // and discarded.
  //
  // Static pivoting means every rank can enumerate, without communication,
  // exactly which factorization messages will be addressed to it (the
  // paper's scalability property). The schedule stops *blocking* once its
  // tasks are done, so any message it was sent but never needed (e.g.
  // un-pruned broadcasts with edag_pruning off, or index messages) is
  // drained at the end — nothing may linger in the mailbox to pollute the
  // wildcard receives of the solve phase, and a dropped message is always
  // detected as a missing expected arrival.
  std::vector<std::vector<T>> diag_recv(static_cast<std::size_t>(N));
  std::vector<std::vector<T>> lrecv(static_cast<std::size_t>(N));
  std::vector<std::vector<T>> urecv(static_cast<std::size_t>(N));
  std::vector<unsigned char> seen(static_cast<std::size_t>(N) * kNumFactTags,
                                  0);
  std::size_t nexpected = 0;
  for (index_t K = 0; K < N; ++K) {
    const int kr = grid_.prow_of(K), kc = grid_.pcol_of(K);
    if ((mycol_ == kc && myrow_ != kr && row_has_l(K, myrow_)) ||
        (myrow_ == kr && mycol_ != kc && col_has_u(K, mycol_)))
      nexpected += 1;  // the factored diagonal block
    if (mycol_ != kc && row_has_l(K, myrow_) && l_needed_by_col(K, mycol_))
      nexpected += 2;  // L index + values from my process row's panel rank
    if (myrow_ != kr && col_has_u(K, mycol_) && u_needed_by_row(K, myrow_))
      nexpected += 2;  // U index + values from my process column's panel rank
  }
  std::size_t nseen = 0;
  auto handle = [&](minimpi::Message msg) {
    GESP_ASSERT(msg.tag >= 0 && msg.tag < static_cast<int>(N) * 8,
                "non-factorization message during factorize");
    const index_t K = static_cast<index_t>(msg.tag / 8);
    const int type = msg.tag % 8;
    auto& flag = seen[static_cast<std::size_t>(K) * kNumFactTags + type];
    if (flag) return;
    flag = 1;
    nseen++;
    switch (type) {
      case kTagDiag:
        diag_recv[K] = msg.template as<T>();
        dec(tid(K, kLpan));
        dec(tid(K, kUpan));
        break;
      case kTagLValue:
        lrecv[K] = msg.template as<T>();
        dec(tid(K, kUpdNear));
        dec(tid(K, kUpdRest));
        break;
      case kTagUValue:
        urecv[K] = msg.template as<T>();
        dec(tid(K, kUpdNear));
        dec(tid(K, kUpdRest));
        break;
      default:  // kTagLIndex / kTagUIndex: static structure, nothing to do
        break;
    }
  };

  // ---- task bodies (the arithmetic is identical to the strict loop:
  // same kernels, same scratch handling, same scatter-add order).
  std::vector<T> scratch;
  std::vector<index_t> rpos, cpos, idx;
  std::size_t rest_ptr = 0;  // rest-updates complete in ascending K

  auto note_lookahead = [&](index_t K) {
    if (rest_ptr < rest_Ks.size() && rest_Ks[rest_ptr] < K)
      lookahead_hits_++;
  };

  auto exec_dfac = [&](index_t K) {
    GESP_TRACE_SPAN_ID("dist", "panel", K);
    note_lookahead(K);
    const index_t b = S.block_cols(K);
    const int kr = grid_.prow_of(K), kc = grid_.pcol_of(K);
    dense::getrf(diag_[K].data(), b, b, policy, pivot_stats_);
    // Ship the factored diagonal block to the column / row peers that
    // hold L / U blocks of this panel.
    for (int r = 0; r < grid_.pr; ++r)
      if (r != kr && row_has_l(K, r))
        comm.send_vec(grid_.rank_of(r, kc), fact_tag(K, kTagDiag), diag_[K]);
    for (int c = 0; c < grid_.pc; ++c)
      if (c != kc && col_has_u(K, c))
        comm.send_vec(grid_.rank_of(kr, c), fact_tag(K, kTagDiag), diag_[K]);
    dec(tid(K, kLpan));
    dec(tid(K, kUpan));
  };

  auto exec_lpan = [&](index_t K) {
    GESP_TRACE_SPAN_ID("dist", "panel", K);
    note_lookahead(K);
    const index_t b = S.block_cols(K);
    const int kr = grid_.prow_of(K), kc = grid_.pcol_of(K);
    const bool own_diag = (myrow_ == kr && mycol_ == kc);
    const T* diag = own_diag ? diag_[K].data() : diag_recv[K].data();
    for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
      if (lblocks_[K][bi].empty()) continue;
      const index_t m = static_cast<index_t>(S.L[K][bi].rows.size());
      dense::trsm_right_upper(diag, b, b, lblocks_[K][bi].data(), m, m);
    }
    // Pack my L blocks of column K (they are conceptually contiguous;
    // index[] and nzval[] travel as the paper's two messages).
    idx.clear();
    std::size_t total = 0;
    for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
      if (lblocks_[K][bi].empty()) continue;
      idx.push_back(S.L[K][bi].I);
      idx.push_back(static_cast<index_t>(S.L[K][bi].rows.size()));
      total += lblocks_[K][bi].size();
    }
    std::vector<T> packed;
    packed.reserve(total);
    for (const auto& blk : lblocks_[K])
      packed.insert(packed.end(), blk.begin(), blk.end());
    for (int c = 0; c < grid_.pc; ++c) {
      if (c == kc || !l_needed_by_col(K, c)) continue;
      comm.send_vec(grid_.rank_of(myrow_, c), fact_tag(K, kTagLIndex), idx);
      comm.send_vec(grid_.rank_of(myrow_, c), fact_tag(K, kTagLValue),
                    packed);
    }
    if (!own_diag) diag_recv[K] = {};  // sole local user of the copy
    dec(tid(K, kUpdNear));
    dec(tid(K, kUpdRest));
  };

  auto exec_upan = [&](index_t K) {
    GESP_TRACE_SPAN_ID("dist", "panel", K);
    note_lookahead(K);
    const index_t b = S.block_cols(K);
    const int kr = grid_.prow_of(K), kc = grid_.pcol_of(K);
    const bool own_diag = (myrow_ == kr && mycol_ == kc);
    const T* diag = own_diag ? diag_[K].data() : diag_recv[K].data();
    for (std::size_t uj = 0; uj < S.U[K].size(); ++uj) {
      if (ublocks_[K][uj].empty()) continue;
      const index_t c = static_cast<index_t>(S.U[K][uj].cols.size());
      dense::trsm_left_lower_unit(diag, b, b, ublocks_[K][uj].data(), c, b);
    }
    idx.clear();
    std::size_t total = 0;
    for (std::size_t uj = 0; uj < S.U[K].size(); ++uj) {
      if (ublocks_[K][uj].empty()) continue;
      idx.push_back(S.U[K][uj].J);
      idx.push_back(static_cast<index_t>(S.U[K][uj].cols.size()));
      total += ublocks_[K][uj].size();
    }
    std::vector<T> packed;
    packed.reserve(total);
    for (const auto& blk : ublocks_[K])
      packed.insert(packed.end(), blk.begin(), blk.end());
    for (int r = 0; r < grid_.pr; ++r) {
      if (r == kr || !u_needed_by_row(K, r)) continue;
      comm.send_vec(grid_.rank_of(r, mycol_), fact_tag(K, kTagUIndex), idx);
      comm.send_vec(grid_.rank_of(r, mycol_), fact_tag(K, kTagUValue),
                    packed);
    }
    if (!own_diag) diag_recv[K] = {};
    dec(tid(K, kUpdNear));
    dec(tid(K, kUpdRest));
  };

  auto exec_upd = [&](index_t K, bool near_class, int self_id) {
    GESP_TRACE_SPAN_ID("dist", "update", K);
    const index_t b = S.block_cols(K);
    const int kr = grid_.prow_of(K), kc = grid_.pcol_of(K);
    // Panel data pointers: my own TRSM'd blocks when in the panel's
    // process column/row, else the packed broadcast payloads.
    std::vector<const T*> lptr(S.L[K].size(), nullptr);
    std::vector<const T*> uptr(S.U[K].size(), nullptr);
    if (mycol_ == kc) {
      for (std::size_t bi = 0; bi < S.L[K].size(); ++bi)
        if (!lblocks_[K][bi].empty()) lptr[bi] = lblocks_[K][bi].data();
    } else {
      std::size_t off = 0;
      for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
        if (grid_.prow_of(S.L[K][bi].I) != myrow_) continue;
        lptr[bi] = lrecv[K].data() + off;
        off += S.L[K][bi].rows.size() * static_cast<std::size_t>(b);
      }
    }
    if (myrow_ == kr) {
      for (std::size_t uj = 0; uj < S.U[K].size(); ++uj)
        if (!ublocks_[K][uj].empty()) uptr[uj] = ublocks_[K][uj].data();
    } else {
      std::size_t off = 0;
      for (std::size_t uj = 0; uj < S.U[K].size(); ++uj) {
        if (grid_.pcol_of(S.U[K][uj].J) != mycol_) continue;
        uptr[uj] = urecv[K].data() + off;
        off += S.U[K][uj].cols.size() * static_cast<std::size_t>(b);
      }
    }
    // Rank-b update of the owned trailing blocks in this class. Distinct
    // pairs write distinct destinations, so the near/rest split cannot
    // change any accumulation order within one source K.
    for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
      const index_t I = S.L[K][bi].I;
      if (grid_.prow_of(I) != myrow_ || lptr[bi] == nullptr) continue;
      const auto& src_rows = S.L[K][bi].rows;
      const index_t m = static_cast<index_t>(src_rows.size());
      for (std::size_t uj = 0; uj < S.U[K].size(); ++uj) {
        const index_t J = S.U[K][uj].J;
        if (grid_.pcol_of(J) != mycol_ || uptr[uj] == nullptr) continue;
        if ((std::min(I, J) == K + 1) != near_class) continue;
        const auto& src_cols = S.U[K][uj].cols;
        const index_t c = static_cast<index_t>(src_cols.size());
        scratch.assign(static_cast<std::size_t>(m) * c, T{});
        dense::gemm_minus(m, c, b, lptr[bi], m, uptr[uj], b, scratch.data(),
                          m);
        if (I == J) {
          T* dst = diag_[I].data();
          const index_t bI = S.block_cols(I);
          const index_t base = S.sn_start[I];
          for (index_t cc = 0; cc < c; ++cc)
            for (index_t rr = 0; rr < m; ++rr)
              dst[(src_rows[rr] - base) + (src_cols[cc] - base) * bI] +=
                  scratch[rr + cc * m];
          dec(tid(I, kDfac));
        } else if (I > J) {
          // destination L block (I, J).
          std::size_t dbi = 0;
          while (S.L[J][dbi].I != I) ++dbi;
          const auto& dst_rows = S.L[J][dbi].rows;
          subset_positions(src_rows, dst_rows, rpos);
          T* dst = lblocks_[J][dbi].data();
          const index_t ldd = static_cast<index_t>(dst_rows.size());
          const index_t base = S.sn_start[J];
          for (index_t cc = 0; cc < c; ++cc) {
            T* dcol = dst + (src_cols[cc] - base) * ldd;
            for (index_t rr = 0; rr < m; ++rr)
              dcol[rpos[rr]] += scratch[rr + cc * m];
          }
          dec(tid(J, kLpan));
        } else {
          std::size_t dbj = 0;
          while (S.U[I][dbj].J != J) ++dbj;
          const auto& dst_cols = S.U[I][dbj].cols;
          subset_positions(src_cols, dst_cols, cpos);
          T* dst = ublocks_[I][dbj].data();
          const index_t bI = S.block_cols(I);
          const index_t base = S.sn_start[I];
          for (index_t cc = 0; cc < c; ++cc) {
            T* dcol = dst + cpos[cc] * bI;
            for (index_t rr = 0; rr < m; ++rr)
              dcol[src_rows[rr] - base] += scratch[rr + cc * m];
          }
          dec(tid(I, kUpan));
        }
      }
    }
    if (!near_class) rest_ptr++;
    for (int succ : chain_succ[self_id]) dec(succ);
    // Free the broadcast payloads once both update classes for K are done.
    const int other = near_class ? tid(K, kUpdRest) : tid(K, kUpdNear);
    if (other < 0 || tasks[other].pending < 0) {
      lrecv[K] = {};
      urecv[K] = {};
    }
  };

  auto execute = [&](int id) {
    Task& t = tasks[id];
    switch (t.type) {
      case kDfac: exec_dfac(t.K); break;
      case kLpan: exec_lpan(t.K); break;
      case kUpan: exec_upan(t.K); break;
      case kUpdNear: exec_upd(t.K, true, id); break;
      default: exec_upd(t.K, false, id); break;
    }
    t.pending = -1;  // mark done (distinguishes from ready)
  };

  // Seed the queue with the tasks that start ready.
  for (int id = 0; id < static_cast<int>(tasks.size()); ++id)
    if (tasks[id].pending == 0) ready.push({prio(tasks[id]), id});

  if (opt.pipelined) {
    // Message-driven scheduler: drain arrivals, then run the lowest-key
    // ready task; block for a message only when nothing is runnable.
    // Execution linearizes to the strict order (every dependency edge
    // points forward in the strict keys), so the loop cannot deadlock.
    std::size_t ndone = 0;
    while (ndone < tasks.size()) {
      while (comm.probe()) handle(comm.recv());
      if (!ready.empty()) {
        const int id = ready.top().second;
        ready.pop();
        execute(id);
        ndone++;
      } else {
        handle(comm.recv());
      }
    }
  } else {
    // Strict mode: replay the tasks in program order (the construction
    // order), blocking on messages until the head task is runnable — the
    // original per-K loop, expressed over the same task graph.
    for (int id = 0; id < static_cast<int>(tasks.size()); ++id) {
      while (tasks[id].pending > 0) handle(comm.recv());
      execute(id);
    }
  }

  // Drain every remaining message addressed to this rank (see above): the
  // mailbox must be empty of factorization traffic before the solve phase.
  while (nseen < nexpected) handle(comm.recv());

  metrics::global().counter("dist.msgs").inc(comm.stats().messages_sent -
                                             msgs0);
  metrics::global().counter("dist.bytes").inc(comm.stats().bytes_sent -
                                              bytes0);
  metrics::global().counter("dist.lookahead_hits").inc(lookahead_hits_);
}

template <class T>
double DistributedLU<T>::factor_entry_max() const {
  using std::abs;
  const symbolic::SymbolicLU& S = *sym_;
  double m = 0.0;
  for (index_t K = 0; K < S.nsup; ++K) {
    const index_t b = S.block_cols(K);
    if (!diag_[K].empty()) {
      for (index_t c = 0; c < b; ++c)
        for (index_t r = 0; r <= c; ++r)
          m = std::max(m, static_cast<double>(abs(diag_[K][r + c * b])));
    }
    for (const auto& blk : ublocks_[K])
      for (const T& v : blk)
        m = std::max(m, static_cast<double>(abs(v)));
  }
  return m;
}

template <class T>
void DistributedLU<T>::solve(minimpi::Comm& comm, std::span<const T> b,
                             std::span<T> x) {
  GESP_CHECK(b.size() == static_cast<std::size_t>(sym_->n) &&
                 x.size() == b.size(),
             Errc::invalid_argument, "solve dimension mismatch");
  BlockVector xb;
  scatter_vector(b, xb);
  solve_lower_dist(comm, xb);
  comm.barrier();
  solve_upper_dist(comm, xb);
  comm.barrier();
  gather_vector(comm, xb, x);
  comm.barrier();
}

template <class T>
void DistributedLU<T>::scatter_vector(std::span<const T> full,
                                      BlockVector& xb) const {
  const symbolic::SymbolicLU& S = *sym_;
  const index_t N = S.nsup;
  const int me = grid_.rank_of(myrow_, mycol_);
  xb.assign(static_cast<std::size_t>(N), {});
  for (index_t K = 0; K < N; ++K)
    if (grid_.owner(K, K) == me)
      xb[K].assign(full.begin() + S.sn_start[K],
                   full.begin() + S.sn_start[K + 1]);
}

template <class T>
void DistributedLU<T>::gather_vector(minimpi::Comm& comm,
                                     const BlockVector& xb,
                                     std::span<T> full) const {
  const symbolic::SymbolicLU& S = *sym_;
  const index_t N = S.nsup;
  const int me = comm.rank();
  const int gbase = gather_vec_tag(N);
  const int btag = bcast_vec_tag(N);
  if (me == 0) {
    std::fill(full.begin(), full.end(), T{});
    index_t expect = 0;
    for (index_t K = 0; K < N; ++K) {
      if (grid_.owner(K, K) == me)
        std::copy(xb[K].begin(), xb[K].end(), full.begin() + S.sn_start[K]);
      else
        expect++;
    }
    for (index_t k = 0; k < expect; ++k) {
      const minimpi::Message msg = comm.recv(minimpi::kAnySource,
                                             minimpi::kAnyTag);
      GESP_ASSERT(msg.tag >= gbase && msg.tag < gbase + static_cast<int>(N),
                  "unexpected message during vector gather");
      const index_t K = static_cast<index_t>(msg.tag - gbase);
      const auto vals = msg.template as<T>();
      std::copy(vals.begin(), vals.end(), full.begin() + S.sn_start[K]);
    }
    std::vector<T> fv(full.begin(), full.end());
    for (int r = 1; r < comm.size(); ++r) comm.send_vec(r, btag, fv);
  } else {
    for (index_t K = 0; K < N; ++K)
      if (grid_.owner(K, K) == me)
        comm.send_vec(0, gbase + static_cast<int>(K), xb[K]);
    const auto fv = comm.recv(0, btag).template as<T>();
    std::copy(fv.begin(), fv.end(), full.begin());
  }
}

template <class T>
void DistributedLU<T>::solve_lower_dist(minimpi::Comm& comm,
                                        BlockVector& xb) const {
  const symbolic::SymbolicLU& S = *sym_;
  const index_t N = S.nsup;
  const SolveTags tags = lower_tags(N);
  const int me = comm.rank();

  // Static counters (Fig 9): fmod[I] = my block modifications feeding
  // x(I); pending[K] = messages (plus my own flush) the diag owner of K
  // waits for before x(K) can be solved.
  std::vector<index_t> fmod(static_cast<std::size_t>(N), 0);
  std::vector<index_t> pending(static_cast<std::size_t>(N), 0);
  std::vector<std::set<int>> contributors(static_cast<std::size_t>(N));
  count_t my_blocks = 0;
  for (index_t K = 0; K < N; ++K) {
    for (const auto& blk : S.L[K]) {
      const int owner = grid_.owner(blk.I, K);
      contributors[blk.I].insert(owner);
      if (owner == me) {
        fmod[blk.I]++;
        my_blocks++;
      }
    }
  }
  index_t my_diags = 0;
  for (index_t K = 0; K < N; ++K) {
    if (grid_.owner(K, K) != me) continue;
    my_diags++;
    // One decrement per contributing rank: remote ranks send an lsum
    // message, my own contribution flushes locally.
    pending[K] = static_cast<index_t>(contributors[K].size());
  }

  std::vector<std::vector<T>> lsum(static_cast<std::size_t>(N));
  for (index_t K = 0; K < N; ++K)
    if (fmod[K] > 0)
      lsum[K].assign(static_cast<std::size_t>(S.block_cols(K)), T{});

  index_t solved = 0;
  count_t processed = 0;

  // Forward declarations of the event handlers (they recurse).
  std::function<void(index_t, const std::vector<T>&)> process_x;
  std::function<void(index_t)> try_solve;

  auto flush = [&](index_t I) {
    const int owner = grid_.owner(I, I);
    if (owner == me) {
      for (std::size_t r = 0; r < lsum[I].size(); ++r)
        xb[I][r] += lsum[I][r];
      pending[I]--;
      try_solve(I);
    } else {
      comm.send_vec(owner, tags.sum_base + static_cast<int>(I), lsum[I]);
    }
  };

  process_x = [&](index_t K, const std::vector<T>& xk) {
    for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
      if (grid_.owner(S.L[K][bi].I, K) != me) continue;
      const auto& blk = S.L[K][bi];
      const auto& rows = blk.rows;
      const index_t m = static_cast<index_t>(rows.size());
      const index_t bw = S.block_cols(K);
      const T* vals = lblocks_[K][bi].data();
      const index_t base = S.sn_start[blk.I];
      for (index_t c = 0; c < bw; ++c) {
        const T xc = xk[c];
        if (xc == T{}) continue;
        const T* col = vals + c * m;
        for (index_t r = 0; r < m; ++r)
          lsum[blk.I][rows[r] - base] -= col[r] * xc;
      }
      processed++;
      if (--fmod[blk.I] == 0) flush(blk.I);
    }
  };

  try_solve = [&](index_t K) {
    if (pending[K] != 0 || xb[K].empty()) return;
    pending[K] = -1;  // mark solved
    dense::trsv_lower_unit(diag_[K].data(), S.block_cols(K),
                           S.block_cols(K), xb[K].data());
    solved++;
    // Ship x(K) to the process rows that own blocks (I, K).
    std::set<int> dests;
    for (const auto& blk : S.L[K]) {
      const int owner = grid_.owner(blk.I, K);
      if (owner != me) dests.insert(owner);
    }
    for (int d : dests)
      comm.send_vec(d, tags.x_base + static_cast<int>(K), xb[K]);
    process_x(K, xb[K]);
  };

  for (index_t K = 0; K < N; ++K)
    if (grid_.owner(K, K) == me) try_solve(K);

  // Message-driven main loop (line (*) of Fig 9): act on whichever message
  // type arrives. The loop consumes exactly the messages addressed to this
  // phase (every x / lsum destined here is counted by processed / solved),
  // so the mailbox is clean on exit — callers barrier between phases.
  while (processed < my_blocks || solved < my_diags) {
    minimpi::Message msg = comm.recv();
    if (msg.tag >= tags.sum_base) {
      const index_t K = static_cast<index_t>(msg.tag - tags.sum_base);
      const auto vals = msg.template as<T>();
      for (std::size_t r = 0; r < vals.size(); ++r) xb[K][r] += vals[r];
      pending[K]--;
      try_solve(K);
    } else {
      const index_t K = static_cast<index_t>(msg.tag - tags.x_base);
      process_x(K, msg.template as<T>());
    }
  }
}

template <class T>
void DistributedLU<T>::solve_upper_dist(minimpi::Comm& comm,
                                        BlockVector& xb) const {
  const symbolic::SymbolicLU& S = *sym_;
  const index_t N = S.nsup;
  const SolveTags tags = upper_tags(N);
  const int me = comm.rank();

  // The paper's "two vertical linked lists": per block column J, the list
  // of my U blocks (K, J) — U is stored by block rows, so column-wise
  // access needs this auxiliary indexing.
  std::vector<std::vector<std::pair<index_t, index_t>>> by_col(
      static_cast<std::size_t>(N));  // J -> [(K, uj index)]
  std::vector<index_t> bmod(static_cast<std::size_t>(N), 0);  // per K
  std::vector<index_t> pending(static_cast<std::size_t>(N), 0);
  std::vector<std::set<int>> contributors(static_cast<std::size_t>(N));
  // xdest[J]: ranks owning some block (K, J) — the broadcast targets of
  // x(J) down process column pcol(J).
  std::vector<std::set<int>> xdest(static_cast<std::size_t>(N));
  count_t my_blocks = 0;
  for (index_t K = 0; K < N; ++K) {
    for (std::size_t uj = 0; uj < S.U[K].size(); ++uj) {
      const index_t J = S.U[K][uj].J;
      const int owner = grid_.owner(K, J);
      contributors[K].insert(owner);
      xdest[J].insert(owner);
      if (owner == me) {
        by_col[J].emplace_back(K, static_cast<index_t>(uj));
        bmod[K]++;
        my_blocks++;
      }
    }
  }
  index_t my_diags = 0;
  for (index_t K = 0; K < N; ++K) {
    if (grid_.owner(K, K) != me) continue;
    my_diags++;
    pending[K] = static_cast<index_t>(contributors[K].size());
  }

  std::vector<std::vector<T>> usum(static_cast<std::size_t>(N));
  for (index_t K = 0; K < N; ++K)
    if (bmod[K] > 0)
      usum[K].assign(static_cast<std::size_t>(S.block_cols(K)), T{});

  index_t solved = 0;
  count_t processed = 0;
  std::function<void(index_t, const std::vector<T>&)> process_x;
  std::function<void(index_t)> try_solve;

  auto flush = [&](index_t K) {
    const int owner = grid_.owner(K, K);
    if (owner == me) {
      for (std::size_t r = 0; r < usum[K].size(); ++r)
        xb[K][r] += usum[K][r];
      pending[K]--;
      try_solve(K);
    } else {
      comm.send_vec(owner, tags.sum_base + static_cast<int>(K), usum[K]);
    }
  };

  // Back substitution runs from the roots of the etree toward the leaves:
  // once x(J) is known, every block (K, J) subtracts U(K,J)·x(J).
  process_x = [&](index_t J, const std::vector<T>& xj) {
    const index_t baseJ = S.sn_start[J];
    for (const auto& [K, uj] : by_col[J]) {
      const auto& cols = S.U[K][uj].cols;
      const index_t bK = S.block_cols(K);
      const T* vals = ublocks_[K][uj].data();
      for (std::size_t cc = 0; cc < cols.size(); ++cc) {
        const T xc = xj[cols[cc] - baseJ];
        if (xc == T{}) continue;
        const T* col = vals + cc * static_cast<std::size_t>(bK);
        for (index_t r = 0; r < bK; ++r) usum[K][r] -= col[r] * xc;
      }
      processed++;
      if (--bmod[K] == 0) flush(K);
    }
  };

  try_solve = [&](index_t K) {
    if (pending[K] != 0 || xb[K].empty()) return;
    pending[K] = -1;
    dense::trsv_upper(diag_[K].data(), S.block_cols(K), S.block_cols(K),
                      xb[K].data());
    solved++;
    for (int d : xdest[K])
      if (d != me) comm.send_vec(d, tags.x_base + static_cast<int>(K),
                                 xb[K]);
    process_x(K, xb[K]);
  };

  for (index_t K = N - 1; K >= 0; --K)
    if (grid_.owner(K, K) == me) try_solve(K);

  while (processed < my_blocks || solved < my_diags) {
    minimpi::Message msg = comm.recv();
    if (msg.tag >= tags.sum_base) {
      const index_t K = static_cast<index_t>(msg.tag - tags.sum_base);
      const auto vals = msg.template as<T>();
      for (std::size_t r = 0; r < vals.size(); ++r) xb[K][r] += vals[r];
      pending[K]--;
      try_solve(K);
    } else {
      const index_t K = static_cast<index_t>(msg.tag - tags.x_base);
      process_x(K, msg.template as<T>());
    }
  }
}

template <class T>
sparse::CscMatrix<T> DistributedLU<T>::gather_l(minimpi::Comm& comm) const {
  const symbolic::SymbolicLU& S = *sym_;
  // Serialize owned L entries as (i, j, value) triplets toward rank 0.
  std::vector<T> vals;
  std::vector<index_t> ij;
  for (index_t K = 0; K < S.nsup; ++K) {
    const index_t b = S.block_cols(K);
    const index_t base = S.sn_start[K];
    if (!diag_[K].empty()) {
      for (index_t c = 0; c < b; ++c)
        for (index_t r = c + 1; r < b; ++r) {
          const T v = diag_[K][r + c * b];
          if (v == T{}) continue;
          ij.push_back(base + r);
          ij.push_back(base + c);
          vals.push_back(v);
        }
    }
    for (std::size_t bi = 0; bi < S.L[K].size(); ++bi) {
      if (lblocks_[K][bi].empty()) continue;
      const auto& rows = S.L[K][bi].rows;
      const index_t m = static_cast<index_t>(rows.size());
      for (index_t c = 0; c < b; ++c)
        for (index_t r = 0; r < m; ++r) {
          const T v = lblocks_[K][bi][r + c * m];
          if (v == T{}) continue;
          ij.push_back(rows[r]);
          ij.push_back(base + c);
          vals.push_back(v);
        }
    }
  }
  const int tag = gather_l_tag(S.nsup);
  if (comm.rank() != 0) {
    comm.send_vec(0, tag, ij);
    comm.send_vec(0, tag, vals);
    comm.barrier();
    return {};
  }
  sparse::CooMatrix<T> L(S.n, S.n);
  for (index_t d = 0; d < S.n; ++d) L.add(d, d, T{1});
  auto absorb = [&](const std::vector<index_t>& ij2,
                    const std::vector<T>& v2) {
    for (std::size_t k = 0; k < v2.size(); ++k)
      L.add(ij2[2 * k], ij2[2 * k + 1], v2[k]);
  };
  absorb(ij, vals);
  for (int r = 1; r < comm.size(); ++r) {
    const auto ij2 = comm.recv(r, tag).template as<index_t>();
    const auto v2 = comm.recv(r, tag).template as<T>();
    absorb(ij2, v2);
  }
  comm.barrier();
  return L.to_csc();
}

template <class T>
sparse::CscMatrix<T> DistributedLU<T>::gather_u(minimpi::Comm& comm) const {
  const symbolic::SymbolicLU& S = *sym_;
  std::vector<T> vals;
  std::vector<index_t> ij;
  for (index_t K = 0; K < S.nsup; ++K) {
    const index_t b = S.block_cols(K);
    const index_t base = S.sn_start[K];
    if (!diag_[K].empty()) {
      for (index_t c = 0; c < b; ++c)
        for (index_t r = 0; r <= c; ++r) {
          const T v = diag_[K][r + c * b];
          if (v == T{} && r != c) continue;
          ij.push_back(base + r);
          ij.push_back(base + c);
          vals.push_back(v);
        }
    }
    for (std::size_t uj = 0; uj < S.U[K].size(); ++uj) {
      if (ublocks_[K][uj].empty()) continue;
      const auto& cols = S.U[K][uj].cols;
      for (std::size_t cc = 0; cc < cols.size(); ++cc)
        for (index_t r = 0; r < b; ++r) {
          const T v = ublocks_[K][uj][r + cc * static_cast<std::size_t>(b)];
          if (v == T{}) continue;
          ij.push_back(base + r);
          ij.push_back(cols[cc]);
          vals.push_back(v);
        }
    }
  }
  const int tag = gather_u_tag(S.nsup);
  if (comm.rank() != 0) {
    comm.send_vec(0, tag, ij);
    comm.send_vec(0, tag, vals);
    comm.barrier();
    return {};
  }
  sparse::CooMatrix<T> U(S.n, S.n);
  auto absorb = [&](const std::vector<index_t>& ij2,
                    const std::vector<T>& v2) {
    for (std::size_t k = 0; k < v2.size(); ++k)
      U.add(ij2[2 * k], ij2[2 * k + 1], v2[k]);
  };
  absorb(ij, vals);
  for (int r = 1; r < comm.size(); ++r) {
    const auto ij2 = comm.recv(r, tag).template as<index_t>();
    const auto v2 = comm.recv(r, tag).template as<T>();
    absorb(ij2, v2);
  }
  comm.barrier();
  return U.to_csc();
}

template class DistributedLU<double>;
template class DistributedLU<Complex>;

}  // namespace gesp::dist
