#include "dist/minimpi.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <memory>
#include <thread>

#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace gesp::minimpi {
namespace {

std::string envelope(int src, int tag) {
  const auto name = [](int v, int any) {
    return v == any ? std::string("any") : std::to_string(v);
  };
  return "(src=" + name(src, kAnySource) + ", tag=" + name(tag, kAnyTag) +
         ")";
}

/// Process-wide transport counters, resolved once (references stay valid
/// for the registry's lifetime, so the hot path is pure atomics).
struct TransportMetrics {
  metrics::Counter& messages_sent;
  metrics::Counter& bytes_sent;
  metrics::Counter& messages_received;
  metrics::Counter& bytes_received;
  metrics::Counter& checksum_failures;
  metrics::Counter& timeouts;
  metrics::Counter& poisonings;
  metrics::Counter& faults_injected;
  metrics::Histogram& message_bytes;
};

TransportMetrics& tm() {
  metrics::Registry& r = metrics::global();
  static TransportMetrics m{r.counter("minimpi.messages_sent"),
                            r.counter("minimpi.bytes_sent"),
                            r.counter("minimpi.messages_received"),
                            r.counter("minimpi.bytes_received"),
                            r.counter("minimpi.checksum_failures"),
                            r.counter("minimpi.timeouts"),
                            r.counter("minimpi.poisonings"),
                            r.counter("minimpi.faults_injected"),
                            r.histogram("minimpi.message_bytes")};
  return m;
}

}  // namespace

std::uint64_t payload_checksum(const std::byte* data, std::size_t bytes) {
  std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

Errc RankReport::error_code() const {
  if (!error) return Errc::internal;
  try {
    std::rethrow_exception(error);
  } catch (const Error& e) {
    return e.code();
  } catch (...) {
    return Errc::internal;
  }
}

std::string RankReport::error_message() const {
  if (!error) return {};
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

int Comm::size() const { return world_->size(); }

void Comm::send(int dst, int tag, const void* data, std::size_t bytes) {
  GESP_CHECK(dst >= 0 && dst < size(), Errc::invalid_argument,
             "send to invalid rank " + std::to_string(dst));
  Message msg;
  msg.src = rank_;
  msg.tag = tag;
  msg.data.resize(bytes);
  if (bytes > 0) std::memcpy(msg.data.data(), data, bytes);
  msg.checksum = payload_checksum(msg.data.data(), msg.data.size());
  const count_t ordinal = stats_.messages_sent;
  stats_.messages_sent++;
  stats_.bytes_sent += static_cast<count_t>(bytes);
  tm().messages_sent.inc();
  tm().bytes_sent.inc(static_cast<count_t>(bytes));
  tm().message_bytes.record(static_cast<double>(bytes));
  trace::instant_value("mpi", "send", static_cast<double>(bytes), dst);
  FaultInjector& fi = world_->opt_.fault;
  if (fi.armed()) {
    // The checksum was stamped above, so corruption below is detectable.
    const FaultSpec fired = fi.on_send(rank_, ordinal, msg.data);
    if (fired.kind != FaultKind::none) {
      tm().faults_injected.inc();
      trace::instant("mpi", "fault", static_cast<int>(fired.kind));
    }
    switch (fired.kind) {
      case FaultKind::drop:
        return;
      case FaultKind::kill_rank:
        throw_error(Errc::comm, "fault injection: rank " +
                                    std::to_string(rank_) + " killed at send #" +
                                    std::to_string(ordinal));
      case FaultKind::duplicate:
        world_->deliver(dst, msg);  // deliver a copy, then the original
        break;
      case FaultKind::delay:
        std::this_thread::sleep_for(
            std::chrono::duration<double>(fired.delay_s));
        break;
      case FaultKind::corrupt:  // payload already mutated in place
      case FaultKind::none:
        break;
    }
  }
  world_->deliver(dst, std::move(msg));
}

Message Comm::recv(int src, int tag) {
  GESP_TRACE_SPAN_ID("mpi", "recv", tag >= 0 ? tag : -1);
  auto& box = *world_->mailboxes_[rank_];
  std::unique_lock<std::mutex> lock(box.mu);
  auto match = [&](const Message& m) {
    return (src == kAnySource || m.src == src) &&
           (tag == kAnyTag || m.tag == tag);
  };
  const double timeout = world_->opt_.recv_timeout_s;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout > 0 ? timeout : 0));
  while (true) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (match(*it)) {
        Message m = std::move(*it);
        box.queue.erase(it);
        stats_.messages_received++;
        stats_.bytes_received += static_cast<count_t>(m.data.size());
        tm().messages_received.inc();
        tm().bytes_received.inc(static_cast<count_t>(m.data.size()));
        const bool checksum_ok =
            payload_checksum(m.data.data(), m.data.size()) == m.checksum;
        if (!checksum_ok) tm().checksum_failures.inc();
        GESP_CHECK(checksum_ok, Errc::comm,
                   "payload checksum mismatch on rank " +
                       std::to_string(rank_) + " for message " +
                       envelope(m.src, m.tag) + ", " +
                       std::to_string(m.data.size()) + " bytes");
        return m;
      }
    }
    // No match queued: check for a dead peer before blocking.
    if (box.poisoned)
      throw_error(Errc::comm,
                  "rank " + std::to_string(rank_) + " unblocked from recv " +
                      envelope(src, tag) + ": rank " +
                      std::to_string(world_->failed_rank()) + " failed");
    if (world_->opt_.survive_failures && world_->dead_mask() != 0) {
      // Surviving world: fail only receives that depend on a dead rank —
      // a named dead source can never send again, and a wildcard receive
      // cannot prove its sender is alive (this is how collective episodes
      // abort while point-to-point serving from live ranks continues).
      if (src == kAnySource || world_->is_dead(src))
        throw_error(Errc::comm,
                    "rank " + std::to_string(rank_) +
                        " unblocked from recv " + envelope(src, tag) +
                        ": rank " + std::to_string(world_->failed_rank()) +
                        " is dead in a surviving world");
    }
    if (timeout > 0) {
      if (box.cv.wait_until(lock, deadline) == std::cv_status::timeout &&
          !box.poisoned) {
        bool matched = false;
        for (const auto& m : box.queue) matched = matched || match(m);
        if (!matched) {
          tm().timeouts.inc();
          throw_error(Errc::comm,
                      "recv timeout on rank " + std::to_string(rank_) +
                          " waiting for " + envelope(src, tag) + " after " +
                          std::to_string(timeout) + "s");
        }
      }
    } else {
      box.cv.wait(lock);
    }
  }
}

bool Comm::probe(int src, int tag) const {
  auto& box = *world_->mailboxes_[rank_];
  std::unique_lock<std::mutex> lock(box.mu);
  for (const auto& m : box.queue) {
    if ((src == kAnySource || m.src == src) &&
        (tag == kAnyTag || m.tag == tag))
      return true;
  }
  return false;
}

void Comm::barrier() {
  GESP_TRACE_SPAN("mpi", "barrier");
  std::unique_lock<std::mutex> lock(world_->barrier_mu_);
  auto check_poisoned = [&] {
    if (world_->failed_rank_.load() >= 0)
      throw_error(Errc::comm,
                  "rank " + std::to_string(rank_) +
                      " unblocked from barrier: rank " +
                      std::to_string(world_->failed_rank()) + " failed");
  };
  check_poisoned();
  const long gen = world_->barrier_generation_;
  if (++world_->barrier_count_ == world_->size()) {
    world_->barrier_count_ = 0;
    world_->barrier_generation_++;
    world_->barrier_cv_.notify_all();
    return;
  }
  const double timeout = world_->opt_.recv_timeout_s;
  auto arrived = [&] { return world_->barrier_generation_ != gen; };
  if (timeout > 0) {
    const bool ok = world_->barrier_cv_.wait_for(
        lock, std::chrono::duration<double>(timeout),
        [&] { return arrived() || world_->failed_rank_.load() >= 0; });
    if (!arrived()) {
      if (!ok) {
        tm().timeouts.inc();
        throw_error(Errc::comm, "barrier timeout on rank " +
                                    std::to_string(rank_) + " after " +
                                    std::to_string(timeout) + "s");
      }
      check_poisoned();
    }
  } else {
    world_->barrier_cv_.wait(
        lock, [&] { return arrived() || world_->failed_rank_.load() >= 0; });
    if (!arrived()) check_poisoned();
  }
}

double Comm::reduce_sum(int root, int tag, double value) {
  if (rank_ == root) {
    double sum = value;
    for (int r = 0; r < size() - 1; ++r) {
      const Message m = recv(kAnySource, tag);
      double v = 0;
      std::memcpy(&v, m.data.data(), sizeof(double));
      sum += v;
    }
    return sum;
  }
  send_value(root, tag, value);
  return value;
}

std::vector<double> Comm::reduce_sum_vec(int root, int tag,
                                         std::span<const double> v,
                                         int contributors) {
  std::vector<double> out(v.begin(), v.end());
  if (contributors < 0) contributors = size() - 1;
  if (rank_ == root) {
    for (int r = 0; r < contributors; ++r) {
      const Message m = recv(kAnySource, tag);
      const auto part = m.as<double>();
      GESP_CHECK(part.size() == out.size(), Errc::comm,
                 "reduce_sum_vec: contribution from rank " +
                     std::to_string(m.src) + " has " +
                     std::to_string(part.size()) + " elements, expected " +
                     std::to_string(out.size()));
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += part[i];
    }
    return out;
  }
  send(root, tag, out.data(), out.size() * sizeof(double));
  return out;
}

double Comm::reduce_max(int root, int tag, double value) {
  if (rank_ == root) {
    double best = value;
    for (int r = 0; r < size() - 1; ++r) {
      const Message m = recv(kAnySource, tag);
      double v = 0;
      std::memcpy(&v, m.data.data(), sizeof(double));
      if (std::isnan(v))
        best = v;
      else if (!std::isnan(best))
        best = std::max(best, v);
    }
    return best;
  }
  send_value(root, tag, value);
  return value;
}

World::World(int nprocs, const WorldOptions& opt) : opt_(opt) {
  GESP_CHECK(nprocs > 0, Errc::invalid_argument, "need at least one rank");
  GESP_CHECK(nprocs <= 64, Errc::invalid_argument,
             "in-process worlds are capped at 64 ranks (dead-rank mask)");
  mailboxes_.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>());
}

void World::deliver(int dst, Message msg) {
  auto& box = *mailboxes_[dst];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_one();
}

void World::poison(int src) {
  int expected = -1;
  if (failed_rank_.compare_exchange_strong(expected, src)) {
    tm().poisonings.inc();
    trace::instant("mpi", "poison", src);
  }
  dead_mask_.fetch_or(std::uint64_t{1} << static_cast<unsigned>(src),
                      std::memory_order_acq_rel);
  for (auto& box : mailboxes_) {
    {
      std::lock_guard<std::mutex> lock(box->mu);
      // A surviving world only records the death and wakes the waiters;
      // receives that do not depend on the dead rank keep working.
      if (!opt_.survive_failures) box->poisoned = true;
    }
    box->cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
  }
  barrier_cv_.notify_all();
}

int World::alive_count() const {
  const std::uint64_t dead = dead_mask();
  int n = 0;
  for (int r = 0; r < size(); ++r)
    if (!((dead >> static_cast<unsigned>(r)) & 1u)) ++n;
  return n;
}

std::vector<RankReport> World::run_report(
    const std::function<void(Comm&)>& body) {
  const int P = size();
  // Reset failure state so a World can host several runs.
  failed_rank_.store(-1);
  dead_mask_.store(0);
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->poisoned = false;
    box->queue.clear();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    barrier_count_ = 0;
  }
  std::vector<RankReport> reports(static_cast<std::size_t>(P));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    threads.emplace_back([&, r] {
      // One trace track per simulated rank (pid = rank in the viewer).
      trace::set_thread_track(r, 0);
      GESP_TRACE_SPAN_ID("mpi", "rank", r);
      Comm comm(*this, r);
      try {
        body(comm);
      } catch (...) {
        reports[r].error = std::current_exception();
        poison(r);  // unblock every peer still waiting on this rank
      }
      reports[r].stats = comm.stats();
    });
  }
  for (auto& t : threads) t.join();
  return reports;
}

std::vector<CommStats> World::run(const std::function<void(Comm&)>& body) {
  const auto reports = run_report(body);
  std::vector<CommStats> stats;
  stats.reserve(reports.size());
  for (const auto& r : reports) stats.push_back(r.stats);
  for (const auto& r : reports)
    if (r.error) std::rethrow_exception(r.error);
  return stats;
}

}  // namespace gesp::minimpi
