#include "dist/minimpi.hpp"

#include <exception>
#include <memory>
#include <thread>

namespace gesp::minimpi {

int Comm::size() const { return world_->size(); }

void Comm::send(int dst, int tag, const void* data, std::size_t bytes) {
  GESP_CHECK(dst >= 0 && dst < size(), Errc::invalid_argument,
             "send to invalid rank " + std::to_string(dst));
  Message msg;
  msg.src = rank_;
  msg.tag = tag;
  msg.data.resize(bytes);
  if (bytes > 0) std::memcpy(msg.data.data(), data, bytes);
  stats_.messages_sent++;
  stats_.bytes_sent += static_cast<count_t>(bytes);
  world_->deliver(dst, std::move(msg));
}

Message Comm::recv(int src, int tag) {
  auto& box = *world_->mailboxes_[rank_];
  std::unique_lock<std::mutex> lock(box.mu);
  auto match = [&](const Message& m) {
    return (src == kAnySource || m.src == src) &&
           (tag == kAnyTag || m.tag == tag);
  };
  while (true) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (match(*it)) {
        Message m = std::move(*it);
        box.queue.erase(it);
        stats_.messages_received++;
        stats_.bytes_received += static_cast<count_t>(m.data.size());
        return m;
      }
    }
    box.cv.wait(lock);
  }
}

bool Comm::probe(int src, int tag) const {
  auto& box = *world_->mailboxes_[rank_];
  std::unique_lock<std::mutex> lock(box.mu);
  for (const auto& m : box.queue) {
    if ((src == kAnySource || m.src == src) &&
        (tag == kAnyTag || m.tag == tag))
      return true;
  }
  return false;
}

void Comm::barrier() {
  std::unique_lock<std::mutex> lock(world_->barrier_mu_);
  const long gen = world_->barrier_generation_;
  if (++world_->barrier_count_ == world_->size()) {
    world_->barrier_count_ = 0;
    world_->barrier_generation_++;
    world_->barrier_cv_.notify_all();
  } else {
    world_->barrier_cv_.wait(
        lock, [&] { return world_->barrier_generation_ != gen; });
  }
}

double Comm::reduce_sum(int root, int tag, double value) {
  if (rank_ == root) {
    double sum = value;
    for (int r = 0; r < size() - 1; ++r) {
      const Message m = recv(kAnySource, tag);
      double v = 0;
      std::memcpy(&v, m.data.data(), sizeof(double));
      sum += v;
    }
    return sum;
  }
  send_value(root, tag, value);
  return value;
}

World::World(int nprocs) {
  GESP_CHECK(nprocs > 0, Errc::invalid_argument, "need at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r)
    mailboxes_.push_back(std::make_unique<Mailbox>());
}

void World::deliver(int dst, Message msg) {
  auto& box = *mailboxes_[dst];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_one();
}

std::vector<CommStats> World::run(const std::function<void(Comm&)>& body) {
  const int P = size();
  std::vector<CommStats> stats(static_cast<std::size_t>(P));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(P));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(*this, r);
      try {
        body(comm);
      } catch (...) {
        errors[r] = std::current_exception();
      }
      stats[r] = comm.stats();
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
  return stats;
}

}  // namespace gesp::minimpi
