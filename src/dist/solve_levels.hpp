// Level scheduling for the sparse triangular solves — the paper's §4
// improvement path: "To speed up the sparse triangular solve, we may apply
// some graph coloring heuristic to reduce the number of parallel steps."
//
// The solve's dependency DAG over supernodes has an edge K' -> K whenever
// block (K, K') of L (forward) or (K', K) of U (backward) is nonzero. A
// level assignment (greedy "coloring" along the DAG) groups supernodes
// that can be solved simultaneously; the number of levels is the critical
// path — the lower bound on parallel solve steps, versus N fully
// sequential steps.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "symbolic/symbolic.hpp"

namespace gesp::dist {

struct LevelSchedule {
  std::vector<index_t> level;  ///< level[K] per supernode, 0-based
  index_t num_levels = 0;
  double avg_width = 0.0;   ///< supernodes per level (parallelism)
  index_t max_width = 0;
  /// Weighted critical path: sum over levels of the largest diagonal-block
  /// solve cost in that level (a machine-independent time lower bound).
  count_t critical_path_flops = 0;
};

/// Forward (L) solve schedule.
LevelSchedule lower_solve_levels(const symbolic::SymbolicLU& S);

/// Backward (U) solve schedule.
LevelSchedule upper_solve_levels(const symbolic::SymbolicLU& S);

}  // namespace gesp::dist
