#include "dist/dist_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "sparse/ops.hpp"

namespace gesp::dist {
namespace {

// DistSolver tag space, above everything DistributedLU uses (max 16N+3):
// the per-block-column SpMV exchange at [17N, 18N), scalar stat
// reductions/broadcasts at 19N+k.
int spmv_tag(index_t nsup, index_t J) {
  return static_cast<int>(nsup) * 17 + static_cast<int>(J);
}
int stat_tag(index_t nsup, int k) {
  return static_cast<int>(nsup) * 19 + k;
}

/// Reduce-to-root + broadcast so every rank returns the same scalar.
double allreduce_max(minimpi::Comm& comm, int base_tag, double v) {
  const double m = comm.reduce_max(0, base_tag, v);
  return comm.bcast<double>(0, base_tag + 1, {m})[0];
}
double allreduce_sum(minimpi::Comm& comm, int base_tag, double v) {
  const double s = comm.reduce_sum(0, base_tag, v);
  return comm.bcast<double>(0, base_tag + 1, {s})[0];
}

}  // namespace

ProcessGrid grid_from(const DistBackendOptions& opt) {
  if (opt.pr > 0 && opt.pc > 0) return ProcessGrid{opt.pr, opt.pc};
  return ProcessGrid::near_square(opt.nprocs);
}

template <class T>
DistOptions make_dist_options(const SolverOptions& opt,
                              const sparse::CscMatrix<T>& At) {
  DistOptions d;
  d.edag_pruning = opt.dist.edag_pruning;
  d.pipelined = opt.dist.pipelined;
  // The unified GESP tiny-pivot rule: replace pivots below sqrt(eps)·||Â||
  // unless the user asked for GENP-style failure. (The raw DistOptions
  // default of 0.0 silently meant "fail", diverging from the single-node
  // TinyPivotOption::replace default.)
  d.tiny_threshold =
      opt.tiny_pivot != TinyPivotOption::fail
          ? std::sqrt(std::numeric_limits<double>::epsilon()) *
                sparse::norm_max(At)
          : 0.0;
  return d;
}

template <class T>
DistSolver<T>::DistSolver(minimpi::Comm& comm, const sparse::CscMatrix<T>& A,
                          const SolverOptions& opt)
    : opt_(opt) {
  GESP_CHECK(A.nrows == A.ncols, Errc::invalid_argument,
             "GESP needs a square matrix");
  GESP_CHECK(opt_.tiny_pivot != TinyPivotOption::aggressive_smw,
             Errc::invalid_argument,
             "aggressive_smw is not available on the dist backend");
  GESP_CHECK(!opt_.estimate_ferr && !opt_.estimate_rcond,
             Errc::invalid_argument,
             "error estimates are not available on the dist backend");
  GESP_CHECK(!opt_.refine.compensated_residual, Errc::invalid_argument,
             "compensated residuals are not available on the dist backend");
  GESP_CHECK(opt_.precision == Precision::double_, Errc::invalid_argument,
             "single/mixed precision is not available on the dist backend");
  n_ = A.ncols;
  grid_ = grid_from(opt_.dist);
  GESP_CHECK(grid_.nprocs() == comm.size(), Errc::invalid_argument,
             "process grid does not match communicator size");
  myrow_ = grid_.rank_row(comm.rank());
  mycol_ = grid_.rank_col(comm.rank());

  // Steps (1)-(2) replicated on every rank: cheap, deterministic, and the
  // full matrix is available anyway.
  TransformResult<T> tr = compute_transform(A, opt_, &stats_.times);
  row_scale_ = std::move(tr.row_scale);
  col_scale_ = std::move(tr.col_scale);
  row_perm_ = std::move(tr.row_perm);
  col_perm_ = std::move(tr.col_perm);
  At_ = std::move(tr.At);
  amax_ = static_cast<double>(sparse::norm_max(At_));

  Timer t;
  {
    GESP_TRACE_SPAN("solver", "symbolic");
    sym_ = std::make_shared<const symbolic::SymbolicLU>(
        symbolic::analyze(At_, opt_.symbolic));
  }
  stats_.times.add("symbolic", t.seconds());
  stats_.nnz_l = sym_->nnz_L;
  stats_.nnz_u = sym_->nnz_U;
  stats_.stored_l = sym_->stored_L;
  stats_.stored_u = sym_->stored_U;
  stats_.flops = sym_->flops;
  stats_.nsup = sym_->nsup;

  // Tuning happens before the SpMV plan and the factorization: both depend
  // on the grid shape and the symbolic structure the tuner may replace.
  consult_tuner(comm);

  // SpMV exchange plan (pattern-only, so refactorize can reuse it): block
  // column J is needed by every rank whose rows its entries touch.
  const index_t N = sym_->nsup;
  needers_.assign(static_cast<std::size_t>(N), {});
  {
    std::vector<unsigned char> mark(static_cast<std::size_t>(grid_.nprocs()));
    for (index_t J = 0; J < N; ++J) {
      std::fill(mark.begin(), mark.end(), 0);
      for (index_t j = sym_->sn_start[J]; j < sym_->sn_start[J + 1]; ++j)
        for (index_t p = At_.colptr[j]; p < At_.colptr[j + 1]; ++p) {
          const index_t M = sym_->col_to_sn[At_.rowind[p]];
          mark[static_cast<std::size_t>(grid_.owner(M, M))] = 1;
        }
      for (int r = 0; r < grid_.nprocs(); ++r)
        if (mark[static_cast<std::size_t>(r)]) needers_[J].push_back(r);
    }
  }

  t.reset();
  {
    GESP_TRACE_SPAN("solver", "factor");
    lu_ = std::make_unique<DistributedLU<T>>(comm, grid_, sym_, At_,
                                             make_dist_options(opt_, At_));
  }
  stats_.times.add("factor", t.seconds());
  reduce_factor_stats(comm);
  finish_tuning(comm);
}

template <class T>
void DistSolver<T>::consult_tuner(minimpi::Comm& comm) {
  if (opt_.tune.policy == TunePolicy::off) return;
  GESP_CHECK(opt_.tune.tuner != nullptr, Errc::invalid_argument,
             "TunePolicy::model/probe need a tuner "
             "(construct one with tune::make_tuner)");
  GESP_TRACE_SPAN("solver", "tune");
  Timer t;
  TuneInputs in;
  in.n = n_;
  in.nnz = At_.nnz();
  in.sym = sym_.get();
  in.opt = &opt_;
  in.max_threads = std::max(1, opt_.num_threads);
  in.dist_nprocs = comm.size();
  in.analyze = [this](const symbolic::SymbolicOptions& so) {
    return symbolic::analyze(At_, so);
  };
  TuningReport& rep = stats_.tuning;
  rep.policy = opt_.tune.policy;
  rep.consulted = true;
  rep.default_block = opt_.symbolic.max_block;
  // decide() is deterministic and every rank hands it identical inputs, so
  // all ranks reach the same verdict without communicating; metric counters
  // stay rank-0-only so a 4-rank grid counts one decision, not four.
  rep.decision = opt_.tune.tuner->decide(in);
  if (comm.rank() == 0)
    metrics::global().counter("solver.tune.decisions").inc();
  const TuneDecision& d = rep.decision;
  if (d.changed) {
    rep.applied = true;
    if (comm.rank() == 0) {
      metrics::global().counter("solver.tune.applied_events").inc();
      trace::instant("solver", "tune_apply",
                     static_cast<int>(d.max_block > 0
                                          ? d.max_block
                                          : opt_.symbolic.max_block));
    }
    if (d.max_block > 0 && d.max_block != opt_.symbolic.max_block) {
      opt_.symbolic.max_block = d.max_block;
      Timer ts;
      {
        GESP_TRACE_SPAN("solver", "symbolic");
        sym_ = std::make_shared<const symbolic::SymbolicLU>(
            symbolic::analyze(At_, opt_.symbolic));
      }
      stats_.times.add("symbolic", ts.seconds());
      stats_.nnz_l = sym_->nnz_L;
      stats_.nnz_u = sym_->nnz_U;
      stats_.stored_l = sym_->stored_L;
      stats_.stored_u = sym_->stored_U;
      stats_.flops = sym_->flops;
      stats_.nsup = sym_->nsup;
    }
    if (d.pr > 0 && d.pc > 0 && d.pr * d.pc == comm.size()) {
      opt_.dist.pr = d.pr;
      opt_.dist.pc = d.pc;
      grid_ = ProcessGrid{d.pr, d.pc};
      myrow_ = grid_.rank_row(comm.rank());
      mycol_ = grid_.rank_col(comm.rank());
    }
    opt_.dist.pipelined = d.pipelined;
  }
  stats_.times.add("tune", t.seconds());
}

template <class T>
void DistSolver<T>::finish_tuning(minimpi::Comm& comm) {
  TuningReport& rep = stats_.tuning;
  if (!rep.consulted) return;
  rep.actual_factor_seconds = stats_.times.total("factor");
  if (rep.decision.predicted_seconds > 0.0 &&
      rep.actual_factor_seconds > 0.0)
    rep.model_error =
        rep.actual_factor_seconds / rep.decision.predicted_seconds;
  // One probe observation per grid, not per rank: MiniMPI ranks are
  // threads sharing the tuner object.
  if (comm.rank() == 0) {
    if (opt_.tune.policy == TunePolicy::probe)
      opt_.tune.tuner->observe(rep.decision, rep.actual_factor_seconds);
    stats_.export_metrics(metrics::global());
  }
}

template <class T>
void DistSolver<T>::reduce_factor_stats(minimpi::Comm& comm) {
  const index_t N = sym_->nsup;
  const double replaced = allreduce_sum(
      comm, stat_tag(N, 0),
      static_cast<double>(lu_->pivot_stats().replaced));
  stats_.pivots_replaced = static_cast<count_t>(replaced);
  const double fmax =
      allreduce_max(comm, stat_tag(N, 2), lu_->factor_entry_max());
  stats_.pivot_growth = amax_ > 0.0 ? fmax / amax_ : 0.0;
  comm.barrier();
}

template <class T>
void DistSolver<T>::refactorize(minimpi::Comm& comm,
                                const sparse::CscMatrix<T>& A_new) {
  GESP_CHECK(A_new.nrows == n_ && A_new.ncols == n_, Errc::invalid_argument,
             "refactorize dimension mismatch");
  stats_.times.new_epoch();
  GESP_TRACE_SPAN("solver", "refactorize");
  // Reuse every static decision: scalings, permutations, symbolic
  // structure, distribution, and the SpMV plan (pattern-unchanged).
  sparse::CscMatrix<T> As =
      sparse::apply_scaling(A_new, row_scale_, col_scale_);
  At_ = sparse::permute(As, row_perm_, col_perm_);
  amax_ = static_cast<double>(sparse::norm_max(At_));
  Timer t;
  {
    GESP_TRACE_SPAN("solver", "factor");
    lu_->refactorize(comm, At_, make_dist_options(opt_, At_));
  }
  stats_.times.add("factor", t.seconds());
  reduce_factor_stats(comm);
}

template <class T>
void DistSolver<T>::exchange_x(minimpi::Comm& comm, const BlockVector& xb,
                               BlockVector& xfull) const {
  const index_t N = sym_->nsup;
  const int me = comm.rank();
  xfull.assign(static_cast<std::size_t>(N), {});
  for (index_t J = 0; J < N; ++J) {
    if (xb[J].empty()) continue;  // not the diag owner of J
    for (int r : needers_[J]) {
      if (r == me)
        xfull[J] = xb[J];
      else
        comm.send_vec(r, spmv_tag(N, J), xb[J]);
    }
  }
  for (index_t J = 0; J < N; ++J) {
    if (!xfull[J].empty() || xb[J].size() > 0) continue;
    const auto& nd = needers_[J];
    if (std::find(nd.begin(), nd.end(), me) == nd.end()) continue;
    xfull[J] = comm.recv(grid_.owner(J, J), spmv_tag(N, J)).template as<T>();
  }
}

template <class T>
double DistSolver<T>::compute_berr_dist(minimpi::Comm& comm,
                                        const BlockVector& xb,
                                        const BlockVector& bb,
                                        BlockVector& rb) const {
  using std::abs;
  const symbolic::SymbolicLU& S = *sym_;
  const index_t N = S.nsup;
  BlockVector xfull;
  exchange_x(comm, xb, xfull);

  // r = b̂ - Â·x̂ and denom = |Â|·|x̂| over my rows, with the column scan
  // ascending in j so each row accumulates in exactly the serial order
  // (sparse::residual / componentwise_backward_error).
  rb = bb;
  std::vector<std::vector<double>> denom(static_cast<std::size_t>(N));
  for (index_t K = 0; K < N; ++K)
    if (!bb[K].empty()) denom[K].assign(bb[K].size(), 0.0);
  for (index_t j = 0; j < S.n; ++j) {
    const index_t J = S.col_to_sn[j];
    if (xfull[J].empty()) continue;  // none of my rows touch block col J
    const T xj = xfull[J][static_cast<std::size_t>(j - S.sn_start[J])];
    const double axj = static_cast<double>(abs(xj));
    for (index_t p = At_.colptr[j]; p < At_.colptr[j + 1]; ++p) {
      const index_t i = At_.rowind[p];
      const index_t M = S.col_to_sn[i];
      if (rb[M].empty()) continue;  // row not mine
      const std::size_t r = static_cast<std::size_t>(i - S.sn_start[M]);
      if (xj != T{}) rb[M][r] -= At_.values[p] * xj;
      if (axj != 0.0)
        denom[M][r] += static_cast<double>(abs(At_.values[p])) * axj;
    }
  }

  // Local berr over my rows, with the serial inf / NaN conventions.
  double local = 0.0;
  for (index_t K = 0; K < N && !std::isnan(local); ++K) {
    if (bb[K].empty()) continue;
    for (std::size_t r = 0; r < bb[K].size(); ++r) {
      const double d = denom[K][r] + static_cast<double>(abs(bb[K][r]));
      const double num = static_cast<double>(abs(rb[K][r]));
      if (d == 0.0) {
        if (num != 0.0) local = std::numeric_limits<double>::infinity();
        continue;
      }
      const double q = num / d;
      if (std::isnan(q)) {
        local = q;
        break;
      }
      local = std::max(local, q);
    }
  }
  return allreduce_max(comm, stat_tag(N, 4), local);
}

template <class T>
void DistSolver<T>::solve(minimpi::Comm& comm, std::span<const T> b,
                          std::span<T> x) {
  GESP_CHECK(b.size() == static_cast<std::size_t>(n_) && x.size() == b.size(),
             Errc::invalid_argument, "solve dimension mismatch");
  stats_.times.new_epoch();
  GESP_TRACE_SPAN("solver", "solve_call");
  Timer wall;

  // Transform the right-hand side into the factored space (replicated).
  std::vector<T> bhat(static_cast<std::size_t>(n_));
  for (index_t i = 0; i < n_; ++i)
    bhat[row_perm_[i]] = b[i] * T{row_scale_[i]};

  BlockVector bb, xb;
  lu_->scatter_vector(std::span<const T>(bhat), bb);
  xb = bb;

  Timer t;
  {
    GESP_TRACE_SPAN("solver", "solve");
    lu_->solve_lower_dist(comm, xb);
    comm.barrier();
    lu_->solve_upper_dist(comm, xb);
    comm.barrier();
  }
  stats_.times.add("solve", t.seconds());

  // --- step (4): distributed iterative refinement, mirroring
  // refine::iterative_refinement's control flow exactly (every rank sees
  // the same broadcast berr, so the loop is collective).
  t.reset();
  BlockVector rb;
  double berr = compute_berr_dist(comm, xb, bb, rb);
  stats_.times.add("residual", t.seconds());
  t.reset();
  trace::Span refine_span("solver", "refine");
  stats_.berr_history.clear();
  stats_.berr_history.push_back(berr);
  int iterations = 0;
  if (comm.rank() == 0) trace::instant_value("refine", "berr", berr, 0);
  double prev = std::numeric_limits<double>::infinity();
  while (iterations < opt_.refine.max_iters &&
         berr > opt_.refine.target_berr &&
         berr <= prev * opt_.refine.stall_ratio) {
    prev = berr;
    BlockVector dxb = rb;
    lu_->solve_lower_dist(comm, dxb);
    comm.barrier();
    lu_->solve_upper_dist(comm, dxb);
    comm.barrier();
    for (index_t K = 0; K < sym_->nsup; ++K)
      for (std::size_t r = 0; r < xb[K].size(); ++r) xb[K][r] += dxb[K][r];
    ++iterations;
    berr = compute_berr_dist(comm, xb, bb, rb);
    stats_.berr_history.push_back(berr);
    if (comm.rank() == 0)
      trace::instant_value("refine", "berr", berr, iterations);
  }
  refine_span.end();
  stats_.times.add("refine", t.seconds());
  stats_.refine_iterations = iterations;
  stats_.berr = berr;

  // Gather + back-transform on every rank.
  comm.barrier();
  std::vector<T> xhat(static_cast<std::size_t>(n_));
  lu_->gather_vector(comm, xb, xhat);
  comm.barrier();
  for (index_t j = 0; j < n_; ++j)
    x[j] = xhat[col_perm_[j]] * T{col_scale_[j]};
  stats_.solve_wall_seconds = wall.seconds();
  stats_.solve_wall_total_seconds += stats_.solve_wall_seconds;
  ++stats_.solve_calls;
  if (comm.rank() == 0) stats_.export_metrics(metrics::global());
}

template <class T>
void DistSolver<T>::solve_multi(minimpi::Comm& comm, std::span<const T> B,
                                std::span<T> X, index_t nrhs) {
  GESP_CHECK(nrhs >= 1 && B.size() == static_cast<std::size_t>(n_) * nrhs &&
                 X.size() == B.size(),
             Errc::invalid_argument, "solve_multi dimension mismatch");
  for (index_t c = 0; c < nrhs; ++c) {
    std::span<const T> bc(B.data() + c * static_cast<std::size_t>(n_),
                          static_cast<std::size_t>(n_));
    std::span<T> xc(X.data() + c * static_cast<std::size_t>(n_),
                    static_cast<std::size_t>(n_));
    solve(comm, bc, xc);
  }
}

template <class T>
std::vector<T> solve(const sparse::CscMatrix<T>& A, std::span<const T> b,
                     const SolverOptions& opt, SolveStats* stats_out) {
  const ProcessGrid grid = grid_from(opt.dist);
  minimpi::WorldOptions wopt;
  wopt.recv_timeout_s = opt.dist.recv_timeout_s;
  minimpi::World world(grid.nprocs(), wopt);

  std::vector<T> x(b.size());
  SolveStats st;
  const auto reports = world.run_report([&](minimpi::Comm& comm) {
    DistSolver<T> solver(comm, A, opt);
    std::vector<T> xl(b.size());
    solver.solve(comm, b, xl);
    if (comm.rank() == 0) {
      x = std::move(xl);
      st = solver.stats();
    }
  });

  // Root-cause any rank failure: a rank that died poisons its peers with
  // Errc::comm, so prefer the non-comm code when one exists.
  bool failed = false;
  Errc code = Errc::comm;
  std::string msg;
  for (const auto& r : reports) {
    if (!r.failed()) continue;
    failed = true;
    if (msg.empty() || (code == Errc::comm && r.error_code() != Errc::comm)) {
      code = r.error_code();
      msg = r.error_message();
    }
  }

  if (!opt.recovery.enabled) {
    if (failed) throw_error(code, "dist backend: " + msg);
    if (stats_out) *stats_out = st;
    return x;
  }

  // Recovery: judge the distributed answer by the same policy thresholds
  // the in-process ladder uses; fall back to it when the grid fails or
  // the answer is out of policy.
  const double threshold =
      opt.recovery.max_berr > 0
          ? opt.recovery.max_berr
          : std::sqrt(std::numeric_limits<double>::epsilon());
  RecoveryAttempt attempt;
  attempt.rung = RecoveryRung::gesp;
  if (failed) {
    attempt.detail = "dist backend: " + msg;
  } else {
    attempt.berr = st.berr;
    attempt.pivot_growth = st.pivot_growth;
    attempt.success = st.berr <= threshold &&
                      st.pivot_growth <= opt.recovery.max_pivot_growth;
    if (!attempt.success) attempt.detail = "dist backend: out of policy";
  }
  if (attempt.success) {
    st.recovery.attempts.push_back(std::move(attempt));
    st.recovery.final_rung = RecoveryRung::gesp;
    st.recovery.recovered = true;
    if (stats_out) *stats_out = st;
    return x;
  }

  SolverOptions fallback = opt;
  fallback.backend = Backend::threaded;
  SolveStats fst;
  std::vector<T> fx = gesp::solve(A, b, fallback, &fst);
  fst.recovery.attempts.insert(fst.recovery.attempts.begin(),
                               std::move(attempt));
  if (stats_out) *stats_out = fst;
  return fx;
}

template class DistSolver<double>;
template class DistSolver<Complex>;
template DistOptions make_dist_options(const SolverOptions&,
                                       const sparse::CscMatrix<double>&);
template DistOptions make_dist_options(const SolverOptions&,
                                       const sparse::CscMatrix<Complex>&);
template std::vector<double> solve(const sparse::CscMatrix<double>&,
                                   std::span<const double>,
                                   const SolverOptions&, SolveStats*);
template std::vector<Complex> solve(const sparse::CscMatrix<Complex>&,
                                    std::span<const Complex>,
                                    const SolverOptions&, SolveStats*);

}  // namespace gesp::dist
