// MiniMPI — an in-process message-passing substrate.
//
// The paper's implementation uses MPI on a Cray T3E. This container has no
// MPI installation and one core, so we build the substrate ourselves: each
// rank is a std::thread with a mailbox; sends are buffered (copy + enqueue,
// never blocking — the transport cannot deadlock the pipelined
// factorization); receives block with (source, tag) matching including
// wildcards, exactly the subset of MPI-1 the paper's algorithms need
// (point-to-point, barrier, broadcast, reduce). Every rank keeps message
// and byte counters so the communication statistics the paper reports via
// Apprentice fall out of the run.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace gesp::minimpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// A received message: envelope plus payload bytes.
struct Message {
  int src = -1;
  int tag = -1;
  std::vector<std::byte> data;

  /// Reinterpret the payload as a vector of T.
  template <class T>
  std::vector<T> as() const {
    GESP_CHECK(data.size() % sizeof(T) == 0, Errc::internal,
               "message size is not a multiple of the element size");
    std::vector<T> out(data.size() / sizeof(T));
    std::memcpy(out.data(), data.data(), data.size());
    return out;
  }
};

/// Per-rank communication counters.
struct CommStats {
  count_t messages_sent = 0;
  count_t bytes_sent = 0;
  count_t messages_received = 0;
  count_t bytes_received = 0;
};

class World;

/// Per-rank communicator handle (valid for the duration of World::run).
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Buffered send: copies the payload and returns immediately.
  void send(int dst, int tag, const void* data, std::size_t bytes);

  template <class T>
  void send_vec(int dst, int tag, const std::vector<T>& v) {
    send(dst, tag, v.data(), v.size() * sizeof(T));
  }

  /// Send a single POD value.
  template <class T>
  void send_value(int dst, int tag, const T& v) {
    send(dst, tag, &v, sizeof(T));
  }

  /// Blocking receive with (src, tag) matching; kAnySource / kAnyTag wild.
  Message recv(int src = kAnySource, int tag = kAnyTag);

  /// Non-blocking: true if a matching message is queued.
  bool probe(int src = kAnySource, int tag = kAnyTag) const;

  /// Synchronize all ranks.
  void barrier();

  /// Flat binomial-free broadcast (root sends to everyone else; the static
  /// schedules of the factorization prune destinations themselves).
  template <class T>
  std::vector<T> bcast(int root, int tag, const std::vector<T>& v) {
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r)
        if (r != root) send_vec(r, tag, v);
      return v;
    }
    return recv(root, tag).as<T>();
  }

  /// Sum-reduce a double across ranks onto root.
  double reduce_sum(int root, int tag, double value);

  const CommStats& stats() const { return stats_; }

 private:
  friend class World;
  Comm(World& world, int rank) : world_(&world), rank_(rank) {}
  World* world_;
  int rank_;
  CommStats stats_;
};

/// The collection of mailboxes; World::run spawns one thread per rank.
class World {
 public:
  explicit World(int nprocs);

  int size() const { return static_cast<int>(mailboxes_.size()); }

  /// Execute `body(comm)` on every rank concurrently; rethrows the first
  /// rank exception after joining. Returns per-rank comm statistics.
  std::vector<CommStats> run(const std::function<void(Comm&)>& body);

 private:
  friend class Comm;
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };
  void deliver(int dst, Message msg);

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  // Central barrier.
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  long barrier_generation_ = 0;
};

}  // namespace gesp::minimpi
