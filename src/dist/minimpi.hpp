// MiniMPI — an in-process message-passing substrate.
//
// The paper's implementation uses MPI on a Cray T3E. This container has no
// MPI installation and one core, so we build the substrate ourselves: each
// rank is a std::thread with a mailbox; sends are buffered (copy + enqueue,
// never blocking — the transport cannot deadlock the pipelined
// factorization); receives block with (source, tag) matching including
// wildcards, exactly the subset of MPI-1 the paper's algorithms need
// (point-to-point, barrier, broadcast, reduce). Every rank keeps message
// and byte counters so the communication statistics the paper reports via
// Apprentice fall out of the run.
//
// Failure model: every payload carries an FNV-1a checksum verified on
// receive; receives (and barriers) honor a configurable timeout and raise
// Errc::comm with the blocked (src, tag) envelope instead of hanging; and
// a rank that dies poisons every mailbox so its peers unblock with
// Errc::comm rather than waiting forever — see docs/INTERNALS.md §9. A
// FaultInjector (dist/fault.hpp) can drop, delay, duplicate, corrupt, or
// kill-rank at a chosen send to exercise all of this deterministically.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "dist/fault.hpp"

namespace gesp::minimpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Reserved tag block for the sharded serving tier (serve/shard.cpp). The
/// factorization and solve tag spaces are all bounded by O(16·nsup), so a
/// high fixed block never collides with numeric traffic for any matrix an
/// in-process world can hold; keeping the constants here (with the other
/// envelope-level definitions) makes the reservation visible to anyone
/// adding a new tag family.
namespace serve_tags {
inline constexpr int kBase = 1 << 28;
inline constexpr int kRequest = kBase + 0;    ///< gateway -> owner rank
inline constexpr int kResponse = kBase + 1;   ///< owner rank -> gateway
inline constexpr int kReplicate = kBase + 2;  ///< gateway -> backup owner
inline constexpr int kReplicaAck = kBase + 3; ///< backup owner -> gateway
inline constexpr int kCollective = kBase + 4; ///< gateway -> all (DistSolver)
inline constexpr int kStop = kBase + 5;       ///< gateway -> all (drain+exit)
inline constexpr int kMetrics = kBase + 6;    ///< rank -> gateway (histogram)
inline constexpr int kReduce = kBase + 7;     ///< counter reduce (reduce_sum_vec)
}  // namespace serve_tags

/// FNV-1a over the payload — cheap, and any single flipped byte changes it.
std::uint64_t payload_checksum(const std::byte* data, std::size_t bytes);

/// A received message: envelope plus payload bytes.
struct Message {
  int src = -1;
  int tag = -1;
  std::uint64_t checksum = 0;  ///< FNV-1a of data, stamped at send time
  std::vector<std::byte> data;

  /// Reinterpret the payload as a vector of T. A size that is not a whole
  /// number of elements means the wire carried a mangled payload — a
  /// transport fault (Errc::comm), not a library bug.
  template <class T>
  std::vector<T> as() const {
    GESP_CHECK(data.size() % sizeof(T) == 0, Errc::comm,
               "mangled payload from src=" + std::to_string(src) +
                   " tag=" + std::to_string(tag) + ": " +
                   std::to_string(data.size()) +
                   " bytes is not a multiple of the element size " +
                   std::to_string(sizeof(T)));
    std::vector<T> out(data.size() / sizeof(T));
    std::memcpy(out.data(), data.data(), data.size());
    return out;
  }
};

/// Per-rank communication counters.
struct CommStats {
  count_t messages_sent = 0;
  count_t bytes_sent = 0;
  count_t messages_received = 0;
  count_t bytes_received = 0;
};

/// Transport configuration (timeouts and chaos).
struct WorldOptions {
  /// Receive / barrier timeout in seconds; <= 0 waits forever. On expiry
  /// the blocked rank throws Errc::comm naming the (src, tag) it waited
  /// for — the deadlock watchdog.
  double recv_timeout_s = 0.0;
  /// Failure semantics when a rank dies. false (the collective default):
  /// poison every mailbox — any subsequent blocked receive anywhere throws
  /// Errc::comm, because a collective factorization cannot outlive a lost
  /// participant. true (the serving tier): record the rank in the dead set
  /// and wake all waiters, but poison nothing — a receive throws only when
  /// it provably cannot be satisfied (its named source is dead, or it is a
  /// wildcard receive while any rank is dead, which is how a collective
  /// episode inside a surviving world aborts). Sends to a dead rank are
  /// delivered to its unread mailbox and harmless. Already-queued messages
  /// from a dead rank remain receivable either way (drain semantics).
  bool survive_failures = false;
  /// Chaos hook applied to every send (see dist/fault.hpp).
  FaultInjector fault;
};

class World;

/// Per-rank communicator handle (valid for the duration of World::run).
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Buffered send: copies the payload and returns immediately.
  void send(int dst, int tag, const void* data, std::size_t bytes);

  template <class T>
  void send_vec(int dst, int tag, const std::vector<T>& v) {
    send(dst, tag, v.data(), v.size() * sizeof(T));
  }

  /// Send a single POD value.
  template <class T>
  void send_value(int dst, int tag, const T& v) {
    send(dst, tag, &v, sizeof(T));
  }

  /// Blocking receive with (src, tag) matching; kAnySource / kAnyTag wild.
  /// Throws Errc::comm on timeout, checksum mismatch, or a poisoned world.
  Message recv(int src = kAnySource, int tag = kAnyTag);

  /// Non-blocking: true if a matching message is queued.
  bool probe(int src = kAnySource, int tag = kAnyTag) const;

  /// Synchronize all ranks. Throws Errc::comm if the world is poisoned or
  /// the timeout expires before every rank arrives.
  void barrier();

  /// Flat binomial-free broadcast (root sends to everyone else; the static
  /// schedules of the factorization prune destinations themselves).
  template <class T>
  std::vector<T> bcast(int root, int tag, const std::vector<T>& v) {
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r)
        if (r != root) send_vec(r, tag, v);
      return v;
    }
    return recv(root, tag).as<T>();
  }

  /// Sum-reduce a double across ranks onto root.
  double reduce_sum(int root, int tag, double value);
  /// Max-reduction onto `root` (other ranks return their own value).
  /// NaN-propagating: if any contribution is NaN the root result is NaN.
  double reduce_max(int root, int tag, double value);
  /// Elementwise sum-reduce of a vector onto root (non-root ranks return
  /// their own contribution). `contributors` is the number of non-root
  /// ranks expected to send (-1 = size()-1); a degraded surviving world
  /// passes its alive count so the reduce never waits on the dead. The
  /// serving tier aggregates per-rank serve.* counters with this.
  std::vector<double> reduce_sum_vec(int root, int tag,
                                     std::span<const double> v,
                                     int contributors = -1);

  const CommStats& stats() const { return stats_; }

 private:
  friend class World;
  Comm(World& world, int rank) : world_(&world), rank_(rank) {}
  World* world_;
  int rank_;
  CommStats stats_;
};

/// One rank's outcome of a World::run_report call.
struct RankReport {
  CommStats stats;
  std::exception_ptr error;  ///< null if the rank body completed

  bool failed() const { return static_cast<bool>(error); }
  /// Errc carried by `error` if it is a gesp::Error; Errc::internal for
  /// foreign exceptions; meaningless when !failed().
  Errc error_code() const;
  std::string error_message() const;  ///< empty when !failed()
};

/// The collection of mailboxes; World::run spawns one thread per rank.
class World {
 public:
  explicit World(int nprocs, const WorldOptions& opt = {});

  int size() const { return static_cast<int>(mailboxes_.size()); }
  const WorldOptions& options() const { return opt_; }

  /// Execute `body(comm)` on every rank concurrently; rethrows the first
  /// rank exception after joining. Returns per-rank comm statistics.
  std::vector<CommStats> run(const std::function<void(Comm&)>& body);

  /// Like run, but never throws on rank failure: every rank's exception is
  /// captured in its RankReport so callers can see exactly who failed and
  /// how (the chaos tests assert per-rank Errc::comm this way).
  std::vector<RankReport> run_report(const std::function<void(Comm&)>& body);

  /// Rank `src` died. Default mode: poison every mailbox and the barrier so
  /// all blocked peers throw Errc::comm instead of hanging. With
  /// WorldOptions::survive_failures: mark `src` dead and wake all waiters;
  /// only receives that depend on a dead rank throw. Idempotent.
  void poison(int src);

  /// Rank that first poisoned the world, or -1 if healthy.
  int failed_rank() const { return failed_rank_.load(); }

  /// Dead-rank observers (meaningful under survive_failures, where the
  /// world keeps running after a rank loss; in the default mode the whole
  /// run is poisoned at the first death anyway).
  bool is_dead(int rank) const {
    return (dead_mask_.load(std::memory_order_acquire) >>
            static_cast<unsigned>(rank)) & 1u;
  }
  std::uint64_t dead_mask() const {
    return dead_mask_.load(std::memory_order_acquire);
  }
  int alive_count() const;

 private:
  friend class Comm;
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
    bool poisoned = false;
  };
  void deliver(int dst, Message msg);

  WorldOptions opt_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<int> failed_rank_{-1};
  /// Bit r set = rank r died (survive_failures bookkeeping; worlds are
  /// capped at 64 ranks well before this in-process simulation is).
  std::atomic<std::uint64_t> dead_mask_{0};
  // Central barrier.
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  long barrier_generation_ = 0;
};

}  // namespace gesp::minimpi
