// Distributed-memory sparse LU factorization and triangular solves over
// MiniMPI — the algorithms of the paper's Figures 8 and 9.
//
// Each rank stores only the blocks the 2-D block-cyclic map assigns it.
// Because pivoting is static, every rank holds the (cheap) symbolic
// structure and can compute, without communication, exactly which messages
// it will send and receive — the property the paper's title is about.
//
// Factorization (Fig 8), per iteration K:
//   (1) the process column owning block column K factors the panel
//       (diagonal GETRF + TRSMs), (2) the process row owning block row K
//       forms U(K, K+1:N), (3) L(:,K) travels across process rows and
//       U(K,:) down process columns — pruned to the process columns/rows
//       that actually own an affected trailing block (the EDAG rule) —
//       and every owner applies its rank-b updates.
//
// With opt.pipelined (the default) the iterations are not executed in
// strict order: each rank runs a message-driven ready-task scheduler with
// look-ahead, so a process column can factor panel K+1 while the trailing
// update of K is still draining — the paper's Fig 8 pipelining. The
// schedule is constrained so every destination block still receives its
// updates in ascending source order, keeping the factors bitwise identical
// to the strict schedule (docs/INTERNALS.md §13).
//
// Triangular solves (Fig 9) are message-driven with the paper's fmod/frecv
// counters and operate on block-cyclic distributed vectors; the upper solve
// pre-builds the per-block-column access lists the paper calls "two
// vertical linked lists".
#pragma once

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "dense/kernels.hpp"
#include "dist/grid.hpp"
#include "dist/minimpi.hpp"
#include "sparse/csc.hpp"
#include "symbolic/symbolic.hpp"

namespace gesp::dist {

struct DistOptions {
  bool edag_pruning = true;    ///< prune broadcasts to needed procs only
  bool pipelined = true;       ///< look-ahead task schedule (Fig 8); false
                               ///< replays the strict per-K order
  double tiny_threshold = 0.0; ///< GESP tiny-pivot replacement threshold
};

/// One rank's view of the distributed factorization. Construct inside
/// World::run; the constructor performs the factorization collectively.
template <class T>
class DistributedLU {
 public:
  /// Block-cyclic distributed vector: xb[K] holds the slice for supernode
  /// K iff this rank owns the diagonal block (K, K); empty otherwise.
  using BlockVector = std::vector<std::vector<T>>;

  DistributedLU(minimpi::Comm& comm, const ProcessGrid& grid,
                std::shared_ptr<const symbolic::SymbolicLU> sym,
                const sparse::CscMatrix<T>& A, const DistOptions& opt = {});

  /// Collective message-driven solve of L·U·x = b with block-cyclic
  /// intermediate vectors; b and x are replicated on every rank (the full
  /// solution is written to x on every rank on exit).
  void solve(minimpi::Comm& comm, std::span<const T> b, std::span<T> x);

  /// Re-factorize for a matrix with the SAME nonzero pattern but new
  /// values (the repeated-solve workload the paper amortizes the ordering
  /// over): re-scatter the owned entries and run the factorization again.
  void refactorize(minimpi::Comm& comm, const sparse::CscMatrix<T>& A,
                   const DistOptions& opt);

  /// Distributed-vector entry points (the building blocks of solve() and
  /// of the distributed refinement loop in DistSolver). scatter_vector is
  /// local; the solves and gather are collective.
  void scatter_vector(std::span<const T> full, BlockVector& xb) const;
  void solve_lower_dist(minimpi::Comm& comm, BlockVector& xb) const;
  void solve_upper_dist(minimpi::Comm& comm, BlockVector& xb) const;
  /// Gather a distributed vector onto rank 0 and replicate it everywhere.
  /// Callers must barrier() before this (no other messages in flight).
  void gather_vector(minimpi::Comm& comm, const BlockVector& xb,
                     std::span<T> full) const;

  /// Gather the distributed factors onto rank 0 as explicit matrices for
  /// verification; other ranks receive empty matrices.
  sparse::CscMatrix<T> gather_l(minimpi::Comm& comm) const;
  sparse::CscMatrix<T> gather_u(minimpi::Comm& comm) const;

  const ProcessGrid& grid() const { return grid_; }
  const symbolic::SymbolicLU& sym() const { return *sym_; }
  const DistOptions& options() const { return opt_; }

  /// Local tiny-pivot counters from the last factorization (this rank's
  /// diagonal blocks only; reduce across ranks for the global count).
  const dense::PivotStats& pivot_stats() const { return pivot_stats_; }
  /// Local max |entry| over this rank's U (diagonal upper triangles and
  /// off-diagonal U blocks) — the numerator of the pivot-growth estimate,
  /// mirroring LUFactors::compute_growth.
  double factor_entry_max() const;
  /// Panel tasks (GETRF / panel TRSM) this rank executed while an
  /// earlier-K trailing update was still pending — the Fig 8 look-ahead
  /// counter. Always 0 when opt.pipelined is false.
  count_t lookahead_hits() const { return lookahead_hits_; }

 private:
  void scatter_initial(const sparse::CscMatrix<T>& A);
  void factorize(minimpi::Comm& comm, const DistOptions& opt);

  ProcessGrid grid_;
  std::shared_ptr<const symbolic::SymbolicLU> sym_;
  DistOptions opt_;
  int myrow_ = 0, mycol_ = 0;
  dense::PivotStats pivot_stats_;
  count_t lookahead_hits_ = 0;

  // Owned storage. diag_[K] nonempty iff this rank owns (K,K).
  // lblocks_[K][bi] nonempty iff this rank owns the bi-th L block of
  // block column K (bi indexes sym_->L[K]); same for ublocks_ over sym_->U.
  std::vector<std::vector<T>> diag_;
  std::vector<std::vector<std::vector<T>>> lblocks_;
  std::vector<std::vector<std::vector<T>>> ublocks_;
};

extern template class DistributedLU<double>;
extern template class DistributedLU<Complex>;

}  // namespace gesp::dist
