// Distributed-memory sparse LU factorization and triangular solves over
// MiniMPI — the algorithms of the paper's Figures 8 and 9.
//
// Each rank stores only the blocks the 2-D block-cyclic map assigns it.
// Because pivoting is static, every rank holds the (cheap) symbolic
// structure and can compute, without communication, exactly which messages
// it will send and receive — the property the paper's title is about.
//
// Factorization (Fig 8), per iteration K:
//   (1) the process column owning block column K factors the panel
//       (diagonal GETRF + TRSMs), (2) the process row owning block row K
//       forms U(K, K+1:N), (3) L(:,K) travels across process rows and
//       U(K,:) down process columns — pruned to the process columns/rows
//       that actually own an affected trailing block (the EDAG rule) —
//       and every owner applies its rank-b updates.
//
// Triangular solves (Fig 9) are message-driven with the paper's fmod/frecv
// counters; the upper solve pre-builds the per-block-column access lists
// the paper calls "two vertical linked lists".
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "dist/grid.hpp"
#include "dist/minimpi.hpp"
#include "sparse/csc.hpp"
#include "symbolic/symbolic.hpp"

namespace gesp::dist {

struct DistOptions {
  bool edag_pruning = true;    ///< prune broadcasts to needed procs only
  double tiny_threshold = 0.0; ///< GESP tiny-pivot replacement threshold
};

/// One rank's view of the distributed factorization. Construct inside
/// World::run; the constructor performs the factorization collectively.
template <class T>
class DistributedLU {
 public:
  DistributedLU(minimpi::Comm& comm, const ProcessGrid& grid,
                std::shared_ptr<const symbolic::SymbolicLU> sym,
                const sparse::CscMatrix<T>& A, const DistOptions& opt = {});

  /// Collective message-driven solve of L·U·x = b; b is replicated on entry
  /// and the full solution is replicated on exit (gathered then broadcast).
  std::vector<T> solve(minimpi::Comm& comm, const std::vector<T>& b);

  /// Gather the distributed factors onto rank 0 as explicit matrices for
  /// verification; other ranks receive empty matrices.
  sparse::CscMatrix<T> gather_l(minimpi::Comm& comm) const;
  sparse::CscMatrix<T> gather_u(minimpi::Comm& comm) const;

  const ProcessGrid& grid() const { return grid_; }
  const symbolic::SymbolicLU& sym() const { return *sym_; }

 private:
  void scatter_initial(const sparse::CscMatrix<T>& A);
  void factorize(minimpi::Comm& comm, const DistOptions& opt);

  std::vector<T> solve_lower(minimpi::Comm& comm, const std::vector<T>& b);
  std::vector<T> solve_upper(minimpi::Comm& comm, const std::vector<T>& y);

  ProcessGrid grid_;
  std::shared_ptr<const symbolic::SymbolicLU> sym_;
  int myrow_ = 0, mycol_ = 0;

  // Owned storage. diag_[K] nonempty iff this rank owns (K,K).
  // lblocks_[K][bi] nonempty iff this rank owns the bi-th L block of
  // block column K (bi indexes sym_->L[K]); same for ublocks_ over sym_->U.
  std::vector<std::vector<T>> diag_;
  std::vector<std::vector<std::vector<T>>> lblocks_;
  std::vector<std::vector<std::vector<T>>> ublocks_;
};

extern template class DistributedLU<double>;
extern template class DistributedLU<Complex>;

}  // namespace gesp::dist
