// The distributed GESP driver — Backend::dist behind the same surface as
// core::Solver.
//
// DistSolver runs the full Figure 1 pipeline on a 2-D process grid:
// steps (1)-(2) (equilibrate → row perm → column order) execute replicated
// on every rank via core::compute_transform (they are cheap, deterministic,
// and need the whole matrix anyway — the paper parallelizes only the
// numeric factorization and solves), step (3) is the pipelined
// DistributedLU factorization, and step (4) is iterative refinement over
// block-cyclic distributed vectors: distributed triangular solves feed a
// distributed SpMV/berr evaluation, so no full-length vector is formed
// until the final gather.
//
// Construct one DistSolver per rank inside minimpi::World::run; every
// public method is collective. stats() is fully populated on every rank
// (the scalar reductions are broadcast) so any rank can report.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/solver.hpp"
#include "dist/dist_lu.hpp"
#include "dist/grid.hpp"
#include "dist/minimpi.hpp"
#include "sparse/csc.hpp"

namespace gesp::dist {

/// Grid shape for the backend options: explicit pr×pc when both are set,
/// else the paper's near-square layout for nprocs.
ProcessGrid grid_from(const DistBackendOptions& opt);

/// Map the unified options onto the dist layer's factorization knobs —
/// in particular the GESP tiny-pivot rule sqrt(eps)·||Â||, which the raw
/// DistOptions default (0.0 == fail on zero pivots) silently diverged from.
template <class T>
DistOptions make_dist_options(const SolverOptions& opt,
                              const sparse::CscMatrix<T>& At);

template <class T>
class DistSolver {
 public:
  /// Collective: analysis + factorization (steps (1)-(3)).
  DistSolver(minimpi::Comm& comm, const sparse::CscMatrix<T>& A,
             const SolverOptions& opt = {});

  index_t n() const { return n_; }
  const SolverOptions& options() const { return opt_; }
  /// Identical on every rank after each collective call (reductions are
  /// broadcast back), so rank 0 — or any rank — can report.
  const SolveStats& stats() const { return stats_; }

  /// Collective solve of A·x = b with distributed refinement; b and x are
  /// replicated full-length vectors on every rank.
  void solve(minimpi::Comm& comm, std::span<const T> b, std::span<T> x);

  /// Multiple right-hand sides, column-major n-by-nrhs.
  void solve_multi(minimpi::Comm& comm, std::span<const T> B, std::span<T> X,
                   index_t nrhs);

  /// Collective re-factorization for same-pattern new values, reusing the
  /// transforms and symbolic structure (the paper's repeated-solve
  /// amortization).
  void refactorize(minimpi::Comm& comm, const sparse::CscMatrix<T>& A_new);

  const DistributedLU<T>& lu() const { return *lu_; }
  const ProcessGrid& grid() const { return grid_; }

 private:
  using BlockVector = typename DistributedLU<T>::BlockVector;

  /// TunePolicy::model/probe: hand the tuner the replicated symbolic
  /// analysis plus dist_nprocs = comm.size(); apply block size
  /// (re-analysis), grid shape, and look-ahead. decide() is deterministic
  /// in its inputs and every rank sees identical inputs, so the call is
  /// collective without any extra communication. No-op under off.
  void consult_tuner(minimpi::Comm& comm);
  /// Record predicted-vs-actual factor cost; rank 0 feeds probe feedback.
  void finish_tuning(minimpi::Comm& comm);
  void reduce_factor_stats(minimpi::Comm& comm);
  /// One distributed residual + berr evaluation over my rows (diag-block
  /// ownership): exchanges the needed x̂ slices, fills rb = b̂ - Â·x̂, and
  /// returns the componentwise backward error reduced across ranks and
  /// broadcast — every rank gets the same value, so the refinement loop's
  /// control flow stays collective.
  double compute_berr_dist(minimpi::Comm& comm, const BlockVector& xb,
                           const BlockVector& bb, BlockVector& rb) const;
  /// Exchange the x̂ slices my rows' SpMV needs; xfull[J] is non-empty
  /// for every block column J appearing in my rows.
  void exchange_x(minimpi::Comm& comm, const BlockVector& xb,
                  BlockVector& xfull) const;

  SolverOptions opt_;
  SolveStats stats_;
  index_t n_ = 0;
  ProcessGrid grid_;
  int myrow_ = 0, mycol_ = 0;
  std::vector<double> row_scale_, col_scale_;
  std::vector<index_t> row_perm_, col_perm_;
  sparse::CscMatrix<T> At_;  ///< transformed matrix (replicated)
  double amax_ = 0.0;        ///< ||Â||_max for growth / tiny threshold
  std::shared_ptr<const symbolic::SymbolicLU> sym_;
  std::unique_ptr<DistributedLU<T>> lu_;
  /// SpMV exchange plan: needers_[J] = ranks whose rows touch block
  /// column J (pattern-static, refactorize-safe — values are re-read from
  /// At_ on every use).
  std::vector<std::vector<int>> needers_;
};

/// One-shot convenience wrapper mirroring gesp::solve: spins up a MiniMPI
/// world of opt.dist ranks, runs the collective pipeline, and returns the
/// rank-0 solution. With opt.recovery.enabled, a failed or out-of-policy
/// distributed solve falls back to the in-process ladder (the attempt is
/// recorded in stats_out->recovery).
template <class T>
std::vector<T> solve(const sparse::CscMatrix<T>& A, std::span<const T> b,
                     const SolverOptions& opt = {},
                     SolveStats* stats_out = nullptr);

extern template class DistSolver<double>;
extern template class DistSolver<Complex>;
extern template DistOptions make_dist_options(const SolverOptions&,
                                              const sparse::CscMatrix<double>&);
extern template DistOptions make_dist_options(
    const SolverOptions&, const sparse::CscMatrix<Complex>&);
extern template std::vector<double> solve(const sparse::CscMatrix<double>&,
                                          std::span<const double>,
                                          const SolverOptions&, SolveStats*);
extern template std::vector<Complex> solve(const sparse::CscMatrix<Complex>&,
                                           std::span<const Complex>,
                                           const SolverOptions&, SolveStats*);

}  // namespace gesp::dist
