// Performance model: discrete-event simulation of the distributed
// factorization (Fig 8) and triangular solves (Fig 9) on a parameterized
// distributed-memory machine.
//
// The paper's point is that with static pivoting the complete schedule —
// every block operation and every message — is known before numeric
// factorization. This module exploits exactly that: it replays the true
// block schedule and communication pattern of a SymbolicLU over a Pr x Pc
// grid against a latency/bandwidth/flop-rate machine model, yielding the
// quantities of Tables 3-5 (time, Mflops, load balance factor B,
// communication fraction, message counts) for processor counts far beyond
// what the host can run as threads. Numeric results are not simulated —
// they are computed and verified elsewhere (dist_lu) — only time is.
//
// Two scheduling policies mirror the paper's implementation notes:
//   * pipelined = false — strict iteration order: a process begins its
//     iteration-K+1 work only after finishing all of iteration K.
//   * pipelined = true — a process may run any ready task, preferring the
//     lowest iteration and panel work over trailing updates: the paper's
//     pipelining, which bought 10-40% on 64 T3E processors.
#pragma once

#include "common/types.hpp"
#include "dist/grid.hpp"
#include "symbolic/symbolic.hpp"

namespace gesp::dist {

/// Machine parameters, defaulted to Cray T3E-900-like values (effective
/// per-PE sparse-kernel rate, MPI latency and bandwidth of that era).
struct MachineModel {
  double flop_rate = 120e6;   ///< peak effective flops/s of a PE on big blocks
  double block_half = 12.0;   ///< rate(b) = flop_rate * b/(b+block_half)
  double latency = 15e-6;     ///< per-message overhead/latency (seconds)
  double bandwidth = 200e6;   ///< bytes per second
  double word_bytes = 8.0;    ///< sizeof(double); 16 for complex

  double rate(double b) const { return flop_rate * b / (b + block_half); }
};

struct PerfOptions {
  bool pipelined = true;
  bool edag_pruning = true;
};

struct PerfResult {
  double time = 0.0;           ///< simulated makespan (seconds)
  double mflops = 0.0;         ///< total flops / time / 1e6
  double load_balance = 0.0;   ///< B = average proc flops / max proc flops
  double comm_fraction = 0.0;  ///< 1 - busy / (P * time): waiting + transfer
  count_t total_messages = 0;
  count_t total_bytes = 0;
  count_t total_flops = 0;
};

/// Simulate the distributed right-looking factorization.
PerfResult simulate_factorization(const symbolic::SymbolicLU& S,
                                  const ProcessGrid& grid,
                                  const MachineModel& machine = {},
                                  const PerfOptions& opt = {});

/// Simulate the message-driven lower+upper triangular solves.
PerfResult simulate_solve(const symbolic::SymbolicLU& S,
                          const ProcessGrid& grid,
                          const MachineModel& machine = {});

/// Exact message/byte counts of one factorization (no timing) — used by the
/// EDAG ablation, matching the paper's 351052 -> 302570 style comparison.
struct CommCounts {
  count_t messages = 0;
  count_t bytes = 0;
};
CommCounts count_factorization_comm(const symbolic::SymbolicLU& S,
                                    const ProcessGrid& grid,
                                    bool edag_pruning,
                                    double word_bytes = 8.0);

}  // namespace gesp::dist
