#include "dist/fault.hpp"

namespace gesp::minimpi {

const char* fault_kind_name(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::none:
      return "none";
    case FaultKind::drop:
      return "drop";
    case FaultKind::delay:
      return "delay";
    case FaultKind::duplicate:
      return "duplicate";
    case FaultKind::corrupt:
      return "corrupt";
    case FaultKind::kill_rank:
      return "kill_rank";
  }
  return "unknown";
}

FaultSpec FaultInjector::on_send(int rank, count_t ordinal,
                                 std::vector<std::byte>& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  spent_.resize(specs_.size(), false);
  for (std::size_t k = 0; k < specs_.size(); ++k) {
    const FaultSpec& s = specs_[k];
    if (spent_[k] || s.kind == FaultKind::none) continue;
    if (s.rank != -1 && s.rank != rank) continue;
    if (s.nth_send != ordinal) continue;
    spent_[k] = true;
    fired_++;
    if (s.kind == FaultKind::corrupt && !payload.empty()) {
      const index_t pos =
          rng_.next_index(static_cast<index_t>(payload.size()));
      // XOR with a nonzero mask so the byte is guaranteed to change.
      const unsigned mask = 1u + static_cast<unsigned>(rng_.next_u64() % 255);
      std::byte& target = payload[static_cast<std::size_t>(pos)];
      target = static_cast<std::byte>(std::to_integer<unsigned>(target) ^ mask);
    }
    return s;
  }
  return {};
}

count_t FaultInjector::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

}  // namespace gesp::minimpi
