#include "matching/matching.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/error.hpp"

namespace gesp::matching {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// MC21-style maximum transversal over an adjacency restricted by `keep`
/// (keep == nullptr means use every stored entry). Implements the cheap
/// assignment pass followed by depth-first augmenting paths with the
/// look-ahead trick (try unmatched rows of a column before recursing).
template <class T>
MatchingResult transversal_impl(const sparse::CscMatrix<T>& A,
                                const std::vector<char>* keep) {
  const index_t n_cols = A.ncols;
  const index_t n_rows = A.nrows;
  MatchingResult res;
  res.row_of_col.assign(static_cast<std::size_t>(n_cols), -1);
  std::vector<index_t> col_of_row(static_cast<std::size_t>(n_rows), -1);

  auto usable = [&](index_t p) { return keep == nullptr || (*keep)[p]; };

  // Cheap assignment: first free row in each column.
  for (index_t j = 0; j < n_cols; ++j) {
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p) {
      const index_t i = A.rowind[p];
      if (usable(p) && col_of_row[i] == -1) {
        col_of_row[i] = j;
        res.row_of_col[j] = i;
        ++res.size;
        break;
      }
    }
  }

  // Augmenting DFS for the remaining columns (iterative, with per-column
  // visited stamps to stay O(nnz) per augmentation).
  std::vector<index_t> visited(static_cast<std::size_t>(n_cols), -1);
  std::vector<index_t> stack, pos, row_taken;
  stack.reserve(64);
  for (index_t j0 = 0; j0 < n_cols; ++j0) {
    if (res.row_of_col[j0] != -1) continue;
    stack.assign(1, j0);
    pos.assign(1, A.colptr[j0]);
    row_taken.assign(1, -1);
    visited[j0] = j0;
    bool augmented = false;
    while (!stack.empty()) {
      const std::size_t lvl = stack.size() - 1;
      const index_t j = stack[lvl];
      index_t advance_row = -1;
      // Look-ahead: a free row ends the search immediately.
      for (index_t q = A.colptr[j]; q < A.colptr[j + 1]; ++q) {
        if (usable(q) && col_of_row[A.rowind[q]] == -1) {
          advance_row = A.rowind[q];
          break;
        }
      }
      if (advance_row != -1) {
        row_taken.back() = advance_row;
        // Unwind the alternating path, flipping matches.
        for (std::size_t k = stack.size(); k-- > 0;) {
          const index_t jj = stack[k];
          const index_t ii = row_taken[k];
          const index_t old = res.row_of_col[jj];
          res.row_of_col[jj] = ii;
          col_of_row[ii] = jj;
          (void)old;
        }
        ++res.size;
        augmented = true;
        break;
      }
      // Recurse into the column matched to the next unvisited row.
      // (Indexed access throughout: push_back below may reallocate pos.)
      bool descended = false;
      index_t p = pos[lvl];
      for (; p < A.colptr[j + 1]; ++p) {
        if (!usable(p)) continue;
        const index_t i = A.rowind[p];
        const index_t jm = col_of_row[i];
        GESP_ASSERT(jm != -1, "free row should have been caught above");
        if (visited[jm] == j0) continue;
        visited[jm] = j0;
        row_taken[lvl] = i;
        pos[lvl] = p + 1;
        stack.push_back(jm);
        pos.push_back(A.colptr[jm]);
        row_taken.push_back(-1);
        descended = true;
        break;
      }
      if (descended) continue;
      stack.pop_back();
      pos.pop_back();
      row_taken.pop_back();
      if (!stack.empty()) row_taken.back() = -1;
    }
    (void)augmented;
  }
  return res;
}

}  // namespace

template <class T>
MatchingResult max_transversal(const sparse::CscMatrix<T>& A) {
  return transversal_impl(A, nullptr);
}

template <class T>
Mc64Result mc64_product_matching(const sparse::CscMatrix<T>& A) {
  using std::abs;
  GESP_CHECK(A.nrows == A.ncols, Errc::invalid_argument,
             "mc64 needs a square matrix");
  const index_t n = A.ncols;
  const count_t nnz = A.nnz();

  // Cost of using entry (i,j): c_ij = log(colmax_j / |a_ij|) >= 0.
  // Minimizing the assignment cost maximizes prod |a(p(j), j)|.
  std::vector<double> cost(static_cast<std::size_t>(nnz));
  std::vector<double> logcolmax(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    double cmax = 0.0;
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p)
      cmax = std::max<double>(cmax, abs(A.values[p]));
    GESP_CHECK(cmax > 0.0, Errc::structurally_singular,
               "column " + std::to_string(j) + " is numerically empty");
    logcolmax[j] = std::log(cmax);
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p) {
      const double a = abs(A.values[p]);
      cost[p] = (a > 0.0) ? logcolmax[j] - std::log(a) : kInf;
    }
  }

  std::vector<double> u(static_cast<std::size_t>(n), 0.0);  // row duals
  std::vector<double> v(static_cast<std::size_t>(n), 0.0);  // column duals
  std::vector<index_t> row_of_col(static_cast<std::size_t>(n), -1);
  std::vector<index_t> col_of_row(static_cast<std::size_t>(n), -1);

  // Column reduction (JV-style initialization): v_j = min_i c_ij, then
  // greedily take tight arcs whose row is still free. Typically matches
  // the vast majority of columns before any Dijkstra runs.
  for (index_t j = 0; j < n; ++j) {
    double cmin = kInf;
    index_t imin = -1;
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p)
      if (cost[p] < cmin) {
        cmin = cost[p];
        imin = A.rowind[p];
      }
    v[j] = cmin;
    if (imin != -1 && col_of_row[imin] == -1) {
      col_of_row[imin] = j;
      row_of_col[j] = imin;
    }
  }

  // Shortest augmenting path (Dijkstra with potentials) per free column.
  // Epoch stamps avoid O(n) re-initialization per augmentation, and the
  // explicit finalized-row / tree-column lists keep the dual updates
  // proportional to the size of the alternating tree actually explored.
  std::vector<double> dist(static_cast<std::size_t>(n));
  std::vector<index_t> pred(static_cast<std::size_t>(n));
  std::vector<index_t> stamp(static_cast<std::size_t>(n), -1);
  std::vector<index_t> final_stamp(static_cast<std::size_t>(n), -1);
  std::vector<index_t> finalized_rows, tree_cols;
  using HeapItem = std::pair<double, index_t>;  // (dist, row)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  for (index_t j0 = 0; j0 < n; ++j0) {
    if (row_of_col[j0] != -1) continue;
    while (!heap.empty()) heap.pop();
    finalized_rows.clear();
    tree_cols.assign(1, j0);

    index_t j = j0;
    double lsp = 0.0;      // shortest path length to column j's tree node
    index_t isap = -1;     // endpoint row of the best augmenting path
    double lsap = kInf;

    auto dist_of = [&](index_t i) {
      return stamp[i] == j0 ? dist[i] : kInf;
    };

    while (true) {
      for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p) {
        const index_t i = A.rowind[p];
        if (final_stamp[i] == j0 || cost[p] == kInf) continue;
        const double d = lsp + cost[p] - u[i] - v[j];
        if (d < dist_of(i)) {
          dist[i] = d;
          stamp[i] = j0;
          pred[i] = j;
          heap.emplace(d, i);
        }
      }
      // Pop the closest non-finalized row.
      index_t inext = -1;
      double dnext = kInf;
      while (!heap.empty()) {
        auto [d, i] = heap.top();
        heap.pop();
        if (final_stamp[i] == j0 || d > dist_of(i)) continue;  // stale
        inext = i;
        dnext = d;
        break;
      }
      if (inext == -1) break;  // nothing reachable
      if (col_of_row[inext] == -1) {
        isap = inext;
        lsap = dnext;
        break;  // Dijkstra order: first free row popped is optimal
      }
      final_stamp[inext] = j0;
      finalized_rows.push_back(inext);
      lsp = dnext;
      j = col_of_row[inext];
      tree_cols.push_back(j);
    }

    GESP_CHECK(isap != -1, Errc::structurally_singular,
               "no perfect matching: column " + std::to_string(j0) +
                   " cannot be matched");

    // Dual updates keep reduced costs >= 0 and tight on matched arcs.
    for (index_t i : finalized_rows) u[i] += dist[i] - lsap;
    // Augment along the predecessor chain.
    index_t i = isap;
    while (true) {
      const index_t jp = pred[i];
      const index_t inextcol = row_of_col[jp];
      row_of_col[jp] = i;
      col_of_row[i] = jp;
      if (jp == j0) break;
      i = inextcol;
    }
    // Restore tightness of column duals along matched arcs in the tree.
    for (index_t jj : tree_cols) {
      const index_t im = row_of_col[jj];
      GESP_ASSERT(im != -1, "tree column left unmatched after augmentation");
      for (index_t p = A.colptr[jj]; p < A.colptr[jj + 1]; ++p) {
        if (A.rowind[p] == im) {
          v[jj] = cost[p] - u[im];
          break;
        }
      }
    }
  }

  Mc64Result res;
  res.row_of_col = std::move(row_of_col);
  res.row_scale.resize(static_cast<std::size_t>(n));
  res.col_scale.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) res.row_scale[i] = std::exp(u[i]);
  for (index_t j = 0; j < n; ++j)
    res.col_scale[j] = std::exp(v[j] - logcolmax[j]);
  return res;
}

template <class T>
MatchingResult bottleneck_matching(const sparse::CscMatrix<T>& A,
                                   double* achieved_min) {
  using std::abs;
  GESP_CHECK(A.nrows == A.ncols, Errc::invalid_argument,
             "bottleneck matching needs a square matrix");
  // Candidate thresholds: the distinct entry magnitudes.
  std::vector<double> mags;
  mags.reserve(A.values.size());
  for (const T& x : A.values) {
    const double a = abs(x);
    if (a > 0.0) mags.push_back(a);
  }
  std::sort(mags.begin(), mags.end());
  mags.erase(std::unique(mags.begin(), mags.end()), mags.end());
  GESP_CHECK(!mags.empty(), Errc::structurally_singular, "matrix is zero");

  auto feasible = [&](double tau, MatchingResult* out) {
    std::vector<char> keep(A.values.size());
    for (std::size_t p = 0; p < A.values.size(); ++p)
      keep[p] = abs(A.values[p]) >= tau;
    MatchingResult m = transversal_impl(A, &keep);
    const bool ok = m.size == A.ncols;
    if (ok && out) *out = std::move(m);
    return ok;
  };

  MatchingResult best;
  GESP_CHECK(feasible(mags.front(), &best), Errc::structurally_singular,
             "no perfect matching exists");
  std::size_t lo = 0, hi = mags.size() - 1;  // mags[lo] feasible
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (feasible(mags[mid], &best))
      lo = mid;
    else
      hi = mid - 1;
  }
  if (achieved_min) *achieved_min = mags[lo];
  return best;
}

std::vector<index_t> matching_to_row_perm(
    std::span<const index_t> row_of_col) {
  std::vector<index_t> perm(row_of_col.size(), -1);
  for (std::size_t j = 0; j < row_of_col.size(); ++j) {
    const index_t i = row_of_col[j];
    GESP_CHECK(i >= 0 && static_cast<std::size_t>(i) < perm.size(),
               Errc::invalid_argument, "matching is not perfect");
    GESP_CHECK(perm[i] == -1, Errc::invalid_argument,
               "matching maps two columns to one row");
    perm[i] = static_cast<index_t>(j);
  }
  return perm;
}

template MatchingResult max_transversal(const sparse::CscMatrix<double>&);
template MatchingResult max_transversal(const sparse::CscMatrix<Complex>&);
template Mc64Result mc64_product_matching(const sparse::CscMatrix<double>&);
template Mc64Result mc64_product_matching(const sparse::CscMatrix<Complex>&);
template MatchingResult bottleneck_matching(const sparse::CscMatrix<double>&,
                                            double*);
template MatchingResult bottleneck_matching(const sparse::CscMatrix<Complex>&,
                                            double*);

}  // namespace gesp::matching
