// Bipartite matchings on the nonzero structure — GESP step (1).
//
// The paper pre-pivots large entries onto the diagonal by solving a weighted
// bipartite matching problem (Duff–Koster, reference [13]; Harwell MC64) and
// derives row/column scalings from the dual variables so that the permuted,
// scaled matrix has |diagonal| = 1 and all off-diagonals ≤ 1 in magnitude.
// This file provides:
//   * max_transversal      — structural maximum matching (MC21, Duff [11,12])
//   * mc64_product_matching — maximize the product of matched magnitudes via
//                             shortest augmenting paths with potentials
//                             (job 5 of MC64), plus the dual scalings
//   * bottleneck_matching  — maximize the smallest matched magnitude
//                             (another option discussed in [13])
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "sparse/csc.hpp"

namespace gesp::matching {

/// Result of a structural matching.
struct MatchingResult {
  /// row_of_col[j] = row matched to column j, or -1 if the column is
  /// unmatched. A perfect matching has size == n and no -1 entries.
  std::vector<index_t> row_of_col;
  index_t size = 0;
};

/// Maximum transversal on the pattern of A (values ignored). Never throws
/// on structurally singular input — inspect `size`.
template <class T>
MatchingResult max_transversal(const sparse::CscMatrix<T>& A);

/// Result of the weighted matching: permutation plus scalings.
struct Mc64Result {
  std::vector<index_t> row_of_col;  ///< perfect matching, row per column
  std::vector<double> row_scale;    ///< Dr = exp(u_i)
  std::vector<double> col_scale;    ///< Dc = exp(v_j)/max_i|a_ij|
};

/// Duff–Koster product matching (MC64 job 5): finds the permutation
/// maximizing prod_j |a(p(j), j)| and scalings such that the scaled permuted
/// matrix has unit diagonal magnitudes and off-diagonals at most 1.
/// Throws Errc::structurally_singular when no perfect matching exists.
template <class T>
Mc64Result mc64_product_matching(const sparse::CscMatrix<T>& A);

/// Bottleneck matching: maximize min_j |a(p(j), j)| by bisection over entry
/// magnitudes with max_transversal feasibility tests. On success
/// *achieved_min (if non-null) receives the bottleneck value.
/// Throws Errc::structurally_singular when no perfect matching exists.
template <class T>
MatchingResult bottleneck_matching(const sparse::CscMatrix<T>& A,
                                   double* achieved_min = nullptr);

/// Convert a perfect matching into the new-from-old row permutation that
/// moves matched entries onto the diagonal: perm[row_of_col[j]] = j, so
/// B = permute(A, perm, {}) has B(j,j) = A(row_of_col[j], j).
std::vector<index_t> matching_to_row_perm(std::span<const index_t> row_of_col);

extern template MatchingResult max_transversal(const sparse::CscMatrix<double>&);
extern template MatchingResult max_transversal(const sparse::CscMatrix<Complex>&);
extern template Mc64Result mc64_product_matching(const sparse::CscMatrix<double>&);
extern template Mc64Result mc64_product_matching(const sparse::CscMatrix<Complex>&);
extern template MatchingResult bottleneck_matching(const sparse::CscMatrix<double>&, double*);
extern template MatchingResult bottleneck_matching(const sparse::CscMatrix<Complex>&, double*);

}  // namespace gesp::matching
