#include "refine/error_bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "sparse/ops.hpp"

namespace gesp::refine {
namespace {

/// Apply the elementwise conjugate (no-op for real scalars).
void conjugate(std::span<double>) {}
void conjugate(std::span<Complex> x) {
  for (Complex& v : x) v = std::conj(v);
}

}  // namespace

template <class T>
double forward_error_bound(const sparse::CscMatrix<T>& A,
                           std::span<const T> x, std::span<const T> b,
                           std::span<const T> r, const SolveOps<T>& ops) {
  using std::abs;
  const index_t n = A.ncols;
  GESP_CHECK(x.size() == static_cast<std::size_t>(n) && b.size() == x.size() &&
                 r.size() == x.size(),
             Errc::invalid_argument, "forward_error_bound size mismatch");
  const double eps = std::numeric_limits<double>::epsilon();
  // f = |r| + (n+1)·eps·(|A||x| + |b|).
  std::vector<double> f(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) f[i] = abs(b[i]);
  for (index_t j = 0; j < n; ++j) {
    const double axj = abs(x[j]);
    if (axj == 0.0) continue;
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p)
      f[A.rowind[p]] += abs(A.values[p]) * axj;
  }
  for (index_t i = 0; i < n; ++i)
    f[i] = abs(r[i]) + (n + 1) * eps * f[i];

  // ||A^{-1} diag(f)||_inf = ||diag(f) A^{-T}||_1, estimated via Hager:
  //   apply:   v <- diag(f)·A^{-H} v   (adjoint pair of the operator)
  //   adjoint: v <- A^{-1}·(diag(f)·v)
  // (For real T, transpose == adjoint; for complex, conjugation wrappers
  // turn the available A^{-T} solve into A^{-H}.)
  ApplyFn<T> apply = [&](std::span<T> v) {
    conjugate(v);
    ops.solve_transposed(v);
    conjugate(v);
    for (index_t i = 0; i < n; ++i) v[i] *= T{f[i]};
  };
  ApplyFn<T> adjoint = [&](std::span<T> v) {
    for (index_t i = 0; i < n; ++i) v[i] *= T{f[i]};
    ops.solve(v);
  };
  const double est = estimate_norm1<T>(n, apply, adjoint);
  const double xnorm = sparse::vec_norm_inf<T>(x);
  if (xnorm == 0.0)
    return est == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return est / xnorm;
}

template <class T>
double rcond_estimate(const sparse::CscMatrix<T>& A, const SolveOps<T>& ops) {
  const double anorm = sparse::norm_one(A);
  if (anorm == 0.0) return 0.0;
  ApplyFn<T> apply = [&](std::span<T> v) { ops.solve(v); };
  ApplyFn<T> adjoint = [&](std::span<T> v) {
    conjugate(v);
    ops.solve_transposed(v);
    conjugate(v);
  };
  const double inv_norm = estimate_norm1<T>(A.ncols, apply, adjoint);
  if (inv_norm == 0.0) return 1.0;
  return 1.0 / (anorm * inv_norm);
}

template double forward_error_bound(const sparse::CscMatrix<double>&,
                                    std::span<const double>,
                                    std::span<const double>,
                                    std::span<const double>,
                                    const SolveOps<double>&);
template double forward_error_bound(const sparse::CscMatrix<Complex>&,
                                    std::span<const Complex>,
                                    std::span<const Complex>,
                                    std::span<const Complex>,
                                    const SolveOps<Complex>&);
template double rcond_estimate(const sparse::CscMatrix<double>&,
                               const SolveOps<double>&);
template double rcond_estimate(const sparse::CscMatrix<Complex>&,
                               const SolveOps<Complex>&);

}  // namespace gesp::refine
