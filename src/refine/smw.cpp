#include "refine/smw.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dense/kernels.hpp"

namespace gesp::refine {

template <class T>
SmwSolver<T>::SmwSolver(const numeric::LUFactors<T>& factors) : f_(factors) {
  const auto& repl = factors.replacements();
  const index_t n = factors.sym().n;
  const index_t r = static_cast<index_t>(repl.size());
  positions_.reserve(repl.size());
  for (const auto& [col, delta] : repl) positions_.push_back(col);
  if (r == 0) return;

  // Z = Ã^{-1} V, where column k of V is δ_k e_{p_k}.
  z_.assign(static_cast<std::size_t>(n) * r, T{});
  for (index_t k = 0; k < r; ++k) {
    std::span<T> col(z_.data() + static_cast<std::size_t>(k) * n,
                     static_cast<std::size_t>(n));
    col[positions_[k]] = repl[k].second;
    f_.solve(col);
  }
  // Capacitance C = I − Wᵀ Z (r×r), factored with in-block pivoting.
  cap_.assign(static_cast<std::size_t>(r) * r, T{});
  for (index_t j = 0; j < r; ++j)
    for (index_t i = 0; i < r; ++i)
      cap_[i + static_cast<std::size_t>(j) * r] =
          T{i == j ? 1.0 : 0.0} -
          z_[positions_[i] + static_cast<std::size_t>(j) * n];
  cap_perm_.assign(static_cast<std::size_t>(r), 0);
  dense::PivotPolicy policy;
  policy.pivot_in_block = true;
  dense::PivotStats stats;
  dense::getrf(cap_.data(), r, r, policy, stats,
               std::span<index_t>(cap_perm_));
}

template <class T>
void SmwSolver<T>::solve(std::span<T> x) const {
  const index_t n = f_.sym().n;
  GESP_CHECK(x.size() == static_cast<std::size_t>(n), Errc::invalid_argument,
             "SMW solve size mismatch");
  f_.solve(x);  // y = Ã^{-1} b
  const index_t r = rank();
  if (r == 0) return;
  // α = C^{-1} (Wᵀ y): gather, permute, two triangular solves.
  std::vector<T> rhs(static_cast<std::size_t>(r));
  for (index_t k = 0; k < r; ++k) rhs[k] = x[positions_[k]];
  std::vector<T> alpha(static_cast<std::size_t>(r));
  for (index_t k = 0; k < r; ++k) alpha[k] = rhs[cap_perm_[k]];
  dense::trsv_lower_unit(cap_.data(), r, r, alpha.data());
  dense::trsv_upper(cap_.data(), r, r, alpha.data());
  // x = y + Z α.
  for (index_t k = 0; k < r; ++k) {
    const T ak = alpha[k];
    if (ak == T{}) continue;
    const T* zk = z_.data() + static_cast<std::size_t>(k) * n;
    for (index_t i = 0; i < n; ++i) x[i] += zk[i] * ak;
  }
}

template class SmwSolver<double>;
template class SmwSolver<Complex>;

}  // namespace gesp::refine
