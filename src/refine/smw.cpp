#include "refine/smw.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dense/kernels.hpp"

namespace gesp::refine {

template <class T>
SmwSolver<T>::SmwSolver(std::shared_ptr<const numeric::LUFactors<T>> factors)
    : f_(std::move(factors)) {
  GESP_CHECK(f_ != nullptr, Errc::invalid_argument, "null factors handle");
  // The factorization computed Ã = A + Σ δ_k e_k e_kᵀ; the target is the
  // original A, i.e. the diagonal updates with the deltas negated.
  const auto& repl = f_->replacements();
  std::vector<Update> ups;
  ups.reserve(repl.size());
  for (const auto& [col, delta] : repl) ups.push_back({col, col, -delta});
  build(ups);
}

template <class T>
SmwSolver<T>::SmwSolver(std::shared_ptr<const numeric::LUFactors<T>> factors,
                        const std::vector<Update>& updates)
    : f_(std::move(factors)) {
  GESP_CHECK(f_ != nullptr, Errc::invalid_argument, "null factors handle");
  build(updates);
}

template <class T>
void SmwSolver<T>::build(const std::vector<Update>& updates) {
  const index_t n = f_->sym().n;
  const index_t r = static_cast<index_t>(updates.size());
  scatter_.reserve(updates.size());
  gather_.reserve(updates.size());
  for (const auto& u : updates) {
    GESP_CHECK(u.row >= 0 && u.row < n && u.col >= 0 && u.col < n,
               Errc::invalid_argument, "SMW update position out of range");
    scatter_.push_back(u.row);
    gather_.push_back(u.col);
  }
  if (r == 0) return;

  // Z = Ã^{-1} V, where column k of V is −δ_k e_{i_k} (the target is
  // Ã + Σ δ_k e_{i_k} e_{j_k}ᵀ = Ã − V·Wᵀ with W column k = e_{j_k}).
  z_.assign(static_cast<std::size_t>(n) * r, T{});
  vscale_.resize(static_cast<std::size_t>(r));
  for (index_t k = 0; k < r; ++k) {
    vscale_[k] = -updates[k].delta;
    std::span<T> col(z_.data() + static_cast<std::size_t>(k) * n,
                     static_cast<std::size_t>(n));
    col[scatter_[k]] = vscale_[k];
    f_->solve(col);
  }
  // Capacitance C = I − Wᵀ Z (r×r), factored with in-block pivoting.
  cap_.assign(static_cast<std::size_t>(r) * r, T{});
  for (index_t j = 0; j < r; ++j)
    for (index_t i = 0; i < r; ++i)
      cap_[i + static_cast<std::size_t>(j) * r] =
          T{i == j ? 1.0 : 0.0} -
          z_[gather_[i] + static_cast<std::size_t>(j) * n];
  cap_perm_.assign(static_cast<std::size_t>(r), 0);
  dense::PivotPolicy policy;
  policy.pivot_in_block = true;
  dense::PivotStats stats;
  dense::getrf(cap_.data(), r, r, policy, stats,
               std::span<index_t>(cap_perm_));
}

template <class T>
void SmwSolver<T>::solve(std::span<T> x) const {
  const index_t n = f_->sym().n;
  GESP_CHECK(x.size() == static_cast<std::size_t>(n), Errc::invalid_argument,
             "SMW solve size mismatch");
  f_->solve(x);  // y = Ã^{-1} b
  const index_t r = rank();
  if (r == 0) return;
  // α = C^{-1} (Wᵀ y): gather, permute, two triangular solves.
  std::vector<T> rhs(static_cast<std::size_t>(r));
  for (index_t k = 0; k < r; ++k) rhs[k] = x[gather_[k]];
  std::vector<T> alpha(static_cast<std::size_t>(r));
  for (index_t k = 0; k < r; ++k) alpha[k] = rhs[cap_perm_[k]];
  dense::trsv_lower_unit(cap_.data(), r, r, alpha.data());
  dense::trsv_upper(cap_.data(), r, r, alpha.data());
  // x = y + Z α.
  for (index_t k = 0; k < r; ++k) {
    const T ak = alpha[k];
    if (ak == T{}) continue;
    const T* zk = z_.data() + static_cast<std::size_t>(k) * n;
    for (index_t i = 0; i < n; ++i) x[i] += zk[i] * ak;
  }
}

template <class T>
void SmwSolver<T>::solve_transposed(std::span<T> x) const {
  const index_t n = f_->sym().n;
  GESP_CHECK(x.size() == static_cast<std::size_t>(n), Errc::invalid_argument,
             "SMW solve size mismatch");
  // A^{-T} = Ã^{-T} + Ã^{-T} W C^{-T} Vᵀ Ã^{-T}.
  f_->solve_transposed(x);  // y = Ã^{-T} b
  const index_t r = rank();
  if (r == 0) return;
  // rhs = Vᵀ y (V column k is vscale_[k]·e_{i_k}).
  std::vector<T> rhs(static_cast<std::size_t>(r));
  for (index_t k = 0; k < r; ++k) rhs[k] = vscale_[k] * x[scatter_[k]];
  // β = C^{-T} rhs. The forward path solves C = Pᵀ·L·U as U⁻¹L⁻¹P; the
  // transpose Cᵀ = Uᵀ·Lᵀ·P therefore solves as Pᵀ·L⁻ᵀ·U⁻ᵀ.
  dense::trsv_upper_trans(cap_.data(), r, r, rhs.data());
  dense::trsv_lower_unit_trans(cap_.data(), r, r, rhs.data());
  std::vector<T> beta(static_cast<std::size_t>(r));
  for (index_t k = 0; k < r; ++k) beta[cap_perm_[k]] = rhs[k];
  // x = y + W β: W column k is e_{j_k}.
  for (index_t k = 0; k < r; ++k) x[gather_[k]] += beta[k];
}

template class SmwSolver<double>;
template class SmwSolver<Complex>;

}  // namespace gesp::refine
