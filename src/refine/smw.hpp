// Sherman–Morrison–Woodbury recovery of tiny-pivot perturbations —
// the paper's §4 "aggressive pivot size control" extension.
//
// The factorization actually computed is of Ã = A + Σ_k δ_k e_k e_kᵀ
// (each replaced pivot is a rank-1 diagonal perturbation). With
// V = [δ_k e_k] and W = [e_k],  A = Ã − V·Wᵀ  and
//   A^{-1} = Ã^{-1} + Ã^{-1} V (I − Wᵀ Ã^{-1} V)^{-1} Wᵀ Ã^{-1},
// so a handful of extra triangular solves recovers the *exact* inverse of
// the original matrix — no matter how large the perturbations were.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "numeric/lu_factors.hpp"

namespace gesp::refine {

/// Wraps LU factors of the perturbed matrix Ã together with the recorded
/// replacements, exposing exact solves with the original A.
template <class T>
class SmwSolver {
 public:
  /// `factors` must have been built with record_replacements = true.
  explicit SmwSolver(const numeric::LUFactors<T>& factors);

  /// Number of recorded perturbations (0 means plain solves).
  index_t rank() const { return static_cast<index_t>(positions_.size()); }

  /// x <- A^{-1}·x (exact up to roundoff, SMW-corrected).
  void solve(std::span<T> x) const;

 private:
  const numeric::LUFactors<T>& f_;
  std::vector<index_t> positions_;  ///< global pivot columns replaced
  std::vector<T> z_;          ///< Z = Ã^{-1}V, n-by-r column major
  std::vector<T> cap_;        ///< factored capacitance C = I − WᵀZ (r×r)
  std::vector<index_t> cap_perm_;  ///< partial-pivot permutation of C
};

extern template class SmwSolver<double>;
extern template class SmwSolver<Complex>;

}  // namespace gesp::refine
