// Sherman–Morrison–Woodbury corrections over a static factorization.
//
// Two users share the machinery:
//
//  1. Tiny-pivot recovery (the paper's §4 "aggressive pivot size control"):
//     the factorization actually computed is of Ã = A + Σ_k δ_k e_k e_kᵀ
//     (each replaced pivot is a rank-1 diagonal perturbation), and solves
//     with the ORIGINAL A are recovered exactly.
//  2. Low-rank delta refactorization: the factors describe a BASE matrix Ã
//     and the target is A = Ã + Σ_k δ_k e_{i_k} e_{j_k}ᵀ — a handful of
//     changed entries in a transient sweep, solved without refactorizing.
//
// Both are the same identity. With A = Ã − V·Wᵀ,
//   A^{-1} = Ã^{-1} + Ã^{-1} V (I − Wᵀ Ã^{-1} V)^{-1} Wᵀ Ã^{-1},
// so r extra triangular solves at construction and one r×r solve per
// application recover the exact inverse — no matter how large the
// perturbations were.
#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "numeric/lu_factors.hpp"

namespace gesp::refine {

/// Wraps LU factors of a base matrix Ã together with a rank-r entrywise
/// update, exposing exact solves with the updated matrix. The factors are
/// held by shared_ptr so a correction in flight keeps them alive even when
/// the owner (a cache entry, a solver mid-rebuild) lets go.
template <class T>
class SmwSolver {
 public:
  /// One rank-1 term: the solve target is Ã + delta·e_row·e_colᵀ summed
  /// over all updates (duplicate (row, col) positions are allowed — the
  /// deltas simply add).
  struct Update {
    index_t row, col;
    T delta;
  };

  /// Tiny-pivot recovery: `factors` must have been built with
  /// record_replacements = true; solves target the original matrix (every
  /// recorded diagonal perturbation is subtracted back out).
  explicit SmwSolver(std::shared_ptr<const numeric::LUFactors<T>> factors);

  /// Low-rank delta: solves target Ã + Σ updates[k].delta·e_row·e_colᵀ,
  /// where Ã is the matrix `factors` factored.
  SmwSolver(std::shared_ptr<const numeric::LUFactors<T>> factors,
            const std::vector<Update>& updates);

  /// Non-owning convenience for stack-held factors (tests, benches): the
  /// caller guarantees `factors` outlives this solver.
  explicit SmwSolver(const numeric::LUFactors<T>& factors)
      : SmwSolver(std::shared_ptr<const numeric::LUFactors<T>>(
            std::shared_ptr<const void>{}, &factors)) {}

  /// Rank of the correction (0 means plain solves).
  index_t rank() const { return static_cast<index_t>(gather_.size()); }

  /// x <- A^{-1}·x (exact up to roundoff, SMW-corrected).
  void solve(std::span<T> x) const;
  /// x <- A^{-T}·x — the transposed solves the Hager–Higham condition /
  /// forward-error estimators need.
  void solve_transposed(std::span<T> x) const;

 private:
  void build(const std::vector<Update>& updates);

  std::shared_ptr<const numeric::LUFactors<T>> f_;
  std::vector<index_t> scatter_;  ///< row i_k (V's nonzero position)
  std::vector<index_t> gather_;   ///< column j_k (Wᵀ gathers here)
  std::vector<T> vscale_;         ///< −δ_k (V column k's nonzero value)
  std::vector<T> z_;          ///< Z = Ã^{-1}V, n-by-r column major
  std::vector<T> cap_;        ///< factored capacitance C = I − WᵀZ (r×r)
  std::vector<index_t> cap_perm_;  ///< partial-pivot permutation of C
};

extern template class SmwSolver<double>;
extern template class SmwSolver<Complex>;

}  // namespace gesp::refine
