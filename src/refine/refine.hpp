// Iterative refinement — GESP step (4).
//
// Refinement both recovers the accuracy lost to static pivoting and undoes
// the sqrt(eps) tiny-pivot perturbations of step (3). The termination rule
// is the paper's: stop when the componentwise backward error `berr` drops
// to machine epsilon, or when it fails to halve between iterations
// (stagnation guard), or after max_iters.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "common/trace.hpp"
#include "common/types.hpp"
#include "sparse/csc.hpp"
#include "sparse/ops.hpp"

namespace gesp::refine {

struct RefineOptions {
  int max_iters = 10;
  /// Use the compensated (twice-working-precision) residual — the paper's
  /// "extra precision" enhancement.
  bool compensated_residual = false;
  /// Stop once berr <= this (default: double machine epsilon). The mixed-
  /// precision driver sets it explicitly per precision — the double target
  /// when refining a single-precision factorization toward full accuracy,
  /// float epsilon when the solve stays entirely in single.
  double target_berr = std::numeric_limits<double>::epsilon();
  /// Stagnation guard: keep iterating only while berr <= stall_ratio·prev
  /// (the paper's "fails to halve" rule at the default 0.5). Previously a
  /// hardcoded /2.0 inside the loop; hoisted so callers and tests can pin
  /// it — a looser ratio lets single-precision corrections, whose per-step
  /// contraction is weaker, keep making progress.
  double stall_ratio = 0.5;
};

struct RefineResult {
  int iterations = 0;          ///< refinement steps actually applied
  double final_berr = 0.0;     ///< componentwise backward error at exit
  bool converged = false;      ///< final_berr <= target
  std::vector<double> berr_history;  ///< berr after each step (incl. initial)
};

/// Refine x (in place) toward the solution of A·x = b. `solver` must apply
/// an approximate A^{-1} in place on a correction vector (e.g. the LU
/// solve, possibly SMW-corrected). A and b live in the same (permuted,
/// scaled) space as x.
template <class T, class SolveFn>
RefineResult iterative_refinement(const sparse::CscMatrix<T>& A,
                                  std::span<const T> b, std::span<T> x,
                                  SolveFn&& solver,
                                  const RefineOptions& opt = {}) {
  RefineResult res;
  const std::size_t n = x.size();
  std::vector<T> r(n), dx(n);

  auto compute_berr = [&]() {
    if (opt.compensated_residual)
      sparse::residual_compensated<T>(A, x, b, r);
    else
      sparse::residual<T>(A, x, b, r);
    return static_cast<double>(
        sparse::componentwise_backward_error<T>(A, x, b, r));
  };

  double berr = compute_berr();
  res.berr_history.push_back(berr);
  trace::instant_value("refine", "berr", berr, res.iterations);
  double prev = std::numeric_limits<double>::infinity();
  while (res.iterations < opt.max_iters && berr > opt.target_berr &&
         berr <= prev * opt.stall_ratio) {
    prev = berr;
    std::copy(r.begin(), r.end(), dx.begin());
    solver(std::span<T>(dx));  // dx ~= A^{-1} r
    for (std::size_t i = 0; i < n; ++i) x[i] += dx[i];
    ++res.iterations;
    berr = compute_berr();
    res.berr_history.push_back(berr);
    trace::instant_value("refine", "berr", berr, res.iterations);
  }
  res.final_berr = berr;
  res.converged = berr <= opt.target_berr;
  return res;
}

}  // namespace gesp::refine
