#include "refine/norm_estimator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gesp::refine {
namespace {

double abs_of(double v) { return std::abs(v); }
double abs_of(const Complex& v) { return std::abs(v); }

double norm1(std::span<const double> x) {
  double s = 0;
  for (double v : x) s += std::abs(v);
  return s;
}
double norm1(std::span<const Complex> x) {
  double s = 0;
  for (const Complex& v : x) s += std::abs(v);
  return s;
}

/// sign(v): ±1 for real, unit phase for complex, 1 at zero.
double sign_of(double v) { return v >= 0.0 ? 1.0 : -1.0; }
Complex sign_of(const Complex& v) {
  const double m = std::abs(v);
  return m == 0.0 ? Complex(1.0, 0.0) : v / m;
}

}  // namespace

template <class T>
double estimate_norm1(index_t n, const ApplyFn<T>& apply,
                      const ApplyFn<T>& apply_adjoint, int max_iters) {
  GESP_CHECK(n > 0, Errc::invalid_argument, "estimate_norm1 needs n > 0");
  std::vector<T> x(static_cast<std::size_t>(n),
                   T{1.0 / static_cast<double>(n)});
  double est = 0.0;
  index_t last_j = -1;
  for (int it = 0; it < max_iters; ++it) {
    apply(std::span<T>(x));  // x <- B x
    const double new_est = norm1(std::span<const T>(x));
    if (it > 0 && new_est <= est) break;
    est = new_est;
    // z = Bᴴ sign(x)
    for (T& v : x) v = sign_of(v);
    apply_adjoint(std::span<T>(x));
    index_t j = 0;
    double zmax = 0.0;
    for (index_t i = 0; i < n; ++i) {
      const double m = abs_of(x[i]);
      if (m > zmax) {
        zmax = m;
        j = i;
      }
    }
    if (j == last_j) break;  // stuck on the same column
    last_j = j;
    std::fill(x.begin(), x.end(), T{});
    x[j] = T{1};
  }
  // Parity-vector lower bound (guards against the power iteration landing
  // in a bad invariant subspace).
  std::vector<T> v(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    const double val =
        (i % 2 == 0 ? 1.0 : -1.0) *
        (1.0 + static_cast<double>(i) / std::max<index_t>(1, n - 1));
    v[i] = T{val};
  }
  apply(std::span<T>(v));
  const double alt = 2.0 * norm1(std::span<const T>(v)) / (3.0 * n);
  return std::max(est, alt);
}

template double estimate_norm1<double>(index_t, const ApplyFn<double>&,
                                       const ApplyFn<double>&, int);
template double estimate_norm1<Complex>(index_t, const ApplyFn<Complex>&,
                                        const ApplyFn<Complex>&, int);

}  // namespace gesp::refine
