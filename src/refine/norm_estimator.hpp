// Hager–Higham 1-norm estimation of a linear operator given only
// apply(B·x) and apply(Bᴴ·x) — the engine behind the paper's forward error
// bound and condition estimate (the step the paper calls "by far the most
// expensive after factorization", which is why the driver only runs it on
// request).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace gesp::refine {

/// In-place operator application.
template <class T>
using ApplyFn = std::function<void(std::span<T>)>;

/// Estimate ||B||_1 with at most `max_iters` forward/adjoint applications
/// (LAPACK xLACON-style, including the parity-vector lower bound).
template <class T>
double estimate_norm1(index_t n, const ApplyFn<T>& apply,
                      const ApplyFn<T>& apply_adjoint, int max_iters = 5);

extern template double estimate_norm1<double>(index_t, const ApplyFn<double>&,
                                              const ApplyFn<double>&, int);
extern template double estimate_norm1<Complex>(index_t,
                                               const ApplyFn<Complex>&,
                                               const ApplyFn<Complex>&, int);

}  // namespace gesp::refine
