// Forward error bound and condition estimation (the optional, expensive
// diagnostics of the GESP driver).
//
// The forward error bound follows LAPACK's xGERFS analysis:
//   ferr >= ||x - x_true||_inf / ||x||_inf   (approximately)
//   ferr  = || |A^{-1}| ( |r| + (n+1)·eps·(|A||x| + |b|) ) ||_inf / ||x||_inf
// with the |A^{-1}|·f norm estimated by Hager–Higham using solves with A
// and Aᴴ — multiple triangular solves, which is why the paper runs this
// only when the user asks.
#pragma once

#include <functional>
#include <span>

#include "common/types.hpp"
#include "refine/norm_estimator.hpp"
#include "sparse/csc.hpp"

namespace gesp::refine {

/// Solver callbacks: apply A^{-1} / A^{-T} in place (from the LU factors).
template <class T>
struct SolveOps {
  ApplyFn<T> solve;             ///< x <- A^{-1} x
  ApplyFn<T> solve_transposed;  ///< x <- A^{-T} x
};

/// Estimated forward error bound for the computed solution x of A·x = b
/// with residual r = b - A·x.
template <class T>
double forward_error_bound(const sparse::CscMatrix<T>& A,
                           std::span<const T> x, std::span<const T> b,
                           std::span<const T> r, const SolveOps<T>& ops);

/// Reciprocal condition number estimate: 1 / (||A||_1 · est(||A^{-1}||_1)).
template <class T>
double rcond_estimate(const sparse::CscMatrix<T>& A, const SolveOps<T>& ops);

extern template double forward_error_bound(const sparse::CscMatrix<double>&,
                                           std::span<const double>,
                                           std::span<const double>,
                                           std::span<const double>,
                                           const SolveOps<double>&);
extern template double forward_error_bound(const sparse::CscMatrix<Complex>&,
                                           std::span<const Complex>,
                                           std::span<const Complex>,
                                           std::span<const Complex>,
                                           const SolveOps<Complex>&);
extern template double rcond_estimate(const sparse::CscMatrix<double>&,
                                      const SolveOps<double>&);
extern template double rcond_estimate(const sparse::CscMatrix<Complex>&,
                                      const SolveOps<Complex>&);

}  // namespace gesp::refine
