#!/bin/sh
# Regenerates every table/figure (paper-core experiments first, then the
# ablations and microbenchmarks). Usage: ./run_benches.sh [> bench_output.txt]
# Exits nonzero if any bench failed (each failure is still reported inline
# and the remaining benches still run).
FAILED=""
note_failure() {
  echo "BENCH FAILED: $1"
  FAILED="$FAILED $1"
}
BENCHES="
bench_table1_testbed
bench_table2_large
bench_fig2_characteristics
bench_fig3_refinement
bench_fig5_berr
bench_fig4_error_scatter
bench_fig6_step_fractions
bench_table3_factor_scaling
bench_table4_solve_scaling
bench_table5_balance_comm
bench_motivation_nopivot
bench_ablation_pipeline
bench_ablation_edag
bench_ablation_options
bench_ablation_solvelevels
bench_ablation_densetail
bench_smp_vs_dist
bench_ablation_relax
bench_ablation_blocksize
bench_machine_epochs
bench_dist_backend
bench_hostile
bench_serve
bench_serve_dist
bench_mixed
bench_delta
bench_autotune
bench_kernels
"
for b in $BENCHES; do
  echo "###############################################################"
  echo "### $b"
  echo "###############################################################"
  if [ "$b" = "bench_serve" ]; then
    # Serving layer: cold vs pattern-hit vs value-hit per-request cost and
    # batched vs unbatched throughput, recorded machine-readable next to
    # this script (the CI serve-smoke artifact).
    "build/bench/$b" --out=BENCH_serve.json || note_failure "$b"
  elif [ "$b" = "bench_serve_dist" ]; then
    # Sharded serving tier: fleet-vs-single-node cache capacity under one
    # per-rank byte budget (the ~R x retention claim) and kill-rank chaos
    # accounting, recorded machine-readable next to this script (the CI
    # serve-dist artifact).
    "build/bench/$b" --out=BENCH_serve_dist.json || note_failure "$b"
  elif [ "$b" = "bench_dist_backend" ]; then
    # Distributed backend: pipelined-vs-strict makespan model, real
    # message/byte counters and look-ahead hits per grid shape, recorded
    # machine-readable next to this script.
    "build/bench/$b" --out=BENCH_dist.json || note_failure "$b"
  elif [ "$b" = "bench_hostile" ]; then
    # Adversarial testbed vs the recovery ladder: rung reached, backward
    # error, and ladder time against the GEPP baseline per hostile matrix,
    # recorded machine-readable next to this script (the CI
    # hostile-matrices artifact).
    "build/bench/$b" --out=BENCH_hostile.json || note_failure "$b"
  elif [ "$b" = "bench_mixed" ]; then
    # Mixed precision: float-vs-double GEMM GF/s per block size and
    # mixed-vs-double end-to-end factor+solve+refine time over the full
    # testbed, recorded machine-readable next to this script (the CI
    # bench-smoke artifact behind the INTERNALS §16 table).
    "build/bench/$b" --out=BENCH_mixed.json || note_failure "$b"
  elif [ "$b" = "bench_delta" ]; then
    # Delta refactorization: full-vs-delta refactorize cost per transient
    # step on circuit-class generators, windowed and scattered drift
    # shapes at 1/5/25% changed columns, recorded machine-readable next
    # to this script (the CI bench-smoke artifact behind the
    # EXPERIMENTS.md table).
    "build/bench/$b" --out=BENCH_delta.json || note_failure "$b"
  elif [ "$b" = "bench_kernels" ]; then
    # google-benchmark binary: also record the machine-readable perf
    # trajectory (GEMM GFLOP/s per block size, factorization per schedule
    # and thread count) next to this script.
    "build/bench/$b" --benchmark_out=BENCH_kernels.json \
      --benchmark_out_format=json || note_failure "$b"
  elif [ "$b" = "bench_autotune" ]; then
    # Autotuning: calibrated machine constants, tuned-vs-default factor
    # time over the testbed, and the adaptive serve controller's
    # step-change experiment, recorded machine-readable next to this
    # script (the CI autotune-smoke artifact). The calibration is cached
    # across runs when GESP_TUNE_CACHE points at a writable path.
    "build/bench/$b" --out=BENCH_autotune.json || note_failure "$b"
  else
    "build/bench/$b" || note_failure "$b"
  fi
  echo
done

echo "###############################################################"
echo "### observability snapshot (BENCH_trace.json / BENCH_metrics.json)"
echo "###############################################################"
# Machine-readable companion to BENCH_kernels.json: a traced 4-thread
# solve (repeated, so per-call vs cumulative phase times both appear) on
# the transonic-airfoil proxy, plus the full metrics registry. Open the
# trace in chrome://tracing; validate with tools/check_trace.py.
build/tools/gesp_solve testbed:af23560-s --threads=4 --repeat=2 \
  --trace=BENCH_trace.json --metrics-json=BENCH_metrics.json \
  || note_failure "gesp_solve trace"

if [ -n "$FAILED" ]; then
  echo "FAILED BENCHES:$FAILED"
  exit 1
fi
