// Symbolic factorization tests: exact fill counts against a dense boolean
// elimination oracle, supernode partition invariants, block-structure
// closure, and the effect of relaxation / max-block splitting.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "symbolic/symbolic.hpp"

namespace gesp::symbolic {
namespace {

using sparse::CooMatrix;
using sparse::CscMatrix;

/// Dense boolean Gaussian elimination with diagonal pivots — the ground
/// truth for the fill pattern of L and U under static pivoting.
void dense_fill_oracle(const CscMatrix<double>& A, count_t& nnz_l,
                       count_t& nnz_u) {
  const index_t n = A.ncols;
  std::vector<char> B(static_cast<std::size_t>(n) * n, 0);
  for (index_t j = 0; j < n; ++j) {
    B[j + j * static_cast<std::size_t>(n)] = 1;  // structural pivot slot
    for (index_t p = A.colptr[j]; p < A.colptr[j + 1]; ++p)
      B[A.rowind[p] + j * static_cast<std::size_t>(n)] = 1;
  }
  for (index_t k = 0; k < n; ++k)
    for (index_t i = k + 1; i < n; ++i) {
      if (!B[i + k * static_cast<std::size_t>(n)]) continue;
      for (index_t j = k + 1; j < n; ++j)
        if (B[k + j * static_cast<std::size_t>(n)])
          B[i + j * static_cast<std::size_t>(n)] = 1;
    }
  nnz_l = 0;
  nnz_u = 0;
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      if (!B[i + j * static_cast<std::size_t>(n)]) continue;
      if (i >= j) ++nnz_l;
      if (i <= j) ++nnz_u;
    }
}

CscMatrix<double> random_full_diag(index_t n, index_t per_row,
                                   std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix<double> coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 4.0);
    for (index_t k = 0; k < per_row; ++k) {
      const index_t j = rng.next_index(n);
      if (j != i) coo.add(i, j, rng.uniform(-1.0, 1.0));
    }
  }
  return coo.to_csc();
}

TEST(Symbolic, ExactFillMatchesDenseOracleRandom) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto A = random_full_diag(60, 3, seed);
    count_t ol = 0, ou = 0;
    dense_fill_oracle(A, ol, ou);
    const auto S = analyze(A, {});
    EXPECT_EQ(S.nnz_L, ol) << "seed " << seed;
    EXPECT_EQ(S.nnz_U, ou) << "seed " << seed;
  }
}

TEST(Symbolic, ExactFillMatchesDenseOracleGrid) {
  const auto A = sparse::convdiff2d(7, 6, 1.0, 0.5);
  count_t ol = 0, ou = 0;
  dense_fill_oracle(A, ol, ou);
  const auto S = analyze(A, {});
  EXPECT_EQ(S.nnz_L, ol);
  EXPECT_EQ(S.nnz_U, ou);
}

TEST(Symbolic, TriangularMatrixHasNoFill) {
  const index_t n = 50;
  CooMatrix<double> coo(n, n);
  Rng rng(5);
  count_t nnz_lower = n;
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 1.0);
    for (index_t k = 0; k < 3; ++k) {
      const index_t j = rng.next_index(n);
      if (j < i) {
        coo.add(i, j, 1.0);
      }
    }
  }
  const auto A = coo.to_csc();
  const auto S = analyze(A, {});
  (void)nnz_lower;
  EXPECT_EQ(S.nnz_L, A.nnz());  // L = A's lower triangle incl. diag
  EXPECT_EQ(S.nnz_U, static_cast<count_t>(n));  // U = diagonal only
}

TEST(Symbolic, SupernodePartitionCoversAllColumns) {
  const auto A = sparse::convdiff2d(11, 13, 2.0, 1.0);
  const auto S = analyze(A, {});
  EXPECT_EQ(S.sn_start.front(), 0);
  EXPECT_EQ(S.sn_start.back(), A.ncols);
  for (index_t K = 0; K < S.nsup; ++K) {
    EXPECT_LT(S.sn_start[K], S.sn_start[K + 1]);
    for (index_t j = S.sn_start[K]; j < S.sn_start[K + 1]; ++j)
      EXPECT_EQ(S.col_to_sn[j], K);
  }
}

TEST(Symbolic, MaxBlockSplittingBoundsWidth) {
  const auto A = sparse::device_like(10, 30, 100, 7);
  SymbolicOptions opt;
  opt.max_block = 6;
  const auto S = analyze(A, opt);
  for (index_t K = 0; K < S.nsup; ++K) EXPECT_LE(S.block_cols(K), 6);
}

TEST(Symbolic, RelaxationMergesSmallSupernodes) {
  const auto A = sparse::circuit_like(2000, 5, 10, 9);
  SymbolicOptions none;
  none.relax = 0;
  SymbolicOptions relaxed;
  relaxed.relax = 12;
  const auto S0 = analyze(A, none);
  const auto S1 = analyze(A, relaxed);
  EXPECT_LT(S1.nsup, S0.nsup);       // fewer, larger supernodes
  EXPECT_GE(S1.stored_L, S0.stored_L);  // at the cost of stored zeros
}

TEST(Symbolic, StoredSizesCoverExactFill) {
  const auto A = sparse::convdiff2d(15, 15, 1.0, 0.5);
  const auto S = analyze(A, {});
  EXPECT_GE(S.stored_L, S.nnz_L);
  // U entries inside diagonal blocks live in the L store, so compare the
  // combined stored size against the combined exact fill.
  EXPECT_GE(S.stored_L + S.stored_U, S.nnz_L + S.nnz_U - S.n);
}

TEST(Symbolic, BlockStructureClosedUnderUpdates) {
  // Replay closure property: for every K and every pair (I>K from L, J>K
  // from U), the destination block must exist with a superset pattern.
  const auto A = random_full_diag(300, 4, 11);
  const auto S = analyze(A, {});
  for (index_t K = 0; K < S.nsup; ++K) {
    for (const auto& lb : S.L[K]) {
      for (const auto& ub : S.U[K]) {
        if (lb.I > ub.J) {
          const auto& blocks = S.L[ub.J];
          const auto it = std::find_if(
              blocks.begin(), blocks.end(),
              [&](const LBlock& b) { return b.I == lb.I; });
          ASSERT_NE(it, blocks.end());
          EXPECT_TRUE(std::includes(it->rows.begin(), it->rows.end(),
                                    lb.rows.begin(), lb.rows.end()));
        } else if (lb.I < ub.J) {
          const auto& blocks = S.U[lb.I];
          const auto it = std::find_if(
              blocks.begin(), blocks.end(),
              [&](const UBlock& b) { return b.J == ub.J; });
          ASSERT_NE(it, blocks.end());
          EXPECT_TRUE(std::includes(it->cols.begin(), it->cols.end(),
                                    ub.cols.begin(), ub.cols.end()));
        }
      }
    }
  }
}

TEST(Symbolic, SupernodeEtreeParentsAreLater) {
  const auto A = sparse::convdiff2d(13, 9, 1.5, 0.0);
  const auto S = analyze(A, {});
  for (index_t K = 0; K < S.nsup; ++K) {
    if (S.sn_parent[K] != -1) {
      EXPECT_GT(S.sn_parent[K], K);
    }
  }
}

TEST(Symbolic, FlopsGrowWithFill) {
  const auto A1 = sparse::laplacian2d(10, 10);
  const auto A2 = sparse::laplacian2d(20, 20);
  const auto S1 = analyze(A1, {});
  const auto S2 = analyze(A2, {});
  EXPECT_GT(S2.flops, S1.flops);
  EXPECT_GT(S1.flops, 0);
}

TEST(Symbolic, EtreePostorderKeepsFillInvariant) {
  const auto A = sparse::convdiff2d(12, 12, 1.0, 0.5);
  const auto post = etree_postorder(A);
  const auto B = sparse::permute(A, post, post);
  const auto SA = analyze(A, {});
  const auto SB = analyze(B, {});
  // A topological reordering of the etree does not change the fill.
  EXPECT_EQ(SA.nnz_L, SB.nnz_L);
  EXPECT_EQ(SA.nnz_U, SB.nnz_U);
}

TEST(Symbolic, WideSupernodesOnDenseBlocks) {
  // A block-dense matrix should produce supernodes as wide as max_block.
  const auto A = sparse::device_like(6, 40, 0, 13);
  const auto S = analyze(A, {});
  index_t widest = 0;
  for (index_t K = 0; K < S.nsup; ++K)
    widest = std::max(widest, S.block_cols(K));
  EXPECT_EQ(widest, SymbolicOptions{}.max_block);
}

}  // namespace
}  // namespace gesp::symbolic
