// Cross-backend equivalence for the unified Solver API: the serial,
// threaded and distributed engines run the same GESP pipeline, so factors
// must be bitwise-identical and pivot-replacement counts equal on every
// grid shape; the one-shot dist::solve must agree with gesp::solve within
// refinement tolerance; and the unified tiny-pivot plumbing must give the
// dist backend the same sqrt(eps)·||Â|| rule the in-process engines use.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "core/solver.hpp"
#include "dist/dist_lu.hpp"
#include "dist/dist_solver.hpp"
#include "dist/minimpi.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"
#include "test_helpers.hpp"

namespace gesp {
namespace {

using dist::DistSolver;
using dist::ProcessGrid;
using sparse::CscMatrix;

struct GridCase {
  const char* name;
  int pr, pc;
};

CscMatrix<double> test_matrix() {
  return sparse::convdiff2d(14, 13, 1.0, 0.5);
}

CscMatrix<double> diagonal_matrix(const std::vector<double>& d) {
  CscMatrix<double> A;
  A.nrows = A.ncols = static_cast<index_t>(d.size());
  A.colptr.resize(d.size() + 1);
  for (std::size_t j = 0; j < d.size(); ++j) {
    A.colptr[j] = static_cast<index_t>(j);
    A.rowind.push_back(static_cast<index_t>(j));
    A.values.push_back(d[j]);
  }
  A.colptr[d.size()] = static_cast<index_t>(d.size());
  return A;
}

/// Options that expose raw pivots: no equilibration/permutation, so the
/// factorization sees the diagonal values as-is.
SolverOptions raw_pivot_options() {
  SolverOptions opt;
  opt.equilibrate = false;
  opt.row_perm = RowPermOption::none;
  opt.mc64_scaling = false;
  opt.col_order = ColOrderOption::natural;
  return opt;
}

class BackendGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(BackendGrid, FactorsBitwiseIdenticalAcrossBackends) {
  const auto& c = GetParam();
  const auto A = test_matrix();

  SolverOptions sopt;
  sopt.backend = Backend::serial;
  Solver<double> serial(A, sopt);
  const auto Lser = serial.factors().l_matrix();
  const auto User = serial.factors().u_matrix();

  SolverOptions topt;
  topt.backend = Backend::threaded;
  topt.num_threads = 4;
  Solver<double> threaded(A, topt);
  EXPECT_EQ(testing::max_abs_diff(Lser, threaded.factors().l_matrix()), 0.0);
  EXPECT_EQ(testing::max_abs_diff(User, threaded.factors().u_matrix()), 0.0);
  EXPECT_EQ(serial.stats().pivots_replaced,
            threaded.stats().pivots_replaced);

  SolverOptions dopt;
  dopt.backend = Backend::dist;
  dopt.dist.pr = c.pr;
  dopt.dist.pc = c.pc;
  const ProcessGrid grid{c.pr, c.pc};
  minimpi::World world(grid.nprocs());
  CscMatrix<double> Ld, Ud;
  count_t dist_replaced = 0;
  double dist_growth = -1.0;
  world.run([&](minimpi::Comm& comm) {
    DistSolver<double> ds(comm, A, dopt);
    auto L = ds.lu().gather_l(comm);
    auto U = ds.lu().gather_u(comm);
    if (comm.rank() == 0) {
      Ld = std::move(L);
      Ud = std::move(U);
    }
    // stats() is reduced AND broadcast: identical on every rank.
    EXPECT_EQ(ds.stats().pivots_replaced, serial.stats().pivots_replaced);
    if (comm.rank() == 0) {
      dist_replaced = ds.stats().pivots_replaced;
      dist_growth = ds.stats().pivot_growth;
    }
  });
  EXPECT_EQ(testing::max_abs_diff(Lser, Ld), 0.0) << c.name;
  EXPECT_EQ(testing::max_abs_diff(User, Ud), 0.0) << c.name;
  EXPECT_EQ(dist_replaced, serial.stats().pivots_replaced) << c.name;
  EXPECT_DOUBLE_EQ(dist_growth, serial.stats().pivot_growth) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Grids, BackendGrid,
    ::testing::Values(GridCase{"grid_1x1", 1, 1}, GridCase{"grid_1x4", 1, 4},
                      GridCase{"grid_2x2", 2, 2}, GridCase{"grid_2x3", 2, 3},
                      GridCase{"grid_4x4", 4, 4}),
    [](const auto& info) { return info.param.name; });

TEST(Backend, Names) {
  EXPECT_STREQ(backend_name(Backend::serial), "serial");
  EXPECT_STREQ(backend_name(Backend::threaded), "threaded");
  EXPECT_STREQ(backend_name(Backend::dist), "dist");
}

TEST(Backend, SolverRejectsDistBackend) {
  const auto A = sparse::convdiff2d(6, 6, 1.0, 0.5);
  SolverOptions opt;
  opt.backend = Backend::dist;
  try {
    Solver<double> s(A, opt);
    FAIL() << "Backend::dist accepted by core::Solver";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::invalid_argument);
  }
}

TEST(Backend, SerialBackendForcesSingleThread) {
  const auto A = sparse::convdiff2d(6, 6, 1.0, 0.5);
  SolverOptions opt;
  opt.backend = Backend::serial;
  opt.num_threads = 8;
  Solver<double> s(A, opt);
  EXPECT_EQ(s.options().num_threads, 1);
}

TEST(Backend, OneShotDistMatchesGespSolve) {
  const auto A = test_matrix();
  const index_t n = A.ncols;
  std::vector<double> x_true(static_cast<std::size_t>(n), 1.0), b(x_true);
  sparse::spmv<double>(A, x_true, b);

  SolveStats ss;
  const auto xs = gesp::solve<double>(A, b, {}, &ss);

  SolverOptions dopt;
  dopt.backend = Backend::dist;
  dopt.dist.nprocs = 4;
  SolveStats sd;
  const auto xd = dist::solve<double>(A, b, dopt, &sd);

  EXPECT_LT(sparse::relative_error_inf<double>(x_true, xd), 1e-10);
  EXPECT_LT(sparse::relative_error_inf<double>(xs, xd), 1e-12);
  // Same pipeline, same refinement rule: berr and iteration counts agree
  // within refinement tolerance.
  const double sqrt_eps =
      std::sqrt(std::numeric_limits<double>::epsilon());
  EXPECT_LE(sd.berr, sqrt_eps);
  EXPECT_NEAR(sd.berr, ss.berr, sqrt_eps);
  EXPECT_NEAR(static_cast<double>(sd.refine_iterations),
              static_cast<double>(ss.refine_iterations), 1.0);
  EXPECT_EQ(sd.pivots_replaced, ss.pivots_replaced);
  EXPECT_EQ(sd.nnz_l, ss.nnz_l);
  EXPECT_EQ(sd.nnz_u, ss.nnz_u);
}

TEST(Backend, DistSolverRefactorizeSamePattern) {
  const auto A = test_matrix();
  const index_t n = A.ncols;
  std::vector<double> x_true(static_cast<std::size_t>(n), 1.0), b(x_true);
  sparse::spmv<double>(A, x_true, b);
  auto A2 = A;
  for (auto& v : A2.values) v *= 2.0;  // same pattern, new values

  SolverOptions dopt;
  dopt.backend = Backend::dist;
  dopt.dist.pr = 2;
  dopt.dist.pc = 2;
  minimpi::World world(4);
  std::vector<double> x1(b.size()), x2(b.size());
  world.run([&](minimpi::Comm& comm) {
    DistSolver<double> ds(comm, A, dopt);
    ds.solve(comm, b, x1);
    ds.refactorize(comm, A2);  // reuses transforms + symbolic + SpMV plan
    ds.solve(comm, b, x2);
    EXPECT_LE(ds.stats().berr, 1e-12);
  });
  EXPECT_LT(sparse::relative_error_inf<double>(x_true, x1), 1e-10);
  std::vector<double> half(x_true.size(), 0.5);  // (2A)x = b  =>  x = 0.5
  EXPECT_LT(sparse::relative_error_inf<double>(half, x2), 1e-10);
}

TEST(Backend, DistInheritsTinyPivotReplacement) {
  // The satellite bugfix: DistOptions::tiny_threshold used to default to
  // 0.0 (fail-on-zero), silently diverging from the in-process engines'
  // sqrt(eps)·||Â|| replacement rule. Through the unified options the dist
  // backend must replace the same pivots the serial engine replaces.
  std::vector<double> d(8, 1.0);
  d[3] = 1e-30;  // numerically tiny, structurally present
  const auto A = diagonal_matrix(d);

  auto opt = raw_pivot_options();
  opt.backend = Backend::serial;
  Solver<double> serial(A, opt);
  ASSERT_GE(serial.stats().pivots_replaced, 1);

  auto dopt = raw_pivot_options();
  dopt.backend = Backend::dist;
  dopt.dist.pr = 2;
  dopt.dist.pc = 2;
  minimpi::World world(4);
  world.run([&](minimpi::Comm& comm) {
    DistSolver<double> ds(comm, A, dopt);
    EXPECT_EQ(ds.stats().pivots_replaced, serial.stats().pivots_replaced);
    EXPECT_GT(dist::make_dist_options(ds.options(), A).tiny_threshold, 0.0);
  });
}

TEST(Backend, DistFailsOnZeroPivotWhenReplacementOff) {
  std::vector<double> d(4, 1.0);
  d[1] = 0.0;  // exact zero pivot
  const auto A = diagonal_matrix(d);

  auto opt = raw_pivot_options();
  opt.tiny_pivot = TinyPivotOption::fail;
  opt.backend = Backend::dist;
  opt.dist.pr = 1;
  opt.dist.pc = 1;
  minimpi::World world(1);
  const auto reports = world.run_report([&](minimpi::Comm& comm) {
    DistSolver<double> ds(comm, A, opt);
  });
  ASSERT_TRUE(reports[0].failed());
  EXPECT_EQ(reports[0].error_code(), Errc::numerically_singular);
}

}  // namespace
}  // namespace gesp
