// Performance-model tests: the discrete-event simulator must reproduce the
// qualitative behaviour the paper reports — speedup with more processors,
// pipelining gains, EDAG message reduction, rising communication fractions,
// and sane invariants (B in (0,1], conservation of flops).
#include <gtest/gtest.h>

#include "dist/perfmodel.hpp"
#include "sparse/generators.hpp"
#include "symbolic/symbolic.hpp"

namespace gesp {
namespace {

using dist::MachineModel;
using dist::PerfOptions;
using dist::PerfResult;
using dist::ProcessGrid;

symbolic::SymbolicLU medium_structure() {
  static symbolic::SymbolicLU S =
      symbolic::analyze(sparse::convdiff2d(40, 40, 1.0, 0.5), {});
  return S;
}

TEST(PerfModel, SerialTimeMatchesFlopsOverRate) {
  const auto S = medium_structure();
  MachineModel m;
  const PerfResult r =
      dist::simulate_factorization(S, ProcessGrid{1, 1}, m, {});
  EXPECT_GT(r.time, 0.0);
  // One process: no messages, no idling, B = 1.
  EXPECT_EQ(r.total_messages, 0);
  EXPECT_NEAR(r.load_balance, 1.0, 1e-9);
  EXPECT_NEAR(r.comm_fraction, 0.0, 1e-9);
  // The symbolic count uses integer 2b³/3; the model uses the real value.
  EXPECT_NEAR(static_cast<double>(r.total_flops),
              static_cast<double>(S.flops),
              1e-3 * static_cast<double>(S.flops));
}

TEST(PerfModel, SpeedupWithMoreProcessors) {
  const auto S = medium_structure();
  MachineModel m;
  double prev = dist::simulate_factorization(S, ProcessGrid{1, 1}, m, {}).time;
  for (int P : {4, 16}) {
    const auto grid = ProcessGrid::near_square(P);
    const double t = dist::simulate_factorization(S, grid, m, {}).time;
    EXPECT_LT(t, prev) << "no speedup at P=" << P;
    prev = t;
  }
}

TEST(PerfModel, PipeliningHelps) {
  const auto S = medium_structure();
  MachineModel m;
  const auto grid = ProcessGrid::near_square(16);
  PerfOptions piped, strict;
  piped.pipelined = true;
  strict.pipelined = false;
  const double tp = dist::simulate_factorization(S, grid, m, piped).time;
  const double ts = dist::simulate_factorization(S, grid, m, strict).time;
  EXPECT_LT(tp, ts);  // paper: 10-40% gains on 64 PEs
}

TEST(PerfModel, EdagPruningReducesMessages) {
  const auto S = medium_structure();
  const auto grid = ProcessGrid::near_square(32);
  const auto pruned = dist::count_factorization_comm(S, grid, true);
  const auto full = dist::count_factorization_comm(S, grid, false);
  EXPECT_LT(pruned.messages, full.messages);
  EXPECT_GT(pruned.messages, 0);
}

TEST(PerfModel, CommFractionRisesWithP) {
  const auto S = medium_structure();
  MachineModel m;
  const double c4 =
      dist::simulate_factorization(S, ProcessGrid::near_square(4), m, {})
          .comm_fraction;
  const double c64 =
      dist::simulate_factorization(S, ProcessGrid::near_square(64), m, {})
          .comm_fraction;
  EXPECT_GT(c64, c4);
  EXPECT_LE(c64, 1.0);
}

TEST(PerfModel, LoadBalanceInRange) {
  const auto S = medium_structure();
  MachineModel m;
  for (int P : {4, 16, 64}) {
    const auto r =
        dist::simulate_factorization(S, ProcessGrid::near_square(P), m, {});
    EXPECT_GT(r.load_balance, 0.0);
    EXPECT_LE(r.load_balance, 1.0 + 1e-12);
  }
}

TEST(PerfModel, SolveCommBound) {
  // Paper Table 5: the solve spends >95% of its time communicating on 64
  // processors; also solve time is far below factorization time.
  const auto S = medium_structure();
  MachineModel m;
  const auto grid = ProcessGrid::near_square(64);
  const auto fact = dist::simulate_factorization(S, grid, m, {});
  const auto solve = dist::simulate_solve(S, grid, m);
  EXPECT_GT(solve.comm_fraction, 0.8);
  EXPECT_LT(solve.time, fact.time);
}

TEST(PerfModel, SolveTimePlateausAtHighP) {
  // Paper Table 4: beyond ~64 processors the solve time stops improving.
  const auto S = medium_structure();
  MachineModel m;
  const double t64 =
      dist::simulate_solve(S, ProcessGrid::near_square(64), m).time;
  const double t256 =
      dist::simulate_solve(S, ProcessGrid::near_square(256), m).time;
  // Within a factor of two — no near-linear scaling in this regime.
  EXPECT_GT(t256, 0.5 * t64);
}

TEST(PerfModel, FlopsConservedAcrossGrids) {
  const auto S = medium_structure();
  MachineModel m;
  const auto r1 = dist::simulate_factorization(S, ProcessGrid{1, 1}, m, {});
  const auto r2 =
      dist::simulate_factorization(S, ProcessGrid::near_square(16), m, {});
  EXPECT_NEAR(static_cast<double>(r1.total_flops),
              static_cast<double>(r2.total_flops),
              1e-6 * static_cast<double>(r1.total_flops));
}

}  // namespace
}  // namespace gesp
