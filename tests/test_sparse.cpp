// Sparse container and kernel tests: COO assembly, CSC invariants,
// conversions, permutations, mat-vec products, norms, equilibration,
// symmetry metrics and the error measures used throughout the paper's
// evaluation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sparse/coo.hpp"
#include "sparse/csc.hpp"
#include "sparse/equilibrate.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"
#include "sparse/symmetry.hpp"
#include "test_helpers.hpp"

namespace gesp::sparse {
namespace {

CscMatrix<double> small_example() {
  // [ 2  0  1 ]
  // [ 0  3  0 ]
  // [ 4  0  5 ]
  CooMatrix<double> A(3, 3);
  A.add(0, 0, 2);
  A.add(2, 0, 4);
  A.add(1, 1, 3);
  A.add(0, 2, 1);
  A.add(2, 2, 5);
  return A.to_csc();
}

TEST(Coo, DuplicatesAreSummed) {
  CooMatrix<double> A(2, 2);
  A.add(0, 0, 1.0);
  A.add(0, 0, 2.5);
  A.add(1, 0, -1.0);
  const auto B = A.to_csc();
  EXPECT_EQ(B.nnz(), 2);
  EXPECT_DOUBLE_EQ(B.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(B.at(1, 0), -1.0);
  EXPECT_TRUE(B.valid());
}

TEST(Coo, UnsortedInputProducesSortedColumns) {
  Rng rng(3);
  CooMatrix<double> A(50, 50);
  for (int k = 0; k < 400; ++k)
    A.add(rng.next_index(50), rng.next_index(50), rng.uniform(-1, 1));
  const auto B = A.to_csc();
  EXPECT_TRUE(B.valid());
}

TEST(Csc, AtReturnsZeroForMissing) {
  const auto A = small_example();
  EXPECT_DOUBLE_EQ(A.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(A.at(2, 0), 4.0);
}

TEST(Csc, TransposeTwiceIsIdentity) {
  const auto A = random_unsymmetric({});
  const auto B = transpose(transpose(A));
  EXPECT_EQ(testing::max_abs_diff(A, B), 0.0);
}

TEST(Csc, TransposeMovesEntries) {
  const auto A = small_example();
  const auto B = transpose(A);
  EXPECT_DOUBLE_EQ(B.at(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(B.at(2, 0), 1.0);
}

TEST(Csc, CsrRoundTrip) {
  const auto A = small_example();
  const auto R = to_csr(A);
  EXPECT_EQ(R.nnz(), A.nnz());
  // Row 2 holds (2,0)=4 and (2,2)=5.
  const auto cols = R.row_cols(2);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(cols[1], 2);
}

TEST(Csc, PermuteMovesEntriesToNewPositions) {
  const auto A = small_example();
  // Swap rows 0<->2 and columns 1<->2.
  const std::vector<index_t> pr{2, 1, 0};
  const std::vector<index_t> pc{0, 2, 1};
  const auto B = permute(A, pr, pc);
  EXPECT_TRUE(B.valid());
  EXPECT_DOUBLE_EQ(B.at(2, 0), 2.0);   // was (0,0)
  EXPECT_DOUBLE_EQ(B.at(1, 2), 3.0);   // was (1,1)
  EXPECT_DOUBLE_EQ(B.at(0, 0), 4.0);   // was (2,0)
}

TEST(Csc, InversePermutation) {
  const std::vector<index_t> p{2, 0, 3, 1};
  const auto inv = inverse_permutation(p);
  for (index_t i = 0; i < 4; ++i) EXPECT_EQ(inv[p[i]], i);
  EXPECT_TRUE(is_permutation(p));
  const std::vector<index_t> bad{0, 0, 1, 2};
  EXPECT_FALSE(is_permutation(bad));
}

TEST(Csc, DropZeros) {
  CooMatrix<double> A(2, 2);
  A.add(0, 0, 1.0);
  A.add(1, 0, 0.0);
  A.add(1, 1, 2.0);
  auto B = A.to_csc();
  B.drop_zeros();
  EXPECT_EQ(B.nnz(), 2);
  EXPECT_TRUE(B.valid());
}

TEST(Ops, SpmvMatchesDense) {
  const auto A = random_unsymmetric({});
  const index_t n = A.ncols;
  Rng rng(7);
  std::vector<double> x(n), y(n), yref(n, 0.0);
  for (auto& v : x) v = rng.uniform(-1, 1);
  spmv<double>(A, x, y);
  const auto D = testing::to_dense(A);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) yref[i] += D[i + j * n] * x[j];
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(y[i], yref[i], 1e-12);
}

TEST(Ops, SpmvTransposedMatchesTransposeSpmv) {
  const auto A = random_unsymmetric({});
  const auto At = transpose(A);
  const index_t n = A.ncols;
  Rng rng(9);
  std::vector<double> x(n), y1(n), y2(n);
  for (auto& v : x) v = rng.uniform(-1, 1);
  spmv_transposed<double>(A, x, y1);
  spmv<double>(At, x, y2);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-13);
}

TEST(Ops, NormsOnKnownMatrix) {
  const auto A = small_example();
  EXPECT_DOUBLE_EQ(norm_max(A), 5.0);
  EXPECT_DOUBLE_EQ(norm_one(A), 6.0);   // max column sum: col 0 or 2 -> 6
  EXPECT_DOUBLE_EQ(norm_inf(A), 9.0);   // row 2: 4 + 5
}

TEST(Ops, ResidualIsZeroForExactSolution) {
  const auto A = laplacian2d(6, 6);
  const index_t n = A.ncols;
  std::vector<double> x(n, 2.0), b(n), r(n);
  spmv<double>(A, x, b);
  residual<double>(A, x, b, r);
  EXPECT_DOUBLE_EQ(vec_norm_inf<double>(r), 0.0);
}

TEST(Ops, CompensatedResidualAtLeastAsAccurate) {
  // Cancellation-heavy case: large opposing entries.
  const index_t n = 200;
  CooMatrix<double> coo(n, n);
  Rng rng(11);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 1.0);
    coo.add(i, (i + 1) % n, 1e14);
    coo.add(i, (i + 2) % n, -1e14);
  }
  const auto A = coo.to_csc();
  std::vector<double> x(n, 1.0), b(n), r1(n), r2(n);
  spmv<double>(A, x, b);
  // Perturb x so the residual is tiny but nonzero.
  x[0] += 1e-13;
  residual<double>(A, x, b, r1);
  residual_compensated<double>(A, x, b, r2);
  // Reference: long double accumulation.
  std::vector<long double> rl(b.begin(), b.end());
  const auto D = testing::to_dense(A);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      rl[i] -= static_cast<long double>(D[i + j * n]) * x[j];
  double e1 = 0, e2 = 0;
  for (index_t i = 0; i < n; ++i) {
    e1 = std::max(e1, std::abs(r1[i] - static_cast<double>(rl[i])));
    e2 = std::max(e2, std::abs(r2[i] - static_cast<double>(rl[i])));
  }
  EXPECT_LE(e2, e1 + 1e-30);
}

TEST(Ops, BackwardErrorZeroForConsistentSystem) {
  const auto A = convdiff2d(7, 7, 1.0, 0.0);
  const index_t n = A.ncols;
  std::vector<double> x(n, 1.0), b(n), r(n);
  spmv<double>(A, x, b);
  residual<double>(A, x, b, r);
  EXPECT_LE(componentwise_backward_error<double>(A, x, b, r), 1e-16);
}

TEST(Equilibrate, UnitRowAndColumnMaxima) {
  const auto A = chemical_like(10, 12, 8.0, 13);
  const auto s = equilibrate(A);
  const auto B = apply_scaling(A, s.row, s.col);
  // Every column max must be exactly <= 1 and close to 1.
  for (index_t j = 0; j < B.ncols; ++j) {
    double cmax = 0;
    for (index_t p = B.colptr[j]; p < B.colptr[j + 1]; ++p)
      cmax = std::max(cmax, std::abs(B.values[p]));
    EXPECT_LE(cmax, 1.0 + 1e-12);
    EXPECT_GT(cmax, 0.3);  // DGEEQU guarantees the max is ~1
  }
}

TEST(Symmetry, PerfectlySymmetric) {
  const auto A = laplacian2d(8, 8);
  const auto m = symmetry_metrics(A);
  EXPECT_DOUBLE_EQ(m.structural, 1.0);
  EXPECT_DOUBLE_EQ(m.numerical, 1.0);
}

TEST(Symmetry, UpwindConvectionBreaksNumericalSymmetryOnly) {
  const auto A = convdiff2d(8, 8, 2.0, 0.0);
  const auto m = symmetry_metrics(A);
  EXPECT_DOUBLE_EQ(m.structural, 1.0);
  EXPECT_LT(m.numerical, 1.0);
}

TEST(Symmetry, TriangularHasLowStructuralSymmetry) {
  CooMatrix<double> coo(100, 100);
  for (index_t i = 0; i < 100; ++i) {
    coo.add(i, i, 1.0);
    if (i > 0) coo.add(i, i - 1, 1.0);
    if (i > 1) coo.add(i, i - 2, 1.0);
  }
  const auto m = symmetry_metrics(coo.to_csc());
  // Only the 100 diagonal entries match among 297 nonzeros.
  EXPECT_NEAR(m.structural, 100.0 / 297.0, 1e-12);
}

TEST(Generators, GridSizes) {
  EXPECT_EQ(laplacian2d(7, 9).ncols, 63);
  EXPECT_EQ(laplacian3d(3, 4, 5).ncols, 60);
  EXPECT_EQ(convdiff3d(4, 4, 4, 1, 1, 1).nnz(), 64 * 7 - 3 * 2 * 16);
}

TEST(Generators, ZeroDiagonalInjection) {
  const auto A = circuit_like(1000, 5, 10, 17);
  const auto B = with_zero_diagonal(A, 0.3, 18);
  index_t zero_diags = 0;
  for (index_t j = 0; j < B.ncols; ++j)
    if (B.at(j, j) == 0.0) ++zero_diags;
  EXPECT_GE(zero_diags, 290);
  EXPECT_LE(zero_diags, 310);
}

TEST(Generators, CancellationMatrixHasFullDiagonal) {
  const auto A = cancellation_matrix(100, 30, 19);
  for (index_t j = 0; j < A.ncols; ++j) EXPECT_NE(A.at(j, j), 0.0);
}

TEST(Generators, GrowthAdversaryStructure) {
  const auto A = growth_adversary(10);
  EXPECT_DOUBLE_EQ(A.at(9, 0), -1.0);
  EXPECT_DOUBLE_EQ(A.at(0, 9), 1.0);
  EXPECT_DOUBLE_EQ(A.at(5, 5), 1.0);
}

TEST(Generators, DeterministicAcrossCalls) {
  const auto A = circuit_like(500, 5, 10, 42);
  const auto B = circuit_like(500, 5, 10, 42);
  EXPECT_EQ(A.rowind, B.rowind);
  EXPECT_EQ(A.values, B.values);
}

TEST(Generators, PhaseRandomizationPreservesMagnitudes) {
  const auto A = convdiff2d(6, 6, 1.0, 0.5);
  const auto C = randomize_phases(A, 5);
  ASSERT_EQ(C.nnz(), A.nnz());
  for (std::size_t k = 0; k < A.values.size(); ++k)
    EXPECT_NEAR(std::abs(C.values[k]), std::abs(A.values[k]), 1e-14);
}

TEST(Generators, PerturbKeepsPattern) {
  const auto A = convdiff2d(6, 6, 1.0, 0.5);
  const auto B = perturb_values(A, 0.5, 21);
  EXPECT_EQ(A.rowind, B.rowind);
  EXPECT_EQ(A.colptr, B.colptr);
  bool changed = false;
  for (std::size_t k = 0; k < A.values.size(); ++k)
    if (A.values[k] != B.values[k]) changed = true;
  EXPECT_TRUE(changed);
}

}  // namespace
}  // namespace gesp::sparse
