// Chaos tests: fault injection against the MiniMPI transport and the
// distributed factorization / triangular solves. Every scenario asserts
// graceful failure — a surfaced Errc::comm on the affected ranks within
// the configured timeout — never a hang and never silent garbage.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "dist/dist_lu.hpp"
#include "dist/fault.hpp"
#include "dist/minimpi.hpp"
#include "numeric/lu_factors.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"
#include "symbolic/symbolic.hpp"
#include "test_helpers.hpp"

namespace gesp {
namespace {

using dist::DistOptions;
using dist::DistributedLU;
using dist::ProcessGrid;
using minimpi::Comm;
using minimpi::FaultKind;
using minimpi::FaultSpec;
using minimpi::RankReport;
using minimpi::World;
using minimpi::WorldOptions;

/// Count ranks whose body failed with Errc::comm.
int comm_failures(const std::vector<RankReport>& reports) {
  int n = 0;
  for (const auto& r : reports)
    if (r.failed() && r.error_code() == Errc::comm) ++n;
  return n;
}

double run_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---------------------------------------------------------------- transport

TEST(ChaosTransport, RecvTimeoutNamesTheBlockedEnvelope) {
  WorldOptions opts;
  opts.recv_timeout_s = 0.1;
  World world(2, opts);
  const auto reports = world.run_report([](Comm& comm) {
    if (comm.rank() == 1) comm.recv(0, 7);  // nobody ever sends
  });
  ASSERT_TRUE(reports[1].failed());
  EXPECT_EQ(reports[1].error_code(), Errc::comm);
  const std::string msg = reports[1].error_message();
  EXPECT_NE(msg.find("timeout"), std::string::npos) << msg;
  EXPECT_NE(msg.find("tag=7"), std::string::npos) << msg;
  EXPECT_FALSE(reports[0].failed());
}

TEST(ChaosTransport, MangledPayloadIsACommFault) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<char> raw(12, 'x');  // 12 bytes != k * sizeof(double)
      comm.send(1, 5, raw.data(), raw.size());
    } else {
      const auto m = comm.recv(0, 5);
      try {
        (void)m.as<double>();
        FAIL() << "mangled payload accepted";
      } catch (const Error& e) {
        EXPECT_EQ(e.code(), Errc::comm);
        const std::string what = e.what();
        EXPECT_NE(what.find("src=0"), std::string::npos) << what;
        EXPECT_NE(what.find("tag=5"), std::string::npos) << what;
        EXPECT_NE(what.find("12"), std::string::npos) << what;
      }
    }
  });
}

TEST(ChaosTransport, ChecksumDetectsCorruptedPayload) {
  WorldOptions opts;
  FaultSpec spec;
  spec.kind = FaultKind::corrupt;
  spec.rank = 0;
  spec.nth_send = 0;
  opts.fault = minimpi::FaultInjector(1234);
  opts.fault.schedule(spec);
  World world(2, opts);
  const auto reports = world.run_report([](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<double> payload{1.0, 2.0, 3.0};
      comm.send_vec(1, 9, payload);
    } else {
      comm.recv(0, 9);
    }
  });
  ASSERT_TRUE(reports[1].failed());
  EXPECT_EQ(reports[1].error_code(), Errc::comm);
  EXPECT_NE(reports[1].error_message().find("checksum"), std::string::npos)
      << reports[1].error_message();
}

TEST(ChaosTransport, KilledRankPoisonsBlockedPeer) {
  // Rank 1 waits forever (no timeout); only the poison can unblock it.
  WorldOptions opts;
  FaultSpec spec;
  spec.kind = FaultKind::kill_rank;
  spec.rank = 0;
  spec.nth_send = 0;
  opts.fault.schedule(spec);
  World world(2, opts);
  const auto reports = world.run_report([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 3, 1.0);  // dies here
    } else {
      comm.recv(0, 3);
    }
  });
  EXPECT_EQ(comm_failures(reports), 2);
  EXPECT_NE(reports[0].error_message().find("killed"), std::string::npos);
  EXPECT_NE(reports[1].error_message().find("failed"), std::string::npos);
  EXPECT_EQ(world.failed_rank(), 0);
}

TEST(ChaosTransport, DuplicateDeliversTwice) {
  WorldOptions opts;
  FaultSpec spec;
  spec.kind = FaultKind::duplicate;
  spec.rank = 0;
  spec.nth_send = 0;
  opts.fault.schedule(spec);
  World world(2, opts);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 4, 2.5);
    } else {
      const auto a = comm.recv(0, 4).as<double>();
      const auto b = comm.recv(0, 4).as<double>();  // the duplicate
      EXPECT_EQ(a[0], 2.5);
      EXPECT_EQ(b[0], 2.5);
    }
  });
}

TEST(ChaosTransport, DelayedMessageStillArrivesIntact) {
  WorldOptions opts;
  opts.recv_timeout_s = 5.0;  // far beyond the delay: no spurious timeout
  FaultSpec spec;
  spec.kind = FaultKind::delay;
  spec.rank = 0;
  spec.nth_send = 0;
  spec.delay_s = 0.05;
  opts.fault.schedule(spec);
  World world(2, opts);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 8, 7.0);
    } else {
      EXPECT_EQ(comm.recv(0, 8).as<double>()[0], 7.0);
    }
  });
  EXPECT_EQ(world.options().fault.fired(), 1);  // the delay actually fired
}

TEST(ChaosTransport, BarrierTimesOutOnMissingRank) {
  WorldOptions opts;
  opts.recv_timeout_s = 0.1;
  World world(2, opts);
  const auto reports = world.run_report([](Comm& comm) {
    if (comm.rank() == 0) comm.barrier();  // rank 1 never arrives
  });
  ASSERT_TRUE(reports[0].failed());
  EXPECT_EQ(reports[0].error_code(), Errc::comm);
  EXPECT_NE(reports[0].error_message().find("barrier"), std::string::npos);
}

// --------------------------------------------- distributed factorization

std::shared_ptr<const symbolic::SymbolicLU> analyze_shared(
    const sparse::CscMatrix<double>& A) {
  return std::make_shared<const symbolic::SymbolicLU>(
      symbolic::analyze(A, {}));
}

TEST(ChaosDistLU, DroppedMessageSurfacesCommOnAllRanks) {
  const auto A = sparse::convdiff2d(12, 12, 1.0, 0.5);
  auto sym = analyze_shared(A);
  const ProcessGrid grid{2, 2};
  WorldOptions opts;
  opts.recv_timeout_s = 0.5;
  FaultSpec spec;
  spec.kind = FaultKind::drop;
  spec.rank = 0;
  spec.nth_send = 2;
  opts.fault.schedule(spec);
  World world(grid.nprocs(), opts);
  std::vector<RankReport> reports;
  const double elapsed = run_seconds([&] {
    reports = world.run_report([&](Comm& comm) {
      DistributedLU<double> dlu(comm, grid, sym, A, {});
    });
  });
  // Terminates promptly (the watchdog, not ctest's timeout) and every rank
  // reports the transport fault instead of hanging.
  EXPECT_LT(elapsed, 10.0);
  EXPECT_EQ(comm_failures(reports), grid.nprocs());
}

TEST(ChaosDistLU, KilledRankSurfacesCommOnAllRanks) {
  const auto A = sparse::convdiff2d(12, 12, 1.0, 0.5);
  auto sym = analyze_shared(A);
  const ProcessGrid grid{2, 2};
  WorldOptions opts;
  opts.recv_timeout_s = 2.0;
  FaultSpec spec;
  spec.kind = FaultKind::kill_rank;
  spec.rank = 1;
  spec.nth_send = 0;
  opts.fault.schedule(spec);
  World world(grid.nprocs(), opts);
  std::vector<RankReport> reports;
  const double elapsed = run_seconds([&] {
    reports = world.run_report([&](Comm& comm) {
      DistributedLU<double> dlu(comm, grid, sym, A, {});
    });
  });
  EXPECT_LT(elapsed, 10.0);
  EXPECT_EQ(comm_failures(reports), grid.nprocs());
  EXPECT_EQ(world.failed_rank(), 1);
}

TEST(ChaosDistLU, CorruptedPanelDetectedDeterministically) {
  const auto A = sparse::convdiff2d(12, 12, 1.0, 0.5);
  auto sym = analyze_shared(A);
  const ProcessGrid grid{2, 2};
  auto corrupted_run = [&](std::uint64_t seed) {
    WorldOptions opts;
    opts.recv_timeout_s = 2.0;
    opts.fault = minimpi::FaultInjector(seed);
    FaultSpec spec;
    spec.kind = FaultKind::corrupt;
    spec.rank = 0;
    spec.nth_send = 1;
    opts.fault.schedule(spec);
    World world(grid.nprocs(), opts);
    return world.run_report([&](Comm& comm) {
      DistributedLU<double> dlu(comm, grid, sym, A, {});
    });
  };
  const auto first = corrupted_run(42);
  ASSERT_GE(comm_failures(first), 1);
  bool checksum_caught = false;
  for (const auto& r : first)
    if (r.failed() &&
        r.error_message().find("checksum") != std::string::npos)
      checksum_caught = true;
  EXPECT_TRUE(checksum_caught);
  // Same seed, same victim, same outcome: detection is deterministic.
  const auto second = corrupted_run(42);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t r = 0; r < first.size(); ++r) {
    EXPECT_EQ(first[r].failed(), second[r].failed());
    EXPECT_EQ(first[r].error_message(), second[r].error_message());
  }
}

TEST(ChaosDistLU, DroppedMessageDuringTriangularSolve) {
  const auto A = sparse::convdiff2d(12, 12, 1.0, 0.5);
  auto sym = analyze_shared(A);
  const ProcessGrid grid{2, 2};
  const index_t n = A.ncols;
  std::vector<double> ones(static_cast<std::size_t>(n), 1.0), b(ones.size());
  sparse::spmv<double>(A, ones, b);
  // Count rank 0's factorization sends so the fault lands inside solve().
  count_t fact_sends = 0;
  {
    World clean(grid.nprocs());
    clean.run([&](Comm& comm) {
      DistributedLU<double> dlu(comm, grid, sym, A, {});
      if (comm.rank() == 0) fact_sends = comm.stats().messages_sent;
    });
  }
  WorldOptions opts;
  opts.recv_timeout_s = 0.5;
  FaultSpec spec;
  spec.kind = FaultKind::drop;
  spec.rank = 0;
  spec.nth_send = fact_sends + 1;
  opts.fault.schedule(spec);
  World world(grid.nprocs(), opts);
  std::vector<RankReport> reports;
  const double elapsed = run_seconds([&] {
    reports = world.run_report([&](Comm& comm) {
      DistributedLU<double> dlu(comm, grid, sym, A, {});
      std::vector<double> x(b.size());
      dlu.solve(comm, b, x);
    });
  });
  EXPECT_LT(elapsed, 10.0);
  EXPECT_GE(comm_failures(reports), 1);
  for (const auto& r : reports) {
    if (r.failed()) {
      EXPECT_EQ(r.error_code(), Errc::comm);
    }
  }
}

TEST(ChaosDistLU, DroppedMessageStrictOrderSurfacesComm) {
  // Same fault as above but with the strict per-K loop: the recv timeout
  // still fires and every rank surfaces the transport error.
  const auto A = sparse::convdiff2d(12, 12, 1.0, 0.5);
  auto sym = analyze_shared(A);
  const ProcessGrid grid{2, 2};
  WorldOptions opts;
  opts.recv_timeout_s = 0.5;
  FaultSpec spec;
  spec.kind = FaultKind::drop;
  spec.rank = 0;
  spec.nth_send = 2;
  opts.fault.schedule(spec);
  World world(grid.nprocs(), opts);
  std::vector<RankReport> reports;
  const double elapsed = run_seconds([&] {
    reports = world.run_report([&](Comm& comm) {
      DistOptions opt;
      opt.pipelined = false;
      DistributedLU<double> dlu(comm, grid, sym, A, opt);
    });
  });
  EXPECT_LT(elapsed, 10.0);
  EXPECT_EQ(comm_failures(reports), grid.nprocs());
}

TEST(ChaosDistLU, DelayedPanelPipelinedStillBitwiseCorrect) {
  // A delayed broadcast reorders message arrival; the pipelined scheduler
  // must absorb it (dependency counters, not arrival order, gate execution)
  // and still produce factors bitwise-identical to serial.
  const auto A = sparse::convdiff2d(12, 12, 1.0, 0.5);
  auto sym = analyze_shared(A);
  numeric::LUFactors<double> serial(sym, A, {});
  const auto Lref = serial.l_matrix();
  const ProcessGrid grid{2, 2};
  WorldOptions opts;
  opts.recv_timeout_s = 10.0;
  FaultSpec spec;
  spec.kind = FaultKind::delay;
  spec.rank = 0;
  spec.nth_send = 2;
  spec.delay_s = 0.05;
  opts.fault.schedule(spec);
  World world(grid.nprocs(), opts);
  sparse::CscMatrix<double> Ldist;
  world.run([&](Comm& comm) {
    DistributedLU<double> dlu(comm, grid, sym, A, {});
    auto L = dlu.gather_l(comm);
    if (comm.rank() == 0) Ldist = std::move(L);
    dlu.gather_u(comm);
  });
  EXPECT_EQ(world.options().fault.fired(), 1);
  EXPECT_EQ(testing::max_abs_diff(Lref, Ldist), 0.0);
}

TEST(ChaosDistLU, DuplicatedPanelPipelinedAppliedOnce) {
  // A duplicated broadcast must not be scattered twice: the first-arrival
  // guard in the pipelined handler drops the copy, so the factors stay
  // bitwise-identical to serial.
  const auto A = sparse::convdiff2d(12, 12, 1.0, 0.5);
  auto sym = analyze_shared(A);
  numeric::LUFactors<double> serial(sym, A, {});
  const auto Lref = serial.l_matrix();
  const ProcessGrid grid{2, 2};
  WorldOptions opts;
  opts.recv_timeout_s = 10.0;
  FaultSpec spec;
  spec.kind = FaultKind::duplicate;
  spec.rank = 0;
  spec.nth_send = 2;
  opts.fault.schedule(spec);
  World world(grid.nprocs(), opts);
  sparse::CscMatrix<double> Ldist;
  world.run([&](Comm& comm) {
    DistributedLU<double> dlu(comm, grid, sym, A, {});
    auto L = dlu.gather_l(comm);
    if (comm.rank() == 0) Ldist = std::move(L);
    dlu.gather_u(comm);
  });
  EXPECT_EQ(world.options().fault.fired(), 1);
  EXPECT_EQ(testing::max_abs_diff(Lref, Ldist), 0.0);
}

TEST(ChaosDistLU, CleanRunStillBitwiseCorrectWithChecksumsOn) {
  // The hardening must not perturb the numbers: no-fault run under a
  // timeout still matches the serial factorization bitwise.
  const auto A = sparse::convdiff2d(10, 10, 1.0, 0.5);
  auto sym = analyze_shared(A);
  numeric::LUFactors<double> serial(sym, A, {});
  const auto Lref = serial.l_matrix();
  const ProcessGrid grid{2, 2};
  WorldOptions opts;
  opts.recv_timeout_s = 30.0;
  World world(grid.nprocs(), opts);
  sparse::CscMatrix<double> Ldist;
  world.run([&](Comm& comm) {
    DistributedLU<double> dlu(comm, grid, sym, A, {});
    auto L = dlu.gather_l(comm);
    if (comm.rank() == 0) Ldist = std::move(L);
    dlu.gather_u(comm);
  });
  EXPECT_EQ(testing::max_abs_diff(Lref, Ldist), 0.0);
}

}  // namespace
}  // namespace gesp
