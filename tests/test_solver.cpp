// End-to-end GESP driver tests: the full Figure-1 pipeline on matrices from
// every behaviour class the paper's testbed exercises — zero diagonals,
// pivots cancelling during elimination, badly scaled systems, complex
// systems, growth adversaries — plus the option interface (every knob the
// paper says can be turned on or off) and pattern-reuse refactorization.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "core/solver.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"
#include "sparse/testbed.hpp"

namespace gesp {
namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();

/// Solve with x_true = all ones (the paper's experimental setup) and
/// return the relative forward error.
double solve_ones_error(const sparse::CscMatrix<double>& A,
                        const SolverOptions& opt, SolveStats* stats = nullptr) {
  const index_t n = A.ncols;
  std::vector<double> x_true(n, 1.0), b(n);
  sparse::spmv<double>(A, x_true, b);
  SolveStats s;
  const auto x = solve<double>(A, b, opt, &s);
  if (stats) *stats = s;
  return sparse::relative_error_inf<double>(x_true, x);
}

TEST(GespSolver, DiagonallyDominantGrid) {
  SolveStats s;
  EXPECT_LT(solve_ones_error(sparse::convdiff2d(20, 20, 1.0, 0.5), {}, &s),
            1e-12);
  EXPECT_LE(s.berr, 10 * kEps);
}

TEST(GespSolver, ZeroDiagonalCircuit) {
  // 30% of rows have no diagonal entry: without the matching step this
  // matrix cannot be factored with diagonal pivots at all.
  const auto A = sparse::with_zero_diagonal(
      sparse::circuit_like(500, 6, 20, 21), 0.30, 22);
  SolveStats s;
  EXPECT_LT(solve_ones_error(A, {}, &s), 1e-8);
  EXPECT_LE(s.berr, 100 * kEps);
}

TEST(GespSolver, NoPivotingFailsOnZeroDiagonal) {
  const auto A = sparse::with_zero_diagonal(
      sparse::circuit_like(300, 4, 10, 23), 0.30, 24);
  SolverOptions genp;
  genp.equilibrate = false;
  genp.row_perm = RowPermOption::none;
  genp.tiny_pivot = TinyPivotOption::fail;
  EXPECT_THROW(solve_ones_error(A, genp), Error);
}

TEST(GespSolver, CancellationRescuedByTinyPivotReplacement) {
  // A pivot cancels to zero *during* elimination; step (3) + refinement
  // must recover full accuracy.
  const auto A = sparse::cancellation_matrix(400, 100, 31);
  SolveStats s;
  EXPECT_LT(solve_ones_error(A, {}, &s), 1e-8);
  EXPECT_LE(s.berr, 100 * kEps);
}

TEST(GespSolver, CancellationFailsWithReplacementOff) {
  const auto A = sparse::cancellation_matrix(400, 100, 31);
  SolverOptions opt;
  opt.tiny_pivot = TinyPivotOption::fail;
  opt.row_perm = RowPermOption::none;  // keep the cancelling pivot order
  opt.equilibrate = false;
  opt.col_order = ColOrderOption::natural;
  EXPECT_THROW(solve_ones_error(A, opt), Error);
}

TEST(GespSolver, BadlyScaledChemicalPlant) {
  // Row scales span ~10 orders of magnitude; equilibration + matching must
  // tame them.
  const auto A = sparse::chemical_like(30, 25, 10.0, 41);
  SolveStats s;
  const double err = solve_ones_error(A, {}, &s);
  EXPECT_LT(err, 1e-6);
  EXPECT_LE(s.berr, 1e-12);
}

TEST(GespSolver, RefinementIterationCountIsSmall) {
  // The paper: most matrices take <= 3 refinement steps.
  SolveStats s;
  solve_ones_error(sparse::convdiff2d(25, 25, 2.0, 1.0), {}, &s);
  EXPECT_LE(s.refine_iterations, 3);
}

TEST(GespSolver, GrowthAdversaryReportsLargeGrowth) {
  const auto A = sparse::sparse_growth_adversary(500, 40, 51);
  SolverOptions opt;
  opt.col_order = ColOrderOption::natural;  // keep the adversarial order
  SolveStats s;
  solve_ones_error(A, opt, &s);
  EXPECT_GT(s.pivot_growth, 1e6);  // the failure is *visible* in the stats
}

TEST(GespSolver, OptionsNoMc64Scaling) {
  const auto A = sparse::chemical_like(20, 20, 4.0, 61);
  SolverOptions opt;
  opt.mc64_scaling = false;
  EXPECT_LT(solve_ones_error(A, opt), 1e-7);
}

TEST(GespSolver, OptionsBottleneckMatching) {
  const auto A = sparse::with_zero_diagonal(
      sparse::circuit_like(400, 5, 15, 62), 0.2, 63);
  SolverOptions opt;
  opt.row_perm = RowPermOption::bottleneck;
  EXPECT_LT(solve_ones_error(A, opt), 1e-8);
}

TEST(GespSolver, OptionsMc21Matching) {
  // A row-scrambled triangular matrix has exactly ONE perfect matching —
  // the original diagonal — which the structural max-transversal must
  // recover, making the system trivially solvable.
  const index_t n = 500;
  Rng rng(66);
  sparse::CooMatrix<double> coo(n, n);
  std::vector<index_t> scramble(n);
  for (index_t i = 0; i < n; ++i) scramble[i] = i;
  for (index_t i = n - 1; i > 0; --i)
    std::swap(scramble[i], scramble[rng.next_index(i + 1)]);
  for (index_t i = 0; i < n; ++i) {
    coo.add(scramble[i], i, 10.0 + rng.next_double());
    for (int k = 0; k < 3; ++k) {
      const index_t j = rng.next_index(n);
      if (j < i) coo.add(scramble[i], j, rng.uniform(-1.0, 1.0));
    }
  }
  const auto A = coo.to_csc();
  SolverOptions opt;
  opt.row_perm = RowPermOption::mc21;
  EXPECT_LT(solve_ones_error(A, opt), 1e-12);
}

TEST(GespSolver, OptionsRcmOrdering) {
  SolverOptions opt;
  opt.col_order = ColOrderOption::rcm;
  EXPECT_LT(solve_ones_error(sparse::convdiff2d(15, 15, 1.0, 0.0), opt),
            1e-12);
}

TEST(GespSolver, OptionsAmdAplusAt) {
  SolverOptions opt;
  opt.col_order = ColOrderOption::amd_aplusat;
  EXPECT_LT(solve_ones_error(sparse::convdiff2d(15, 15, 1.0, 0.0), opt),
            1e-12);
}

TEST(GespSolver, AggressiveSmwRecovery) {
  // The SMW path must give an accurate solution even though pivots were
  // promoted to the column maximum (a large perturbation).
  const auto A = sparse::cancellation_matrix(400, 100, 31);
  SolverOptions opt;
  opt.tiny_pivot = TinyPivotOption::aggressive_smw;
  // Keep the cancelling pivot order so a replacement actually happens.
  opt.row_perm = RowPermOption::none;
  opt.equilibrate = false;
  opt.col_order = ColOrderOption::natural;
  SolveStats s;
  EXPECT_LT(solve_ones_error(A, opt, &s), 1e-8);
  EXPECT_GE(s.pivots_replaced, 1);
}

TEST(GespSolver, CompensatedResidualRefinement) {
  SolverOptions opt;
  opt.refine.compensated_residual = true;
  SolveStats s;
  EXPECT_LT(solve_ones_error(sparse::chemical_like(20, 20, 6.0, 71), opt, &s),
            1e-7);
  EXPECT_LE(s.berr, 10 * kEps);
}

TEST(GespSolver, ForwardErrorBoundCoversTrueError) {
  const auto A = sparse::convdiff2d(18, 18, 1.5, 0.5);
  SolverOptions opt;
  opt.estimate_ferr = true;
  opt.estimate_rcond = true;
  SolveStats s;
  const double err = solve_ones_error(A, opt, &s);
  EXPECT_GE(s.ferr, 0.0);
  // The bound holds for the *scaled permuted* system; allow slack of 10x
  // for the transform back to original variables.
  EXPECT_LE(err, 10.0 * std::max(s.ferr, kEps));
  EXPECT_GT(s.rcond, 0.0);
  EXPECT_LE(s.rcond, 1.0);
}

TEST(GespSolver, RefactorizeSamePattern) {
  const auto A0 = sparse::circuit_like(400, 5, 15, 81);
  const index_t n = A0.ncols;
  Solver<double> solver(A0, {});
  for (int step = 1; step <= 3; ++step) {
    const auto A = sparse::perturb_values(A0, 0.3, 80 + step);
    solver.refactorize(A);
    std::vector<double> x_true(n, 1.0), b(n), x(n);
    sparse::spmv<double>(A, x_true, b);
    solver.solve(b, x);
    EXPECT_LT(sparse::relative_error_inf<double>(x_true, x), 1e-9)
        << "refactorization step " << step;
  }
}

TEST(GespSolver, ComplexQuantumChemistrySystem) {
  // The paper's flagship application is a complex unsymmetric system.
  const auto A =
      sparse::randomize_phases(sparse::device_like(20, 20, 300, 91), 92);
  const index_t n = A.ncols;
  std::vector<Complex> x_true(n, Complex(1.0, 1.0)), b(n), x(n);
  sparse::spmv<Complex>(A, x_true, b);
  SolveStats s;
  Solver<Complex> solver(A, {});
  solver.solve(b, x);
  EXPECT_LT(sparse::relative_error_inf<Complex>(x_true, x), 1e-9);
}

TEST(GespSolver, StatsArePopulated) {
  SolveStats s;
  solve_ones_error(sparse::convdiff2d(15, 15, 1.0, 0.5), {}, &s);
  EXPECT_GT(s.nnz_l, 225);
  EXPECT_GT(s.nnz_u, 225);
  EXPECT_GT(s.flops, 0);
  EXPECT_GT(s.nsup, 0);
  EXPECT_GE(s.stored_l, s.nnz_l);  // relaxation stores extra zeros
  EXPECT_FALSE(s.berr_history.empty());
}

/// Property sweep: GESP must solve every small matrix class accurately.
struct SweepCase {
  const char* name;
  sparse::CscMatrix<double> (*make)();
  double tol;
};

class GespSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(GespSweep, SolvesAccurately) {
  const auto& c = GetParam();
  SolveStats s;
  EXPECT_LT(solve_ones_error(c.make(), {}, &s), c.tol) << c.name;
  EXPECT_LE(s.berr, 1e-10) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Classes, GespSweep,
    ::testing::Values(
        SweepCase{"laplacian", [] { return sparse::laplacian2d(17, 13); },
                  1e-11},
        SweepCase{"laplacian3d", [] { return sparse::laplacian3d(7, 8, 6); },
                  1e-11},
        SweepCase{"convdiff_strong",
                  [] { return sparse::convdiff2d(23, 19, 8.0, 4.0); }, 1e-11},
        SweepCase{"convdiff3d",
                  [] { return sparse::convdiff3d(8, 8, 8, 1.0, 1.0, 1.0); },
                  1e-11},
        SweepCase{"anisotropic",
                  [] { return sparse::anisotropic2d(21, 21, 1e-3); }, 1e-10},
        SweepCase{"random_sym",
                  [] {
                    sparse::RandomSpec r;
                    r.n = 600;
                    r.nnz_per_row = 6;
                    r.structural_symmetry = 0.9;
                    r.diag_scale = 8.0;
                    r.seed = 100;
                    return sparse::random_unsymmetric(r);
                  },
                  1e-9},
        SweepCase{"random_unsym_weakdiag",
                  [] {
                    sparse::RandomSpec r;
                    r.n = 600;
                    r.nnz_per_row = 6;
                    r.structural_symmetry = 0.1;
                    r.diag_scale = 0.01;
                    r.seed = 101;
                    return sparse::random_unsymmetric(r);
                  },
                  1e-7},
        SweepCase{"circuit",
                  [] { return sparse::circuit_like(700, 8, 25, 102); }, 1e-8},
        SweepCase{"device", [] { return sparse::device_like(25, 18, 400, 103); },
                  1e-8},
        SweepCase{"chemical",
                  [] { return sparse::chemical_like(25, 20, 6.0, 104); },
                  1e-7}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace gesp
