// Kernel-equivalence suite: the tiled/blocked GEMM, TRSM and GETRF paths
// against the naive reference loops, for double and Complex, across the
// awkward shapes around the microtile and blocking boundaries (fringes,
// sub-tile sizes, lda > m), plus the exact guarantees the factorization
// relies on: gemm_minus dispatch depends only on shape, and
// gemm_minus_overwrite is bitwise equal to zero-fill + gemm_minus.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "dense/kernels.hpp"

namespace gesp::dense {
namespace {

constexpr index_t kShapes[] = {1, 3, 7, 8, 9, 23, 24, 25, 33};

template <class T>
T random_value(Rng& rng) {
  if constexpr (is_complex_v<T>)
    return T{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  else
    return rng.uniform(-1.0, 1.0);
}

template <class T>
std::vector<T> random_buffer(std::size_t len, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> v(len);
  for (auto& x : v) x = random_value<T>(rng);
  return v;
}

template <class T>
double max_abs_diff(const std::vector<T>& a, const std::vector<T>& b) {
  using std::abs;
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max<double>(worst, abs(a[i] - b[i]));
  return worst;
}

// The tiled path reorders the k-summation, so equivalence is up to
// rounding; entries are O(k) sums of O(1) terms.
double tol(index_t k) { return 1e-13 * (k + 1); }

template <class T>
void check_gemm_all_shapes() {
  for (index_t m : kShapes)
    for (index_t n : kShapes)
      for (index_t k : kShapes) {
        const index_t lda = m + 3, ldb = k + 2, ldc = m + 5;
        const auto A =
            random_buffer<T>(static_cast<std::size_t>(lda) * k, 11);
        const auto B =
            random_buffer<T>(static_cast<std::size_t>(ldb) * n, 22);
        const auto C0 =
            random_buffer<T>(static_cast<std::size_t>(ldc) * n, 33);
        auto c_tiled = C0;
        auto c_ref = C0;
        gemm_minus(m, n, k, A.data(), lda, B.data(), ldb, c_tiled.data(),
                   ldc);
        ref::gemm_minus(m, n, k, A.data(), lda, B.data(), ldb, c_ref.data(),
                        ldc);
        ASSERT_LT(max_abs_diff(c_tiled, c_ref), tol(k))
            << "m=" << m << " n=" << n << " k=" << k;
      }
}

TEST(GemmEquivalence, DoubleAllShapes) { check_gemm_all_shapes<double>(); }
TEST(GemmEquivalence, ComplexAllShapes) { check_gemm_all_shapes<Complex>(); }

// gemm_minus_overwrite must be *bitwise* equal to zero-filling C and
// running gemm_minus — LUFactors::update_pair depends on it.
template <class T>
void check_overwrite_bitwise() {
  for (index_t m : kShapes)
    for (index_t n : kShapes)
      for (index_t k : kShapes) {
        const index_t lda = m + 1, ldb = k + 4, ldc = m + 2;
        const auto A =
            random_buffer<T>(static_cast<std::size_t>(lda) * k, 44);
        const auto B =
            random_buffer<T>(static_cast<std::size_t>(ldb) * n, 55);
        // Garbage in C proves every entry is written.
        auto c_over =
            random_buffer<T>(static_cast<std::size_t>(ldc) * n, 66);
        auto c_zero = c_over;
        for (index_t j = 0; j < n; ++j)
          for (index_t i = 0; i < m; ++i)
            c_zero[i + j * static_cast<std::size_t>(ldc)] = T{};
        gemm_minus_overwrite(m, n, k, A.data(), lda, B.data(), ldb,
                             c_over.data(), ldc);
        gemm_minus(m, n, k, A.data(), lda, B.data(), ldb, c_zero.data(),
                   ldc);
        for (std::size_t i = 0; i < c_over.size(); ++i)
          ASSERT_EQ(c_over[i], c_zero[i])
              << "m=" << m << " n=" << n << " k=" << k << " at " << i;
      }
}

TEST(GemmOverwrite, BitwiseEqualsZeroFillPlusGemmDouble) {
  check_overwrite_bitwise<double>();
}
TEST(GemmOverwrite, BitwiseEqualsZeroFillPlusGemmComplex) {
  check_overwrite_bitwise<Complex>();
}

// The scalar update fast path uses dot_minus for (1,1,k) products; it must
// be bitwise identical to the full kernel entry for that shape.
template <class T>
void check_dot_bitwise() {
  for (index_t k : kShapes) {
    auto A = random_buffer<T>(static_cast<std::size_t>(k), 12);
    auto B = random_buffer<T>(static_cast<std::size_t>(k), 23);
    if (k > 2) B[1] = T{};  // exercise the zero-skip
    T full;
    gemm_minus_overwrite(index_t{1}, index_t{1}, k, A.data(), index_t{1},
                         B.data(), k, &full, index_t{1});
    ASSERT_EQ(dot_minus(k, A.data(), B.data()), full) << "k=" << k;
  }
}

TEST(GemmOverwrite, DotMinusBitwiseDouble) { check_dot_bitwise<double>(); }
TEST(GemmOverwrite, DotMinusBitwiseComplex) { check_dot_bitwise<Complex>(); }

TEST(GemmOverwrite, KZeroZeroFills) {
  const index_t m = 9, n = 7, ldc = 12;
  auto c = random_buffer<double>(static_cast<std::size_t>(ldc) * n, 7);
  const auto orig = c;
  gemm_minus_overwrite<double>(m, n, 0, nullptr, 1, nullptr, 1, c.data(),
                               ldc);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < ldc; ++i) {
      const std::size_t p = i + j * static_cast<std::size_t>(ldc);
      if (i < m)
        EXPECT_EQ(c[p], 0.0);
      else
        EXPECT_EQ(c[p], orig[p]);  // padding rows untouched
    }
}

template <class T>
void check_trsm_left() {
  for (index_t b : kShapes)
    for (index_t ncols : kShapes) {
      const index_t lda = b + 2, ldb = b + 3;
      auto L = random_buffer<T>(static_cast<std::size_t>(lda) * b, 77);
      // Unit diagonal is implicit; keep the strict lower part modest.
      const auto B0 =
          random_buffer<T>(static_cast<std::size_t>(ldb) * ncols, 88);
      auto x_blk = B0;
      auto x_ref = B0;
      trsm_left_lower_unit(L.data(), b, lda, x_blk.data(), ncols, ldb);
      ref::trsm_left_lower_unit(L.data(), b, lda, x_ref.data(), ncols, ldb);
      ASSERT_LT(max_abs_diff(x_blk, x_ref), tol(b) * 100)
          << "b=" << b << " ncols=" << ncols;
    }
}

template <class T>
void check_trsm_right() {
  for (index_t b : kShapes)
    for (index_t mrows : kShapes) {
      const index_t lda = b + 1, ldb = mrows + 2;
      auto U = random_buffer<T>(static_cast<std::size_t>(lda) * b, 99);
      for (index_t k = 0; k < b; ++k)
        U[k + k * static_cast<std::size_t>(lda)] += T{4.0};
      const auto B0 =
          random_buffer<T>(static_cast<std::size_t>(ldb) * b, 111);
      auto x_blk = B0;
      auto x_ref = B0;
      trsm_right_upper(U.data(), b, lda, x_blk.data(), mrows, ldb);
      ref::trsm_right_upper(U.data(), b, lda, x_ref.data(), mrows, ldb);
      ASSERT_LT(max_abs_diff(x_blk, x_ref), tol(b) * 100)
          << "b=" << b << " mrows=" << mrows;
    }
}

TEST(TrsmEquivalence, LeftLowerUnitDouble) { check_trsm_left<double>(); }
TEST(TrsmEquivalence, LeftLowerUnitComplex) { check_trsm_left<Complex>(); }
TEST(TrsmEquivalence, RightUpperDouble) { check_trsm_right<double>(); }
TEST(TrsmEquivalence, RightUpperComplex) { check_trsm_right<Complex>(); }

template <class T>
void check_getrf(index_t b) {
  const index_t lda = b + 3;
  auto base = random_buffer<T>(static_cast<std::size_t>(lda) * b, 123);
  for (index_t k = 0; k < b; ++k)
    base[k + k * static_cast<std::size_t>(lda)] += T{static_cast<double>(b)};
  PivotPolicy policy;
  policy.tiny_threshold = 1e-30;
  auto lu_blk = base;
  auto lu_ref = base;
  PivotStats s_blk, s_ref;
  getrf(lu_blk.data(), b, lda, policy, s_blk);
  ref::getrf(lu_ref.data(), b, lda, policy, s_ref);
  EXPECT_EQ(s_blk.replaced, s_ref.replaced);
  ASSERT_LT(max_abs_diff(lu_blk, lu_ref), tol(b) * 100) << "b=" << b;
}

TEST(GetrfEquivalence, BlockedMatchesReferenceDouble) {
  for (index_t b : {index_t{24}, index_t{33}, index_t{48}, index_t{64}})
    check_getrf<double>(b);
}
TEST(GetrfEquivalence, BlockedMatchesReferenceComplex) {
  for (index_t b : {index_t{24}, index_t{33}, index_t{48}, index_t{64}})
    check_getrf<Complex>(b);
}

// Tiny pivots must be detected and counted identically on the blocked path
// (the panel sees the same leading columns as the unblocked elimination).
TEST(GetrfEquivalence, TinyPivotStatsMatchOnBlockedPath) {
  const index_t b = 48;
  auto base = random_buffer<double>(static_cast<std::size_t>(b) * b, 321);
  for (index_t k = 0; k < b; ++k) base[k + k * static_cast<std::size_t>(b)] += b;
  // Zero a column so elimination produces a tiny pivot mid-factorization.
  for (index_t r = 0; r < b; ++r) base[r + 40 * static_cast<std::size_t>(b)] = 0.0;
  PivotPolicy policy;
  policy.tiny_threshold = 1e-8;
  auto lu_blk = base;
  auto lu_ref = base;
  PivotStats s_blk, s_ref;
  std::vector<PivotReplacement<double>> r_blk, r_ref;
  getrf(lu_blk.data(), b, b, policy, s_blk, {}, &r_blk);
  ref::getrf(lu_ref.data(), b, b, policy, s_ref, &r_ref);
  EXPECT_GE(s_blk.replaced, 1);
  EXPECT_EQ(s_blk.replaced, s_ref.replaced);
  ASSERT_EQ(r_blk.size(), r_ref.size());
  for (std::size_t i = 0; i < r_blk.size(); ++i)
    EXPECT_EQ(r_blk[i].col, r_ref[i].col);
}

}  // namespace
}  // namespace gesp::dense
