// Refinement module tests: iterative refinement semantics (the paper's
// stopping rule), the Hager–Higham norm estimator against exact norms,
// forward error bounds, condition estimates, and SMW recovery.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "common/rng.hpp"
#include "core/solver.hpp"
#include "numeric/lu_factors.hpp"
#include "refine/error_bounds.hpp"
#include "refine/norm_estimator.hpp"
#include "refine/refine.hpp"
#include "refine/smw.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"
#include "symbolic/symbolic.hpp"
#include "test_helpers.hpp"

namespace gesp::refine {
namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();

std::shared_ptr<const symbolic::SymbolicLU> analyze_shared(
    const sparse::CscMatrix<double>& A) {
  return std::make_shared<const symbolic::SymbolicLU>(symbolic::analyze(A, {}));
}

TEST(Refine, ConvergesToMachineEpsilon) {
  const auto A = sparse::convdiff2d(12, 12, 1.0, 0.5);
  const index_t n = A.ncols;
  numeric::LUFactors<double> F(analyze_shared(A), A, {});
  std::vector<double> x_true(n, 1.0), b(n), x(n);
  sparse::spmv<double>(A, x_true, b);
  x = b;
  F.solve(x);
  const auto res = iterative_refinement<double>(
      A, b, x, [&](std::span<double> v) { F.solve(v); });
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.final_berr, kEps);
  EXPECT_LE(res.iterations, 3);  // paper: usually <= 3 steps
}

TEST(Refine, RecoversFromPerturbedFactorization) {
  // Factor a *tiny-pivot-perturbed* matrix; refinement must pull the
  // solution back to the original system's accuracy.
  const auto A = sparse::cancellation_matrix(200, 60, 3);
  const index_t n = A.ncols;
  numeric::NumericOptions nopt;
  nopt.tiny_threshold = std::sqrt(kEps) * sparse::norm_max(A);
  numeric::LUFactors<double> F(analyze_shared(A), A, nopt);
  ASSERT_GE(F.pivots_replaced(), 1);
  std::vector<double> x_true(n, 1.0), b(n), x(n);
  sparse::spmv<double>(A, x_true, b);
  x = b;
  F.solve(x);
  const double before = sparse::relative_error_inf<double>(x_true, x);
  const auto res = iterative_refinement<double>(
      A, b, x, [&](std::span<double> v) { F.solve(v); });
  const double after = sparse::relative_error_inf<double>(x_true, x);
  EXPECT_LT(after, before);
  EXPECT_LT(after, 1e-10);
  EXPECT_GE(res.iterations, 1);
}

TEST(Refine, StagnationGuardStops) {
  // A deliberately bad "solver" (scaled identity) cannot halve berr; the
  // iteration must bail out quickly rather than loop to max_iters.
  const auto A = sparse::convdiff2d(8, 8, 1.0, 0.0);
  const index_t n = A.ncols;
  std::vector<double> x_true(n, 1.0), b(n), x(n, 0.0);
  sparse::spmv<double>(A, x_true, b);
  RefineOptions opt;
  opt.max_iters = 50;
  const auto res = iterative_refinement<double>(
      A, b, x,
      [&](std::span<double> v) {
        for (auto& e : v) e *= 1e-8;  // hopeless correction
      },
      opt);
  EXPECT_FALSE(res.converged);
  EXPECT_LE(res.iterations, 3);
}

TEST(Refine, HistoryIsMonotoneUntilExit) {
  const auto A = sparse::chemical_like(15, 15, 6.0, 5);
  const index_t n = A.ncols;
  numeric::LUFactors<double> F(analyze_shared(A), A, {});
  std::vector<double> x_true(n, 1.0), b(n), x(n);
  sparse::spmv<double>(A, x_true, b);
  x = b;
  F.solve(x);
  const auto res = iterative_refinement<double>(
      A, b, x, [&](std::span<double> v) { F.solve(v); });
  for (std::size_t k = 1; k < res.berr_history.size(); ++k)
    EXPECT_LE(res.berr_history[k], res.berr_history[k - 1] * 1.01);
}

TEST(Refine, NanInRhsTerminatesImmediately) {
  // berr against a NaN right-hand side is NaN; every comparison in the
  // loop condition is then false, so refinement must exit at once instead
  // of iterating to max_iters (or forever) on garbage.
  const auto A = sparse::convdiff2d(8, 8, 1.0, 0.5);
  const index_t n = A.ncols;
  numeric::LUFactors<double> F(analyze_shared(A), A, {});
  std::vector<double> b(n, 1.0), x(n, 0.0);
  b[3] = std::numeric_limits<double>::quiet_NaN();
  RefineOptions opt;
  opt.max_iters = 50;
  const auto res = iterative_refinement<double>(
      A, b, x, [&](std::span<double> v) { F.solve(v); }, opt);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 0);
  EXPECT_TRUE(std::isnan(res.final_berr));
}

TEST(Refine, InfInRhsTerminatesQuickly) {
  // An infinite entry gives berr = inf on entry; one correction turns the
  // residual into NaN and the stagnation rule must then stop the loop.
  const auto A = sparse::convdiff2d(8, 8, 1.0, 0.5);
  const index_t n = A.ncols;
  numeric::LUFactors<double> F(analyze_shared(A), A, {});
  std::vector<double> b(n, 1.0), x(n, 0.0);
  b[0] = std::numeric_limits<double>::infinity();
  RefineOptions opt;
  opt.max_iters = 50;
  const auto res = iterative_refinement<double>(
      A, b, x, [&](std::span<double> v) { F.solve(v); }, opt);
  EXPECT_FALSE(res.converged);
  EXPECT_LE(res.iterations, 2);
}

TEST(Refine, OscillatingBerrHitsTheStagnationGuard) {
  // A "solver" that overshoots by 2x makes the error oscillate in sign
  // with non-decreasing magnitude: berr never halves, and the stagnation
  // rule must terminate the loop long before max_iters.
  const auto A = sparse::convdiff2d(8, 8, 1.0, 0.0);
  const index_t n = A.ncols;
  numeric::LUFactors<double> F(analyze_shared(A), A, {});
  std::vector<double> x_true(n, 1.0), b(n), x(n, 0.0);
  sparse::spmv<double>(A, x_true, b);
  RefineOptions opt;
  opt.max_iters = 50;
  const auto res = iterative_refinement<double>(
      A, b, x,
      [&](std::span<double> v) {
        F.solve(v);
        for (auto& e : v) e *= 2.0;  // overshoot: x oscillates around x_true
      },
      opt);
  EXPECT_FALSE(res.converged);
  EXPECT_LE(res.iterations, 3);
  EXPECT_EQ(res.berr_history.size(),
            static_cast<std::size_t>(res.iterations) + 1);
}

TEST(Refine, ZeroRowIsInconsistentAndStagnates) {
  // A zero row with a nonzero rhs entry is unsolvable: |r_1|/(0 + |b_1|)
  // is pinned at 1 no matter the correction. The stagnation rule (berr
  // fails to halve) must end the loop quickly, not spin to max_iters.
  sparse::CooMatrix<double> coo(3, 3);
  coo.add(0, 0, 2.0);
  coo.add(2, 1, 1.0);
  coo.add(2, 2, 2.0);  // row 1 is entirely zero
  const auto A = coo.to_csc();
  std::vector<double> b{1.0, 1.0, 1.0}, x(3, 0.0);
  RefineOptions opt;
  opt.max_iters = 50;
  const auto res = iterative_refinement<double>(
      A, b, x, [](std::span<double>) {}, opt);
  EXPECT_FALSE(res.converged);
  EXPECT_LE(res.iterations, 2);
  EXPECT_GT(res.final_berr, 0.1);  // stuck, and honestly reported as such
}

TEST(Refine, StructurallySingularMatrixIsDiagnosedNotHung) {
  // The full solver path on a zero-row matrix: the matching phase must
  // throw structurally_singular instead of looping or factoring garbage.
  sparse::CooMatrix<double> coo(4, 4);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  coo.add(3, 3, 1.0);  // row/column 2 empty
  const auto A = coo.to_csc();
  try {
    gesp::Solver<double> solver(A, {});
    FAIL() << "expected structurally_singular";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::structurally_singular);
  }
}

TEST(NormEstimator, ExactForDiagonalOperator) {
  // B = diag(1, 5, 2): ||B||_1 = 5.
  const index_t n = 3;
  std::vector<double> d{1.0, 5.0, 2.0};
  ApplyFn<double> apply = [&](std::span<double> v) {
    for (index_t i = 0; i < n; ++i) v[i] *= d[i];
  };
  const double est = estimate_norm1<double>(n, apply, apply);
  EXPECT_NEAR(est, 5.0, 1e-12);
}

TEST(NormEstimator, WithinFactorOfTrueNormOnRandom) {
  // Dense random operator: the estimator is a guaranteed lower bound and
  // empirically within a small factor of the true 1-norm.
  const index_t n = 40;
  gesp::Rng rng(7);
  std::vector<double> M(static_cast<std::size_t>(n) * n);
  for (auto& v : M) v = rng.uniform(-1.0, 1.0);
  auto apply_mat = [&](const std::vector<double>& mat) {
    return [&, mat](std::span<double> v) {
      std::vector<double> out(n, 0.0);
      for (index_t j = 0; j < n; ++j)
        for (index_t i = 0; i < n; ++i) out[i] += mat[i + j * n] * v[j];
      std::copy(out.begin(), out.end(), v.begin());
    };
  };
  std::vector<double> Mt(static_cast<std::size_t>(n) * n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) Mt[j + i * n] = M[i + j * n];
  const double est =
      estimate_norm1<double>(n, apply_mat(M), apply_mat(Mt));
  double true_norm = 0;
  for (index_t j = 0; j < n; ++j) {
    double s = 0;
    for (index_t i = 0; i < n; ++i) s += std::abs(M[i + j * n]);
    true_norm = std::max(true_norm, s);
  }
  EXPECT_LE(est, true_norm * (1 + 1e-12));
  EXPECT_GE(est, 0.3 * true_norm);
}

TEST(ErrorBounds, FerrBoundsTrueErrorOnScaledSystem) {
  const auto A = sparse::convdiff2d(14, 14, 2.0, 0.5);
  const index_t n = A.ncols;
  numeric::LUFactors<double> F(analyze_shared(A), A, {});
  std::vector<double> x_true(n, 1.0), b(n), x(n), r(n);
  sparse::spmv<double>(A, x_true, b);
  x = b;
  F.solve(x);
  sparse::residual<double>(A, x, b, r);
  SolveOps<double> ops;
  ops.solve = [&](std::span<double> v) { F.solve(v); };
  ops.solve_transposed = [&](std::span<double> v) { F.solve_transposed(v); };
  const double ferr = forward_error_bound<double>(A, x, b, r, ops);
  const double err = sparse::relative_error_inf<double>(x_true, x);
  EXPECT_GE(ferr * 1.01 + kEps, err);
}

TEST(ErrorBounds, RcondSmallForIllConditioned) {
  const auto good = sparse::laplacian2d(10, 10);
  const auto bad = sparse::anisotropic2d(14, 14, 1e-8);
  auto rcond_of = [&](const sparse::CscMatrix<double>& A) {
    numeric::LUFactors<double> F(analyze_shared(A), A, {});
    SolveOps<double> ops;
    ops.solve = [&](std::span<double> v) { F.solve(v); };
    ops.solve_transposed = [&](std::span<double> v) {
      F.solve_transposed(v);
    };
    return rcond_estimate<double>(A, ops);
  };
  EXPECT_LT(rcond_of(bad), rcond_of(good));
}

TEST(TransposedSolve, MatchesTransposedSystem) {
  const auto A = sparse::convdiff2d(9, 8, 1.0, 0.5);
  const index_t n = A.ncols;
  numeric::LUFactors<double> F(analyze_shared(A), A, {});
  std::vector<double> x_true(n), b(n), x(n);
  for (index_t i = 0; i < n; ++i) x_true[i] = 1.0 + (i % 5) * 0.5;
  sparse::spmv_transposed<double>(A, x_true, b);  // b = Aᵀ x
  x = b;
  F.solve_transposed(x);
  EXPECT_LT(sparse::relative_error_inf<double>(x_true, x), 1e-11);
}

TEST(Smw, ExactRecoveryOfLargePerturbations) {
  // Aggressive pivot promotion makes Ã differ from A by O(1) rank-k terms;
  // the SMW solve must nevertheless solve the ORIGINAL system exactly.
  const auto A = sparse::cancellation_matrix(300, 80, 9);
  const index_t n = A.ncols;
  numeric::NumericOptions nopt;
  nopt.tiny_threshold = std::sqrt(kEps) * sparse::norm_max(A);
  nopt.aggressive_replacement = true;
  nopt.record_replacements = true;
  numeric::LUFactors<double> F(analyze_shared(A), A, nopt);
  ASSERT_GE(F.pivots_replaced(), 1);
  SmwSolver<double> smw(F);
  EXPECT_EQ(smw.rank(), static_cast<index_t>(F.replacements().size()));
  std::vector<double> x_true(n, 1.0), b(n), x(n);
  sparse::spmv<double>(A, x_true, b);
  x = b;
  smw.solve(x);
  // SMW recovery is exact in principle; the capacitance conditioning
  // limits it in floating point. One refinement pass restores the rest.
  EXPECT_LT(sparse::relative_error_inf<double>(x_true, x), 1e-5);
  const auto res = iterative_refinement<double>(
      A, b, x, [&](std::span<double> v) { smw.solve(v); });
  EXPECT_LT(sparse::relative_error_inf<double>(x_true, x), 1e-10);
  EXPECT_LE(res.final_berr, 100 * kEps);
}

TEST(Smw, NoReplacementsIsPlainSolve) {
  const auto A = sparse::convdiff2d(8, 8, 1.0, 0.0);
  const index_t n = A.ncols;
  numeric::NumericOptions nopt;
  nopt.tiny_threshold = std::sqrt(kEps) * sparse::norm_max(A);
  nopt.record_replacements = true;
  numeric::LUFactors<double> F(analyze_shared(A), A, nopt);
  EXPECT_EQ(F.pivots_replaced(), 0);
  SmwSolver<double> smw(F);
  EXPECT_EQ(smw.rank(), 0);
  std::vector<double> x_true(n, 1.0), b(n), x(n);
  sparse::spmv<double>(A, x_true, b);
  x = b;
  smw.solve(x);
  EXPECT_LT(sparse::relative_error_inf<double>(x_true, x), 1e-12);
}

TEST(Refine, ComplexRefinement) {
  const auto A = sparse::randomize_phases(sparse::convdiff2d(9, 9, 1.0, 0.5), 4);
  const index_t n = A.ncols;
  auto sym = std::make_shared<const symbolic::SymbolicLU>(
      symbolic::analyze(A, {}));
  numeric::LUFactors<Complex> F(sym, A, {});
  std::vector<Complex> x_true(n, Complex(2.0, -1.0)), b(n), x(n);
  sparse::spmv<Complex>(A, x_true, b);
  x = b;
  F.solve(x);
  const auto res = iterative_refinement<Complex>(
      A, b, x, [&](std::span<Complex> v) { F.solve(v); });
  EXPECT_LE(res.final_berr, 10 * kEps);
  EXPECT_LT(sparse::relative_error_inf<Complex>(x_true, x), 1e-12);
}

}  // namespace
}  // namespace gesp::refine
