// Distributed factorization and triangular solve tests: the MiniMPI
// substrate itself, then the 2-D block-cyclic factorization (Fig 8) and the
// message-driven solves (Fig 9) verified bit-for-bit against the serial
// supernodal factorization on several grid shapes, with and without EDAG
// communication pruning.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <tuple>

#include "dist/dist_lu.hpp"
#include "dist/minimpi.hpp"
#include "numeric/lu_factors.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"
#include "symbolic/symbolic.hpp"
#include "test_helpers.hpp"

namespace gesp {
namespace {

using dist::DistOptions;
using dist::DistributedLU;
using dist::ProcessGrid;
using sparse::CscMatrix;

TEST(MiniMpi, PointToPoint) {
  minimpi::World world(2);
  world.run([](minimpi::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> payload{1.0, 2.5, -3.0};
      comm.send_vec(1, 42, payload);
    } else {
      const auto msg = comm.recv(0, 42);
      const auto v = msg.as<double>();
      ASSERT_EQ(v.size(), 3u);
      EXPECT_EQ(v[1], 2.5);
    }
  });
}

TEST(MiniMpi, TagAndSourceMatching) {
  minimpi::World world(3);
  world.run([](minimpi::Comm& comm) {
    if (comm.rank() != 2) {
      comm.send_value(2, 10 + comm.rank(), comm.rank());
    } else {
      // Receive in the *opposite* order of likely arrival.
      const auto m1 = comm.recv(1, 11);
      const auto m0 = comm.recv(0, 10);
      EXPECT_EQ(m1.src, 1);
      EXPECT_EQ(m0.src, 0);
    }
  });
}

TEST(MiniMpi, BarrierAndReduce) {
  minimpi::World world(4);
  world.run([](minimpi::Comm& comm) {
    comm.barrier();
    const double sum = comm.reduce_sum(0, 99, comm.rank() + 1.0);
    if (comm.rank() == 0) {
      EXPECT_DOUBLE_EQ(sum, 10.0);
    }
    comm.barrier();
  });
}

TEST(MiniMpi, StatsCountMessages) {
  minimpi::World world(2);
  const auto stats = world.run([](minimpi::Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> v(10, 1.0);
      comm.send_vec(1, 7, v);
    } else {
      comm.recv(0, 7);
    }
  });
  EXPECT_EQ(stats[0].messages_sent, 1);
  EXPECT_EQ(stats[0].bytes_sent, 80);
  EXPECT_EQ(stats[1].messages_received, 1);
}

/// Factor A on a pr x pc grid, verify LU == serial LU bitwise, and check
/// the distributed solve against a known solution.
void check_distributed(const CscMatrix<double>& A, int pr, int pc,
                       bool edag_pruning, double solve_tol = 1e-10,
                       bool pipelined = true) {
  auto sym = std::make_shared<const symbolic::SymbolicLU>(
      symbolic::analyze(A, {}));
  // Serial reference.
  numeric::LUFactors<double> serial(sym, A, {});
  const auto Lref = serial.l_matrix();
  const auto Uref = serial.u_matrix();

  const ProcessGrid grid{pr, pc};
  minimpi::World world(grid.nprocs());
  const index_t n = A.ncols;
  std::vector<double> x_true(n, 1.0), b(n);
  sparse::spmv<double>(A, x_true, b);

  std::vector<double> x0;
  CscMatrix<double> Ldist, Udist;
  world.run([&](minimpi::Comm& comm) {
    DistOptions opt;
    opt.edag_pruning = edag_pruning;
    opt.pipelined = pipelined;
    DistributedLU<double> dlu(comm, grid, sym, A, opt);
    const auto L = dlu.gather_l(comm);
    const auto U = dlu.gather_u(comm);
    std::vector<double> x(b.size());
    dlu.solve(comm, b, x);
    if (comm.rank() == 0) {
      Ldist = L;
      Udist = U;
      x0 = x;
    } else {
      // The solution is replicated: every rank must agree.
      EXPECT_LT(sparse::relative_error_inf<double>(x_true, x), solve_tol);
    }
  });
  // Identical block operations in identical order: bitwise equality.
  EXPECT_EQ(testing::max_abs_diff(Lref, Ldist), 0.0);
  EXPECT_EQ(testing::max_abs_diff(Uref, Udist), 0.0);
  EXPECT_LT(sparse::relative_error_inf<double>(x_true, x0), solve_tol);
}

TEST(DistLU, Grid1x1MatchesSerial) {
  check_distributed(sparse::convdiff2d(12, 12, 1.0, 0.5), 1, 1, true);
}

TEST(DistLU, Grid2x2MatchesSerial) {
  check_distributed(sparse::convdiff2d(12, 12, 1.0, 0.5), 2, 2, true);
}

TEST(DistLU, Grid2x4MatchesSerial) {
  check_distributed(sparse::convdiff2d(14, 10, 2.0, 0.25), 2, 4, true);
}

TEST(DistLU, Grid4x2MatchesSerial) {
  check_distributed(sparse::convdiff2d(10, 14, 0.5, 1.5), 4, 2, true);
}

TEST(DistLU, Grid3x3MatchesSerial) {
  // Non-power-of-two grids are explicitly supported by the paper.
  check_distributed(sparse::laplacian2d(13, 11), 3, 3, true);
}

TEST(DistLU, NoPruningSameResult) {
  // EDAG pruning changes the communication, never the numbers.
  check_distributed(sparse::convdiff2d(12, 12, 1.0, 0.5), 2, 2, false);
}

TEST(DistLU, StrictOrderSameResult) {
  // Disabling the pipelined schedule replays the per-K loop; the factors
  // must still be bitwise-identical to serial.
  check_distributed(sparse::convdiff2d(12, 12, 1.0, 0.5), 2, 2, true, 1e-10,
                    /*pipelined=*/false);
}

TEST(DistLU, StrictOrderNoPruningSameResult) {
  check_distributed(sparse::convdiff2d(12, 12, 1.0, 0.5), 2, 3, false, 1e-10,
                    /*pipelined=*/false);
}

TEST(DistLU, PipelinedMatchesStrictBitwise) {
  // The message-driven pipelined schedule and the strict per-K loop must
  // produce bitwise-identical factors (deterministic tie-break, ascending K).
  const auto A = sparse::convdiff2d(14, 12, 1.0, 0.5);
  auto sym = std::make_shared<const symbolic::SymbolicLU>(
      symbolic::analyze(A, {}));
  const ProcessGrid grid{2, 2};
  auto factor_gather = [&](bool pipelined) {
    minimpi::World world(grid.nprocs());
    CscMatrix<double> L, U;
    count_t lookahead = 0;
    world.run([&](minimpi::Comm& comm) {
      DistOptions opt;
      opt.pipelined = pipelined;
      DistributedLU<double> dlu(comm, grid, sym, A, opt);
      auto Lg = dlu.gather_l(comm);
      auto Ug = dlu.gather_u(comm);
      const count_t hits = comm.reduce_sum(
          0, 12345, static_cast<double>(dlu.lookahead_hits()));
      if (comm.rank() == 0) {
        L = std::move(Lg);
        U = std::move(Ug);
        lookahead = static_cast<count_t>(hits);
      }
    });
    return std::tuple{std::move(L), std::move(U), lookahead};
  };
  const auto [Lp, Up, hits_p] = factor_gather(true);
  const auto [Ls, Us, hits_s] = factor_gather(false);
  EXPECT_EQ(testing::max_abs_diff(Lp, Ls), 0.0);
  EXPECT_EQ(testing::max_abs_diff(Up, Us), 0.0);
  EXPECT_GT(hits_p, 0);  // look-ahead actually engaged on a 2x2 grid
  EXPECT_EQ(hits_s, 0);  // strict mode never looks ahead
}

TEST(DistLU, DeviceMatrixWideSupernodes) {
  check_distributed(sparse::device_like(12, 12, 100, 5), 2, 2, true, 1e-8);
}

TEST(DistLU, CircuitMatrixTinySupernodes) {
  check_distributed(sparse::circuit_like(300, 4, 10, 6), 2, 2, true, 1e-8);
}

TEST(DistLU, EdagPruningReducesMessages) {
  const auto A = sparse::convdiff2d(16, 16, 1.0, 0.5);
  auto sym = std::make_shared<const symbolic::SymbolicLU>(
      symbolic::analyze(A, {}));
  const ProcessGrid grid{2, 4};
  auto count_messages = [&](bool pruning) {
    minimpi::World world(grid.nprocs());
    const auto stats = world.run([&](minimpi::Comm& comm) {
      DistOptions opt;
      opt.edag_pruning = pruning;
      DistributedLU<double> dlu(comm, grid, sym, A, opt);
    });
    count_t total = 0;
    for (const auto& s : stats) total += s.messages_sent;
    return total;
  };
  const count_t pruned = count_messages(true);
  const count_t full = count_messages(false);
  EXPECT_LT(pruned, full);  // the paper: ~16% fewer messages on AF23560
}

TEST(DistLU, ComplexDistributedFactorization) {
  const auto A =
      sparse::randomize_phases(sparse::convdiff2d(10, 10, 1.0, 0.5), 3);
  auto sym = std::make_shared<const symbolic::SymbolicLU>(
      symbolic::analyze(A, {}));
  numeric::LUFactors<Complex> serial(sym, A, {});
  const auto Lref = serial.l_matrix();

  const ProcessGrid grid{2, 2};
  minimpi::World world(grid.nprocs());
  CscMatrix<Complex> Ldist;
  world.run([&](minimpi::Comm& comm) {
    DistributedLU<Complex> dlu(comm, grid, sym, A, {});
    auto L = dlu.gather_l(comm);
    if (comm.rank() == 0) Ldist = std::move(L);
    dlu.gather_u(comm);  // keep the collective schedule aligned
  });
  EXPECT_EQ(testing::max_abs_diff(Lref, Ldist), 0.0);
}

}  // namespace
}  // namespace gesp
