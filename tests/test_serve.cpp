// Serving-layer tests: cache semantics, concurrent bitwise parity against
// serial solves, eviction under tiny budgets, admission control (queue
// full, deadlines, stopped service), the recovery wiring, and the
// satellite guarantees this PR added to the core solver (refactorize
// pattern validation, wall-clock solve latency). Runs under TSan in CI —
// every assertion here is scheduled to be deterministic, not timing-lucky.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "serve/cache.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"
#include "sparse/ops.hpp"
#include "sparse/testbed.hpp"
#include "test_helpers.hpp"

namespace {

using namespace gesp;

sparse::CscMatrix<double> testbed_matrix(const char* name) {
  return sparse::testbed_entry(name).make();
}

std::vector<double> rhs_for(const sparse::CscMatrix<double>& A) {
  std::vector<double> ones(static_cast<std::size_t>(A.ncols), 1.0);
  std::vector<double> b(ones.size());
  sparse::spmv<double>(A, ones, b);
  return b;
}

count_t counter_value(const char* name) {
  const auto* c = metrics::global().find_counter(name);
  return c ? c->value() : 0;
}

/// A tiny structurally-fine but numerically singular system: every GESP
/// rung (and GEPP) fails on it, which is exactly what the recovery-wiring
/// test needs.
sparse::CscMatrix<double> singular2x2() {
  sparse::CscMatrix<double> A;
  A.nrows = A.ncols = 2;
  A.colptr = {0, 2, 4};
  A.rowind = {0, 1, 0, 1};
  A.values = {1.0, 1.0, 1.0, 1.0};
  return A;
}

// ---------------------------------------------------------------------------
// Pattern fingerprints and the refactorize validation satellite.

TEST(PatternKey, SameStructureSameKeyDifferentValuesSameKey) {
  const auto A = testbed_matrix("west0497-s");
  auto B = A;
  for (auto& v : B.values) v *= 2.0;
  EXPECT_EQ(sparse::pattern_key(A), sparse::pattern_key(B));
  EXPECT_NE(sparse::value_hash(A), sparse::value_hash(B));
}

TEST(PatternKey, DifferentStructureDifferentKey) {
  const auto A = testbed_matrix("west0497-s");
  const auto B = testbed_matrix("orsirr-s");
  EXPECT_FALSE(sparse::pattern_key(A) == sparse::pattern_key(B));
}

TEST(RefactorizeValidation, RejectsSameSizeDifferentPattern) {
  auto A = testbed_matrix("west0497-s");
  Solver<double> s(A, {});
  // Same dimensions and nnz, different structure: move one entry to
  // another (previously empty) row of the same column.
  auto B = A;
  bool moved = false;
  for (index_t j = 0; j < B.ncols && !moved; ++j) {
    const index_t lo = B.colptr[j], hi = B.colptr[j + 1];
    if (hi - lo == 0 || hi - lo == B.nrows) continue;
    for (index_t r = 0; r < B.nrows; ++r) {
      auto rows = B.col_rows(j);
      if (std::find(rows.begin(), rows.end(), r) == rows.end()) {
        B.rowind[lo] = r;
        B.sort_columns();
        moved = true;
        break;
      }
    }
  }
  ASSERT_TRUE(moved);
  try {
    s.refactorize(B);
    FAIL() << "refactorize accepted a different sparsity pattern";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::invalid_argument);
  }
  // Same pattern with new values is the supported fast path.
  auto C = A;
  for (auto& v : C.values) v *= 1.5;
  EXPECT_NO_THROW(s.refactorize(C));
}

TEST(SolveStatsWall, LatencyFieldsTrackSolveCalls) {
  const auto A = testbed_matrix("west0497-s");
  Solver<double> s(A, {});
  const auto b = rhs_for(A);
  std::vector<double> x(b.size());
  s.solve(b, x);
  const auto& st = s.stats();
  EXPECT_EQ(st.solve_calls, 1);
  EXPECT_GT(st.solve_wall_seconds, 0.0);
  // The wall clock covers the whole call, so it dominates the epoch's
  // instrumented phases.
  EXPECT_GE(st.solve_wall_seconds,
            st.times.get("solve") + st.times.get("refine"));
  const double first = st.solve_wall_total_seconds;
  s.solve(b, x);
  EXPECT_EQ(s.stats().solve_calls, 2);
  EXPECT_GE(s.stats().solve_wall_total_seconds, first);
}

// ---------------------------------------------------------------------------
// FactorizationCache unit behaviour.

TEST(FactorizationCache, HitMissAndLruEviction) {
  serve::FactorizationCache<double> cache(/*max_entries=*/2,
                                          /*max_bytes=*/0);
  const auto A = testbed_matrix("west0497-s");
  const auto B = testbed_matrix("orsirr-s");
  const auto C = testbed_matrix("goodwin-s");

  bool hit = true;
  auto ea = cache.acquire(A, &hit);
  EXPECT_FALSE(hit);
  auto ea2 = cache.acquire(A, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(ea.get(), ea2.get());

  cache.acquire(B, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.entries(), 2u);

  // A was used more recently than B (via ea2), so inserting C evicts B.
  cache.acquire(A, &hit);
  cache.acquire(C, &hit);
  EXPECT_EQ(cache.entries(), 2u);
  cache.acquire(A, &hit);
  EXPECT_TRUE(hit);
  cache.acquire(B, &hit);
  EXPECT_FALSE(hit) << "B should have been the LRU eviction victim";
}

TEST(FactorizationCache, ByteBudgetEvictsButKeepsCurrent) {
  serve::FactorizationCache<double> cache(/*max_entries=*/8,
                                          /*max_bytes=*/1000);
  const auto A = testbed_matrix("west0497-s");
  const auto B = testbed_matrix("orsirr-s");
  bool hit = false;
  auto ea = cache.acquire(A, &hit);
  cache.update_bytes(ea, 800);
  auto eb = cache.acquire(B, &hit);
  cache.update_bytes(eb, 900);  // over budget: A (LRU) must go, B stays
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), 900u);
  cache.acquire(B, &hit);
  EXPECT_TRUE(hit);
  // An entry the budget can never fit still serves (size > 1 guard): the
  // budget is a pressure valve, not a correctness gate.
  auto ec = cache.acquire(A, &hit);
  cache.update_bytes(ec, 5000);
  EXPECT_EQ(cache.entries(), 1u);
  cache.acquire(A, &hit);
  EXPECT_TRUE(hit);
}

TEST(FactorizationCache, EraseIsIdempotentAndUnlinks) {
  serve::FactorizationCache<double> cache(4, 0);
  const auto A = testbed_matrix("west0497-s");
  bool hit = false;
  auto e = cache.acquire(A, &hit);
  cache.erase(e);
  EXPECT_EQ(cache.entries(), 0u);
  cache.erase(e);  // no-op
  cache.acquire(A, &hit);
  EXPECT_FALSE(hit);
}

// ---------------------------------------------------------------------------
// Concurrent service parity: N client threads, bitwise-identical answers to
// a serial Solver replay.

TEST(SolverService, ConcurrentBitwiseParityWithSerial) {
  const char* kPatterns[] = {"west0497-s", "orsirr-s", "goodwin-s"};
  constexpr int kValueSets = 3;
  constexpr int kClients = 6;
  constexpr int kPerClient = 8;

  // Problems and serial oracle answers. The oracle replays exactly what
  // the service does on the per_column path: factor the base (the warm()
  // call pins the transform basis), refactorize per value set, solve.
  struct Prob {
    sparse::CscMatrix<double> A;
    std::vector<double> b;
    std::vector<double> x_ref;
  };
  std::vector<sparse::CscMatrix<double>> bases;
  std::vector<std::vector<Prob>> probs;  // [pattern][valueset]
  serve::ServiceOptions opt;
  opt.backend = Backend::serial;
  for (const char* name : kPatterns) {
    bases.push_back(testbed_matrix(name));
    Solver<double> oracle(bases.back(), opt.solver);
    std::vector<Prob> per_vs;
    for (int v = 0; v < kValueSets; ++v) {
      Prob p;
      p.A = serve::perturb_values(bases.back(), v);
      p.b = rhs_for(p.A);
      p.x_ref.resize(p.b.size());
      oracle.refactorize(p.A);
      oracle.solve(p.b, p.x_ref);
      per_vs.push_back(std::move(p));
    }
    probs.push_back(std::move(per_vs));
  }

  // per_column execution is the bitwise-reproducible mode; shedding would
  // skip refinement and is off. Cache budgets are big enough that nothing
  // the oracle factored gets evicted.
  opt.batch_mode = serve::BatchMode::per_column;
  opt.shed_refinement = false;
  opt.cache_max_entries = 8;
  opt.num_workers = 3;
  serve::SolverService<double> svc(opt);
  for (const auto& base : bases) svc.warm(base);

  std::atomic<int> mismatches{0}, failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        // Deterministic request mix, different per client.
        const auto& pv = probs[(c + i) % std::size(kPatterns)]
                              [(c * kPerClient + i) % kValueSets];
        try {
          const auto r = svc.solve(pv.A, pv.b);
          if (r.x.size() != pv.x_ref.size() ||
              std::memcmp(r.x.data(), pv.x_ref.data(),
                          r.x.size() * sizeof(double)) != 0)
            mismatches.fetch_add(1);
          if (!(r.latency_s > 0)) failures.fetch_add(1);
        } catch (const Error&) {
          failures.fetch_add(1);
        }
      }
    });
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(failures.load(), 0);
}

TEST(SolverService, BlockedBatchingCoalescesAndStaysAccurate) {
  const auto A = testbed_matrix("west0497-s");
  const auto b = rhs_for(A);
  serve::ServiceOptions opt;
  opt.backend = Backend::serial;
  opt.num_workers = 1;          // one executor => one batch per drain
  opt.batch_linger_s = 50e-3;   // generous: TSan slows the clients down
  opt.max_batch = 4;
  opt.shed_refinement = false;
  serve::SolverService<double> svc(opt);
  svc.warm(A);
  (void)svc.solve(A, b);  // value-hit traffic from here on

  index_t widest = 0;
  for (int round = 0; round < 5 && widest < 2; ++round) {
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::atomic<index_t> max_width{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c)
      clients.emplace_back([&] {
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) {
        }
        const auto r = svc.solve(A, b);
        double err = 0;
        for (double x : r.x) err = std::max(err, std::abs(x - 1.0));
        EXPECT_LT(err, 1e-8);
        index_t cur = max_width.load();
        while (r.batch_width > cur &&
               !max_width.compare_exchange_weak(cur, r.batch_width)) {
        }
      });
    while (ready.load() < 4) {
    }
    go.store(true, std::memory_order_release);
    for (auto& t : clients) t.join();
    widest = std::max(widest, max_width.load());
  }
  EXPECT_GE(widest, 2) << "4 simultaneous same-value requests never "
                          "coalesced in 5 rounds";
}

// ---------------------------------------------------------------------------
// Eviction, admission control and degradation through the service.

TEST(SolverService, TinyCacheBudgetEvictsAndStaysCorrect) {
  const auto A = testbed_matrix("west0497-s");
  const auto B = testbed_matrix("orsirr-s");
  const auto ba = rhs_for(A), bb = rhs_for(B);
  serve::ServiceOptions opt;
  opt.backend = Backend::serial;
  opt.cache_max_entries = 4;
  opt.cache_max_bytes = 1;  // nothing fits: every new pattern evicts
  opt.shed_refinement = false;
  serve::SolverService<double> svc(opt);

  const count_t evictions0 = counter_value("serve.cache.evictions");
  for (int i = 0; i < 3; ++i) {
    const auto ra = svc.solve(A, ba);
    const auto rb = svc.solve(B, bb);
    double err = 0;
    for (double x : ra.x) err = std::max(err, std::abs(x - 1.0));
    for (double x : rb.x) err = std::max(err, std::abs(x - 1.0));
    EXPECT_LT(err, 1e-8);
  }
  EXPECT_LE(svc.cache_entries(), 1u);
  EXPECT_GT(counter_value("serve.cache.evictions"), evictions0);
}

TEST(SolverService, QueueFullRejectsWithOverloaded) {
  serve::ServiceOptions opt;
  opt.backend = Backend::serial;
  opt.num_workers = 1;
  opt.max_queue = 1;
  serve::SolverService<double> svc(opt);

  // Occupy the single worker with a cold jpwh991-s factorization, then
  // flood: with the worker busy and a queue of one, most must be rejected
  // at admission — synchronously, no timing involved.
  const auto blocker = testbed_matrix("jpwh991-s");
  const auto bb = rhs_for(blocker);
  const count_t admitted0 = counter_value("serve.admitted");
  std::thread blocked([&] { (void)svc.solve(blocker, bb); });
  // Wait until the blocker was admitted AND popped by the worker.
  while (counter_value("serve.admitted") < admitted0 + 1 ||
         svc.queue_depth() > 0)
    std::this_thread::yield();

  const auto A = testbed_matrix("west0497-s");
  const auto ba = rhs_for(A);
  std::atomic<int> rejected{0}, accepted{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c)
    clients.emplace_back([&] {
      try {
        (void)svc.solve(A, ba);
        accepted.fetch_add(1);
      } catch (const Error& e) {
        EXPECT_EQ(e.code(), Errc::overloaded);
        rejected.fetch_add(1);
      }
    });
  for (auto& t : clients) t.join();
  blocked.join();
  EXPECT_GE(rejected.load(), 1);
  EXPECT_EQ(rejected.load() + accepted.load(), 6);
}

TEST(SolverService, ExpiredDeadlineRejectsInsteadOfSolvingLate) {
  serve::ServiceOptions opt;
  opt.backend = Backend::serial;
  opt.num_workers = 1;
  serve::SolverService<double> svc(opt);

  const auto blocker = testbed_matrix("jpwh991-s");
  const auto bb = rhs_for(blocker);
  const count_t admitted0 = counter_value("serve.admitted");
  std::thread blocked([&] { (void)svc.solve(blocker, bb); });
  while (counter_value("serve.admitted") < admitted0 + 1 ||
         svc.queue_depth() > 0)
    std::this_thread::yield();

  // Queued behind a cold factorization with a deadline that cannot hold:
  // by execution time it has expired, so the service sheds it.
  const auto A = testbed_matrix("west0497-s");
  const auto ba = rhs_for(A);
  const count_t expired0 = counter_value("serve.deadline_expired");
  serve::RequestOptions ropt;
  ropt.deadline_s = 1e-6;
  try {
    (void)svc.solve(A, ba, ropt);
    FAIL() << "expired deadline was solved anyway";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::overloaded);
  }
  blocked.join();
  EXPECT_EQ(counter_value("serve.deadline_expired"), expired0 + 1);
}

TEST(SolverService, StoppedServiceRejects) {
  serve::ServiceOptions opt;
  opt.backend = Backend::serial;
  serve::SolverService<double> svc(opt);
  const auto A = testbed_matrix("west0497-s");
  const auto b = rhs_for(A);
  (void)svc.solve(A, b);
  svc.stop();
  try {
    (void)svc.solve(A, b);
    FAIL() << "stopped service accepted a request";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::overloaded);
  }
}

TEST(SolverService, RecoverableFailureEvictsAndRetriesWithLadder) {
  serve::ServiceOptions opt;
  opt.backend = Backend::serial;
  opt.solver.tiny_pivot = TinyPivotOption::fail;  // make singularity fatal
  serve::SolverService<double> svc(opt);

  const auto S = singular2x2();
  const std::vector<double> b = {1.0, 2.0};
  const count_t retries0 = counter_value("serve.retries");
  // The first (cold) attempt fails numerically singular (tiny_pivot=fail,
  // no ladder); the service evicts the poisoned entry and retries once
  // with the recovery ladder armed. An exactly singular system defeats
  // the ladder too — the client then either sees the solver error or the
  // ladder's best-effort answer flagged `recovered` — but the retry path
  // must have run exactly once either way.
  try {
    const auto r = svc.solve(S, b);
    EXPECT_TRUE(r.recovered);
  } catch (const Error& e) {
    EXPECT_NE(e.code(), Errc::overloaded);
  }
  EXPECT_EQ(counter_value("serve.retries"), retries0 + 1);

  // The failure did not poison the service: good traffic still solves.
  const auto A = testbed_matrix("west0497-s");
  const auto ba = rhs_for(A);
  const auto r = svc.solve(A, ba);
  double err = 0;
  for (double x : r.x) err = std::max(err, std::abs(x - 1.0));
  EXPECT_LT(err, 1e-8);
}

TEST(SolverService, RecoveredResponseCarriesTheTrail) {
  // The served response must surface how the answer was obtained: the
  // evict-and-retry rebuild arms the ladder, and the ladder's trail rides
  // back in Response::recovery.
  serve::ServiceOptions opt;
  opt.backend = Backend::serial;
  opt.solver.tiny_pivot = TinyPivotOption::fail;
  serve::SolverService<double> svc(opt);

  const auto S = singular2x2();
  const std::vector<double> b = {1.0, 2.0};
  try {
    const auto r = svc.solve(S, b);
    EXPECT_TRUE(r.recovered);
    EXPECT_FALSE(r.recovery.attempts.empty());
    EXPECT_EQ(r.recovery.final_rung, r.recovery.attempts.back().rung);
  } catch (const Error& e) {
    EXPECT_NE(e.code(), Errc::overloaded);
  }
  // A clean request's trail stays empty (ladder never armed).
  const auto A = testbed_matrix("west0497-s");
  const auto r2 = svc.solve(A, rhs_for(A));
  EXPECT_TRUE(r2.recovery.attempts.empty());
  EXPECT_FALSE(r2.hostile);
}

TEST(SolverService, PersistentFailuresMarkThePatternHostile) {
  // Cap on evict-and-retry: after hostile_threshold failed armed-ladder
  // recoveries, the pattern is marked hostile and subsequent requests are
  // rebuilt with the ladder starting at the strongest rung (GEPP) instead
  // of burning an evict-and-retry per request. The middle rungs are
  // disabled so an exactly singular system defeats the armed rebuilds —
  // with them enabled, threshold pivoting absorbs the 2x2 gadget.
  serve::ServiceOptions opt;
  opt.backend = Backend::serial;
  opt.solver.tiny_pivot = TinyPivotOption::fail;
  opt.solver.recovery.try_aggressive_smw = false;
  opt.solver.recovery.try_unscaled_refactor = false;
  opt.solver.recovery.try_threshold = false;
  opt.solver.recovery.try_panel_rrp = false;
  opt.hostile_threshold = 2;
  serve::SolverService<double> svc(opt);

  const auto S = singular2x2();
  const sparse::PatternKey key = sparse::pattern_key(S);
  const std::vector<double> b = {1.0, 2.0};
  const count_t retries0 = counter_value("serve.retries");
  const count_t marked0 = counter_value("serve.recovery.hostile_marked");
  const count_t hits0 = counter_value("serve.recovery.hostile_hits");

  // Two requests, each: cold build fails -> evict -> armed rebuild fails
  // too (gesp and gepp both reject an exactly singular matrix). Two
  // failed recoveries = the threshold.
  for (int i = 0; i < 2; ++i) {
    EXPECT_THROW(svc.solve(S, b), Error) << "request " << i;
    EXPECT_EQ(svc.is_hostile(key), i == 1) << "request " << i;
  }
  EXPECT_EQ(counter_value("serve.retries"), retries0 + 2);
  EXPECT_EQ(counter_value("serve.recovery.hostile_marked"), marked0 + 1);

  // Same pattern, nonsingular values: the hostile request skips the
  // ladder climb — no evict-and-retry — and goes straight to GEPP, which
  // factors the healthy values fine. The response says so.
  auto G = S;
  G.values = {1.0, 1.0, 1.0, 2.0};
  std::vector<double> bg(2);
  const std::vector<double> ones = {1.0, 1.0};
  sparse::spmv<double>(G, ones, bg);
  const auto r = svc.solve(G, bg);
  EXPECT_TRUE(r.hostile);
  ASSERT_FALSE(r.recovery.attempts.empty());
  EXPECT_EQ(r.recovery.final_rung, RecoveryRung::gepp);
  EXPECT_TRUE(r.recovery.recovered);
  EXPECT_NEAR(r.x[0], 1.0, 1e-10);
  EXPECT_NEAR(r.x[1], 1.0, 1e-10);
  EXPECT_EQ(counter_value("serve.retries"), retries0 + 2);  // no new retry
  EXPECT_EQ(counter_value("serve.recovery.hostile_hits"), hits0 + 1);
  EXPECT_TRUE(svc.is_hostile(key));  // the mark is not forgiven
}

TEST(SolverService, ValueHitRequiresExactBytesAndStillFastPaths) {
  serve::ServiceOptions opt;
  opt.backend = Backend::serial;
  serve::SolverService<double> svc(opt);
  const auto A = testbed_matrix("west0497-s");
  const auto b = rhs_for(A);

  const count_t hits0 = counter_value("serve.cache.value_hit");
  const count_t phits0 = counter_value("serve.cache.pattern_hit");
  const auto cold = svc.solve(A, b);
  EXPECT_FALSE(cold.value_hit);
  // Identical resubmission: the exact-byte check must not break the
  // value-hit fast path (hash AND memcmp both match).
  const auto hit = svc.solve(A, b);
  EXPECT_TRUE(hit.pattern_hit);
  EXPECT_TRUE(hit.value_hit);
  EXPECT_EQ(counter_value("serve.cache.value_hit"), hits0 + 1);
  // New values under the same pattern refactorize instead.
  auto B = A;
  for (auto& v : B.values) v *= 2.0;
  const auto refac = svc.solve(B, rhs_for(B));
  EXPECT_TRUE(refac.pattern_hit);
  EXPECT_FALSE(refac.value_hit);
  EXPECT_EQ(counter_value("serve.cache.pattern_hit"), phits0 + 1);
  // The collision degradation path never fires on honest traffic.
  EXPECT_EQ(counter_value("serve.cache.value_hash_collisions"), 0u);
}

TEST(SolverService, FailingCoalescedBatchResolvesEveryClientExactlyOnce) {
  // Regression: a batch that fails after coalescing must deliver exactly
  // one outcome per client — no promise is ever set twice (that throws
  // std::future_error past the worker's Error handler and terminates the
  // process) and none is abandoned (that hangs its client forever).
  serve::ServiceOptions opt;
  opt.backend = Backend::serial;
  opt.solver.tiny_pivot = TinyPivotOption::fail;
  opt.batch_mode = serve::BatchMode::per_column;
  opt.num_workers = 1;              // one executor, so requests coalesce
  opt.batch_linger_s = 20e-3;
  serve::SolverService<double> svc(opt);

  const auto S = singular2x2();
  const std::vector<double> b = {1.0, 2.0};
  constexpr int kClients = 4;
  std::atomic<int> outcomes{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i)
    clients.emplace_back([&] {
      // As in RecoverableFailureEvictsAndRetriesWithLadder: the armed
      // retry either fails too or returns the ladder's best-effort
      // answer flagged `recovered` — both are a delivered outcome.
      try {
        const auto r = svc.solve(S, b);
        EXPECT_TRUE(r.recovered);
      } catch (const Error& e) {
        EXPECT_NE(e.code(), Errc::overloaded);
      }
      outcomes.fetch_add(1, std::memory_order_relaxed);
    });
  for (auto& c : clients) c.join();
  EXPECT_EQ(outcomes.load(), kClients);

  // The worker survived: the service still serves good traffic.
  const auto A = testbed_matrix("west0497-s");
  const auto r = svc.solve(A, rhs_for(A));
  double err = 0;
  for (double x : r.x) err = std::max(err, std::abs(x - 1.0));
  EXPECT_LT(err, 1e-8);
}

// ---------------------------------------------------------------------------
// Workload plumbing.

TEST(Workload, PerturbIsDeterministicAndKeepsPattern) {
  const auto A = testbed_matrix("west0497-s");
  const auto A0 = serve::perturb_values(A, 0);
  EXPECT_EQ(gesp::testing::max_abs_diff(A, A0), 0.0);
  const auto A1 = serve::perturb_values(A, 1);
  const auto A1b = serve::perturb_values(A, 1);
  EXPECT_EQ(gesp::testing::max_abs_diff(A1, A1b), 0.0);
  EXPECT_EQ(sparse::pattern_key(A), sparse::pattern_key(A1));
  EXPECT_NE(sparse::value_hash(A), sparse::value_hash(A1));
}

TEST(Workload, GenerateWriteReadRoundtrip) {
  const auto w = serve::generate_workload(3, 4, 32, 7);
  ASSERT_EQ(w.items.size(), 32u);
  const std::string path = ::testing::TempDir() + "gesp_workload.txt";
  serve::write_workload(path, w);
  const auto r = serve::read_workload(path);
  ASSERT_EQ(r.items.size(), w.items.size());
  for (std::size_t i = 0; i < w.items.size(); ++i) {
    EXPECT_EQ(r.items[i].matrix, w.items[i].matrix);
    EXPECT_EQ(r.items[i].valueset, w.items[i].valueset);
  }
  // Same seed, same workload; different seed, different workload.
  const auto w2 = serve::generate_workload(3, 4, 32, 7);
  EXPECT_EQ(w2.items[5].matrix, w.items[5].matrix);
}

TEST(Workload, MalformedFileThrowsIo) {
  const std::string path = ::testing::TempDir() + "gesp_workload_bad.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("request west0497-s\n", f);  // missing valueset
    std::fclose(f);
  }
  try {
    (void)serve::read_workload(path);
    FAIL() << "malformed workload parsed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::io);
  }
}

TEST(SolverService, ValuesDeltaAbsorbsDriftOnPatternHits) {
  // A pattern hit with drifted values routes through refactorize_delta:
  // the response's value_delta flag and the serve.cache.value_delta
  // counter record that the change was absorbed without a full
  // refactorization, and the answer stays refinement-converged.
  serve::ServiceOptions opt;
  opt.backend = Backend::serial;
  serve::SolverService<double> svc(opt);
  const auto A = testbed_matrix("west0497-s");
  const std::vector<double> ones(static_cast<std::size_t>(A.ncols), 1.0);

  const count_t delta0 = counter_value("serve.cache.value_delta");
  const auto cold = svc.solve(A, rhs_for(A));
  EXPECT_FALSE(cold.value_delta);
  // A handful of changed entries: the SMW or partial route absorbs it.
  auto B = A;
  B.values[0] *= 1.4;
  B.values[B.values.size() / 2] *= 0.9;
  const auto drift = svc.solve(B, rhs_for(B));
  EXPECT_TRUE(drift.pattern_hit);
  EXPECT_FALSE(drift.value_hit);
  EXPECT_TRUE(drift.value_delta);
  EXPECT_EQ(counter_value("serve.cache.value_delta"), delta0 + 1);
  EXPECT_LT(sparse::relative_error_inf<double>(ones, drift.x), 1e-8);
  // Resubmitting the drifted values is a value hit, not a delta: the
  // entry's stored value bytes were refreshed by the delta path.
  const auto again = svc.solve(B, rhs_for(B));
  EXPECT_TRUE(again.value_hit);
  EXPECT_FALSE(again.value_delta);

  // values_delta=false restores the plain refactorize path.
  serve::ServiceOptions off = opt;
  off.values_delta = false;
  serve::SolverService<double> svc2(off);
  (void)svc2.solve(A, rhs_for(A));
  const auto full = svc2.solve(B, rhs_for(B));
  EXPECT_TRUE(full.pattern_hit);
  EXPECT_FALSE(full.value_delta);
}

TEST(FactorizationCache, EvictedEntryWithLiveSmwCorrectionStillSolves) {
  // Lifetime satellite: entries are shared_ptr and the SMW correction
  // holds the factors through a shared_ptr of its own, so evicting an
  // entry mid-flight — unlinking it while a holder still references it —
  // must leave an active delta correction fully usable. (ASan in CI turns
  // any dangling factor reference here into a hard failure.)
  serve::FactorizationCache<double> cache(/*max_entries=*/1,
                                          /*max_bytes=*/0);
  const auto A = testbed_matrix("west0497-s");
  bool hit = false;
  auto e = cache.acquire(A, &hit);
  e->solver = std::make_unique<Solver<double>>(A, SolverOptions{});
  // Activate a rank-2 SMW correction over the cached factors.
  auto B = A;
  B.values[3] *= 1.5;
  B.values[B.values.size() / 3] *= 0.8;
  e->solver->refactorize_delta(B);
  ASSERT_EQ(e->solver->stats().delta.smw, 1u);

  // Evict mid-flight: unlink our entry, then churn the one-slot cache so
  // other patterns occupy and re-evict the map position.
  cache.erase(e);
  cache.acquire(testbed_matrix("orsirr-s"), &hit);
  cache.acquire(testbed_matrix("goodwin-s"), &hit);
  EXPECT_EQ(cache.entries(), 1u);

  // Our reference — the "batch still executing" of the cache contract —
  // solves through the correction as if nothing happened.
  const auto b = rhs_for(B);
  std::vector<double> x(b.size());
  const std::vector<double> ones(b.size(), 1.0);
  e->solver->solve(b, x);
  EXPECT_LT(sparse::relative_error_inf<double>(ones, x), 1e-8);
}

// ---------------------------------------------------------------------------
// Adaptive serving (ServiceOptions::adapt).

TEST(SolverService, AdaptOffKeepsStaticKnobs) {
  serve::ServiceOptions opt;
  opt.backend = Backend::serial;
  opt.max_batch = 4;
  opt.batch_linger_s = 1e-3;
  opt.shed_fraction = 0.5;
  serve::SolverService<double> svc(opt);
  const auto k = svc.effective_knobs();
  EXPECT_EQ(k.max_batch, 4);
  EXPECT_DOUBLE_EQ(k.batch_linger_s, 1e-3);
  EXPECT_DOUBLE_EQ(k.shed_fraction, 0.5);
  EXPECT_EQ(svc.adapt_stats().windows, 0);
  svc.stop();
  EXPECT_EQ(svc.effective_knobs().max_batch, 4);  // stop() never adjusts
}

TEST(SolverService, AdaptTrimsUnderSustainedOverload) {
  // An impossible latency target makes every completed window hot, so the
  // controller must trim within a couple of windows — the assertion waits
  // on controller state, not on wall-clock luck.
  serve::ServiceOptions opt;
  opt.backend = Backend::serial;
  opt.max_batch = 2;
  opt.batch_linger_s = 1e-3;
  opt.shed_fraction = 1.0;
  opt.adapt = true;
  opt.adapt_window_s = 0.01;
  opt.adapt_controller.target_p99_us = 1e-3;  // nothing real is this fast
  opt.adapt_controller.settle_windows = 2;
  serve::SolverService<double> svc(opt);

  const auto A = testbed_matrix("west0497-s");
  const auto b = rhs_for(A);
  svc.warm(A);
  bool trimmed = false;
  for (int round = 0; round < 400 && !trimmed; ++round) {
    const auto r = svc.solve(A, b);
    ASSERT_EQ(r.x.size(), b.size());
    trimmed = svc.adapt_stats().trims > 0;
  }
  EXPECT_TRUE(trimmed);
  const auto k = svc.effective_knobs();
  EXPECT_GE(k.max_batch, 4);  // batch harder than configured...
  EXPECT_LT(k.batch_linger_s, 1e-3);  // ...and stop lingering
  EXPECT_GE(k.shed_fraction, opt.adapt_controller.min_shed);
  EXPECT_GT(svc.adapt_stats().windows, 0);
  svc.stop();
}

TEST(HistogramQuantile, InterpolatesWithinMinMax) {
  metrics::Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const double p50 = h.quantile(0.5);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  EXPECT_LT(p50, p99);
  // Power-of-two buckets: the median lands in (256, 512], interpolation
  // keeps it in that bracket.
  EXPECT_GT(p50, 256.0);
  EXPECT_LE(p50, 512.0);
}

}  // namespace
