// Randomized fuzz over the generator space: for a spread of random
// specifications, the GESP contract must hold — either the solve is
// accurate with a converged berr, or the failure is loud (an exception or
// visible diagnostics). No silent garbage, ever.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/solver.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"

namespace gesp {
namespace {

class FuzzSolve : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSolve, AccurateOrLoud) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Rng meta(seed * 7919 + 13);
  sparse::RandomSpec spec;
  spec.n = 150 + meta.next_index(650);
  spec.nnz_per_row = 2 + meta.next_index(10);
  spec.structural_symmetry = meta.next_double();
  spec.numeric_symmetry = meta.next_double();
  spec.diag_scale = std::pow(10.0, meta.uniform(-6.0, 2.0));
  spec.offdiag_scale = std::pow(10.0, meta.uniform(-3.0, 3.0));
  spec.bandwidth = meta.uniform(0.005, 0.08);
  spec.seed = seed * 31 + 7;
  auto A = sparse::random_unsymmetric(spec);
  // Half the cases: knock diagonals out so the matching has work to do.
  if (meta.next_double() < 0.5)
    A = sparse::with_zero_diagonal(A, meta.uniform(0.05, 0.4), seed + 1);

  const index_t n = A.ncols;
  std::vector<double> x_true(n, 1.0), b(n), x(n);
  sparse::spmv<double>(A, x_true, b);
  try {
    SolverOptions opt;
    opt.estimate_ferr = true;  // the bound is the contract under test
    Solver<double> solver(A, opt);
    solver.solve(b, x);
    const double err = sparse::relative_error_inf<double>(x_true, x);
    const double berr = solver.stats().berr;
    const double ferr = solver.stats().ferr;
    if (berr <= 1e-12) {
      // Claimed convergence: the true error must be covered by the
      // estimated forward error bound (with slack for the original-vs-
      // scaled-system transform) — ill-conditioned systems may have large
      // err, but then ferr must SAY so.
      EXPECT_LE(err, 100.0 * ferr + 1e-12)
          << "seed " << seed << " n=" << spec.n << " berr=" << berr;
    }
    // Otherwise: stagnation is visible through berr; acceptable.
  } catch (const Error&) {
    SUCCEED();  // loud failure is within contract
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSpecs, FuzzSolve, ::testing::Range(1, 41));

}  // namespace
}  // namespace gesp
