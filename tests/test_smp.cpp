// Shared-memory (SuperLU_MT-style) factorization tests: the threaded
// numeric phase must produce BITWISE identical factors to the serial one
// (fork-join with per-iteration barriers and disjoint destination blocks),
// across thread counts and matrix classes — including the thread pool
// itself.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "core/solver.hpp"
#include "numeric/lu_factors.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"
#include "sparse/testbed.hpp"
#include "symbolic/symbolic.hpp"
#include "test_helpers.hpp"

namespace gesp {
namespace {

TEST(ThreadPool, CoversFullRangeOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](index_t lo, index_t hi, int) {
    for (index_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(round + 1, [&](index_t lo, index_t hi, int) {
      for (index_t i = lo; i < hi; ++i) sum += i;
    });
  }
  long expect = 0;
  for (int round = 0; round < 50; ++round)
    for (int i = 0; i < round + 1; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  int calls = 0;
  pool.parallel_for(10, [&](index_t lo, index_t hi, int w) {
    EXPECT_EQ(w, 0);
    calls += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(calls, 10);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  pool.parallel_for(0, [&](index_t, index_t, int) { FAIL(); });
}

TEST(ThreadPool, GrainRunsInlineBelowThreshold) {
  ThreadPool pool(4);
  pool.parallel_for(
      3,
      [&](index_t lo, index_t hi, int w) {
        EXPECT_EQ(w, 0);  // single inline chunk on the calling thread
        EXPECT_EQ(lo, 0);
        EXPECT_EQ(hi, 3);
      },
      /*grain=*/4);
}

TEST(TaskGraph, ChainRunsInOrder) {
  ThreadPool pool(4);
  TaskGraph g;
  std::vector<int> order;
  std::mutex mu;
  TaskGraph::TaskId prev = -1;
  for (int i = 0; i < 20; ++i) {
    const auto t = g.add_task([&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
    if (prev >= 0) g.add_dependency(prev, t);
    prev = t;
  }
  g.run(pool);
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(TaskGraph, FanOutFanIn) {
  ThreadPool pool(4);
  TaskGraph g;
  std::atomic<int> mids{0};
  bool root_done = false, sink_ok = false;
  const auto root = g.add_task([&] { root_done = true; });
  std::vector<TaskGraph::TaskId> mid;
  for (int i = 0; i < 16; ++i) {
    mid.push_back(g.add_task([&] {
      EXPECT_TRUE(root_done);
      mids++;
    }));
    g.add_dependency(root, mid.back());
  }
  const auto sink = g.add_task([&] { sink_ok = mids.load() == 16; });
  for (const auto t : mid) g.add_dependency(t, sink);
  g.run(pool);
  EXPECT_TRUE(sink_ok);
}

TEST(TaskGraph, EmptyGraphIsNoop) {
  ThreadPool pool(2);
  TaskGraph g;
  g.run(pool);
  EXPECT_EQ(g.size(), 0);
}

TEST(TaskGraph, PropagatesTaskException) {
  ThreadPool pool(3);
  TaskGraph g;
  const auto a = g.add_task([] { throw std::runtime_error("boom"); });
  const auto b = g.add_task([] {});
  g.add_dependency(a, b);
  EXPECT_THROW(g.run(pool), std::runtime_error);
}

template <class T>
void expect_bitwise_equal_factors(
    const sparse::CscMatrix<T>& A, int threads,
    numeric::Schedule schedule = numeric::Schedule::kAuto) {
  auto sym = std::make_shared<const symbolic::SymbolicLU>(
      symbolic::analyze(A, {}));
  numeric::NumericOptions serial;
  numeric::NumericOptions smp;
  smp.num_threads = threads;
  smp.schedule = schedule;
  numeric::LUFactors<T> F1(sym, A, serial);
  numeric::LUFactors<T> F2(sym, A, smp);
  EXPECT_EQ(testing::max_abs_diff(F1.l_matrix(), F2.l_matrix()), 0.0);
  EXPECT_EQ(testing::max_abs_diff(F1.u_matrix(), F2.u_matrix()), 0.0);
}

TEST(SmpLU, BitwiseEqualGrid2Threads) {
  expect_bitwise_equal_factors(sparse::convdiff2d(16, 14, 1.0, 0.5), 2);
}

TEST(SmpLU, BitwiseEqualGrid4Threads) {
  expect_bitwise_equal_factors(sparse::convdiff2d(16, 14, 1.0, 0.5), 4);
}

TEST(SmpLU, BitwiseEqualDevice8Threads) {
  expect_bitwise_equal_factors(sparse::device_like(12, 16, 100, 3), 8);
}

TEST(SmpLU, BitwiseEqualCircuit) {
  expect_bitwise_equal_factors(sparse::circuit_like(500, 5, 12, 4), 4);
}

TEST(SmpLU, BitwiseEqualComplex) {
  expect_bitwise_equal_factors(
      sparse::randomize_phases(sparse::convdiff2d(12, 12, 1.0, 0.5), 5), 3);
}

// Explicit-schedule determinism: both the fork-join baseline and the
// etree task DAG must reproduce the serial factors bit for bit.
TEST(SmpLU, TaskDagBitwiseEqual2Threads) {
  expect_bitwise_equal_factors(sparse::convdiff2d(16, 14, 1.0, 0.5), 2,
                               numeric::Schedule::kTaskDag);
}

TEST(SmpLU, TaskDagBitwiseEqual4Threads) {
  expect_bitwise_equal_factors(sparse::device_like(12, 16, 100, 3), 4,
                               numeric::Schedule::kTaskDag);
}

TEST(SmpLU, TaskDagBitwiseEqual8Threads) {
  expect_bitwise_equal_factors(sparse::circuit_like(500, 5, 12, 4), 8,
                               numeric::Schedule::kTaskDag);
}

TEST(SmpLU, TaskDagBitwiseEqualComplex) {
  expect_bitwise_equal_factors(
      sparse::randomize_phases(sparse::convdiff2d(12, 12, 1.0, 0.5), 5), 4,
      numeric::Schedule::kTaskDag);
}

TEST(SmpLU, ForkJoinBitwiseEqual4Threads) {
  expect_bitwise_equal_factors(sparse::convdiff2d(16, 14, 1.0, 0.5), 4,
                               numeric::Schedule::kForkJoin);
}

// Same invariant on the testbed matrices (the paper's problem classes).
TEST(SmpLU, TaskDagBitwiseEqualTestbed) {
  for (const char* name : {"orsirr-s", "saylr-s", "jpwh991-s", "struct-b-s"}) {
    SCOPED_TRACE(name);
    const auto A = sparse::testbed_entry(name).make();
    expect_bitwise_equal_factors(A, 4, numeric::Schedule::kTaskDag);
  }
}

TEST(SmpLU, DriverIntegration) {
  const auto A = sparse::with_zero_diagonal(
      sparse::circuit_like(400, 5, 12, 7), 0.2, 8);
  const index_t n = A.ncols;
  std::vector<double> x_true(n, 1.0), b(n), x_serial(n), x_smp(n);
  sparse::spmv<double>(A, x_true, b);
  SolverOptions serial;
  SolverOptions smp;
  smp.num_threads = 4;
  Solver<double> s1(A, serial);
  s1.solve(b, x_serial);
  Solver<double> s2(A, smp);
  s2.solve(b, x_smp);
  for (index_t i = 0; i < n; ++i)
    EXPECT_DOUBLE_EQ(x_serial[i], x_smp[i]);  // bitwise-equal pipeline
}

}  // namespace
}  // namespace gesp
