// I/O tests: MatrixMarket and Harwell-Boeing readers/writers, symmetric
// expansion, the Fortran edit-descriptor parser, and malformed-input
// error reporting.
#include <gtest/gtest.h>

#include <sstream>

#include "io/harwell_boeing.hpp"
#include "io/matrix_market.hpp"
#include "sparse/generators.hpp"
#include "test_helpers.hpp"

namespace gesp::io {
namespace {

TEST(MatrixMarket, RoundTripReal) {
  const auto A = sparse::convdiff2d(6, 7, 1.5, -0.5);
  std::stringstream ss;
  write_matrix_market(ss, A);
  const auto B = read_matrix_market(ss);
  EXPECT_EQ(A.nrows, B.nrows);
  EXPECT_EQ(A.nnz(), B.nnz());
  EXPECT_EQ(testing::max_abs_diff(A, B), 0.0);
}

TEST(MatrixMarket, RoundTripComplex) {
  const auto A = sparse::randomize_phases(sparse::laplacian2d(5, 5), 3);
  std::stringstream ss;
  write_matrix_market(ss, A);
  const auto B = read_matrix_market_complex(ss);
  EXPECT_EQ(testing::max_abs_diff(A, B), 0.0);
}

TEST(MatrixMarket, SymmetricExpansion) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "3 2 -1.0\n"
      "3 3 2.0\n");
  const auto A = read_matrix_market(ss);
  EXPECT_EQ(A.nnz(), 6);  // two off-diagonal pairs mirrored
  EXPECT_DOUBLE_EQ(A.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(A.at(1, 0), -1.0);
}

TEST(MatrixMarket, SkewSymmetricExpansion) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  const auto A = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(A.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(A.at(0, 1), -3.0);
}

TEST(MatrixMarket, PatternFieldGivesUnitValues) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  const auto A = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(A.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(A.at(1, 1), 1.0);
}

TEST(MatrixMarket, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "\n"
      "2 2 1\n"
      "% another\n"
      "2 1 5.5\n");
  const auto A = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(A.at(1, 0), 5.5);
}

TEST(MatrixMarket, RejectsMalformed) {
  {
    std::stringstream ss("not a matrix market file\n");
    EXPECT_THROW(read_matrix_market(ss), Error);
  }
  {
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n");  // truncated body
    EXPECT_THROW(read_matrix_market(ss), Error);
  }
  {
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 1\n"
        "3 1 1.0\n");  // out-of-range index
    EXPECT_THROW(read_matrix_market(ss), Error);
  }
  {
    std::stringstream ss(
        "%%MatrixMarket matrix coordinate complex general\n"
        "1 1 1\n"
        "1 1 1.0 2.0\n");  // complex through the real reader
    EXPECT_THROW(read_matrix_market(ss), Error);
  }
}

/// Assert the stream is rejected with the given category (never a crash,
/// never a hang, never a silently wrong matrix).
template <class Reader>
void expect_rejected(const std::string& text, Errc code, Reader reader) {
  std::stringstream ss(text);
  try {
    (void)reader(ss);
    FAIL() << "accepted malformed input:\n" << text;
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), code) << e.what();
  }
}

TEST(MatrixMarket, RejectsMalformedWithIoCategory) {
  auto rd = [](std::istream& in) { return read_matrix_market(in); };
  // Garbage banner / empty stream.
  expect_rejected("", Errc::io, rd);
  expect_rejected("%%MatrixMarkup matrix coordinate real general\n2 2 0\n",
                  Errc::io, rd);
  expect_rejected("%%MatrixMarket tensor coordinate real general\n", Errc::io,
                  rd);
  expect_rejected("%%MatrixMarket matrix array real general\n", Errc::io, rd);
  // Missing or nonsensical size line.
  expect_rejected("%%MatrixMarket matrix coordinate real general\n", Errc::io,
                  rd);
  expect_rejected(
      "%%MatrixMarket matrix coordinate real general\ntwo by two\n", Errc::io,
      rd);
  expect_rejected("%%MatrixMarket matrix coordinate real general\n0 2 0\n",
                  Errc::io, rd);
  expect_rejected("%%MatrixMarket matrix coordinate real general\n2 -2 1\n",
                  Errc::io, rd);
  // nnz count larger than the matrix can hold.
  expect_rejected(
      "%%MatrixMarket matrix coordinate real general\n2 2 9\n1 1 1.0\n",
      Errc::io, rd);
  // Truncated body and garbage entries.
  expect_rejected(
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
      Errc::io, rd);
  expect_rejected(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\nx y z\n",
      Errc::io, rd);
  expect_rejected(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n",
      Errc::io, rd);
  // Non-finite values must be rejected, not propagated into the solver.
  expect_rejected(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 nan\n",
      Errc::io, rd);
  expect_rejected(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 inf\n",
      Errc::io, rd);
  expect_rejected(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n2 1 -inf\n",
      Errc::io, rd);
  auto rdc = [](std::istream& in) { return read_matrix_market_complex(in); };
  expect_rejected(
      "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 nan\n",
      Errc::io, rdc);
}

TEST(HarwellBoeing, RejectsMalformedWithIoCategory) {
  auto rd = [](std::istream& in) { return read_harwell_boeing(in); };
  const std::string title = std::string("robustness") + std::string(62, ' ') +
                            "KEY00005\n";
  const std::string counts =
      "             3             1             1             1             "
      "0\n";
  // Truncated after the header.
  expect_rejected(title, Errc::io, rd);
  expect_rejected(title + counts, Errc::io, rd);
  // Bad dimensions.
  expect_rejected(
      title + counts +
          "RUA                       0             2             2"
          "             0\n"
          "(10I8)          (10I8)          (3E20.12)           \n",
      Errc::io, rd);
  // Bad Fortran formats.
  expect_rejected(title + counts +
                      "RUA                       2             2             "
                      "2             0\n"
                      "10I8            (10I8)          (3E20.12)           \n",
                  Errc::io, rd);
  expect_rejected(title + counts +
                      "RUA                       2             2             "
                      "2             0\n"
                      "(10Q8)          (10I8)          (3E20.12)           \n",
                  Errc::io, rd);
  // Truncated data blocks (fewer lines than the pointers demand).
  expect_rejected(title + counts +
                      "RUA                       2             2             "
                      "2             0\n"
                      "(10I8)          (10I8)          (3E20.12)           \n"
                      "       1       2       3\n"
                      "       1       2\n",
                  Errc::io, rd);
  // Garbage integers in the pointer block.
  expect_rejected(title + counts +
                      "RUA                       2             2             "
                      "2             0\n"
                      "(10I8)          (10I8)          (3E20.12)           \n"
                      "     one     two   three\n",
                  Errc::io, rd);
  // Non-finite values.
  expect_rejected(title + counts +
                      "RUA                       2             2             "
                      "2             0\n"
                      "(10I8)          (10I8)          (2E20.12)           \n"
                      "       1       2       3\n"
                      "       1       2\n"
                      "                 NaN  0.250000000000E+01\n",
                  Errc::io, rd);
  // Inconsistent column pointers (decreasing / past nnz).
  expect_rejected(title + counts +
                      "RUA                       2             2             "
                      "2             0\n"
                      "(10I8)          (10I8)          (2E20.12)           \n"
                      "       1       9       3\n"
                      "       1       2\n"
                      "  0.150000000000E+01  0.250000000000E+01\n",
                  Errc::io, rd);
}

TEST(FortranFormat, ParsesCommonDescriptors) {
  using detail::parse_fortran_format;
  auto f = parse_fortran_format("(16I5)");
  EXPECT_EQ(f.repeat, 16);
  EXPECT_EQ(f.type, 'I');
  EXPECT_EQ(f.width, 5);
  f = parse_fortran_format("(3E26.16)");
  EXPECT_EQ(f.repeat, 3);
  EXPECT_EQ(f.type, 'E');
  EXPECT_EQ(f.width, 26);
  f = parse_fortran_format("(1P,3E25.16E3)");
  EXPECT_EQ(f.repeat, 3);
  EXPECT_EQ(f.width, 25);
  f = parse_fortran_format("(4D20.12)");
  EXPECT_EQ(f.type, 'D');
  f = parse_fortran_format("(10I8)");
  EXPECT_EQ(f.repeat, 10);
  EXPECT_THROW(parse_fortran_format("16I5"), Error);    // no parens
  EXPECT_THROW(parse_fortran_format("(16X5)"), Error);  // unknown type
}

TEST(HarwellBoeing, RoundTrip) {
  const auto A = sparse::chemical_like(6, 9, 6.0, 5);
  std::stringstream ss;
  write_harwell_boeing(ss, A, "round trip test", "TEST0001");
  const auto B = read_harwell_boeing(ss);
  EXPECT_EQ(A.nrows, B.nrows);
  EXPECT_EQ(A.nnz(), B.nnz());
  EXPECT_LT(testing::max_abs_diff(A, B), 1e-15);
}

TEST(HarwellBoeing, RoundTripLarge) {
  const auto A = sparse::convdiff2d(20, 20, 2.0, 1.0);
  std::stringstream ss;
  write_harwell_boeing(ss, A);
  const auto B = read_harwell_boeing(ss);
  EXPECT_LT(testing::max_abs_diff(A, B), 1e-15);
}

TEST(HarwellBoeing, ReadsDExponents) {
  // Hand-written HB file with Fortran D exponents.
  const std::string hb =
      std::string("D-exponent test") + std::string(57, ' ') + "KEY00001\n" +
      "             3             1             1             1             0\n"
      "RUA                       2             2             2             0\n"
      "(10I8)          (10I8)          (2D20.12)           \n"
      "       1       2       3\n"
      "       1       2\n"
      "  0.150000000000D+01  0.250000000000D+01\n";
  std::stringstream ss(hb);
  const auto A = read_harwell_boeing(ss);
  EXPECT_DOUBLE_EQ(A.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(A.at(1, 1), 2.5);
}

TEST(HarwellBoeing, SymmetricExpansion) {
  const std::string hb =
      std::string("symmetric test") + std::string(58, ' ') + "KEY00002\n" +
      "             3             1             1             1             0\n"
      "RSA                       2             2             3             0\n"
      "(10I8)          (10I8)          (3E20.12)           \n"
      "       1       3       4\n"
      "       1       2       2\n"
      "  2.000000000000E+00 -1.000000000000E+00  2.000000000000E+00\n";
  std::stringstream ss(hb);
  const auto A = read_harwell_boeing(ss);
  EXPECT_EQ(A.nnz(), 4);
  EXPECT_DOUBLE_EQ(A.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(A.at(1, 0), -1.0);
}

TEST(HarwellBoeing, RejectsElementalAndComplex) {
  const std::string hb1 =
      std::string("bad type") + std::string(64, ' ') + "KEY00003\n" +
      "             1             1             0             0             0\n"
      "RUE                       2             2             2             0\n"
      "(10I8)          (10I8)          (3E20.12)           \n";
  std::stringstream s1(hb1);
  EXPECT_THROW(read_harwell_boeing(s1), Error);
  const std::string hb2 =
      std::string("bad type") + std::string(64, ' ') + "KEY00004\n" +
      "             1             1             0             0             0\n"
      "CUA                       2             2             2             0\n"
      "(10I8)          (10I8)          (3E20.12)           \n";
  std::stringstream s2(hb2);
  EXPECT_THROW(read_harwell_boeing(s2), Error);
}

TEST(FileIo, WriteAndReadBackThroughFilesystem) {
  const auto A = sparse::circuit_like(100, 3, 8, 7);
  const std::string path = "/tmp/gesp_io_test.mtx";
  write_matrix_market(path, A);
  const auto B = read_matrix_market(path);
  EXPECT_EQ(testing::max_abs_diff(A, B), 0.0);
  EXPECT_THROW(read_matrix_market("/nonexistent/file.mtx"), Error);
}

}  // namespace
}  // namespace gesp::io
