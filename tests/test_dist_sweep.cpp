// Property sweeps for the distributed engine:
//  * the distributed factorization equals the serial one for every grid
//    shape x matrix class combination (parameterized),
//  * the performance model's combinatorial message count equals the number
//    of messages the real MiniMPI factorization actually sends — the model
//    replays the true schedule, so the counts must agree EXACTLY,
//  * solves stay correct under EDAG pruning on all grids.
#include <gtest/gtest.h>

#include <memory>

#include "dist/dist_lu.hpp"
#include "dist/minimpi.hpp"
#include "dist/perfmodel.hpp"
#include "numeric/lu_factors.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"
#include "symbolic/symbolic.hpp"
#include "test_helpers.hpp"

namespace gesp {
namespace {

struct SweepCase {
  const char* name;
  int pr, pc;
  sparse::CscMatrix<double> (*make)();
};

sparse::CscMatrix<double> grid_matrix() {
  return sparse::convdiff2d(13, 11, 1.0, 0.5);
}
sparse::CscMatrix<double> circuit_matrix() {
  return sparse::circuit_like(350, 4, 10, 11);
}
sparse::CscMatrix<double> device_matrix() {
  return sparse::device_like(10, 14, 80, 12);
}
sparse::CscMatrix<double> chemical_matrix() {
  return sparse::chemical_like(12, 15, 5.0, 13);
}

class DistSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(DistSweep, FactorsMatchSerialBitwise) {
  const auto& c = GetParam();
  const auto A = c.make();
  auto sym = std::make_shared<const symbolic::SymbolicLU>(
      symbolic::analyze(A, {}));
  numeric::LUFactors<double> serial(sym, A, {});
  const auto Lref = serial.l_matrix();
  const auto Uref = serial.u_matrix();

  const dist::ProcessGrid grid{c.pr, c.pc};
  minimpi::World world(grid.nprocs());
  sparse::CscMatrix<double> Ld, Ud;
  std::vector<double> x_true(static_cast<std::size_t>(A.ncols), 1.0);
  std::vector<double> b(x_true.size()), x0;
  sparse::spmv<double>(A, x_true, b);
  world.run([&](minimpi::Comm& comm) {
    dist::DistributedLU<double> lu(comm, grid, sym, A, {});
    auto L = lu.gather_l(comm);
    auto U = lu.gather_u(comm);
    std::vector<double> x(b.size());
    lu.solve(comm, b, x);
    if (comm.rank() == 0) {
      Ld = std::move(L);
      Ud = std::move(U);
      x0 = std::move(x);
    }
  });
  EXPECT_EQ(testing::max_abs_diff(Lref, Ld), 0.0) << c.name;
  EXPECT_EQ(testing::max_abs_diff(Uref, Ud), 0.0) << c.name;
  EXPECT_LT(sparse::relative_error_inf<double>(x_true, x0), 1e-9) << c.name;
}

TEST_P(DistSweep, ModelMessageCountMatchesRealRun) {
  const auto& c = GetParam();
  const auto A = c.make();
  auto sym = std::make_shared<const symbolic::SymbolicLU>(
      symbolic::analyze(A, {}));
  const dist::ProcessGrid grid{c.pr, c.pc};
  for (bool pruning : {true, false}) {
    minimpi::World world(grid.nprocs());
    const auto stats = world.run([&](minimpi::Comm& comm) {
      dist::DistOptions opt;
      opt.edag_pruning = pruning;
      dist::DistributedLU<double> lu(comm, grid, sym, A, opt);
    });
    count_t real_msgs = 0;
    count_t real_bytes = 0;
    for (const auto& s : stats) {
      real_msgs += s.messages_sent;
      real_bytes += s.bytes_sent;
    }
    const auto model = dist::count_factorization_comm(*sym, grid, pruning);
    EXPECT_EQ(real_msgs, model.messages)
        << c.name << " pruning=" << pruning;
    // Bytes: the model counts values + index entries; the real run ships
    // the same values and a 2-entry header per block. Require agreement
    // within the header slack.
    EXPECT_NEAR(static_cast<double>(real_bytes),
                static_cast<double>(model.bytes),
                0.15 * static_cast<double>(model.bytes) + 1024)
        << c.name << " pruning=" << pruning;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridsAndClasses, DistSweep,
    ::testing::Values(SweepCase{"grid_2x2", 2, 2, grid_matrix},
                      SweepCase{"grid_1x4", 1, 4, grid_matrix},
                      SweepCase{"grid_4x1", 4, 1, grid_matrix},
                      SweepCase{"grid_2x3", 2, 3, grid_matrix},
                      SweepCase{"circuit_2x2", 2, 2, circuit_matrix},
                      SweepCase{"circuit_3x2", 3, 2, circuit_matrix},
                      SweepCase{"device_2x2", 2, 2, device_matrix},
                      SweepCase{"device_2x4", 2, 4, device_matrix},
                      SweepCase{"chemical_3x3", 3, 3, chemical_matrix}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace gesp
