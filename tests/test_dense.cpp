// Dense kernel tests: GETRF against reconstruction, tiny-pivot semantics,
// within-block partial pivoting, aggressive promotion, triangular solves
// (all four orientations) and GEMM against a reference, in both real and
// complex arithmetic.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dense/kernels.hpp"

namespace gesp::dense {
namespace {

std::vector<double> random_matrix(index_t n, std::uint64_t seed,
                                  double diag_boost) {
  Rng rng(seed);
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (index_t k = 0; k < n; ++k) a[k + k * n] += diag_boost;
  return a;
}

/// max |A - L·U| with L unit lower and U upper, both packed in `lu`,
/// optionally with a row permutation perm (perm[r] = original local row in
/// position r).
double lu_residual(const std::vector<double>& a,
                   const std::vector<double>& lu, index_t n,
                   const std::vector<index_t>* perm = nullptr) {
  double worst = 0;
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      // (L·U)(i,j) = sum_{k <= min(i,j)} L(i,k)·U(k,j), unit-diagonal L.
      double sum = 0;
      for (index_t k = 0; k <= std::min(i, j); ++k) {
        const double lik = (k == i) ? 1.0 : lu[i + k * n];
        sum += lik * lu[k + j * n];
      }
      const index_t src = perm ? (*perm)[i] : i;
      worst = std::max(worst, std::abs(sum - a[src + j * n]));
    }
  return worst;
}

TEST(Getrf, FactorsDiagonallyDominant) {
  const index_t n = 24;
  const auto a = random_matrix(n, 3, 30.0);
  auto lu = a;
  PivotStats stats;
  getrf(lu.data(), n, n, PivotPolicy{}, stats);
  EXPECT_EQ(stats.replaced, 0);
  EXPECT_LT(lu_residual(a, lu, n), 1e-12);
}

TEST(Getrf, ThrowsOnExactZeroPivotWithoutReplacement) {
  std::vector<double> a{0.0, 1.0, 1.0, 0.0};  // [[0,1],[1,0]]
  PivotStats stats;
  EXPECT_THROW(getrf(a.data(), 2, 2, PivotPolicy{}, stats), gesp::Error);
}

TEST(Getrf, TinyReplacementKeepsPhase) {
  std::vector<double> a{-1e-30, 0.0, 0.0, 2.0};
  PivotPolicy policy;
  policy.tiny_threshold = 1e-8;
  PivotStats stats;
  std::vector<PivotReplacement<double>> repl;
  getrf(a.data(), 2, 2, policy, stats, {}, &repl);
  EXPECT_EQ(stats.replaced, 1);
  ASSERT_EQ(repl.size(), 1u);
  EXPECT_EQ(repl[0].col, 0);
  EXPECT_DOUBLE_EQ(a[0], -1e-8);  // sign preserved
}

TEST(Getrf, AggressivePromotionUsesColumnMax) {
  // Column 0: pivot 1e-30, below it 5.0 -> promoted pivot magnitude 5.
  std::vector<double> a{1e-30, 5.0, 1.0, 1.0};
  PivotPolicy policy;
  policy.tiny_threshold = 1e-8;
  policy.aggressive = true;
  PivotStats stats;
  getrf(a.data(), 2, 2, policy, stats);
  // The promoted pivot cancels the trailing entry exactly, so the second
  // pivot is replaced too - at least the first promotion must use 5.0.
  EXPECT_GE(stats.replaced, 1);
  EXPECT_NEAR(a[0], 5.0, 1e-12);
}

TEST(Getrf, InBlockPivotingFactorsHardMatrix) {
  const index_t n = 16;
  auto a = random_matrix(n, 5, 0.0);  // weak diagonal: needs pivoting
  a[0] = 0.0;                         // force a swap at step 0
  const auto orig = a;
  PivotPolicy policy;
  policy.pivot_in_block = true;
  PivotStats stats;
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  getrf(a.data(), n, n, policy, stats, perm);
  EXPECT_GE(stats.swaps, 1);
  EXPECT_LT(lu_residual(orig, a, n, &perm), 1e-11);
}

TEST(Trsm, LeftLowerUnitSolvesAgainstMultiply) {
  const index_t b = 12, ncols = 7;
  auto l = random_matrix(b, 7, 3.0);
  const auto x_true = random_matrix(b, 8, 0.0);
  // B = L · X with unit lower L.
  std::vector<double> B(static_cast<std::size_t>(b) * ncols, 0.0);
  for (index_t c = 0; c < ncols; ++c)
    for (index_t i = 0; i < b; ++i) {
      double s = x_true[i + c * b];
      for (index_t k = 0; k < i; ++k) s += l[i + k * b] * x_true[k + c * b];
      B[i + c * b] = s;
    }
  trsm_left_lower_unit(l.data(), b, b, B.data(), ncols, b);
  for (std::size_t k = 0; k < B.size(); ++k)
    EXPECT_NEAR(B[k], x_true[k], 1e-12);
}

TEST(Trsm, RightUpperSolvesAgainstMultiply) {
  const index_t b = 10, m = 9;
  auto u = random_matrix(b, 9, 5.0);
  // x_true is m-by-b (rectangular): fill it elementwise.
  Rng rng(10);
  std::vector<double> x_true(static_cast<std::size_t>(m) * b);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  std::vector<double> B(static_cast<std::size_t>(m) * b, 0.0);
  // B = X · U (upper, non-unit).
  for (index_t j = 0; j < b; ++j)
    for (index_t i = 0; i < m; ++i) {
      double s = 0;
      for (index_t k = 0; k <= j; ++k) s += x_true[i + k * m] * u[k + j * b];
      B[i + j * m] = s;
    }
  trsm_right_upper(u.data(), b, b, B.data(), m, m);
  for (std::size_t k = 0; k < B.size(); ++k)
    EXPECT_NEAR(B[k], x_true[k], 1e-11);
}

TEST(Trsv, AllFourOrientationsRoundTrip) {
  const index_t b = 15;
  auto a = random_matrix(b, 11, 6.0);
  Rng rng(12);
  std::vector<double> x0(static_cast<std::size_t>(b));
  for (auto& v : x0) v = rng.uniform(-1.0, 1.0);

  // L (unit) forward then its transpose backward must invert each other
  // when applied to matching products; test each against a multiply.
  auto mulL = [&](const std::vector<double>& x) {
    std::vector<double> y(x);
    for (index_t i = b - 1; i >= 0; --i) {
      double s = x[i];
      for (index_t k = 0; k < i; ++k) s += a[i + k * b] * x[k];
      y[i] = s;
    }
    return y;
  };
  auto y = mulL(x0);
  trsv_lower_unit(a.data(), b, b, y.data());
  for (index_t i = 0; i < b; ++i) EXPECT_NEAR(y[i], x0[i], 1e-12);

  auto mulU = [&](const std::vector<double>& x) {
    std::vector<double> y2(static_cast<std::size_t>(b), 0.0);
    for (index_t i = 0; i < b; ++i)
      for (index_t j = i; j < b; ++j) y2[i] += a[i + j * b] * x[j];
    return y2;
  };
  y = mulU(x0);
  trsv_upper(a.data(), b, b, y.data());
  for (index_t i = 0; i < b; ++i) EXPECT_NEAR(y[i], x0[i], 1e-12);

  auto mulUt = [&](const std::vector<double>& x) {
    std::vector<double> y3(static_cast<std::size_t>(b), 0.0);
    for (index_t i = 0; i < b; ++i)
      for (index_t j = i; j < b; ++j) y3[j] += a[i + j * b] * x[i];
    return y3;
  };
  y = mulUt(x0);
  trsv_upper_trans(a.data(), b, b, y.data());
  for (index_t i = 0; i < b; ++i) EXPECT_NEAR(y[i], x0[i], 1e-12);

  auto mulLt = [&](const std::vector<double>& x) {
    std::vector<double> y4(x);
    for (index_t k = 0; k < b; ++k)
      for (index_t i = k + 1; i < b; ++i) y4[k] += a[i + k * b] * x[i];
    return y4;
  };
  y = mulLt(x0);
  trsv_lower_unit_trans(a.data(), b, b, y.data());
  for (index_t i = 0; i < b; ++i) EXPECT_NEAR(y[i], x0[i], 1e-12);
}

TEST(Gemm, MatchesReference) {
  const index_t m = 13, n = 7, k = 9;
  const auto A = random_matrix(std::max({m, n, k}), 13, 0.0);
  const auto B = random_matrix(std::max({m, n, k}), 14, 0.0);
  std::vector<double> C(static_cast<std::size_t>(m) * n, 1.0);
  auto Cref = C;
  gemm_minus(m, n, k, A.data(), m, B.data(), k, C.data(), m);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i)
      for (index_t p = 0; p < k; ++p)
        Cref[i + j * m] -= A[i + p * m] * B[p + j * k];
  for (std::size_t x = 0; x < C.size(); ++x)
    EXPECT_NEAR(C[x], Cref[x], 1e-12);
}

TEST(Complex, GetrfAndSolve) {
  const index_t n = 10;
  Rng rng(15);
  std::vector<Complex> a(static_cast<std::size_t>(n) * n);
  for (auto& v : a)
    v = Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  for (index_t k = 0; k < n; ++k) a[k + k * n] += Complex(8.0, 0.0);
  const auto orig = a;
  PivotStats stats;
  getrf(a.data(), n, n, PivotPolicy{}, stats);
  // Solve L U x = b and verify against the original matrix.
  std::vector<Complex> x(static_cast<std::size_t>(n), Complex(1.0, -1.0));
  std::vector<Complex> b(static_cast<std::size_t>(n), Complex{});
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) b[i] += orig[i + j * n] * x[j];
  trsv_lower_unit(a.data(), n, n, b.data());
  trsv_upper(a.data(), n, n, b.data());
  for (index_t i = 0; i < n; ++i) EXPECT_LT(std::abs(b[i] - x[i]), 1e-11);
}

TEST(Complex, TinyReplacementKeepsPhaseComplex) {
  std::vector<Complex> a{Complex(1e-30, 1e-30), Complex{}, Complex{},
                         Complex(2.0, 0.0)};
  PivotPolicy policy;
  policy.tiny_threshold = 1e-6;
  PivotStats stats;
  getrf(a.data(), 2, 2, policy, stats);
  EXPECT_EQ(stats.replaced, 1);
  EXPECT_NEAR(std::abs(a[0]), 1e-6, 1e-18);
  // Phase preserved: arg ~ pi/4.
  EXPECT_NEAR(std::arg(a[0]), 3.14159265358979 / 4.0, 1e-6);
}

}  // namespace
}  // namespace gesp::dense
